package morestress

import (
	"fmt"
	"time"

	"repro/internal/array"
	"repro/internal/chiplet"
	"repro/internal/mesh"
)

// Package-level (chiplet) types for scenario 2.
type (
	// Package is the 2.5D chiplet stack of Fig. 5(b): composite substrate,
	// silicon interposer (hosting the TSVs), silicon die.
	Package = chiplet.Stack
	// PackageResolution controls the coarse package mesh.
	PackageResolution = chiplet.Resolution
	// Location identifies the five array embedding positions of Fig. 5(b).
	Location = chiplet.Location
)

// The five standard locations (Fig. 5(b)).
const (
	Loc1 = chiplet.Loc1 // interposer center
	Loc2 = chiplet.Loc2 // die edge
	Loc3 = chiplet.Loc3 // die ("chip") corner
	Loc4 = chiplet.Loc4 // interposer edge
	Loc5 = chiplet.Loc5 // interposer corner
)

// Locations lists all five standard locations.
var Locations = chiplet.Locations

// DefaultPackage returns the chiplet stack used by the scenario-2
// experiments.
func DefaultPackage() Package { return chiplet.DefaultStack() }

// DefaultPackageResolution returns the coarse-model mesh density.
func DefaultPackageResolution() PackageResolution { return chiplet.DefaultResolution() }

// CoarsePackage is a solved coarse package model, the displacement source
// for sub-modeling.
type CoarsePackage struct {
	Coarse *chiplet.Coarse
}

// SolvePackage runs the coarse thermal-warpage solve of the TSV-free package
// (the first step of the sub-modeling procedure, §4.4).
func SolvePackage(pkg Package, res PackageResolution, deltaT float64, opt SolverOptions, workers int) (*CoarsePackage, error) {
	c, err := chiplet.SolveCoarse(pkg, res, deltaT, nil, opt, workers)
	if err != nil {
		return nil, err
	}
	return &CoarsePackage{Coarse: c}, nil
}

// DeltaT returns the thermal load of the coarse solve.
func (p *CoarsePackage) DeltaT() float64 { return p.Coarse.DeltaT }

// DisplacementAt interpolates the coarse displacement at a package-space
// point.
func (p *CoarsePackage) DisplacementAt(at Vec3) [3]float64 {
	return p.Coarse.DisplacementAt(at)
}

// StressAt recovers the coarse background stress at a package-space point.
func (p *CoarsePackage) StressAt(at Vec3) [6]float64 {
	return p.Coarse.StressAt(at)
}

// EmbeddedSpec describes a TSV array embedded in a package (scenario 2): a
// Rows×Cols TSV array padded by DummyRing rings of pure-silicon blocks, at
// one of the five locations. The sub-model boundary displacement comes from
// the coarse package solution.
type EmbeddedSpec struct {
	// Rows, Cols count the TSV blocks (the paper uses 15×15).
	Rows, Cols int
	// DummyRing is the number of dummy-block rings added around the array
	// (the paper uses 2).
	DummyRing int
	// Location places the sub-model in the package.
	Location Location
	// GridSamples is the per-block mid-plane sampling resolution (0 = skip).
	GridSamples int
	// Options tunes the global solver.
	Options SolverOptions
}

// TotalBlocks returns the sub-model extent in blocks per axis.
func (s EmbeddedSpec) totalCols() int { return s.Cols + 2*s.DummyRing }
func (s EmbeddedSpec) totalRows() int { return s.Rows + 2*s.DummyRing }

// Width returns the sub-model footprint edge length for the given pitch.
func (s EmbeddedSpec) Width(pitch float64) float64 {
	return float64(s.totalCols()) * pitch
}

// IsDummy reports whether block (bx, by) of the padded sub-model is a dummy.
func (s EmbeddedSpec) IsDummy(bx, by int) bool {
	r := s.DummyRing
	return bx < r || bx >= s.Cols+r || by < r || by >= s.Rows+r
}

// EmbeddedResult is a solved embedded array.
type EmbeddedResult struct {
	// VM is the mid-plane von Mises field over the TSV array only
	// (dummy ring cropped away), matching the paper's error region.
	VM *Field
	// VMFull covers the whole padded sub-model.
	VMFull *Field
	// Origin is the sub-model minimum corner in package coordinates.
	Origin Vec3
	// Solution retains the raw global-stage solution.
	Solution *array.Solution
	// GlobalTime is the paper's reported runtime: assembly + solve +
	// sampling (the coarse solve is shared across locations).
	GlobalTime time.Duration
	// Stats reports the global iterative solve.
	Stats SolverStats
}

// SolveEmbedded runs the sub-modeling global stage: coarse displacements are
// imposed on the sub-model boundary through the lifting procedure and the
// padded array is solved with the reduced model.
func (m *Model) SolveEmbedded(pkg *CoarsePackage, spec EmbeddedSpec) (*EmbeddedResult, error) {
	if spec.Rows < 1 || spec.Cols < 1 {
		return nil, fmt.Errorf("morestress: embedded array must be at least 1×1")
	}
	if spec.DummyRing > 0 {
		if err := m.EnsureDummy(); err != nil {
			return nil, err
		}
	}
	pitch := m.Config.Geometry.Pitch
	origin, err := chiplet.SubmodelOrigin(pkg.Coarse.Stack, spec.Location, spec.Width(pitch))
	if err != nil {
		return nil, err
	}

	start := time.Now()
	var isDummy func(int, int) bool
	var dummyROM = m.Dummy
	if spec.DummyRing > 0 {
		isDummy = spec.IsDummy
	} else {
		dummyROM = nil
	}
	sol, err := array.Solve(&array.Problem{
		ROM: m.TSV, DummyROM: dummyROM,
		Bx: spec.totalCols(), By: spec.totalRows(),
		IsDummy: isDummy,
		DeltaT:  pkg.DeltaT(),
		BC:      array.PrescribedBoundary,
		BoundaryDisp: func(p mesh.Vec3) [3]float64 {
			return pkg.DisplacementAt(origin.Add(p))
		},
		Opt:     spec.Options,
		Workers: m.Config.workers(),
	})
	if err != nil {
		return nil, err
	}
	res := &EmbeddedResult{
		Origin:   origin,
		Solution: sol,
		Stats:    sol.Stats,
	}
	if spec.GridSamples > 0 {
		gs := spec.GridSamples
		res.VMFull = sol.VMField(gs, m.Config.workers())
		r := spec.DummyRing
		res.VM = res.VMFull.Crop(r*gs, r*gs, (r+spec.Cols)*gs, (r+spec.Rows)*gs)
	}
	res.GlobalTime = time.Since(start)
	return res, nil
}
