package morestress

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestEngineBatchSharesROM(t *testing.T) {
	e := NewEngine(EngineOptions{Workers: 4})
	cfg := testConfig(15)
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{
			Config: cfg, Rows: 2, Cols: 2,
			DeltaT:      -250 + 10*float64(i),
			GridSamples: 4,
		}
	}
	br := e.BatchSolve(jobs)
	if br.Stats.Errors != 0 {
		for _, r := range br.Results {
			if r.Err != nil {
				t.Fatalf("job %d: %v", r.Index, r.Err)
			}
		}
	}
	// All 8 jobs share one unit cell: exactly one local stage, 7 hits.
	if br.Stats.CacheMisses != 1 || br.Stats.CacheHits != 7 {
		t.Errorf("cache misses/hits = %d/%d, want 1/7", br.Stats.CacheMisses, br.Stats.CacheHits)
	}
	for i, r := range br.Results {
		if r.Index != i {
			t.Errorf("result %d has index %d", i, r.Index)
		}
		if !r.Result.Stats.Converged {
			t.Errorf("job %d did not converge", i)
		}
		if r.Result.VM == nil || r.Result.VM.NX != 8 {
			t.Errorf("job %d: missing or mis-sized field", i)
		}
	}
	// Heavier loads produce larger stresses: |ΔT| decreases with i here.
	if m0, m7 := br.Results[0].Result.VM.Max(), br.Results[7].Result.VM.Max(); m0 <= m7 {
		t.Errorf("VM max not monotone in |ΔT|: %g (ΔT=-250) vs %g (ΔT=-180)", m0, m7)
	}
	s := e.Stats()
	if s.JobsDone != 8 || s.JobsFailed != 0 {
		t.Errorf("engine counters = %+v", s)
	}
}

// TestEngineConcurrentSingleflight hammers one engine from many goroutines
// with the same unit cell and checks the local stage ran exactly once
// (exercised under -race by CI).
func TestEngineConcurrentSingleflight(t *testing.T) {
	e := NewEngine(EngineOptions{Workers: 8})
	cfg := testConfig(15)
	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := e.Solve(Job{Config: cfg, Rows: 1, Cols: 2, DeltaT: -100 - float64(i)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	s := e.Stats()
	if s.Cache.Misses != 1 {
		t.Errorf("local stage ran %d times under %d concurrent solves, want 1", s.Cache.Misses, callers)
	}
	if s.Cache.Hits != callers-1 {
		t.Errorf("cache hits = %d, want %d", s.Cache.Hits, callers-1)
	}
}

func TestEngineDirectSharesFactorization(t *testing.T) {
	e := NewEngine(EngineOptions{Workers: 2})
	cfg := testConfig(15)
	jobs := make([]Job, 4)
	for i := range jobs {
		jobs[i] = Job{Config: cfg, Rows: 2, Cols: 2, DeltaT: -50 * float64(i+1), Solver: SolveDirect}
	}
	br := e.BatchSolve(jobs)
	for _, r := range br.Results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", r.Index, r.Err)
		}
	}
	s := e.Stats()
	if s.Factorizations != 1 {
		t.Errorf("factorizations = %d, want 1 (same lattice, ΔT sweep)", s.Factorizations)
	}
	if s.FactorHits != 3 {
		t.Errorf("factor hits = %d, want 3", s.FactorHits)
	}

	// The shared-factor Direct solution must agree with an independent
	// GMRES solve of the same scenario.
	ref, err := e.Solve(Job{Config: cfg, Rows: 2, Cols: 2, DeltaT: -100, GridSamples: 5})
	if err != nil {
		t.Fatal(err)
	}
	dir, err := e.Solve(Job{Config: cfg, Rows: 2, Cols: 2, DeltaT: -100, GridSamples: 5, Solver: SolveDirect})
	if err != nil {
		t.Fatal(err)
	}
	rm, dm := ref.Result.VM.Max(), dir.Result.VM.Max()
	if rel := math.Abs(rm-dm) / rm; rel > 1e-6 {
		t.Errorf("Direct vs GMRES VM max differ: %g vs %g (rel %g)", dm, rm, rel)
	}
}

func TestEngineBadJobDoesNotAbortBatch(t *testing.T) {
	e := NewEngine(EngineOptions{Workers: 2})
	cfg := testConfig(15)
	br := e.BatchSolve([]Job{
		{Config: cfg, Rows: 0, Cols: 2, DeltaT: -100},
		{Config: cfg, Rows: 1, Cols: 1, DeltaT: -100},
	})
	if br.Results[0].Err == nil {
		t.Error("zero-row job succeeded")
	}
	if br.Results[1].Err != nil {
		t.Errorf("good job failed: %v", br.Results[1].Err)
	}
	if br.Stats.Errors != 1 || br.Stats.Jobs != 2 {
		t.Errorf("stats = %+v", br.Stats)
	}
}

// TestLoadModelCorruptDummy is the regression test for the LoadModel error
// swallowing: a model whose dummy ROM record is truncated must fail to load
// rather than silently dropping the dummy, while a model saved without a
// dummy still loads cleanly.
func TestLoadModelCorruptDummy(t *testing.T) {
	m, err := BuildModelWithDummy(testConfig(15))
	if err != nil {
		t.Fatal(err)
	}

	var noDummy bytes.Buffer
	if err := m.TSV.Save(&noDummy); err != nil {
		t.Fatal(err)
	}
	tsvLen := noDummy.Len()
	loaded, err := LoadModel(bytes.NewReader(noDummy.Bytes()))
	if err != nil {
		t.Fatalf("model without dummy failed to load: %v", err)
	}
	if loaded.Dummy != nil {
		t.Error("phantom dummy after dummy-less save")
	}

	var full bytes.Buffer
	if err := m.Save(&full); err != nil {
		t.Fatal(err)
	}
	if full.Len() <= tsvLen {
		t.Fatal("dummy ROM added no bytes; truncation test is vacuous")
	}
	cut := tsvLen + (full.Len()-tsvLen)/2 // mid-dummy truncation
	if _, err := LoadModel(bytes.NewReader(full.Bytes()[:cut])); err == nil {
		t.Fatal("truncated dummy ROM loaded without error")
	} else if !strings.Contains(err.Error(), "dummy") {
		t.Errorf("error does not identify the dummy record: %v", err)
	}

	// Round-trip sanity: the intact stream restores both ROMs.
	restored, err := LoadModel(bytes.NewReader(full.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Dummy == nil {
		t.Error("dummy ROM lost in round-trip")
	}
}

// TestEngineWarmStartSweepMatchesCold is the correctness contract of the
// warm-start machinery: a ΔT sweep solved with warm starts (and submitted in
// scrambled ΔT order, so BatchSolve must re-order the chain itself) must
// reproduce the cold-started solutions within the solver tolerance, while
// doing measurably less iterative work on one shared assembly.
func TestEngineWarmStartSweepMatchesCold(t *testing.T) {
	cfg := testConfig(15)
	sweep := func() []Job {
		loads := []float64{-150, -250, -50, -200, -100, -300} // scrambled
		jobs := make([]Job, len(loads))
		for i, dt := range loads {
			jobs[i] = Job{
				Config: cfg, Rows: 3, Cols: 3, DeltaT: dt,
				GridSamples: 6, Solver: SolveCG,
				Options: SolverOptions{Tol: 1e-10},
			}
		}
		return jobs
	}

	warmE := NewEngine(EngineOptions{Workers: 2})
	coldE := NewEngine(EngineOptions{Workers: 2, DisableWarmStart: true})
	warm := warmE.BatchSolve(sweep())
	cold := coldE.BatchSolve(sweep())
	if warm.Stats.Errors != 0 || cold.Stats.Errors != 0 {
		t.Fatalf("sweep errors: warm %d, cold %d", warm.Stats.Errors, cold.Stats.Errors)
	}

	for i := range warm.Results {
		wv, cv := warm.Results[i].Result.VM, cold.Results[i].Result.VM
		var maxDiff float64
		for k := range wv.V {
			if d := math.Abs(wv.V[k] - cv.V[k]); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > 1e-4 {
			t.Errorf("job %d (ΔT=%g): warm field deviates from cold by %g MPa", i, sweep()[i].DeltaT, maxDiff)
		}
	}

	if warm.Stats.WarmStarts != len(warm.Results)-1 {
		t.Errorf("warm starts = %d, want %d (all but the chain head)", warm.Stats.WarmStarts, len(warm.Results)-1)
	}
	if cold.Stats.WarmStarts != 0 {
		t.Errorf("cold engine warm-started %d solves", cold.Stats.WarmStarts)
	}
	if warm.Stats.Iterations >= cold.Stats.Iterations {
		t.Errorf("warm sweep took %d total iterations, cold %d — warm must be fewer", warm.Stats.Iterations, cold.Stats.Iterations)
	}
	t.Logf("total PCG iterations: warm %d vs cold %d", warm.Stats.Iterations, cold.Stats.Iterations)

	ws, cs := warmE.Stats(), coldE.Stats()
	if ws.Assemblies != 1 || cs.Assemblies != 1 {
		t.Errorf("assemblies = %d warm / %d cold, want 1 each (one lattice)", ws.Assemblies, cs.Assemblies)
	}
	if ws.AssemblyHits != int64(len(warm.Results)-1) {
		t.Errorf("assembly hits = %d, want %d", ws.AssemblyHits, len(warm.Results)-1)
	}
	if ws.WarmFallbacks != 0 {
		t.Errorf("unexpected warm fallbacks: %d", ws.WarmFallbacks)
	}
	if rate := float64(ws.WarmStarts) / float64(ws.IterativeSolves); rate <= 0.5 {
		t.Errorf("warm-start hit rate %.2f, want > 0.5", rate)
	}
}

// TestEngineWarmStartAcrossSolveCalls checks the seed cache works outside
// BatchSolve chains too: sequential Engine.Solve calls on one lattice (the
// async job queue's access pattern) warm-start from each other, and a
// different lattice never reuses a foreign seed.
func TestEngineWarmStartAcrossSolveCalls(t *testing.T) {
	cfg := testConfig(15)
	e := NewEngine(EngineOptions{Workers: 1})
	first, err := e.Solve(Job{Config: cfg, Rows: 2, Cols: 3, DeltaT: -100, Solver: SolveCG})
	if err != nil {
		t.Fatal(err)
	}
	if first.Result.Stats.Warm {
		t.Error("first solve on a lattice cannot be warm")
	}
	second, err := e.Solve(Job{Config: cfg, Rows: 2, Cols: 3, DeltaT: -200, Solver: SolveCG})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Result.Stats.Warm {
		t.Error("second solve on the lattice should warm-start from the first")
	}
	if second.Result.Stats.Iterations > first.Result.Stats.Iterations {
		t.Errorf("warm solve took %d iterations vs %d cold", second.Result.Stats.Iterations, first.Result.Stats.Iterations)
	}
	other, err := e.Solve(Job{Config: cfg, Rows: 3, Cols: 2, DeltaT: -200, Solver: SolveCG})
	if err != nil {
		t.Fatal(err)
	}
	if other.Result.Stats.Warm {
		t.Error("a different lattice must not reuse a foreign seed")
	}
	// Nonuniform (DeltaTMap) jobs neither consume nor overwrite seeds.
	hot, err := e.Solve(Job{Config: cfg, Rows: 2, Cols: 3, DeltaT: -100,
		DeltaTMap: func(r, c int) float64 { return -100 * float64(1+r+c) }, Solver: SolveCG})
	if err != nil {
		t.Fatal(err)
	}
	if hot.Result.Stats.Warm {
		t.Error("nonuniform-ΔT solve must run cold")
	}
	if s := e.Stats(); s.Assemblies != 2 {
		t.Errorf("assemblies = %d, want 2 (two lattices)", s.Assemblies)
	}
}

// TestEngineDirectSharesAssembly checks Direct jobs ride the assemble-once
// cache alongside their shared factorization.
func TestEngineDirectSharesAssembly(t *testing.T) {
	cfg := testConfig(15)
	e := NewEngine(EngineOptions{Workers: 2})
	jobs := make([]Job, 4)
	for i := range jobs {
		jobs[i] = Job{Config: cfg, Rows: 2, Cols: 2, DeltaT: -60 * float64(i+1), Solver: SolveDirect}
	}
	br := e.BatchSolve(jobs)
	if br.Stats.Errors != 0 {
		t.Fatalf("batch errors: %+v", br.Stats)
	}
	s := e.Stats()
	if s.Assemblies != 1 {
		t.Errorf("assemblies = %d, want 1", s.Assemblies)
	}
	if s.Factorizations != 1 {
		t.Errorf("factorizations = %d, want 1", s.Factorizations)
	}
	for i, r := range br.Results {
		if !r.Result.Solution.AssemblyShared {
			t.Errorf("job %d did not use the shared assembly", i)
		}
	}
}
