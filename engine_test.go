package morestress

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestEngineBatchSharesROM(t *testing.T) {
	e := NewEngine(EngineOptions{Workers: 4})
	cfg := testConfig(15)
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{
			Config: cfg, Rows: 2, Cols: 2,
			DeltaT:      -250 + 10*float64(i),
			GridSamples: 4,
		}
	}
	br := e.BatchSolve(jobs)
	if br.Stats.Errors != 0 {
		for _, r := range br.Results {
			if r.Err != nil {
				t.Fatalf("job %d: %v", r.Index, r.Err)
			}
		}
	}
	// All 8 jobs share one unit cell: exactly one local stage, 7 hits.
	if br.Stats.CacheMisses != 1 || br.Stats.CacheHits != 7 {
		t.Errorf("cache misses/hits = %d/%d, want 1/7", br.Stats.CacheMisses, br.Stats.CacheHits)
	}
	for i, r := range br.Results {
		if r.Index != i {
			t.Errorf("result %d has index %d", i, r.Index)
		}
		if !r.Result.Stats.Converged {
			t.Errorf("job %d did not converge", i)
		}
		if r.Result.VM == nil || r.Result.VM.NX != 8 {
			t.Errorf("job %d: missing or mis-sized field", i)
		}
	}
	// Heavier loads produce larger stresses: |ΔT| decreases with i here.
	if m0, m7 := br.Results[0].Result.VM.Max(), br.Results[7].Result.VM.Max(); m0 <= m7 {
		t.Errorf("VM max not monotone in |ΔT|: %g (ΔT=-250) vs %g (ΔT=-180)", m0, m7)
	}
	s := e.Stats()
	if s.JobsDone != 8 || s.JobsFailed != 0 {
		t.Errorf("engine counters = %+v", s)
	}
}

// TestEngineConcurrentSingleflight hammers one engine from many goroutines
// with the same unit cell and checks the local stage ran exactly once
// (exercised under -race by CI).
func TestEngineConcurrentSingleflight(t *testing.T) {
	e := NewEngine(EngineOptions{Workers: 8})
	cfg := testConfig(15)
	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := e.Solve(Job{Config: cfg, Rows: 1, Cols: 2, DeltaT: -100 - float64(i)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	s := e.Stats()
	if s.Cache.Misses != 1 {
		t.Errorf("local stage ran %d times under %d concurrent solves, want 1", s.Cache.Misses, callers)
	}
	if s.Cache.Hits != callers-1 {
		t.Errorf("cache hits = %d, want %d", s.Cache.Hits, callers-1)
	}
}

func TestEngineDirectSharesFactorization(t *testing.T) {
	e := NewEngine(EngineOptions{Workers: 2})
	cfg := testConfig(15)
	jobs := make([]Job, 4)
	for i := range jobs {
		jobs[i] = Job{Config: cfg, Rows: 2, Cols: 2, DeltaT: -50 * float64(i+1), Solver: SolveDirect}
	}
	br := e.BatchSolve(jobs)
	for _, r := range br.Results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", r.Index, r.Err)
		}
	}
	s := e.Stats()
	if s.Factorizations != 1 {
		t.Errorf("factorizations = %d, want 1 (same lattice, ΔT sweep)", s.Factorizations)
	}
	if s.FactorHits != 3 {
		t.Errorf("factor hits = %d, want 3", s.FactorHits)
	}

	// The shared-factor Direct solution must agree with an independent
	// GMRES solve of the same scenario.
	ref, err := e.Solve(Job{Config: cfg, Rows: 2, Cols: 2, DeltaT: -100, GridSamples: 5})
	if err != nil {
		t.Fatal(err)
	}
	dir, err := e.Solve(Job{Config: cfg, Rows: 2, Cols: 2, DeltaT: -100, GridSamples: 5, Solver: SolveDirect})
	if err != nil {
		t.Fatal(err)
	}
	rm, dm := ref.Result.VM.Max(), dir.Result.VM.Max()
	if rel := math.Abs(rm-dm) / rm; rel > 1e-6 {
		t.Errorf("Direct vs GMRES VM max differ: %g vs %g (rel %g)", dm, rm, rel)
	}
}

func TestEngineBadJobDoesNotAbortBatch(t *testing.T) {
	e := NewEngine(EngineOptions{Workers: 2})
	cfg := testConfig(15)
	br := e.BatchSolve([]Job{
		{Config: cfg, Rows: 0, Cols: 2, DeltaT: -100},
		{Config: cfg, Rows: 1, Cols: 1, DeltaT: -100},
	})
	if br.Results[0].Err == nil {
		t.Error("zero-row job succeeded")
	}
	if br.Results[1].Err != nil {
		t.Errorf("good job failed: %v", br.Results[1].Err)
	}
	if br.Stats.Errors != 1 || br.Stats.Jobs != 2 {
		t.Errorf("stats = %+v", br.Stats)
	}
}

// TestLoadModelCorruptDummy is the regression test for the LoadModel error
// swallowing: a model whose dummy ROM record is truncated must fail to load
// rather than silently dropping the dummy, while a model saved without a
// dummy still loads cleanly.
func TestLoadModelCorruptDummy(t *testing.T) {
	m, err := BuildModelWithDummy(testConfig(15))
	if err != nil {
		t.Fatal(err)
	}

	var noDummy bytes.Buffer
	if err := m.TSV.Save(&noDummy); err != nil {
		t.Fatal(err)
	}
	tsvLen := noDummy.Len()
	loaded, err := LoadModel(bytes.NewReader(noDummy.Bytes()))
	if err != nil {
		t.Fatalf("model without dummy failed to load: %v", err)
	}
	if loaded.Dummy != nil {
		t.Error("phantom dummy after dummy-less save")
	}

	var full bytes.Buffer
	if err := m.Save(&full); err != nil {
		t.Fatal(err)
	}
	if full.Len() <= tsvLen {
		t.Fatal("dummy ROM added no bytes; truncation test is vacuous")
	}
	cut := tsvLen + (full.Len()-tsvLen)/2 // mid-dummy truncation
	if _, err := LoadModel(bytes.NewReader(full.Bytes()[:cut])); err == nil {
		t.Fatal("truncated dummy ROM loaded without error")
	} else if !strings.Contains(err.Error(), "dummy") {
		t.Errorf("error does not identify the dummy record: %v", err)
	}

	// Round-trip sanity: the intact stream restores both ROMs.
	restored, err := LoadModel(bytes.NewReader(full.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Dummy == nil {
		t.Error("dummy ROM lost in round-trip")
	}
}
