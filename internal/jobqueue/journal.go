package jobqueue

// Journal: the queue's durability layer over internal/wal. When
// Options.Journal is set, every lifecycle transition that matters for
// recovery is appended (and fsynced) to the log before it is acknowledged:
//
//	'S' submit            job ID, scenarios, meta, cost, submit time
//	'T' state transition  running / done / failed / cancelled (+ time, error)
//	'C' scenario complete one scenario's outcome, positioned by index
//
// Submit journals synchronously under q.mu — the 202 the HTTP layer returns
// is only sent after the record is on disk, so an accepted job is a promise
// that survives kill -9. Recovery (Queue.Recover) replays the log:
//
//   - jobs that were pending or running when the process died re-enter the
//     pending FIFO in their original submission order with their original
//     IDs. Running jobs restart from scenario zero: scenario solves are
//     deterministic (same inputs, same outputs), so re-running is safe, and
//     any partially journaled results are superseded by the re-run's.
//   - finished jobs (done / failed / cancelled) are restored with their
//     journaled results and keep aging against the TTL from their original
//     finish time; ones already past the TTL are dropped.
//
// Replay application is idempotent: a repeated 'T' running record resets the
// accumulated results (the re-run restarts the job), and 'C' records place
// results by scenario index, so the records a crash duplicated or compaction
// raced overwrite rather than double-count.
//
// The log is compacted once it exceeds Options.CompactBytes: the snapshot
// re-emits, in submission order, the minimal records that reconstruct every
// tracked job, and the WAL swaps it in atomically. Compaction runs under
// q.mu — the same lock every append takes — so no record can fall between
// the snapshot and the swap.
//
// Journalable jobs: scenarios must survive serialization, so jobs carrying
// runtime-only values — a DeltaTMap closure, a prebuilt Options.M
// preconditioner, an Options.Work workspace — are rejected at Submit with
// ErrNotJournalable when a journal is configured. Meta is journaled as a gob
// interface value: callers must gob.Register their concrete meta type.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	morestress "repro"
)

// Record kind tags (first byte of every journal payload).
const (
	recSubmit   byte = 'S'
	recState    byte = 'T'
	recScenario byte = 'C'
)

// ErrNotJournalable is returned by Submit when a journal is configured and a
// scenario carries runtime-only state (DeltaTMap, Options.M, Options.Work)
// that cannot be serialized for replay.
var ErrNotJournalable = errors.New("jobqueue: job carries runtime-only state (DeltaTMap / prebuilt preconditioner / workspace) and cannot be journaled")

// jobWire is the serializable projection of a morestress.Job: everything
// recovery needs to re-run the scenario, and nothing runtime-only.
type jobWire struct {
	Config      morestress.Config
	Rows, Cols  int
	DeltaT      float64
	GridSamples int
	Solver      morestress.SolverChoice
	Tol         float64
	MaxIter     int
	Restart     int
	Workers     int
	Precond     morestress.Precond
	Ordering    morestress.Ordering
	Precision   morestress.Precision
}

func toJobWire(j morestress.Job) jobWire {
	return jobWire{
		Config: j.Config, Rows: j.Rows, Cols: j.Cols,
		DeltaT: j.DeltaT, GridSamples: j.GridSamples, Solver: j.Solver,
		Tol: j.Options.Tol, MaxIter: j.Options.MaxIter, Restart: j.Options.Restart,
		Workers: j.Options.Workers, Precond: j.Options.Precond, Ordering: j.Options.Ordering,
		Precision: j.Options.Precision,
	}
}

func (w jobWire) job() morestress.Job {
	return morestress.Job{
		Config: w.Config, Rows: w.Rows, Cols: w.Cols,
		DeltaT: w.DeltaT, GridSamples: w.GridSamples, Solver: w.Solver,
		Options: morestress.SolverOptions{
			Tol: w.Tol, MaxIter: w.MaxIter, Restart: w.Restart,
			Workers: w.Workers, Precond: w.Precond, Ordering: w.Ordering,
			Precision: w.Precision,
		},
	}
}

// journalable reports whether the scenario can round-trip through the
// journal.
func journalable(j morestress.Job) bool {
	return j.DeltaTMap == nil && j.Options.M == nil && j.Options.Work == nil
}

// resultWire is the serializable projection of a JobResult. The solve
// outcome — convergence, iterations, residual, the sampled field, timing —
// survives recovery; the runtime Solution graph (assembly snapshot,
// warm-start seed, preconditioner provenance) does not, so a restored
// result reports Iterative() false.
type resultWire struct {
	Index            int
	Err              string
	CacheHit         bool
	LocalWait, Total time.Duration
	HasResult        bool
	VM               *morestress.Field
	Stats            morestress.SolverStats
	GlobalTime       time.Duration
	GlobalDoFs       int
}

func toResultWire(r *morestress.JobResult) resultWire {
	w := resultWire{Index: r.Index, CacheHit: r.CacheHit, LocalWait: r.LocalWait, Total: r.Total}
	if r.Err != nil {
		w.Err = r.Err.Error()
	}
	if r.Result != nil {
		w.HasResult = true
		w.VM = r.Result.VM
		w.Stats = r.Result.Stats
		w.GlobalTime = r.Result.GlobalTime
		w.GlobalDoFs = r.Result.GlobalDoFs
	}
	return w
}

func (w resultWire) result() *morestress.JobResult {
	r := &morestress.JobResult{Index: w.Index, CacheHit: w.CacheHit, LocalWait: w.LocalWait, Total: w.Total}
	if w.Err != "" {
		r.Err = errors.New(w.Err)
	}
	if w.HasResult {
		r.Result = &morestress.ArrayResult{
			VM: w.VM, Stats: w.Stats,
			GlobalTime: w.GlobalTime, GlobalDoFs: w.GlobalDoFs,
		}
	}
	return r
}

// submitRec journals one accepted job.
type submitRec struct {
	ID        string
	Submitted time.Time
	Cost      int64
	Scenarios []jobWire
	Meta      any
}

// stateRec journals one lifecycle transition.
type stateRec struct {
	ID    string
	State State
	Time  time.Time
	Err   string
}

// scenarioRec journals one completed scenario.
type scenarioRec struct {
	ID     string
	Result resultWire
}

// encodeRecord frames one journal payload: a kind tag followed by the gob
// encoding of the record struct.
func encodeRecord(kind byte, v any) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(kind)
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("jobqueue: encode journal record %q: %w", kind, err)
	}
	return buf.Bytes(), nil
}

// journalLocked appends one record to the journal (no-op without one) and
// triggers compaction when the log is over budget. Callers hold q.mu.
func (q *Queue) journalLocked(kind byte, v any) error {
	jl := q.opt.Journal
	if jl == nil {
		return nil
	}
	p, err := encodeRecord(kind, v)
	if err != nil {
		return err
	}
	if err := jl.Append(p); err != nil {
		return err
	}
	if jl.Size() > q.opt.CompactBytes {
		if err := q.compactLocked(); err != nil {
			return fmt.Errorf("jobqueue: journal compaction: %w", err)
		}
	}
	return nil
}

// journalBestEffort appends a record whose loss only costs re-execution —
// state transitions and scenario completions, which recovery reconstructs by
// re-running the job. Append failures are counted, not propagated: the job
// itself proceeds. Takes q.mu; callers must not hold it (or j.mu).
func (q *Queue) journalBestEffort(kind byte, v any) {
	if q.opt.Journal == nil {
		return
	}
	q.mu.Lock()
	err := q.journalLocked(kind, v)
	q.mu.Unlock()
	if err != nil {
		q.journalErrors.Add(1)
	}
}

// compactLocked snapshots every tracked job into a fresh journal segment and
// drops the old ones. Callers hold q.mu; the per-job locks are taken briefly
// in the q.mu → j.mu order. The snapshot emits jobs in submission order so a
// replay re-enqueues survivors exactly as Recover expects.
func (q *Queue) compactLocked() error {
	jobs := make([]*job, 0, len(q.jobs))
	for _, j := range q.jobs {
		jobs = append(jobs, j)
	}
	// Submission order: seq is assigned under q.mu at admission.
	for i := 1; i < len(jobs); i++ {
		for k := i; k > 0 && jobs[k-1].seq > jobs[k].seq; k-- {
			jobs[k-1], jobs[k] = jobs[k], jobs[k-1]
		}
	}
	return q.opt.Journal.Compact(func(emit func([]byte) error) error {
		emitRec := func(kind byte, v any) error {
			p, err := encodeRecord(kind, v)
			if err != nil {
				return err
			}
			return emit(p)
		}
		for _, j := range jobs {
			j.mu.Lock()
			state, started, finished := j.state, j.started, j.finished
			errMsg := ""
			if j.err != nil {
				errMsg = j.err.Error()
			}
			results := make([]*morestress.JobResult, len(j.results))
			copy(results, j.results)
			j.mu.Unlock()

			scenarios := make([]jobWire, len(j.scenarios))
			for i, sc := range j.scenarios {
				scenarios[i] = toJobWire(sc)
			}
			if err := emitRec(recSubmit, submitRec{
				ID: j.id, Submitted: j.submitted, Cost: j.cost,
				Scenarios: scenarios, Meta: j.meta,
			}); err != nil {
				return err
			}
			if state == StateRunning {
				if err := emitRec(recState, stateRec{ID: j.id, State: StateRunning, Time: started}); err != nil {
					return err
				}
			}
			for _, r := range results {
				if err := emitRec(recScenario, scenarioRec{ID: j.id, Result: toResultWire(r)}); err != nil {
					return err
				}
			}
			if state.Terminal() {
				if err := emitRec(recState, stateRec{ID: j.id, State: state, Time: finished, Err: errMsg}); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// RecoverStats reports what Queue.Recover reconstructed from the journal.
type RecoverStats struct {
	// Records is the number of journal records replayed.
	Records int
	// Requeued counts jobs that were pending or running at the crash and
	// re-entered the pending FIFO (original IDs, original order).
	Requeued int
	// Restored counts finished jobs whose results were reloaded and remain
	// fetchable until their TTL.
	Restored int
	// Expired counts finished jobs dropped because their terminal state was
	// already older than the TTL at recovery time.
	Expired int
}

// replayJob accumulates one job's journal records during Recover.
type replayJob struct {
	sub               submitRec
	seq               int64
	state             State
	started, finished time.Time
	errMsg            string
	results           []*resultWire // positioned by scenario index
}

// Recover replays the journal and rebuilds the queue's state: accepted jobs
// that never reached a terminal state re-enter the pending FIFO in their
// original order (running jobs restart from scenario zero — solves are
// deterministic, so the re-run reproduces the lost results), and finished
// jobs come back with their journaled results, aging against the TTL from
// their original finish time. Call it once, after New and before accepting
// traffic; without a journal it is a no-op. A decode failure on a
// checksum-valid record aborts recovery with an error — that is version
// drift or a bug, not crash damage, and silently dropping accepted jobs
// would break the queue's promise.
func (q *Queue) Recover() (RecoverStats, error) {
	var stats RecoverStats
	if q.opt.Journal == nil {
		return stats, nil
	}
	byID := make(map[string]*replayJob)
	var order []*replayJob
	err := q.opt.Journal.Replay(func(p []byte) error {
		stats.Records++
		if len(p) < 2 {
			return fmt.Errorf("jobqueue: journal record too short (%d bytes)", len(p))
		}
		dec := gob.NewDecoder(bytes.NewReader(p[1:]))
		switch kind := p[0]; kind {
		case recSubmit:
			var rec submitRec
			if err := dec.Decode(&rec); err != nil {
				return fmt.Errorf("jobqueue: decode submit record: %w", err)
			}
			if existing := byID[rec.ID]; existing != nil {
				// Duplicated submit (a compaction snapshot raced the
				// original append): refresh in place, keep the order slot.
				existing.sub = rec
				return nil
			}
			rj := &replayJob{sub: rec, seq: int64(len(order)), state: StatePending}
			byID[rec.ID] = rj
			order = append(order, rj)
		case recState:
			var rec stateRec
			if err := dec.Decode(&rec); err != nil {
				return fmt.Errorf("jobqueue: decode state record: %w", err)
			}
			rj := byID[rec.ID]
			if rj == nil {
				return nil // job compacted away concurrently with this append; harmless
			}
			rj.state = rec.State
			switch {
			case rec.State == StateRunning:
				// A (re-)run restarts the job from scenario zero: discard
				// results journaled by the previous attempt.
				rj.started, rj.results = rec.Time, nil
			case rec.State.Terminal():
				rj.finished, rj.errMsg = rec.Time, rec.Err
			}
		case recScenario:
			var rec scenarioRec
			if err := dec.Decode(&rec); err != nil {
				return fmt.Errorf("jobqueue: decode scenario record: %w", err)
			}
			rj := byID[rec.ID]
			if rj == nil {
				return nil
			}
			idx := rec.Result.Index
			if idx < 0 || idx >= len(rj.sub.Scenarios) {
				return fmt.Errorf("jobqueue: scenario record index %d outside job %s's %d scenarios", idx, rec.ID, len(rj.sub.Scenarios))
			}
			for len(rj.results) <= idx {
				rj.results = append(rj.results, nil)
			}
			w := rec.Result
			rj.results[idx] = &w
		default:
			return fmt.Errorf("jobqueue: unknown journal record kind %q", kind)
		}
		return nil
	})
	if err != nil {
		return stats, err
	}

	now := q.opt.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	requeued := false
	for _, rj := range order {
		switch {
		case rj.state.Terminal():
			if now.Sub(rj.finished) > q.opt.TTL {
				stats.Expired++
				continue
			}
			q.restoreLocked(rj)
			stats.Restored++
		default:
			q.requeueLocked(rj)
			stats.Requeued++
			requeued = true
		}
	}
	q.recovered = stats
	if requeued {
		q.wake()
	}
	return stats, nil
}

// requeueLocked re-admits a non-terminal journaled job as pending, keeping
// its original ID, submission time, and FIFO position (callers iterate in
// journal order). Callers hold q.mu. Recovered jobs are admitted even past
// Depth or MaxCost: they were already accepted, and an accepted job is a
// promise.
func (q *Queue) requeueLocked(rj *replayJob) {
	j := q.newJobLocked(rj)
	q.pending = append(q.pending, j)
	j.mu.Lock()
	j.publishLocked(Event{Type: EventState, State: StatePending})
	j.mu.Unlock()
	q.submitted.Add(1)
}

// restoreLocked rebuilds a finished journaled job — results, terminal state,
// and a synthesized event history so a late subscriber still sees a coherent
// replay. Callers hold q.mu.
func (q *Queue) restoreLocked(rj *replayJob) {
	j := q.newJobLocked(rj)
	j.started, j.finished = rj.started, rj.finished
	j.mu.Lock()
	defer j.mu.Unlock()
	j.publishLocked(Event{Type: EventState, State: StatePending})
	if !rj.started.IsZero() || rj.state != StateCancelled {
		j.state = StateRunning
		j.publishLocked(Event{Type: EventState, State: StateRunning})
	}
	for _, w := range rj.results {
		if w == nil {
			continue // hole from a lost record; the surviving results keep their indices
		}
		res := w.result()
		j.results = append(j.results, res)
		j.completed++
		ev := Event{Type: EventScenario, Scenario: res.Index}
		if res.Err != nil {
			j.failed++
			ev.Err = res.Err.Error()
		}
		j.publishLocked(ev)
	}
	var jerr error
	if rj.errMsg != "" {
		jerr = errors.New(rj.errMsg)
	}
	j.finishLocked(rj.state, jerr, rj.finished)
	q.submitted.Add(1)
	switch rj.state {
	case StateDone:
		q.jobsDone.Add(1)
	case StateFailed:
		q.jobsFailed.Add(1)
	case StateCancelled:
		q.jobsCancelled.Add(1)
	}
}

// newJobLocked builds the in-memory job record for a replayed submission and
// tracks it (jobs map, cost, sequence). Callers hold q.mu.
func (q *Queue) newJobLocked(rj *replayJob) *job {
	scenarios := make([]morestress.Job, len(rj.sub.Scenarios))
	for i, w := range rj.sub.Scenarios {
		scenarios[i] = w.job()
	}
	ctx, cancel := newJobContext()
	j := &job{
		id:        rj.sub.ID,
		scenarios: scenarios,
		meta:      rj.sub.Meta,
		cost:      rj.sub.Cost,
		ctx:       ctx,
		cancel:    cancel,
		seq:       q.nextSeq,
		state:     StatePending,
		submitted: rj.sub.Submitted,
		subs:      make(map[int]chan Event),
	}
	q.nextSeq++
	q.jobs[j.id] = j
	q.cost += j.cost
	return j
}
