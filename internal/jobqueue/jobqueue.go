// Package jobqueue is the asynchronous job layer of the serving stack: a
// bounded FIFO of multi-scenario solve jobs over the batch Engine. A caller
// submits a job and gets an ID back immediately instead of holding a
// connection for the whole solve; the job's lifecycle
//
//	pending ──▶ running ──▶ done | failed
//	   │            │
//	   └────────────┴─────▶ cancelled
//
// is observable by polling (Get), by subscription (Subscribe, the feed
// behind the server's SSE endpoint), or in aggregate (Stats). The FIFO is
// bounded: when Depth jobs are already queued, Submit fails with
// ErrQueueFull so the HTTP layer can push back (429) instead of buffering
// without limit. Finished jobs — done, failed, or cancelled — are retained
// for TTL so results can be fetched after completion, then garbage-collected.
//
// Scenarios within a job run sequentially through the SolveFunc (the Engine
// parallelizes internally, and the queue's Workers setting runs that many
// jobs concurrently); each completed scenario emits a progress event.
// Cancellation is cooperative: a pending job never starts, a running job
// stops at the next scenario boundary (its context is cancelled, so a
// context-aware SolveFunc may stop sooner), and already-finished jobs
// cannot be cancelled.
package jobqueue

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	morestress "repro"
	"repro/internal/wal"
)

// State is a job lifecycle state.
type State string

const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event types delivered to subscribers.
const (
	// EventState announces a lifecycle transition; State carries the new
	// state.
	EventState = "state"
	// EventScenario announces one completed scenario; Scenario is its index
	// and Completed/Failed the running totals.
	EventScenario = "scenario"
)

// Event is one observable job transition.
type Event struct {
	Type  string `json:"type"`
	JobID string `json:"jobId"`
	State State  `json:"state"`
	// Scenario is the index of the scenario an EventScenario reports
	// (0 for EventState events, whose index is meaningless).
	Scenario int `json:"scenario"`
	// Completed and Failed are scenario counts at event time; Total is the
	// job's scenario count.
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Total     int `json:"total"`
	// Err carries the scenario error of a failed EventScenario, or the
	// job-level error of a failed terminal EventState.
	Err string `json:"error,omitempty"`
	// Iterations, Residual, Precond, and WarmStart surface the global-stage
	// solver outcome of a successful iterative EventScenario: how many
	// PCG/GMRES iterations the scenario took, its final relative residual,
	// the resolved preconditioner, and whether the solve was seeded from a
	// previous solution on the same lattice. Zero/empty for state events,
	// failed scenarios, and direct solves.
	Iterations int `json:"iterations,omitempty"`
	// PrecondCached reports that the scenario's preconditioner came from
	// the lattice assembly's cache instead of being built by the solve.
	PrecondCached bool    `json:"precondCached,omitempty"`
	Residual      float64 `json:"residual,omitempty"`
	Precond       string  `json:"precond,omitempty"`
	// Precision is the storage precision the preconditioner factor was
	// held in ("float32" for the mixed-precision IC0 path, "float64"
	// otherwise); empty for state events, failures, and direct solves.
	Precision string `json:"precision,omitempty"`
	WarmStart bool   `json:"warmStart,omitempty"`
}

// SolveFunc solves one scenario. The context is the job's: it is cancelled
// when the job is cancelled or the queue closes, and implementations may
// honor it mid-solve or ignore it (the queue always stops at the next
// scenario boundary). A scenario failure is reported either through the
// result's Err field or the returned error; it does not abort the job.
type SolveFunc func(ctx context.Context, scenario morestress.Job) (*morestress.JobResult, error)

// Options configures a Queue.
type Options struct {
	// Depth bounds the pending FIFO (default 64). When Depth jobs are
	// queued and unclaimed, Submit returns ErrQueueFull.
	Depth int
	// Workers is the number of jobs solving concurrently (default 1:
	// strict FIFO — the engine underneath parallelizes within a job).
	Workers int
	// TTL is how long finished jobs (and their results) are retained
	// before garbage collection (default 10 minutes).
	TTL time.Duration
	// GCInterval is the sweep period (default TTL/10, clamped to
	// [100ms, 1min]).
	GCInterval time.Duration
	// MaxCost bounds the aggregate cost of every tracked job — queued,
	// running, and finished-but-retained (0 = unlimited). Each Submit
	// declares its job's cost in caller-defined units (the HTTP layer uses
	// field sample counts, the dominant memory term of a retained result);
	// the budget is released when the job expires or is deleted. Submit
	// returns ErrOverloaded while the budget is exhausted, so results held
	// for the TTL cannot accumulate without bound.
	MaxCost int64
	// Solve runs one scenario; required.
	Solve SolveFunc

	// Journal, when set, makes accepted work durable: Submit fsyncs a
	// record before returning (an accepted job is on disk), lifecycle
	// transitions and scenario completions follow, and Queue.Recover
	// replays the log after a restart. The queue owns appends and
	// compaction for the log but not its lifetime — the caller closes it
	// after Close returns. See journal.go for the record format and
	// recovery semantics.
	Journal *wal.Log
	// CompactBytes is the journal size that triggers compaction into a
	// snapshot of the currently tracked jobs (default 4 MiB).
	CompactBytes int64

	// now overrides the clock in tests.
	now func() time.Time
	// newID overrides job ID generation in tests (collision injection).
	newID func() (string, error)
}

// Snapshot is a point-in-time copy of a job's observable state.
type Snapshot struct {
	ID    string
	State State
	// Meta is the opaque value passed to Submit.
	Meta any
	// Total, Completed, and Failed count scenarios; Failed is the subset of
	// Completed that errored.
	Total, Completed, Failed int
	// Submitted, Started, Finished are lifecycle timestamps (zero until
	// reached).
	Submitted, Started, Finished time.Time
	// Wait is queue time (Submit to start, or to now while pending); Run is
	// solve time (start to finish, or to now while running).
	Wait, Run time.Duration
	// Results holds one entry per completed scenario, in submission order.
	Results []*morestress.JobResult
	// Err is the job-level failure message, set when State is failed.
	Err string
}

// Stats aggregates a queue.
type Stats struct {
	// Depth is the number of queued FIFO entries; Capacity its bound.
	Depth, Capacity int
	// Running is the number of jobs currently solving.
	Running int
	// Retained is the number of jobs currently tracked (any state).
	Retained int
	// Submitted..Cancelled are lifetime job counters.
	Submitted, Done, Failed, Cancelled int64
	// ScenariosSolved counts completed scenarios (including failed ones);
	// SolveTime is their cumulative wall time.
	ScenariosSolved int64
	SolveTime       time.Duration
	// Expired counts finished jobs dropped by TTL garbage collection.
	Expired int64
	// RetainedCost is the summed cost of every tracked job; MaxCost its
	// budget (0 = unlimited).
	RetainedCost, MaxCost int64
	// JournalErrors counts journal appends that failed after the job was
	// already accepted (the job still runs; a crash before its terminal
	// record lands re-runs it at recovery). Zero without a journal.
	JournalErrors int64
}

// Sentinel errors returned by Submit and Cancel.
var (
	ErrQueueFull   = errors.New("jobqueue: queue full")
	ErrOverloaded  = errors.New("jobqueue: retained-result budget exhausted; retry after results expire")
	ErrClosed      = errors.New("jobqueue: queue closed")
	ErrNotFound    = errors.New("jobqueue: no such job")
	ErrFinished    = errors.New("jobqueue: job already finished")
	ErrNoScenarios = errors.New("jobqueue: job has no scenarios")
)

// job is the internal record behind an ID.
type job struct {
	id        string
	scenarios []morestress.Job
	meta      any
	cost      int64
	seq       int64 // admission order, assigned under Queue.mu; immutable after
	ctx       context.Context
	cancel    context.CancelFunc

	mu sync.Mutex
	// All fields below are guarded by mu.
	state     State                   // guarded by mu
	submitted time.Time               // guarded by mu
	started   time.Time               // guarded by mu
	finished  time.Time               // guarded by mu
	completed int                     // guarded by mu
	failed    int                     // guarded by mu
	results   []*morestress.JobResult // guarded by mu
	err       error                   // guarded by mu
	events    []Event                 // guarded by mu
	subs      map[int]chan Event      // guarded by mu
	nextSub   int                     // guarded by mu
}

// Queue is a bounded asynchronous job queue; safe for concurrent use.
//
// Lock order: q.mu before j.mu, never the reverse.
type Queue struct {
	opt Options
	// notify wakes idle workers; pending jobs live in the slice below so
	// cancellation can remove them immediately (a buffered channel would
	// let cancelled carcasses hold queue capacity until a worker drained
	// them).
	notify chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup

	mu sync.Mutex
	// guarded by mu
	jobs      map[string]*job
	pending   []*job       // guarded by mu; FIFO: pending[0] runs next
	cost      int64        // guarded by mu; summed cost of every tracked job
	closed    bool         // guarded by mu
	nextSeq   int64        // guarded by mu; admission counter behind job.seq
	recovered RecoverStats // guarded by mu; result of the startup Recover

	running                   atomic.Int64
	submitted, jobsDone       atomic.Int64
	jobsFailed, jobsCancelled atomic.Int64
	scenariosSolved, expired  atomic.Int64
	solveNanos                atomic.Int64
	journalErrors             atomic.Int64
}

// New creates a queue and starts its workers and garbage collector.
// Options.Solve is required. Call Close to stop.
//
//stressvet:gang -- opt.Workers resident job workers plus one GC loop, all joined on Close
func New(opt Options) (*Queue, error) {
	if opt.Solve == nil {
		return nil, errors.New("jobqueue: Options.Solve is required")
	}
	if opt.Depth <= 0 {
		opt.Depth = 64
	}
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	if opt.TTL <= 0 {
		opt.TTL = 10 * time.Minute
	}
	if opt.GCInterval <= 0 {
		opt.GCInterval = opt.TTL / 10
		if opt.GCInterval < 100*time.Millisecond {
			opt.GCInterval = 100 * time.Millisecond
		}
		if opt.GCInterval > time.Minute {
			opt.GCInterval = time.Minute
		}
	}
	if opt.CompactBytes <= 0 {
		opt.CompactBytes = 4 << 20
	}
	if opt.now == nil {
		opt.now = time.Now
	}
	if opt.newID == nil {
		opt.newID = newID
	}
	q := &Queue{
		opt:    opt,
		notify: make(chan struct{}, opt.Workers),
		done:   make(chan struct{}),
		jobs:   make(map[string]*job),
	}
	for w := 0; w < opt.Workers; w++ {
		q.wg.Add(1)
		go q.worker()
	}
	q.wg.Add(1)
	go q.gcLoop()
	return q, nil
}

// Submit enqueues a job of one or more scenarios and returns its ID without
// waiting for it to run. meta is an opaque per-job value handed back in
// every Snapshot (the HTTP layer stores response-shaping flags there); cost
// draws from Options.MaxCost for the job's tracked lifetime (pass 0 when no
// budget is configured). Returns ErrQueueFull when the FIFO is at capacity
// and ErrOverloaded when the cost budget is exhausted — the two
// backpressure signals — and ErrClosed after Close.
func (q *Queue) Submit(scenarios []morestress.Job, meta any, cost int64) (string, error) {
	if len(scenarios) == 0 {
		return "", ErrNoScenarios
	}
	if q.opt.Journal != nil {
		for _, sc := range scenarios {
			if !journalable(sc) {
				return "", ErrNotJournalable
			}
		}
	}
	ctx, cancel := newJobContext()
	j := &job{
		scenarios: scenarios,
		meta:      meta,
		cost:      cost,
		ctx:       ctx,
		cancel:    cancel,
		state:     StatePending,
		submitted: q.opt.now(),
		subs:      make(map[int]chan Event),
	}

	q.mu.Lock()
	switch {
	case q.closed:
		q.mu.Unlock()
		cancel()
		return "", ErrClosed
	case len(q.pending) >= q.opt.Depth:
		q.mu.Unlock()
		cancel()
		return "", ErrQueueFull
	case q.opt.MaxCost > 0 && q.cost+cost > q.opt.MaxCost:
		q.mu.Unlock()
		cancel()
		return "", ErrOverloaded
	}
	// The ID is generated under q.mu so a collision with a tracked job is
	// detected and retried instead of silently replacing the old entry
	// (which would strand its subscribers and double-count its cost).
	id, err := q.newIDLocked()
	if err != nil {
		q.mu.Unlock()
		cancel()
		return "", err
	}
	j.id = id
	j.seq = q.nextSeq
	q.nextSeq++
	q.jobs[id] = j
	q.pending = append(q.pending, j)
	q.cost += cost
	// Publish the pending event while still holding q.mu: workers pop
	// under the same lock, so no later event can precede it.
	j.mu.Lock()
	j.publishLocked(Event{Type: EventState, State: StatePending})
	j.mu.Unlock()
	// Journal after admission (compaction snapshots walk q.jobs under this
	// same lock, so the record cannot fall between append and insert) but
	// before the ID is released: acceptance means the record is on disk.
	if q.opt.Journal != nil {
		wire := make([]jobWire, len(scenarios))
		for i, sc := range scenarios {
			wire[i] = toJobWire(sc)
		}
		rec := submitRec{ID: id, Submitted: j.submitted, Cost: cost, Scenarios: wire, Meta: meta}
		if err := q.journalLocked(recSubmit, rec); err != nil {
			// Undo the admission: a job whose acceptance never reached
			// disk was never accepted.
			delete(q.jobs, id)
			q.pending = q.pending[:len(q.pending)-1]
			q.cost -= cost
			q.mu.Unlock()
			cancel()
			return "", fmt.Errorf("jobqueue: journal submit: %w", err)
		}
	}
	q.mu.Unlock()

	q.submitted.Add(1)
	q.wake()
	return id, nil
}

// newIDLocked generates a job ID no tracked job already uses, retrying on
// the (vanishingly rare) 8-byte collision. Callers hold q.mu.
func (q *Queue) newIDLocked() (string, error) {
	for attempt := 0; ; attempt++ {
		id, err := q.opt.newID()
		if err != nil {
			return "", err
		}
		if _, taken := q.jobs[id]; !taken {
			return id, nil
		}
		if attempt >= 16 {
			return "", errors.New("jobqueue: could not generate an unused job id")
		}
	}
}

func newJobContext() (context.Context, context.CancelFunc) {
	return context.WithCancel(context.Background())
}

// wake nudges one idle worker; a full buffer means enough wake-ups are
// already outstanding (pop re-arms the signal while jobs remain queued).
func (q *Queue) wake() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// pop removes and returns the next pending job, nil when the queue is
// empty.
func (q *Queue) pop() *job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.pending) == 0 {
		return nil
	}
	j := q.pending[0]
	q.pending[0] = nil
	q.pending = q.pending[1:]
	if len(q.pending) > 0 {
		q.wake()
	}
	return j
}

// Get returns a snapshot of the job, or false if the ID is unknown (never
// submitted, or already garbage-collected).
func (q *Queue) Get(id string) (Snapshot, bool) {
	j := q.lookup(id)
	if j == nil {
		return Snapshot{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked(q.opt.now()), true
}

// Cancel cancels a job: a pending job becomes cancelled and never runs; a
// running job's context is cancelled and it stops at the next scenario
// boundary, keeping the scenarios already solved. Returns ErrNotFound for
// unknown IDs and ErrFinished when the job already reached a terminal state.
func (q *Queue) Cancel(id string) error {
	q.mu.Lock()
	j := q.jobs[id]
	if j == nil {
		q.mu.Unlock()
		return ErrNotFound
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		j.mu.Unlock()
		q.mu.Unlock()
		return ErrFinished
	case j.state == StatePending:
		// Drop the job from the FIFO so it stops holding queue capacity
		// (it may already be popped but unclaimed; the worker's claim
		// check skips it either way).
		for i, p := range q.pending {
			if p == j {
				q.pending = append(q.pending[:i], q.pending[i+1:]...)
				break
			}
		}
		now := q.opt.now()
		j.finishLocked(StateCancelled, nil, now)
		j.mu.Unlock()
		// Journal the cancellation under q.mu alone: compaction inside the
		// append takes every job's lock, so j.mu must be free here.
		if err := q.journalLocked(recState, stateRec{ID: id, State: StateCancelled, Time: now}); err != nil {
			q.journalErrors.Add(1)
		}
		q.mu.Unlock()
		q.jobsCancelled.Add(1)
	default: // running: the worker observes the context and finishes it.
		j.mu.Unlock()
		q.mu.Unlock()
	}
	j.cancel()
	return nil
}

// Subscribe returns a channel of the job's events: the full history so far
// is replayed first, then live events follow. The channel is closed after
// the terminal event (immediately, for already-finished jobs). The returned
// stop function detaches the subscription; it is safe to call more than
// once. ok is false for unknown IDs.
func (q *Queue) Subscribe(id string) (events <-chan Event, stop func(), ok bool) {
	j := q.lookup(id)
	if j == nil {
		return nil, nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	// A job emits at most one event per scenario plus one per lifecycle
	// transition, so this capacity guarantees publishLocked never blocks and no
	// event is ever dropped.
	ch := make(chan Event, len(j.scenarios)+8)
	for _, ev := range j.events {
		ch <- ev
	}
	if j.state.Terminal() {
		close(ch)
		return ch, func() {}, true
	}
	idx := j.nextSub
	j.nextSub++
	j.subs[idx] = ch
	var once sync.Once
	stop = func() {
		once.Do(func() {
			j.mu.Lock()
			defer j.mu.Unlock()
			if _, live := j.subs[idx]; live {
				delete(j.subs, idx)
				close(ch)
			}
		})
	}
	return ch, stop, true
}

// Stats returns a snapshot of the queue counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	retained := len(q.jobs)
	depth := len(q.pending)
	cost := q.cost
	q.mu.Unlock()
	return Stats{
		Depth:           depth,
		RetainedCost:    cost,
		MaxCost:         q.opt.MaxCost,
		Capacity:        q.opt.Depth,
		Running:         int(q.running.Load()),
		Retained:        retained,
		Submitted:       q.submitted.Load(),
		Done:            q.jobsDone.Load(),
		Failed:          q.jobsFailed.Load(),
		Cancelled:       q.jobsCancelled.Load(),
		ScenariosSolved: q.scenariosSolved.Load(),
		SolveTime:       time.Duration(q.solveNanos.Load()),
		Expired:         q.expired.Load(),
		JournalErrors:   q.journalErrors.Load(),
	}
}

// Accepting reports whether the queue takes new submissions: true until
// Close. It is a readiness signal, not an admission guarantee — a
// concurrent Submit can still hit ErrQueueFull or ErrOverloaded.
func (q *Queue) Accepting() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return !q.closed
}

// Recovered reports what the startup Recover call reconstructed (zero
// before Recover, or without a journal).
func (q *Queue) Recovered() RecoverStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.recovered
}

// Close stops the workers and the garbage collector, lands every
// still-queued job in the cancelled state (closing its subscribers), and
// cancels the context of running jobs, then waits for in-flight work to
// stop. Submitting to a closed queue returns ErrClosed; Get still serves
// retained jobs.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	// Queued jobs will never run: finish them now so pollers see a
	// terminal state and subscribers unblock. The cancellations are
	// journaled (j.mu released first — compaction takes every job lock)
	// so a restart does not resurrect work this shutdown already refused.
	for _, j := range q.pending {
		j.mu.Lock()
		if j.state != StatePending {
			j.mu.Unlock()
			continue
		}
		now := q.opt.now()
		j.finishLocked(StateCancelled, nil, now)
		j.mu.Unlock()
		q.jobsCancelled.Add(1)
		if err := q.journalLocked(recState, stateRec{ID: j.id, State: StateCancelled, Time: now}); err != nil {
			q.journalErrors.Add(1)
		}
	}
	q.pending = nil
	jobs := make([]*job, 0, len(q.jobs))
	for _, j := range q.jobs {
		jobs = append(jobs, j)
	}
	q.mu.Unlock()
	close(q.done)
	for _, j := range jobs {
		j.cancel()
	}
	q.wg.Wait()
}

func (q *Queue) lookup(id string) *job {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.jobs[id]
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		select {
		case <-q.done:
			return
		case <-q.notify:
		}
		for {
			j := q.pop()
			if j == nil {
				break
			}
			q.run(j)
			select {
			case <-q.done:
				return
			default:
			}
		}
	}
}

// run executes one job: claim it (skipping jobs cancelled while queued),
// solve each scenario in order, and land it in a terminal state.
func (q *Queue) run(j *job) {
	j.mu.Lock()
	if j.state != StatePending {
		// Cancelled while queued; Cancel already finished it.
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = q.opt.now()
	started := j.started
	j.publishLocked(Event{Type: EventState, State: StateRunning})
	j.mu.Unlock()
	q.journalBestEffort(recState, stateRec{ID: j.id, State: StateRunning, Time: started})

	q.running.Add(1)
	defer q.running.Add(-1)

	for i, sc := range j.scenarios {
		if j.ctx.Err() != nil {
			now := q.opt.now()
			j.mu.Lock()
			j.finishLocked(StateCancelled, nil, now)
			j.mu.Unlock()
			q.jobsCancelled.Add(1)
			q.journalBestEffort(recState, stateRec{ID: j.id, State: StateCancelled, Time: now})
			return
		}
		start := q.opt.now()
		res, err := q.opt.Solve(j.ctx, sc)
		if res == nil {
			res = &morestress.JobResult{Err: err}
		}
		if res.Err == nil && err != nil {
			res.Err = err
		}
		// A scenario that errored after the job's context was cancelled
		// was interrupted, not solved: a context-aware SolveFunc bails
		// with ctx.Err(). Record nothing for it — a phantom failed
		// scenario would flip the terminal state to failed when the
		// cancel lands on the last scenario — and finish the job.
		if j.ctx.Err() != nil && res.Err != nil {
			now := q.opt.now()
			j.mu.Lock()
			j.finishLocked(StateCancelled, nil, now)
			j.mu.Unlock()
			q.jobsCancelled.Add(1)
			q.journalBestEffort(recState, stateRec{ID: j.id, State: StateCancelled, Time: now})
			return
		}
		res.Index = i
		q.solveNanos.Add(int64(q.opt.now().Sub(start)))
		q.scenariosSolved.Add(1)
		j.mu.Lock()
		j.results = append(j.results, res)
		j.completed++
		ev := Event{Type: EventScenario, Scenario: i}
		if res.Err != nil {
			j.failed++
			ev.Err = res.Err.Error()
		} else if res.Result != nil && res.Result.Iterative() {
			ev.Iterations = res.Result.Stats.Iterations
			ev.Residual = res.Result.Stats.Residual
			ev.Precond = res.Result.Stats.Precond.String()
			ev.Precision = res.Result.Stats.Precision.String()
			ev.WarmStart = res.Result.Stats.Warm
			ev.PrecondCached = res.Result.Solution.PrecondShared
		}
		j.publishLocked(ev)
		j.mu.Unlock()
		q.journalBestEffort(recScenario, scenarioRec{ID: j.id, Result: toResultWire(res)})
	}

	// Every scenario was recorded (interrupted ones return inside the
	// loop), so completed == len(scenarios) here: the job ran to the end
	// even if its context was cancelled late, and the outcome is decided
	// by the scenario errors alone.
	now := q.opt.now()
	j.mu.Lock()
	state, jerr := StateDone, error(nil)
	if j.failed > 0 {
		state = StateFailed
		jerr = fmt.Errorf("%d of %d scenarios failed", j.failed, len(j.scenarios))
	}
	j.finishLocked(state, jerr, now)
	j.mu.Unlock()
	if state == StateFailed {
		q.jobsFailed.Add(1)
	} else {
		q.jobsDone.Add(1)
	}
	rec := stateRec{ID: j.id, State: state, Time: now}
	if jerr != nil {
		rec.Err = jerr.Error()
	}
	q.journalBestEffort(recState, rec)
}

// finishLocked lands the job in a terminal state, publishes the final event,
// and closes every subscriber. Callers hold j.mu.
func (j *job) finishLocked(s State, err error, now time.Time) {
	j.state = s
	j.err = err
	j.finished = now
	ev := Event{Type: EventState, State: s}
	if err != nil {
		ev.Err = err.Error()
	}
	j.publishLocked(ev)
	for idx, ch := range j.subs {
		delete(j.subs, idx)
		close(ch)
	}
	j.cancel()
}

// publishLocked appends the event to the job's history and fans it out. Callers
// hold j.mu. Subscriber channels are sized so the send never blocks.
func (j *job) publishLocked(ev Event) {
	ev.JobID = j.id
	ev.Completed = j.completed
	ev.Failed = j.failed
	ev.Total = len(j.scenarios)
	if ev.State == "" {
		ev.State = j.state
	}
	j.events = append(j.events, ev)
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default: // unreachable by construction; never block the worker
		}
	}
}

func (j *job) snapshotLocked(now time.Time) Snapshot {
	s := Snapshot{
		ID:        j.id,
		State:     j.state,
		Meta:      j.meta,
		Total:     len(j.scenarios),
		Completed: j.completed,
		Failed:    j.failed,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
		Results:   append([]*morestress.JobResult(nil), j.results...),
	}
	if j.err != nil {
		s.Err = j.err.Error()
	}
	switch {
	case j.state == StatePending:
		s.Wait = now.Sub(j.submitted)
	case !j.started.IsZero():
		s.Wait = j.started.Sub(j.submitted)
	case !j.finished.IsZero():
		// Cancelled while still queued: the wait ended at cancellation.
		s.Wait = j.finished.Sub(j.submitted)
	}
	switch {
	case j.state == StateRunning:
		s.Run = now.Sub(j.started)
	case !j.finished.IsZero() && !j.started.IsZero():
		s.Run = j.finished.Sub(j.started)
	}
	return s
}

// gcLoop periodically drops finished jobs older than TTL.
func (q *Queue) gcLoop() {
	defer q.wg.Done()
	t := time.NewTicker(q.opt.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-q.done:
			return
		case <-t.C:
			q.gcSweep(q.opt.now())
		}
	}
}

// gcSweep removes finished jobs whose terminal state is older than TTL.
// A finished job is never dropped before its TTL, read or not.
func (q *Queue) gcSweep(now time.Time) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for id, j := range q.jobs {
		j.mu.Lock()
		expired := j.state.Terminal() && now.Sub(j.finished) > q.opt.TTL
		j.mu.Unlock()
		if expired {
			delete(q.jobs, id)
			q.cost -= j.cost
			q.expired.Add(1)
		}
	}
}

func newID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("jobqueue: generate id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}
