package jobqueue

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	morestress "repro"
)

// stubSolve returns a SolveFunc that never touches the real engine: it
// records each invocation through record (keyed by the scenario's DeltaT,
// which tests make unique) and fakes a result after an optional delay.
func stubSolve(delay time.Duration, record func(deltaT float64)) SolveFunc {
	return func(ctx context.Context, sc morestress.Job) (*morestress.JobResult, error) {
		if record != nil {
			record(sc.DeltaT)
		}
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
			}
		}
		return &morestress.JobResult{Result: &morestress.ArrayResult{}}, nil
	}
}

// scenario fabricates a cheap scenario with an identifying ΔT.
func scenario(deltaT float64) morestress.Job {
	return morestress.Job{Rows: 1, Cols: 1, DeltaT: deltaT}
}

func newTestQueue(t *testing.T, opt Options) *Queue {
	t.Helper()
	q, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(q.Close)
	return q
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, q *Queue, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s, ok := q.Get(id)
		if !ok {
			t.Fatalf("job %s vanished while waiting for %s", id, want)
		}
		if s.State == want {
			return s
		}
		if s.State.Terminal() {
			t.Fatalf("job %s reached terminal %s while waiting for %s", id, s.State, want)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Snapshot{}
}

func TestSubmitRunsToDone(t *testing.T) {
	q := newTestQueue(t, Options{Solve: stubSolve(0, nil)})
	id, err := q.Submit([]morestress.Job{scenario(1), scenario(2), scenario(3)}, "meta-value", 0)
	if err != nil {
		t.Fatal(err)
	}
	s := waitState(t, q, id, StateDone)
	if s.Completed != 3 || s.Failed != 0 || s.Total != 3 {
		t.Errorf("snapshot counts = %d/%d failed %d, want 3/3 failed 0", s.Completed, s.Total, s.Failed)
	}
	if len(s.Results) != 3 {
		t.Errorf("results = %d, want 3", len(s.Results))
	}
	if s.Meta != "meta-value" {
		t.Errorf("meta = %v, want meta-value", s.Meta)
	}
	if s.Submitted.IsZero() || s.Started.IsZero() || s.Finished.IsZero() {
		t.Errorf("missing lifecycle timestamps: %+v", s)
	}
	if s.Wait < 0 || s.Run < 0 {
		t.Errorf("negative durations: wait %v run %v", s.Wait, s.Run)
	}
	st := q.Stats()
	if st.Done != 1 || st.ScenariosSolved != 3 {
		t.Errorf("stats = %+v, want 1 done / 3 scenarios", st)
	}
}

func TestScenarioErrorFailsJob(t *testing.T) {
	boom := errors.New("solver exploded")
	solve := func(ctx context.Context, sc morestress.Job) (*morestress.JobResult, error) {
		if sc.DeltaT == 2 {
			return nil, boom
		}
		return &morestress.JobResult{}, nil
	}
	q := newTestQueue(t, Options{Solve: solve})
	id, err := q.Submit([]morestress.Job{scenario(1), scenario(2), scenario(3)}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := waitState(t, q, id, StateFailed)
	if s.Completed != 3 || s.Failed != 1 {
		t.Errorf("completed/failed = %d/%d, want 3/1", s.Completed, s.Failed)
	}
	if s.Err == "" {
		t.Error("failed job carries no error")
	}
	if s.Results[1].Err == nil {
		t.Error("failing scenario's result has no error")
	}
	if st := q.Stats(); st.Failed != 1 || st.Done != 0 {
		t.Errorf("stats = %+v, want 1 failed", st)
	}
}

func TestSubmitValidation(t *testing.T) {
	q := newTestQueue(t, Options{Solve: stubSolve(0, nil)})
	if _, err := q.Submit(nil, nil, 0); !errors.Is(err, ErrNoScenarios) {
		t.Errorf("empty submit: err = %v, want ErrNoScenarios", err)
	}
	if _, err := New(Options{}); err == nil {
		t.Error("New without Solve succeeded")
	}
}

// TestBackpressure fills the bounded FIFO and checks Submit pushes back with
// ErrQueueFull instead of buffering without bound.
func TestBackpressure(t *testing.T) {
	block := make(chan struct{})
	solve := func(ctx context.Context, sc morestress.Job) (*morestress.JobResult, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &morestress.JobResult{}, nil
	}
	q := newTestQueue(t, Options{Depth: 2, Workers: 1, Solve: solve})
	defer close(block)

	// First job occupies the worker; two more fill the FIFO.
	first, err := q.Submit([]morestress.Job{scenario(0)}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, first, StateRunning)
	for i := 0; i < 2; i++ {
		if _, err := q.Submit([]morestress.Job{scenario(float64(i + 1))}, nil, 0); err != nil {
			t.Fatalf("fill submit %d: %v", i, err)
		}
	}
	if _, err := q.Submit([]morestress.Job{scenario(9)}, nil, 0); !errors.Is(err, ErrQueueFull) {
		t.Errorf("over-capacity submit: err = %v, want ErrQueueFull", err)
	}
	if st := q.Stats(); st.Depth != 2 || st.Capacity != 2 {
		t.Errorf("stats depth/capacity = %d/%d, want 2/2", st.Depth, st.Capacity)
	}
}

func TestCancelPendingNeverRuns(t *testing.T) {
	block := make(chan struct{})
	var ran sync.Map
	solve := func(ctx context.Context, sc morestress.Job) (*morestress.JobResult, error) {
		ran.Store(sc.DeltaT, true)
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &morestress.JobResult{}, nil
	}
	q := newTestQueue(t, Options{Workers: 1, Solve: solve})

	first, err := q.Submit([]morestress.Job{scenario(1)}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, first, StateRunning)
	second, err := q.Submit([]morestress.Job{scenario(2)}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Cancel(second); err != nil {
		t.Fatal(err)
	}
	s, ok := q.Get(second)
	if !ok || s.State != StateCancelled {
		t.Fatalf("cancelled pending job state = %v (ok=%v), want cancelled", s.State, ok)
	}
	// Cancelling again is ErrFinished; unknown IDs are ErrNotFound.
	if err := q.Cancel(second); !errors.Is(err, ErrFinished) {
		t.Errorf("double cancel: err = %v, want ErrFinished", err)
	}
	if err := q.Cancel("deadbeefdeadbeef"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown cancel: err = %v, want ErrNotFound", err)
	}
	// Unblock the runner and drain; the cancelled job must never have run.
	close(block)
	waitState(t, q, first, StateDone)
	if _, did := ran.Load(2.0); did {
		t.Error("cancelled pending job ran anyway")
	}
	if st := q.Stats(); st.Cancelled != 1 {
		t.Errorf("stats cancelled = %d, want 1", st.Cancelled)
	}
}

// TestCancelRunningStopsAtBoundary cancels a running multi-scenario job and
// checks it stops at the next scenario boundary, keeping solved results.
func TestCancelRunningStopsAtBoundary(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	solve := func(ctx context.Context, sc morestress.Job) (*morestress.JobResult, error) {
		once.Do(func() { close(started) })
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &morestress.JobResult{}, nil
	}
	q := newTestQueue(t, Options{Solve: solve})
	id, err := q.Submit([]morestress.Job{scenario(1), scenario(2), scenario(3)}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := q.Cancel(id); err != nil {
		t.Fatal(err)
	}
	close(release)
	deadline := time.Now().Add(10 * time.Second)
	for {
		s, ok := q.Get(id)
		if !ok {
			t.Fatal("job vanished")
		}
		if s.State.Terminal() {
			if s.State != StateCancelled {
				t.Fatalf("state = %s, want cancelled", s.State)
			}
			if s.Completed >= s.Total {
				t.Errorf("cancelled job completed all %d scenarios", s.Total)
			}
			if len(s.Results) != s.Completed {
				t.Errorf("results = %d, completed = %d", len(s.Results), s.Completed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled job never finished")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubscribeReplaysAndStreams(t *testing.T) {
	gate := make(chan struct{})
	solve := func(ctx context.Context, sc morestress.Job) (*morestress.JobResult, error) {
		<-gate
		return &morestress.JobResult{}, nil
	}
	q := newTestQueue(t, Options{Solve: solve})
	id, err := q.Submit([]morestress.Job{scenario(1), scenario(2)}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	events, stop, ok := q.Subscribe(id)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer stop()
	gate <- struct{}{}
	gate <- struct{}{}

	var got []Event
	for ev := range events {
		got = append(got, ev)
	}
	// pending, running, scenario 0, scenario 1, done.
	if len(got) != 5 {
		t.Fatalf("got %d events %+v, want 5", len(got), got)
	}
	wantStates := []State{StatePending, StateRunning, StateRunning, StateRunning, StateDone}
	wantTypes := []string{EventState, EventState, EventScenario, EventScenario, EventState}
	for i, ev := range got {
		if ev.Type != wantTypes[i] || ev.State != wantStates[i] {
			t.Errorf("event %d = {%s %s}, want {%s %s}", i, ev.Type, ev.State, wantTypes[i], wantStates[i])
		}
		if ev.JobID != id || ev.Total != 2 {
			t.Errorf("event %d misattributed: %+v", i, ev)
		}
	}
	if got[3].Completed != 2 {
		t.Errorf("second scenario event reports %d completed, want 2", got[3].Completed)
	}

	// A late subscriber gets the full history and an already-closed channel.
	late, stopLate, ok := q.Subscribe(id)
	if !ok {
		t.Fatal("late subscribe failed")
	}
	defer stopLate()
	var replay []Event
	for ev := range late {
		replay = append(replay, ev)
	}
	if len(replay) != 5 {
		t.Errorf("late subscriber replayed %d events, want 5", len(replay))
	}

	if _, _, ok := q.Subscribe("deadbeefdeadbeef"); ok {
		t.Error("subscribe to unknown job succeeded")
	}
}

// TestGCRespectsTTL drives the sweep with a fake clock: a finished, never
// read job must survive sweeps strictly within TTL and be dropped after.
func TestGCRespectsTTL(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	now := base
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	const ttl = time.Minute
	// A long GCInterval keeps the background loop out of the way; the test
	// drives gcSweep directly.
	q := newTestQueue(t, Options{Solve: stubSolve(0, nil), TTL: ttl, GCInterval: time.Hour, now: clock})
	id, err := q.Submit([]morestress.Job{scenario(1)}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for completion without Get: the job must stay "unread".
	deadline := time.Now().Add(10 * time.Second)
	for q.Stats().Done == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(time.Millisecond)
	}

	advance(ttl - time.Second)
	q.gcSweep(clock())
	if _, ok := q.Get(id); !ok {
		t.Fatal("GC dropped an unread finished result before its TTL")
	}
	advance(2 * time.Second) // now past TTL
	q.gcSweep(clock())
	if _, ok := q.Get(id); ok {
		t.Error("expired job survived GC")
	}
	if st := q.Stats(); st.Expired != 1 || st.Retained != 0 {
		t.Errorf("stats = %+v, want 1 expired / 0 retained", st)
	}
	// An expired ID reads as not found everywhere.
	if err := q.Cancel(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel after GC: err = %v, want ErrNotFound", err)
	}
}

// TestGCSkipsUnfinished checks the sweep never touches pending or running
// jobs no matter how old they are.
func TestGCSkipsUnfinished(t *testing.T) {
	block := make(chan struct{})
	solve := func(ctx context.Context, sc morestress.Job) (*morestress.JobResult, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &morestress.JobResult{}, nil
	}
	q := newTestQueue(t, Options{Workers: 1, TTL: time.Millisecond, GCInterval: time.Hour, Solve: solve})
	defer close(block)
	running, err := q.Submit([]morestress.Job{scenario(1)}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, running, StateRunning)
	pending, err := q.Submit([]morestress.Job{scenario(2)}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	q.gcSweep(time.Now().Add(time.Hour))
	if _, ok := q.Get(running); !ok {
		t.Error("GC dropped a running job")
	}
	if _, ok := q.Get(pending); !ok {
		t.Error("GC dropped a pending job")
	}
}

func TestCloseRejectsSubmitAndStopsWork(t *testing.T) {
	q, err := New(Options{Solve: stubSolve(time.Hour, nil)})
	if err != nil {
		t.Fatal(err)
	}
	id, err := q.Submit([]morestress.Job{scenario(1)}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, id, StateRunning)
	done := make(chan struct{})
	go func() {
		q.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return (running job not cancelled)")
	}
	if _, err := q.Submit([]morestress.Job{scenario(2)}, nil, 0); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: err = %v, want ErrClosed", err)
	}
	q.Close() // idempotent
}

// TestQueueRaceStress is the concurrency satellite: N producers submit while
// M pollers read snapshots, subscribe, and query stats, and a canceller
// deletes a random slice of jobs — run under -race in CI. It asserts the two
// queue invariants: no job is lost (every submitted job reaches a terminal
// state) and no scenario is double-run (each unique scenario solves at most
// once, exactly once for jobs that finish done).
func TestQueueRaceStress(t *testing.T) {
	const (
		producers       = 4
		jobsPerProducer = 25
		scenariosPerJob = 3
		pollers         = 4
		workers         = 4
	)
	var idsMu sync.Mutex
	var runs sync.Map // scenario ΔT -> *atomic.Int64 invocation count
	record := func(dt float64) {
		v, _ := runs.LoadOrStore(dt, new(atomic.Int64))
		v.(*atomic.Int64).Add(1)
	}
	q := newTestQueue(t, Options{
		Depth:   producers*jobsPerProducer + 1,
		Workers: workers,
		TTL:     time.Hour, // nothing may expire during the stress run
		Solve:   stubSolve(100*time.Microsecond, record),
	})

	ids := make([][]string, producers)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for n := 0; n < jobsPerProducer; n++ {
				scs := make([]morestress.Job, scenariosPerJob)
				for s := range scs {
					// Unique ΔT per (producer, job, scenario).
					scs[s] = scenario(float64(p*1_000_000 + n*1_000 + s))
				}
				id, err := q.Submit(scs, p, 0)
				if err != nil {
					t.Errorf("producer %d submit %d: %v", p, n, err)
					return
				}
				idsMu.Lock()
				ids[p] = append(ids[p], id)
				idsMu.Unlock()
			}
		}(p)
	}

	stopPolling := make(chan struct{})
	var pollWG sync.WaitGroup
	for m := 0; m < pollers; m++ {
		pollWG.Add(1)
		go func(m int) {
			defer pollWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stopPolling:
					return
				default:
				}
				q.Stats()
				idsMu.Lock()
				var id string
				if own := ids[m%producers]; len(own) > 0 {
					id = own[i%len(own)]
				}
				idsMu.Unlock()
				if id == "" {
					continue
				}
				if s, ok := q.Get(id); ok && s.Completed > s.Total {
					t.Errorf("job %s over-completed: %d/%d", id, s.Completed, s.Total)
				}
				if ev, stop, ok := q.Subscribe(id); ok {
					// Drain whatever is buffered without blocking the queue.
					stop()
					for range ev {
					}
				}
			}
		}(m)
	}

	// The canceller: aggressively cancel a fixed subset as it appears.
	wg.Add(1)
	cancelled := make(map[string]bool)
	go func() {
		defer wg.Done()
		for round := 0; round < 200; round++ {
			idsMu.Lock()
			for p := range ids {
				if len(ids[p]) > 0 && round%4 == p {
					id := ids[p][round%len(ids[p])]
					if q.Cancel(id) == nil {
						cancelled[id] = true
					}
				}
			}
			idsMu.Unlock()
			time.Sleep(50 * time.Microsecond)
		}
	}()
	wg.Wait()

	// Drain: every submitted job must land in a terminal state (none lost).
	deadline := time.Now().Add(30 * time.Second)
	for _, own := range ids {
		for _, id := range own {
			for {
				s, ok := q.Get(id)
				if !ok {
					t.Fatalf("job %s lost (TTL is an hour; GC must not have dropped it)", id)
				}
				if s.State.Terminal() {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("job %s stuck in %s", id, s.State)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	close(stopPolling)
	pollWG.Wait()

	// No double runs, and done jobs ran every scenario exactly once.
	for p, own := range ids {
		for n, id := range own {
			s, _ := q.Get(id)
			for sc := 0; sc < scenariosPerJob; sc++ {
				dt := float64(p*1_000_000 + n*1_000 + sc)
				var count int64
				if v, ok := runs.Load(dt); ok {
					count = v.(*atomic.Int64).Load()
				}
				if count > 1 {
					t.Errorf("scenario %v ran %d times (double-run)", dt, count)
				}
				if s.State == StateDone && count != 1 {
					t.Errorf("done job %s scenario %d ran %d times, want 1", id, sc, count)
				}
			}
			if s.State == StateCancelled && !cancelled[id] {
				t.Errorf("job %s cancelled but never Cancel()ed", id)
			}
		}
	}
	st := q.Stats()
	total := st.Done + st.Failed + st.Cancelled
	if st.Submitted != producers*jobsPerProducer || total != st.Submitted {
		t.Errorf("stats: submitted %d, terminal %d (+%d done/%d failed/%d cancelled)",
			st.Submitted, total, st.Done, st.Failed, st.Cancelled)
	}
}

// TestCancelFreesQueueCapacity is the regression test for cancelled-but-
// queued jobs wedging the bounded FIFO: after a queued job is cancelled its
// slot must be reusable immediately, not when a worker drains the carcass.
func TestCancelFreesQueueCapacity(t *testing.T) {
	block := make(chan struct{})
	solve := func(ctx context.Context, sc morestress.Job) (*morestress.JobResult, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &morestress.JobResult{}, nil
	}
	q := newTestQueue(t, Options{Depth: 1, Workers: 1, Solve: solve})
	defer close(block)

	first, err := q.Submit([]morestress.Job{scenario(1)}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, first, StateRunning)
	queued, err := q.Submit([]morestress.Job{scenario(2)}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit([]morestress.Job{scenario(3)}, nil, 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue not full before cancel: %v", err)
	}
	if err := q.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.Depth != 0 {
		t.Errorf("depth = %d after cancelling the only queued job, want 0", st.Depth)
	}
	replacement, err := q.Submit([]morestress.Job{scenario(4)}, nil, 0)
	if err != nil {
		t.Fatalf("submit after cancel still rejected: %v", err)
	}
	if s, ok := q.Get(replacement); !ok || s.State != StatePending {
		t.Errorf("replacement job state = %v (ok=%v), want pending", s.State, ok)
	}
}

// TestCloseCancelsQueuedJobs is the regression test for Close leaving
// queued jobs pending forever: they must land in cancelled so pollers see a
// terminal state and subscribers' channels close.
func TestCloseCancelsQueuedJobs(t *testing.T) {
	block := make(chan struct{})
	solve := func(ctx context.Context, sc morestress.Job) (*morestress.JobResult, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &morestress.JobResult{}, nil
	}
	q, err := New(Options{Workers: 1, Solve: solve})
	if err != nil {
		t.Fatal(err)
	}
	defer close(block)
	running, err := q.Submit([]morestress.Job{scenario(1)}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, running, StateRunning)
	queued, err := q.Submit([]morestress.Job{scenario(2)}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	events, stop, ok := q.Subscribe(queued)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer stop()

	done := make(chan struct{})
	go func() {
		q.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung")
	}
	s, ok := q.Get(queued)
	if !ok || s.State != StateCancelled {
		t.Fatalf("queued job after Close: state %v (ok=%v), want cancelled", s.State, ok)
	}
	if s.Wait <= 0 {
		t.Errorf("cancelled-while-queued job reports wait %v, want > 0", s.Wait)
	}
	// The subscription must terminate (last event cancelled, then close).
	deadline := time.After(10 * time.Second)
	var last Event
	for {
		select {
		case ev, open := <-events:
			if !open {
				if last.State != StateCancelled {
					t.Errorf("final event state %s, want cancelled", last.State)
				}
				return
			}
			last = ev
		case <-deadline:
			t.Fatal("subscriber channel never closed after Close")
		}
	}
}

// TestPendingEventAlwaysFirst is the regression test for the submit/worker
// race on the event history: no matter how fast the worker claims the job,
// the replayed history must begin with the pending state event.
func TestPendingEventAlwaysFirst(t *testing.T) {
	q := newTestQueue(t, Options{Workers: 4, Solve: stubSolve(0, nil)})
	for i := 0; i < 50; i++ {
		id, err := q.Submit([]morestress.Job{scenario(float64(i))}, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		events, stop, ok := q.Subscribe(id)
		if !ok {
			t.Fatal("subscribe failed")
		}
		first := <-events
		stop()
		for range events {
		}
		if first.Type != EventState || first.State != StatePending {
			t.Fatalf("submission %d: first event = {%s %s}, want {state pending}", i, first.Type, first.State)
		}
	}
}

// TestCancelDuringFinalScenario is the regression test for cancellation
// landing in "failed": a context-aware SolveFunc interrupted on the last
// (here: only) scenario must yield a cancelled job with no phantom failed
// scenario recorded.
func TestCancelDuringFinalScenario(t *testing.T) {
	started := make(chan struct{})
	solve := func(ctx context.Context, sc morestress.Job) (*morestress.JobResult, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	q := newTestQueue(t, Options{Solve: solve})
	id, err := q.Submit([]morestress.Job{scenario(1)}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := q.Cancel(id); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		s, ok := q.Get(id)
		if !ok {
			t.Fatal("job vanished")
		}
		if s.State.Terminal() {
			if s.State != StateCancelled {
				t.Fatalf("state = %s, want cancelled (not failed)", s.State)
			}
			if s.Completed != 0 || s.Failed != 0 || len(s.Results) != 0 {
				t.Errorf("interrupted scenario recorded: %d completed / %d failed / %d results",
					s.Completed, s.Failed, len(s.Results))
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(time.Millisecond)
	}
	st := q.Stats()
	if st.Cancelled != 1 || st.Failed != 0 || st.ScenariosSolved != 0 {
		t.Errorf("stats = %+v, want 1 cancelled / 0 failed / 0 scenarios solved", st)
	}
}

// TestResultIndexStamped checks Snapshot.Results carry their scenario index
// even when the SolveFunc (like Engine.Solve) always reports index 0.
func TestResultIndexStamped(t *testing.T) {
	q := newTestQueue(t, Options{Solve: stubSolve(0, nil)})
	id, err := q.Submit([]morestress.Job{scenario(1), scenario(2), scenario(3)}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := waitState(t, q, id, StateDone)
	for i, res := range s.Results {
		if res.Index != i {
			t.Errorf("result %d has Index %d", i, res.Index)
		}
	}
}

// TestResultBudget checks the retained-cost budget: submissions beyond
// MaxCost bounce with ErrOverloaded until garbage collection releases the
// cost of expired jobs.
func TestResultBudget(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	now := base
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	const ttl = time.Minute
	q := newTestQueue(t, Options{Solve: stubSolve(0, nil), TTL: ttl, GCInterval: time.Hour, MaxCost: 100, now: clock})

	heavy, err := q.Submit([]morestress.Job{scenario(1)}, nil, 60)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, heavy, StateDone)
	// The finished job still holds its cost: 60 + 50 > 100.
	if _, err := q.Submit([]morestress.Job{scenario(2)}, nil, 50); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-budget submit: err = %v, want ErrOverloaded", err)
	}
	if st := q.Stats(); st.RetainedCost != 60 || st.MaxCost != 100 {
		t.Errorf("stats cost = %d/%d, want 60/100", st.RetainedCost, st.MaxCost)
	}
	// 40 still fits alongside the retained 60.
	small, err := q.Submit([]morestress.Job{scenario(3)}, nil, 40)
	if err != nil {
		t.Fatalf("in-budget submit rejected: %v", err)
	}
	waitState(t, q, small, StateDone)

	// Expire both; the budget frees up.
	mu.Lock()
	now = now.Add(ttl + time.Second)
	mu.Unlock()
	q.gcSweep(clock())
	if st := q.Stats(); st.RetainedCost != 0 {
		t.Errorf("retained cost = %d after GC, want 0", st.RetainedCost)
	}
	if _, err := q.Submit([]morestress.Job{scenario(4)}, nil, 100); err != nil {
		t.Errorf("submit after GC rejected: %v", err)
	}
}
