package jobqueue

import (
	"context"
	"encoding/gob"
	"sync"
	"testing"
	"time"

	morestress "repro"
	"repro/internal/wal"
)

func init() {
	// Journal tests use string metas; meta is journaled as a gob interface
	// value, so the concrete type must be registered.
	gob.Register("")
}

// openJournal opens a WAL in dir and registers its Close to run after the
// queues using it have shut down (t.Cleanup is LIFO).
func openJournal(t *testing.T, dir string) *wal.Log {
	t.Helper()
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// waitAppends polls until the journal has absorbed at least n appends, so a
// test can reopen the directory without racing an in-flight frame.
func waitAppends(t *testing.T, l *wal.Log, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if l.Stats().Appends >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("journal never reached %d appends (have %d)", n, l.Stats().Appends)
}

// solveVM fakes a solve whose result carries a recognizable field, so
// recovery tests can check the payload round-trips through the journal.
func solveVM(ctx context.Context, sc morestress.Job) (*morestress.JobResult, error) {
	return &morestress.JobResult{Result: &morestress.ArrayResult{
		VM:         &morestress.Field{NX: 2, NY: 1, V: []float64{sc.DeltaT, -sc.DeltaT}},
		GlobalDoFs: 7,
	}}, nil
}

func TestRecoverRestoresFinishedJobs(t *testing.T) {
	dir := t.TempDir()
	log1 := openJournal(t, dir)
	q1 := newTestQueue(t, Options{Journal: log1, Solve: solveVM})
	id, err := q1.Submit([]morestress.Job{scenario(3), scenario(5)}, "remember-me", 11)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q1, id, StateDone)
	// S + T(running) + 2×C + T(done) = 5 records before the "crash".
	waitAppends(t, log1, 5)

	log2 := openJournal(t, dir)
	q2 := newTestQueue(t, Options{Journal: log2, Solve: solveVM})
	st, err := q2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored != 1 || st.Requeued != 0 || st.Expired != 0 {
		t.Fatalf("recover stats = %+v, want 1 restored", st)
	}
	if got := q2.Recovered(); got != st {
		t.Errorf("Recovered() = %+v, want %+v", got, st)
	}
	s, ok := q2.Get(id)
	if !ok {
		t.Fatalf("restored job %s not found", id)
	}
	if s.State != StateDone || s.Completed != 2 || s.Failed != 0 {
		t.Fatalf("restored snapshot = %s %d/%d failed %d", s.State, s.Completed, s.Total, s.Failed)
	}
	if s.Meta != "remember-me" {
		t.Errorf("restored meta = %v", s.Meta)
	}
	for i, want := range []float64{3, 5} {
		r := s.Results[i]
		if r == nil || r.Result == nil || r.Result.VM == nil {
			t.Fatalf("result %d missing payload: %+v", i, r)
		}
		if r.Index != i || r.Result.VM.V[0] != want || r.Result.GlobalDoFs != 7 {
			t.Errorf("result %d = index %d VM %v DoFs %d", i, r.Index, r.Result.VM.V, r.Result.GlobalDoFs)
		}
	}
	// Subscribers to a restored finished job get a coherent replayed
	// history ending in the terminal state, then the channel closes.
	events, _, ok := q2.Subscribe(id)
	if !ok {
		t.Fatal("subscribe to restored job failed")
	}
	var last Event
	n := 0
	for ev := range events {
		last = ev
		n++
	}
	if n == 0 || last.Type != EventState || last.State != StateDone || last.Completed != 2 {
		t.Errorf("restored history: %d events, last %+v", n, last)
	}
	// The restored job keeps drawing from the cost budget until GC.
	if got := q2.Stats(); got.RetainedCost != 11 {
		t.Errorf("restored cost = %d, want 11", got.RetainedCost)
	}
}

func TestRecoverRequeuesPendingAndRerunsRunning(t *testing.T) {
	dir := t.TempDir()
	log1 := openJournal(t, dir)
	// Scenario ΔT=2 blocks until cancelled, pinning job 1 in running with
	// one completed scenario; jobs 2 and 3 stay pending behind it.
	blocking := func(ctx context.Context, sc morestress.Job) (*morestress.JobResult, error) {
		if sc.DeltaT == 2 {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return solveVM(ctx, sc)
	}
	q1 := newTestQueue(t, Options{Workers: 1, Journal: log1, Solve: blocking})
	id1, err := q1.Submit([]morestress.Job{scenario(1), scenario(2)}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := q1.Submit([]morestress.Job{scenario(3)}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	id3, err := q1.Submit([]morestress.Job{scenario(4)}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 3×S + T(running) + C(ΔT=1) = 5 records, then the worker is wedged.
	waitAppends(t, log1, 5)

	// "Crash": abandon q1 (no Close — Close would journal cancellations)
	// and recover from the directory as a fresh process would.
	log2 := openJournal(t, dir)
	var mu sync.Mutex
	var order []float64
	record := func(ctx context.Context, sc morestress.Job) (*morestress.JobResult, error) {
		mu.Lock()
		order = append(order, sc.DeltaT)
		mu.Unlock()
		return solveVM(ctx, sc)
	}
	q2 := newTestQueue(t, Options{Workers: 1, Journal: log2, Solve: record})
	st, err := q2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requeued != 3 || st.Restored != 0 {
		t.Fatalf("recover stats = %+v, want 3 requeued", st)
	}
	// Every accepted job reaches done under its original ID, and the
	// running job re-ran from scenario zero.
	for _, id := range []string{id1, id2, id3} {
		waitState(t, q2, id, StateDone)
	}
	s, _ := q2.Get(id1)
	if s.Completed != 2 || len(s.Results) != 2 {
		t.Fatalf("re-run job completed %d scenarios, want 2", s.Completed)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []float64{1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("solve order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("solve order %v, want %v (original FIFO order)", order, want)
		}
	}
}

func TestCleanShutdownPersistsCancellations(t *testing.T) {
	dir := t.TempDir()
	log1 := openJournal(t, dir)
	blocking := func(ctx context.Context, sc morestress.Job) (*morestress.JobResult, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	q1, err := New(Options{Workers: 1, Journal: log1, Solve: blocking})
	if err != nil {
		t.Fatal(err)
	}
	id1, err := q1.Submit([]morestress.Job{scenario(1)}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q1, id1, StateRunning)
	id2, err := q1.Submit([]morestress.Job{scenario(2)}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	q1.Close() // journals cancellation of both the pending and the running job

	log2 := openJournal(t, dir)
	q2 := newTestQueue(t, Options{Journal: log2, Solve: solveVM})
	st, err := q2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored != 2 || st.Requeued != 0 {
		t.Fatalf("recover stats after clean shutdown = %+v, want 2 restored", st)
	}
	for _, id := range []string{id1, id2} {
		s, ok := q2.Get(id)
		if !ok || s.State != StateCancelled {
			t.Errorf("job %s after clean shutdown: %v %v, want cancelled", id, s.State, ok)
		}
	}
}

func TestRecoverDropsExpiredJobs(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	log1 := openJournal(t, dir)
	q1 := newTestQueue(t, Options{Journal: log1, TTL: time.Minute, Solve: solveVM, now: func() time.Time { return t0 }})
	id, err := q1.Submit([]morestress.Job{scenario(1)}, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q1, id, StateDone)
	waitAppends(t, log1, 4)

	log2 := openJournal(t, dir)
	later := t0.Add(2 * time.Minute)
	q2 := newTestQueue(t, Options{Journal: log2, TTL: time.Minute, Solve: solveVM, now: func() time.Time { return later }})
	st, err := q2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Expired != 1 || st.Restored != 0 || st.Requeued != 0 {
		t.Fatalf("recover stats = %+v, want 1 expired", st)
	}
	if _, ok := q2.Get(id); ok {
		t.Error("expired job still retrievable after recovery")
	}
	if got := q2.Stats(); got.RetainedCost != 0 {
		t.Errorf("expired job still holds cost %d", got.RetainedCost)
	}
}

func TestJournalCompactionKeepsLogBounded(t *testing.T) {
	dir := t.TempDir()
	log1 := openJournal(t, dir)
	// CompactBytes 1: every journaled append triggers a compaction, the
	// most hostile schedule for snapshot/append interleaving.
	q1 := newTestQueue(t, Options{Journal: log1, CompactBytes: 1, Solve: solveVM})
	var ids []string
	for i := 0; i < 5; i++ {
		id, err := q1.Submit([]morestress.Job{scenario(float64(i + 1))}, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		waitState(t, q1, id, StateDone)
	}
	if st := log1.Stats(); st.Compactions == 0 || st.LastCompaction.IsZero() {
		t.Fatalf("no compactions recorded: %+v", st)
	}
	// Every job journals S, T(running), C, T(done): wait for all 20 direct
	// appends (compaction emits are not Append calls) before reopening.
	waitAppends(t, log1, 20)

	log2 := openJournal(t, dir)
	q2 := newTestQueue(t, Options{Journal: log2, Solve: solveVM})
	st, err := q2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored != 5 {
		t.Fatalf("recover stats after heavy compaction = %+v, want 5 restored", st)
	}
	for i, id := range ids {
		s, ok := q2.Get(id)
		if !ok || s.State != StateDone || len(s.Results) != 1 {
			t.Fatalf("job %s after compaction: ok=%v %+v", id, ok, s)
		}
		if vm := s.Results[0].Result.VM; vm.V[0] != float64(i+1) {
			t.Errorf("job %s result VM %v, want leading %d", id, vm.V, i+1)
		}
	}
}

func TestSubmitRejectsUnjournalableScenarios(t *testing.T) {
	dir := t.TempDir()
	log1 := openJournal(t, dir)
	q := newTestQueue(t, Options{Journal: log1, Solve: solveVM})
	sc := scenario(1)
	sc.DeltaTMap = func(row, col int) float64 { return 1 }
	if _, err := q.Submit([]morestress.Job{sc}, nil, 0); err != ErrNotJournalable {
		t.Errorf("Submit with DeltaTMap under a journal: %v, want ErrNotJournalable", err)
	}
	// Without a journal the same job is accepted.
	q2 := newTestQueue(t, Options{Solve: solveVM})
	if _, err := q2.Submit([]morestress.Job{sc}, nil, 0); err != nil {
		t.Errorf("Submit with DeltaTMap without a journal: %v", err)
	}
}

// TestJobWireRoundTripsSolverOptions pins the journal's wire projection:
// every serializable solver option a recovered job needs to re-run
// identically — including the factor ordering and storage precision —
// survives the jobWire round trip. A field silently dropped here means a
// crash-recovered job re-runs under different solver settings.
func TestJobWireRoundTripsSolverOptions(t *testing.T) {
	in := scenario(7)
	in.Rows, in.Cols, in.GridSamples = 3, 4, 9
	in.Solver = morestress.SolveCG
	in.Options = morestress.SolverOptions{
		Tol: 1e-9, MaxIter: 123, Restart: 17, Workers: 2,
		Precond:   morestress.PrecondIC0,
		Ordering:  morestress.OrderingMulticolor,
		Precision: morestress.PrecisionFloat32,
	}
	out := toJobWire(in).job()
	if out.Options != in.Options {
		t.Errorf("solver options did not round-trip: got %+v, want %+v", out.Options, in.Options)
	}
	if out.Rows != in.Rows || out.Cols != in.Cols || out.DeltaT != in.DeltaT ||
		out.GridSamples != in.GridSamples || out.Solver != in.Solver {
		t.Errorf("job fields did not round-trip: got %+v, want %+v", out, in)
	}
}

func TestSubmitRegeneratesCollidingID(t *testing.T) {
	ids := []string{"aaaa", "aaaa", "bbbb"}
	calls := 0
	q := newTestQueue(t, Options{
		Workers: 1,
		Solve: func(ctx context.Context, sc morestress.Job) (*morestress.JobResult, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
		newID: func() (string, error) {
			id := ids[calls]
			if calls < len(ids)-1 {
				calls++
			}
			return id, nil
		},
	})
	id1, err := q.Submit([]morestress.Job{scenario(1)}, "first", 3)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != "aaaa" {
		t.Fatalf("first id = %q", id1)
	}
	id2, err := q.Submit([]morestress.Job{scenario(2)}, "second", 4)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != "bbbb" {
		t.Fatalf("colliding submit got id %q, want regenerated %q", id2, "bbbb")
	}
	if calls < 2 {
		t.Errorf("id generator called %d times, want ≥2 (collision retry)", calls+1)
	}
	// The first job is untouched and the cost budget counted both jobs.
	s, ok := q.Get(id1)
	if !ok || s.Meta != "first" {
		t.Fatalf("original job clobbered by collision: ok=%v meta=%v", ok, s.Meta)
	}
	if st := q.Stats(); st.RetainedCost != 7 {
		t.Errorf("retained cost = %d, want 7", st.RetainedCost)
	}
}

func BenchmarkSubmitJournaled(b *testing.B) {
	dir := b.TempDir()
	log, err := wal.Open(dir, wal.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer log.Close()
	q, err := New(Options{
		Depth:        b.N + 2,
		Workers:      1,
		CompactBytes: 1 << 40, // never compact inside the timed loop
		Journal:      log,
		Solve: func(ctx context.Context, sc morestress.Job) (*morestress.JobResult, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer q.Close()
	scenarios := []morestress.Job{scenario(1)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Submit(scenarios, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}
