// Package superpose implements the linear superposition baseline
// ([Jung DAC'12], [Jung CACM'14] in the paper's references): the stress
// deviation field of a single TSV is obtained once by high-fidelity FEM, and
// the array stress is estimated as background + Σ per-TSV deviations. The
// method is fast but ignores TSV–TSV coupling and local variations of the
// background stress — exactly the inaccuracy the paper quantifies.
package superpose

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/fem"
	"repro/internal/field"
	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/reffem"
	"repro/internal/solver"
)

// Kernel holds the one-shot single-TSV data: the mid-plane stress deviation
// field Δσ(r) = σ_single(r) − σ_background(r) for ΔT = 1, sampled on a
// (2R+1)·GS square grid over a (2R+1)×(2R+1)-block neighbourhood of one TSV,
// plus the far-field background stress tensor.
type Kernel struct {
	Geom mesh.TSVGeometry
	// R is the neighbourhood radius in blocks (deviations beyond R blocks
	// are truncated to zero).
	R int
	// GS is the number of samples per block edge.
	GS int
	// Dev is the deviation tensor field (Voigt), row-major over the
	// (2R+1)·GS square sample grid, for ΔT = 1.
	Dev [][6]float64
	// Bg is the background (no-TSV) mid-plane stress for ΔT = 1, taken at
	// the neighbourhood center.
	Bg [6]float64
	// BuildTime is the one-shot cost of the kernel.
	BuildTime time.Duration
}

// BuildKernel performs the one-shot single-TSV FEM solves: a single TSV
// embedded in a (2R+1)×(2R+1) silicon neighbourhood, and the same
// neighbourhood without the TSV, both clamped top and bottom. The deviation
// of the two mid-plane stress fields is the superposition kernel.
//
//stressvet:gang -- `workers` goroutines over disjoint row chunks
func BuildKernel(geom mesh.TSVGeometry, mats material.TSVSet, res mesh.BlockResolution, r, gs int, opt solver.Options, workers int) (*Kernel, error) {
	if r < 1 {
		return nil, fmt.Errorf("superpose: radius must be >= 1, got %d", r)
	}
	start := time.Now()
	nb := 2*r + 1
	center := r

	single, err := reffem.Solve(&reffem.Problem{
		Geom: geom, Mats: mats, Res: res,
		Bx: nb, By: nb,
		IsDummy: func(bx, by int) bool { return bx != center || by != center },
		DeltaT:  1,
		BC:      reffem.ClampedTopBottom,
		Opt:     opt, Workers: workers,
	})
	if err != nil {
		return nil, fmt.Errorf("superpose: single-TSV solve: %w", err)
	}
	bg, err := reffem.Solve(&reffem.Problem{
		Geom: geom, Mats: mats, Res: res,
		Bx: nb, By: nb,
		IsDummy: func(bx, by int) bool { return true },
		DeltaT:  1,
		BC:      reffem.ClampedTopBottom,
		Opt:     opt, Workers: workers,
	})
	if err != nil {
		return nil, fmt.Errorf("superpose: background solve: %w", err)
	}

	ext := nb * gs
	dev := make([][6]float64, ext*ext)
	zCut := geom.Height / 2
	var wg sync.WaitGroup
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunk := (ext + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > ext {
			hi = ext
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for iy := lo; iy < hi; iy++ {
				y := (float64(iy) + 0.5) * geom.Pitch / float64(gs)
				for ix := 0; ix < ext; ix++ {
					x := (float64(ix) + 0.5) * geom.Pitch / float64(gs)
					p := mesh.Vec3{X: x, Y: y, Z: zCut}
					ss := single.Model.StressAtPoint(single.U, 1, p)
					sb := bg.Model.StressAtPoint(bg.U, 1, p)
					var d [6]float64
					for c := 0; c < 6; c++ {
						d[c] = ss[c] - sb[c]
					}
					dev[iy*ext+ix] = d
				}
			}
		}(lo, hi)
	}
	wg.Wait()

	// Background far-field stress: center-block center sample.
	cMid := mesh.Vec3{
		X: (float64(center) + 0.5) * geom.Pitch,
		Y: (float64(center) + 0.5) * geom.Pitch,
		Z: zCut,
	}
	bgS := bg.Model.StressAtPoint(bg.U, 1, cMid)

	return &Kernel{
		Geom: geom, R: r, GS: gs,
		Dev: dev, Bg: bgS,
		BuildTime: time.Since(start),
	}, nil
}

// EstimateArray estimates the mid-plane von Mises field of a Bx×By array at
// thermal load deltaT by tensor superposition of the kernel over every TSV
// block: σ(r) ≈ σ_bg(r) + ΔT·Σ_k Δσ(r − r_k). The optional background
// supplies a spatially varying absolute background stress (already at the
// actual ΔT, e.g. interpolated from a coarse package model); nil uses the
// uniform far-field kernel background scaled by ΔT. isTSV marks blocks
// carrying TSVs (nil = all).
//
//stressvet:gang -- `workers` goroutines over disjoint row chunks
func (k *Kernel) EstimateArray(bx, by int, isTSV func(bx, by int) bool, deltaT float64, gs int, background func(x, y float64) [6]float64, workers int) *field.Grid2D {
	if gs != k.GS {
		panic(fmt.Sprintf("superpose: sampling grid %d differs from kernel grid %d", gs, k.GS))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := field.New(bx*gs, by*gs)
	ext := (2*k.R + 1) * gs

	// List the TSV block coordinates once.
	type blk struct{ x, y int }
	var tsvs []blk
	for byy := 0; byy < by; byy++ {
		for bxx := 0; bxx < bx; bxx++ {
			if isTSV == nil || isTSV(bxx, byy) {
				tsvs = append(tsvs, blk{bxx, byy})
			}
		}
	}

	var wg sync.WaitGroup
	rows := out.NY
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > rows {
			hi = rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for iy := lo; iy < hi; iy++ {
				sampleBy := iy / gs
				gy := iy % gs
				for ix := 0; ix < out.NX; ix++ {
					sampleBx := ix / gs
					gx := ix % gs
					var s [6]float64
					if background != nil {
						x := (float64(ix) + 0.5) * k.Geom.Pitch / float64(gs)
						y := (float64(iy) + 0.5) * k.Geom.Pitch / float64(gs)
						s = background(x, y)
					} else {
						for c := 0; c < 6; c++ {
							s[c] = deltaT * k.Bg[c]
						}
					}
					for _, t := range tsvs {
						dbx := sampleBx - t.x
						dby := sampleBy - t.y
						if dbx < -k.R || dbx > k.R || dby < -k.R || dby > k.R {
							continue
						}
						kx := (dbx+k.R)*gs + gx
						ky := (dby+k.R)*gs + gy
						d := &k.Dev[ky*ext+kx]
						for c := 0; c < 6; c++ {
							s[c] += deltaT * d[c]
						}
					}
					out.Set(ix, iy, fem.VonMises(s))
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
