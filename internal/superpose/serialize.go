package superpose

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"repro/internal/mesh"
)

// kernelWire is the gob wire format of a Kernel.
type kernelWire struct {
	Geom      mesh.TSVGeometry
	R, GS     int
	Dev       [][6]float64
	Bg        [6]float64
	BuildTime time.Duration
}

// Save writes the kernel in gob format so the baseline's one-shot stage can
// be reused across runs, mirroring the ROM's persistence.
func (k *Kernel) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(&kernelWire{
		Geom: k.Geom, R: k.R, GS: k.GS,
		Dev: k.Dev, Bg: k.Bg, BuildTime: k.BuildTime,
	})
}

// LoadKernel reads a kernel previously written by Save.
func LoadKernel(r io.Reader) (*Kernel, error) {
	var wire kernelWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("superpose: decode: %w", err)
	}
	if wire.R < 1 || wire.GS < 1 {
		return nil, fmt.Errorf("superpose: corrupt kernel (R=%d, GS=%d)", wire.R, wire.GS)
	}
	ext := (2*wire.R + 1) * wire.GS
	if len(wire.Dev) != ext*ext {
		return nil, fmt.Errorf("superpose: kernel field has %d samples, want %d", len(wire.Dev), ext*ext)
	}
	return &Kernel{
		Geom: wire.Geom, R: wire.R, GS: wire.GS,
		Dev: wire.Dev, Bg: wire.Bg, BuildTime: wire.BuildTime,
	}, nil
}
