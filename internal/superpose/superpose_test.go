package superpose

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/array"
	"repro/internal/field"
	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/reffem"
	"repro/internal/rom"
	"repro/internal/solver"
)

func buildTestKernel(t *testing.T, gs int) *Kernel {
	t.Helper()
	k, err := BuildKernel(mesh.PaperGeometry(15), material.DefaultTSVSet(),
		mesh.CoarseResolution(), 1, gs, solver.Options{Tol: 1e-9}, 8)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestBuildKernelRejectsBadRadius(t *testing.T) {
	if _, err := BuildKernel(mesh.PaperGeometry(15), material.DefaultTSVSet(),
		mesh.CoarseResolution(), 0, 4, solver.Options{}, 1); err == nil {
		t.Error("expected error for radius 0")
	}
}

func TestKernelDeviationDecays(t *testing.T) {
	k := buildTestKernel(t, 10)
	ext := (2*k.R + 1) * k.GS
	// Deviation magnitude at the via center must dominate the neighborhood
	// corner (far field).
	mid := k.Dev[(ext/2)*ext+ext/2]
	corner := k.Dev[0]
	var mMid, mCorner float64
	for c := 0; c < 6; c++ {
		mMid += mid[c] * mid[c]
		mCorner += corner[c] * corner[c]
	}
	if mMid <= 4*mCorner {
		t.Errorf("kernel does not decay: center %g corner %g", math.Sqrt(mMid), math.Sqrt(mCorner))
	}
}

func TestEstimateMatchesSingleTSVExactly(t *testing.T) {
	// Estimating the very configuration the kernel was built from (one TSV
	// centered in a (2R+1)² neighbourhood) must reproduce the reference
	// solve up to solver tolerance: superposition is exact for one TSV.
	k := buildTestKernel(t, 10)
	nb := 2*k.R + 1
	ref, err := reffem.Solve(&reffem.Problem{
		Geom: k.Geom, Mats: material.DefaultTSVSet(), Res: mesh.CoarseResolution(),
		Bx: nb, By: nb,
		IsDummy: func(bx, by int) bool { return bx != k.R || by != k.R },
		DeltaT:  -250, BC: reffem.ClampedTopBottom,
		Opt: solver.Options{Tol: 1e-10},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.VMField(k.Geom, nb, nb, k.GS, -250, 8)
	got := k.EstimateArray(nb, nb, func(bx, by int) bool { return bx == k.R && by == k.R },
		-250, k.GS, nil, 8)
	nmae := field.NormalizedMAE(got, want)
	t.Logf("single-TSV normalized MAE = %.4f%%", 100*nmae)
	// Edge effects differ slightly (kernel background is the no-TSV field,
	// uniform Bg is used here), so allow a few percent.
	if nmae > 0.05 {
		t.Errorf("single-TSV estimate off by %.4f", nmae)
	}
}

// TestSuperpositionWorseThanROM reproduces the paper's core accuracy claims
// at test scale: the linear superposition error substantially exceeds the
// MORE-Stress error on the same array, and superposition degrades when the
// pitch shrinks (TSV coupling it cannot capture) while MORE-Stress stays
// accurate.
func TestSuperpositionWorseThanROM(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison suite is slow")
	}
	const bx, by = 3, 3
	const deltaT = -250.0
	const gs = 10
	res := mesh.CoarseResolution()
	mats := material.DefaultTSVSet()

	var supErrs, romErrs []float64
	for _, pitch := range []float64{15, 10} {
		geom := mesh.PaperGeometry(pitch)
		ref, err := reffem.Solve(&reffem.Problem{
			Geom: geom, Mats: mats, Res: res, Bx: bx, By: by,
			DeltaT: deltaT, BC: reffem.ClampedTopBottom,
			Opt: solver.Options{Tol: 1e-10},
		})
		if err != nil {
			t.Fatal(err)
		}
		want := ref.VMField(geom, bx, by, gs, deltaT, 8)

		k, err := BuildKernel(geom, mats, res, 1, gs, solver.Options{Tol: 1e-9}, 8)
		if err != nil {
			t.Fatal(err)
		}
		sup := k.EstimateArray(bx, by, nil, deltaT, gs, nil, 8)
		supErr := field.NormalizedMAE(sup, want)

		spec := rom.PaperSpec(pitch, res)
		spec.Nodes = [3]int{5, 5, 5}
		r, err := rom.Build(spec, 8)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := array.Solve(&array.Problem{
			ROM: r, Bx: bx, By: by, DeltaT: deltaT,
			BC: array.ClampedTopBottom, Opt: solver.Options{Tol: 1e-10},
		})
		if err != nil {
			t.Fatal(err)
		}
		romErr := field.NormalizedMAE(sol.VMField(gs, 8), want)

		t.Logf("pitch %g: superposition %.3f%%, MORE-Stress %.3f%%", pitch, 100*supErr, 100*romErr)
		if supErr <= 2*romErr {
			t.Errorf("pitch %g: superposition (%.4f) should be much less accurate than MORE-Stress (%.4f)",
				pitch, supErr, romErr)
		}
		supErrs = append(supErrs, supErr)
		romErrs = append(romErrs, romErr)
	}
	// Smaller pitch hurts superposition (stronger neglected coupling).
	if supErrs[1] <= supErrs[0] {
		t.Errorf("superposition error should grow when pitch shrinks: %v", supErrs)
	}
	// MORE-Stress stays in the sub-percent regime at both pitches.
	for i, e := range romErrs {
		if e > 0.02 {
			t.Errorf("MORE-Stress error %g too large (case %d)", e, i)
		}
	}
}

func TestEstimatePanicsOnGridMismatch(t *testing.T) {
	k := &Kernel{GS: 8}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	k.EstimateArray(1, 1, nil, -1, 4, nil, 1)
}

func TestEstimateWithBackgroundField(t *testing.T) {
	k := buildTestKernel(t, 6)
	// A spatially varying background should show through where no TSV is
	// near.
	bg := func(x, y float64) [6]float64 {
		return [6]float64{100 + x, 0, 0, 0, 0, 0}
	}
	got := k.EstimateArray(2, 2, func(bx, by int) bool { return false }, -250, 6, bg, 4)
	// vM of uniaxial σxx = |σxx| = 100+x, increasing in x.
	if !(got.At(11, 0) > got.At(0, 0)) {
		t.Error("background gradient lost")
	}
}

func TestKernelSaveLoadRoundTrip(t *testing.T) {
	k := buildTestKernel(t, 6)
	var buf bytes.Buffer
	if err := k.Save(&buf); err != nil {
		t.Fatal(err)
	}
	k2, err := LoadKernel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if k2.R != k.R || k2.GS != k.GS || k2.Geom != k.Geom {
		t.Fatal("kernel metadata lost")
	}
	a := k.EstimateArray(2, 2, nil, -250, 6, nil, 2)
	b := k2.EstimateArray(2, 2, nil, -250, 6, nil, 2)
	for i := range a.V {
		if a.V[i] != b.V[i] {
			t.Fatal("estimates differ after round trip")
		}
	}
}

func TestLoadKernelRejectsGarbage(t *testing.T) {
	if _, err := LoadKernel(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("expected decode error")
	}
}
