// Package wal implements the durability substrate of the serving stack: an
// append-only, segmented record log with CRC-framed records and
// fsync-on-commit. The job queue journals every accepted job through it so a
// `POST /jobs` 202 is a promise that survives kill -9 — on restart the queue
// replays the log and re-enqueues everything that had not reached a terminal
// state (scenario solves are deterministic, so re-running is safe).
//
// # On-disk format
//
// A log is a directory of segment files named wal-%016x.log, totally ordered
// by their hex sequence number. Each segment is a sequence of frames:
//
//	[4 bytes  little-endian payload length n]
//	[4 bytes  little-endian CRC-32C (Castagnoli) of the payload]
//	[n bytes  payload]
//
// A record is valid only when its full frame is present and the checksum
// matches. Empty payloads are rejected at Append and treated as torn on
// replay, so a zero-filled page (the typical residue of a crashed
// preallocating filesystem) can never masquerade as a record.
//
// # Crash behavior
//
// Append writes the frame and fsyncs before returning (unless Options.NoSync),
// so an acknowledged record is durable. A crash mid-write leaves a torn tail:
// a partial frame, or a frame whose checksum fails. Open scans every segment
// and truncates the log at the first invalid frame — records before it are
// intact (each was fsynced), records after it are unreachable and discarded,
// along with any later segments. Replay therefore never yields a record that
// failed its CRC.
//
// # Rotation and compaction
//
// When the active segment exceeds Options.SegmentBytes, Append seals it and
// starts the next. Compact atomically replaces the whole log with a caller-
// provided snapshot: the snapshot is written to a fresh segment, fsynced, and
// only then are the old segments removed — a crash at any point leaves either
// the old log or the new one, never neither. The snapshot callback runs under
// the log's lock, so no concurrent Append can land in a segment about to be
// deleted.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const (
	frameHeader = 8 // 4-byte length + 4-byte CRC-32C
	// MaxRecordBytes bounds one record's payload. Appends beyond it fail;
	// on replay a larger claimed length is treated as a torn tail (a real
	// record can never claim it, so it must be garbage).
	MaxRecordBytes = 1 << 30

	segPrefix = "wal-"
	segSuffix = ".log"
)

// castagnoli is the CRC-32C table (the polynomial with hardware support on
// amd64/arm64, and the conventional choice for storage framing).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrRecordTooLarge is returned by Append for payloads over MaxRecordBytes
// (or empty payloads, which the framing cannot represent unambiguously).
var ErrRecordTooLarge = errors.New("wal: record payload empty or over MaxRecordBytes")

// Options configures a Log.
type Options struct {
	// SegmentBytes seals the active segment and starts the next once the
	// active one reaches this size (default 16 MiB). Compaction replaces
	// all sealed segments with a snapshot, so the threshold bounds how much
	// dead log a long-running queue drags around between compactions.
	SegmentBytes int64
	// NoSync disables fsync-on-append. Records are then durable only
	// against process crash, not machine crash — for tests and benchmarks
	// that measure framing cost without the disk in the loop.
	NoSync bool
}

// Stats is a point-in-time snapshot of a log.
type Stats struct {
	// Segments is the number of segment files; Bytes their total size.
	Segments int
	Bytes    int64
	// Appends counts records appended in this process lifetime.
	Appends int64
	// TornBytes counts bytes truncated as torn tails at Open.
	TornBytes int64
	// Compactions counts Compact calls; LastCompaction is the wall time of
	// the latest (zero if none ran this process lifetime).
	Compactions    int64
	LastCompaction time.Time
}

// Log is an append-only segmented record log; safe for concurrent use.
type Log struct {
	dir string
	opt Options

	mu sync.Mutex
	// All fields below are guarded by mu.
	f      *os.File // guarded by mu; active segment, positioned at its end
	seq    uint64   // guarded by mu; active segment sequence number
	size   int64    // guarded by mu; active segment size
	sealed int64    // guarded by mu; total bytes in sealed (older) segments
	nseg   int      // guarded by mu; segment file count, active included
	closed bool     // guarded by mu
	buf    []byte   // guarded by mu; reusable frame scratch

	appends, torn, compactions atomic.Int64
	lastCompaction             atomic.Int64 // unix nanos, 0 = never
	// appendBroken is set when an Append fails at the I/O layer (write or
	// sync) and cleared by the next success: the sticky "is the journal
	// writable right now" bit behind Writable and the serve /readyz probe.
	appendBroken atomic.Bool
}

// Open opens (or creates) the log in dir, scanning every segment and
// truncating the torn tail left by a crash mid-append: the log ends at the
// last record whose frame and checksum are intact, and any bytes or segments
// past that point are discarded. After Open the log is ready for both Replay
// and Append.
func Open(dir string, opt Options) (*Log, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = 16 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Log{dir: dir, opt: opt}
	seqs, err := segmentSeqs(dir)
	if err != nil {
		return nil, err
	}
	if len(seqs) == 0 {
		if err := l.createSegmentLocked(1); err != nil {
			return nil, err
		}
		if err := syncDir(dir); err != nil {
			return nil, fmt.Errorf("wal: open: %w", err)
		}
		l.nseg = 1
		return l, nil
	}
	// Validate each segment in order. The first invalid frame ends the log:
	// truncate that segment there and delete everything after it (those
	// records are causally after the tear, so replaying them could
	// resurrect state the torn records were meant to supersede).
	end := len(seqs)
	for i, seq := range seqs {
		path := l.segPath(seq)
		valid, total, _, err := scanSegment(path, nil)
		if err != nil {
			return nil, err
		}
		if valid == total {
			continue
		}
		l.torn.Add(total - valid)
		if err := os.Truncate(path, valid); err != nil {
			return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
		for _, later := range seqs[i+1:] {
			if err := os.Remove(l.segPath(later)); err != nil {
				return nil, fmt.Errorf("wal: drop post-tear segment: %w", err)
			}
		}
		end = i + 1
		break
	}
	seqs = seqs[:end]
	for _, seq := range seqs[:len(seqs)-1] {
		st, err := os.Stat(l.segPath(seq))
		if err != nil {
			return nil, fmt.Errorf("wal: open: %w", err)
		}
		l.sealed += st.Size()
	}
	active := seqs[len(seqs)-1]
	f, err := os.OpenFile(l.segPath(active), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open active segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: open active segment: %w", err)
	}
	l.f, l.seq, l.size, l.nseg = f, active, st.Size(), len(seqs)
	return l, nil
}

// Replay calls fn for every record in the log, oldest first. The payload
// slice is only valid for the duration of the call. Records are re-verified
// against their checksums as they are read; a record that fails (the file
// changed after Open, or Open was raced) ends the replay at that point
// exactly as Open's torn-tail rule would, without error. An error from fn
// aborts the replay and is returned.
func (l *Log) Replay(fn func(payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	seqs, err := segmentSeqs(l.dir)
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if seq > l.seq {
			break // created after Open by someone else; not ours
		}
		_, _, ferr, err := scanSegment(l.segPath(seq), fn)
		if err != nil {
			return err
		}
		if ferr != nil {
			return ferr
		}
	}
	return nil
}

// Append frames the payload, writes it to the active segment, and — unless
// Options.NoSync — fsyncs before returning, so an acknowledged append is
// durable. The payload is copied; the caller may reuse the slice. Rotation
// to a fresh segment happens after the write when the active segment is over
// Options.SegmentBytes.
func (l *Log) Append(payload []byte) error {
	if len(payload) == 0 || len(payload) > MaxRecordBytes {
		return ErrRecordTooLarge
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	need := frameHeader + len(payload)
	if cap(l.buf) < need {
		l.buf = make([]byte, need)
	}
	b := l.buf[:need]
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(payload, castagnoli))
	copy(b[frameHeader:], payload)
	if _, err := l.f.Write(b); err != nil {
		l.appendBroken.Store(true)
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(need)
	if !l.opt.NoSync {
		if err := l.f.Sync(); err != nil {
			l.appendBroken.Store(true)
			return fmt.Errorf("wal: append sync: %w", err)
		}
	}
	l.appendBroken.Store(false)
	l.appends.Add(1)
	if l.size >= l.opt.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes the active segment to stable storage (a no-op cost after a
// synced Append; useful with Options.NoSync batching).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.f.Sync()
}

// Compact atomically replaces the entire log with a snapshot. The snapshot
// callback receives an emit function and must write, in replay order, the
// records that reconstruct current state; it runs under the log's lock, so
// no concurrent Append can slip between the snapshot and the swap (callers
// must not call back into the log from inside snapshot). The snapshot
// segment is fully written and fsynced before any old segment is removed: a
// crash during compaction leaves either the old log or the new one.
func (l *Log) Compact(snapshot func(emit func(payload []byte) error) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	oldSeqs, err := segmentSeqs(l.dir)
	if err != nil {
		return err
	}
	seq := l.seq + 1
	path := l.segPath(seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var size int64
	var hdr [frameHeader]byte
	emit := func(payload []byte) error {
		if len(payload) == 0 || len(payload) > MaxRecordBytes {
			return ErrRecordTooLarge
		}
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.Write(payload); err != nil {
			return err
		}
		size += int64(frameHeader + len(payload))
		return nil
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := snapshot(emit); err != nil {
		return fail(err)
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	// The snapshot is durable; swap to it. Sync the directory so the new
	// segment's entry is on disk before the old ones disappear.
	if err := syncDir(l.dir); err != nil {
		return fail(err)
	}
	old := l.f
	l.f, l.seq, l.size, l.sealed = f, seq, size, 0
	old.Close()
	l.nseg = 1
	for _, s := range oldSeqs {
		if s < seq {
			os.Remove(l.segPath(s)) // best effort: a survivor is re-read then superseded next compaction
		}
	}
	syncDir(l.dir)
	l.compactions.Add(1)
	l.lastCompaction.Store(time.Now().UnixNano())
	return nil
}

// Size returns the total byte size of the log across all segments.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sealed + l.size
}

// Stats returns a snapshot of the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	nseg, bytes := l.nseg, l.sealed+l.size
	l.mu.Unlock()
	s := Stats{
		Segments:    nseg,
		Bytes:       bytes,
		Appends:     l.appends.Load(),
		TornBytes:   l.torn.Load(),
		Compactions: l.compactions.Load(),
	}
	if ns := l.lastCompaction.Load(); ns != 0 {
		s.LastCompaction = time.Unix(0, ns)
	}
	return s
}

// Writable reports whether the log can currently take appends: it is open
// and the most recent Append did not fail at the I/O layer (a failure is
// sticky until an append succeeds again). Readiness probes use it — a
// replica whose journal cannot persist accepted jobs must not advertise
// itself ready for traffic.
func (l *Log) Writable() bool {
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	return !closed && !l.appendBroken.Load()
}

// Close syncs and closes the active segment. Further operations return
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if !l.opt.NoSync {
		l.f.Sync()
	}
	return l.f.Close()
}

// rotateLocked seals the active segment and starts the next. Callers hold
// l.mu.
func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	l.sealed += l.size
	l.size = 0
	if err := l.createSegmentLocked(l.seq + 1); err != nil {
		return err
	}
	l.nseg++
	return syncDir(l.dir)
}

// createSegmentLocked creates segment seq and makes it active. Callers hold
// l.mu (or own the Log exclusively during Open).
func (l *Log) createSegmentLocked(seq uint64) error {
	f, err := os.OpenFile(l.segPath(seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	l.f, l.seq = f, seq
	return nil
}

func (l *Log) segPath(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%016x%s", segPrefix, seq, segSuffix))
}

// segmentSeqs lists the segment sequence numbers in dir, ascending.
func segmentSeqs(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	var seqs []uint64
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		seq, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue // foreign file matching the shape; never ours
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// scanSegment reads path sequentially, verifying each frame, and calls fn
// (when non-nil) with every valid payload. It returns the byte offset just
// past the last valid record (valid), the file's total size, and fn's first
// error (fnErr, which stops the scan). An invalid frame — truncated header,
// impossible length, short payload, or checksum mismatch — ends the scan
// without error: valid < total then marks the torn tail.
func scanSegment(path string, fn func(payload []byte) error) (valid, total int64, fnErr, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("wal: open segment: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, 0, nil, fmt.Errorf("wal: stat segment: %w", err)
	}
	total = st.Size()
	r := bufio.NewReaderSize(f, 1<<20)
	var hdr [frameHeader]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return valid, total, nil, nil // clean EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > MaxRecordBytes || int64(n) > total-valid-frameHeader {
			return valid, total, nil, nil // impossible length: garbage tail
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return valid, total, nil, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return valid, total, nil, nil // corrupt: stop before yielding it
		}
		valid += int64(frameHeader) + int64(n)
		if fn != nil {
			if err := fn(payload); err != nil {
				return valid, total, err, nil
			}
		}
	}
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
