package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// collect replays the log into a slice of copied payloads.
func collect(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var out [][]byte
	if err := l.Replay(func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d-%s", i, bytes.Repeat([]byte{byte(i)}, i)))
		want = append(want, p)
		if err := l.Append(p); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	got := collect(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything survives.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2); len(got) != len(want) {
		t.Fatalf("after reopen: %d records, want %d", len(got), len(want))
	}
	if st := l2.Stats(); st.TornBytes != 0 {
		t.Errorf("clean log reports %d torn bytes", st.TornBytes)
	}
}

func TestAppendRejectsEmptyAndHuge(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(nil); err != ErrRecordTooLarge {
		t.Errorf("empty append: %v, want ErrRecordTooLarge", err)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	cases := []struct {
		name string
		tear func(valid []byte) []byte // transforms the tail appended after 3 good records
	}{
		{"partial header", func(b []byte) []byte { return append(b, 0x05, 0x00) }},
		{"partial payload", func(b []byte) []byte {
			frame := make([]byte, 8)
			binary.LittleEndian.PutUint32(frame[0:4], 100) // claims 100 bytes, provides 3
			binary.LittleEndian.PutUint32(frame[4:8], 0xdeadbeef)
			return append(b, append(frame, 1, 2, 3)...)
		}},
		{"bad crc", func(b []byte) []byte {
			payload := []byte("torn")
			frame := make([]byte, 8)
			binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli)+1)
			return append(b, append(frame, payload...)...)
		}},
		{"zero page", func(b []byte) []byte { return append(b, make([]byte, 4096)...) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if err := l.Append([]byte(fmt.Sprintf("good-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			l.Close()

			seg := filepath.Join(dir, "wal-0000000000000001.log")
			raw, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(seg, tc.tear(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			got := collect(t, l2)
			if len(got) != 3 {
				t.Fatalf("replayed %d records after tear, want 3", len(got))
			}
			if st := l2.Stats(); st.TornBytes == 0 {
				t.Error("tear not counted in TornBytes")
			}
			// The log must be appendable past the truncation point.
			if err := l2.Append([]byte("after-recovery")); err != nil {
				t.Fatal(err)
			}
			if got := collect(t, l2); len(got) != 4 || string(got[3]) != "after-recovery" {
				t.Fatalf("post-recovery append not replayed: %q", got)
			}
		})
	}
}

func TestTearInEarlierSegmentDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64}) // rotate almost every append
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := l.Append(bytes.Repeat([]byte{byte('a' + i)}, 60)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	seqs, err := segmentSeqs(dir)
	if err != nil || len(seqs) < 3 {
		t.Fatalf("want ≥3 segments, got %d (err %v)", len(seqs), err)
	}
	// Corrupt the first segment's record: flip a payload byte.
	seg := filepath.Join(dir, fmt.Sprintf("wal-%016x.log", seqs[0]))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[frameHeader+10] ^= 0xff
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2); len(got) != 0 {
		t.Fatalf("replayed %d records past a mid-log tear, want 0", len(got))
	}
	if seqs, _ := segmentSeqs(dir); len(seqs) != 1 {
		t.Fatalf("post-tear segments not dropped: %d remain", len(seqs))
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 40; i++ {
		if err := l.Append(bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 2 {
		t.Fatalf("no rotation: %d segments", st.Segments)
	}
	if got := collect(t, l); len(got) != 40 {
		t.Fatalf("replayed %d records across segments, want 40", len(got))
	}
	if want := int64(40 * (frameHeader + 32)); st.Bytes != want {
		t.Errorf("Stats.Bytes = %d, want %d", st.Bytes, want)
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 20; i++ {
		if err := l.Append(bytes.Repeat([]byte{byte(i + 1)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Size()
	snapshot := [][]byte{[]byte("live-1"), []byte("live-2")}
	err = l.Compact(func(emit func([]byte) error) error {
		for _, p := range snapshot {
			if err := emit(p); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after := l.Size(); after >= before {
		t.Errorf("compaction did not shrink the log: %d → %d", before, after)
	}
	got := collect(t, l)
	if len(got) != 2 || string(got[0]) != "live-1" || string(got[1]) != "live-2" {
		t.Fatalf("post-compaction replay = %q", got)
	}
	st := l.Stats()
	if st.Segments != 1 || st.Compactions != 1 || st.LastCompaction.IsZero() {
		t.Errorf("stats after compaction: %+v", st)
	}
	// Appends continue into the compacted segment; reopen sees everything.
	if err := l.Append([]byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2); len(got) != 3 || string(got[2]) != "post-compact" {
		t.Fatalf("replay after compact+reopen = %q", got)
	}
}

func TestCompactErrorKeepsOldLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte("keep-me")); err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("snapshot failed")
	if err := l.Compact(func(emit func([]byte) error) error { return boom }); err == nil {
		t.Fatal("compaction with failing snapshot succeeded")
	}
	got := collect(t, l)
	if len(got) != 1 || string(got[0]) != "keep-me" {
		t.Fatalf("old log lost after failed compaction: %q", got)
	}
	if seqs, _ := segmentSeqs(dir); len(seqs) != 1 {
		t.Errorf("aborted snapshot segment left behind: %d segments", len(seqs))
	}
}

func TestClosedLogRejectsOperations(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := l.Append([]byte("x")); err != ErrClosed {
		t.Errorf("Append after Close: %v", err)
	}
	if err := l.Replay(func([]byte) error { return nil }); err != ErrClosed {
		t.Errorf("Replay after Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestReplayFnErrorPropagates(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Append([]byte("a"))
	l.Append([]byte("b"))
	boom := fmt.Errorf("stop")
	n := 0
	if err := l.Replay(func([]byte) error { n++; return boom }); err != boom {
		t.Errorf("Replay error = %v, want %v", err, boom)
	}
	if n != 1 {
		t.Errorf("fn called %d times after erroring, want 1", n)
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "wal-notahexseq.log"), []byte("junk"), 0o644)
	os.WriteFile(filepath.Join(dir, "README"), []byte("junk"), 0o644)
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l); len(got) != 1 {
		t.Fatalf("foreign files leaked into replay: %d records", len(got))
	}
}
