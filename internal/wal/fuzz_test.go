package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the log as a segment file and
// asserts the two recovery invariants: opening and replaying never panics,
// and every record the replay yields carries a valid CRC frame — truncated,
// bit-flipped, or fabricated input can shorten the log, never corrupt a
// yielded record.
func FuzzWALReplay(f *testing.F) {
	frame := func(payloads ...[]byte) []byte {
		var buf bytes.Buffer
		var hdr [frameHeader]byte
		for _, p := range payloads {
			binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
			binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(p, castagnoli))
			buf.Write(hdr[:])
			buf.Write(p)
		}
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add(frame([]byte("one")))
	f.Add(frame([]byte("one"), []byte("two"), bytes.Repeat([]byte{7}, 300)))
	f.Add(frame([]byte("one"))[:5])                          // torn header
	f.Add(append(frame([]byte("one")), 9, 9, 9))             // torn tail
	f.Add(append(frame([]byte("a")), frame([]byte("b"))...)) // back to back
	f.Add(make([]byte, 64))                                  // zero page
	huge := make([]byte, 12)
	binary.LittleEndian.PutUint32(huge[0:4], 0xffffffff) // impossible length
	f.Add(huge)

	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000001.log"), raw, 0o644); err != nil {
			t.Skip()
		}
		l, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("Open on arbitrary segment bytes: %v", err)
		}
		defer l.Close()
		var n int
		err = l.Replay(func(p []byte) error {
			if len(p) == 0 {
				t.Fatal("replay yielded an empty record")
			}
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("Replay errored on arbitrary input: %v", err)
		}
		// The log must remain appendable and replayable after recovery, and
		// the appended record must come back.
		if err := l.Append([]byte("probe")); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		var last []byte
		m := 0
		if err := l.Replay(func(p []byte) error { m++; last = append(last[:0], p...); return nil }); err != nil {
			t.Fatalf("second Replay: %v", err)
		}
		if m != n+1 || string(last) != "probe" {
			t.Fatalf("after append: %d records (want %d), last %q", m, n+1, last)
		}
	})
}
