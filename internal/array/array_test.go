package array

import (
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/linalg"
	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/reffem"
	"repro/internal/rom"
	"repro/internal/solver"
)

func buildROM(t *testing.T, nodes int, withVia bool) *rom.ROM {
	t.Helper()
	s := rom.PaperSpec(15, mesh.CoarseResolution())
	s.Nodes = [3]int{nodes, nodes, nodes}
	s.WithVia = withVia
	r, err := rom.Build(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestLatticeEnumeration(t *testing.T) {
	l := NewLattice(2, 3, [3]int{4, 4, 4}, 15, 50)
	if l.GX != 7 || l.GY != 10 || l.GZ != 4 {
		t.Fatalf("lattice extents %d %d %d", l.GX, l.GY, l.GZ)
	}
	// Count check: total lattice sites minus interior sites per block.
	total := l.GX * l.GY * l.GZ
	interiorPerBlock := 2 * 2 * 2 // (nx−2)(ny−2)(nz−2)
	want := total - 2*3*interiorPerBlock
	if l.NumNodes() != want {
		t.Errorf("nodes %d, want %d", l.NumNodes(), want)
	}
	// Interior sites report -1.
	if l.NodeID(1, 1, 1) != -1 {
		t.Error("block-interior site should be -1")
	}
	// Shared face sites exist once.
	if l.NodeID(3, 1, 1) < 0 {
		t.Error("shared-face site missing")
	}
}

func TestLatticePositions(t *testing.T) {
	l := NewLattice(2, 2, [3]int{4, 4, 4}, 15, 50)
	p := l.Position(int(l.NodeID(3, 0, 0)))
	if math.Abs(p.X-15) > 1e-12 || p.Y != 0 || p.Z != 0 {
		t.Errorf("position %v", p)
	}
	p = l.Position(int(l.NodeID(6, 6, 3)))
	if math.Abs(p.X-30) > 1e-12 || math.Abs(p.Y-30) > 1e-12 || math.Abs(p.Z-50) > 1e-12 {
		t.Errorf("position %v", p)
	}
}

func TestBlockDoFMapSharing(t *testing.T) {
	r := buildROM(t, 3, true)
	l := NewLattice(2, 1, r.Spec.Nodes, r.Spec.Geom.Pitch, r.Spec.Geom.Height)
	m0 := l.BlockDoFMap(r, 0, 0)
	m1 := l.BlockDoFMap(r, 1, 0)
	// The right face of block 0 must alias the left face of block 1.
	shared := 0
	set := map[int32]bool{}
	for _, d := range m0 {
		set[d] = true
	}
	for _, d := range m1 {
		if set[d] {
			shared++
		}
	}
	// Shared face: nx=3 → face has ny·nz = 9 nodes × 3 comps = 27 DoFs.
	if shared != 27 {
		t.Errorf("shared DoFs %d, want 27", shared)
	}
}

func TestSolveValidation(t *testing.T) {
	r := buildROM(t, 2, true)
	if _, err := Solve(&Problem{ROM: nil, Bx: 1, By: 1}); err == nil {
		t.Error("expected error for nil ROM")
	}
	if _, err := Solve(&Problem{ROM: r, Bx: 0, By: 1}); err == nil {
		t.Error("expected error for zero size")
	}
	if _, err := Solve(&Problem{ROM: r, Bx: 1, By: 1, IsDummy: func(int, int) bool { return true }}); err == nil {
		t.Error("expected error for dummy without DummyROM")
	}
	if _, err := Solve(&Problem{ROM: r, Bx: 1, By: 1, BC: PrescribedBoundary}); err == nil {
		t.Error("expected error for missing BoundaryDisp")
	}
}

// TestROMMatchesReferenceFEM is the core end-to-end accuracy check of the
// whole method: a small clamped array solved by the global stage must match
// the full fine-mesh reference within a small normalized MAE (the paper
// reports <1% at (4,4,4); the coarse test mesh and (4,4,4) nodes should stay
// within a few percent).
func TestROMMatchesReferenceFEM(t *testing.T) {
	spec := rom.PaperSpec(15, mesh.CoarseResolution())
	r, err := rom.Build(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	const bx, by = 2, 2
	const deltaT = -250.0
	sol, err := Solve(&Problem{
		ROM: r, Bx: bx, By: by, DeltaT: deltaT,
		BC:  ClampedTopBottom,
		Opt: solver.Options{Tol: 1e-10},
	})
	if err != nil {
		t.Fatal(err)
	}
	const gs = 20
	got := sol.VMField(gs, 8)

	ref, err := reffem.Solve(&reffem.Problem{
		Geom: spec.Geom, Mats: spec.Mats, Res: spec.Res,
		Bx: bx, By: by, DeltaT: deltaT,
		BC:  reffem.ClampedTopBottom,
		Opt: solver.Options{Tol: 1e-10},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.VMField(spec.Geom, bx, by, gs, deltaT, 8)

	nmae := field.NormalizedMAE(got, want)
	t.Logf("normalized MAE = %.4f%% (max ref vM = %.1f MPa)", 100*nmae, want.Max())
	// At 2×2 every block touches the free lateral boundary, where the
	// paper notes the interpolation errors concentrate (§5.3.1); ~4% here
	// shrinks below 1% as the array grows (see Table 1 benches).
	if nmae > 0.06 {
		t.Errorf("normalized MAE %.4f exceeds 6%%", nmae)
	}
	// Peak stresses should agree to ~10%.
	if rel := math.Abs(got.Max()-want.Max()) / want.Max(); rel > 0.1 {
		t.Errorf("peak vM mismatch: %g vs %g (%.1f%%)", got.Max(), want.Max(), 100*rel)
	}
}

// TestConvergenceWithNodeCount verifies the paper's Table 3 trend at test
// scale: more interpolation nodes per axis reduce the error monotonically
// (up to small fluctuations).
func TestConvergenceWithNodeCount(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence sweep is slow")
	}
	const bx, by = 2, 2
	const deltaT = -250.0
	const gs = 12

	spec := rom.PaperSpec(15, mesh.CoarseResolution())
	ref, err := reffem.Solve(&reffem.Problem{
		Geom: spec.Geom, Mats: spec.Mats, Res: spec.Res,
		Bx: bx, By: by, DeltaT: deltaT,
		BC:  reffem.ClampedTopBottom,
		Opt: solver.Options{Tol: 1e-10},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.VMField(spec.Geom, bx, by, gs, deltaT, 8)

	var errs []float64
	for _, nodes := range []int{2, 3, 4} {
		s := spec
		s.Nodes = [3]int{nodes, nodes, nodes}
		r, err := rom.Build(s, 8)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := Solve(&Problem{
			ROM: r, Bx: bx, By: by, DeltaT: deltaT,
			BC:  ClampedTopBottom,
			Opt: solver.Options{Tol: 1e-10},
		})
		if err != nil {
			t.Fatal(err)
		}
		got := sol.VMField(gs, 8)
		e := field.NormalizedMAE(got, want)
		errs = append(errs, e)
		t.Logf("nodes (%d,%d,%d): error %.4f%%", nodes, nodes, nodes, 100*e)
	}
	if !(errs[2] < errs[0]) {
		t.Errorf("error did not decrease from (2,2,2) to (4,4,4): %v", errs)
	}
}

func TestDummyBlocksAssembleAndSolve(t *testing.T) {
	r := buildROM(t, 3, true)
	d := buildROM(t, 3, false)
	isDummy := func(bx, by int) bool { return bx == 0 || bx == 2 || by == 0 || by == 2 }
	sol, err := Solve(&Problem{
		ROM: r, DummyROM: d, Bx: 3, By: 3, IsDummy: isDummy,
		DeltaT: -250, BC: ClampedTopBottom,
		Opt: solver.Options{Tol: 1e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	vm := sol.VMField(10, 8)
	// The center (TSV) block must show higher peak stress than a dummy
	// corner block.
	center := vm.Crop(10, 10, 20, 20)
	corner := vm.Crop(0, 0, 10, 10)
	if center.Max() <= corner.Max() {
		t.Errorf("expected TSV block peak (%g) above dummy peak (%g)", center.Max(), corner.Max())
	}
}

func TestPrescribedBoundaryReproducesLinearField(t *testing.T) {
	// If the prescribed boundary displacement is the exact free-expansion
	// field of silicon and every block is a dummy (pure Si), the solution
	// is stress-free: the reconstruction must match αΔT·r and vM ≈ 0.
	d := buildROM(t, 3, false)
	const deltaT = -100.0
	a := material.Silicon.CTE * deltaT
	sol, err := Solve(&Problem{
		ROM: d, // all blocks use the dummy model
		Bx:  2, By: 2, DeltaT: deltaT,
		BC:           PrescribedBoundary,
		BoundaryDisp: func(p mesh.Vec3) [3]float64 { return [3]float64{a * p.X, a * p.Y, a * p.Z} },
		Opt:          solver.Options{Tol: 1e-12},
	})
	if err != nil {
		t.Fatal(err)
	}
	vm := sol.VMField(8, 4)
	scale := material.Silicon.ThermalStressCoeff() * math.Abs(deltaT)
	if vm.Max() > 1e-6*scale {
		t.Errorf("free expansion should be stress free: max vM %g (scale %g)", vm.Max(), scale)
	}
	// Interior displacement check at an interior global point.
	got := sol.DisplacementAt(mesh.Vec3{X: 15, Y: 15, Z: 25})
	want := [3]float64{a * 15, a * 15, a * 25}
	for c := 0; c < 3; c++ {
		if math.Abs(got[c]-want[c]) > 1e-9*math.Abs(want[c]) {
			t.Errorf("displacement comp %d: %g vs %g", c, got[c], want[c])
		}
	}
}

func TestGMRESAndCGAgreeOnGlobalProblem(t *testing.T) {
	r := buildROM(t, 3, true)
	base := Problem{
		ROM: r, Bx: 2, By: 2, DeltaT: -250,
		BC:  ClampedTopBottom,
		Opt: solver.Options{Tol: 1e-11},
	}
	pg := base
	pg.Solver = GMRES
	pc := base
	pc.Solver = CG
	sg, err := Solve(&pg)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Solve(&pc)
	if err != nil {
		t.Fatal(err)
	}
	var maxDiff, scale float64
	for i := range sg.Q {
		if d := math.Abs(sg.Q[i] - sc.Q[i]); d > maxDiff {
			maxDiff = d
		}
		if a := math.Abs(sg.Q[i]); a > scale {
			scale = a
		}
	}
	if maxDiff > 1e-6*scale {
		t.Errorf("GMRES and CG disagree: max diff %g (scale %g)", maxDiff, scale)
	}
}

func TestSolutionReconstructionContinuity(t *testing.T) {
	// Displacement at a shared block face evaluated from either side must
	// agree (conforming interpolation).
	r := buildROM(t, 3, true)
	sol, err := Solve(&Problem{
		ROM: r, Bx: 2, By: 1, DeltaT: -250,
		BC:  ClampedTopBottom,
		Opt: solver.Options{Tol: 1e-10},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := r.Spec.Geom.Pitch
	h := r.Spec.Geom.Height
	// Sample points on the shared face x = p.
	for _, yz := range [][2]float64{{0.3, 0.5}, {0.7, 0.25}, {0.5, 0.75}} {
		y, z := yz[0]*p, yz[1]*h
		left := sol.DisplacementAt(mesh.Vec3{X: p - 1e-9, Y: y, Z: z})
		right := sol.DisplacementAt(mesh.Vec3{X: p + 1e-9, Y: y, Z: z})
		for c := 0; c < 3; c++ {
			if math.Abs(left[c]-right[c]) > 1e-6*(1+math.Abs(left[c])) {
				t.Errorf("discontinuity at y=%g z=%g comp %d: %g vs %g", y, z, c, left[c], right[c])
			}
		}
	}
}

func TestDirectSolverMatchesIterative(t *testing.T) {
	r := buildROM(t, 3, true)
	base := Problem{
		ROM: r, Bx: 2, By: 2, DeltaT: -250,
		BC:  ClampedTopBottom,
		Opt: solver.Options{Tol: 1e-11},
	}
	pi := base
	pd := base
	pd.Solver = Direct
	si, err := Solve(&pi)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := Solve(&pd)
	if err != nil {
		t.Fatal(err)
	}
	var maxDiff, scale float64
	for i := range si.Q {
		if d := math.Abs(si.Q[i] - sd.Q[i]); d > maxDiff {
			maxDiff = d
		}
		if a := math.Abs(si.Q[i]); a > scale {
			scale = a
		}
	}
	if maxDiff > 1e-6*scale {
		t.Errorf("direct and iterative global solves disagree: %g (scale %g)", maxDiff, scale)
	}
}

func TestBlockJacobiPrecondGlobal(t *testing.T) {
	r := buildROM(t, 3, true)
	base := Problem{
		ROM: r, Bx: 3, By: 3, DeltaT: -250,
		BC:  ClampedTopBottom,
		Opt: solver.Options{Tol: 1e-10},
	}
	pj := base
	pj.Opt.Precond = solver.PrecondJacobi // pin: the auto default would also pick block-Jacobi-3 here
	pb := base
	pb.Opt.Precond = solver.PrecondBlockJacobi3
	sj, err := Solve(&pj)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Solve(&pb)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("global GMRES iterations: Jacobi %d, block-Jacobi %d", sj.Stats.Iterations, sb.Stats.Iterations)
	var maxDiff float64
	for i := range sj.Q {
		if d := math.Abs(sj.Q[i] - sb.Q[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-6*(1+linalg.NormInf(sj.Q)) {
		t.Errorf("preconditioners disagree: %g", maxDiff)
	}
}

// TestAssemblyReuseMatchesFresh checks the assemble-once path is a pure
// refactor of per-solve assembly: solving through a shared Assembly must
// reproduce the fresh-assembly solution bitwise — including the nonuniform
// (DeltaTFor) path, which rebuilds only the load vector against the cached
// matrix.
func TestAssemblyReuseMatchesFresh(t *testing.T) {
	r := buildROM(t, 3, true)
	base := Problem{
		ROM: r, Bx: 3, By: 2, DeltaT: -180,
		BC: ClampedTopBottom, Solver: CG,
		Opt:     solver.Options{Tol: 1e-10},
		Workers: 1, // deterministic reduction order on both paths
	}
	hot := func(bx, by int) float64 { return -60 * float64(1+bx+by) }

	for _, tc := range []struct {
		name  string
		dtFor func(bx, by int) float64
	}{
		{"uniform", nil},
		{"per-block", hot},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fresh := base
			fresh.DeltaTFor = tc.dtFor
			fs, err := Solve(&fresh)
			if err != nil {
				t.Fatal(err)
			}
			if fs.AssemblyShared {
				t.Error("fresh solve reported a shared assembly")
			}

			pre := base
			pre.DeltaTFor = tc.dtFor
			asm, err := NewAssembly(&pre, 1)
			if err != nil {
				t.Fatal(err)
			}
			shared := base
			shared.DeltaTFor = tc.dtFor
			shared.Assembly = asm
			ss, err := Solve(&shared)
			if err != nil {
				t.Fatal(err)
			}
			if !ss.AssemblyShared {
				t.Error("shared solve did not report the shared assembly")
			}
			for i := range fs.Q {
				if fs.Q[i] != ss.Q[i] {
					t.Fatalf("Q[%d] differs: fresh %g vs shared %g", i, fs.Q[i], ss.Q[i])
				}
			}
		})
	}
}

// TestAssemblyMismatchRejected checks the structural guards on a shared
// assembly: wrong dimensions or BC kind must fail loudly, not solve the
// wrong system.
func TestAssemblyMismatchRejected(t *testing.T) {
	r := buildROM(t, 3, true)
	p := &Problem{ROM: r, Bx: 2, By: 2, DeltaT: -100, BC: ClampedTopBottom}
	asm, err := NewAssembly(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	wrongDims := *p
	wrongDims.Bx = 3
	wrongDims.Assembly = asm
	if _, err := Solve(&wrongDims); err == nil {
		t.Error("expected error for mismatched dimensions")
	}
	wrongBC := *p
	wrongBC.BC = PrescribedBoundary
	wrongBC.BoundaryDisp = func(mesh.Vec3) [3]float64 { return [3]float64{} }
	wrongBC.Assembly = asm
	if _, err := Solve(&wrongBC); err == nil {
		t.Error("expected error for mismatched BC kind")
	}
}

// TestWarmStartFallbackOnBadSeed checks the divergence fallback: a poisoned
// initial guess (NaNs break the PCG recurrence) must not fail the solve —
// it is retried cold and flagged via WarmFallback.
func TestWarmStartFallbackOnBadSeed(t *testing.T) {
	r := buildROM(t, 3, true)
	p := &Problem{
		ROM: r, Bx: 2, By: 2, DeltaT: -100,
		BC: ClampedTopBottom, Solver: CG,
		Opt: solver.Options{Tol: 1e-9, MaxIter: 400},
	}
	good, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if good.WarmFallback || good.Stats.Warm {
		t.Fatalf("cold solve misreported warm state: %+v", good.Stats)
	}

	bad := *p
	bad.X0 = make([]float64, len(good.QFree))
	for i := range bad.X0 {
		bad.X0[i] = math.NaN()
	}
	sol, err := Solve(&bad)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.WarmFallback {
		t.Error("poisoned seed did not trigger the cold fallback")
	}
	if sol.Stats.Warm {
		t.Error("fallback stats still report a warm solve")
	}
	var maxDiff float64
	for i := range sol.Q {
		if d := math.Abs(sol.Q[i] - good.Q[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-9 {
		t.Errorf("fallback solution deviates by %g", maxDiff)
	}

	// A wrong-length seed is ignored, not an error.
	short := *p
	short.X0 = []float64{1, 2, 3}
	ss, err := Solve(&short)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Stats.Warm || ss.WarmFallback {
		t.Error("wrong-length seed should be dropped silently")
	}
}
