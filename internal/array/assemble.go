package array

import (
	"sync"
	"sync/atomic"

	"repro/internal/rom"
	"repro/internal/sparse"
)

// assembleGlobal scatters every block's dense element stiffness and load
// (Eqs. 18–19) into the sparse global system by the standard assembly
// procedure. The load is assembled for a unit thermal field (ΔT ≡ 1):
// neither output depends on the scenario's thermal load, which is what lets
// an Assembly be built once per lattice and reused across a ΔT sweep (the
// RHS is scaled — or rebuilt by assembleLoad for per-block fields — per
// scenario). The scatter is parallel over blocks: row segments are
// pre-counted, per-row write cursors are advanced atomically, and the
// unordered duplicated entries are compacted in a parallel finishing pass —
// no triplet intermediary, which matters at paper-scale arrays (50×50 blocks
// × 294² dense entries).
//
//stressvet:gang -- `workers` scatter goroutines with per-worker load buffers
func assembleGlobal(p *Problem, lat *Lattice, workers int) (*sparse.CSR, []float64) {
	if workers < 1 {
		workers = 1
	}
	ndof := lat.NumDoFs()
	blockROM := func(bx, by int) *rom.ROM {
		if p.IsDummy != nil && p.IsDummy(bx, by) {
			return p.DummyROM
		}
		return p.ROM
	}

	// Pass 1: raw (duplicated) entry counts per global row.
	rowCount := make([]int32, ndof+1)
	for by := 0; by < p.By; by++ {
		for bx := 0; bx < p.Bx; bx++ {
			r := blockROM(bx, by)
			dmap := lat.BlockDoFMap(r, bx, by)
			for _, gi := range dmap {
				rowCount[gi+1] += int32(r.N)
			}
		}
	}
	for i := 0; i < ndof; i++ {
		rowCount[i+1] += rowCount[i]
	}
	nnzRaw := int(rowCount[ndof])
	colIdx := make([]int32, nnzRaw)
	vals := make([]float64, nnzRaw)
	cursor := make([]int32, ndof)
	copy(cursor, rowCount[:ndof])

	// Pass 2: parallel scatter over blocks with atomic row cursors;
	// per-worker load buffers avoid races on f.
	type job struct{ bx, by int }
	jobs := make(chan job, workers)
	fBufs := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fb := make([]float64, ndof)
			fBufs[w] = fb
			for jb := range jobs {
				r := blockROM(jb.bx, jb.by)
				dmap := lat.BlockDoFMap(r, jb.bx, jb.by)
				for i := 0; i < r.N; i++ {
					gi := dmap[i]
					row := r.Aelem.Row(i)
					base := atomic.AddInt32(&cursor[gi], int32(r.N)) - int32(r.N)
					seg := int(base)
					for j := 0; j < r.N; j++ {
						colIdx[seg+j] = dmap[j]
						vals[seg+j] = row[j]
					}
					fb[gi] += r.Belem[i]
				}
			}
		}(w)
	}
	for by := 0; by < p.By; by++ {
		for bx := 0; bx < p.Bx; bx++ {
			jobs <- job{bx, by}
		}
	}
	close(jobs)
	wg.Wait()

	f := make([]float64, ndof)
	for _, fb := range fBufs {
		if fb == nil {
			continue
		}
		for i, v := range fb {
			f[i] += v
		}
	}
	raw := &sparse.CSR{NRows: ndof, NCols: ndof, RowPtr: rowCount, ColIdx: colIdx, Vals: vals}
	return raw.CompactRows(workers), f
}

// assembleLoad builds the thermal load vector for the problem's per-block
// ΔT field. This is the only per-scenario assembly work left once the matrix
// comes from a shared Assembly: O(blocks·n) scalar accumulation, no matrix
// scatter. Serial — it is orders of magnitude cheaper than the stiffness
// pass.
func assembleLoad(p *Problem, lat *Lattice) []float64 {
	f := make([]float64, lat.NumDoFs())
	for by := 0; by < p.By; by++ {
		for bx := 0; bx < p.Bx; bx++ {
			r := p.ROM
			if p.IsDummy != nil && p.IsDummy(bx, by) {
				r = p.DummyROM
			}
			dmap := lat.BlockDoFMap(r, bx, by)
			dt := p.blockDeltaT(bx, by)
			for i := 0; i < r.N; i++ {
				f[dmap[i]] += dt * r.Belem[i]
			}
		}
	}
	return f
}
