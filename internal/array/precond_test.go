package array

import (
	"sync"
	"testing"

	"repro/internal/solver"
)

// precondProblem is a small CG problem for the cache tests.
func precondProblem(t *testing.T) *Problem {
	t.Helper()
	return &Problem{
		ROM: buildROM(t, 4, true), Bx: 2, By: 2, DeltaT: -250,
		BC: ClampedTopBottom, Solver: CG,
		Opt: solver.Options{Tol: 1e-9},
	}
}

// TestAssemblyPrecondSharedAcrossSolves: the first iterative solve on an
// assembly builds the preconditioner (and records the cost); every later
// solve on the same assembly — any ΔT — reuses it.
func TestAssemblyPrecondSharedAcrossSolves(t *testing.T) {
	p := precondProblem(t)
	asm, err := NewAssembly(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Assembly = asm
	first, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if first.PrecondShared {
		t.Error("first solve claims a cached preconditioner")
	}
	if first.Stats.PrecondBuild <= 0 {
		t.Error("first solve did not record the preconditioner build cost")
	}
	for _, dt := range []float64{-100, -250, 40} {
		q := *p
		q.DeltaT = dt
		sol, err := Solve(&q)
		if err != nil {
			t.Fatal(err)
		}
		if !sol.PrecondShared {
			t.Errorf("ΔT=%g: preconditioner was rebuilt", dt)
		}
		if sol.Stats.PrecondBuild != 0 {
			t.Errorf("ΔT=%g: PrecondBuild = %v on a cache hit, want 0", dt, sol.Stats.PrecondBuild)
		}
		if sol.Stats.PrecondApply <= 0 {
			t.Errorf("ΔT=%g: PrecondApply not recorded", dt)
		}
	}
}

// TestAssemblyPrecondDistinctPerKind: each concrete kind caches its own
// entry, and PrecondAuto shares the entry of the kind it resolves to.
func TestAssemblyPrecondDistinctPerKind(t *testing.T) {
	p := precondProblem(t)
	asm, err := NewAssembly(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	jac, err := asm.Preconditioner(solver.PrecondJacobi, solver.OrderingAuto, 0)
	if err != nil {
		t.Fatal(err)
	}
	if jac.Hit || jac.Build <= 0 {
		t.Errorf("first jacobi request: hit=%v build=%v", jac.Hit, jac.Build)
	}
	ic, err := asm.Preconditioner(solver.PrecondIC0, solver.OrderingAuto, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ic.Hit {
		t.Error("ic0 hit the jacobi entry")
	}
	if ic.M == jac.M {
		t.Error("distinct kinds share one preconditioner")
	}
	again, err := asm.Preconditioner(solver.PrecondIC0, solver.OrderingAuto, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Hit || again.M != ic.M || again.Build != 0 {
		t.Errorf("repeat ic0 request: hit=%v same=%v build=%v", again.Hit, again.M == ic.M, again.Build)
	}
	// Auto resolves against the reduced size (amortized rule — the cache is
	// what amortizes it) and must share the resolved kind's entry rather
	// than cache a duplicate under PrecondAuto.
	resolved := solver.PrecondKind(solver.PrecondAuto).ResolveAmortized(asm.NumFree())
	want, err := asm.Preconditioner(resolved, solver.OrderingAuto, 0)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := asm.Preconditioner(solver.PrecondAuto, solver.OrderingAuto, 0)
	if err != nil {
		t.Fatal(err)
	}
	if auto.M != want.M || !auto.Hit {
		t.Errorf("auto did not share the %v entry (hit=%v)", resolved, auto.Hit)
	}
}

// TestAssemblyPrecondDistinctPerOrdering: the factorizing kind caches one
// entry per concrete ordering (the ordering permutation lives inside the
// factor), OrderingAuto shares the entry of the ordering it resolves to, and
// the ordering-invariant kinds collapse every ordering onto one entry.
func TestAssemblyPrecondDistinctPerOrdering(t *testing.T) {
	p := precondProblem(t)
	asm, err := NewAssembly(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	nat, err := asm.Preconditioner(solver.PrecondIC0, solver.OrderingNatural, 0)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := asm.Preconditioner(solver.PrecondIC0, solver.OrderingMulticolor, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Hit || mc.M == nat.M {
		t.Errorf("multicolor ic0 shared the natural entry (hit=%v)", mc.Hit)
	}
	if nat.Ordering != solver.OrderingNatural || mc.Ordering != solver.OrderingMulticolor {
		t.Errorf("orderings recorded as %v, %v", nat.Ordering, mc.Ordering)
	}
	again, err := asm.Preconditioner(solver.PrecondIC0, solver.OrderingMulticolor, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Hit || again.M != mc.M {
		t.Errorf("repeat multicolor request: hit=%v same=%v", again.Hit, again.M == mc.M)
	}
	// Auto resolves to a concrete ordering (memoized per assembly) and must
	// share that entry rather than cache a duplicate under OrderingAuto.
	resolved := asm.resolveOrdering(solver.OrderingAuto, 0)
	want, err := asm.Preconditioner(solver.PrecondIC0, resolved, 0)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := asm.Preconditioner(solver.PrecondIC0, solver.OrderingAuto, 0)
	if err != nil {
		t.Fatal(err)
	}
	if auto.M != want.M || !auto.Hit {
		t.Errorf("auto did not share the %v entry (hit=%v)", resolved, auto.Hit)
	}
	// Ordering-invariant kinds ignore the ordering: one entry for all.
	j1, err := asm.Preconditioner(solver.PrecondBlockJacobi3, solver.OrderingNatural, 0)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := asm.Preconditioner(solver.PrecondBlockJacobi3, solver.OrderingMulticolor, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Hit || j1.M != j2.M || j2.Ordering != solver.OrderingNatural {
		t.Errorf("jacobi family did not collapse orderings: hit=%v same=%v ord=%v", j2.Hit, j1.M == j2.M, j2.Ordering)
	}
}

// TestSolveSurfacesOrdering: the solve threads Options.Ordering through the
// assembly cache and surfaces the concrete ordering on the Solution.
func TestSolveSurfacesOrdering(t *testing.T) {
	p := precondProblem(t)
	p.Opt.Precond = solver.PrecondIC0
	p.Opt.Ordering = solver.OrderingMulticolor
	asm, err := NewAssembly(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Assembly = asm
	first, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if first.Ordering != solver.OrderingMulticolor || first.Stats.Ordering != solver.OrderingMulticolor {
		t.Errorf("ordering surfaced as %v / %v, want multicolor", first.Ordering, first.Stats.Ordering)
	}
	if first.PrecondShared {
		t.Error("first multicolor solve claims a cached preconditioner")
	}
	second, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !second.PrecondShared || second.Ordering != solver.OrderingMulticolor {
		t.Errorf("second solve: shared=%v ordering=%v", second.PrecondShared, second.Ordering)
	}
	// The two orderings must agree on the physics.
	q := *p
	q.Opt.Ordering = solver.OrderingNatural
	natSol, err := Solve(&q)
	if err != nil {
		t.Fatal(err)
	}
	var maxDiff float64
	for i := range natSol.Q {
		if d := natSol.Q[i] - second.Q[i]; d > maxDiff || -d > maxDiff {
			if d < 0 {
				d = -d
			}
			maxDiff = d
		}
	}
	if maxDiff > 1e-6 {
		t.Errorf("orderings disagree by %g µm on Q", maxDiff)
	}
}

// TestAssemblyPrecondConcurrentFirstUse: concurrent first requests build the
// preconditioner exactly once (everyone gets the same instance; exactly one
// caller reports a miss).
func TestAssemblyPrecondConcurrentFirstUse(t *testing.T) {
	p := precondProblem(t)
	asm, err := NewAssembly(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	results := make([]AssemblyPrecond, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := asm.Preconditioner(solver.PrecondBlockJacobi3, solver.OrderingAuto, 0)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	misses := 0
	for i, r := range results {
		if r.M != results[0].M {
			t.Fatalf("caller %d got a different preconditioner", i)
		}
		if !r.Hit {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d callers reported a miss, want exactly 1", misses)
	}
}

// TestAssemblyMemoryBytesCountsPreconds: the snapshot's footprint must grow
// as preconditioners are cached, so byte-budgeted assembly caches see them.
func TestAssemblyMemoryBytesCountsPreconds(t *testing.T) {
	p := precondProblem(t)
	asm, err := NewAssembly(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := asm.MemoryBytes()
	if _, err := asm.Preconditioner(solver.PrecondIC0, solver.OrderingAuto, 0); err != nil {
		t.Fatal(err)
	}
	afterIC := asm.MemoryBytes()
	if afterIC <= before {
		t.Errorf("MemoryBytes %d → %d did not grow after caching IC0", before, afterIC)
	}
	if _, err := asm.Preconditioner(solver.PrecondJacobi, solver.OrderingAuto, 0); err != nil {
		t.Fatal(err)
	}
	if after := asm.MemoryBytes(); after <= afterIC {
		t.Errorf("MemoryBytes %d → %d did not grow after caching jacobi", afterIC, after)
	}
}

// TestAssemblyPrecondRequiresFreeDoFs: the degenerate all-constrained
// assembly has nothing to precondition.
func TestAssemblyPrecondRequiresFreeDoFs(t *testing.T) {
	p := precondProblem(t)
	p.ROM = buildROM(t, 2, true) // (2,2,2) nodes: every DoF constrained
	asm, err := NewAssembly(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !asm.AllBC {
		t.Fatal("expected the all-constrained degenerate case")
	}
	if _, err := asm.Preconditioner(solver.PrecondAuto, solver.OrderingAuto, 0); err == nil {
		t.Error("Preconditioner on an all-BC assembly should error")
	}
}
