package array

import (
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/mesh"
	"repro/internal/reffem"
	"repro/internal/rom"
	"repro/internal/solver"
)

// TestNonuniformThermalLoadMatchesReference checks the per-block ΔT
// extension against the fine reference with the same piecewise-constant
// thermal field: the global stage must track the reference as accurately as
// in the uniform case.
func TestNonuniformThermalLoadMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("nonuniform-load comparison is slow")
	}
	spec := rom.PaperSpec(15, mesh.CoarseResolution())
	spec.Nodes = [3]int{5, 5, 5}
	r, err := rom.Build(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	const bx, by = 3, 3
	const gs = 10
	// Hotspot at the center block: hotter (smaller |ΔT| from anneal).
	dtFor := func(x, y int) float64 {
		if x == 1 && y == 1 {
			return -150
		}
		return -250
	}
	sol, err := Solve(&Problem{
		ROM: r, Bx: bx, By: by,
		DeltaTFor: dtFor,
		BC:        ClampedTopBottom,
		Opt:       solver.Options{Tol: 1e-10},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := sol.VMField(gs, 8)

	ref, err := reffem.Solve(&reffem.Problem{
		Geom: spec.Geom, Mats: spec.Mats, Res: spec.Res,
		Bx: bx, By: by,
		DeltaTFor: dtFor,
		BC:        reffem.ClampedTopBottom,
		Opt:       solver.Options{Tol: 1e-10},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.SampleVM(gs, 8)

	nmae := field.NormalizedMAE(got, want)
	t.Logf("nonuniform ΔT error: %.3f%%", 100*nmae)
	if nmae > 0.03 {
		t.Errorf("error %.4f too large for nonuniform thermal load", nmae)
	}
	// The hotspot block must differ from its uniform-load twin.
	uniform, err := Solve(&Problem{
		ROM: r, Bx: bx, By: by, DeltaT: -250,
		BC:  ClampedTopBottom,
		Opt: solver.Options{Tol: 1e-10},
	})
	if err != nil {
		t.Fatal(err)
	}
	uvm := uniform.VMField(gs, 8)
	center := got.Crop(gs, gs, 2*gs, 2*gs)
	ucenter := uvm.Crop(gs, gs, 2*gs, 2*gs)
	if math.Abs(center.Max()-ucenter.Max()) < 1e-6*ucenter.Max() {
		t.Error("hotspot had no effect on the center block")
	}
}

func TestDeltaTForDefaultsToUniform(t *testing.T) {
	spec := rom.PaperSpec(15, mesh.CoarseResolution())
	r, err := rom.Build(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	base := Problem{ROM: r, Bx: 2, By: 2, DeltaT: -250, BC: ClampedTopBottom,
		Opt: solver.Options{Tol: 1e-11}}
	p1 := base
	p2 := base
	p2.DeltaTFor = func(int, int) float64 { return -250 }
	s1, err := Solve(&p1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Solve(&p2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1.Q {
		if math.Abs(s1.Q[i]-s2.Q[i]) > 1e-12+1e-9*math.Abs(s1.Q[i]) {
			t.Fatalf("constant DeltaTFor differs from uniform DeltaT at %d", i)
		}
	}
}
