package array

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/mesh"
	"repro/internal/rom"
	"repro/internal/solver"
)

// TestMeasureReducedGlobalPrecond regenerates the iterations/ms table of
// docs/SOLVER_TUNING.md and the reduced_global_precond section of
// BENCH_global.json: PCG on the reduced global matrix at coarse resolution,
// (5,5,5) nodes, Tol 1e-8, for each lattice size and preconditioner. It
// reports the cold solve (first solve on the lattice: preconditioner build
// + iterate) and the warm solve (assembly-cached preconditioner, the
// serving path's per-scenario cost). Gated behind MEASURE=1 because the
// large lattices take minutes.
func TestMeasureReducedGlobalPrecond(t *testing.T) {
	if os.Getenv("MEASURE") == "" {
		t.Skip("set MEASURE=1 to run the measurement harness")
	}
	spec := rom.PaperSpec(15, mesh.CoarseResolution())
	spec.Nodes = [3]int{5, 5, 5}
	r, err := rom.Build(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{6, 12, 18} {
		base := &Problem{ROM: r, Bx: size, By: size, DeltaT: -250, BC: ClampedTopBottom, Solver: CG}
		asm, err := NewAssembly(base, 0)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%dx%d: free DoFs %d, nnz(Aff) %d, assembly build %v",
			size, size, asm.NumFree(), asm.Red.Aff.NNZ(), asm.BuildTime)
		for _, kind := range []solver.PrecondKind{solver.PrecondJacobi, solver.PrecondBlockJacobi3, solver.PrecondIC0} {
			solveOnce := func(a *Assembly) (*Solution, time.Duration) {
				p := *base
				p.Assembly = a
				p.Opt = solver.Options{Tol: 1e-8, Precond: kind}
				t0 := time.Now()
				sol, err := Solve(&p)
				if err != nil {
					t.Fatal(err)
				}
				return sol, time.Since(t0)
			}
			// Cold: fresh assembly copy → preconditioner built in-solve.
			coldAsm, err := NewAssembly(base, 0)
			if err != nil {
				t.Fatal(err)
			}
			coldSol, cold := solveOnce(coldAsm)
			// Warm: shared assembly whose preconditioner cache is populated.
			if _, err := asm.Preconditioner(kind); err != nil {
				t.Fatal(err)
			}
			best := time.Duration(1 << 62)
			var warmSol *Solution
			for i := 0; i < 3; i++ {
				sol, d := solveOnce(asm)
				if d < best {
					best = d
				}
				warmSol = sol
			}
			fmt.Printf("MEASURE %dx%d %-14s it=%3d cold=%7.0fms warm=%7.0fms build=%7.0fms apply=%6.0fms shared=%v\n",
				size, size, kind, warmSol.Stats.Iterations,
				float64(cold)/1e6, float64(best)/1e6,
				float64(coldSol.Stats.PrecondBuild)/1e6,
				float64(warmSol.Stats.PrecondApply)/1e6,
				warmSol.PrecondShared)
		}
	}
}
