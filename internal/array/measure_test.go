package array

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/mesh"
	"repro/internal/rom"
	"repro/internal/solver"
)

// TestMeasureReducedGlobalPrecond regenerates the iterations/ms tables of
// docs/SOLVER_TUNING.md and the reduced_global_precond section of
// BENCH_global.json: PCG on the reduced global matrix at coarse resolution,
// (5,5,5) nodes, Tol 1e-8, for each lattice size, preconditioner, and — for
// IC0 — symmetric ordering (natural, RCM, multicolor). It reports the cold
// solve (first solve on the lattice: preconditioner build + iterate), the
// warm solve (assembly-cached preconditioner, the serving path's
// per-scenario cost), and the factor's dependency-level shape (levels ×
// widest level), which is what the ordering changes. Run at -cpu 1 and
// -cpu 4 to measure the serial-fallback and fan-out regimes; the
// AutoMulticolorWidth / AutoIC0Threshold constants come from these tables.
// Gated behind MEASURE=1 because the large lattices take minutes.
func TestMeasureReducedGlobalPrecond(t *testing.T) {
	if os.Getenv("MEASURE") == "" {
		t.Skip("set MEASURE=1 to run the measurement harness")
	}
	spec := rom.PaperSpec(15, mesh.CoarseResolution())
	spec.Nodes = [3]int{5, 5, 5}
	r, err := rom.Build(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	type variant struct {
		kind solver.PrecondKind
		ord  solver.OrderingKind
		prec solver.Precision
	}
	// The two explicit IC0 precisions at the natural ordering measure the
	// blocked layout in both storage widths (the reduced matrices always
	// clear BlockFillMin, so float64 here IS the blocked-vs-scalar apply
	// comparison against the pr-8 scalar rows); the remaining orderings run
	// at the auto precision the serving path uses.
	variants := []variant{
		{solver.PrecondJacobi, solver.OrderingNatural, solver.PrecisionFloat64},
		{solver.PrecondBlockJacobi3, solver.OrderingNatural, solver.PrecisionFloat64},
		{solver.PrecondIC0, solver.OrderingNatural, solver.PrecisionFloat64},
		{solver.PrecondIC0, solver.OrderingNatural, solver.PrecisionFloat32},
		{solver.PrecondIC0, solver.OrderingRCM, solver.PrecisionAuto},
		{solver.PrecondIC0, solver.OrderingMulticolor, solver.PrecisionAuto},
	}
	for _, size := range []int{6, 12, 18} {
		base := &Problem{ROM: r, Bx: size, By: size, DeltaT: -250, BC: ClampedTopBottom, Solver: CG}
		asm, err := NewAssembly(base, 0)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("MEASURE %dx%d gomaxprocs=%d free_dofs=%d nnz=%d natural_width=%d assembly_build=%v\n",
			size, size, runtime.GOMAXPROCS(0), asm.NumFree(), asm.Red.Aff.NNZ(),
			solver.NaturalLevelWidth(asm.Red.Aff), asm.BuildTime)
		for _, v := range variants {
			solveOnce := func(a *Assembly) (*Solution, time.Duration) {
				p := *base
				p.Assembly = a
				p.Opt = solver.Options{Tol: 1e-8, Precond: v.kind, Ordering: v.ord, Precision: v.prec}
				t0 := time.Now()
				sol, err := Solve(&p)
				if err != nil {
					t.Fatal(err)
				}
				return sol, time.Since(t0)
			}
			// Cold: fresh assembly copy → preconditioner built in-solve.
			coldAsm, err := NewAssembly(base, 0)
			if err != nil {
				t.Fatal(err)
			}
			coldSol, cold := solveOnce(coldAsm)
			// Warm: shared assembly whose preconditioner cache is populated.
			ap, err := asm.PreconditionerPrec(v.kind, v.ord, v.prec, 0)
			if err != nil {
				t.Fatal(err)
			}
			levels, width := -1, -1
			if fl, ok := ap.M.(solver.FactorLevels); ok {
				levels, width = fl.Levels()
			}
			blocked := false
			if bl, ok := ap.M.(interface{ Blocked() bool }); ok {
				blocked = bl.Blocked()
			}
			var factorBytes int64 = -1
			if sz, ok := ap.M.(solver.Sized); ok {
				factorBytes = sz.MemoryBytes()
			}
			best := time.Duration(1 << 62)
			var warmSol *Solution
			for i := 0; i < 3; i++ {
				sol, d := solveOnce(asm)
				if d < best {
					best = d
				}
				warmSol = sol
			}
			fmt.Printf("MEASURE %dx%d %-14s %-10s prec=%-7s blocked=%-5v it=%3d cold=%7.0fms warm=%7.0fms build=%7.0fms apply=%6.0fms refine=%d bytes=%9d levels=%5d width=%5d shared=%v\n",
				size, size, v.kind, v.ord, warmSol.Precision, blocked, warmSol.Stats.Iterations,
				float64(cold)/1e6, float64(best)/1e6,
				float64(coldSol.Stats.PrecondBuild)/1e6,
				float64(warmSol.Stats.PrecondApply)/1e6,
				warmSol.Stats.Refinements, factorBytes,
				levels, width,
				warmSol.PrecondShared)
		}
	}
}
