package array

import (
	"testing"

	"repro/internal/solver"
)

// TestAssemblyPrecondDistinctPerPrecision: the factorizing kind caches one
// entry per concrete storage precision; PrecisionAuto builds the identical
// float32 factor and must share its entry rather than duplicate it, while
// the precision-invariant kinds collapse every request onto float64.
func TestAssemblyPrecondDistinctPerPrecision(t *testing.T) {
	p := precondProblem(t)
	asm, err := NewAssembly(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := asm.PreconditionerPrec(solver.PrecondIC0, solver.OrderingAuto, solver.PrecisionAuto, 0)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Hit {
		t.Error("first auto-precision request claims a cache hit")
	}
	if auto.Precision != solver.PrecisionFloat32 {
		t.Errorf("auto precision resolved to %v, want float32 on the blocked reduced matrix", auto.Precision)
	}
	single, err := asm.PreconditionerPrec(solver.PrecondIC0, solver.OrderingAuto, solver.PrecisionFloat32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !single.Hit || single.M != auto.M {
		t.Errorf("explicit float32 did not share the auto entry (hit=%v same=%v)", single.Hit, single.M == auto.M)
	}
	double, err := asm.PreconditionerPrec(solver.PrecondIC0, solver.OrderingAuto, solver.PrecisionFloat64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if double.Hit || double.M == auto.M {
		t.Errorf("float64 shared the float32 entry (hit=%v)", double.Hit)
	}
	if double.Precision != solver.PrecisionFloat64 {
		t.Errorf("float64 entry reports precision %v", double.Precision)
	}
	// The float32 factor must actually be smaller than its float64 twin.
	m32, ok := auto.M.(interface{ MemoryBytes() int64 })
	m64, ok2 := double.M.(interface{ MemoryBytes() int64 })
	if !ok || !ok2 {
		t.Fatal("preconditioners do not report MemoryBytes")
	}
	if m32.MemoryBytes() >= m64.MemoryBytes() {
		t.Errorf("float32 factor (%d B) not smaller than float64 (%d B)", m32.MemoryBytes(), m64.MemoryBytes())
	}
	// Precision-invariant kinds collapse onto one float64 entry.
	j1, err := asm.PreconditionerPrec(solver.PrecondBlockJacobi3, solver.OrderingAuto, solver.PrecisionFloat32, 0)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := asm.PreconditionerPrec(solver.PrecondBlockJacobi3, solver.OrderingAuto, solver.PrecisionFloat64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Hit || j1.M != j2.M || j1.Precision != solver.PrecisionFloat64 {
		t.Errorf("jacobi family did not collapse precisions: hit=%v same=%v prec=%v", j2.Hit, j1.M == j2.M, j1.Precision)
	}
}

// TestSolveSurfacesPrecision: the solve threads Options.Precision through
// the assembly cache and surfaces the concrete factor precision on the
// Solution — float32 by default on the blocked reduced matrices, float64 on
// request — and the two precisions agree on the physics.
func TestSolveSurfacesPrecision(t *testing.T) {
	p := precondProblem(t)
	p.Opt.Precond = solver.PrecondIC0
	asm, err := NewAssembly(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Assembly = asm
	sol32, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol32.Precision != solver.PrecisionFloat32 || sol32.Stats.Precision != solver.PrecisionFloat32 {
		t.Errorf("default precision surfaced as %v / %v, want float32", sol32.Precision, sol32.Stats.Precision)
	}
	if sol32.PrecisionFallback {
		t.Error("default solve claims a precision fallback")
	}
	q := *p
	q.Opt.Precision = solver.PrecisionFloat64
	sol64, err := Solve(&q)
	if err != nil {
		t.Fatal(err)
	}
	if sol64.Precision != solver.PrecisionFloat64 || sol64.Stats.Precision != solver.PrecisionFloat64 {
		t.Errorf("float64 precision surfaced as %v / %v", sol64.Precision, sol64.Stats.Precision)
	}
	var maxDiff float64
	for i := range sol64.Q {
		d := sol64.Q[i] - sol32.Q[i]
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-6 {
		t.Errorf("precisions disagree by %g µm on Q", maxDiff)
	}
	// Direct solves always report float64: no factor storage choice exists.
	r := *p
	r.Solver = Direct
	r.Assembly = nil
	dsol, err := Solve(&r)
	if err != nil {
		t.Fatal(err)
	}
	if dsol.Precision != solver.PrecisionFloat64 || dsol.Stats.Precision != solver.PrecisionFloat64 {
		t.Errorf("direct solve precision surfaced as %v / %v, want float64", dsol.Precision, dsol.Stats.Precision)
	}
}
