// Package array implements the global stage of MORE-Stress (§4.3): the TSV
// array is an abstract "mesh" whose "elements" are unit blocks and whose
// DoFs are the Lagrange surface-node displacements. The dense element
// matrices from the one-shot local stage are assembled by the standard FEM
// procedure into a sparse global system, boundary conditions are applied by
// lifting, the system is solved iteratively (GMRES per the paper, CG
// optionally), and per-block fields are reconstructed from the local basis.
package array

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/fem"
	"repro/internal/field"
	"repro/internal/mesh"
	"repro/internal/rom"
	"repro/internal/solver"
	"repro/internal/sparse"
)

// BCKind selects the global boundary condition.
type BCKind int

const (
	// ClampedTopBottom fixes u = 0 on the top and bottom surfaces and
	// leaves the lateral boundary free (scenario 1, Fig. 5(a)).
	ClampedTopBottom BCKind = iota
	// PrescribedBoundary imposes displacements from a coarse package
	// solution on every outer boundary node (sub-modeling, §4.4).
	PrescribedBoundary
)

// SolverKind selects the global linear solver.
type SolverKind int

const (
	// GMRES is the paper's recommendation for the global problem.
	GMRES SolverKind = iota
	// CG exploits the symmetric positive-definiteness of the assembled
	// global matrix (ablation option).
	CG
	// Direct factors the reduced global matrix with sparse Cholesky — the
	// alternative the paper argues against for one-shot global solves
	// (§4.3); provided for the ablation benches.
	Direct
)

// Problem describes one global-stage computation.
type Problem struct {
	// ROM is the TSV unit-block model from the one-shot local stage.
	ROM *rom.ROM
	// DummyROM models the pure-silicon padding blocks; required when
	// IsDummy marks any block. Its Nodes/Geometry must match ROM.
	DummyROM *rom.ROM
	// Bx, By are the array dimensions in blocks (including dummies).
	Bx, By int
	// IsDummy marks padding blocks; nil means all blocks carry TSVs.
	IsDummy func(bx, by int) bool
	// DeltaT is the thermal load in °C (paper: −250).
	DeltaT float64
	// DeltaTFor optionally overrides DeltaT per block (piecewise-constant
	// nonuniform thermal fields, e.g. hotspots); nil means uniform DeltaT.
	DeltaTFor func(bx, by int) float64
	// BC selects the boundary condition kind.
	BC BCKind
	// BoundaryDisp supplies prescribed displacements at outer-boundary node
	// positions (global µm coordinates); used with PrescribedBoundary.
	BoundaryDisp func(p mesh.Vec3) [3]float64
	// Solver selects GMRES (default), CG, or Direct.
	Solver SolverKind
	// Opt configures the iterative solver, including the preconditioner
	// (Opt.Precond, default solver.PrecondAuto).
	Opt solver.Options
	// Workers bounds the parallelism (0 = GOMAXPROCS).
	Workers int
	// Assembly optionally supplies a prebuilt assemble-once snapshot of the
	// reduced global system. The matrix depends only on the ROM content,
	// the array dimensions, the dummy layout, and the BC pattern — not on
	// the thermal load — so a ΔT sweep over one lattice can build it once
	// (NewAssembly) and re-solve with a fresh RHS per scenario. The caller
	// must guarantee the snapshot was built for an equivalent Problem;
	// Solve checks the cheap structural invariants (dimensions, node
	// counts, BC kind) and trusts the rest.
	Assembly *Assembly
	// X0 optionally seeds the iterative solvers with an initial guess in
	// reduced free-DoF ordering — the QFree of a previous Solution on the
	// same assembly (warm start). A wrong-length seed is ignored; a seed
	// that makes the solver diverge is retried cold (WarmFallback).
	X0 []float64
	// Factors optionally shares sparse Cholesky factorizations across
	// repeated Direct solves: when set together with FactorKey, the Direct
	// branch asks the cache instead of factoring unconditionally. The
	// reduced global matrix depends only on the ROMs, the array size, the
	// dummy layout, and the BC pattern — not on the thermal load — so
	// batches of Direct solves over one lattice pay the factorization once.
	Factors FactorCache
	// FactorKey identifies the reduced global matrix to Factors. The
	// caller must fold in everything the matrix depends on (ROM content,
	// Bx×By, BC kind, dummy layout); an empty key disables sharing.
	FactorKey string
}

// FactorCache supplies memoized sparse Cholesky factorizations for Direct
// solves. GetOrFactor returns the cached factorization for key, calling
// build (and retaining its result) on the first request. Implementations
// must be safe for concurrent use.
type FactorCache interface {
	GetOrFactor(key string, build func() (*solver.CholFactor, error)) (*solver.CholFactor, error)
}

// Lattice is the global surface-node lattice: integer coordinates
// gx ∈ [0, Bx·(nx−1)], gy ∈ [0, By·(ny−1)], gz ∈ [0, nz−1], with
// block-interior lattice sites absent.
type Lattice struct {
	Bx, By        int
	NxN, NyN, NzN int // interpolation node counts per block
	GX, GY, GZ    int // lattice extents (node counts)
	Pitch, Height float64
	// Index maps lattice site (gx, gy, gz) to global node id, −1 if the
	// site is interior to a block. Flattened with gx fastest.
	Index []int32
	// Nodes lists the lattice triples of existing nodes in id order.
	Nodes [][3]int
}

// NewLattice enumerates the global surface nodes.
func NewLattice(bx, by int, nodes [3]int, pitch, height float64) *Lattice {
	nx, ny, nz := nodes[0], nodes[1], nodes[2]
	l := &Lattice{
		Bx: bx, By: by,
		NxN: nx, NyN: ny, NzN: nz,
		GX: bx*(nx-1) + 1, GY: by*(ny-1) + 1, GZ: nz,
		Pitch: pitch, Height: height,
	}
	l.Index = make([]int32, l.GX*l.GY*l.GZ)
	for gz := 0; gz < l.GZ; gz++ {
		interiorZ := gz > 0 && gz < l.GZ-1
		for gy := 0; gy < l.GY; gy++ {
			interiorY := gy%(ny-1) != 0
			for gx := 0; gx < l.GX; gx++ {
				interiorX := gx%(nx-1) != 0
				at := l.flat(gx, gy, gz)
				if interiorX && interiorY && interiorZ {
					l.Index[at] = -1
					continue
				}
				l.Index[at] = int32(len(l.Nodes))
				l.Nodes = append(l.Nodes, [3]int{gx, gy, gz})
			}
		}
	}
	return l
}

func (l *Lattice) flat(gx, gy, gz int) int { return gx + l.GX*(gy+l.GY*gz) }

// NodeID returns the global node id at lattice site (gx, gy, gz), −1 if the
// site is interior to a block.
func (l *Lattice) NodeID(gx, gy, gz int) int32 { return l.Index[l.flat(gx, gy, gz)] }

// NumNodes returns the number of global surface nodes.
func (l *Lattice) NumNodes() int { return len(l.Nodes) }

// NumDoFs returns 3 × NumNodes.
func (l *Lattice) NumDoFs() int { return 3 * len(l.Nodes) }

// Position returns the physical coordinates of global node id.
func (l *Lattice) Position(id int) mesh.Vec3 {
	t := l.Nodes[id]
	return mesh.Vec3{
		X: l.Pitch * float64(t[0]) / float64(l.NxN-1),
		Y: l.Pitch * float64(t[1]) / float64(l.NyN-1),
		Z: l.Height * float64(t[2]) / float64(l.NzN-1),
	}
}

// OnOuterBoundary reports whether node id lies on the outer surface of the
// array domain.
func (l *Lattice) OnOuterBoundary(id int) bool {
	t := l.Nodes[id]
	return t[0] == 0 || t[0] == l.GX-1 ||
		t[1] == 0 || t[1] == l.GY-1 ||
		t[2] == 0 || t[2] == l.GZ-1
}

// OnTopOrBottom reports whether node id lies on the clamped faces of
// scenario 1.
func (l *Lattice) OnTopOrBottom(id int) bool {
	t := l.Nodes[id]
	return t[2] == 0 || t[2] == l.GZ-1
}

// BlockDoFMap returns, for block (bx, by), the global DoF index of each of
// the ROM's element DoFs (canonical surface-node order × 3 components).
func (l *Lattice) BlockDoFMap(r *rom.ROM, bx, by int) []int32 {
	n := r.Surf.Count()
	out := make([]int32, 3*n)
	for s := 0; s < n; s++ {
		t := r.Surf.IJK[s]
		gid := l.NodeID(bx*(l.NxN-1)+t[0], by*(l.NyN-1)+t[1], t[2])
		if gid < 0 {
			panic(fmt.Sprintf("array: block (%d,%d) surface node %v maps to interior lattice site", bx, by, t))
		}
		for c := 0; c < 3; c++ {
			out[3*s+c] = 3*gid + int32(c)
		}
	}
	return out
}

// Solution is the outcome of the global stage.
type Solution struct {
	// Prob is a snapshot of the solved problem for post-processing (field
	// reconstruction needs the ROMs and the ΔT field). Its Assembly and X0
	// are cleared so a retained Solution — e.g. an async job result held
	// for its TTL — does not pin the reduced global matrix or the
	// warm-start seed beyond the solve.
	Prob    *Problem
	Lattice *Lattice
	// Q holds the global surface-node displacements (3 per node).
	Q []float64
	// QFree is the solution in reduced free-DoF ordering — the warm-start
	// seed (Problem.X0) for the next solve on the same assembly. Empty in
	// the degenerate all-constrained case.
	QFree []float64
	// Stats reports the iterative solve, including the resolved
	// preconditioner kind and whether the solve was warm-started.
	Stats solver.Stats
	// Ordering is the symmetric ordering the solve's preconditioner
	// factored under (mirrors Stats.Ordering; OrderingNatural for direct
	// solves, the Jacobi family, and the degenerate all-constrained case).
	Ordering solver.OrderingKind
	// Timings of the two global-stage phases. When AssemblyShared is true,
	// AssembleTime covers only the per-scenario RHS build; the matrix
	// assembly was paid once by the shared Assembly (its cost is in
	// Assembly.BuildTime).
	AssembleTime, SolveTime time.Duration
	// AssemblyShared reports that the reduced system came from
	// Problem.Assembly instead of being assembled by this Solve call.
	AssemblyShared bool
	// PrecondShared reports that an iterative solve's preconditioner came
	// from the assembly's per-kind cache (built by an earlier solve on the
	// same lattice) rather than being constructed by this call; the one
	// solve that populates the cache records the cost in
	// Stats.PrecondBuild.
	PrecondShared bool
	// WarmFallback reports that the warm-started solve diverged and the
	// recorded Stats are from the cold retry.
	WarmFallback bool
	// Precision is the storage precision of the solve's preconditioner
	// factor (mirrors Stats.Precision; PrecisionFloat64 for direct solves,
	// the Jacobi family, and the degenerate all-constrained case).
	Precision solver.Precision
	// PrecisionFallback reports that the float32-factor solve exhausted its
	// iterative-refinement budget (solver.ErrPrecision) and the recorded
	// Stats are from the retry against a float64 rebuild of the factor.
	PrecisionFallback bool
	// GlobalDoFs is the size of the abstract global system.
	GlobalDoFs int
	// MatrixNNZ is the assembled global matrix's stored entries.
	MatrixNNZ int
}

// Assembly is the assemble-once snapshot of a lattice's reduced global
// system: everything about the global stage that does not depend on the
// thermal load. Solving a scenario against a prebuilt Assembly costs one
// RHS build plus the linear solve; the matrix scatter, compaction, and
// Dirichlet reduction are paid once per lattice — and so is each
// preconditioner, built lazily on first use and cached on the Assembly per
// concrete PrecondKind (the preconditioner depends only on the reduced
// matrix, so every scenario, ΔT sweep, and async job on the lattice shares
// it). The reduced system itself is immutable after NewAssembly; the
// preconditioner cache is internally synchronized, so an Assembly is safe
// to share across concurrent Solve calls.
type Assembly struct {
	// Lat is the global surface-node lattice.
	Lat *Lattice
	// Red is the reduced system (A_ff, A_fb, unit thermal load b_f); nil in
	// the degenerate case where every DoF is constrained (AllBC).
	Red *fem.Reduced
	// BC is the boundary-condition kind the constraint mask was built for.
	BC BCKind
	// BCNodes lists the constrained global node ids in id order.
	BCNodes []int32
	// AllBC marks the degenerate case with no free DoFs (e.g. (2,2,2)
	// interpolation nodes under ClampedTopBottom).
	AllBC bool
	// NNZ is the stored-entry count of the full assembled matrix.
	NNZ int
	// BuildTime is the one-shot cost of the matrix assembly + reduction.
	BuildTime time.Duration

	// pmu guards preconds, the lazily built per-(kind, ordering, precision)
	// preconditioner cache, the memoized level-width probe, and the memoized
	// blocked form of the reduced matrix.
	pmu      sync.Mutex
	preconds map[precondKey]*assemblyPrecond
	// widthKnown/naturalWidth memoize solver.NaturalLevelWidth of the
	// reduced matrix — the O(nnz) part of the OrderingAuto rule — paid once
	// per lattice. The decision itself is re-derived per solve because it
	// also depends on the solve's worker count.
	widthKnown   bool
	naturalWidth int
	// bmKnown/bm memoize the 3×3-tiled (BCSR) form of the reduced matrix,
	// built by Blocked on the lattice's first iterative solve and shared by
	// every solve after it (the blocked mat-vec kernel reads it); bm stays
	// nil when the reduced dimension is not a multiple of sparse.BlockSize.
	bmKnown bool
	bm      *sparse.BCSR
}

// precondKey identifies one cached preconditioner: the concrete kind plus,
// for the factorizing kinds, the concrete symmetric ordering and factor
// storage precision the factor was built under (the ordering-invariant
// kinds always cache under OrderingNatural and PrecisionFloat64 so
// spellings share one entry; PrecisionAuto canonicalizes to PrecisionFloat32
// for IC0 because both build the identical factor — float32 exactly when
// the factor commits to 3×3 tiles).
type precondKey struct {
	kind solver.PrecondKind
	ord  solver.OrderingKind
	prec solver.Precision
}

// assemblyPrecond is one cached preconditioner: built once (the Once covers
// concurrent first requests), then shared by every solve on the lattice.
type assemblyPrecond struct {
	once  sync.Once
	m     solver.Preconditioner
	err   error
	build time.Duration
	// ready is set under Assembly.pmu after the build completes, so
	// MemoryBytes can read m without racing the builder.
	ready bool
}

// AssemblyPrecond is the outcome of Assembly.Preconditioner.
type AssemblyPrecond struct {
	// M is the shared preconditioner.
	M solver.Preconditioner
	// Kind is the concrete preconditioner kind (Auto resolved against the
	// reduced system size).
	Kind solver.PrecondKind
	// Ordering is the concrete symmetric ordering the preconditioner was
	// built under (Auto resolved against the reduced matrix's level
	// structure; OrderingNatural for the ordering-invariant kinds).
	Ordering solver.OrderingKind
	// Precision is the concrete storage precision of the built factor:
	// float32 only when an IC0 factor committed to the 3×3-tiled form,
	// float64 otherwise (including every non-factorizing kind).
	Precision solver.Precision
	// Hit reports that the preconditioner was already cached (or is being
	// built by a concurrent caller this call waited on) rather than built
	// by this call.
	Hit bool
	// Build is the construction cost paid by this call; zero on a hit.
	Build time.Duration
}

// resolveOrdering resolves OrderingAuto for the reduced matrix at the given
// worker count (0 = GOMAXPROCS), memoizing the O(nnz) level-width probe;
// concrete kinds pass through untouched. Worker-awareness matters: the
// batch engine splits the machine across concurrent chains, and a solve
// handed one worker must keep the natural factor — multicolor's extra
// iterations buy nothing without fan-out.
func (a *Assembly) resolveOrdering(ord solver.OrderingKind, workers int) solver.OrderingKind {
	if ord != solver.OrderingAuto {
		return ord
	}
	// Cheap guards first, mirroring solver.ResolveOrderingFor: when they
	// already decide, the O(nnz) probe is never paid at all.
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || a.Red.Aff.NRows < solver.AutoMulticolorMinDoFs {
		return solver.OrderingNatural
	}
	a.pmu.Lock()
	known, width := a.widthKnown, a.naturalWidth
	a.pmu.Unlock()
	if !known {
		// Probe outside the lock so a multi-second first lookup does not
		// block concurrent Preconditioner requests for other kinds; the
		// sweep is idempotent, so a concurrent double-compute is benign.
		width = solver.NaturalLevelWidth(a.Red.Aff)
		a.pmu.Lock()
		a.widthKnown, a.naturalWidth = true, width
		a.pmu.Unlock()
	}
	return solver.OrderingFromWidth(ord, a.Red.Aff.NRows, width, workers)
}

// Preconditioner returns the lattice's shared preconditioner for the
// requested kind and ordering, building and caching it on first use; workers
// is the requesting solve's parallelism (0 = GOMAXPROCS), consulted only by
// the OrderingAuto resolution — a 1-worker solve keeps the natural factor.
// Distinct (kind, ordering) pairs cache independently — the ordering
// permutation lives inside the cached factor, so "the ordering + permuted
// factor" is one entry; PrecondAuto and OrderingAuto resolve to concrete
// values first so an explicit request for the resolved pair shares the same
// entry. Only the factorizing kinds are ordering-sensitive; the Jacobi
// family caches under OrderingNatural regardless of the requested ordering.
func (a *Assembly) Preconditioner(kind solver.PrecondKind, ord solver.OrderingKind, workers int) (AssemblyPrecond, error) {
	return a.PreconditionerPrec(kind, ord, solver.PrecisionAuto, workers)
}

// PreconditionerPrec is Preconditioner with an explicit factor-precision
// request. Only the factorizing kinds are precision-sensitive: for IC0,
// PrecisionAuto and PrecisionFloat32 build the identical factor (float32
// storage exactly when the factor commits to the 3×3-tiled form) and so
// share one cache entry, while PrecisionFloat64 caches separately — the
// float64 rebuild a precision-stalled solve retries against lives next to
// the float32 factor it replaces. The Jacobi family always caches under
// PrecisionFloat64.
func (a *Assembly) PreconditionerPrec(kind solver.PrecondKind, ord solver.OrderingKind, prec solver.Precision, workers int) (AssemblyPrecond, error) {
	if a.Red == nil {
		return AssemblyPrecond{}, fmt.Errorf("array: assembly has no free DoFs, nothing to precondition")
	}
	// Amortized resolution: the whole point of this cache is that the
	// construction is paid once per lattice, so Auto switches to IC0 at the
	// amortized threshold rather than the one-shot one.
	resolved := kind.ResolveAmortized(a.Red.NFree())
	if resolved == solver.PrecondIC0 {
		ord = a.resolveOrdering(ord, workers)
		if prec == solver.PrecisionAuto {
			prec = solver.PrecisionFloat32
		}
	} else {
		ord = solver.OrderingNatural
		prec = solver.PrecisionFloat64
	}
	key := precondKey{kind: resolved, ord: ord, prec: prec}
	a.pmu.Lock()
	e, hit := a.preconds[key]
	if e == nil {
		if a.preconds == nil {
			a.preconds = make(map[precondKey]*assemblyPrecond)
		}
		e = &assemblyPrecond{}
		a.preconds[key] = e
	}
	a.pmu.Unlock()
	e.once.Do(func() {
		t0 := time.Now() //stressvet:allow determinism -- wall clock feeds Stats timing only, never numerics
		e.m, e.err = solver.NewPreconditionerPrec(resolved, ord, prec, a.Red.Aff)
		e.build = time.Since(t0)
	})
	a.pmu.Lock()
	e.ready = true
	a.pmu.Unlock()
	if e.err != nil {
		return AssemblyPrecond{Kind: resolved, Ordering: ord}, e.err
	}
	out := AssemblyPrecond{M: e.m, Kind: resolved, Ordering: ord, Precision: solver.PrecisionFloat64, Hit: hit}
	if fp, ok := e.m.(solver.FactorPrecisioned); ok {
		out.Precision = fp.FactorPrecision()
	}
	if !hit {
		out.Build = e.build
	}
	return out, nil
}

// Blocked returns the 3×3-tiled (BCSR) form of the reduced matrix, building
// and memoizing it on first use; nil when the reduced dimension is not a
// multiple of sparse.BlockSize or there are no free DoFs. Iterative solves
// hand it to the solver as Options.MatBlocked so the mat-vec hot loop runs
// the tiled kernel; the footprint is counted by MemoryBytes like the cached
// preconditioners.
func (a *Assembly) Blocked() *sparse.BCSR {
	if a.Red == nil {
		return nil
	}
	a.pmu.Lock()
	known, bm := a.bmKnown, a.bm
	a.pmu.Unlock()
	if known {
		return bm
	}
	// Convert outside the lock (one pass over the matrix) so a multi-second
	// first conversion does not block concurrent Preconditioner requests;
	// the conversion is deterministic, so a concurrent double-build is
	// benign.
	bm, _ = sparse.NewBCSR(a.Red.Aff)
	a.pmu.Lock()
	a.bmKnown, a.bm = true, bm
	a.pmu.Unlock()
	return bm
}

// NewAssembly runs the load-independent part of the global stage for the
// problem: lattice enumeration, unit-load matrix assembly, and Dirichlet
// reduction. The result can be placed in Problem.Assembly for every
// scenario on the same lattice (same ROM content, dimensions, dummy layout,
// and BC kind).
func NewAssembly(p *Problem, workers int) (*Assembly, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now() //stressvet:allow determinism -- wall clock feeds Stats timing only, never numerics
	lat := NewLattice(p.Bx, p.By, p.ROM.Spec.Nodes, p.ROM.Spec.Geom.Pitch, p.ROM.Spec.Geom.Height)
	k, f := assembleGlobal(p, lat, workers)

	isBC := make([]bool, lat.NumDoFs())
	var bcNodes []int32
	for id := 0; id < lat.NumNodes(); id++ {
		var fixed bool
		switch p.BC {
		case ClampedTopBottom:
			fixed = lat.OnTopOrBottom(id)
		case PrescribedBoundary:
			fixed = lat.OnOuterBoundary(id)
		}
		if fixed {
			isBC[3*id] = true
			isBC[3*id+1] = true
			isBC[3*id+2] = true
			bcNodes = append(bcNodes, int32(id))
		}
	}
	asm := &Assembly{Lat: lat, BC: p.BC, BCNodes: bcNodes, NNZ: k.NNZ()}
	asm.AllBC = true
	for _, b := range isBC {
		if !b {
			asm.AllBC = false
			break
		}
	}
	if !asm.AllBC {
		red, err := fem.Reduce(k, f, isBC)
		if err != nil {
			return nil, err
		}
		asm.Red = red
	}
	asm.BuildTime = time.Since(start)
	return asm, nil
}

// NumFree returns the reduced system size (0 when AllBC).
func (a *Assembly) NumFree() int {
	if a.Red == nil {
		return 0
	}
	return a.Red.NFree()
}

// MemoryBytes estimates the snapshot's storage footprint, for byte-budgeted
// caches. Lazily cached preconditioners count too, so the assembly cache's
// byte budget sees them (it re-sums entry sizes on every insert because of
// exactly this growth).
func (a *Assembly) MemoryBytes() int64 {
	b := int64(4*len(a.Lat.Index)) + int64(24*len(a.Lat.Nodes)) + int64(4*len(a.BCNodes))
	if a.Red != nil {
		b += a.Red.Aff.MemoryBytes() + a.Red.Afb.MemoryBytes()
		b += int64(8*len(a.Red.Bf)) + int64(4*(len(a.Red.FreeIdx)+len(a.Red.BCIdx)))
	}
	a.pmu.Lock()
	for _, e := range a.preconds {
		if e.ready && e.err == nil {
			if s, ok := e.m.(solver.Sized); ok {
				b += s.MemoryBytes()
			}
		}
	}
	if a.bm != nil {
		b += a.bm.MemoryBytes()
	}
	a.pmu.Unlock()
	return b
}

// matches checks the cheap structural invariants between a shared assembly
// and the problem about to use it. It cannot detect a different ROM with
// identical dimensions — keying the cache on ROM content is the caller's
// contract.
func (a *Assembly) matches(p *Problem) error {
	if a.Lat.Bx != p.Bx || a.Lat.By != p.By {
		return fmt.Errorf("array: shared assembly is %d×%d blocks, problem wants %d×%d", a.Lat.Bx, a.Lat.By, p.Bx, p.By)
	}
	n := p.ROM.Spec.Nodes
	if a.Lat.NxN != n[0] || a.Lat.NyN != n[1] || a.Lat.NzN != n[2] {
		return fmt.Errorf("array: shared assembly node counts (%d,%d,%d) differ from ROM %v", a.Lat.NxN, a.Lat.NyN, a.Lat.NzN, n)
	}
	if a.BC != p.BC {
		return fmt.Errorf("array: shared assembly was built for BC %d, problem wants %d", a.BC, p.BC)
	}
	return nil
}

// Validate checks problem consistency.
func (p *Problem) Validate() error {
	if p.ROM == nil {
		return fmt.Errorf("array: Problem requires a ROM")
	}
	if p.Bx < 1 || p.By < 1 {
		return fmt.Errorf("array: array size must be positive, got %d×%d", p.Bx, p.By)
	}
	if p.IsDummy != nil && p.DummyROM == nil {
		hasDummy := false
		for by := 0; by < p.By && !hasDummy; by++ {
			for bx := 0; bx < p.Bx && !hasDummy; bx++ {
				hasDummy = p.IsDummy(bx, by)
			}
		}
		if hasDummy {
			return fmt.Errorf("array: IsDummy marks blocks but DummyROM is nil")
		}
	}
	if p.DummyROM != nil {
		if p.DummyROM.Spec.Nodes != p.ROM.Spec.Nodes {
			return fmt.Errorf("array: DummyROM nodes %v differ from ROM nodes %v", p.DummyROM.Spec.Nodes, p.ROM.Spec.Nodes)
		}
		if p.DummyROM.Spec.Geom.Pitch != p.ROM.Spec.Geom.Pitch || p.DummyROM.Spec.Geom.Height != p.ROM.Spec.Geom.Height { //stressvet:allow floatcmp -- spec fields must match verbatim (copied, not computed)
			return fmt.Errorf("array: DummyROM block dimensions differ from ROM")
		}
	}
	if p.BC == PrescribedBoundary && p.BoundaryDisp == nil {
		return fmt.Errorf("array: PrescribedBoundary requires BoundaryDisp")
	}
	return nil
}

// snapshot copies the problem for retention in a Solution, dropping the
// references a solved result no longer needs: the Assembly (the full
// reduced matrix — post-processing only needs the Lattice, stored on the
// Solution) and the warm-start seed.
func (p *Problem) snapshot() *Problem {
	c := *p
	c.Assembly = nil
	c.X0 = nil
	return &c
}

// Solve runs the global stage: assembly (Eqs. 18–19 outputs scattered by the
// standard procedure) — or reuse of a shared Problem.Assembly — lifting of
// boundary conditions, the (preconditioned, optionally warm-started) solve,
// and returns the global surface-node displacement.
func Solve(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	tAsm := time.Now() //stressvet:allow determinism -- wall clock feeds Stats timing only, never numerics
	asm := p.Assembly
	shared := asm != nil
	if shared {
		if err := asm.matches(p); err != nil {
			return nil, err
		}
	} else {
		var err error
		asm, err = NewAssembly(p, workers)
		if err != nil {
			return nil, err
		}
	}
	lat := asm.Lat
	ndof := lat.NumDoFs()
	snap := p.snapshot()

	// With (2,2,2) interpolation nodes and clamped top/bottom every global
	// DoF is constrained; the global solve degenerates to q = u_bc (the
	// paper's Table 3 still evaluates this case through the per-block
	// thermal basis).
	if asm.AllBC {
		q := make([]float64, ndof)
		if p.BC == PrescribedBoundary {
			for _, id := range asm.BCNodes {
				d := p.BoundaryDisp(lat.Position(int(id)))
				q[3*id] = d[0]
				q[3*id+1] = d[1]
				q[3*id+2] = d[2]
			}
		}
		return &Solution{
			Prob: snap, Lattice: lat, Q: q,
			Stats:          solver.Stats{Converged: true, Ordering: solver.OrderingNatural, Precision: solver.PrecisionFloat64},
			Ordering:       solver.OrderingNatural,
			Precision:      solver.PrecisionFloat64,
			AssembleTime:   time.Since(tAsm),
			AssemblyShared: shared,
			GlobalDoFs:     ndof, MatrixNNZ: asm.NNZ,
		}, nil
	}

	red := asm.Red
	var ubc []float64
	if p.BC == PrescribedBoundary {
		ubc = make([]float64, len(red.BCIdx))
		for bi, id := range asm.BCNodes {
			d := p.BoundaryDisp(lat.Position(int(id)))
			ubc[3*bi] = d[0]
			ubc[3*bi+1] = d[1]
			ubc[3*bi+2] = d[2]
		}
	}
	// The assembly carries the unit thermal load: a uniform scenario scales
	// it by ΔT; a per-block field rebuilds the (cheap) load vector.
	var rhs []float64
	if p.DeltaTFor != nil {
		rhs = red.RHSFrom(assembleLoad(p, lat), ubc)
	} else {
		rhs = red.RHS(p.DeltaT, ubc)
	}
	asmTime := time.Since(tAsm)

	tSolve := time.Now() //stressvet:allow determinism -- wall clock feeds Stats timing only, never numerics
	opt := p.Opt
	if opt.Workers == 0 {
		opt.Workers = workers
	}
	// Iterative solves draw their preconditioner from the assembly's
	// per-kind cache: built on the lattice's first solve, shared by every
	// scenario after it (including the cold retry of a failed warm start).
	// A caller-supplied Opt.M wins over the cache.
	precondShared := false
	drewFromCache := false
	var precondBuild time.Duration
	if p.Solver != Direct && opt.M == nil {
		kind := opt.Precond
		if !shared {
			// One-shot solve: the assembly (and so the cache) dies with this
			// call, nothing amortizes the build — resolve Auto with the
			// one-shot rule so mid-size standalone solves keep the cheap
			// Jacobi family instead of paying an unamortized IC0 factor.
			kind = kind.Resolve(asm.NumFree())
		}
		ap, err := asm.PreconditionerPrec(kind, opt.Ordering, opt.Precision, opt.Workers)
		if err != nil {
			return nil, fmt.Errorf("array: global preconditioner: %w", err)
		}
		opt.M = ap.M
		opt.Precond = ap.Kind
		opt.Ordering = ap.Ordering
		precondShared = ap.Hit
		drewFromCache = true
		precondBuild = ap.Build
	}
	if p.Solver != Direct {
		// The 3×3-tiled form of the reduced matrix (nil when the dimension
		// does not tile) routes the solver's mat-vec through the blocked
		// kernel; built once per assembly, shared by every solve.
		opt.MatBlocked = asm.Blocked()
	}
	x0 := p.X0
	if len(x0) != len(rhs) {
		x0 = nil
	}
	solve := func(seed []float64) (qf []float64, stats solver.Stats, err error) {
		switch p.Solver {
		case CG:
			return solver.PCG(red.Aff, rhs, seed, opt)
		case Direct:
			factor := func() (*solver.CholFactor, error) { return solver.NewCholesky(red.Aff) }
			var chol *solver.CholFactor
			if p.Factors != nil && p.FactorKey != "" {
				chol, err = p.Factors.GetOrFactor(p.FactorKey, factor)
			} else {
				chol, err = factor()
			}
			if err != nil {
				return nil, stats, err
			}
			return chol.Solve(rhs), solver.Stats{Converged: true, Ordering: solver.OrderingNatural, Precision: solver.PrecisionFloat64}, nil
		default:
			return solver.GMRES(red.Aff, rhs, seed, opt)
		}
	}
	qf, stats, err := solve(x0)
	precFellBack := false
	if err != nil && drewFromCache && errors.Is(err, solver.ErrPrecision) {
		// The float32 factor exhausted its refinement budget: the root cause
		// is the factor's precision, not the seed, so a cold retry with the
		// same factor would stall the same way. Rebuild in float64 — cached
		// on the assembly like any other precision, so a sweep that trips
		// the guard once pays the rebuild once — and retry with the same
		// seed. opt.Precond/Ordering are concrete after the first draw, so
		// the request resolves to the sibling cache entry.
		ap, perr := asm.PreconditionerPrec(opt.Precond, opt.Ordering, solver.PrecisionFloat64, opt.Workers)
		if perr != nil {
			return nil, fmt.Errorf("array: float64 fallback preconditioner: %w (after %v)", perr, err)
		}
		opt.M = ap.M
		opt.Precision = solver.PrecisionFloat64
		precondBuild += ap.Build
		precFellBack = true
		qf, stats, err = solve(x0)
	}
	fellBack := false
	if err != nil && x0 != nil && errors.Is(err, solver.ErrStalled) {
		// A bad warm seed can stall the iteration; the scenario is still
		// solvable from zero. Retry cold and record the fallback. Structural
		// failures (breakdowns, dimension mismatches) are not retried — a
		// different start cannot fix them.
		qf, stats, err = solve(nil)
		fellBack = true
	}
	if err != nil {
		return nil, fmt.Errorf("array: global solve failed: %w", err)
	}
	if opt.Work != nil {
		// A workspace-backed solve returns a vector owned by the workspace,
		// valid only until its next solve; QFree is retained (seed caches,
		// post-processing), so detach it.
		qf = append([]float64(nil), qf...)
	}
	if p.Solver != Direct {
		// The solver saw a prebuilt M, so its own PrecondBuild is zero;
		// surface the cache's build cost on the solve that paid it.
		stats.PrecondBuild = precondBuild
	}
	q := red.Expand(qf, ubc)
	solveTime := time.Since(tSolve)

	return &Solution{
		Prob: snap, Lattice: lat, Q: q, QFree: qf, Stats: stats,
		Ordering:     stats.Ordering,
		Precision:    stats.Precision,
		AssembleTime: asmTime, SolveTime: solveTime,
		AssemblyShared: shared, WarmFallback: fellBack,
		PrecondShared:     precondShared,
		PrecisionFallback: precFellBack,
		GlobalDoFs:        ndof, MatrixNNZ: asm.NNZ,
	}, nil
}

// BlockDoFs extracts the element DoF values of block (bx, by) from the
// global solution.
func (s *Solution) BlockDoFs(bx, by int) []float64 {
	r := s.blockROM(bx, by)
	dmap := s.Lattice.BlockDoFMap(r, bx, by)
	q := make([]float64, len(dmap))
	for i, d := range dmap {
		q[i] = s.Q[d]
	}
	return q
}

func (s *Solution) blockROM(bx, by int) *rom.ROM {
	if s.Prob.IsDummy != nil && s.Prob.IsDummy(bx, by) {
		return s.Prob.DummyROM
	}
	return s.Prob.ROM
}

// blockDeltaT returns the thermal load of block (bx, by).
func (p *Problem) blockDeltaT(bx, by int) float64 {
	if p.DeltaTFor != nil {
		return p.DeltaTFor(bx, by)
	}
	return p.DeltaT
}

// VMField reconstructs each block's fine displacement field (Eq. 15) and
// samples the von Mises stress on the mid-height cut plane with a gs×gs
// grid per block, returning a (Bx·gs)×(By·gs) field. Parallel over blocks.
//
//stressvet:gang -- fixed pool of `workers` goroutines draining the block-job channel
func (s *Solution) VMField(gs int, workers int) *field.Grid2D {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := field.New(s.Prob.Bx*gs, s.Prob.By*gs)
	zCut := s.Prob.ROM.Spec.Geom.Height / 2

	type job struct{ bx, by int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				r := s.blockROM(jb.bx, jb.by)
				q := s.BlockDoFs(jb.bx, jb.by)
				dt := s.Prob.blockDeltaT(jb.bx, jb.by)
				u := r.Reconstruct(q, dt)
				vm := r.SampleVM(u, dt, zCut, gs)
				for gy := 0; gy < gs; gy++ {
					dst := (jb.by*gs+gy)*out.NX + jb.bx*gs
					copy(out.V[dst:dst+gs], vm[gy*gs:(gy+1)*gs])
				}
			}
		}()
	}
	for by := 0; by < s.Prob.By; by++ {
		for bx := 0; bx < s.Prob.Bx; bx++ {
			jobs <- job{bx, by}
		}
	}
	close(jobs)
	wg.Wait()
	return out
}

// StressAt evaluates the reconstructed stress tensor (Voigt) at a global
// physical point.
func (s *Solution) StressAt(p mesh.Vec3) [6]float64 {
	bx, by, local := s.locate(p)
	r := s.blockROM(bx, by)
	q := s.BlockDoFs(bx, by)
	dt := s.Prob.blockDeltaT(bx, by)
	u := r.Reconstruct(q, dt)
	return r.StressAtPoint(u, dt, local)
}

// locate maps a global point to its block and block-local coordinates.
func (s *Solution) locate(p mesh.Vec3) (bx, by int, local mesh.Vec3) {
	pitch := s.Prob.ROM.Spec.Geom.Pitch
	bx = int(p.X / pitch)
	by = int(p.Y / pitch)
	if bx < 0 {
		bx = 0
	}
	if bx >= s.Prob.Bx {
		bx = s.Prob.Bx - 1
	}
	if by < 0 {
		by = 0
	}
	if by >= s.Prob.By {
		by = s.Prob.By - 1
	}
	local = mesh.Vec3{X: p.X - float64(bx)*pitch, Y: p.Y - float64(by)*pitch, Z: p.Z}
	return bx, by, local
}

// DisplacementAt evaluates the reconstructed displacement at a global
// physical point (the block containing it is located first).
func (s *Solution) DisplacementAt(p mesh.Vec3) [3]float64 {
	bx, by, local := s.locate(p)
	r := s.blockROM(bx, by)
	q := s.BlockDoFs(bx, by)
	u := r.Reconstruct(q, s.Prob.blockDeltaT(bx, by))
	return r.DisplacementAtPoint(u, local)
}
