package array

import (
	"fmt"
	"testing"

	"repro/internal/mesh"
	"repro/internal/rom"
	"repro/internal/solver"
)

func benchROM(b *testing.B) *rom.ROM {
	b.Helper()
	spec := rom.PaperSpec(15, mesh.CoarseResolution())
	r, err := rom.Build(spec, 0)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkGlobalAssembly isolates the sparse assembly of the abstract
// global system (Eqs. 18–19 scatter + compaction).
func BenchmarkGlobalAssembly(b *testing.B) {
	r := benchROM(b)
	for _, n := range []int{8, 16} {
		b.Run(fmt.Sprintf("size=%dx%d", n, n), func(b *testing.B) {
			p := &Problem{ROM: r, Bx: n, By: n, DeltaT: -250, BC: ClampedTopBottom}
			lat := NewLattice(n, n, r.Spec.Nodes, r.Spec.Geom.Pitch, r.Spec.Geom.Height)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k, _ := assembleGlobal(p, lat, 8)
				if k.NNZ() == 0 {
					b.Fatal("empty assembly")
				}
			}
		})
	}
}

// BenchmarkGlobalSolvers compares the three global solver paths on the same
// problem (design-choice ablation, §4.3).
func BenchmarkGlobalSolvers(b *testing.B) {
	r := benchROM(b)
	for _, kind := range []struct {
		name string
		k    SolverKind
	}{{"GMRES", GMRES}, {"CG", CG}, {"Direct", Direct}} {
		b.Run(kind.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Solve(&Problem{
					ROM: r, Bx: 8, By: 8, DeltaT: -250,
					BC: ClampedTopBottom, Solver: kind.k,
					Opt: solver.Options{Tol: 1e-9},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVMFieldReconstruction isolates the per-block reconstruction and
// mid-plane sampling (Eq. 15 post-processing).
func BenchmarkVMFieldReconstruction(b *testing.B) {
	r := benchROM(b)
	sol, err := Solve(&Problem{
		ROM: r, Bx: 6, By: 6, DeltaT: -250,
		BC: ClampedTopBottom, Opt: solver.Options{Tol: 1e-9},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sol.VMField(20, 0)
	}
}
