package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	morestress "repro"
	"repro/internal/serveapi"
)

// ProxyOptions configures a Proxy.
type ProxyOptions struct {
	// Replicas are the base URLs of the replica fleet (e.g.
	// "http://10.0.0.7:8080"). Order is irrelevant to placement — the
	// rendezvous table hashes the URLs themselves — but is preserved in
	// stats output.
	Replicas []string
	// ProbeInterval is how often each replica's /readyz is polled
	// (default 500ms); ProbeTimeout bounds one probe (default 2s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// Retries bounds the forwarding attempts for one request across the
	// rendezvous failover order (default: one per replica, twice — the
	// second pass retries replicas marked down, in case the marks are
	// stale). Backoff is the pause between consecutive attempts
	// (default 50ms), growing linearly with the attempt number.
	Retries int
	Backoff time.Duration
	// Client issues the forwarded requests (default: http.Client with no
	// overall timeout — solves are long; per-probe timeouts still apply).
	Client *http.Client
	// Precond, Ordering, and Precision are the defaults used when deriving
	// routing keys from requests that do not name them. They must match the
	// replicas' own -precond/-ordering/-precision flags only if those flags
	// differ per replica (they never should); the lattice key does not
	// depend on solver options, so these exist purely to satisfy request
	// validation.
	Precond   morestress.Precond
	Ordering  morestress.Ordering
	Precision morestress.Precision
}

// replica is one backend in the fleet.
type replica struct {
	base string
	// up is the health mark: flipped by the active /readyz probe loop and
	// passively by forwarding outcomes. A down replica is skipped on the
	// first failover pass but still tried on the second — marks can be
	// stale, and a wrongly-down replica is cheaper to probe with a real
	// request than to abandon.
	up       atomic.Bool
	forwards atomic.Int64
}

// Proxy is the cmd/router core: an http.Handler that forwards each request
// to the replica owning its lattice key, with health-aware failover along
// the rendezvous order. It keeps no request state — job IDs carry their
// replica in an "s<idx>-" prefix — so any number of router instances can
// front the same fleet and agree on placement.
type Proxy struct {
	opt      ProxyOptions
	table    *Table
	replicas []*replica
	client   *http.Client

	forwards  atomic.Int64
	retries   atomic.Int64
	failovers atomic.Int64

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewProxy builds a proxy over the replica base URLs. Replicas start
// optimistically up (traffic flows before the first probe round completes);
// call Start to run the active health probes, and Close to stop them.
func NewProxy(opt ProxyOptions) (*Proxy, error) {
	if len(opt.Replicas) == 0 {
		return nil, errors.New("router: proxy needs at least one replica URL")
	}
	if opt.ProbeInterval <= 0 {
		opt.ProbeInterval = 500 * time.Millisecond
	}
	if opt.ProbeTimeout <= 0 {
		opt.ProbeTimeout = 2 * time.Second
	}
	if opt.Retries <= 0 {
		opt.Retries = 2 * len(opt.Replicas)
	}
	if opt.Backoff <= 0 {
		opt.Backoff = 50 * time.Millisecond
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{}
	}
	p := &Proxy{
		opt:      opt,
		table:    NewTable(opt.Replicas),
		replicas: make([]*replica, len(opt.Replicas)),
		client:   client,
		stop:     make(chan struct{}),
	}
	for i, base := range opt.Replicas {
		p.replicas[i] = &replica{base: strings.TrimRight(base, "/")}
		p.replicas[i].up.Store(true)
	}
	return p, nil
}

// Start launches the per-replica health probe loops.
//
//stressvet:gang -- one probe goroutine per replica, joined by Close
func (p *Proxy) Start() {
	for i := range p.replicas {
		p.wg.Add(1)
		go p.probeLoop(i)
	}
}

// Close stops the probe loops and waits for them; safe to call repeatedly.
func (p *Proxy) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// probeLoop polls one replica's /readyz until Close. Probing readiness, not
// liveness, keeps the router out of a replica's journal-recovery window:
// the process may be up, but until replay finishes it answers 503 and the
// router routes its keyspace to the next shard in rendezvous order.
func (p *Proxy) probeLoop(i int) {
	defer p.wg.Done()
	rep := p.replicas[i]
	ticker := time.NewTicker(p.opt.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			rep.up.Store(p.probe(rep))
		}
	}
}

func (p *Proxy) probe(rep *replica) bool {
	req, err := http.NewRequest(http.MethodGet, rep.base+"/readyz", nil)
	if err != nil {
		return false
	}
	ctx, cancel := context.WithTimeout(req.Context(), p.opt.ProbeTimeout)
	defer cancel()
	resp, err := p.client.Do(req.WithContext(ctx))
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// SolveKey derives the routing key of a /solve-shaped body: the lattice key
// of the decoded scenario — identical to the string the replica's engine
// keys its assembly/preconditioner/factor caches by, which is what makes
// routing cache-affine. Canonically-equal bodies (reordered fields,
// defaults spelled out or omitted) decode to the same Job and therefore the
// same key. Invalid bodies return an error; the caller still routes them
// (deterministically, by empty key) so the owning replica produces the
// canonical 400.
func (p *Proxy) SolveKey(body []byte) (string, error) {
	var req serveapi.JobRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return "", err
	}
	job, err := req.ToJobPrec(p.opt.Precond, p.opt.Ordering, p.opt.Precision)
	if err != nil {
		return "", err
	}
	return morestress.LatticeKey(job), nil
}

// Routes builds the proxy's handler mux, mirroring the replica surface.
func (p *Proxy) Routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /solve", p.handleSolve)
	mux.HandleFunc("POST /batch", p.handleBatch)
	mux.HandleFunc("POST /jobs", p.handleJobSubmit)
	mux.HandleFunc("GET /jobs/{id}", p.handleJobByID)
	mux.HandleFunc("DELETE /jobs/{id}", p.handleJobByID)
	mux.HandleFunc("GET /jobs/{id}/events", p.handleJobEvents)
	mux.HandleFunc("GET /stats", p.handleStats)
	mux.HandleFunc("GET /healthz", p.handleHealthz)
	mux.HandleFunc("GET /readyz", p.handleReadyz)
	return mux
}

func (p *Proxy) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, serveapi.MaxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("read request: %w", err))
		return nil, false
	}
	return body, true
}

func (p *Proxy) handleSolve(w http.ResponseWriter, r *http.Request) {
	body, ok := p.readBody(w, r)
	if !ok {
		return
	}
	key, _ := p.SolveKey(body) // invalid body → empty key, still deterministic
	p.forward(w, r, key, "/solve", body)
}

func (p *Proxy) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body, ok := p.readBody(w, r)
	if !ok {
		return
	}
	// A job is routed by its first scenario's lattice: multi-lattice jobs
	// exist, but the common shape is a sweep over one lattice, and a job
	// must land whole on one replica because its lifecycle (status, events,
	// cancel) lives where it was accepted.
	key, _ := p.batchKey(body)
	idx, resp, err := p.forwardRaw(r, key, "/jobs", body)
	if err != nil {
		httpError(w, http.StatusBadGateway, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		copyResponse(w, resp)
		return
	}
	// Rewrite the accepted-job envelope so the ID carries its replica:
	// any router instance can later route GET /jobs/{id} statelessly.
	var sub serveapi.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		httpError(w, http.StatusBadGateway, fmt.Errorf("replica sent unparseable submit response: %w", err))
		return
	}
	sub.ID = jobID(idx, sub.ID)
	sub.Poll = "/jobs/" + sub.ID
	sub.Events = "/jobs/" + sub.ID + "/events"
	writeJSON(w, http.StatusAccepted, sub)
}

// batchKey derives the routing key of a batch-shaped body ({"jobs": [...]})
// from its first scenario.
func (p *Proxy) batchKey(body []byte) (string, error) {
	var req serveapi.BatchRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return "", err
	}
	if len(req.Jobs) == 0 {
		return "", errors.New("batch has no jobs")
	}
	job, err := req.Jobs[0].ToJobPrec(p.opt.Precond, p.opt.Ordering, p.opt.Precision)
	if err != nil {
		return "", err
	}
	return morestress.LatticeKey(job), nil
}

// handleBatch splits a batch by owning replica and forwards the sub-batches
// concurrently, merging results back into input order — the batch analogue
// of cache-affine routing: every scenario still solves where its lattice is
// warm, and cross-lattice batches fan out across the fleet for free.
//
//stressvet:gang -- one goroutine per sub-batch, bounded by the replica count
func (p *Proxy) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := p.readBody(w, r)
	if !ok {
		return
	}
	var req serveapi.BatchRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil || len(req.Jobs) == 0 {
		// Malformed at the proxy: forward raw so the replica produces the
		// canonical validation error.
		p.forward(w, r, "", "/batch", body)
		return
	}
	start := time.Now()
	parts := make([][]int, p.table.Len())
	for i := range req.Jobs {
		key := ""
		if job, err := req.Jobs[i].ToJobPrec(p.opt.Precond, p.opt.Ordering, p.opt.Precision); err == nil {
			key = morestress.LatticeKey(job)
		}
		sh := p.table.Pick(key)
		parts[sh] = append(parts[sh], i)
	}
	single := -1
	for sh, idxs := range parts {
		if len(idxs) > 0 {
			if single != -1 {
				single = -2
				break
			}
			single = sh
		}
	}
	if single >= 0 {
		// One owner: forward the original body untouched.
		p.forward(w, r, p.table.Name(single), "/batch", body)
		return
	}
	type subResult struct {
		resp serveapi.BatchResponse
		err  error
		code int
	}
	subs := make([]subResult, p.table.Len())
	var wg sync.WaitGroup
	for sh, idxs := range parts {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int, idxs []int) {
			defer wg.Done()
			var sub serveapi.BatchRequest
			sub.Jobs = make([]serveapi.JobRequest, len(idxs))
			for k, i := range idxs {
				sub.Jobs[k] = req.Jobs[i]
			}
			payload, err := json.Marshal(sub)
			if err != nil {
				subs[sh].err = err
				return
			}
			_, resp, err := p.forwardRaw(r, p.table.Name(sh), "/batch", payload)
			if err != nil {
				subs[sh].err = err
				return
			}
			defer resp.Body.Close()
			subs[sh].code = resp.StatusCode
			if resp.StatusCode != http.StatusOK {
				msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
				subs[sh].err = fmt.Errorf("replica returned %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
				return
			}
			subs[sh].err = json.NewDecoder(resp.Body).Decode(&subs[sh].resp)
		}(sh, idxs)
	}
	wg.Wait()
	var out serveapi.BatchResponse
	out.Results = make([]serveapi.JobResponse, len(req.Jobs))
	for sh, idxs := range parts {
		if len(idxs) == 0 {
			continue
		}
		sub := &subs[sh]
		if sub.err != nil {
			// A lost sub-batch degrades to per-job errors rather than
			// failing scenarios that other replicas completed.
			for _, i := range idxs {
				out.Results[i] = serveapi.JobResponse{Error: fmt.Sprintf("shard %s: %v", p.table.Name(sh), sub.err)}
			}
			out.Stats.Errors += len(idxs)
			continue
		}
		for k, i := range idxs {
			if k < len(sub.resp.Results) {
				out.Results[i] = sub.resp.Results[k]
			}
		}
		out.Stats.Errors += sub.resp.Stats.Errors
		out.Stats.CacheHits += sub.resp.Stats.CacheHits
		out.Stats.CacheMisses += sub.resp.Stats.CacheMisses
		out.Stats.LocalMS += sub.resp.Stats.LocalMS
		out.Stats.GlobalMS += sub.resp.Stats.GlobalMS
	}
	out.Stats.Jobs = len(req.Jobs)
	out.Stats.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, out)
}

// jobID prefixes a replica-local job ID with its replica index so the
// router can route lifecycle requests statelessly. Only the envelope of the
// submit response is rewritten — IDs inside event payloads and status
// bodies stay replica-local; clients must use the URLs the router returned.
func jobID(idx int, id string) string {
	return "s" + strconv.Itoa(idx) + "-" + id
}

// splitJobID reverses jobID. ok is false when the ID carries no (valid)
// replica prefix.
func splitJobID(id string, n int) (idx int, rest string, ok bool) {
	if len(id) < 3 || id[0] != 's' {
		return 0, "", false
	}
	dash := strings.IndexByte(id, '-')
	if dash < 2 {
		return 0, "", false
	}
	idx, err := strconv.Atoi(id[1:dash])
	if err != nil || idx < 0 || idx >= n {
		return 0, "", false
	}
	return idx, id[dash+1:], true
}

// handleJobByID routes GET/DELETE /jobs/{id} to the replica encoded in the
// ID prefix. No failover: the job's lifecycle exists only where it was
// accepted, so a down owner is a 502, not a retry elsewhere.
func (p *Proxy) handleJobByID(w http.ResponseWriter, r *http.Request) {
	idx, rest, ok := splitJobID(r.PathValue("id"), len(p.replicas))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("no such job (IDs issued by this router look like s<replica>-<id>)"))
		return
	}
	p.forwardTo(w, r, idx, "/jobs/"+rest, nil, false)
}

// handleJobEvents is the SSE passthrough: the replica's event stream is
// copied chunk-by-chunk with a flush after every read, so live transitions
// reach the client as they happen rather than when a buffer fills.
func (p *Proxy) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	idx, rest, ok := splitJobID(r.PathValue("id"), len(p.replicas))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("no such job (IDs issued by this router look like s<replica>-<id>)"))
		return
	}
	p.forwardTo(w, r, idx, "/jobs/"+rest+"/events", nil, true)
}

// forwardTo proxies one request to a specific replica, copying the response
// through (streamed, with per-chunk flushes, when stream is set).
func (p *Proxy) forwardTo(w http.ResponseWriter, r *http.Request, idx int, path string, body []byte, stream bool) {
	rep := p.replicas[idx]
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, rep.base+path, rd)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := p.client.Do(req)
	if err != nil {
		rep.up.Store(false)
		httpError(w, http.StatusBadGateway, fmt.Errorf("replica %s: %w", rep.base, err))
		return
	}
	defer resp.Body.Close()
	rep.up.Store(true)
	rep.forwards.Add(1)
	p.forwards.Add(1)
	if stream {
		streamResponse(w, resp)
		return
	}
	copyResponse(w, resp)
}

// forward proxies a keyed request with failover and writes the response.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, key, path string, body []byte) {
	_, resp, err := p.forwardRaw(r, key, path, body)
	if err != nil {
		httpError(w, http.StatusBadGateway, err)
		return
	}
	defer resp.Body.Close()
	copyResponse(w, resp)
}

// forwardRaw sends the body to the replica owning key, failing over along
// the rendezvous order: the first pass tries replicas marked up, the second
// retries every replica (health marks can be stale). An attempt fails over
// on a transport error or a 502/503/504 — statuses a replica returns when
// it cannot take traffic (mid-recovery /readyz gate, shutting down), where
// the next shard in rendezvous order can. Any other status, including
// errors like 400 or 429, is the authoritative answer from the owner and is
// returned as-is. The caller owns resp.Body.
func (p *Proxy) forwardRaw(r *http.Request, key, path string, body []byte) (int, *http.Response, error) {
	order := p.table.Order(key, make([]int, 0, len(p.replicas)))
	attempts := 0
	var lastErr error
	for pass := 0; pass < 2; pass++ {
		for _, idx := range order {
			rep := p.replicas[idx]
			if pass == 0 && !rep.up.Load() {
				continue
			}
			if attempts >= p.opt.Retries {
				return 0, nil, fmt.Errorf("no replica accepted the request after %d attempts: %w", attempts, lastErr)
			}
			if attempts > 0 {
				p.retries.Add(1)
				select {
				case <-r.Context().Done():
					return 0, nil, r.Context().Err()
				case <-time.After(time.Duration(attempts) * p.opt.Backoff):
				}
			}
			attempts++
			req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, rep.base+path, bytes.NewReader(body))
			if err != nil {
				return 0, nil, err
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := p.client.Do(req)
			if err != nil {
				rep.up.Store(false)
				lastErr = fmt.Errorf("replica %s: %w", rep.base, err)
				if r.Context().Err() != nil {
					return 0, nil, lastErr
				}
				continue
			}
			switch resp.StatusCode {
			case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				rep.up.Store(false)
				lastErr = fmt.Errorf("replica %s returned %d", rep.base, resp.StatusCode)
				continue
			}
			rep.up.Store(true)
			rep.forwards.Add(1)
			p.forwards.Add(1)
			if idx != order[0] {
				// Served off-owner — whether the owner failed an attempt or
				// was skipped on a health mark, this request lost affinity.
				p.failovers.Add(1)
			}
			return idx, resp, nil
		}
	}
	return 0, nil, fmt.Errorf("no replica accepted the request after %d attempts: %w", attempts, lastErr)
}

// RouterStats is the router section of the proxy's /stats payload.
// Forwards counts requests that reached a replica; Retries counts extra
// attempts beyond each request's first; Failovers counts requests answered
// by a replica other than their key's rendezvous owner — the affinity-loss
// signal, whether the owner failed the attempt or was skipped on a health
// mark.
type RouterStats struct {
	Replicas  []ReplicaStatus `json:"replicas"`
	Forwards  int64           `json:"forwards"`
	Retries   int64           `json:"retries"`
	Failovers int64           `json:"failovers"`
}

// ReplicaStatus is one replica's health and traffic share.
type ReplicaStatus struct {
	URL      string `json:"url"`
	Up       bool   `json:"up"`
	Forwards int64  `json:"forwards"`
	// Error is set when this stats round could not fetch the replica's own
	// /stats (its counters are then missing from the fleet aggregate).
	Error string `json:"error,omitempty"`
}

// AggStats is the proxy's /stats payload: the fleet aggregate plus the
// router's own forwarding counters. Fleet is the field-wise sum of every
// reachable replica's StatsResponse with the rate fields recomputed from
// the sums; Shards is repurposed as the per-replica breakdown (entry i is
// replica i), which is where the affinity evidence lives in proxy mode.
type AggStats struct {
	Fleet  serveapi.StatsResponse `json:"fleet"`
	Router RouterStats            `json:"router"`
}

// handleStats fans the stats fetch across the fleet concurrently and merges.
//
//stressvet:gang -- one fetch goroutine per replica, joined before merging
func (p *Proxy) handleStats(w http.ResponseWriter, r *http.Request) {
	type fetched struct {
		stats serveapi.StatsResponse
		err   error
	}
	results := make([]fetched, len(p.replicas))
	var wg sync.WaitGroup
	for i := range p.replicas {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, p.replicas[i].base+"/stats", nil)
			if err != nil {
				results[i].err = err
				return
			}
			resp, err := p.client.Do(req)
			if err != nil {
				results[i].err = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				results[i].err = fmt.Errorf("replica returned %d", resp.StatusCode)
				return
			}
			results[i].err = json.NewDecoder(resp.Body).Decode(&results[i].stats)
		}(i)
	}
	wg.Wait()
	var out AggStats
	out.Router.Forwards = p.forwards.Load()
	out.Router.Retries = p.retries.Load()
	out.Router.Failovers = p.failovers.Load()
	out.Router.Replicas = make([]ReplicaStatus, len(p.replicas))
	for i, rep := range p.replicas {
		out.Router.Replicas[i] = ReplicaStatus{
			URL:      rep.base,
			Up:       rep.up.Load(),
			Forwards: rep.forwards.Load(),
		}
		if results[i].err != nil {
			out.Router.Replicas[i].Error = results[i].err.Error()
			continue
		}
		mergeStats(&out.Fleet, &results[i].stats, i)
	}
	if out.Fleet.Solver.IterativeSolves > 0 {
		out.Fleet.Solver.WarmStartRate = float64(out.Fleet.Solver.WarmStarts) / float64(out.Fleet.Solver.IterativeSolves)
	}
	if out.Fleet.UptimeSeconds > 0 {
		out.Fleet.Queue.ThroughputPerSec = float64(out.Fleet.Queue.ScenariosSolved) / out.Fleet.UptimeSeconds
	}
	writeJSON(w, http.StatusOK, out)
}

// mergeStats adds one replica's counters into the fleet aggregate and
// appends its per-replica ShardStats entry. Uptime takes the max (the
// fleet is as old as its oldest replica); capacities and budgets sum.
func mergeStats(dst, src *serveapi.StatsResponse, idx int) {
	if src.UptimeSeconds > dst.UptimeSeconds {
		dst.UptimeSeconds = src.UptimeSeconds
	}
	dst.Requests += src.Requests
	dst.JobsDone += src.JobsDone
	dst.JobsFailed += src.JobsFailed
	dst.Factorizations += src.Factorizations
	dst.FactorHits += src.FactorHits
	dst.Solver.Assemblies += src.Solver.Assemblies
	dst.Solver.AssemblyHits += src.Solver.AssemblyHits
	dst.Solver.IterativeSolves += src.Solver.IterativeSolves
	dst.Solver.WarmStarts += src.Solver.WarmStarts
	dst.Solver.WarmFallbacks += src.Solver.WarmFallbacks
	dst.Solver.Iterations += src.Solver.Iterations
	dst.Solver.PrecondBuilds += src.Solver.PrecondBuilds
	dst.Solver.PrecondHits += src.Solver.PrecondHits
	for k, v := range src.Solver.OrderingCounts {
		if dst.Solver.OrderingCounts == nil {
			dst.Solver.OrderingCounts = make(map[string]int64)
		}
		dst.Solver.OrderingCounts[k] += v
	}
	for k, v := range src.Solver.PrecisionCounts {
		if dst.Solver.PrecisionCounts == nil {
			dst.Solver.PrecisionCounts = make(map[string]int64)
		}
		dst.Solver.PrecisionCounts[k] += v
	}
	dst.Solver.Refinements += src.Solver.Refinements
	dst.Solver.PrecisionFallbacks += src.Solver.PrecisionFallbacks
	dst.Cache.Hits += src.Cache.Hits
	dst.Cache.Misses += src.Cache.Misses
	dst.Cache.DiskHits += src.Cache.DiskHits
	dst.Cache.Evictions += src.Cache.Evictions
	dst.Cache.Entries += src.Cache.Entries
	dst.Cache.Bytes += src.Cache.Bytes
	dst.Cache.MaxBytes += src.Cache.MaxBytes
	dst.Cache.BuildTimeMS += src.Cache.BuildTimeMS
	dst.Queue.Depth += src.Queue.Depth
	dst.Queue.Capacity += src.Queue.Capacity
	dst.Queue.Running += src.Queue.Running
	dst.Queue.Retained += src.Queue.Retained
	dst.Queue.Submitted += src.Queue.Submitted
	dst.Queue.Done += src.Queue.Done
	dst.Queue.Failed += src.Queue.Failed
	dst.Queue.Cancelled += src.Queue.Cancelled
	dst.Queue.Expired += src.Queue.Expired
	dst.Queue.ScenariosSolved += src.Queue.ScenariosSolved
	dst.Queue.SolveTimeMS += src.Queue.SolveTimeMS
	dst.Queue.RetainedFieldSamples += src.Queue.RetainedFieldSamples
	dst.Queue.FieldSampleBudget += src.Queue.FieldSampleBudget
	dst.Shards = append(dst.Shards, serveapi.ShardStats{
		Shard:              idx,
		JobsDone:           src.JobsDone,
		JobsFailed:         src.JobsFailed,
		Assemblies:         src.Solver.Assemblies,
		AssemblyHits:       src.Solver.AssemblyHits,
		PrecondBuilds:      src.Solver.PrecondBuilds,
		PrecondHits:        src.Solver.PrecondHits,
		IterativeSolves:    src.Solver.IterativeSolves,
		WarmStarts:         src.Solver.WarmStarts,
		Factorizations:     src.Factorizations,
		FactorHits:         src.FactorHits,
		Refinements:        src.Solver.Refinements,
		PrecisionFallbacks: src.Solver.PrecisionFallbacks,
	})
}

func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleReadyz: the router is ready when at least one replica is — with
// zero up replicas every forward is doomed, so its own front load balancer
// should stop sending traffic here.
func (p *Proxy) handleReadyz(w http.ResponseWriter, r *http.Request) {
	up := 0
	for _, rep := range p.replicas {
		if rep.up.Load() {
			up++
		}
	}
	ready := up > 0
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]any{"ready": ready, "replicasUp": up, "replicas": len(p.replicas)})
}

func copyResponse(w http.ResponseWriter, resp *http.Response) {
	copyHeader(w, resp)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// streamResponse copies the body with a flush per read, for SSE passthrough.
func streamResponse(w http.ResponseWriter, resp *http.Response) {
	copyHeader(w, resp)
	w.WriteHeader(resp.StatusCode)
	flusher, canFlush := w.(http.Flusher)
	if canFlush {
		flusher.Flush()
	}
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if canFlush {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

func copyHeader(w http.ResponseWriter, resp *http.Response) {
	for _, k := range []string{"Content-Type", "Cache-Control", "Retry-After", "Connection"} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
