package router

import (
	"testing"

	morestress "repro"
	"repro/internal/mesh"
)

// cheapJob returns a fast scenario on an rows×2 lattice; rows varies the
// lattice key, dt varies the load within one lattice.
func cheapJob(t *testing.T, rows int, dt float64) morestress.Job {
	t.Helper()
	cfg := morestress.DefaultConfig(15)
	cfg.Nodes = [3]int{3, 3, 3}
	cfg.Resolution = mesh.CoarseResolution()
	return morestress.Job{Config: cfg, Rows: rows, Cols: 2, DeltaT: dt, Solver: morestress.SolveCG}
}

func TestShardsRoutesByLatticeKey(t *testing.T) {
	sh := NewShards(3, morestress.EngineOptions{Workers: 2})
	// Same lattice → same shard, regardless of ΔT; the shard matches the
	// table's own placement of the job's lattice key.
	for rows := 1; rows <= 6; rows++ {
		a := sh.ShardFor(cheapJob(t, rows, -250))
		b := sh.ShardFor(cheapJob(t, rows, -100))
		if a != b {
			t.Errorf("rows=%d: ΔT changed the shard (%d vs %d)", rows, a, b)
		}
		if want := sh.table.Pick(morestress.LatticeKey(cheapJob(t, rows, -250))); a != want {
			t.Errorf("rows=%d: ShardFor=%d, table owner=%d", rows, a, want)
		}
	}
}

func TestShardsAffinity(t *testing.T) {
	if testing.Short() {
		t.Skip("solves real scenarios")
	}
	const shards = 3
	sh := NewShards(shards, morestress.EngineOptions{Workers: 2})
	// Distinct lattices, two solves each: every lattice's assembly must be
	// built in exactly one shard (second solve hits that shard's cache).
	lattices := []int{1, 2, 3, 4, 5}
	owners := make(map[int]int)
	for _, rows := range lattices {
		owners[rows] = sh.ShardFor(cheapJob(t, rows, -250))
		for _, dt := range []float64{-250, -200} {
			res, err := sh.Solve(cheapJob(t, rows, dt))
			if err != nil || res.Err != nil {
				t.Fatalf("rows=%d dt=%g: %v / %v", rows, dt, err, res.Err)
			}
		}
	}
	per := sh.PerShard()
	var totalAssemblies int64
	wantPerShard := make([]int64, shards)
	for _, rows := range lattices {
		wantPerShard[owners[rows]]++
	}
	for i, es := range per {
		totalAssemblies += es.Assemblies
		if es.Assemblies != wantPerShard[i] {
			t.Errorf("shard %d built %d assemblies, want %d (owners %v)", i, es.Assemblies, wantPerShard[i], owners)
		}
	}
	if totalAssemblies != int64(len(lattices)) {
		t.Errorf("fleet built %d assemblies for %d lattices — affinity broken", totalAssemblies, len(lattices))
	}

	// The merged view must add up to the per-shard views.
	merged := sh.Stats()
	if merged.Assemblies != totalAssemblies {
		t.Errorf("merged assemblies %d != per-shard sum %d", merged.Assemblies, totalAssemblies)
	}
	var done int64
	for _, es := range per {
		done += es.JobsDone
	}
	if merged.JobsDone != done {
		t.Errorf("merged jobsDone %d != per-shard sum %d", merged.JobsDone, done)
	}
}

func TestShardsSharedROMCache(t *testing.T) {
	if testing.Short() {
		t.Skip("solves real scenarios")
	}
	sh := NewShards(3, morestress.EngineOptions{Workers: 2})
	// All lattices share one unit cell; the shared ROM cache must build its
	// model once even when the lattices land on different shards.
	for rows := 1; rows <= 5; rows++ {
		if res, err := sh.Solve(cheapJob(t, rows, -250)); err != nil || res.Err != nil {
			t.Fatalf("rows=%d: %v / %v", rows, err, res.Err)
		}
	}
	st := sh.Stats()
	if st.Cache.Misses != 1 {
		t.Errorf("shared ROM cache built %d models for 1 unit cell", st.Cache.Misses)
	}
	if st.Cache.Entries != 1 {
		t.Errorf("shared ROM cache reports %d entries (double-counted across shards?)", st.Cache.Entries)
	}
}

func TestShardsBatchSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("solves real scenarios")
	}
	sh := NewShards(3, morestress.EngineOptions{Workers: 2})
	// A batch spanning several lattices: results must come back in input
	// order with indices rewritten to batch positions.
	var jobs []morestress.Job
	for rows := 1; rows <= 4; rows++ {
		for _, dt := range []float64{-250, -150} {
			jobs = append(jobs, cheapJob(t, rows, dt))
		}
	}
	br := sh.BatchSolve(jobs)
	if len(br.Results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(br.Results), len(jobs))
	}
	if br.Stats.Jobs != len(jobs) || br.Stats.Errors != 0 {
		t.Fatalf("batch stats %+v", br.Stats)
	}
	for i, res := range br.Results {
		if res.Index != i {
			t.Errorf("result %d carries index %d", i, res.Index)
		}
		if res.Err != nil {
			t.Errorf("result %d: %v", i, res.Err)
		}
		if res.Result == nil || res.Result.GlobalDoFs <= 0 {
			t.Errorf("result %d: missing solution", i)
		}
	}
	// Per-lattice assembly counts must still be affine after the fan-out.
	var total int64
	for _, es := range sh.PerShard() {
		total += es.Assemblies
	}
	if total != 4 {
		t.Errorf("batch built %d assemblies for 4 lattices", total)
	}
}

func TestShardsWorkerSplit(t *testing.T) {
	// 4 workers over 3 shards: each shard gets at least one; a single shard
	// keeps them all.
	if sh := NewShards(3, morestress.EngineOptions{Workers: 4}); sh.Len() != 3 {
		t.Fatalf("Len=%d", sh.Len())
	}
	if sh := NewShards(0, morestress.EngineOptions{}); sh.Len() != 1 {
		t.Fatalf("n=0 should clamp to 1 shard, got %d", sh.Len())
	}
}
