// Package router is the shard coordinator of the serving layer: it maps
// each request's lattice key — the same "ROM spec SHA-256 | dims | BC"
// string every lattice-affine engine cache (assembly, preconditioner,
// factor, warm-start seed) is keyed by — onto a shard with rendezvous
// (highest-random-weight) hashing, so requests for one lattice keep landing
// where that lattice's caches are already warm.
//
// Two deployments share the one Table:
//
//   - In-process sharding (Shards): cmd/serve -shards N runs N independent
//     Engine instances behind one HTTP front end, each owning a disjoint
//     slice of lattice keyspace. The content-addressed ROM cache stays
//     shared (it is shard-agnostic); the lattice-keyed caches stop
//     contending entirely.
//
//   - Proxy mode (Proxy): cmd/router forwards /solve, /batch, and the full
//     /jobs lifecycle (SSE included) to replica base URLs, probing each
//     replica's /readyz, retrying onto the next shard in rendezvous order
//     when one is down, and aggregating /stats across the fleet.
//
// Rendezvous hashing gives the two properties the serving economics need:
// deterministic placement (any router instance, or the same one after a
// restart, maps a key to the same shard) and minimal disruption (adding or
// removing one of k shards moves only ~1/k of the keyspace — every other
// key keeps its warm replica).
package router

// Table is an immutable rendezvous-hash table over a fixed list of shard
// names. Placement depends only on the key and the shard names — not on
// their order of appearance, the table instance, or any prior traffic — so
// every Table built from the same names agrees, across processes and
// restarts.
type Table struct {
	names []string
	seeds []uint64
}

// NewTable builds a table over the given shard names (replica URLs in proxy
// mode, synthetic "shard-i" names in-process). Names must be non-empty and
// distinct: duplicate names would silently halve their owner's keyspace.
// It panics on an empty list or duplicates — both are wiring bugs, not
// runtime conditions.
func NewTable(names []string) *Table {
	if len(names) == 0 {
		panic("router: NewTable needs at least one shard")
	}
	t := &Table{
		names: make([]string, len(names)),
		seeds: make([]uint64, len(names)),
	}
	seen := make(map[string]bool, len(names))
	for i, n := range names {
		if seen[n] {
			panic("router: duplicate shard name " + n)
		}
		seen[n] = true
		t.names[i] = n
		// Pre-mix the name hash once: Pick then pays one mix per shard,
		// not one string hash per shard.
		t.seeds[i] = mix64(hashString(n))
	}
	return t
}

// Len returns the shard count.
func (t *Table) Len() int { return len(t.names) }

// Name returns the i-th shard's name.
func (t *Table) Name(i int) string { return t.names[i] }

// FNV-1a constants; the key hash is FNV-1a over the key bytes, then mixed
// per shard with the splitmix64 finalizer. FNV alone is too weak for HRW
// (its low avalanche would correlate shard scores); the finalizer's full
// avalanche makes per-shard scores effectively independent, which is what
// the balance bound rests on.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

//stressvet:noalloc
func hashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// mix64 is the splitmix64 finalizer: a cheap full-avalanche bijection.
//
//stressvet:noalloc
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// score is the HRW weight of the (pre-hashed) key on shard i.
//
//stressvet:noalloc
func (t *Table) score(kh uint64, i int) uint64 { return mix64(kh ^ t.seeds[i]) }

// Pick returns the index of the shard owning key: the highest-scoring shard
// under rendezvous hashing (ties, vanishingly rare with 64-bit scores,
// break toward the lower index so placement stays total and deterministic).
// It sits on the per-request serving path, so it is allocation-free.
//
//stressvet:noalloc
func (t *Table) Pick(key string) int {
	kh := hashString(key)
	best := 0
	bestScore := t.score(kh, 0)
	for i := 1; i < len(t.seeds); i++ {
		if s := t.score(kh, i); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// Order fills dst with every shard index in descending score order for key
// and returns it: dst[0] is the owner (== Pick), dst[1] the first failover
// candidate, and so on. dst is grown as needed; pass a scratch slice to
// avoid allocation. The failover order is itself rendezvous-stable: when
// the owner is down, every router instance agrees on the runner-up, so a
// dead replica's keyspace lands coherently on single replacements instead
// of scattering per request.
func (t *Table) Order(key string, dst []int) []int {
	n := len(t.seeds)
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	kh := hashString(key)
	// Insertion sort by descending score: n is a replica count (single
	// digits), so this beats allocating score/index pairs for sort.Slice.
	for i := 0; i < n; i++ {
		si := t.score(kh, i)
		j := i
		for j > 0 && t.score(kh, dst[j-1]) < si {
			dst[j] = dst[j-1]
			j--
		}
		dst[j] = i
	}
	return dst
}
