package router

import (
	"fmt"
	"sync"
	"time"

	morestress "repro"
	"repro/internal/romcache"
)

// Shards serves jobs on N in-process engines, each owning the slice of
// lattice keyspace the rendezvous table assigns it. It implements
// morestress.Solver, so the HTTP layer and the async job queue run over it
// unchanged: every Solve routes by the job's LatticeKey, which means a
// lattice's assembly, preconditioner, factorization, and warm-start seed
// all live in exactly one engine — shard counts scale the lattice working
// set without the caches contending or duplicating.
type Shards struct {
	table   *Table
	engines []*morestress.Engine
	// sharedCache marks that every engine was built over one ROM cache
	// (NewShards always wires it that way); Stats then reports the cache
	// section once instead of N times.
	sharedCache bool
}

// NewShards builds n engines behind one rendezvous table. The engines share
// a single content-addressed ROM cache built from opt (the ROM of a unit
// cell is lattice-independent, so sharding it would only multiply local-
// stage builds); everything lattice-keyed stays private per engine.
// opt.Workers is the total engine-job concurrency, split evenly across
// shards (each shard gets at least 1).
func NewShards(n int, opt morestress.EngineOptions) *Shards {
	if n < 1 {
		n = 1
	}
	shared := opt.SharedCache
	if shared == nil {
		shared = romcache.New(romcache.Options{
			MaxBytes:   opt.CacheBytes,
			MaxEntries: opt.CacheEntries,
			Dir:        opt.CacheDir,
			Workers:    opt.BuildWorkers,
		})
	}
	per := opt
	per.SharedCache = shared
	if opt.Workers > 0 {
		per.Workers = opt.Workers / n
		if per.Workers < 1 {
			per.Workers = 1
		}
	}
	s := &Shards{
		engines:     make([]*morestress.Engine, n),
		sharedCache: true,
	}
	names := make([]string, n)
	for i := range s.engines {
		s.engines[i] = morestress.NewEngine(per)
		names[i] = fmt.Sprintf("shard-%d", i)
	}
	s.table = NewTable(names)
	return s
}

// Len returns the shard count.
func (s *Shards) Len() int { return len(s.engines) }

// ShardFor returns the index of the shard owning the job's lattice.
func (s *Shards) ShardFor(job morestress.Job) int {
	return s.table.Pick(morestress.LatticeKey(job))
}

// Solve routes the job to its lattice's shard.
func (s *Shards) Solve(job morestress.Job) (*morestress.JobResult, error) {
	return s.engines[s.ShardFor(job)].Solve(job)
}

// BatchSolve partitions the batch by owning shard and runs each partition
// as a sub-batch on its engine, concurrently across shards. Each engine
// keeps its own BatchSolve semantics within the partition — ΔT-sorted
// warm-start chains, assembly sharing — and results come back in input
// order with per-batch stats summed. Wall is the cross-shard wall time.
//
//stressvet:gang -- one goroutine per non-empty shard partition, bounded by the shard count
func (s *Shards) BatchSolve(jobs []morestress.Job) *morestress.BatchResult {
	start := time.Now()
	parts := make([][]int, len(s.engines))
	for i, job := range jobs {
		sh := s.ShardFor(job)
		parts[sh] = append(parts[sh], i)
	}
	out := &morestress.BatchResult{Results: make([]morestress.JobResult, len(jobs))}
	subs := make([]*morestress.BatchResult, len(s.engines))
	var wg sync.WaitGroup
	for sh, idxs := range parts {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int, idxs []int) {
			defer wg.Done()
			sub := make([]morestress.Job, len(idxs))
			for k, i := range idxs {
				sub[k] = jobs[i]
			}
			subs[sh] = s.engines[sh].BatchSolve(sub)
		}(sh, idxs)
	}
	wg.Wait()
	st := &out.Stats
	for sh, idxs := range parts {
		sub := subs[sh]
		if sub == nil {
			continue
		}
		for k, i := range idxs {
			out.Results[i] = sub.Results[k]
			out.Results[i].Index = i
		}
		st.Errors += sub.Stats.Errors
		st.CacheHits += sub.Stats.CacheHits
		st.CacheMisses += sub.Stats.CacheMisses
		st.LocalTime += sub.Stats.LocalTime
		st.GlobalTime += sub.Stats.GlobalTime
		st.Iterations += sub.Stats.Iterations
		st.WarmStarts += sub.Stats.WarmStarts
	}
	st.Jobs = len(jobs)
	st.Wall = time.Since(start)
	return out
}

// Stats merges the per-shard engine snapshots into one EngineStats, the
// view a single engine serving the union of the traffic would report. The
// shared ROM cache is counted once.
func (s *Shards) Stats() morestress.EngineStats {
	merged := s.engines[0].Stats()
	for _, e := range s.engines[1:] {
		st := e.Stats()
		if s.sharedCache {
			st.Cache = romcache.Stats{}
		}
		merged.Merge(st)
	}
	return merged
}

// PerShard returns each shard's own engine snapshot, in shard order — the
// affinity evidence: under HRW routing, a given lattice's assembly and
// preconditioner builds appear in exactly one entry.
func (s *Shards) PerShard() []morestress.EngineStats {
	out := make([]morestress.EngineStats, len(s.engines))
	for i, e := range s.engines {
		out[i] = e.Stats()
	}
	return out
}
