package router

import (
	"encoding/json"
	"testing"
	"time"

	morestress "repro"
	"repro/internal/serveapi"
)

// FuzzRouterKey drives arbitrary request bodies through the proxy's key
// derivation and placement. Invariants:
//
//   - SolveKey and Pick never panic, whatever the bytes (the proxy sees raw
//     client input before any replica validates it);
//   - key derivation is canonical: a decoded request re-encoded (different
//     field order) and a copy with every JSON default spelled out derive
//     the same key, and therefore the same shard — otherwise two spellings
//     of one scenario would split a lattice across replicas and silently
//     break cache affinity;
//   - solver options never influence placement (the lattice key is
//     geometry-only).
func FuzzRouterKey(f *testing.F) {
	f.Add([]byte(`{"rows":8,"cols":8}`))
	f.Add([]byte(`{"pitch":20,"nodes":4,"resolution":"coarse","structure":"pillar","quadratic":true,"rows":3,"cols":5,"deltaT":-100,"gridSamples":10,"solver":"cg","tol":1e-8,"maxIter":200,"precond":"ic0","ordering":"rcm"}`))
	f.Add([]byte(`{"cols":1,"rows":1,"deltaT":0}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"rows":-3,"cols":900}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`[{"rows":1}]`))
	f.Add([]byte(`{"rows":1e308,"cols":8}`))

	proxy, err := NewProxy(ProxyOptions{Replicas: []string{"http://a", "http://b", "http://c"}, Backoff: time.Millisecond})
	if err != nil {
		f.Fatal(err)
	}
	defer proxy.Close()
	table := NewTable([]string{"http://a", "http://b", "http://c"})

	f.Fuzz(func(t *testing.T, body []byte) {
		key, err := proxy.SolveKey(body)
		// Invalid bodies route by empty key; both paths must place without
		// panicking.
		_ = table.Pick(key)
		if err != nil {
			return
		}

		// The body decoded: rebuild it two more ways and require key
		// equality. Round-tripping through the struct reorders fields to
		// Go's canonical order.
		var req serveapi.JobRequest
		if uerr := json.Unmarshal(body, &req); uerr != nil {
			// SolveKey decodes with DisallowUnknownFields plus streaming
			// semantics; a body it accepted can still be rejected here
			// (e.g. trailing garbage after the object). Skip those.
			return
		}
		reenc, merr := json.Marshal(req)
		if merr != nil {
			t.Fatalf("re-encode decoded request: %v", merr)
		}
		key2, err2 := proxy.SolveKey(reenc)
		if err2 != nil {
			t.Fatalf("re-encoded body failed key derivation: %v\nbody: %s", err2, reenc)
		}
		if key2 != key {
			t.Fatalf("re-encoded body changed key: %q → %q\noriginal: %s\nreencoded: %s", key, key2, body, reenc)
		}

		// Fill the defaults explicitly; the key must not move.
		filled := req
		if filled.Pitch == 0 {
			filled.Pitch = 15
		}
		if filled.Resolution == "" {
			filled.Resolution = "default"
		}
		if filled.Structure == "" {
			filled.Structure = "tsv"
		}
		if filled.Solver == "" {
			filled.Solver = "gmres"
		}
		if filled.DeltaT == nil {
			dt := -250.0
			filled.DeltaT = &dt
		}
		fenc, merr := json.Marshal(filled)
		if merr != nil {
			t.Fatalf("encode default-filled request: %v", merr)
		}
		key3, err3 := proxy.SolveKey(fenc)
		if err3 != nil {
			t.Fatalf("default-filled body failed key derivation: %v\nbody: %s", err3, fenc)
		}
		if key3 != key {
			t.Fatalf("spelling out defaults changed key: %q → %q\nbody: %s", key, key3, fenc)
		}

		// Solver options must not place: perturb them and require the same
		// shard.
		perturbed := req
		perturbed.Solver = "cg"
		perturbed.Tol = 1e-9
		perturbed.MaxIter = 7
		dt := 123.0
		perturbed.DeltaT = &dt
		penc, merr := json.Marshal(perturbed)
		if merr != nil {
			t.Fatalf("encode perturbed request: %v", merr)
		}
		if key4, err4 := proxy.SolveKey(penc); err4 == nil {
			if table.Pick(key4) != table.Pick(key) {
				t.Fatalf("solver options moved the shard: key %q vs %q", key, key4)
			}
			if key4 != key {
				t.Fatalf("solver options changed the lattice key: %q → %q", key, key4)
			}
		}

		// Placement is deterministic: derive and place again.
		key5, err5 := proxy.SolveKey(body)
		if err5 != nil || key5 != key {
			t.Fatalf("second derivation disagreed: key %q err %v, want %q", key5, err5, key)
		}

		if job, jerr := req.ToJob(0, 0); jerr == nil {
			if morestress.LatticeKey(job) != key {
				t.Fatalf("SolveKey %q disagrees with direct LatticeKey %q", key, morestress.LatticeKey(job))
			}
		}
	})
}
