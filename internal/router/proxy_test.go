package router

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	morestress "repro"
	"repro/internal/serveapi"
)

// testFleet starts n real serveapi replicas (in-process httptest servers
// over fresh engines) and a proxy fronting them. Returns the proxy's test
// server and the replica base URLs.
func testFleet(t *testing.T, n int) (*httptest.Server, []string) {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		engine := morestress.NewEngine(morestress.EngineOptions{Workers: 2})
		queue, err := serveapi.NewQueue(engine, 8, 1, time.Minute, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(queue.Close)
		rs := httptest.NewServer(serveapi.New(engine, queue).Routes())
		t.Cleanup(rs.Close)
		urls[i] = rs.URL
	}
	proxy, err := NewProxy(ProxyOptions{Replicas: urls, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	ps := httptest.NewServer(proxy.Routes())
	t.Cleanup(ps.Close)
	return ps, urls
}

// cheapReq builds the JSON request for cheapJob(rows, dt).
func cheapReq(rows int, dt float64) string {
	return fmt.Sprintf(`{"resolution":"coarse","nodes":3,"rows":%d,"cols":2,"deltaT":%g,"solver":"cg"}`, rows, dt)
}

func postJSON(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s response: %v", url, err)
	}
	return resp.StatusCode
}

func TestProxySolveAffinity(t *testing.T) {
	if testing.Short() {
		t.Skip("solves real scenarios")
	}
	ps, urls := testFleet(t, 3)
	table := NewTable(urls)

	// Two solves per lattice; the parent predicts each lattice's owner from
	// the same table the proxy uses.
	lattices := []int{1, 2, 3, 4}
	wantAssemblies := make(map[string]int64)
	for _, rows := range lattices {
		key := morestress.LatticeKey(cheapJob(t, rows, -250))
		wantAssemblies[urls[table.Pick(key)]]++
		for _, dt := range []float64{-250, -200} {
			var out serveapi.JobResponse
			if code := postJSON(t, ps.URL+"/solve", cheapReq(rows, dt), &out); code != http.StatusOK {
				t.Fatalf("rows=%d dt=%g: status %d", rows, dt, code)
			}
			if out.Error != "" || !out.Converged {
				t.Fatalf("rows=%d dt=%g: %+v", rows, dt, out)
			}
		}
	}
	var total int64
	for _, u := range urls {
		var st serveapi.StatsResponse
		if code := getJSON(t, u+"/stats", &st); code != http.StatusOK {
			t.Fatalf("replica stats: %d", code)
		}
		total += st.Solver.Assemblies
		if st.Solver.Assemblies != wantAssemblies[u] {
			t.Errorf("replica %s built %d assemblies, want %d", u, st.Solver.Assemblies, wantAssemblies[u])
		}
	}
	if total != int64(len(lattices)) {
		t.Errorf("fleet built %d assemblies for %d lattices — affinity broken", total, len(lattices))
	}
}

func TestProxyFailoverToRendezvousRunnerUp(t *testing.T) {
	// Fake replicas that tag their responses; replica "down" answers 503
	// like a replica mid-recovery would.
	mkReplica := func(name string, up bool) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !up {
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"served_by":%q}`, name)
		}))
	}
	a := mkReplica("a", true)
	b := mkReplica("b", false)
	c := mkReplica("c", true)
	defer a.Close()
	defer b.Close()
	defer c.Close()
	urls := []string{a.URL, b.URL, c.URL}
	proxy, err := NewProxy(ProxyOptions{Replicas: urls, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	ps := httptest.NewServer(proxy.Routes())
	defer ps.Close()

	table := NewTable(urls)
	nameOf := map[string]string{a.URL: "a", b.URL: "b", c.URL: "c"}
	// Find a request whose owner is the down replica b.
	scratch := make([]int, 0, 3)
	for rows := 1; rows < 200; rows++ {
		body := cheapReq(rows, -250)
		key, err := proxy.SolveKey([]byte(body))
		if err != nil {
			t.Fatal(err)
		}
		order := table.Order(key, scratch)
		if urls[order[0]] != b.URL {
			continue
		}
		var out map[string]string
		if code := postJSON(t, ps.URL+"/solve", body, &out); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if want := nameOf[urls[order[1]]]; out["served_by"] != want {
			t.Fatalf("request owned by down replica served by %q, want rendezvous runner-up %q", out["served_by"], want)
		}
		// The down replica is now marked, so a second request must not
		// retry it first (no added latency once marked).
		if code := postJSON(t, ps.URL+"/solve", body, &out); code != http.StatusOK {
			t.Fatalf("status %d on re-request", code)
		}
		var agg AggStats
		if code := getJSON(t, ps.URL+"/stats", &agg); code != http.StatusOK {
			t.Fatalf("stats %d", code)
		}
		if agg.Router.Failovers == 0 {
			t.Error("failover counter never moved")
		}
		for _, rs := range agg.Router.Replicas {
			if rs.URL == b.URL && rs.Up {
				t.Error("down replica still marked up after failed forward")
			}
		}
		return
	}
	t.Fatal("no lattice key owned by replica b in 200 tries (hash broken?)")
}

func TestProxyAllReplicasDown(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer dead.Close()
	proxy, err := NewProxy(ProxyOptions{Replicas: []string{dead.URL}, Backoff: time.Millisecond, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	ps := httptest.NewServer(proxy.Routes())
	defer ps.Close()
	var out map[string]string
	if code := postJSON(t, ps.URL+"/solve", cheapReq(1, -250), &out); code != http.StatusBadGateway {
		t.Fatalf("status %d with the whole fleet down, want 502", code)
	}
	if out["error"] == "" {
		t.Error("502 carried no error body")
	}
}

func TestProxyJobLifecycleAndSSE(t *testing.T) {
	if testing.Short() {
		t.Skip("solves real scenarios")
	}
	ps, _ := testFleet(t, 3)
	var sub serveapi.SubmitResponse
	if code := postJSON(t, ps.URL+"/jobs", `{"jobs":[`+cheapReq(2, -250)+`]}`, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if !strings.HasPrefix(sub.ID, "s") || !strings.Contains(sub.ID, "-") {
		t.Fatalf("job ID %q carries no replica prefix", sub.ID)
	}
	if sub.Poll != "/jobs/"+sub.ID || sub.Events != "/jobs/"+sub.ID+"/events" {
		t.Fatalf("URLs not rewritten: %+v", sub)
	}

	// SSE passthrough: the stream must deliver a terminal state event.
	resp, err := http.Get(ps.URL + sub.Events)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	sawTerminal := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") && strings.Contains(line, `"state":"done"`) {
			sawTerminal = true
			break
		}
	}
	if !sawTerminal {
		t.Fatal("SSE stream ended without a terminal state event")
	}

	// Poll through the router by prefixed ID.
	var status serveapi.JobStatusResponse
	if code := getJSON(t, ps.URL+sub.Poll, &status); code != http.StatusOK {
		t.Fatalf("poll status %d", code)
	}
	if status.State != "done" || len(status.Results) != 1 {
		t.Fatalf("job status %+v", status)
	}

	// Unknown and malformed IDs are 404 at the router.
	for _, id := range []string{"nosuchprefix", "s9-abc", "s-abc"} {
		resp, err := http.Get(ps.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET /jobs/%s: status %d, want 404", id, resp.StatusCode)
		}
	}
}

func TestProxyBatchSplitsAndMerges(t *testing.T) {
	if testing.Short() {
		t.Skip("solves real scenarios")
	}
	ps, urls := testFleet(t, 3)
	// Lattices chosen to span more than one replica, interleaved with
	// repeats, so the merge has to reassemble input order across sub-batches.
	table := NewTable(urls)
	rowsSeq := []int{1, 2, 3, 1, 4, 2}
	owners := make(map[int]bool)
	var sb strings.Builder
	sb.WriteString(`{"jobs":[`)
	for i, rows := range rowsSeq {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(cheapReq(rows, -250+float64(i)))
		owners[table.Pick(morestress.LatticeKey(cheapJob(t, rows, -250)))] = true
	}
	sb.WriteString(`]}`)
	if len(owners) < 2 {
		t.Skip("chosen lattices all landed on one replica; batch split not exercised")
	}
	var out serveapi.BatchResponse
	if code := postJSON(t, ps.URL+"/batch", sb.String(), &out); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if len(out.Results) != len(rowsSeq) {
		t.Fatalf("%d results for %d jobs", len(out.Results), len(rowsSeq))
	}
	if out.Stats.Jobs != len(rowsSeq) || out.Stats.Errors != 0 {
		t.Fatalf("batch stats %+v", out.Stats)
	}
	for i, res := range out.Results {
		if res.Error != "" || !res.Converged || res.GlobalDoFs <= 0 {
			t.Errorf("result %d: %+v", i, res)
		}
	}
	// DoFs grow with rows — check results came back in input order by
	// comparing the repeated lattices.
	if out.Results[0].GlobalDoFs != out.Results[3].GlobalDoFs {
		t.Error("results 0 and 3 (same lattice) disagree on DoFs — merge order broken")
	}
	if out.Results[1].GlobalDoFs != out.Results[5].GlobalDoFs {
		t.Error("results 1 and 5 (same lattice) disagree on DoFs — merge order broken")
	}
	if out.Results[0].GlobalDoFs >= out.Results[4].GlobalDoFs {
		t.Error("rows=1 reported at least as many DoFs as rows=4 — results misordered")
	}
}

func TestProxyStatsAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("solves real scenarios")
	}
	ps, urls := testFleet(t, 2)
	for rows := 1; rows <= 3; rows++ {
		if code := postJSON(t, ps.URL+"/solve", cheapReq(rows, -250), nil); code != http.StatusOK {
			t.Fatalf("solve status %d", code)
		}
	}
	var agg AggStats
	if code := getJSON(t, ps.URL+"/stats", &agg); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if agg.Fleet.JobsDone != 3 {
		t.Errorf("fleet jobsDone %d, want 3", agg.Fleet.JobsDone)
	}
	if len(agg.Router.Replicas) != len(urls) {
		t.Fatalf("router reports %d replicas, want %d", len(agg.Router.Replicas), len(urls))
	}
	var forwards int64
	for _, rs := range agg.Router.Replicas {
		if rs.Error != "" {
			t.Errorf("replica %s stats error: %s", rs.URL, rs.Error)
		}
		forwards += rs.Forwards
	}
	if forwards != 3 || agg.Router.Forwards != 3 {
		t.Errorf("forward counters: per-replica sum %d, total %d, want 3", forwards, agg.Router.Forwards)
	}
	if len(agg.Fleet.Shards) != len(urls) {
		t.Errorf("fleet breakdown has %d entries, want %d", len(agg.Fleet.Shards), len(urls))
	}
}

func TestProxyReadyz(t *testing.T) {
	ps, _ := testFleet(t, 2)
	resp, err := http.Get(ps.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz %d with replicas up", resp.StatusCode)
	}

	dead, err := NewProxy(ProxyOptions{Replicas: []string{"http://127.0.0.1:1"}, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer dead.Close()
	dead.replicas[0].up.Store(false) // what the probe loop would conclude
	ds := httptest.NewServer(dead.Routes())
	defer ds.Close()
	resp, err = http.Get(ds.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d with the whole fleet down, want 503", resp.StatusCode)
	}
}

func TestProxyProbeRecoversReplica(t *testing.T) {
	// A replica that starts not-ready and then becomes ready: the probe
	// loop must flip it back up without any traffic.
	var ready atomic.Bool
	rep := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" && !ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer rep.Close()
	proxy, err := NewProxy(ProxyOptions{
		Replicas:      []string{rep.URL},
		ProbeInterval: 5 * time.Millisecond,
		Backoff:       time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy.Start()
	defer proxy.Close()

	deadline := time.Now().Add(5 * time.Second)
	for proxy.replicas[0].up.Load() {
		if time.Now().After(deadline) {
			t.Fatal("probe never marked the not-ready replica down")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ready.Store(true)
	for !proxy.replicas[0].up.Load() {
		if time.Now().After(deadline) {
			t.Fatal("probe never marked the recovered replica up")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSolveKeyCanonical(t *testing.T) {
	proxy, err := NewProxy(ProxyOptions{Replicas: []string{"http://a", "http://b"}})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	// The same scenario spelled three ways: minimal, field-reordered, and
	// with every default written out. All must derive one key.
	bodies := []string{
		`{"rows":8,"cols":8}`,
		`{"cols":8,"rows":8}`,
		`{"pitch":15,"nodes":5,"resolution":"default","structure":"tsv","rows":8,"cols":8,"deltaT":-250,"solver":"gmres"}`,
	}
	want, err := proxy.SolveKey([]byte(bodies[0]))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bodies[1:] {
		got, err := proxy.SolveKey([]byte(b))
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if got != want {
			t.Errorf("%s: key %q, want %q", b, got, want)
		}
	}
	// ΔT and solver options must NOT change the key (they are not part of
	// the lattice), but geometry must.
	same, err := proxy.SolveKey([]byte(`{"rows":8,"cols":8,"deltaT":-100,"solver":"cg","tol":0.001}`))
	if err != nil {
		t.Fatal(err)
	}
	if same != want {
		t.Error("solver options changed the lattice key")
	}
	diff, err := proxy.SolveKey([]byte(`{"rows":8,"cols":9}`))
	if err != nil {
		t.Fatal(err)
	}
	if diff == want {
		t.Error("different lattice produced the same key")
	}
	if _, err := proxy.SolveKey([]byte(`{"rows":0}`)); err == nil {
		t.Error("invalid request produced a key without error")
	}
}
