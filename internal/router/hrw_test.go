package router

import (
	"fmt"
	"math/rand"
	"testing"
)

// shardCounts are the fleet sizes the property tests sweep.
var shardCounts = []int{2, 3, 5, 8}

func names(k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	return out
}

// randomKeys returns n pseudo-lattice keys from a fixed seed, so the
// property tests are deterministic run to run.
func randomKeys(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%016x|%dx%d|bc%d", rng.Uint64(), 1+rng.Intn(64), 1+rng.Intn(64), rng.Intn(3))
	}
	return out
}

// TestPickDeterministic: placement is a pure function of (key, shard names)
// — independent tables over the same names agree key by key, and the names'
// order of appearance does not matter.
func TestPickDeterministic(t *testing.T) {
	for _, k := range shardCounts {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			ns := names(k)
			a := NewTable(ns)
			b := NewTable(ns)
			// Same names, reversed order: shard indices differ, owners must not.
			rev := make([]string, k)
			for i, n := range ns {
				rev[k-1-i] = n
			}
			c := NewTable(rev)
			for _, key := range randomKeys(1000, 1) {
				pa, pb := a.Pick(key), b.Pick(key)
				if pa != pb {
					t.Fatalf("key %q: independent tables disagree: %d vs %d", key, pa, pb)
				}
				if got, want := c.Name(c.Pick(key)), a.Name(pa); got != want {
					t.Fatalf("key %q: owner depends on name order: %q vs %q", key, got, want)
				}
			}
		})
	}
}

// TestPickBalance: over ≥1k random keys no shard holds more than twice its
// fair share (the ISSUE's bound; with splitmix64-mixed scores the observed
// skew is far smaller, so this does not flake).
func TestPickBalance(t *testing.T) {
	const nKeys = 2000
	keys := randomKeys(nKeys, 2)
	for _, k := range shardCounts {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			tab := NewTable(names(k))
			counts := make([]int, k)
			for _, key := range keys {
				counts[tab.Pick(key)]++
			}
			fair := nKeys / k
			for i, c := range counts {
				if c > 2*fair {
					t.Errorf("shard %d holds %d of %d keys (> 2× fair share %d): %v", i, c, nKeys, fair, counts)
				}
				if c == 0 {
					t.Errorf("shard %d holds no keys: %v", i, counts)
				}
			}
		})
	}
}

// TestMinimalDisruption: growing the fleet from k to k+1 moves ~1/(k+1) of
// the keys, every move lands on the new shard, and shrinking it back moves
// only the orphaned keys, each to its rendezvous runner-up. This is the
// property that makes redeploys cheap: everyone else's caches stay warm.
func TestMinimalDisruption(t *testing.T) {
	const nKeys = 2000
	keys := randomKeys(nKeys, 3)
	for _, k := range shardCounts {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			ns := names(k + 1)
			small := NewTable(ns[:k])
			big := NewTable(ns)

			moved := 0
			for _, key := range keys {
				before, after := small.Pick(key), big.Pick(key)
				if ns[before] != ns[after] {
					moved++
					// HRW invariant: a key only ever moves to the added shard.
					if after != k {
						t.Fatalf("key %q moved %d→%d, not to the new shard %d", key, before, after, k)
					}
				}
			}
			// Expect nKeys/(k+1) moves; allow ±50% — the binomial spread at
			// these sizes is a few percent, so this bound is generous without
			// admitting a broken hash (which moves ~0% or ~100%).
			want := nKeys / (k + 1)
			if moved < want/2 || moved > want*3/2 {
				t.Errorf("adding shard %d moved %d keys, want ≈%d (±50%%)", k, moved, want)
			}

			// Remove the shard again: only its keys move, each to the shard
			// that was next in its rendezvous order.
			scratch := make([]int, 0, k+1)
			for _, key := range keys {
				before := big.Pick(key)
				after := small.Pick(key)
				if before != k {
					if ns[after] != ns[before] {
						t.Fatalf("key %q moved %d→%d though its shard survived", key, before, after)
					}
					continue
				}
				order := big.Order(key, scratch)
				if order[0] != k {
					t.Fatalf("key %q: Order()[0]=%d disagrees with Pick()=%d", key, order[0], before)
				}
				if ns[after] != ns[order[1]] {
					t.Fatalf("key %q: orphaned to %q, want rendezvous runner-up %q", key, ns[after], ns[order[1]])
				}
			}
		})
	}
}

// TestOrderIsPermutation: Order returns every shard exactly once, leads with
// Pick, and is itself deterministic.
func TestOrderIsPermutation(t *testing.T) {
	for _, k := range shardCounts {
		tab := NewTable(names(k))
		scratch := make([]int, 0, k)
		for _, key := range randomKeys(200, 4) {
			order := tab.Order(key, scratch)
			if len(order) != k {
				t.Fatalf("k=%d key %q: Order returned %d entries", k, key, len(order))
			}
			if order[0] != tab.Pick(key) {
				t.Fatalf("k=%d key %q: Order()[0]=%d, Pick()=%d", k, key, order[0], tab.Pick(key))
			}
			seen := make([]bool, k)
			for _, idx := range order {
				if idx < 0 || idx >= k || seen[idx] {
					t.Fatalf("k=%d key %q: Order not a permutation: %v", k, key, order)
				}
				seen[idx] = true
			}
			kh := hashString(key)
			for i := 1; i < k; i++ {
				if tab.score(kh, order[i-1]) < tab.score(kh, order[i]) {
					t.Fatalf("k=%d key %q: Order not score-descending: %v", k, key, order)
				}
			}
		}
	}
}

func TestNewTableRejectsBadFleets(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty", func() { NewTable(nil) })
	mustPanic("duplicate", func() { NewTable([]string{"a", "b", "a"}) })
}

// BenchmarkRouterPick is the pinned serving-path benchmark: one placement
// decision over an 8-replica fleet. It must stay allocation-free — Pick sits
// on every proxied request.
func BenchmarkRouterPick(b *testing.B) {
	tab := NewTable(names(8))
	key := "9f86d081884c7d659a2feaa0c55ad015a3bf4f1b2b0b822cd15d6c15b0f00a08|32x32|bc2"
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = tab.Pick(key)
	}
	_ = sink
}
