package reffem

import (
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/solver"
)

// TestQuadraticReferenceAgreesWithTrilinear checks the two discretizations
// converge to the same physics: the quadratic and trilinear references on
// the same fine mesh must produce close von Mises fields (the residual
// difference is the trilinear discretization error).
func TestQuadraticReferenceAgreesWithTrilinear(t *testing.T) {
	base := Problem{
		Geom: mesh.PaperGeometry(15), Mats: material.DefaultTSVSet(),
		Res: mesh.CoarseResolution(), Bx: 2, By: 2,
		DeltaT: -250, BC: ClampedTopBottom,
		Opt: solver.Options{Tol: 1e-9},
	}
	pt := base
	tri, err := Solve(&pt)
	if err != nil {
		t.Fatal(err)
	}
	pq := base
	pq.Quadratic = true
	quad, err := Solve(&pq)
	if err != nil {
		t.Fatal(err)
	}
	if quad.Quad == nil {
		t.Fatal("quadratic result lacks quadratic model")
	}
	if quad.DoFs <= tri.DoFs {
		t.Errorf("quadratic DoFs %d should exceed trilinear %d", quad.DoFs, tri.DoFs)
	}
	vt := tri.SampleVM(10, 8)
	vq := quad.SampleVM(10, 8)
	nmae := field.NormalizedMAE(vt, vq)
	t.Logf("trilinear vs quadratic reference: %.2f%% (quad DoFs %d, tri DoFs %d)",
		100*nmae, quad.DoFs, tri.DoFs)
	if nmae > 0.10 {
		t.Errorf("discretizations disagree by %.4f", nmae)
	}
	// Peak stress from the softer trilinear elements should be within ~20%.
	if r := math.Abs(vt.Max()-vq.Max()) / vq.Max(); r > 0.2 {
		t.Errorf("peak vM differs by %.1f%%", 100*r)
	}
}

func TestQuadraticPrescribedFreeExpansion(t *testing.T) {
	geom := mesh.PaperGeometry(15)
	deltaT := -200.0
	a := material.Silicon.CTE * deltaT
	p := &Problem{
		Geom: geom, Mats: material.DefaultTSVSet(), Res: mesh.CoarseResolution(),
		Bx: 1, By: 2, IsDummy: func(int, int) bool { return true },
		DeltaT: deltaT, BC: PrescribedBoundary, Quadratic: true,
		BoundaryDisp: func(pt mesh.Vec3) [3]float64 {
			return [3]float64{a * pt.X, a * pt.Y, a * pt.Z}
		},
		Opt: solver.Options{Tol: 1e-11},
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	vm := r.SampleVM(6, 4)
	scale := material.Silicon.ThermalStressCoeff() * math.Abs(deltaT)
	if vm.Max() > 1e-6*scale {
		t.Errorf("quadratic free expansion not stress free: %g", vm.Max())
	}
}

func TestQuadraticRejectsDeltaTFor(t *testing.T) {
	p := &Problem{
		Geom: mesh.PaperGeometry(15), Mats: material.DefaultTSVSet(),
		Res: mesh.CoarseResolution(), Bx: 1, By: 1,
		DeltaTFor: func(int, int) float64 { return -1 },
		Quadratic: true,
	}
	if _, err := Solve(p); err == nil {
		t.Error("expected error for quadratic + DeltaTFor")
	}
}
