package reffem

import (
	"math"
	"testing"

	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/solver"
)

func solveSmall(t *testing.T, bx, by int, dummy func(int, int) bool) (*Problem, *Result) {
	t.Helper()
	p := &Problem{
		Geom: mesh.PaperGeometry(15),
		Mats: material.DefaultTSVSet(),
		Res:  mesh.CoarseResolution(),
		Bx:   bx, By: by,
		IsDummy: dummy,
		DeltaT:  -250,
		BC:      ClampedTopBottom,
		Opt:     solver.Options{Tol: 1e-9},
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, r
}

func TestSolveSingleBlock(t *testing.T) {
	p, r := solveSmall(t, 1, 1, nil)
	if !r.Stats.Converged {
		t.Error("reference solve did not converge")
	}
	// Clamped top/bottom with ΔT < 0: silicon contracts; the mid-plane
	// shrinks laterally so the lateral displacement at the block edge
	// points inward (toward the center).
	d := r.Model.DisplacementAtPoint(r.U, mesh.Vec3{X: p.Geom.Pitch, Y: p.Geom.Pitch / 2, Z: p.Geom.Height / 2})
	if d[0] >= 0 {
		t.Errorf("edge x-displacement %g, want negative (contraction)", d[0])
	}
	// Clamped faces: zero displacement at a top node.
	top := r.Model.DisplacementAtPoint(r.U, mesh.Vec3{X: 7.5, Y: 7.5, Z: p.Geom.Height})
	for c := 0; c < 3; c++ {
		if math.Abs(top[c]) > 1e-12 {
			t.Errorf("clamped top moved: %v", top)
		}
	}
}

func TestVMFieldStressConcentration(t *testing.T) {
	p, r := solveSmall(t, 1, 1, nil)
	vm := r.VMField(p.Geom, 1, 1, 16, p.DeltaT, 4)
	if vm.NX != 16 || vm.NY != 16 {
		t.Fatalf("field shape %d×%d", vm.NX, vm.NY)
	}
	// Stress at the via region must dominate the block corner.
	center := vm.At(8, 8)
	corner := vm.At(0, 0)
	if center <= corner {
		t.Errorf("no stress concentration: center %g corner %g", center, corner)
	}
	if vm.Min() < 0 {
		t.Error("negative von Mises")
	}
}

func TestStressScalesLinearlyWithDeltaT(t *testing.T) {
	geom := mesh.PaperGeometry(15)
	base := Problem{
		Geom: geom, Mats: material.DefaultTSVSet(), Res: mesh.CoarseResolution(),
		Bx: 1, By: 1, BC: ClampedTopBottom, Opt: solver.Options{Tol: 1e-11},
	}
	p1 := base
	p1.DeltaT = -100
	p2 := base
	p2.DeltaT = -200
	r1, err := Solve(&p1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Solve(&p2)
	if err != nil {
		t.Fatal(err)
	}
	v1 := r1.VMField(geom, 1, 1, 8, p1.DeltaT, 4)
	v2 := r2.VMField(geom, 1, 1, 8, p2.DeltaT, 4)
	for i := range v1.V {
		if math.Abs(v2.V[i]-2*v1.V[i]) > 1e-6*(1+v2.V[i]) {
			t.Fatalf("stress not linear in ΔT at %d: %g vs 2×%g", i, v2.V[i], v1.V[i])
		}
	}
}

func TestDummyArrayUniformInPlane(t *testing.T) {
	// An all-dummy (pure silicon) clamped array has an x-y-uniform solution
	// away from the lateral edges.
	p, r := solveSmall(t, 3, 3, func(int, int) bool { return true })
	vm := r.VMField(p.Geom, 3, 3, 8, p.DeltaT, 4)
	// Compare the center of the middle block with a neighbouring sample.
	c1 := vm.At(12, 12)
	c2 := vm.At(13, 12)
	if math.Abs(c1-c2) > 1e-2*c1 {
		t.Errorf("homogeneous array mid-plane stress not smooth: %g vs %g", c1, c2)
	}
	if c1 <= 0 {
		t.Error("expected nonzero clamped thermal stress")
	}
}

func TestPrescribedBoundaryNeedsFunc(t *testing.T) {
	p := &Problem{
		Geom: mesh.PaperGeometry(15), Mats: material.DefaultTSVSet(),
		Res: mesh.CoarseResolution(), Bx: 1, By: 1, DeltaT: -1,
		BC: PrescribedBoundary,
	}
	if _, err := Solve(p); err == nil {
		t.Error("expected error for missing BoundaryDisp")
	}
}

func TestPrescribedFreeExpansionStressFree(t *testing.T) {
	// Same invariant as the global-stage test, at the fine-mesh level.
	geom := mesh.PaperGeometry(15)
	deltaT := -250.0
	a := material.Silicon.CTE * deltaT
	p := &Problem{
		Geom: geom, Mats: material.DefaultTSVSet(), Res: mesh.CoarseResolution(),
		Bx: 2, By: 1, IsDummy: func(int, int) bool { return true },
		DeltaT: deltaT, BC: PrescribedBoundary,
		BoundaryDisp: func(pt mesh.Vec3) [3]float64 {
			return [3]float64{a * pt.X, a * pt.Y, a * pt.Z}
		},
		Opt: solver.Options{Tol: 1e-12},
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	vm := r.VMField(geom, 2, 1, 6, deltaT, 4)
	scale := material.Silicon.ThermalStressCoeff() * math.Abs(deltaT)
	if vm.Max() > 1e-6*scale {
		t.Errorf("free expansion not stress free: %g", vm.Max())
	}
}
