package reffem

import (
	"math"
	"testing"

	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/solver"
)

// TestSingleTSVStressDecay validates the far-field physics of the TSV
// problem against the classical Lamé solution: a cylindrical inclusion in an
// (effectively) infinite matrix under thermal misfit produces an in-plane
// deviatoric stress field decaying as 1/r². We embed a single TSV in a 5×5
// dummy neighbourhood and fit the decay exponent of the von Mises deviation
// along a radial ray, away from both the via and the outer boundary.
func TestSingleTSVStressDecay(t *testing.T) {
	if testing.Short() {
		t.Skip("decay study is slow")
	}
	geom := mesh.PaperGeometry(15)
	mats := material.DefaultTSVSet()
	res := mesh.CoarseResolution()
	const nb = 5
	center := nb / 2

	single, err := Solve(&Problem{
		Geom: geom, Mats: mats, Res: res, Bx: nb, By: nb,
		IsDummy: func(bx, by int) bool { return bx != center || by != center },
		DeltaT:  -250, BC: ClampedTopBottom,
		Opt: solver.Options{Tol: 1e-10},
	})
	if err != nil {
		t.Fatal(err)
	}
	bg, err := Solve(&Problem{
		Geom: geom, Mats: mats, Res: res, Bx: nb, By: nb,
		IsDummy: func(bx, by int) bool { return true },
		DeltaT:  -250, BC: ClampedTopBottom,
		Opt: solver.Options{Tol: 1e-10},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Deviation magnitude along the +x ray from the via center at
	// mid-height. Radii from 1.5 via-radii out to ~1.5 pitches keep clear
	// of both the liner and the outer boundary.
	cx := (float64(center) + 0.5) * geom.Pitch
	zMid := geom.Height / 2
	radii := []float64{5, 7, 10, 14, 20}
	var logR, logS []float64
	for _, r := range radii {
		p := mesh.Vec3{X: cx + r, Y: cx, Z: zMid}
		ss := single.Model.StressAtPoint(single.U, -250, p)
		sb := bg.Model.StressAtPoint(bg.U, -250, p)
		var mag float64
		for c := 0; c < 6; c++ {
			d := ss[c] - sb[c]
			mag += d * d
		}
		mag = math.Sqrt(mag)
		if mag <= 0 {
			t.Fatalf("zero deviation at r=%g", r)
		}
		logR = append(logR, math.Log(r))
		logS = append(logS, math.Log(mag))
	}
	// Least-squares slope of log|Δσ| vs log r.
	slope := fitSlope(logR, logS)
	t.Logf("radial decay exponent: %.2f (Lamé: -2)", slope)
	// Clamped plates and the finite neighbourhood perturb the pure 1/r²;
	// accept a clear inverse-square-like decay.
	if slope > -1.2 || slope < -3.2 {
		t.Errorf("decay exponent %.2f outside [-3.2, -1.2]", slope)
	}
}

func fitSlope(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}
