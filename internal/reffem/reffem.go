// Package reffem is the ground-truth substitute for the commercial FEM
// baseline (ANSYS in the paper): a conventional finite-element solve of the
// entire TSV array on the full fine mesh — the same discretization the local
// stage uses per block, replicated over every block — with a
// Jacobi-preconditioned CG solver (the paper likewise sets ANSYS to its
// iterative solver for these model sizes). It also solves sub-models under
// prescribed boundary displacements for scenario 2.
package reffem

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/fem"
	"repro/internal/field"
	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/solver"
)

// BCKind selects the boundary condition, mirroring the global-stage kinds.
type BCKind int

const (
	// ClampedTopBottom fixes the top and bottom surfaces (scenario 1).
	ClampedTopBottom BCKind = iota
	// PrescribedBoundary imposes displacements on all outer boundary nodes
	// (sub-model ground truth for scenario 2).
	PrescribedBoundary
)

// Problem describes a full-array reference solve.
type Problem struct {
	Geom mesh.TSVGeometry
	Mats material.TSVSet
	// Res is the per-block fine resolution (must match the ROM's for a fair
	// error comparison).
	Res mesh.BlockResolution
	// Bx, By are the array dimensions in blocks.
	Bx, By int
	// IsDummy marks pure-silicon blocks.
	IsDummy func(bx, by int) bool
	// Kind selects the fine structure in non-dummy blocks (default TSV).
	Kind mesh.BlockKind
	// DeltaT is the thermal load in °C.
	DeltaT float64
	// DeltaTFor optionally overrides DeltaT per block (piecewise-constant
	// nonuniform thermal fields); nil means uniform DeltaT.
	DeltaTFor func(bx, by int) float64
	BC        BCKind
	// BoundaryDisp supplies prescribed boundary displacements for
	// PrescribedBoundary (global µm coordinates).
	BoundaryDisp func(p mesh.Vec3) [3]float64
	// Precond selects the CG preconditioner (default PrecondAuto, which
	// resolves by system size; the concrete kinds remain available as
	// ablations). Opt.Precond, when set, wins over this field.
	Precond solver.PrecondKind
	// Quadratic switches the discretization to 20-node serendipity
	// hexahedra (the ANSYS SOLID186 element class) for a higher-fidelity
	// ground truth on the same mesh. Not compatible with DeltaTFor.
	Quadratic bool
	Opt       solver.Options
	Workers   int
}

// Result is a completed reference solve.
type Result struct {
	Prob  *Problem
	Model *fem.Model
	// Quad is set instead of trilinear sampling when Prob.Quadratic.
	Quad *fem.QuadModel
	// U is the full displacement vector on the fine mesh.
	U     []float64
	Stats solver.Stats
	// Timings and sizes for the efficiency comparison.
	AssembleTime, SolveTime time.Duration
	DoFs                    int
	MatrixNNZ               int
}

// stressAt dispatches stress recovery to the active discretization.
func (r *Result) stressAt(deltaT float64, p mesh.Vec3) [6]float64 {
	if r.Quad != nil {
		return r.Quad.StressAtPoint(r.U, deltaT, p)
	}
	return r.Model.StressAtPoint(r.U, deltaT, p)
}

// DisplacementAt interpolates the displacement of the solved problem.
func (r *Result) DisplacementAt(p mesh.Vec3) [3]float64 {
	if r.Quad != nil {
		return r.Quad.DisplacementAtPoint(r.U, p)
	}
	return r.Model.DisplacementAtPoint(r.U, p)
}

// blockDeltaT returns the thermal load of block (bx, by).
func (p *Problem) blockDeltaT(bx, by int) float64 {
	if p.DeltaTFor != nil {
		return p.DeltaTFor(bx, by)
	}
	return p.DeltaT
}

// blockOf returns the block indices containing lateral point (x, y).
func (p *Problem) blockOf(x, y float64) (bx, by int) {
	bx = int(x / p.Geom.Pitch)
	by = int(y / p.Geom.Pitch)
	if bx < 0 {
		bx = 0
	}
	if bx >= p.Bx {
		bx = p.Bx - 1
	}
	if by < 0 {
		by = 0
	}
	if by >= p.By {
		by = p.By - 1
	}
	return bx, by
}

// referencePrecond resolves the preconditioner for a reference solve: the
// legacy Problem.Precond field folds into Opt (which wins when set), and a
// still-unresolved Auto picks solver.JacobiFamily — see that helper for why
// the size-based auto rule does not apply to the full-resolution baselines.
// Shared by the trilinear and quadratic paths.
func referencePrecond(opt solver.Options, legacy solver.PrecondKind, nfree int) solver.Options {
	if opt.Precond == solver.PrecondAuto {
		opt.Precond = legacy
	}
	if opt.Precond == solver.PrecondAuto {
		opt.Precond = solver.JacobiFamily(nfree)
	}
	return opt
}

// Solve assembles and solves the full fine-mesh array problem.
func Solve(p *Problem) (*Result, error) {
	if p.Workers <= 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	grid, err := mesh.ArrayGridOf(p.Geom, p.Res, p.Bx, p.By, p.IsDummy, p.Kind)
	if err != nil {
		return nil, err
	}
	model := &fem.Model{Grid: grid, Mats: fem.TSVMats(p.Mats)}
	if p.Quadratic {
		return solveQuadratic(p, grid, model)
	}

	tAsm := time.Now()
	asm, err := model.Assemble(p.Workers)
	if err != nil {
		return nil, err
	}

	nn := grid.NumNodes()
	isBC := make([]bool, 3*nn)
	var bcNodes []int32
	lo, hi := grid.Bounds()
	for n := 0; n < nn; n++ {
		c := grid.NodeCoord(n)
		var fixed bool
		switch p.BC {
		case ClampedTopBottom:
			fixed = c.Z == lo.Z || c.Z == hi.Z //stressvet:allow floatcmp -- grid coordinates are generated exactly; identity match selects boundary planes
		case PrescribedBoundary:
			fixed = grid.OnBoundary(n)
		}
		if fixed {
			isBC[3*n] = true
			isBC[3*n+1] = true
			isBC[3*n+2] = true
			bcNodes = append(bcNodes, int32(n))
		}
	}
	// With a nonuniform thermal field, reassemble the load with the
	// per-element ΔT (block of the element centroid).
	load := asm.F
	loadScale := p.DeltaT
	if p.DeltaTFor != nil {
		load = model.ThermalLoad(p.Workers, func(e int) float64 {
			c := grid.ElemCenter(e)
			return p.blockDeltaT(p.blockOf(c.X, c.Y))
		})
		loadScale = 1
	}
	red, err := fem.Reduce(asm.K, load, isBC)
	if err != nil {
		return nil, err
	}
	var ubc []float64
	if p.BC == PrescribedBoundary {
		if p.BoundaryDisp == nil {
			return nil, fmt.Errorf("reffem: PrescribedBoundary requires BoundaryDisp")
		}
		ubc = make([]float64, len(red.BCIdx))
		for bi, n := range bcNodes {
			d := p.BoundaryDisp(grid.NodeCoord(int(n)))
			ubc[3*bi] = d[0]
			ubc[3*bi+1] = d[1]
			ubc[3*bi+2] = d[2]
		}
	}
	rhs := red.RHS(loadScale, ubc)
	asmTime := time.Since(tAsm)

	tSolve := time.Now()
	opt := p.Opt
	if opt.Workers == 0 {
		opt.Workers = p.Workers
	}
	opt = referencePrecond(opt, p.Precond, red.NFree())
	xf, stats, err := solver.PCG(red.Aff, rhs, nil, opt)
	if err != nil {
		return nil, fmt.Errorf("reffem: solve failed: %w", err)
	}
	u := red.Expand(xf, ubc)
	return &Result{
		Prob: p, Model: model, U: u, Stats: stats,
		AssembleTime: asmTime, SolveTime: time.Since(tSolve),
		DoFs: red.NFree(), MatrixNNZ: asm.K.NNZ(),
	}, nil
}

// VMField samples the von Mises stress on the mid-height cut plane with a
// gs×gs grid per block, matching the global-stage sampling positions
// exactly (cell centers of each block's gs×gs partition). The legacy
// parameters must match the solved problem and are retained for signature
// compatibility with older callers.
func (r *Result) VMField(geom mesh.TSVGeometry, bx, by, gs int, deltaT float64, workers int) *field.Grid2D {
	return r.SampleVM(gs, workers)
}

// SampleVM samples the mid-plane von Mises field of the solved problem with
// gs samples per block edge, honoring per-block thermal loads.
//
//stressvet:gang -- `workers` goroutines over disjoint row chunks
func (r *Result) SampleVM(gs, workers int) *field.Grid2D {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := r.Prob
	out := field.New(p.Bx*gs, p.By*gs)
	zCut := p.Geom.Height / 2
	var wg sync.WaitGroup
	rows := out.NY
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for iy := lo; iy < hi; iy++ {
				y := (float64(iy) + 0.5) * p.Geom.Pitch / float64(gs)
				for ix := 0; ix < out.NX; ix++ {
					x := (float64(ix) + 0.5) * p.Geom.Pitch / float64(gs)
					dt := p.blockDeltaT(p.blockOf(x, y))
					s := r.stressAt(dt, mesh.Vec3{X: x, Y: y, Z: zCut})
					out.Set(ix, iy, fem.VonMises(s))
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
