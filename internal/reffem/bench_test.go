package reffem

import (
	"fmt"
	"testing"

	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/solver"
)

// BenchmarkAblationPrecond compares CG preconditioners on a real TSV-array
// stiffness matrix — the iterative-solver design space behind the reference
// baseline (DESIGN.md §5).
func BenchmarkAblationPrecond(b *testing.B) {
	for _, kind := range []struct {
		name string
		k    solver.PrecondKind
	}{
		{"Jacobi", solver.PrecondJacobi},
		{"BlockJacobi3", solver.PrecondBlockJacobi3},
		{"IC0", solver.PrecondIC0},
	} {
		b.Run(kind.name, func(b *testing.B) {
			var its int
			for i := 0; i < b.N; i++ {
				r, err := Solve(&Problem{
					Geom: mesh.PaperGeometry(15), Mats: material.DefaultTSVSet(),
					Res: mesh.CoarseResolution(), Bx: 3, By: 3,
					DeltaT: -250, BC: ClampedTopBottom,
					Precond: kind.k, Opt: solver.Options{Tol: 1e-8},
				})
				if err != nil {
					b.Fatal(err)
				}
				its = r.Stats.Iterations
			}
			b.ReportMetric(float64(its), "iters")
		})
	}
}

// BenchmarkReferenceScaling measures how the conventional-FEM cost grows
// with array size — the left columns of Table 1.
func BenchmarkReferenceScaling(b *testing.B) {
	for _, n := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("size=%dx%d", n, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Solve(&Problem{
					Geom: mesh.PaperGeometry(15), Mats: material.DefaultTSVSet(),
					Res: mesh.CoarseResolution(), Bx: n, By: n,
					DeltaT: -250, BC: ClampedTopBottom,
					Opt: solver.Options{Tol: 1e-8},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
