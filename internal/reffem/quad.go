package reffem

import (
	"fmt"
	"time"

	"repro/internal/fem"
	"repro/internal/mesh"
	"repro/internal/solver"
)

// solveQuadratic runs the reference solve with 20-node serendipity elements
// on the same grid (the commercial-grade element class).
func solveQuadratic(p *Problem, grid *mesh.Grid, model *fem.Model) (*Result, error) {
	if p.DeltaTFor != nil {
		return nil, fmt.Errorf("reffem: quadratic reference does not support per-block thermal loads")
	}
	qm := fem.NewQuadModel(grid, model.Mats)

	tAsm := time.Now()
	asm, err := qm.Assemble(p.Workers)
	if err != nil {
		return nil, err
	}
	nn := qm.NumNodes()
	isBC := make([]bool, 3*nn)
	lo, hi := grid.Bounds()
	for id := 0; id < nn; id++ {
		if !asm.ActiveNode[id] {
			isBC[3*id], isBC[3*id+1], isBC[3*id+2] = true, true, true
			continue
		}
		c := qm.NodeCoord(id)
		var fixed bool
		switch p.BC {
		case ClampedTopBottom:
			fixed = c.Z == lo.Z || c.Z == hi.Z //stressvet:allow floatcmp -- grid coordinates are generated exactly; identity match selects boundary planes
		case PrescribedBoundary:
			fixed = qm.OnBoundary(id)
		}
		if fixed {
			isBC[3*id], isBC[3*id+1], isBC[3*id+2] = true, true, true
		}
	}
	red, err := fem.Reduce(asm.K, asm.F, isBC)
	if err != nil {
		return nil, err
	}
	var ubc []float64
	if p.BC == PrescribedBoundary {
		if p.BoundaryDisp == nil {
			return nil, fmt.Errorf("reffem: PrescribedBoundary requires BoundaryDisp")
		}
		ubc = make([]float64, len(red.BCIdx))
		for bi, full := range red.BCIdx {
			id := int(full / 3)
			if !asm.ActiveNode[id] {
				continue
			}
			d := p.BoundaryDisp(qm.NodeCoord(id))
			ubc[bi] = d[full%3]
		}
	}
	rhs := red.RHS(p.DeltaT, ubc)
	asmTime := time.Since(tAsm)

	tSolve := time.Now()
	opt := p.Opt
	if opt.Workers == 0 {
		opt.Workers = p.Workers
	}
	opt = referencePrecond(opt, p.Precond, red.NFree())
	xf, stats, err := solver.PCG(red.Aff, rhs, nil, opt)
	if err != nil {
		return nil, fmt.Errorf("reffem: quadratic solve failed: %w", err)
	}
	u := red.Expand(xf, ubc)
	return &Result{
		Prob: p, Model: model, Quad: qm, U: u, Stats: stats,
		AssembleTime: asmTime, SolveTime: time.Since(tSolve),
		DoFs: red.NFree(), MatrixNNZ: asm.K.NNZ(),
	}, nil
}
