package mesh

import "strings"

// materialGlyphs maps material ids to display characters for RenderSlice;
// ids beyond the table wrap around, void renders as space.
var materialGlyphs = []byte{'.', '#', 'o', '+', '*', '=', '%'}

// RenderSlice returns an ASCII picture of the element materials on the
// horizontal cut through height z (one character per element column, y rows
// top to bottom). It is a debugging and documentation aid for inspecting
// classifier output: '.' silicon, '#' copper, 'o' liner, space void.
func (g *Grid) RenderSlice(z float64) string {
	k := LocateAxis(g.Zs, z)
	var sb strings.Builder
	for j := g.NEY() - 1; j >= 0; j-- {
		for i := 0; i < g.NEX(); i++ {
			id := g.MatID[g.ElemIndex(i, j, k)]
			if id == VoidMaterial {
				sb.WriteByte(' ')
				continue
			}
			sb.WriteByte(materialGlyphs[int(id)%len(materialGlyphs)])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// MaterialCounts tallies elements per material id (void included under
// VoidMaterial).
func (g *Grid) MaterialCounts() map[uint8]int {
	out := make(map[uint8]int)
	for _, id := range g.MatID {
		out[id]++
	}
	return out
}

// Volume returns the total volume of non-void elements.
func (g *Grid) Volume() float64 {
	var v float64
	for e := 0; e < g.NumElems(); e++ {
		if g.MatID[e] == VoidMaterial {
			continue
		}
		hx, hy, hz := g.ElemSize(e)
		v += hx * hy * hz
	}
	return v
}

// MaterialVolume returns the volume occupied by the given material id.
func (g *Grid) MaterialVolume(id uint8) float64 {
	var v float64
	for e := 0; e < g.NumElems(); e++ {
		if g.MatID[e] != id {
			continue
		}
		hx, hy, hz := g.ElemSize(e)
		v += hx * hy * hz
	}
	return v
}
