package mesh

import "fmt"

// BlockKind selects the fine structure inside a unit block. The MORE-Stress
// methodology is structure-agnostic (§4.1, §6 of the paper: "adaptable to
// other types of fine structures … micro bumps, pillars, direct bondings");
// each kind only changes the material classifier of the local fine mesh.
type BlockKind int

const (
	// KindTSV is the paper's structure: copper via + dielectric liner in
	// silicon.
	KindTSV BlockKind = iota
	// KindDummy is a homogeneous bulk block (§4.4 padding).
	KindDummy
	// KindPillar is a linerless cylinder of via material in bulk — the
	// voxel model of a copper pillar or micro bump in underfill/silicon.
	KindPillar
	// KindAnnular is a hollow cylinder (annulus) of via material with bulk
	// core and surround — the voxel model of an annular TSV / direct-bond
	// ring structure. The wall spans [d/2 − t, d/2] with t the Liner value.
	KindAnnular
)

// String implements fmt.Stringer.
func (k BlockKind) String() string {
	switch k {
	case KindTSV:
		return "tsv"
	case KindDummy:
		return "dummy"
	case KindPillar:
		return "pillar"
	case KindAnnular:
		return "annular"
	}
	return fmt.Sprintf("BlockKind(%d)", int(k))
}

// Classifier returns the material classifier for a structure of this kind
// centered on the axis through c.
func (k BlockKind) Classifier(geom TSVGeometry, c Vec3) (func(Vec3) uint8, error) {
	rVia := geom.Diameter / 2
	switch k {
	case KindTSV:
		if geom.Liner <= 0 {
			return nil, fmt.Errorf("mesh: TSV structure needs a positive liner thickness")
		}
		return TSVClassifier(geom, c), nil
	case KindDummy:
		return func(Vec3) uint8 { return MatSilicon }, nil
	case KindPillar:
		return func(p Vec3) uint8 {
			if inRadius(p, c, rVia) {
				return MatCopper
			}
			return MatSilicon
		}, nil
	case KindAnnular:
		if geom.Liner <= 0 || geom.Liner >= rVia {
			return nil, fmt.Errorf("mesh: annular wall thickness %g must lie in (0, d/2)", geom.Liner)
		}
		inner := rVia - geom.Liner
		return func(p Vec3) uint8 {
			switch {
			case inRadius(p, c, inner):
				return MatSilicon
			case inRadius(p, c, rVia):
				return MatCopper
			default:
				return MatSilicon
			}
		}, nil
	}
	return nil, fmt.Errorf("mesh: unknown block kind %d", int(k))
}

func inRadius(p, c Vec3, r float64) bool {
	dx, dy := p.X-c.X, p.Y-c.Y
	return dx*dx+dy*dy <= r*r
}

// NewBlock meshes a unit block containing the given structure kind. The
// grading of the lateral axes aligns grid lines with the structure's
// characteristic radii exactly as for TSVs.
func NewBlock(geom TSVGeometry, res BlockResolution, kind BlockKind) (*Grid, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	center := Vec3{X: geom.Pitch / 2, Y: geom.Pitch / 2}
	classify, err := kind.Classifier(geom, center)
	if err != nil {
		return nil, err
	}
	ax := BlockAxis(geom, res)
	zs := UniformAxis(0, geom.Height, res.ZCells)
	g, err := NewGrid(ax, append([]float64(nil), ax...), zs)
	if err != nil {
		return nil, err
	}
	g.AssignMaterials(classify)
	return g, nil
}
