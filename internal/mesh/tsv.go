package mesh

import (
	"fmt"
	"math"
	"sort"
)

// Material ids used by TSV block grids.
const (
	MatSilicon uint8 = 0
	MatCopper  uint8 = 1
	MatLiner   uint8 = 2
)

// TSVGeometry describes the simplified TSV structure of the paper (Fig. 2):
// a copper cylinder of diameter D and height H, wrapped by a dielectric
// liner of thickness T, centered in a silicon block of footprint P×P.
// All lengths in µm.
type TSVGeometry struct {
	Height   float64 // h: via / block height
	Diameter float64 // d: copper body diameter
	Liner    float64 // t: liner thickness
	Pitch    float64 // p: block footprint edge (TSV pitch)
}

// PaperGeometry returns the geometry of the paper's experiments:
// h = 50 µm, d = 5 µm, t = 0.5 µm, with the given pitch (15 or 10 µm).
func PaperGeometry(pitch float64) TSVGeometry {
	return TSVGeometry{Height: 50, Diameter: 5, Liner: 0.5, Pitch: pitch}
}

// Validate checks geometric consistency. A zero liner thickness is allowed
// (linerless structures such as copper pillars and micro bumps).
func (g TSVGeometry) Validate() error {
	if g.Height <= 0 || g.Diameter <= 0 || g.Liner < 0 || g.Pitch <= 0 {
		return fmt.Errorf("mesh: TSV geometry must be positive: %+v", g)
	}
	if g.Diameter+2*g.Liner >= g.Pitch {
		return fmt.Errorf("mesh: via + liner (%g) exceeds pitch (%g)", g.Diameter+2*g.Liner, g.Pitch)
	}
	return nil
}

// BlockResolution controls the fine mesh density of a unit block.
type BlockResolution struct {
	// RadialCells is the number of cells across the via radius (grid lines
	// are aligned to the via and liner radii; the liner gets one dedicated
	// cell band). Typical: 3–5.
	RadialCells int
	// OuterCells is the number of (geometrically graded) cells from the
	// liner to the block edge on each side. Typical: 4–8.
	OuterCells int
	// ZCells is the number of cells through the height. Typical: 6–12.
	ZCells int
}

// DefaultResolution is a balanced accuracy/cost setting used by the
// experiments (≈15×15×8 cells per block).
func DefaultResolution() BlockResolution {
	return BlockResolution{RadialCells: 3, OuterCells: 5, ZCells: 8}
}

// CoarseResolution is a cheap setting for unit tests.
func CoarseResolution() BlockResolution {
	return BlockResolution{RadialCells: 2, OuterCells: 3, ZCells: 4}
}

// BlockAxis constructs the graded 1-D node coordinates for one lateral axis
// of a unit block: fine, uniform cells across the via, one cell band for the
// liner, and geometrically graded cells out to the block boundary, all
// mirrored about the center. Grid lines land exactly on ±d/2 and ±(d/2+t)
// so that the liner is resolved by construction.
func BlockAxis(geom TSVGeometry, res BlockResolution) []float64 {
	c := geom.Pitch / 2
	rVia := geom.Diameter / 2
	rLiner := rVia + geom.Liner
	set := map[float64]struct{}{}
	add := func(v float64) { set[v] = struct{}{} }

	// Via interior: uniform across [-rVia, rVia].
	nv := res.RadialCells * 2
	for i := 0; i <= nv; i++ {
		add(c - rVia + 2*rVia*float64(i)/float64(nv))
	}
	// Liner band: single cell each side.
	add(c - rLiner)
	add(c + rLiner)
	// Outer region: geometric grading from rLiner to p/2 on each side.
	outer := c - rLiner // distance from liner to block edge
	n := res.OuterCells
	ratio := 1.6
	// Sum of geometric series defines the first (finest) cell size.
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(ratio, float64(i))
	}
	h0 := outer / sum
	pos := 0.0
	for i := 0; i < n-1; i++ {
		pos += h0 * math.Pow(ratio, float64(i))
		add(c + rLiner + pos)
		add(c - rLiner - pos)
	}
	add(0)
	add(geom.Pitch)

	out := make([]float64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Float64s(out)
	// Remove near-duplicates from floating-point keys.
	dedup := out[:1]
	for _, v := range out[1:] {
		if v-dedup[len(dedup)-1] > 1e-9*geom.Pitch {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

// NewTSVBlock meshes a single unit block (Fig. 3(b,c)): a P×P×H box with a
// TSV in the middle when withVia is true, or pure silicon (a "dummy" block,
// §4.4) when false.
func NewTSVBlock(geom TSVGeometry, res BlockResolution, withVia bool) (*Grid, error) {
	kind := KindTSV
	if !withVia {
		kind = KindDummy
	}
	return NewBlock(geom, res, kind)
}

// TSVClassifier returns a material classifier for a TSV whose axis passes
// through (center.X, center.Y): copper inside the via radius, liner in the
// annulus, silicon outside.
func TSVClassifier(geom TSVGeometry, center Vec3) func(Vec3) uint8 {
	rVia := geom.Diameter / 2
	rLiner := rVia + geom.Liner
	return func(p Vec3) uint8 {
		dx, dy := p.X-center.X, p.Y-center.Y
		r := math.Hypot(dx, dy)
		switch {
		case r <= rVia:
			return MatCopper
		case r <= rLiner:
			return MatLiner
		default:
			return MatSilicon
		}
	}
}

// ArrayGrid meshes a full Bx×By array of TSV unit blocks at the block fine
// resolution (the reference-FEM discretization). dummy may be nil.
func ArrayGrid(geom TSVGeometry, res BlockResolution, bx, by int, dummy func(bx, by int) bool) (*Grid, error) {
	return ArrayGridOf(geom, res, bx, by, dummy, KindTSV)
}

// ArrayGridOf meshes a full Bx×By array of unit blocks containing the given
// structure kind: per-axis coordinates are the block axis replicated with
// shared boundaries, and each non-dummy block gets the kind's material
// classifier at its center. dummy may be nil (no dummies).
func ArrayGridOf(geom TSVGeometry, res BlockResolution, bx, by int, dummy func(bx, by int) bool, kind BlockKind) (*Grid, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if bx < 1 || by < 1 {
		return nil, fmt.Errorf("mesh: array dimensions must be positive, got %d×%d", bx, by)
	}
	// Validate the classifier once (per-block classifiers only shift the
	// center).
	if _, err := kind.Classifier(geom, Vec3{}); err != nil {
		return nil, err
	}
	blockAx := BlockAxis(geom, res)
	xs := ReplicateAxis(blockAx, bx)
	ys := ReplicateAxis(blockAx, by)
	zs := UniformAxis(0, geom.Height, res.ZCells)
	g, err := NewGrid(xs, ys, zs)
	if err != nil {
		return nil, err
	}
	p := geom.Pitch
	classifiers := make([]func(Vec3) uint8, bx*by)
	for iy := 0; iy < by; iy++ {
		for ix := 0; ix < bx; ix++ {
			center := Vec3{X: (float64(ix) + 0.5) * p, Y: (float64(iy) + 0.5) * p}
			cl, err := kind.Classifier(geom, center)
			if err != nil {
				return nil, err
			}
			classifiers[iy*bx+ix] = cl
		}
	}
	g.AssignMaterials(func(c Vec3) uint8 {
		ix := int(c.X / p)
		iy := int(c.Y / p)
		if ix >= bx {
			ix = bx - 1
		}
		if iy >= by {
			iy = by - 1
		}
		if dummy != nil && dummy(ix, iy) {
			return MatSilicon
		}
		return classifiers[iy*bx+ix](c)
	})
	return g, nil
}

// ReplicateAxis tiles a single-block axis (spanning [0, p]) n times,
// merging the shared boundaries, to produce the array axis [0, n·p].
func ReplicateAxis(blockAx []float64, n int) []float64 {
	p := blockAx[len(blockAx)-1]
	out := make([]float64, 0, n*(len(blockAx)-1)+1)
	out = append(out, blockAx[0])
	for b := 0; b < n; b++ {
		off := float64(b) * p
		for _, v := range blockAx[1:] {
			out = append(out, off+v)
		}
	}
	return out
}
