package mesh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid([]float64{0}, []float64{0, 1}, []float64{0, 1}); err == nil {
		t.Error("expected error for short axis")
	}
	if _, err := NewGrid([]float64{0, 0}, []float64{0, 1}, []float64{0, 1}); err == nil {
		t.Error("expected error for non-increasing axis")
	}
	g, err := NewGrid([]float64{0, 1, 2}, []float64{0, 1}, []float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumElems() != 2 || g.NumNodes() != 3*2*2 {
		t.Errorf("counts: %d elems %d nodes", g.NumElems(), g.NumNodes())
	}
}

func TestNodeIndexRoundTrip(t *testing.T) {
	g, _ := NewGrid(UniformAxis(0, 3, 3), UniformAxis(0, 2, 2), UniformAxis(0, 4, 4))
	for n := 0; n < g.NumNodes(); n++ {
		i, j, k := g.NodeIJK(n)
		if g.NodeIndex(i, j, k) != n {
			t.Fatalf("round trip failed for node %d", n)
		}
	}
}

func TestElemIndexRoundTrip(t *testing.T) {
	g, _ := NewGrid(UniformAxis(0, 3, 3), UniformAxis(0, 2, 2), UniformAxis(0, 4, 4))
	for e := 0; e < g.NumElems(); e++ {
		i, j, k := g.ElemIJK(e)
		if g.ElemIndex(i, j, k) != e {
			t.Fatalf("round trip failed for elem %d", e)
		}
	}
}

func TestElemNodesOrientation(t *testing.T) {
	g, _ := NewGrid(UniformAxis(0, 2, 2), UniformAxis(0, 2, 2), UniformAxis(0, 2, 2))
	nodes := g.ElemNodes(g.ElemIndex(0, 0, 0))
	// VTK order: node 0 at origin, node 6 at opposite corner.
	c0 := g.NodeCoord(int(nodes[0]))
	c6 := g.NodeCoord(int(nodes[6]))
	if c0.X != 0 || c0.Y != 0 || c0.Z != 0 {
		t.Errorf("node 0 at %v", c0)
	}
	if c6.X != 1 || c6.Y != 1 || c6.Z != 1 {
		t.Errorf("node 6 at %v", c6)
	}
	// All 8 nodes distinct.
	seen := map[int32]bool{}
	for _, n := range nodes {
		if seen[n] {
			t.Fatal("duplicate node in element")
		}
		seen[n] = true
	}
}

func TestLocate(t *testing.T) {
	g, _ := NewGrid(UniformAxis(0, 10, 5), UniformAxis(0, 10, 5), UniformAxis(0, 4, 2))
	f := func(px, py, pz float64) bool {
		p := Vec3{math.Mod(math.Abs(px), 10), math.Mod(math.Abs(py), 10), math.Mod(math.Abs(pz), 4)}
		e, xi, eta, zeta := g.Locate(p)
		if e < 0 || e >= g.NumElems() {
			return false
		}
		if xi < -1 || xi > 1 || eta < -1 || eta > 1 || zeta < -1 || zeta > 1 {
			return false
		}
		// Element must contain the point.
		o := g.ElemOrigin(e)
		hx, hy, hz := g.ElemSize(e)
		const eps = 1e-9
		return p.X >= o.X-eps && p.X <= o.X+hx+eps &&
			p.Y >= o.Y-eps && p.Y <= o.Y+hy+eps &&
			p.Z >= o.Z-eps && p.Z <= o.Z+hz+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLocateClampsOutside(t *testing.T) {
	g, _ := NewGrid(UniformAxis(0, 1, 2), UniformAxis(0, 1, 2), UniformAxis(0, 1, 2))
	e, xi, _, _ := g.Locate(Vec3{X: -5, Y: 0.5, Z: 0.5})
	if e < 0 || xi != -1 {
		t.Errorf("clamp failed: e=%d xi=%g", e, xi)
	}
}

func TestBoundaryNodes(t *testing.T) {
	g, _ := NewGrid(UniformAxis(0, 1, 3), UniformAxis(0, 1, 3), UniformAxis(0, 1, 3))
	bn := g.BoundaryNodes()
	// 4×4×4 lattice: 64 − 8 interior = 56 boundary nodes.
	if len(bn) != 56 {
		t.Fatalf("boundary nodes %d, want 56", len(bn))
	}
	for _, n := range bn {
		if !g.OnBoundary(int(n)) {
			t.Fatal("BoundaryNodes returned interior node")
		}
	}
}

func TestTSVGeometryValidate(t *testing.T) {
	if err := PaperGeometry(15).Validate(); err != nil {
		t.Error(err)
	}
	bad := TSVGeometry{Height: 50, Diameter: 10, Liner: 3, Pitch: 15}
	if err := bad.Validate(); err == nil {
		t.Error("expected error: via+liner exceeds pitch")
	}
	if err := (TSVGeometry{}).Validate(); err == nil {
		t.Error("expected error: zero geometry")
	}
}

func TestBlockAxisProperties(t *testing.T) {
	geom := PaperGeometry(15)
	res := DefaultResolution()
	ax := BlockAxis(geom, res)
	// Strictly increasing, spanning [0, p].
	if ax[0] != 0 || ax[len(ax)-1] != geom.Pitch {
		t.Fatalf("axis span [%g, %g]", ax[0], ax[len(ax)-1])
	}
	for i := 1; i < len(ax); i++ {
		if ax[i] <= ax[i-1] {
			t.Fatal("axis not strictly increasing")
		}
	}
	// Must contain grid lines at via and liner radii (both sides).
	c := geom.Pitch / 2
	for _, want := range []float64{c - geom.Diameter/2, c + geom.Diameter/2,
		c - geom.Diameter/2 - geom.Liner, c + geom.Diameter/2 + geom.Liner} {
		found := false
		for _, v := range ax {
			if math.Abs(v-want) < 1e-9 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("axis missing required grid line at %g", want)
		}
	}
	// Symmetric about the center.
	for i := range ax {
		mirror := geom.Pitch - ax[len(ax)-1-i]
		if math.Abs(ax[i]-mirror) > 1e-9 {
			t.Errorf("axis asymmetric at %d: %g vs %g", i, ax[i], mirror)
		}
	}
}

func TestNewTSVBlockMaterials(t *testing.T) {
	geom := PaperGeometry(15)
	g, err := NewTSVBlock(geom, CoarseResolution(), true)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint8]int{}
	for _, id := range g.MatID {
		counts[id]++
	}
	if counts[MatCopper] == 0 || counts[MatLiner] == 0 || counts[MatSilicon] == 0 {
		t.Fatalf("expected all three materials, got %v", counts)
	}
	// Center element must be copper.
	e, _, _, _ := g.Locate(Vec3{X: geom.Pitch / 2, Y: geom.Pitch / 2, Z: geom.Height / 2})
	if g.MatID[e] != MatCopper {
		t.Errorf("center element material %d", g.MatID[e])
	}
	// Corner element must be silicon.
	e, _, _, _ = g.Locate(Vec3{X: 0.1, Y: 0.1, Z: 1})
	if g.MatID[e] != MatSilicon {
		t.Errorf("corner element material %d", g.MatID[e])
	}

	// Dummy block is all silicon.
	gd, err := NewTSVBlock(geom, CoarseResolution(), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range gd.MatID {
		if id != MatSilicon {
			t.Fatal("dummy block contains non-silicon elements")
		}
	}
}

func TestReplicateAxis(t *testing.T) {
	block := []float64{0, 1, 3}
	arr := ReplicateAxis(block, 3)
	want := []float64{0, 1, 3, 4, 6, 7, 9}
	if len(arr) != len(want) {
		t.Fatalf("len %d, want %d", len(arr), len(want))
	}
	for i := range want {
		if math.Abs(arr[i]-want[i]) > 1e-12 {
			t.Errorf("arr[%d] = %g, want %g", i, arr[i], want[i])
		}
	}
}

func TestArrayGrid(t *testing.T) {
	geom := PaperGeometry(10)
	g, err := ArrayGrid(geom, CoarseResolution(), 2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := g.Bounds()
	if lo.X != 0 || hi.X != 2*geom.Pitch || hi.Y != 3*geom.Pitch || hi.Z != geom.Height {
		t.Errorf("bounds %v %v", lo, hi)
	}
	// Each block center must be copper.
	for by := 0; by < 3; by++ {
		for bx := 0; bx < 2; bx++ {
			p := Vec3{X: (float64(bx) + 0.5) * geom.Pitch, Y: (float64(by) + 0.5) * geom.Pitch, Z: geom.Height / 2}
			e, _, _, _ := g.Locate(p)
			if g.MatID[e] != MatCopper {
				t.Errorf("block (%d,%d) center not copper", bx, by)
			}
		}
	}
}

func TestArrayGridDummies(t *testing.T) {
	geom := PaperGeometry(10)
	dummy := func(bx, by int) bool { return bx == 0 }
	g, err := ArrayGrid(geom, CoarseResolution(), 2, 2, dummy)
	if err != nil {
		t.Fatal(err)
	}
	p := Vec3{X: 0.5 * geom.Pitch, Y: 0.5 * geom.Pitch, Z: geom.Height / 2}
	e, _, _, _ := g.Locate(p)
	if g.MatID[e] != MatSilicon {
		t.Error("dummy block center should be silicon")
	}
	p.X = 1.5 * geom.Pitch
	e, _, _, _ = g.Locate(p)
	if g.MatID[e] != MatCopper {
		t.Error("TSV block center should be copper")
	}
}

func TestActiveNodes(t *testing.T) {
	g, _ := NewGrid(UniformAxis(0, 2, 2), UniformAxis(0, 1, 1), UniformAxis(0, 1, 1))
	// Mark one of the two elements void.
	g.MatID[1] = VoidMaterial
	active := g.ActiveNodes()
	nActive := 0
	for _, a := range active {
		if a {
			nActive++
		}
	}
	// The void element's far face (4 nodes) is inactive.
	if nActive != g.NumNodes()-4 {
		t.Errorf("active nodes %d, want %d", nActive, g.NumNodes()-4)
	}
}

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if s := a.Add(b); s != (Vec3{5, 7, 9}) {
		t.Errorf("Add: %v", s)
	}
	if d := b.Sub(a); d != (Vec3{3, 3, 3}) {
		t.Errorf("Sub: %v", d)
	}
}

func TestUniformAxis(t *testing.T) {
	ax := UniformAxis(0, 1, 4)
	if len(ax) != 5 || ax[0] != 0 || ax[4] != 1 {
		t.Errorf("UniformAxis: %v", ax)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		lo := rng.NormFloat64()
		hi := lo + 1 + rng.Float64()
		n := 1 + rng.Intn(20)
		ax := UniformAxis(lo, hi, n)
		if ax[0] != lo || ax[n] != hi {
			t.Fatalf("endpoints wrong: %v", ax)
		}
	}
}
