package mesh

import (
	"math"
	"strings"
	"testing"
)

func TestRenderSlice(t *testing.T) {
	g, err := NewTSVBlock(PaperGeometry(15), CoarseResolution(), true)
	if err != nil {
		t.Fatal(err)
	}
	pic := g.RenderSlice(25)
	lines := strings.Split(strings.TrimRight(pic, "\n"), "\n")
	if len(lines) != g.NEY() {
		t.Fatalf("render has %d lines, want %d", len(lines), g.NEY())
	}
	if !strings.Contains(pic, "#") {
		t.Error("copper missing from slice")
	}
	if !strings.Contains(pic, "o") {
		t.Error("liner missing from slice")
	}
	if !strings.Contains(pic, ".") {
		t.Error("silicon missing from slice")
	}
	// The picture is mirror symmetric (the block is).
	for _, ln := range lines {
		rev := reverse(ln)
		if ln != rev {
			t.Fatalf("slice row not symmetric: %q", ln)
		}
	}
}

func TestRenderSliceVoid(t *testing.T) {
	g, _ := NewGrid(UniformAxis(0, 2, 2), UniformAxis(0, 1, 1), UniformAxis(0, 1, 1))
	g.MatID[1] = VoidMaterial
	pic := g.RenderSlice(0.5)
	if !strings.Contains(pic, " ") {
		t.Error("void element should render as space")
	}
}

func TestMaterialCountsAndVolume(t *testing.T) {
	geom := PaperGeometry(15)
	g, err := NewTSVBlock(geom, DefaultResolution(), true)
	if err != nil {
		t.Fatal(err)
	}
	counts := g.MaterialCounts()
	if counts[MatCopper] == 0 || counts[MatLiner] == 0 {
		t.Fatalf("missing materials: %v", counts)
	}
	total := g.Volume()
	want := geom.Pitch * geom.Pitch * geom.Height
	if math.Abs(total-want) > 1e-6*want {
		t.Errorf("total volume %g, want %g", total, want)
	}
	// Copper volume should approximate the via cylinder within the voxel
	// resolution (±35%).
	vCu := g.MaterialVolume(MatCopper)
	cyl := math.Pi * geom.Diameter * geom.Diameter / 4 * geom.Height
	if vCu < 0.65*cyl || vCu > 1.35*cyl {
		t.Errorf("copper volume %g vs cylinder %g", vCu, cyl)
	}
	// Volumes partition the total.
	sum := 0.0
	for id, c := range counts {
		if c > 0 {
			sum += g.MaterialVolume(id)
		}
	}
	if math.Abs(sum-total) > 1e-6*total {
		t.Errorf("material volumes sum to %g, want %g", sum, total)
	}
}

func reverse(s string) string {
	b := []byte(s)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}
