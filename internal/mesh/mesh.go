// Package mesh provides structured hexahedral meshes over axis-aligned
// boxes with per-axis node coordinates (allowing graded spacing) and
// per-element material identifiers. It is the discretization substrate for
// both the unit-block local stage and the full-array reference FEM.
package mesh

import (
	"fmt"
	"sort"
)

// Vec3 is a point or displacement in 3-D space (µm).
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v − w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// VoidMaterial marks elements that are absent from the model (used for the
// stepped chiplet geometry); they contribute no stiffness and their isolated
// nodes are excluded from the system.
const VoidMaterial = 255

// Grid is a structured hexahedral mesh. The node lattice has
// (len(Xs))×(len(Ys))×(len(Zs)) nodes; elements fill the cells between
// consecutive coordinates. MatID assigns a material to every element.
type Grid struct {
	Xs, Ys, Zs []float64 // strictly increasing node coordinates per axis
	MatID      []uint8   // len NumElems(), indexed by ElemIndex
}

// NewGrid builds a grid from per-axis node coordinates, validating
// monotonicity. Materials default to 0.
func NewGrid(xs, ys, zs []float64) (*Grid, error) {
	for _, ax := range [][]float64{xs, ys, zs} {
		if len(ax) < 2 {
			return nil, fmt.Errorf("mesh: axis needs at least 2 coordinates, got %d", len(ax))
		}
		for i := 1; i < len(ax); i++ {
			if ax[i] <= ax[i-1] {
				return nil, fmt.Errorf("mesh: axis coordinates must be strictly increasing (index %d: %g <= %g)", i, ax[i], ax[i-1])
			}
		}
	}
	g := &Grid{Xs: xs, Ys: ys, Zs: zs}
	g.MatID = make([]uint8, g.NumElems())
	return g, nil
}

// UniformAxis returns n+1 equally spaced coordinates spanning [lo, hi].
func UniformAxis(lo, hi float64, n int) []float64 {
	out := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		out[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	out[n] = hi
	return out
}

// NEX, NEY, NEZ return the element counts along each axis.
func (g *Grid) NEX() int { return len(g.Xs) - 1 }
func (g *Grid) NEY() int { return len(g.Ys) - 1 }
func (g *Grid) NEZ() int { return len(g.Zs) - 1 }

// NumNodes returns the node count.
func (g *Grid) NumNodes() int { return len(g.Xs) * len(g.Ys) * len(g.Zs) }

// NumElems returns the element count.
func (g *Grid) NumElems() int { return g.NEX() * g.NEY() * g.NEZ() }

// NodeIndex returns the linear index of lattice node (i, j, k); i varies
// fastest.
func (g *Grid) NodeIndex(i, j, k int) int {
	return i + len(g.Xs)*(j+len(g.Ys)*k)
}

// NodeIJK inverts NodeIndex.
func (g *Grid) NodeIJK(n int) (i, j, k int) {
	nx := len(g.Xs)
	ny := len(g.Ys)
	i = n % nx
	j = (n / nx) % ny
	k = n / (nx * ny)
	return i, j, k
}

// NodeCoord returns the coordinates of node n.
func (g *Grid) NodeCoord(n int) Vec3 {
	i, j, k := g.NodeIJK(n)
	return Vec3{g.Xs[i], g.Ys[j], g.Zs[k]}
}

// ElemIndex returns the linear index of element cell (i, j, k).
func (g *Grid) ElemIndex(i, j, k int) int {
	return i + g.NEX()*(j+g.NEY()*k)
}

// ElemIJK inverts ElemIndex.
func (g *Grid) ElemIJK(e int) (i, j, k int) {
	nx, ny := g.NEX(), g.NEY()
	i = e % nx
	j = (e / nx) % ny
	k = e / (nx * ny)
	return i, j, k
}

// ElemNodes returns the 8 node indices of element e in VTK hexahedron order:
// bottom face (0,0,0)(1,0,0)(1,1,0)(0,1,0), then the top face.
func (g *Grid) ElemNodes(e int) [8]int32 {
	i, j, k := g.ElemIJK(e)
	return [8]int32{
		int32(g.NodeIndex(i, j, k)),
		int32(g.NodeIndex(i+1, j, k)),
		int32(g.NodeIndex(i+1, j+1, k)),
		int32(g.NodeIndex(i, j+1, k)),
		int32(g.NodeIndex(i, j, k+1)),
		int32(g.NodeIndex(i+1, j, k+1)),
		int32(g.NodeIndex(i+1, j+1, k+1)),
		int32(g.NodeIndex(i, j+1, k+1)),
	}
}

// ElemSize returns the edge lengths (hx, hy, hz) of element e.
func (g *Grid) ElemSize(e int) (hx, hy, hz float64) {
	i, j, k := g.ElemIJK(e)
	return g.Xs[i+1] - g.Xs[i], g.Ys[j+1] - g.Ys[j], g.Zs[k+1] - g.Zs[k]
}

// ElemCenter returns the centroid of element e.
func (g *Grid) ElemCenter(e int) Vec3 {
	i, j, k := g.ElemIJK(e)
	return Vec3{
		(g.Xs[i] + g.Xs[i+1]) / 2,
		(g.Ys[j] + g.Ys[j+1]) / 2,
		(g.Zs[k] + g.Zs[k+1]) / 2,
	}
}

// ElemOrigin returns the minimum-corner coordinates of element e.
func (g *Grid) ElemOrigin(e int) Vec3 {
	i, j, k := g.ElemIJK(e)
	return Vec3{g.Xs[i], g.Ys[j], g.Zs[k]}
}

// AssignMaterials sets each element's material from its centroid.
func (g *Grid) AssignMaterials(classify func(center Vec3) uint8) {
	for e := range g.MatID {
		g.MatID[e] = classify(g.ElemCenter(e))
	}
}

// Bounds returns the min and max corners of the grid.
func (g *Grid) Bounds() (lo, hi Vec3) {
	return Vec3{g.Xs[0], g.Ys[0], g.Zs[0]},
		Vec3{g.Xs[len(g.Xs)-1], g.Ys[len(g.Ys)-1], g.Zs[len(g.Zs)-1]}
}

// LocateAxis returns the cell index c such that ax[c] <= v <= ax[c+1],
// clamping to the valid range; used to find the element containing a point.
func LocateAxis(ax []float64, v float64) int {
	c := sort.SearchFloat64s(ax, v) - 1
	if c < 0 {
		c = 0
	}
	if c > len(ax)-2 {
		c = len(ax) - 2
	}
	return c
}

// Locate returns the element containing point p and the local reference
// coordinates (ξ, η, ζ) ∈ [−1, 1]³ of p within it. Points outside the grid
// are clamped to the nearest boundary element.
func (g *Grid) Locate(p Vec3) (e int, xi, eta, zeta float64) {
	ci := LocateAxis(g.Xs, p.X)
	cj := LocateAxis(g.Ys, p.Y)
	ck := LocateAxis(g.Zs, p.Z)
	e = g.ElemIndex(ci, cj, ck)
	xi = ref1D(g.Xs[ci], g.Xs[ci+1], p.X)
	eta = ref1D(g.Ys[cj], g.Ys[cj+1], p.Y)
	zeta = ref1D(g.Zs[ck], g.Zs[ck+1], p.Z)
	return e, xi, eta, zeta
}

func ref1D(lo, hi, v float64) float64 {
	t := 2*(v-lo)/(hi-lo) - 1
	if t < -1 {
		t = -1
	}
	if t > 1 {
		t = 1
	}
	return t
}

// BoundaryNodes returns the indices of nodes on any of the six outer faces.
func (g *Grid) BoundaryNodes() []int32 {
	var out []int32
	nx, ny, nz := len(g.Xs), len(g.Ys), len(g.Zs)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				if i == 0 || i == nx-1 || j == 0 || j == ny-1 || k == 0 || k == nz-1 {
					out = append(out, int32(g.NodeIndex(i, j, k)))
				}
			}
		}
	}
	return out
}

// OnBoundary reports whether node n lies on any outer face.
func (g *Grid) OnBoundary(n int) bool {
	i, j, k := g.NodeIJK(n)
	return i == 0 || i == len(g.Xs)-1 || j == 0 || j == len(g.Ys)-1 || k == 0 || k == len(g.Zs)-1
}

// ActiveNodes returns, for meshes containing void elements, a mask of nodes
// attached to at least one non-void element.
func (g *Grid) ActiveNodes() []bool {
	active := make([]bool, g.NumNodes())
	for e := 0; e < g.NumElems(); e++ {
		if g.MatID[e] == VoidMaterial {
			continue
		}
		for _, n := range g.ElemNodes(e) {
			active[n] = true
		}
	}
	return active
}
