package mesh

import (
	"testing"
)

func TestBlockKindString(t *testing.T) {
	cases := map[BlockKind]string{
		KindTSV: "tsv", KindDummy: "dummy", KindPillar: "pillar", KindAnnular: "annular",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k, want)
		}
	}
	if BlockKind(9).String() == "" {
		t.Error("unknown kind should still format")
	}
}

func TestPillarBlock(t *testing.T) {
	geom := TSVGeometry{Height: 50, Diameter: 5, Liner: 0, Pitch: 15}
	g, err := NewBlock(geom, CoarseResolution(), KindPillar)
	if err != nil {
		t.Fatal(err)
	}
	// Center copper, no liner anywhere, corner silicon.
	e, _, _, _ := g.Locate(Vec3{X: 7.5, Y: 7.5, Z: 25})
	if g.MatID[e] != MatCopper {
		t.Errorf("pillar center material %d", g.MatID[e])
	}
	for _, id := range g.MatID {
		if id == MatLiner {
			t.Fatal("pillar block must not contain liner material")
		}
	}
	e, _, _, _ = g.Locate(Vec3{X: 0.5, Y: 0.5, Z: 25})
	if g.MatID[e] != MatSilicon {
		t.Errorf("pillar corner material %d", g.MatID[e])
	}
}

func TestAnnularBlock(t *testing.T) {
	geom := TSVGeometry{Height: 50, Diameter: 8, Liner: 1.5, Pitch: 15}
	g, err := NewBlock(geom, BlockResolution{RadialCells: 4, OuterCells: 3, ZCells: 4}, KindAnnular)
	if err != nil {
		t.Fatal(err)
	}
	// The core is bulk, the wall is copper.
	e, _, _, _ := g.Locate(Vec3{X: 7.5, Y: 7.5, Z: 25})
	if g.MatID[e] != MatSilicon {
		t.Errorf("annular core material %d, want silicon", g.MatID[e])
	}
	// A point in the wall: radius between d/2−t and d/2 (3.2 µm from
	// center).
	e, _, _, _ = g.Locate(Vec3{X: 7.5 + 3.2, Y: 7.5, Z: 25})
	if g.MatID[e] != MatCopper {
		t.Errorf("annular wall material %d, want copper", g.MatID[e])
	}
	hasCopper := false
	for _, id := range g.MatID {
		if id == MatCopper {
			hasCopper = true
			break
		}
	}
	if !hasCopper {
		t.Fatal("annular block lost its wall")
	}
}

func TestAnnularValidation(t *testing.T) {
	geom := TSVGeometry{Height: 50, Diameter: 5, Liner: 0, Pitch: 15}
	if _, err := NewBlock(geom, CoarseResolution(), KindAnnular); err == nil {
		t.Error("expected error for zero wall thickness")
	}
	geom.Liner = 3 // >= d/2
	if _, err := NewBlock(geom, CoarseResolution(), KindAnnular); err == nil {
		t.Error("expected error for wall >= radius")
	}
}

func TestTSVKindRequiresLiner(t *testing.T) {
	geom := TSVGeometry{Height: 50, Diameter: 5, Liner: 0, Pitch: 15}
	if _, err := NewBlock(geom, CoarseResolution(), KindTSV); err == nil {
		t.Error("expected error for TSV without liner")
	}
}

func TestDummyKindAllSilicon(t *testing.T) {
	g, err := NewBlock(PaperGeometry(15), CoarseResolution(), KindDummy)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range g.MatID {
		if id != MatSilicon {
			t.Fatal("dummy block must be homogeneous silicon")
		}
	}
}

func TestUnknownKind(t *testing.T) {
	if _, err := NewBlock(PaperGeometry(15), CoarseResolution(), BlockKind(42)); err == nil {
		t.Error("expected error for unknown kind")
	}
}
