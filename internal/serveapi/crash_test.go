package serveapi

// Crash-recovery harness: the acceptance exercise for the durability layer.
// The test re-execs its own binary as a miniature serve process (TestMain
// intercepts the env var before any test runs), points it at a journal and
// spill directory, kill -9s it mid-batch, restarts it on the same
// directories, and asserts that every accepted job reaches a terminal state
// with results matching an independent local solve.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	morestress "repro"
	"repro/internal/wal"
)

const (
	crashChildEnv   = "SERVE_CRASH_CHILD"
	crashJournalEnv = "SERVE_CRASH_JOURNAL"
	crashCacheEnv   = "SERVE_CRASH_CACHE"
)

func TestMain(m *testing.M) {
	if os.Getenv(crashChildEnv) == "1" {
		runCrashChild()
		return // unreachable; runCrashChild never returns
	}
	os.Exit(m.Run())
}

// runCrashChild is the child side of the harness: a minimal serve process —
// engine with disk spill, journaled queue, recovery before listen — that
// prints its address and serves until killed.
func runCrashChild() {
	journalDir := os.Getenv(crashJournalEnv)
	cacheDir := os.Getenv(crashCacheEnv)
	engine := morestress.NewEngine(morestress.EngineOptions{CacheDir: cacheDir})
	journal, err := wal.Open(journalDir, wal.Options{})
	if err != nil {
		log.Fatalf("crash child: %v", err)
	}
	queue, err := NewQueue(engine, 16, 1, 10*time.Minute, 0, journal)
	if err != nil {
		log.Fatalf("crash child: %v", err)
	}
	if _, err := queue.Recover(); err != nil {
		log.Fatalf("crash child: recover: %v", err)
	}
	srv := New(engine, queue)
	srv.Journal = journal
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("crash child: %v", err)
	}
	fmt.Printf("ADDR=%s\n", ln.Addr())
	os.Stdout.Sync()
	log.Fatal(http.Serve(ln, srv.Routes()))
}

// startCrashChild launches the child on the given directories and returns
// its base URL. The returned kill function SIGKILLs it (idempotent).
func startCrashChild(t *testing.T, journalDir, cacheDir string) (baseURL string, kill func()) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		crashChildEnv+"=1", crashJournalEnv+"="+journalDir, crashCacheEnv+"="+cacheDir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	kill = func() {
		if !killed {
			killed = true
			cmd.Process.Kill() // SIGKILL: no chance to flush or clean up
			cmd.Wait()
		}
	}
	t.Cleanup(kill)
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "ADDR="); ok {
			return "http://" + addr, kill
		}
	}
	t.Fatalf("crash child exited before printing its address (scan err: %v)", sc.Err())
	return "", nil
}

// crashStats decodes the subset of /stats the harness watches.
type crashStats struct {
	Queue struct {
		ScenariosSolved int64 `json:"scenariosSolved"`
	} `json:"queue"`
	Journal *JournalStats `json:"journal"`
}

func getCrashStats(t *testing.T, base string) (crashStats, error) {
	t.Helper()
	var st crashStats
	resp, err := http.Get(base + "/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func TestCrashRecoveryLosesNoAcceptedJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness re-execs the test binary and solves real scenarios")
	}
	journalDir := t.TempDir()
	cacheDir := t.TempDir()

	base, kill := startCrashChild(t, journalDir, cacheDir)

	// One multi-scenario batch: enough scenarios that the kill lands
	// mid-batch, each cheap (coarse resolution, 3 nodes, small lattice).
	const scenarios = 12
	var sb strings.Builder
	sb.WriteString(`{"jobs":[`)
	deltaT := func(i int) float64 { return -250 + 10*float64(i) }
	for i := 0; i < scenarios; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"resolution":"coarse","nodes":3,"rows":4,"cols":4,"deltaT":%g,"gridSamples":50}`, deltaT(i))
	}
	sb.WriteString(`]}`)
	var sub SubmitResponse
	if code := postJSON(t, base+"/jobs", sb.String(), &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}

	// Kill once at least one scenario has solved but (almost certainly)
	// not all: the job dies as running, with journaled partial progress.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatal("child never solved a scenario")
		}
		st, err := getCrashStats(t, base)
		if err == nil && st.Queue.ScenariosSolved >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	kill()

	// Restart on the same directories: recovery must resurrect the job
	// under its original ID and run it to completion.
	base2, _ := startCrashChild(t, journalDir, cacheDir)
	st, err := getCrashStats(t, base2)
	if err != nil {
		t.Fatalf("stats after restart: %v", err)
	}
	if st.Journal == nil || st.Journal.RecordsReplayed == 0 {
		t.Fatalf("restarted child replayed no journal records: %+v", st.Journal)
	}
	if st.Journal.Requeued+st.Journal.Restored == 0 {
		t.Fatalf("accepted job lost across kill -9: %+v", st.Journal)
	}

	var status JobStatusResponse
	deadline = time.Now().Add(5 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached a terminal state after recovery (last: %+v)", sub.ID, status)
		}
		resp, err := http.Get(base2 + "/jobs/" + sub.ID)
		if err != nil {
			t.Fatalf("poll recovered job: %v", err)
		}
		code := resp.StatusCode
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		if code == http.StatusNotFound {
			t.Fatalf("recovered child does not know job %s", sub.ID)
		}
		if err != nil {
			t.Fatalf("decode job status: %v", err)
		}
		if s := jobState(status.State); s == "done" || s == "failed" || s == "cancelled" {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if status.State != "done" {
		t.Fatalf("recovered job state = %s (error %q), want done", status.State, status.Error)
	}
	if status.Completed != scenarios || len(status.Results) != scenarios {
		t.Fatalf("recovered job completed %d/%d with %d results", status.Completed, scenarios, len(status.Results))
	}

	// Correctness: each recovered result must match an independent local
	// solve of the same scenario. The local engine mounts the same spill
	// dir, which also proves the ROMs the child wrote load back verified.
	local := morestress.NewEngine(morestress.EngineOptions{CacheDir: cacheDir})
	for i, got := range status.Results {
		if got.Error != "" || !got.Converged {
			t.Fatalf("scenario %d: error %q converged %v", i, got.Error, got.Converged)
		}
		dt := deltaT(i)
		req := JobRequest{Resolution: "coarse", Nodes: 3, Rows: 4, Cols: 4, DeltaT: &dt, GridSamples: 50}
		job, err := req.ToJob(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := local.Solve(job)
		if want.Err != nil {
			t.Fatalf("local solve %d: %v", i, want.Err)
		}
		wantMax := want.Result.VM.Max()
		if rel := math.Abs(got.MaxVonMises-wantMax) / math.Max(math.Abs(wantMax), 1); rel > 1e-3 {
			t.Errorf("scenario %d: maxVonMises %g, local solve %g (rel %g)", i, got.MaxVonMises, wantMax, rel)
		}
		if got.GlobalDoFs != want.Result.GlobalDoFs {
			t.Errorf("scenario %d: globalDoFs %d, want %d", i, got.GlobalDoFs, want.Result.GlobalDoFs)
		}
	}
	// The journal directory must still be there for the next restart, and
	// the cache dir must hold a verified spill (no orphan tmp files).
	if ents, err := os.ReadDir(cacheDir); err == nil {
		for _, e := range ents {
			if strings.Contains(e.Name(), ".tmp") {
				t.Errorf("orphan spill temp file survived: %s", e.Name())
			}
		}
	}
	if ents, err := filepath.Glob(filepath.Join(journalDir, "wal-*.log")); err != nil || len(ents) == 0 {
		t.Errorf("no journal segments on disk after recovery (err %v)", err)
	}
}

// jobState normalizes the JSON state string.
func jobState(s string) string { return strings.ToLower(strings.TrimSpace(s)) }
