// Package serveapi is the HTTP serving layer of the MORE-Stress engine,
// extracted from cmd/serve so that every front end can share it: cmd/serve
// mounts it directly (optionally over N in-process engine shards), the
// cmd/router proxy reuses its request/response types to derive routing keys
// and to aggregate /stats, and multi-replica test harnesses re-exec real
// replica processes built from it. The Server handles the synchronous
// endpoints (POST /solve, POST /batch), the async job lifecycle (POST
// /jobs, GET /jobs/{id}, GET /jobs/{id}/events, DELETE /jobs/{id}), and the
// observability trio (GET /stats, GET /healthz, GET /readyz).
//
// Liveness vs readiness: /healthz answers "is the process up" and is always
// 200; /readyz answers "should this replica take traffic" — 503 while
// journal recovery is still replaying, after the queue stops accepting, or
// while the journal cannot persist accepted jobs. The traffic-mutating
// endpoints (solve, batch, job submit/cancel) are gated on the same
// readiness bit, so a router probing /readyz never routes into the
// recovery window.
package serveapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	morestress "repro"
	"repro/internal/jobqueue"
	"repro/internal/mesh"
	"repro/internal/wal"
)

// Request-size guards: the server is a demonstration front end, not a
// hardened ingress, but it should not let one request allocate the machine.
const (
	maxArrayDim    = 512
	maxGridSamples = 500
	maxBatchJobs   = 1024
	// MaxBodyBytes caps a request body; exported so the shard router
	// applies the same bound before buffering a body for key derivation.
	MaxBodyBytes = 8 << 20
	// maxFieldSamples caps rows·cols·gridSamples², the total von Mises
	// sample count of one job (the per-dimension caps alone would still
	// admit a ~10¹¹-sample field). 2²² float64s ≈ 32 MB.
	maxFieldSamples = 1 << 22
	// maxBatchFieldSamples caps the sample count summed over a /batch
	// request: every sampled field is held in memory at once in the batch
	// result, so the per-job cap alone would still let maxBatchJobs
	// at-cap jobs allocate ~34 GB. 2²⁵ float64s ≈ 268 MB.
	maxBatchFieldSamples = 1 << 25
)

// fieldSamples returns the request's total von Mises sample count.
func (r *JobRequest) fieldSamples() int64 {
	return int64(r.Rows) * int64(r.Cols) * int64(r.GridSamples) * int64(r.GridSamples)
}

// JobRequest is the JSON description of one scenario, shared by /solve and
// the elements of /batch. Zero values select the paper defaults.
type JobRequest struct {
	// Unit cell (determines the cached ROM).
	Pitch      float64 `json:"pitch"`      // µm, default 15
	Nodes      int     `json:"nodes"`      // interpolation nodes per axis, default 5
	Resolution string  `json:"resolution"` // "default" or "coarse"
	Structure  string  `json:"structure"`  // "tsv", "pillar", or "annular"
	Quadratic  bool    `json:"quadratic"`

	// Scenario.
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// DeltaT is the thermal load in °C; omitted means −250. A pointer so
	// an explicit 0 (the zero-load baseline) survives JSON decoding.
	DeltaT      *float64 `json:"deltaT"`
	GridSamples int      `json:"gridSamples"`
	Solver      string   `json:"solver"` // "gmres" (default), "cg", or "direct"
	Tol         float64  `json:"tol"`
	MaxIter     int      `json:"maxIter"`
	// Precond selects the iterative preconditioner: "auto" (default,
	// size-resolved), "jacobi", "block-jacobi3"/"bj3", "ic0", or "none".
	// Empty falls back to the server's -precond flag.
	Precond string `json:"precond"`
	// Ordering selects the IC0 factor ordering: "auto" (default, picks
	// multicolor when the natural dependency levels are too narrow to fan
	// out), "natural", "rcm", or "multicolor". Empty falls back to the
	// server's -ordering flag.
	Ordering string `json:"ordering"`
	// Precision selects the IC0 factor storage precision: "auto" (default,
	// float32 when the factor tiles), "float64"/"f64"/"double", or
	// "float32"/"f32"/"single". Empty falls back to the server's
	// -precision flag.
	Precision string `json:"precision"`

	// IncludeField returns the sampled von Mises field in the response
	// (requires gridSamples > 0).
	IncludeField bool `json:"includeField"`
}

func (r *JobRequest) ToJob(defaultPrecond morestress.Precond, defaultOrdering morestress.Ordering) (morestress.Job, error) {
	return r.ToJobPrec(defaultPrecond, defaultOrdering, morestress.PrecisionAuto)
}

// ToJobPrec is ToJob with an explicit default for the factor precision (the
// server's -precision flag), applied when the request does not name one.
func (r *JobRequest) ToJobPrec(defaultPrecond morestress.Precond, defaultOrdering morestress.Ordering, defaultPrecision morestress.Precision) (morestress.Job, error) {
	var job morestress.Job
	pitch := r.Pitch
	if pitch == 0 {
		pitch = 15
	}
	cfg := morestress.DefaultConfig(pitch)
	if r.Nodes != 0 {
		if r.Nodes < 2 || r.Nodes > 8 {
			return job, fmt.Errorf("nodes must be in [2, 8], got %d", r.Nodes)
		}
		cfg.Nodes = [3]int{r.Nodes, r.Nodes, r.Nodes}
	}
	switch strings.ToLower(r.Resolution) {
	case "", "default":
	case "coarse":
		cfg.Resolution = mesh.CoarseResolution()
	default:
		return job, fmt.Errorf("unknown resolution %q (want \"default\" or \"coarse\")", r.Resolution)
	}
	switch strings.ToLower(r.Structure) {
	case "", "tsv":
	case "pillar":
		cfg.Structure = morestress.StructurePillar
	case "annular":
		cfg.Structure = morestress.StructureAnnular
	default:
		return job, fmt.Errorf("unknown structure %q (want \"tsv\", \"pillar\", or \"annular\")", r.Structure)
	}
	cfg.Quadratic = r.Quadratic
	job.Config = cfg

	job.Rows, job.Cols = r.Rows, r.Cols
	if job.Rows < 1 || job.Cols < 1 {
		return job, fmt.Errorf("rows and cols must be positive, got %d×%d", r.Rows, r.Cols)
	}
	if job.Rows > maxArrayDim || job.Cols > maxArrayDim {
		return job, fmt.Errorf("array dimension exceeds %d blocks", maxArrayDim)
	}
	job.DeltaT = -250
	if r.DeltaT != nil {
		job.DeltaT = *r.DeltaT
	}
	if r.GridSamples < 0 || r.GridSamples > maxGridSamples {
		return job, fmt.Errorf("gridSamples must be in [0, %d], got %d", maxGridSamples, r.GridSamples)
	}
	if total := r.fieldSamples(); total > maxFieldSamples {
		return job, fmt.Errorf("field would hold %d samples; rows·cols·gridSamples² must not exceed %d", total, maxFieldSamples)
	}
	job.GridSamples = r.GridSamples
	if r.IncludeField && r.GridSamples == 0 {
		return job, fmt.Errorf("includeField requires gridSamples > 0")
	}
	switch strings.ToLower(r.Solver) {
	case "", "gmres":
		job.Solver = morestress.SolveGMRES
	case "cg":
		job.Solver = morestress.SolveCG
	case "direct":
		job.Solver = morestress.SolveDirect
	default:
		return job, fmt.Errorf("unknown solver %q (want \"gmres\", \"cg\", or \"direct\")", r.Solver)
	}
	precond := defaultPrecond
	if r.Precond != "" {
		var err error
		if precond, err = morestress.ParsePrecond(r.Precond); err != nil {
			return job, err
		}
	}
	ordering := defaultOrdering
	if r.Ordering != "" {
		var err error
		if ordering, err = morestress.ParseOrdering(r.Ordering); err != nil {
			return job, err
		}
	}
	precision := defaultPrecision
	if r.Precision != "" {
		var err error
		if precision, err = morestress.ParsePrecision(r.Precision); err != nil {
			return job, err
		}
	}
	job.Options = morestress.SolverOptions{Tol: r.Tol, MaxIter: r.MaxIter, Precond: precond, Ordering: ordering, Precision: precision}
	return job, nil
}

// FieldResponse is a sampled von Mises field.
type FieldResponse struct {
	NX int       `json:"nx"`
	NY int       `json:"ny"`
	V  []float64 `json:"v"` // row-major, x fastest, MPa
}

// JobResponse is the JSON outcome of one scenario.
type JobResponse struct {
	Error      string  `json:"error,omitempty"`
	Converged  bool    `json:"converged"`
	Iterations int     `json:"iterations"`
	Residual   float64 `json:"residual"`
	// Precond is the resolved preconditioner of an iterative solve and
	// Ordering the symmetric ordering its factor was built under;
	// WarmStart reports whether the solve was seeded from a previous
	// solution on the same lattice, and PrecondCached whether the
	// preconditioner came from the lattice assembly's cache instead of
	// being built by this solve. Empty/false for direct solves.
	Precond       string `json:"precond,omitempty"`
	Ordering      string `json:"ordering,omitempty"`
	WarmStart     bool   `json:"warmStart,omitempty"`
	PrecondCached bool   `json:"precondCached,omitempty"`
	// Precision is the storage precision the preconditioner factor was
	// held in ("float64" or "float32"); Refinements counts the
	// iterative-refinement restarts a float32-factor solve performed, and
	// PrecisionFallback reports that the float32 factor stalled and the
	// recorded solve ran against a float64 rebuild.
	Precision         string         `json:"precision,omitempty"`
	Refinements       int            `json:"refinements,omitempty"`
	PrecisionFallback bool           `json:"precisionFallback,omitempty"`
	GlobalDoFs        int            `json:"globalDoFs"`
	MaxVonMises       float64        `json:"maxVonMises,omitempty"`
	CacheHit          bool           `json:"cacheHit"`
	LocalWaitMS       float64        `json:"localWaitMs"`
	TotalMS           float64        `json:"totalMs"`
	Field             *FieldResponse `json:"field,omitempty"`
}

func toResponse(res *morestress.JobResult, includeField bool) JobResponse {
	out := JobResponse{
		CacheHit:    res.CacheHit,
		LocalWaitMS: float64(res.LocalWait) / float64(time.Millisecond),
		TotalMS:     float64(res.Total) / float64(time.Millisecond),
	}
	if res.Err != nil {
		out.Error = res.Err.Error()
		return out
	}
	r := res.Result
	out.Converged = r.Stats.Converged
	out.Iterations = r.Stats.Iterations
	out.Residual = r.Stats.Residual
	if r.Iterative() {
		out.Precond = r.Stats.Precond.String()
		out.Ordering = r.Solution.Ordering.String()
		out.WarmStart = r.Stats.Warm
		out.PrecondCached = r.Solution.PrecondShared
		out.Precision = r.Solution.Precision.String()
		out.Refinements = r.Stats.Refinements
		out.PrecisionFallback = r.Solution.PrecisionFallback
	}
	out.GlobalDoFs = r.GlobalDoFs
	if r.VM != nil {
		out.MaxVonMises = r.VM.Max()
		if includeField {
			out.Field = &FieldResponse{NX: r.VM.NX, NY: r.VM.NY, V: r.VM.V}
		}
	}
	return out
}

// Server is the HTTP front end over a Solver (a single Engine or a sharded
// router.Shards) and its async job queue.
type Server struct {
	engine morestress.Solver
	queue  *jobqueue.Queue
	// Journal is the queue's WAL when the process runs with a journal dir
	// (nil otherwise); held so /stats can report it and /readyz can check
	// that it still takes appends.
	Journal *wal.Log
	// Precond, Ordering, and Precision are the server-wide defaults
	// (-precond, -ordering, and -precision flags), applied to requests that
	// do not name one.
	Precond   morestress.Precond
	Ordering  morestress.Ordering
	Precision morestress.Precision
	// PerShard, when the engine is an in-process shard set, returns the
	// per-shard engine snapshots /stats breaks out under "shards" (nil for
	// a single engine).
	PerShard func() []morestress.EngineStats
	start    time.Time
	requests atomic.Int64
	// recovering is set between BeginRecovery and FinishRecovery: the
	// journal is being replayed, so the replica must not advertise itself
	// ready nor accept traffic that would race the replay.
	recovering atomic.Bool
	// done is closed when the server begins shutting down; long-lived
	// response streams (SSE) select on it so httpSrv.Shutdown does not
	// wait out its deadline on subscribers that would otherwise never
	// notice.
	done     chan struct{}
	downOnce sync.Once
}

func New(e morestress.Solver, q *jobqueue.Queue) *Server {
	return &Server{engine: e, queue: q, start: time.Now(), done: make(chan struct{})}
}

// BeginShutdown releases every long-lived stream; safe to call repeatedly.
func (s *Server) BeginShutdown() {
	s.downOnce.Do(func() { close(s.done) })
}

// BeginRecovery marks the replica not-ready: /readyz turns 503 and the
// traffic-mutating endpoints refuse with 503 until FinishRecovery. Call it
// before the listener starts when a journal replay still has to run, so
// health probes see the process alive but not yet live.
func (s *Server) BeginRecovery() { s.recovering.Store(true) }

// FinishRecovery marks the replica ready (the complement of BeginRecovery).
func (s *Server) FinishRecovery() { s.recovering.Store(false) }

// Ready reports whether the replica should take traffic: recovery complete,
// queue accepting submissions, and (when journaled) the journal writable.
func (s *Server) Ready() bool {
	if s.recovering.Load() || !s.queue.Accepting() {
		return false
	}
	return s.Journal == nil || s.Journal.Writable()
}

// Routes builds the handler mux: the synchronous endpoints (POST /solve,
// POST /batch), the async job lifecycle (POST /jobs, GET /jobs/{id},
// GET /jobs/{id}/events, DELETE /jobs/{id}), and the observability trio
// (GET /stats, GET /healthz, GET /readyz). The mutating endpoints are
// wrapped in the readiness gate: while the replica is not ready they
// return 503 with Retry-After instead of racing a journal replay.
func (s *Server) Routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /solve", s.ifReady(s.handleSolve))
	mux.HandleFunc("POST /batch", s.ifReady(s.handleBatch))
	mux.HandleFunc("POST /jobs", s.ifReady(s.handleJobSubmit))
	mux.HandleFunc("GET /jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE /jobs/{id}", s.ifReady(s.handleJobCancel))
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// ifReady gates a traffic-mutating handler on readiness: a request that
// arrives mid-recovery (or after the queue closed) gets 503 + Retry-After
// so a well-behaved client — and the shard router — moves on.
func (s *Server) ifReady(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			s.requests.Add(1)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, errNotReady)
			return
		}
		h(w, r)
	}
}

var errNotReady = fmt.Errorf("replica not ready (recovering, queue closed, or journal unwritable); retry or route elsewhere")

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req JobRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	job, err := req.ToJobPrec(s.Precond, s.Ordering, s.Precision)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	res, _ := s.engine.Solve(job)
	if res.Err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, toResponse(res, false))
		return
	}
	writeJSON(w, http.StatusOK, toResponse(res, req.IncludeField))
}

// BatchRequest wraps the /batch payload.
type BatchRequest struct {
	Jobs []JobRequest `json:"jobs"`
}

// BatchResponse reports per-job outcomes plus the batch aggregate.
type BatchResponse struct {
	Results []JobResponse `json:"results"`
	Stats   struct {
		Jobs        int     `json:"jobs"`
		Errors      int     `json:"errors"`
		CacheHits   int     `json:"cacheHits"`
		CacheMisses int     `json:"cacheMisses"`
		WallMS      float64 `json:"wallMs"`
		LocalMS     float64 `json:"localMs"`
		GlobalMS    float64 `json:"globalMs"`
	} `json:"stats"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	jobs, include, _, ok := s.decodeBatch(w, r)
	if !ok {
		return
	}
	br := s.engine.BatchSolve(jobs)
	var out BatchResponse
	out.Results = make([]JobResponse, len(br.Results))
	for i := range br.Results {
		out.Results[i] = toResponse(&br.Results[i], include[i])
	}
	st := br.Stats
	out.Stats.Jobs = st.Jobs
	out.Stats.Errors = st.Errors
	out.Stats.CacheHits = st.CacheHits
	out.Stats.CacheMisses = st.CacheMisses
	out.Stats.WallMS = float64(st.Wall) / float64(time.Millisecond)
	out.Stats.LocalMS = float64(st.LocalTime) / float64(time.Millisecond)
	out.Stats.GlobalMS = float64(st.GlobalTime) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, out)
}

// StatsResponse is the /stats payload.
type StatsResponse struct {
	UptimeSeconds  float64 `json:"uptimeSeconds"`
	Requests       int64   `json:"requests"`
	JobsDone       int64   `json:"jobsDone"`
	JobsFailed     int64   `json:"jobsFailed"`
	Factorizations int64   `json:"factorizations"`
	FactorHits     int64   `json:"factorHits"`
	// Solver reports the global-stage scaling machinery: the assemble-once
	// cache (one matrix assembly per lattice) and the warm-start behavior
	// of the iterative solvers.
	Solver struct {
		Assemblies      int64 `json:"assemblies"`
		AssemblyHits    int64 `json:"assemblyHits"`
		IterativeSolves int64 `json:"iterativeSolves"`
		WarmStarts      int64 `json:"warmStarts"`
		WarmFallbacks   int64 `json:"warmFallbacks"`
		Iterations      int64 `json:"iterations"`
		// PrecondBuilds/PrecondHits report the assembly-cached
		// preconditioners: built at most once per (lattice, kind,
		// ordering), shared by every scenario after that.
		PrecondBuilds int64 `json:"precondBuilds"`
		PrecondHits   int64 `json:"precondHits"`
		// OrderingCounts tallies iterative solves by the symmetric
		// ordering their preconditioner factored under ("natural", "rcm",
		// "multicolor"); orderings that never ran are omitted.
		OrderingCounts map[string]int64 `json:"orderingCounts"`
		// PrecisionCounts tallies iterative solves by the storage precision
		// of their preconditioner factor ("float64", "float32");
		// Refinements sums the iterative-refinement restarts of
		// float32-factor solves and PrecisionFallbacks counts solves that
		// fell back to a float64 rebuild.
		PrecisionCounts    map[string]int64 `json:"precisionCounts"`
		Refinements        int64            `json:"refinements"`
		PrecisionFallbacks int64            `json:"precisionFallbacks"`
		// WarmStartRate is WarmStarts / IterativeSolves (0 when none ran).
		WarmStartRate float64 `json:"warmStartRate"`
	} `json:"solver"`
	Cache struct {
		Hits        int64   `json:"hits"`
		Misses      int64   `json:"misses"`
		DiskHits    int64   `json:"diskHits"`
		Evictions   int64   `json:"evictions"`
		Entries     int     `json:"entries"`
		Bytes       int64   `json:"bytes"`
		MaxBytes    int64   `json:"maxBytes"`
		BuildTimeMS float64 `json:"buildTimeMs"`
	} `json:"cache"`
	Queue struct {
		Depth           int     `json:"depth"`
		Capacity        int     `json:"capacity"`
		Running         int     `json:"running"`
		Retained        int     `json:"retained"`
		Submitted       int64   `json:"submitted"`
		Done            int64   `json:"done"`
		Failed          int64   `json:"failed"`
		Cancelled       int64   `json:"cancelled"`
		Expired         int64   `json:"expired"`
		ScenariosSolved int64   `json:"scenariosSolved"`
		SolveTimeMS     float64 `json:"solveTimeMs"`
		// RetainedFieldSamples is the field-sample cost of every tracked
		// job, drawn against FieldSampleBudget (0 = unlimited).
		RetainedFieldSamples int64 `json:"retainedFieldSamples"`
		FieldSampleBudget    int64 `json:"fieldSampleBudget"`
		// ThroughputPerSec is completed scenarios per second of uptime.
		ThroughputPerSec float64 `json:"throughputPerSec"`
	} `json:"queue"`
	// Journal reports the job durability layer; omitted without
	// -journal-dir.
	Journal *JournalStats `json:"journal,omitempty"`
	// Shards breaks the solver counters out per in-process engine shard;
	// present only when the process runs -shards > 1. The lattice-affine
	// counters (assemblies, preconditioner builds) are the cache-affinity
	// evidence: with HRW routing each lattice's builds appear under
	// exactly one shard.
	Shards []ShardStats `json:"shards,omitempty"`
}

// ShardStats is the per-shard slice of the merged engine counters.
type ShardStats struct {
	Shard           int   `json:"shard"`
	JobsDone        int64 `json:"jobsDone"`
	JobsFailed      int64 `json:"jobsFailed"`
	Assemblies      int64 `json:"assemblies"`
	AssemblyHits    int64 `json:"assemblyHits"`
	PrecondBuilds   int64 `json:"precondBuilds"`
	PrecondHits     int64 `json:"precondHits"`
	IterativeSolves int64 `json:"iterativeSolves"`
	WarmStarts      int64 `json:"warmStarts"`
	Factorizations  int64 `json:"factorizations"`
	FactorHits      int64 `json:"factorHits"`
	// Refinements and PrecisionFallbacks report the shard's mixed-precision
	// behavior (see the solver section for the fleet totals).
	Refinements        int64 `json:"refinements,omitempty"`
	PrecisionFallbacks int64 `json:"precisionFallbacks,omitempty"`
}

// JournalStats is the /stats view of the job WAL and the recovery that ran
// at startup.
type JournalStats struct {
	// Bytes and Segments describe the on-disk log right now.
	Bytes    int64 `json:"bytes"`
	Segments int   `json:"segments"`
	// Appends counts records fsynced this process lifetime; AppendErrors
	// the appends that failed after the job was already accepted.
	Appends      int64 `json:"appends"`
	AppendErrors int64 `json:"appendErrors"`
	// TornBytes is what torn-tail truncation discarded at startup.
	TornBytes int64 `json:"tornBytes"`
	// Compactions counts log rewrites; LastCompaction is the latest one
	// (RFC 3339, empty when none ran yet).
	Compactions    int64  `json:"compactions"`
	LastCompaction string `json:"lastCompaction,omitempty"`
	// RecordsReplayed/Requeued/Restored/Expired describe the startup
	// recovery: records read, non-terminal jobs re-enqueued, finished jobs
	// restored with results, finished jobs dropped as past their TTL.
	RecordsReplayed int `json:"recordsReplayed"`
	Requeued        int `json:"requeued"`
	Restored        int `json:"restored"`
	Expired         int `json:"expired"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	es := s.engine.Stats()
	var out StatsResponse
	out.UptimeSeconds = time.Since(s.start).Seconds()
	out.Requests = s.requests.Load()
	out.JobsDone = es.JobsDone
	out.JobsFailed = es.JobsFailed
	out.Factorizations = es.Factorizations
	out.FactorHits = es.FactorHits
	out.Solver.Assemblies = es.Assemblies
	out.Solver.AssemblyHits = es.AssemblyHits
	out.Solver.IterativeSolves = es.IterativeSolves
	out.Solver.WarmStarts = es.WarmStarts
	out.Solver.WarmFallbacks = es.WarmFallbacks
	out.Solver.Iterations = es.Iterations
	out.Solver.PrecondBuilds = es.PrecondBuilds
	out.Solver.PrecondHits = es.PrecondHits
	out.Solver.OrderingCounts = es.OrderingCounts
	out.Solver.PrecisionCounts = es.PrecisionCounts
	out.Solver.Refinements = es.Refinements
	out.Solver.PrecisionFallbacks = es.PrecisionFallbacks
	if es.IterativeSolves > 0 {
		out.Solver.WarmStartRate = float64(es.WarmStarts) / float64(es.IterativeSolves)
	}
	out.Cache.Hits = es.Cache.Hits
	out.Cache.Misses = es.Cache.Misses
	out.Cache.DiskHits = es.Cache.DiskHits
	out.Cache.Evictions = es.Cache.Evictions
	out.Cache.Entries = es.Cache.Entries
	out.Cache.Bytes = es.Cache.Bytes
	out.Cache.MaxBytes = es.Cache.MaxBytes
	out.Cache.BuildTimeMS = float64(es.Cache.BuildTime) / float64(time.Millisecond)
	qs := s.queue.Stats()
	out.Queue.Depth = qs.Depth
	out.Queue.Capacity = qs.Capacity
	out.Queue.Running = qs.Running
	out.Queue.Retained = qs.Retained
	out.Queue.Submitted = qs.Submitted
	out.Queue.Done = qs.Done
	out.Queue.Failed = qs.Failed
	out.Queue.Cancelled = qs.Cancelled
	out.Queue.Expired = qs.Expired
	out.Queue.ScenariosSolved = qs.ScenariosSolved
	out.Queue.SolveTimeMS = float64(qs.SolveTime) / float64(time.Millisecond)
	out.Queue.RetainedFieldSamples = qs.RetainedCost
	out.Queue.FieldSampleBudget = qs.MaxCost
	if up := out.UptimeSeconds; up > 0 {
		out.Queue.ThroughputPerSec = float64(qs.ScenariosSolved) / up
	}
	if s.PerShard != nil {
		per := s.PerShard()
		out.Shards = make([]ShardStats, len(per))
		for i, es := range per {
			out.Shards[i] = ShardStats{
				Shard:              i,
				JobsDone:           es.JobsDone,
				JobsFailed:         es.JobsFailed,
				Assemblies:         es.Assemblies,
				AssemblyHits:       es.AssemblyHits,
				PrecondBuilds:      es.PrecondBuilds,
				PrecondHits:        es.PrecondHits,
				IterativeSolves:    es.IterativeSolves,
				WarmStarts:         es.WarmStarts,
				Factorizations:     es.Factorizations,
				FactorHits:         es.FactorHits,
				Refinements:        es.Refinements,
				PrecisionFallbacks: es.PrecisionFallbacks,
			}
		}
	}
	if s.Journal != nil {
		ws := s.Journal.Stats()
		rec := s.queue.Recovered()
		js := &JournalStats{
			Bytes:           ws.Bytes,
			Segments:        ws.Segments,
			Appends:         ws.Appends,
			AppendErrors:    qs.JournalErrors,
			TornBytes:       ws.TornBytes,
			Compactions:     ws.Compactions,
			RecordsReplayed: rec.Records,
			Requeued:        rec.Requeued,
			Restored:        rec.Restored,
			Expired:         rec.Expired,
		}
		if !ws.LastCompaction.IsZero() {
			js.LastCompaction = ws.LastCompaction.Format(time.RFC3339Nano)
		}
		out.Journal = js
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// ReadyzResponse is the GET /readyz payload: the readiness verdict plus the
// per-component breakdown a probe can log when the verdict is 503.
type ReadyzResponse struct {
	Ready bool `json:"ready"`
	// Recovered is false while the startup journal replay is running.
	Recovered bool `json:"recovered"`
	// Accepting reports the queue takes submissions (false after Close).
	Accepting bool `json:"accepting"`
	// JournalWritable reports the journal's sticky append health; true
	// when the process runs without a journal.
	JournalWritable bool `json:"journalWritable"`
}

// handleReadyz is the readiness probe behind router health checks: 200 only
// once recovery completed, while the queue accepts jobs, and while the
// journal (if any) persists them. /healthz stays 200 through all of that —
// alive but not yet (or no longer) live is exactly the window this probe
// exists to report.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	out := ReadyzResponse{
		Recovered:       !s.recovering.Load(),
		Accepting:       s.queue.Accepting(),
		JournalWritable: s.Journal == nil || s.Journal.Writable(),
	}
	out.Ready = out.Recovered && out.Accepting && out.JournalWritable
	status := http.StatusOK
	if !out.Ready {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, out)
}

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
