package serveapi

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	morestress "repro"
	"repro/internal/jobqueue"
)

// postJSON posts body and decodes the JSON response into out, returning the
// status code.
func postJSON(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

func getStatus(t *testing.T, url string) (JobStatusResponse, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out JobStatusResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

// slowServer is testServer with an artificial per-scenario delay in front
// of the real engine solve: job lifecycles stay observable (running is
// pollable, a queued second job is cancellable before it starts) regardless
// of how fast the machine solves the cheap test scenarios.
func slowServer(t *testing.T, delay time.Duration, depth int) *httptest.Server {
	t.Helper()
	engine := morestress.NewEngine(morestress.EngineOptions{Workers: 2})
	queue, err := jobqueue.New(jobqueue.Options{
		Depth: depth, Workers: 1, TTL: time.Minute,
		Solve: func(ctx context.Context, sc morestress.Job) (*morestress.JobResult, error) {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			res, _ := engine.Solve(sc)
			return res, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(queue.Close)
	ts := httptest.NewServer(New(engine, queue).Routes())
	t.Cleanup(ts.Close)
	return ts
}

// TestJobsEndToEnd is the acceptance exercise: submit a multi-scenario job,
// observe "running" by polling, receive per-scenario SSE events, fetch the
// finished result, and cancel a second queued job before it starts — all
// against a real httptest server (run under -race in CI).
func TestJobsEndToEnd(t *testing.T) {
	ts := slowServer(t, 150*time.Millisecond, 8)

	// Submit a 3-scenario job; the ID comes back immediately.
	batch := `{"jobs":[` + cheapJob + `,` + cheapJob + `,` + cheapJob + `]}`
	var sub SubmitResponse
	if code := postJSON(t, ts.URL+"/jobs", batch, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	if sub.ID == "" || sub.State != "pending" {
		t.Fatalf("submit response %+v", sub)
	}

	// Attach the SSE stream before the job finishes (history replays, so
	// attaching late would also work — but this exercises live streaming).
	sseResp, err := http.Get(ts.URL + sub.Events)
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	if ct := sseResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("SSE content type %q", ct)
	}

	// While the first scenario builds the ROM, submit a second job and
	// cancel it before the single queue worker reaches it.
	var sub2 SubmitResponse
	if code := postJSON(t, ts.URL+"/jobs", `{"jobs":[`+cheapJob+`]}`, &sub2); code != http.StatusAccepted {
		t.Fatalf("second submit status %d, want 202", code)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+sub2.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d, want 200", delResp.StatusCode)
	}
	if s2, code := getStatus(t, ts.URL+"/jobs/"+sub2.ID); code != http.StatusOK || s2.State != "cancelled" {
		t.Errorf("cancelled job: status %d state %q, want 200 cancelled", code, s2.State)
	}
	if s2, _ := getStatus(t, ts.URL+"/jobs/"+sub2.ID); s2.Completed != 0 || len(s2.Results) != 0 {
		t.Errorf("cancelled-before-start job has results: %+v", s2)
	}

	// Poll until the first job is observed running, then until done.
	deadline := time.Now().Add(2 * time.Minute)
	sawRunning := false
	var final JobStatusResponse
	for {
		s, code := getStatus(t, ts.URL+sub.Poll)
		if code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
		switch s.State {
		case "running":
			sawRunning = true
		case "done":
			final = s
		case "failed", "cancelled":
			t.Fatalf("job landed in %s: %+v", s.State, s)
		}
		if final.State != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished (last state %q)", s.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawRunning {
		t.Error("polling never observed the running state")
	}
	if final.Total != 3 || final.Completed != 3 || final.Failed != 0 {
		t.Errorf("final counts %d/%d failed %d, want 3/3 failed 0", final.Completed, final.Total, final.Failed)
	}
	if len(final.Results) != 3 {
		t.Fatalf("final results = %d, want 3", len(final.Results))
	}
	for i, r := range final.Results {
		if r.Error != "" || !r.Converged || r.MaxVonMises <= 0 {
			t.Errorf("result %d implausible: %+v", i, r)
		}
		if r.Field != nil {
			t.Errorf("result %d returned a field without includeField", i)
		}
	}
	if final.StartedAt == "" || final.FinishedAt == "" || final.RunMS <= 0 {
		t.Errorf("missing timing: %+v", final)
	}

	// The SSE stream must have carried the full lifecycle: pending and
	// running state events, one scenario event per scenario, and a
	// terminal done event — then close.
	events := readSSE(t, sseResp)
	var states []string
	scenarios := 0
	for _, ev := range events {
		switch ev.Type {
		case jobqueue.EventState:
			states = append(states, string(ev.State))
		case jobqueue.EventScenario:
			scenarios++
			if ev.Total != 3 {
				t.Errorf("scenario event total = %d, want 3", ev.Total)
			}
			// The three scenarios share one lattice, so the events carry
			// the solver telemetry: every iterative solve names its
			// preconditioner, and every solve after the first warm-starts
			// from its predecessor's solution.
			if ev.Precond == "" {
				t.Errorf("scenario %d event missing precond", ev.Scenario)
			}
			if wantWarm := scenarios > 1; ev.WarmStart != wantWarm {
				t.Errorf("scenario %d warmStart = %v, want %v", ev.Scenario, ev.WarmStart, wantWarm)
			}
			// The preconditioner is built by the lattice's first solve and
			// cached on its assembly for the rest of the sweep.
			if wantCached := scenarios > 1; ev.PrecondCached != wantCached {
				t.Errorf("scenario %d precondCached = %v, want %v", ev.Scenario, ev.PrecondCached, wantCached)
			}
		}
		if ev.JobID != sub.ID {
			t.Errorf("event for job %q, want %q", ev.JobID, sub.ID)
		}
	}
	if want := []string{"pending", "running", "done"}; fmt.Sprint(states) != fmt.Sprint(want) {
		t.Errorf("state events %v, want %v", states, want)
	}
	if scenarios != 3 {
		t.Errorf("scenario events = %d, want 3", scenarios)
	}

	// /stats reflects the queue work.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Queue.Submitted != 2 || stats.Queue.Done != 1 || stats.Queue.Cancelled != 1 {
		t.Errorf("queue stats %+v, want 2 submitted / 1 done / 1 cancelled", stats.Queue)
	}
	if stats.Queue.ScenariosSolved != 3 || stats.Queue.Capacity != 8 {
		t.Errorf("queue stats %+v, want 3 scenarios / capacity 8", stats.Queue)
	}
	if stats.Cache.Bytes <= 0 || stats.Cache.MaxBytes <= 0 {
		t.Errorf("cache byte accounting missing from stats: %+v", stats.Cache)
	}
}

// readSSE parses a completed SSE stream into its events.
func readSSE(t *testing.T, resp *http.Response) []jobqueue.Event {
	t.Helper()
	var events []jobqueue.Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var ev jobqueue.Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
			events = append(events, ev)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("SSE stream error: %v", err)
	}
	return events
}

// TestJobsIncludeFieldSurvivesQueue checks the includeField flag of the
// original request shapes the deferred result exactly as it does the
// synchronous one.
func TestJobsIncludeFieldSurvivesQueue(t *testing.T) {
	ts := testServer(t)
	withField := strings.TrimSuffix(cheapJob, "}") + `,"includeField":true}`
	body := `{"jobs":[` + cheapJob + `,` + withField + `]}`
	var sub SubmitResponse
	if code := postJSON(t, ts.URL+"/jobs", body, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		s, code := getStatus(t, ts.URL+sub.Poll)
		if code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
		if s.State == "done" {
			if len(s.Results) != 2 {
				t.Fatalf("results = %d, want 2", len(s.Results))
			}
			if s.Results[0].Field != nil {
				t.Error("scenario 0 returned a field without includeField")
			}
			if s.Results[1].Field == nil {
				t.Error("scenario 1 lost its includeField on the way through the queue")
			} else if s.Results[1].Field.NX != 2*4 || s.Results[1].Field.NY != 1*4 {
				t.Errorf("field shape %dx%d", s.Results[1].Field.NX, s.Results[1].Field.NY)
			}
			return
		}
		if s.State == "failed" || s.State == "cancelled" {
			t.Fatalf("job landed in %s", s.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobsValidationAndErrors covers the non-happy paths of the async API.
func TestJobsValidationAndErrors(t *testing.T) {
	ts := testServer(t)
	// Bad payloads are rejected at submit time, not queued.
	for _, body := range []string{`{"jobs":[]}`, `{"jobs":[{"rows":0,"cols":1}]}`, `{"rows":`} {
		if code := postJSON(t, ts.URL+"/jobs", body, nil); code != http.StatusBadRequest {
			t.Errorf("submit %q: status %d, want 400", body, code)
		}
	}
	// Unknown IDs 404 on every verb.
	if _, code := getStatus(t, ts.URL+"/jobs/deadbeefdeadbeef"); code != http.StatusNotFound {
		t.Errorf("unknown poll: status %d, want 404", code)
	}
	resp, err := http.Get(ts.URL + "/jobs/deadbeefdeadbeef/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown events: status %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/deadbeefdeadbeef", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown cancel: status %d, want 404", dresp.StatusCode)
	}

	// Cancelling a finished job is a conflict.
	var sub SubmitResponse
	if code := postJSON(t, ts.URL+"/jobs", `{"jobs":[`+cheapJob+`]}`, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		s, _ := getStatus(t, ts.URL+sub.Poll)
		if s.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+sub.ID, nil)
	cresp, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusConflict {
		t.Errorf("cancel finished: status %d, want 409", cresp.StatusCode)
	}
}

// TestJobsBackpressure429 fills the queue past capacity and checks the
// HTTP layer translates ErrQueueFull into 429 + Retry-After.
func TestJobsBackpressure429(t *testing.T) {
	// A dedicated tiny queue — depth 1, one worker — with slow scenarios,
	// so the worker reliably holds the first job while the test probes.
	ts := slowServer(t, 500*time.Millisecond, 1)

	// The first submit occupies the worker; the second sits in the FIFO;
	// the third must bounce.
	var first SubmitResponse
	if code := postJSON(t, ts.URL+"/jobs", `{"jobs":[`+cheapJob+`]}`, &first); code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	// Wait until the worker claims it so the FIFO is empty.
	deadline := time.Now().Add(time.Minute)
	for {
		s, _ := getStatus(t, ts.URL+"/jobs/"+first.ID)
		if s.State == "running" || s.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if code := postJSON(t, ts.URL+"/jobs", `{"jobs":[`+cheapJob+`]}`, nil); code != http.StatusAccepted {
		t.Fatalf("fill submit: %d", code)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"jobs":[`+cheapJob+`]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestJobsFieldBudget429 checks genuine budget exhaustion surfaces as a
// retryable 429: a job that fits the budget on its own is rejected while
// an earlier job's retained cost occupies it.
func TestJobsFieldBudget429(t *testing.T) {
	engine := morestress.NewEngine(morestress.EngineOptions{Workers: 2})
	queue, err := NewQueue(engine, 8, 1, time.Minute, 40, nil) // cheapJob costs 1·2·4² = 32
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(queue.Close)
	ts := httptest.NewServer(New(engine, queue).Routes())
	t.Cleanup(ts.Close)

	// The first job fits (32 ≤ 40) and holds its cost for the TTL even
	// after finishing.
	if code := postJSON(t, ts.URL+"/jobs", `{"jobs":[`+cheapJob+`]}`, nil); code != http.StatusAccepted {
		t.Fatalf("first submit: status %d, want 202", code)
	}
	// The second would also fit an empty budget, but 32+32 > 40.
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"jobs":[`+cheapJob+`]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("exhausted-budget submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// A field-less job costs nothing and is accepted.
	if code := postJSON(t, ts.URL+"/jobs", `{"jobs":[{"resolution":"coarse","nodes":3,"rows":1,"cols":1,"deltaT":-50}]}`, nil); code != http.StatusAccepted {
		t.Errorf("zero-cost submit: status %d, want 202", code)
	}
}

// TestJobsOversizedForBudgetIs413 checks a job bigger than the entire
// field budget is rejected as permanently oversized (413), not retryably
// throttled (429).
func TestJobsOversizedForBudgetIs413(t *testing.T) {
	engine := morestress.NewEngine(morestress.EngineOptions{Workers: 2})
	queue, err := NewQueue(engine, 8, 1, time.Minute, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(queue.Close)
	ts := httptest.NewServer(New(engine, queue).Routes())
	t.Cleanup(ts.Close)

	// 32 samples > the whole 10-sample budget: no amount of retrying helps.
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"jobs":[`+cheapJob+`]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit: status %d, want 413", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "" {
		t.Error("permanent rejection carries Retry-After")
	}
}

// TestSSEStreamEndsOnShutdown pins a job in running, attaches an SSE
// subscriber, and begins server shutdown: the stream must end promptly
// instead of forcing httpSrv.Shutdown to wait out its whole deadline.
func TestSSEStreamEndsOnShutdown(t *testing.T) {
	engine := morestress.NewEngine(morestress.EngineOptions{Workers: 2})
	queue, err := jobqueue.New(jobqueue.Options{
		Depth: 4, Workers: 1, TTL: time.Minute,
		Solve: func(ctx context.Context, sc morestress.Job) (*morestress.JobResult, error) {
			<-ctx.Done() // pin the job in running so the stream stays open
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(queue.Close)
	srv := New(engine, queue)
	ts := httptest.NewServer(srv.Routes())
	t.Cleanup(ts.Close)

	var sub SubmitResponse
	if code := postJSON(t, ts.URL+"/jobs", `{"jobs":[{"rows":1,"cols":1}]}`, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	resp, err := (&http.Client{Timeout: 30 * time.Second}).Get(ts.URL + "/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Read one event so the handler is demonstrably attached and streaming.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("read first SSE line: %v", err)
	}

	start := time.Now()
	srv.BeginShutdown()
	// With the stream released, the body reaches EOF almost immediately;
	// before the fix this read would hang until the client timeout.
	for {
		if _, err := br.ReadString('\n'); err != nil {
			break
		}
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("stream took %v to end after shutdown began", waited)
	}
}
