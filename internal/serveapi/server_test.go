package serveapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	morestress "repro"
)

// testServer returns an httptest server over a fresh engine and a
// single-worker job queue (strict FIFO, so queued-job tests are
// deterministic).
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	engine := morestress.NewEngine(morestress.EngineOptions{Workers: 2})
	queue, err := NewQueue(engine, 8, 1, time.Minute, DefaultJobFieldBudget, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(queue.Close)
	ts := httptest.NewServer(New(engine, queue).Routes())
	t.Cleanup(ts.Close)
	return ts
}

// cheapJob is a coarse low-order request that keeps the local stage fast.
const cheapJob = `{"resolution":"coarse","nodes":3,"rows":1,"cols":2,"deltaT":-100,"gridSamples":4}`

func TestHealthz(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body map[string]bool
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !body["ok"] {
		t.Error("healthz not ok")
	}
}

func TestSolveEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(cheapJob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Error != "" {
		t.Fatalf("solve error: %s", out.Error)
	}
	if !out.Converged || out.MaxVonMises <= 0 || out.GlobalDoFs <= 0 {
		t.Errorf("implausible solve response: %+v", out)
	}
	if out.Field != nil {
		t.Error("field returned without includeField")
	}
}

func TestSolveIncludeField(t *testing.T) {
	ts := testServer(t)
	body := strings.TrimSuffix(cheapJob, "}") + `,"includeField":true}`
	resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Field == nil {
		t.Fatal("includeField returned no field")
	}
	if out.Field.NX != 2*4 || out.Field.NY != 1*4 || len(out.Field.V) != out.Field.NX*out.Field.NY {
		t.Errorf("field shape %d×%d (%d values)", out.Field.NX, out.Field.NY, len(out.Field.V))
	}
}

func TestSolveRejectsBadRequests(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name, body string
	}{
		{"malformed", `{"rows":`},
		{"unknown field", `{"rows":1,"cols":1,"bogus":true}`},
		{"zero size", `{"rows":0,"cols":4}`},
		{"bad solver", `{"rows":1,"cols":1,"solver":"lu"}`},
		{"bad structure", `{"rows":1,"cols":1,"structure":"coax"}`},
		{"oversized", `{"rows":100000,"cols":1}`},
		{"oversized field", `{"rows":512,"cols":512,"gridSamples":500}`},
		{"field without samples", `{"rows":1,"cols":1,"includeField":true}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	// Wrong method routes to 405.
	resp, err := http.Get(ts.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /solve: status %d, want 405", resp.StatusCode)
	}
}

func TestBatchEndpointSharesCache(t *testing.T) {
	ts := testServer(t)
	batch := `{"jobs":[` + cheapJob + `,` + cheapJob + `,` + cheapJob + `]}`
	resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 || out.Stats.Errors != 0 {
		t.Fatalf("batch stats %+v", out.Stats)
	}
	if out.Stats.CacheMisses != 1 || out.Stats.CacheHits != 2 {
		t.Errorf("cache misses/hits = %d/%d, want 1/2 (identical unit cells)", out.Stats.CacheMisses, out.Stats.CacheHits)
	}

	// The /stats endpoint reflects the work done.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.JobsDone != 3 || stats.Cache.Misses != 1 || stats.Cache.Entries != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestSolveExplicitZeroDeltaT checks that an explicit "deltaT": 0 is the
// zero-load baseline (zero stress), not silently coerced to the −250
// default.
func TestSolveExplicitZeroDeltaT(t *testing.T) {
	ts := testServer(t)
	body := `{"resolution":"coarse","nodes":3,"rows":1,"cols":1,"deltaT":0,"gridSamples":3}`
	resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Error != "" {
		t.Fatalf("solve error: %s", out.Error)
	}
	if out.MaxVonMises != 0 {
		t.Errorf("ΔT=0 produced max von Mises %g MPa, want 0 (deltaT coerced to default?)", out.MaxVonMises)
	}
}

func TestBatchRejectsEmptyAndBadJobs(t *testing.T) {
	ts := testServer(t)
	// A batch whose per-job fields are each in limits but whose sum is not.
	big := strings.Repeat(`{"rows":512,"cols":16,"gridSamples":22},`, 24)
	overAggregate := `{"jobs":[` + strings.TrimSuffix(big, ",") + `]}`
	for _, body := range []string{`{"jobs":[]}`, `{"jobs":[{"rows":0,"cols":1}]}`, overAggregate} {
		resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestSolvePrecondField checks the per-request preconditioner control: a
// named preconditioner is honored and echoed in the response, an unknown
// one is a 400, and an iterative response always names its (auto-resolved)
// preconditioner.
func TestSolvePrecondField(t *testing.T) {
	ts := testServer(t)

	post := func(body string) (*http.Response, JobResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out JobResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		return resp, out
	}

	resp, out := post(`{"resolution":"coarse","nodes":3,"rows":1,"cols":2,"deltaT":-100,"solver":"cg","precond":"jacobi"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Precond != "jacobi" {
		t.Errorf("precond = %q, want jacobi", out.Precond)
	}

	resp, out = post(cheapJob)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Precond == "" || out.Precond == "auto" {
		t.Errorf("iterative response should name the resolved preconditioner, got %q", out.Precond)
	}

	resp, _ = post(`{"rows":1,"cols":1,"precond":"bogus"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown precond: status %d, want 400", resp.StatusCode)
	}
}

// TestSolveOrderingField: the per-request "ordering" field selects the IC0
// factor ordering, the response names the concrete ordering the solve ran
// under, and /stats tallies solves per ordering.
func TestSolveOrderingField(t *testing.T) {
	ts := testServer(t)

	post := func(body string) (*http.Response, JobResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out JobResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		return resp, out
	}

	resp, out := post(`{"resolution":"coarse","nodes":3,"rows":1,"cols":2,"deltaT":-100,"solver":"cg","precond":"ic0","ordering":"multicolor"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Precond != "ic0" || out.Ordering != "multicolor" {
		t.Errorf("precond/ordering = %q/%q, want ic0/multicolor", out.Precond, out.Ordering)
	}

	// An iterative solve always names a concrete ordering, never "auto".
	resp, out = post(cheapJob)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Ordering == "" || out.Ordering == "auto" {
		t.Errorf("iterative response should name the concrete ordering, got %q", out.Ordering)
	}

	resp, _ = post(`{"rows":1,"cols":1,"ordering":"bogus"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown ordering: status %d, want 400", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	var total int64
	for ord, n := range stats.Solver.OrderingCounts {
		if ord == "auto" {
			t.Errorf("orderingCounts contains the unresolved %q key", ord)
		}
		total += n
	}
	if stats.Solver.OrderingCounts["multicolor"] < 1 {
		t.Errorf("orderingCounts = %v, want at least one multicolor solve", stats.Solver.OrderingCounts)
	}
	if total != stats.Solver.IterativeSolves {
		t.Errorf("orderingCounts sum %d != iterativeSolves %d", total, stats.Solver.IterativeSolves)
	}
}

// TestStatsSolverSection checks /stats surfaces the global-stage scaling
// counters: after a two-point sweep on one lattice the server must report
// one assembly, a reuse, and a warm-started iterative solve.
func TestStatsSolverSection(t *testing.T) {
	ts := testServer(t)
	for _, dt := range []string{"-100", "-200"} {
		resp, err := http.Post(ts.URL+"/solve", "application/json",
			strings.NewReader(`{"resolution":"coarse","nodes":3,"rows":1,"cols":2,"deltaT":`+dt+`,"solver":"cg"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve status %d", resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	s := stats.Solver
	if s.Assemblies != 1 {
		t.Errorf("assemblies = %d, want 1", s.Assemblies)
	}
	if s.AssemblyHits != 1 {
		t.Errorf("assemblyHits = %d, want 1", s.AssemblyHits)
	}
	if s.IterativeSolves != 2 || s.WarmStarts != 1 {
		t.Errorf("iterativeSolves/warmStarts = %d/%d, want 2/1", s.IterativeSolves, s.WarmStarts)
	}
	if s.WarmStartRate != 0.5 {
		t.Errorf("warmStartRate = %g, want 0.5", s.WarmStartRate)
	}
	if s.Iterations <= 0 {
		t.Errorf("iterations = %d, want > 0", s.Iterations)
	}
	if s.PrecondBuilds != 1 || s.PrecondHits != 1 {
		t.Errorf("precondBuilds/precondHits = %d/%d, want 1/1 (built once per lattice, then shared)",
			s.PrecondBuilds, s.PrecondHits)
	}
}
