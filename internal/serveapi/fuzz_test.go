package serveapi

import (
	"bytes"
	"encoding/json"
	"testing"

	morestress "repro"
)

// FuzzJobRequestJSON hardens the request-parsing layer: arbitrary JSON must
// never panic, and any request that passes validation must satisfy every
// resource guard the server relies on downstream — the guards are what keep
// one request from allocating the machine, so a validation bypass is a
// denial-of-service bug. Hand-picked bad requests were covered by unit
// tests; this explores the rest of the input space. Both the /solve shape
// and the /batch//jobs envelope are exercised.
func FuzzJobRequestJSON(f *testing.F) {
	f.Add([]byte(cheapJob))
	f.Add([]byte(`{"pitch":15,"rows":10,"cols":10,"deltaT":-250,"gridSamples":100}`))
	f.Add([]byte(`{"rows":1,"cols":1,"solver":"direct","structure":"annular","resolution":"coarse","quadratic":true}`))
	f.Add([]byte(`{"rows":512,"cols":512,"gridSamples":500}`))
	f.Add([]byte(`{"rows":1,"cols":1,"deltaT":0,"includeField":true,"gridSamples":3}`))
	f.Add([]byte(`{"rows":2,"cols":2,"solver":"cg","precond":"ic0"}`))
	f.Add([]byte(`{"rows":2,"cols":2,"precond":"bogus"}`))
	f.Add([]byte(`{"rows":1e9,"cols":-3,"nodes":99,"tol":-1}`))
	f.Add([]byte(`{"jobs":[{"rows":1,"cols":1}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		check := func(req JobRequest) {
			job, err := req.ToJob(morestress.PrecondAuto, morestress.OrderingAuto)
			if err != nil {
				return // rejected; only panics are bugs
			}
			if job.Rows < 1 || job.Cols < 1 || job.Rows > maxArrayDim || job.Cols > maxArrayDim {
				t.Fatalf("validated job has out-of-range dims %dx%d", job.Rows, job.Cols)
			}
			if job.GridSamples < 0 || job.GridSamples > maxGridSamples {
				t.Fatalf("validated job has gridSamples %d", job.GridSamples)
			}
			if total := req.fieldSamples(); total > maxFieldSamples {
				t.Fatalf("validated job would hold %d field samples", total)
			}
			if req.IncludeField && job.GridSamples == 0 {
				t.Fatal("validated job includes a field with no samples")
			}
			if req.Nodes != 0 && (req.Nodes < 2 || req.Nodes > 8) {
				t.Fatalf("validated job has %d interpolation nodes", req.Nodes)
			}
		}

		// The /solve shape, decoded exactly as decodeJSON does.
		var single JobRequest
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&single); err == nil {
			check(single)
		}

		// The /batch and /jobs envelope.
		var batch BatchRequest
		dec = json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&batch); err == nil {
			if len(batch.Jobs) > maxBatchJobs {
				return // the handler rejects before per-job validation
			}
			var total int64
			for _, req := range batch.Jobs {
				check(req)
				total += req.fieldSamples()
			}
			_ = total // the aggregate cap is checked by the handler after per-job validation
		}
	})
}
