package serveapi

import (
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	morestress "repro"
	"repro/internal/jobqueue"
	"repro/internal/wal"
)

// jobMeta is the per-job metadata the HTTP layer stores in the queue: the
// response-shaping flags of the original request, needed again when the
// result is fetched. The fields are exported because the queue journals meta
// through gob when -journal-dir is set.
type jobMeta struct {
	IncludeField []bool // per scenario
}

func init() {
	// Meta rides the job journal as a gob interface value.
	gob.Register(&jobMeta{})
}

// SubmitResponse is the POST /jobs payload: the ID to poll, immediately.
type SubmitResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// QueueDepth is the number of jobs still queued when the response was
	// built (0 when a worker claimed this one immediately) — a backlog
	// hint for the client.
	QueueDepth int `json:"queueDepth"`
	// Poll and Events are the URLs of the job's polling and SSE endpoints.
	Poll   string `json:"poll"`
	Events string `json:"events"`
}

// JobStatusResponse is the GET /jobs/{id} payload.
type JobStatusResponse struct {
	ID        string  `json:"id"`
	State     string  `json:"state"`
	Total     int     `json:"total"`
	Completed int     `json:"completed"`
	Failed    int     `json:"failed"`
	WaitMS    float64 `json:"waitMs"`
	RunMS     float64 `json:"runMs"`
	// SubmittedAt/StartedAt/FinishedAt are RFC 3339 timestamps; empty
	// until the lifecycle reaches them.
	SubmittedAt string `json:"submittedAt"`
	StartedAt   string `json:"startedAt,omitempty"`
	FinishedAt  string `json:"finishedAt,omitempty"`
	Error       string `json:"error,omitempty"`
	// Results carries per-scenario outcomes once the job is terminal
	// (partial up to the cancellation point for cancelled jobs).
	Results []JobResponse `json:"results,omitempty"`
}

// handleJobSubmit accepts the same payload as /batch but returns an ID
// immediately; the solve proceeds in the queue. A full queue or an
// exhausted retained-result budget → 429.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	jobs, include, samples, ok := s.decodeBatch(w, r)
	if !ok {
		return
	}
	// The job's cost against the queue budget is its field sample count —
	// the dominant memory term of a result retained for the TTL. A job
	// bigger than the whole budget can never be admitted, so reject it as
	// permanently oversized rather than retryably throttled.
	if max := s.queue.Stats().MaxCost; max > 0 && samples > max {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("job fields would hold %d samples, above this server's %d-sample budget; shrink gridSamples or split the job", samples, max))
		return
	}
	id, err := s.queue.Submit(jobs, &jobMeta{IncludeField: include}, samples)
	switch {
	case errors.Is(err, jobqueue.ErrQueueFull):
		// The backlog drains on the solve timescale.
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, jobqueue.ErrOverloaded):
		// Budget frees when retained results expire — a TTL timescale.
		w.Header().Set("Retry-After", "60")
		httpError(w, http.StatusTooManyRequests, err)
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID:         id,
		State:      string(jobqueue.StatePending),
		QueueDepth: s.queue.Stats().Depth,
		Poll:       "/jobs/" + id,
		Events:     "/jobs/" + id + "/events",
	})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	snap, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("no such job (unknown ID, or result expired)"))
		return
	}
	writeJSON(w, http.StatusOK, toJobStatus(snap))
}

func toJobStatus(snap jobqueue.Snapshot) JobStatusResponse {
	out := JobStatusResponse{
		ID:          snap.ID,
		State:       string(snap.State),
		Total:       snap.Total,
		Completed:   snap.Completed,
		Failed:      snap.Failed,
		WaitMS:      float64(snap.Wait) / float64(time.Millisecond),
		RunMS:       float64(snap.Run) / float64(time.Millisecond),
		SubmittedAt: snap.Submitted.Format(time.RFC3339Nano),
		Error:       snap.Err,
	}
	if !snap.Started.IsZero() {
		out.StartedAt = snap.Started.Format(time.RFC3339Nano)
	}
	if !snap.Finished.IsZero() {
		out.FinishedAt = snap.Finished.Format(time.RFC3339Nano)
	}
	if snap.State.Terminal() && len(snap.Results) > 0 {
		meta, _ := snap.Meta.(*jobMeta)
		out.Results = make([]JobResponse, len(snap.Results))
		for i, res := range snap.Results {
			include := meta != nil && i < len(meta.IncludeField) && meta.IncludeField[i]
			out.Results[i] = toResponse(res, include)
		}
	}
	return out
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	id := r.PathValue("id")
	err := s.queue.Cancel(id)
	switch {
	case errors.Is(err, jobqueue.ErrNotFound):
		httpError(w, http.StatusNotFound, err)
	case errors.Is(err, jobqueue.ErrFinished):
		httpError(w, http.StatusConflict, err)
	case err != nil:
		httpError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, map[string]string{"id": id, "state": "cancelling"})
	}
}

// handleJobEvents streams the job's lifecycle as Server-Sent Events: the
// history so far is replayed first, then transitions arrive live. Event
// names are the jobqueue event types ("state", "scenario"); each data line
// is the event JSON. The stream ends after the terminal state event.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	events, stop, ok := s.queue.Subscribe(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("no such job (unknown ID, or result expired)"))
		return
	}
	defer stop()
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	if canFlush {
		flusher.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			// Server shutting down: end the stream now instead of making
			// httpSrv.Shutdown wait out its whole deadline on us.
			return
		case ev, open := <-events:
			if !open {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
				return
			}
			if canFlush {
				flusher.Flush()
			}
		}
	}
}

// decodeBatch parses and validates a batch-shaped request body ({"jobs":
// [...]}), shared by POST /batch and POST /jobs. It returns the translated
// scenarios, each scenario's includeField flag, and the request's total
// field sample count; ok is false when the response has already been
// written.
func (s *Server) decodeBatch(w http.ResponseWriter, r *http.Request) ([]morestress.Job, []bool, int64, bool) {
	var req BatchRequest
	if !decodeJSON(w, r, &req) {
		return nil, nil, 0, false
	}
	if len(req.Jobs) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("batch has no jobs"))
		return nil, nil, 0, false
	}
	if len(req.Jobs) > maxBatchJobs {
		httpError(w, http.StatusBadRequest, fmt.Errorf("batch exceeds %d jobs", maxBatchJobs))
		return nil, nil, 0, false
	}
	jobs := make([]morestress.Job, len(req.Jobs))
	include := make([]bool, len(req.Jobs))
	var batchSamples int64
	for i := range req.Jobs {
		job, err := req.Jobs[i].ToJobPrec(s.Precond, s.Ordering, s.Precision)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("job %d: %w", i, err))
			return nil, nil, 0, false
		}
		jobs[i] = job
		include[i] = req.Jobs[i].IncludeField
		batchSamples += req.Jobs[i].fieldSamples()
	}
	if batchSamples > maxBatchFieldSamples {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("batch fields would hold %d samples; the sum of rows·cols·gridSamples² must not exceed %d", batchSamples, maxBatchFieldSamples))
		return nil, nil, 0, false
	}
	return jobs, include, batchSamples, true
}

// DefaultJobFieldBudget bounds the field samples summed over every tracked
// async job — queued, running, and finished-but-retained for the TTL. The
// synchronous path caps one /batch response at maxBatchFieldSamples because
// all its fields are in memory at once; the async path retains results
// after completion, so without this aggregate bound a client could park
// many at-cap results in the TTL window and exhaust memory. Four full-size
// batches ≈ 1 GiB of float64 samples.
const DefaultJobFieldBudget = 4 * maxBatchFieldSamples

// NewQueue wires a jobqueue over the engine: scenarios run one at a time
// per queue worker through Engine.Solve (which parallelizes internally and
// shares the ROM and factor caches with the synchronous endpoints).
// Cancellation takes effect at scenario boundaries. fieldBudget bounds the
// aggregate field samples of tracked jobs (0 = unlimited). journal, when
// non-nil, makes accepted jobs durable across restarts.
func NewQueue(e morestress.Solver, depth, workers int, ttl time.Duration, fieldBudget int64, journal *wal.Log) (*jobqueue.Queue, error) {
	return jobqueue.New(jobqueue.Options{
		Depth:   depth,
		Workers: workers,
		TTL:     ttl,
		MaxCost: fieldBudget,
		Journal: journal,
		Solve: func(ctx context.Context, sc morestress.Job) (*morestress.JobResult, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res, _ := e.Solve(sc)
			return res, nil
		},
	})
}
