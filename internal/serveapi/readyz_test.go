package serveapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	morestress "repro"
	"repro/internal/wal"
)

// TestReadyzRecoveryWindow is the regression test for the not-yet-ready
// window: a replica whose listener is up but whose journal replay has not
// finished must answer /healthz 200 (alive), /readyz 503 (not live), and
// refuse traffic-mutating requests with 503 + Retry-After — the contract
// the router's health probes and failover depend on. Readiness flips with
// FinishRecovery, exactly as cmd/serve sequences it around queue.Recover.
func TestReadyzRecoveryWindow(t *testing.T) {
	engine := morestress.NewEngine(morestress.EngineOptions{Workers: 2})
	queue, err := NewQueue(engine, 8, 1, time.Minute, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(queue.Close)
	srv := New(engine, queue)
	srv.BeginRecovery() // what cmd/serve does before the listener starts
	ts := httptest.NewServer(srv.Routes())
	t.Cleanup(ts.Close)

	get := func(path string) (*http.Response, ReadyzResponse) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body ReadyzResponse
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil && path == "/readyz" {
			t.Fatalf("decode %s: %v", path, err)
		}
		return resp, body
	}

	// Alive but not live.
	if resp, _ := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d during recovery, want 200", resp.StatusCode)
	}
	resp, body := get("/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d during recovery, want 503", resp.StatusCode)
	}
	if body.Ready || body.Recovered {
		t.Fatalf("readyz body during recovery: %+v", body)
	}
	if !body.Accepting || !body.JournalWritable {
		t.Fatalf("recovery window misattributed: %+v", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("not-ready readyz carries no Retry-After")
	}

	// Every mutating endpoint refuses; read-only endpoints still serve.
	for _, probe := range []struct{ method, path, payload string }{
		{http.MethodPost, "/solve", cheapJob},
		{http.MethodPost, "/batch", `{"jobs":[` + cheapJob + `]}`},
		{http.MethodPost, "/jobs", `{"jobs":[` + cheapJob + `]}`},
		{http.MethodDelete, "/jobs/abc", ""},
	} {
		req, err := http.NewRequest(probe.method, ts.URL+probe.path, strings.NewReader(probe.payload))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s %s: status %d during recovery, want 503", probe.method, probe.path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s %s: no Retry-After during recovery", probe.method, probe.path)
		}
	}
	if resp, err := http.Get(ts.URL + "/stats"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stats unavailable during recovery: %v", err)
	} else {
		resp.Body.Close()
	}

	// Recovery finishes: the same endpoints flip open with no restart.
	srv.FinishRecovery()
	resp, body = get("/readyz")
	if resp.StatusCode != http.StatusOK || !body.Ready {
		t.Fatalf("readyz after recovery: status %d body %+v", resp.StatusCode, body)
	}
	if code := postJSON(t, ts.URL+"/solve", cheapJob, &JobResponse{}); code != http.StatusOK {
		t.Fatalf("solve after recovery: status %d", code)
	}
}

// TestReadyzJournalUnwritable: a journal that can no longer append makes
// the replica not-ready (accepted jobs could not be persisted), while
// liveness stays green.
func TestReadyzJournalUnwritable(t *testing.T) {
	engine := morestress.NewEngine(morestress.EngineOptions{Workers: 2})
	journal, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	queue, err := NewQueue(engine, 8, 1, time.Minute, 0, journal)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(queue.Close)
	srv := New(engine, queue)
	srv.Journal = journal
	ts := httptest.NewServer(srv.Routes())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz %d with a healthy journal", resp.StatusCode)
	}

	// Close the journal out from under the server — the cheapest stand-in
	// for a dead disk; Writable turns false either way.
	journal.Close()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var body ReadyzResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || body.JournalWritable {
		t.Fatalf("readyz with unwritable journal: status %d body %+v", resp.StatusCode, body)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatal("liveness dropped with the journal — healthz must stay 200")
	} else {
		resp.Body.Close()
	}
}
