package chiplet

import (
	"math"
	"testing"

	"repro/internal/fem"
	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/solver"
)

// TestBimetalCurvatureMatchesTimoshenko validates the warpage physics of the
// package solver against the classical Timoshenko bimetal-strip solution
// (the analytic family behind the paper's warpage reference [26]): a free
// two-layer plate under uniform ΔT bends with curvature
//
//	κ = 6·E1'·E2'·t1·t2·(t1+t2)·Δα·ΔT /
//	    (E1'²t1⁴ + 4E1'E2't1³t2 + 6E1'E2't1²t2² + 4E1'E2't1t2³ + E2'²t2⁴)
//
// with the biaxial moduli E' = E/(1−ν) for an equi-biaxially bending plate.
func TestBimetalCurvatureMatchesTimoshenko(t *testing.T) {
	if testing.Short() {
		t.Skip("bimetal plate solve is slow")
	}
	// Layer 1 (bottom): composite; layer 2 (top): silicon.
	m1 := material.Composite
	m2 := material.Silicon
	const (
		side   = 1000.0 // µm
		t1     = 100.0
		t2     = 100.0
		deltaT = -100.0
	)

	// Mesh the plate: coarse laterally, a few cells per layer.
	xs := mesh.UniformAxis(0, side, 16)
	zs := append(mesh.UniformAxis(0, t1, 3), mesh.UniformAxis(t1, t1+t2, 3)[1:]...)
	g, err := mesh.NewGrid(xs, append([]float64(nil), xs...), zs)
	if err != nil {
		t.Fatal(err)
	}
	g.AssignMaterials(func(c mesh.Vec3) uint8 {
		if c.Z < t1 {
			return 0
		}
		return 1
	})
	model := &fem.Model{Grid: g, Mats: []material.Material{m1, m2}}
	asm, err := model.Assemble(8)
	if err != nil {
		t.Fatal(err)
	}
	// Free plate with 3-2-1 constraints at the bottom center.
	nn := g.NumNodes()
	isBC := make([]bool, 3*nn)
	a := nearestNode(g, mesh.Vec3{X: side / 2, Y: side / 2, Z: 0})
	b := nearestNode(g, mesh.Vec3{X: side * 0.9, Y: side / 2, Z: 0})
	c := nearestNode(g, mesh.Vec3{X: side / 2, Y: side * 0.9, Z: 0})
	isBC[3*a], isBC[3*a+1], isBC[3*a+2] = true, true, true
	isBC[3*b+1], isBC[3*b+2] = true, true
	isBC[3*c+2] = true
	red, err := fem.Reduce(asm.K, asm.F, isBC)
	if err != nil {
		t.Fatal(err)
	}
	xf, _, err := solver.CG(red.Aff, red.RHS(deltaT, nil), nil, solver.Options{Tol: 1e-9, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	u := red.Expand(xf, nil)

	// Fit the curvature of the bottom face along the x centerline through
	// the center region (avoiding edge effects): uz ≈ uz0 + κ/2·(x−x0)².
	x0 := side / 2
	uzAt := func(x float64) float64 {
		return model.DisplacementAtPoint(u, mesh.Vec3{X: x, Y: side / 2, Z: 0})[2]
	}
	// Central second difference over a wide stencil.
	h := side / 5
	kappa := (uzAt(x0+h) - 2*uzAt(x0) + uzAt(x0-h)) / (h * h)

	e1 := m1.E / (1 - m1.Nu)
	e2 := m2.E / (1 - m2.Nu)
	dAlpha := m2.CTE - m1.CTE
	num := 6 * e1 * e2 * t1 * t2 * (t1 + t2) * dAlpha * deltaT
	den := e1*e1*math.Pow(t1, 4) + 4*e1*e2*math.Pow(t1, 3)*t2 +
		6*e1*e2*t1*t1*t2*t2 + 4*e1*e2*t1*math.Pow(t2, 3) + e2*e2*math.Pow(t2, 4)
	// Sign convention: Timoshenko's positive κ (top layer effectively
	// longer) is a dome — center above the edges — which is a *negative*
	// second derivative of uz(x). Map the formula into the uz'' convention.
	want := -num / den

	rel := math.Abs(kappa-want) / math.Abs(want)
	t.Logf("curvature: FEM %.4e 1/µm, Timoshenko %.4e 1/µm (rel. diff %.1f%%)", kappa, want, 100*rel)
	// The plate is finite and moderately thick; 15% agreement confirms the
	// warpage physics (sign, magnitude, and material dependence).
	if rel > 0.15 {
		t.Errorf("curvature off by %.1f%%", 100*rel)
	}
	// Sign check: silicon on top of high-CTE composite under cooling warps
	// the package convex up (edges of the bottom face move up relative to
	// the center ⇒ κ > 0 for Δα·ΔT > 0).
	if math.Signbit(kappa) != math.Signbit(want) {
		t.Error("curvature has the wrong sign")
	}
}
