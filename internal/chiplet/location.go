package chiplet

import (
	"fmt"

	"repro/internal/mesh"
)

// Location identifies the five TSV-array embedding positions of Fig. 5(b).
type Location int

const (
	// Loc1 is the interposer center.
	Loc1 Location = iota + 1
	// Loc2 is under the middle of a die edge (background stress gradient).
	Loc2
	// Loc3 is under a die ("chip") corner — sharp background variation.
	Loc3
	// Loc4 is at the middle of an interposer edge.
	Loc4
	// Loc5 is at an interposer corner — the sharpest background variation.
	Loc5
)

// Locations lists all five standard locations.
var Locations = []Location{Loc1, Loc2, Loc3, Loc4, Loc5}

// String implements fmt.Stringer.
func (l Location) String() string {
	if l < Loc1 || l > Loc5 {
		return fmt.Sprintf("Location(%d)", int(l))
	}
	return fmt.Sprintf("loc%d", int(l))
}

// SubmodelOrigin returns the minimum corner (x, y, z) of a w×w sub-model
// footprint at the given location. The sub-model spans the interposer
// thickness in z and is clamped to stay inside the interposer laterally.
func SubmodelOrigin(st Stack, loc Location, w float64) (mesh.Vec3, error) {
	if err := st.Validate(); err != nil {
		return mesh.Vec3{}, err
	}
	if w > st.InterposerSize {
		return mesh.Vec3{}, fmt.Errorf("chiplet: sub-model width %g exceeds interposer %g", w, st.InterposerSize)
	}
	intLo := (st.SubstrateSize - st.InterposerSize) / 2
	intHi := intLo + st.InterposerSize
	dieHi := (st.SubstrateSize + st.DieSize) / 2
	center := st.SubstrateSize / 2
	zLo, _ := st.InterposerZ()

	var cx, cy float64
	switch loc {
	case Loc1:
		cx, cy = center, center
	case Loc2:
		cx, cy = dieHi, center
	case Loc3:
		cx, cy = dieHi, dieHi
	case Loc4:
		cx, cy = intHi-w/2, center
	case Loc5:
		cx, cy = intHi-w/2, intHi-w/2
	default:
		return mesh.Vec3{}, fmt.Errorf("chiplet: unknown location %d", int(loc))
	}
	x := clamp(cx-w/2, intLo, intHi-w)
	y := clamp(cy-w/2, intLo, intHi-w)
	return mesh.Vec3{X: x, Y: y, Z: zLo}, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
