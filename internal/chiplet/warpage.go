package chiplet

import "repro/internal/mesh"

// Warpage reports standard package-warpage metrics from the coarse solution:
// the peak-to-valley out-of-plane deflection of the substrate bottom face
// and the corner-to-center deflection (coplanarity measures used by the
// JEDEC-style characterizations the paper's warpage reference [26] targets).
type Warpage struct {
	// PeakToValley is max(uz) − min(uz) over the bottom face (µm).
	PeakToValley float64
	// CornerToCenter is uz(corner) − uz(center) on the bottom face; its
	// sign distinguishes "crying" (positive) from "smiling" (negative)
	// warpage in the package-down orientation.
	CornerToCenter float64
}

// Warpage computes the warpage metrics of the solved package.
func (c *Coarse) Warpage() Warpage {
	g := c.Model.Grid
	var minUz, maxUz float64
	first := true
	for n := 0; n < g.NumNodes(); n++ {
		co := g.NodeCoord(n)
		if co.Z != g.Zs[0] { //stressvet:allow floatcmp -- node Z is copied verbatim from g.Zs; identity match selects the bottom plane
			continue
		}
		uz := c.U[3*n+2]
		if first {
			minUz, maxUz = uz, uz
			first = false
			continue
		}
		if uz < minUz {
			minUz = uz
		}
		if uz > maxUz {
			maxUz = uz
		}
	}
	side := c.Stack.SubstrateSize
	center := c.DisplacementAt(mesh.Vec3{X: side / 2, Y: side / 2, Z: 0})
	// Average the four corners so the rigid tilt admitted by the 3-2-1
	// constraints cancels.
	var cornerUz float64
	for _, xy := range [][2]float64{{0, 0}, {side, 0}, {0, side}, {side, side}} {
		cornerUz += c.DisplacementAt(mesh.Vec3{X: xy[0], Y: xy[1], Z: 0})[2]
	}
	cornerUz /= 4
	return Warpage{
		PeakToValley:   maxUz - minUz,
		CornerToCenter: cornerUz - center[2],
	}
}
