package chiplet

import (
	"math"
	"testing"

	"repro/internal/mesh"
	"repro/internal/solver"
)

// testResolution is a cheap coarse mesh for unit tests.
func testResolution() Resolution {
	return Resolution{Lateral: 10, SubZ: 2, IntZ: 1, DieZ: 1}
}

func TestDefaultStackValid(t *testing.T) {
	if err := DefaultStack().Validate(); err != nil {
		t.Fatal(err)
	}
	lo, hi := DefaultStack().InterposerZ()
	if lo != 200 || hi != 250 {
		t.Errorf("interposer z [%g, %g]", lo, hi)
	}
}

func TestStackValidation(t *testing.T) {
	s := DefaultStack()
	s.DieSize = 5000 // larger than interposer
	if err := s.Validate(); err == nil {
		t.Error("expected error for die > interposer")
	}
	var zero Stack
	if err := zero.Validate(); err == nil {
		t.Error("expected error for zero stack")
	}
}

func TestSegmentedAxis(t *testing.T) {
	ax := SegmentedAxis([]float64{0, 10, 30}, 5)
	// Breakpoints must appear exactly.
	found10 := false
	for _, v := range ax {
		if v == 10 {
			found10 = true
		}
	}
	if !found10 {
		t.Errorf("axis misses breakpoint: %v", ax)
	}
	for i := 1; i < len(ax); i++ {
		if ax[i] <= ax[i-1] {
			t.Fatal("axis not increasing")
		}
	}
	if ax[0] != 0 || ax[len(ax)-1] != 30 {
		t.Errorf("axis endpoints: %v", ax)
	}
}

func TestBuildGridLayers(t *testing.T) {
	st := DefaultStack()
	g, err := BuildGrid(st, testResolution(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Substrate center element.
	e, _, _, _ := g.Locate(mesh.Vec3{X: 1000, Y: 1000, Z: 100})
	if g.MatID[e] != matSubstrate {
		t.Errorf("substrate center is material %d", g.MatID[e])
	}
	// Interposer center.
	e, _, _, _ = g.Locate(mesh.Vec3{X: 1000, Y: 1000, Z: 225})
	if g.MatID[e] != matInterposer {
		t.Errorf("interposer center is material %d", g.MatID[e])
	}
	// Die center.
	e, _, _, _ = g.Locate(mesh.Vec3{X: 1000, Y: 1000, Z: 300})
	if g.MatID[e] != matDie {
		t.Errorf("die center is material %d", g.MatID[e])
	}
	// Outside the interposer at interposer height: void.
	e, _, _, _ = g.Locate(mesh.Vec3{X: 100, Y: 100, Z: 225})
	if g.MatID[e] != mesh.VoidMaterial {
		t.Errorf("expected void, got %d", g.MatID[e])
	}
	// Outside the die at die height: void.
	e, _, _, _ = g.Locate(mesh.Vec3{X: 450, Y: 1000, Z: 300})
	if g.MatID[e] != mesh.VoidMaterial {
		t.Errorf("expected void above interposer rim, got %d", g.MatID[e])
	}
}

func TestSolveCoarseWarpage(t *testing.T) {
	st := DefaultStack()
	c, err := SolveCoarse(st, testResolution(), -250, nil, solver.Options{Tol: 1e-8}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Stats.Converged {
		t.Error("coarse solve did not converge")
	}
	// Cooling a high-CTE substrate under low-CTE silicon bends the package:
	// the substrate corners must move out of plane relative to the center
	// (classic warpage), and lateral contraction must point inward.
	ctr := c.DisplacementAt(mesh.Vec3{X: 1000, Y: 1000, Z: 0})
	corner := c.DisplacementAt(mesh.Vec3{X: 10, Y: 10, Z: 0})
	warp := math.Abs(corner[2] - ctr[2])
	if warp < 0.1 {
		t.Errorf("expected visible warpage, got %g µm", warp)
	}
	edge := c.DisplacementAt(mesh.Vec3{X: 1990, Y: 1000, Z: 100})
	ctr2 := c.DisplacementAt(mesh.Vec3{X: 1000, Y: 1000, Z: 100})
	if edge[0] >= ctr2[0] {
		t.Errorf("expected inward contraction at +x edge: ux(edge)=%g ux(center)=%g", edge[0], ctr2[0])
	}
	// The 3-2-1 constraints admit a rigid tilt, so displacement symmetry is
	// not expected — but stress is rigid-motion invariant and must be
	// mirror symmetric about the package center.
	s1 := c.StressAt(mesh.Vec3{X: 500, Y: 1000, Z: 100})
	s2 := c.StressAt(mesh.Vec3{X: 1500, Y: 1000, Z: 100})
	for _, i := range []int{0, 1, 2} { // normal components mirror directly
		if math.Abs(s1[i]-s2[i]) > 1e-3*(1+math.Abs(s1[i])) {
			t.Errorf("stress not mirror symmetric: comp %d %g vs %g", i, s1[i], s2[i])
		}
	}
}

func TestStressAtInterposerNearDieEdge(t *testing.T) {
	st := DefaultStack()
	c, err := SolveCoarse(st, testResolution(), -250, nil, solver.Options{Tol: 1e-8}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The background stress in the interposer must vary between the center
	// and the die-edge shadow — that is what defeats the naive
	// superposition baseline in scenario 2.
	sc := c.StressAt(mesh.Vec3{X: 1000, Y: 1000, Z: 225})
	se := c.StressAt(mesh.Vec3{X: 1690, Y: 1000, Z: 225})
	diff := 0.0
	for i := 0; i < 6; i++ {
		diff += math.Abs(sc[i] - se[i])
	}
	if diff < 1 {
		t.Errorf("background stress unexpectedly uniform (diff %g MPa)", diff)
	}
}

func TestSubmodelOriginLocations(t *testing.T) {
	st := DefaultStack()
	const w = 7 * 15 // 7 blocks at 15 µm
	intLo := (st.SubstrateSize - st.InterposerSize) / 2
	intHi := intLo + st.InterposerSize
	for _, loc := range Locations {
		o, err := SubmodelOrigin(st, loc, w)
		if err != nil {
			t.Fatalf("%v: %v", loc, err)
		}
		if o.X < intLo || o.X+w > intHi || o.Y < intLo || o.Y+w > intHi {
			t.Errorf("%v: sub-model [%g,%g]² leaves the interposer", loc, o.X, o.Y)
		}
		if o.Z != 200 {
			t.Errorf("%v: z origin %g, want 200", loc, o.Z)
		}
	}
	// Distinct locations are actually distinct.
	o1, _ := SubmodelOrigin(st, Loc1, w)
	o5, _ := SubmodelOrigin(st, Loc5, w)
	if o1 == o5 {
		t.Error("loc1 and loc5 coincide")
	}
	// Loc5 touches the interposer corner.
	if math.Abs(o5.X+w-intHi) > 1e-9 || math.Abs(o5.Y+w-intHi) > 1e-9 {
		t.Errorf("loc5 should be flush with the interposer corner, got %v", o5)
	}
}

func TestSubmodelOriginErrors(t *testing.T) {
	st := DefaultStack()
	if _, err := SubmodelOrigin(st, Loc1, 5000); err == nil {
		t.Error("expected error for oversized sub-model")
	}
	if _, err := SubmodelOrigin(st, Location(99), 10); err == nil {
		t.Error("expected error for unknown location")
	}
}

func TestLocationString(t *testing.T) {
	if Loc3.String() != "loc3" {
		t.Errorf("String: %s", Loc3)
	}
	if Location(42).String() == "loc42" {
		t.Error("out-of-range location should not format as locN")
	}
}

func TestWarpageMetrics(t *testing.T) {
	st := DefaultStack()
	c, err := SolveCoarse(st, testResolution(), -250, nil, solver.Options{Tol: 1e-8}, 8)
	if err != nil {
		t.Fatal(err)
	}
	w := c.Warpage()
	if w.PeakToValley <= 0 {
		t.Errorf("peak-to-valley warpage %g, want positive", w.PeakToValley)
	}
	// Corner-to-center must be bounded by the full peak-to-valley swing.
	if math.Abs(w.CornerToCenter) > w.PeakToValley+1e-9 {
		t.Errorf("corner-to-center %g exceeds peak-to-valley %g", w.CornerToCenter, w.PeakToValley)
	}
	// Cooling: the high-CTE substrate under stiffer silicon shortens its
	// bottom fibers, doming the package (center up, corners down) — the
	// same orientation the Timoshenko bimetal test validates. Hence
	// corner-to-center is negative.
	if w.CornerToCenter >= 0 {
		t.Errorf("expected corners below center after cooling, got %g", w.CornerToCenter)
	}
	// Warpage scales linearly with |ΔT|.
	c2, err := SolveCoarse(st, testResolution(), -125, nil, solver.Options{Tol: 1e-8}, 8)
	if err != nil {
		t.Fatal(err)
	}
	w2 := c2.Warpage()
	if math.Abs(w.PeakToValley-2*w2.PeakToValley) > 0.02*w.PeakToValley {
		t.Errorf("warpage not linear in deltaT: %g vs 2x%g", w.PeakToValley, w2.PeakToValley)
	}
}
