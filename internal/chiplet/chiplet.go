// Package chiplet models the scenario-2 package (Fig. 5(b)): a composite
// substrate carrying a silicon interposer carrying a silicon die. A coarse
// FEM solve of the whole (TSV-free) package under thermal load produces the
// global warpage field; the sub-modeling procedure (§4.4) then extracts
// displacements on the boundary of an embedded TSV-array sub-model and
// imposes them on the global stage (or on the reference fine solve).
package chiplet

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/fem"
	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/solver"
)

// Stack describes the package geometry (all µm). Layers are centered
// laterally on one another; z runs upward from the substrate bottom.
type Stack struct {
	SubstrateSize, SubstrateThick       float64
	InterposerSize, InterposerThick     float64
	DieSize, DieThick                   float64
	SubstrateMat, InterposerMat, DieMat material.Material
}

// DefaultStack returns the chiplet used by the scenario-2 experiments: a
// 2000 µm composite substrate, a 1400 µm silicon interposer whose 50 µm
// thickness hosts the TSVs, and an 800 µm silicon die.
func DefaultStack() Stack {
	return Stack{
		SubstrateSize: 2000, SubstrateThick: 200,
		InterposerSize: 1400, InterposerThick: 50,
		DieSize: 800, DieThick: 100,
		SubstrateMat:  material.Composite,
		InterposerMat: material.Silicon,
		DieMat:        material.Silicon,
	}
}

// Validate checks the stack geometry.
func (s Stack) Validate() error {
	if s.SubstrateSize <= 0 || s.SubstrateThick <= 0 || s.InterposerSize <= 0 ||
		s.InterposerThick <= 0 || s.DieSize <= 0 || s.DieThick <= 0 {
		return fmt.Errorf("chiplet: all dimensions must be positive: %+v", s)
	}
	if s.DieSize > s.InterposerSize || s.InterposerSize > s.SubstrateSize {
		return fmt.Errorf("chiplet: expected die <= interposer <= substrate laterally")
	}
	return nil
}

// InterposerZ returns the z-range [lo, hi] of the interposer layer.
func (s Stack) InterposerZ() (lo, hi float64) {
	return s.SubstrateThick, s.SubstrateThick + s.InterposerThick
}

// Resolution controls the coarse package mesh.
type Resolution struct {
	// Lateral is the approximate number of cells across the substrate edge.
	Lateral int
	// SubZ, IntZ, DieZ are cell counts through each layer.
	SubZ, IntZ, DieZ int
}

// DefaultResolution is the coarse-model density used by the experiments.
func DefaultResolution() Resolution {
	return Resolution{Lateral: 24, SubZ: 3, IntZ: 2, DieZ: 2}
}

// Material ids of the package mesh.
const (
	matSubstrate  uint8 = 0
	matInterposer uint8 = 1
	matDie        uint8 = 2
)

// Coarse is a solved coarse package model.
type Coarse struct {
	Stack     Stack
	Model     *fem.Model
	U         []float64
	DeltaT    float64
	Stats     solver.Stats
	SolveTime time.Duration
}

// SegmentedAxis builds an axis hitting every breakpoint exactly, subdividing
// each segment into cells of roughly the target size.
func SegmentedAxis(breaks []float64, targetCell float64) []float64 {
	var out []float64
	out = append(out, breaks[0])
	for i := 0; i+1 < len(breaks); i++ {
		lo, hi := breaks[i], breaks[i+1]
		n := int(math.Max(1, math.Round((hi-lo)/targetCell)))
		for c := 1; c <= n; c++ {
			out = append(out, lo+(hi-lo)*float64(c)/float64(n))
		}
	}
	return out
}

// BuildGrid meshes the package with void elements outside the stepped
// stack. extraBreaks adds lateral grid lines (e.g. the sub-model boundary)
// so that sub-model faces align with coarse element faces.
func BuildGrid(st Stack, res Resolution, extraBreaks []float64) (*mesh.Grid, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	intLo := (st.SubstrateSize - st.InterposerSize) / 2
	intHi := intLo + st.InterposerSize
	dieLo := (st.SubstrateSize - st.DieSize) / 2
	dieHi := dieLo + st.DieSize

	breakSet := map[float64]struct{}{
		0: {}, st.SubstrateSize: {},
		intLo: {}, intHi: {},
		dieLo: {}, dieHi: {},
	}
	for _, b := range extraBreaks {
		if b > 0 && b < st.SubstrateSize {
			breakSet[b] = struct{}{}
		}
	}
	breaks := make([]float64, 0, len(breakSet))
	for b := range breakSet {
		breaks = append(breaks, b)
	}
	sortFloats(breaks)

	target := st.SubstrateSize / float64(res.Lateral)
	lateral := SegmentedAxis(breaks, target)

	z0 := 0.0
	z1 := st.SubstrateThick
	z2 := z1 + st.InterposerThick
	z3 := z2 + st.DieThick
	zs := SegmentedAxis([]float64{z0, z1}, (z1-z0)/float64(res.SubZ))
	zs = append(zs, SegmentedAxis([]float64{z1, z2}, (z2-z1)/float64(res.IntZ))[1:]...)
	zs = append(zs, SegmentedAxis([]float64{z2, z3}, (z3-z2)/float64(res.DieZ))[1:]...)

	g, err := mesh.NewGrid(lateral, append([]float64(nil), lateral...), zs)
	if err != nil {
		return nil, err
	}
	g.AssignMaterials(func(c mesh.Vec3) uint8 {
		switch {
		case c.Z < z1:
			return matSubstrate
		case c.Z < z2:
			if c.X > intLo && c.X < intHi && c.Y > intLo && c.Y < intHi {
				return matInterposer
			}
			return mesh.VoidMaterial
		default:
			if c.X > dieLo && c.X < dieHi && c.Y > dieLo && c.Y < dieHi {
				return matDie
			}
			return mesh.VoidMaterial
		}
	})
	return g, nil
}

// SolveCoarse runs the coarse thermal-warpage solve of the TSV-free package.
// Rigid-body motion is removed with a 3-2-1 constraint set on the substrate
// bottom face, leaving the structure otherwise free to warp.
func SolveCoarse(st Stack, res Resolution, deltaT float64, extraBreaks []float64, opt solver.Options, workers int) (*Coarse, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	grid, err := BuildGrid(st, res, extraBreaks)
	if err != nil {
		return nil, err
	}
	model := &fem.Model{
		Grid: grid,
		Mats: []material.Material{matSubstrate: st.SubstrateMat, matInterposer: st.InterposerMat, matDie: st.DieMat},
	}
	start := time.Now()
	asm, err := model.Assemble(workers)
	if err != nil {
		return nil, err
	}

	nn := grid.NumNodes()
	isBC := make([]bool, 3*nn)
	for n, act := range asm.ActiveNode {
		if !act {
			isBC[3*n] = true
			isBC[3*n+1] = true
			isBC[3*n+2] = true
		}
	}
	// 3-2-1 constraints on the bottom face: center pins x/y/z, a point along
	// +x pins y/z (blocking rotation about x and z), a point along +y pins z
	// (blocking rotation about y).
	half := st.SubstrateSize / 2
	a := nearestNode(grid, mesh.Vec3{X: half, Y: half, Z: 0})
	b := nearestNode(grid, mesh.Vec3{X: st.SubstrateSize * 0.9, Y: half, Z: 0})
	c := nearestNode(grid, mesh.Vec3{X: half, Y: st.SubstrateSize * 0.9, Z: 0})
	isBC[3*a], isBC[3*a+1], isBC[3*a+2] = true, true, true
	isBC[3*b+1], isBC[3*b+2] = true, true
	isBC[3*c+2] = true

	red, err := fem.Reduce(asm.K, asm.F, isBC)
	if err != nil {
		return nil, err
	}
	rhs := red.RHS(deltaT, nil)
	if opt.Workers == 0 {
		opt.Workers = workers
	}
	if opt.Precond == solver.PrecondAuto {
		// The coarse package model is a large sparse fine-mesh system; see
		// solver.JacobiFamily for why the size-based auto rule (which would
		// pick serial IC0) does not apply.
		opt.Precond = solver.JacobiFamily(red.NFree())
	}
	xf, stats, err := solver.CG(red.Aff, rhs, nil, opt)
	if err != nil {
		return nil, fmt.Errorf("chiplet: coarse solve failed: %w", err)
	}
	u := red.Expand(xf, nil)
	return &Coarse{Stack: st, Model: model, U: u, DeltaT: deltaT, Stats: stats, SolveTime: time.Since(start)}, nil
}

// DisplacementAt interpolates the coarse displacement at a package-space
// point (the sub-modeling boundary transfer).
func (c *Coarse) DisplacementAt(p mesh.Vec3) [3]float64 {
	return c.Model.DisplacementAtPoint(c.U, p)
}

// StressAt recovers the coarse stress tensor at a package-space point (used
// as the background for the superposition baseline in scenario 2).
func (c *Coarse) StressAt(p mesh.Vec3) [6]float64 {
	return c.Model.StressAtPoint(c.U, c.DeltaT, p)
}

func nearestNode(g *mesh.Grid, p mesh.Vec3) int {
	best, bestD := 0, math.Inf(1)
	for n := 0; n < g.NumNodes(); n++ {
		c := g.NodeCoord(n)
		d := (c.X-p.X)*(c.X-p.X) + (c.Y-p.Y)*(c.Y-p.Y) + (c.Z-p.Z)*(c.Z-p.Z)
		if d < bestD {
			best, bestD = n, d
		}
	}
	return best
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
