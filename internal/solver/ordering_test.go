package solver

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/sparse"
)

// checkMulticolor asserts the two contracts of a multicolor ordering on the
// pattern of m: perm is a valid permutation, and no two adjacent vertices
// share a color class.
func checkMulticolor(t *testing.T, m *sparse.CSR, perm, colorPtr []int32) {
	t.Helper()
	n := m.NRows
	if len(perm) != n {
		t.Fatalf("perm length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			t.Fatalf("perm is not a permutation at %d", p)
		}
		seen[p] = true
	}
	if len(colorPtr) < 1 || colorPtr[0] != 0 || colorPtr[len(colorPtr)-1] != int32(n) {
		t.Fatalf("colorPtr %v does not cover [0, %d]", colorPtr, n)
	}
	// classOf[new index] = color class, from the class bounds.
	classOf := make([]int32, n)
	for c := 0; c+1 < len(colorPtr); c++ {
		if colorPtr[c+1] <= colorPtr[c] {
			t.Fatalf("empty color class %d: bounds %v", c, colorPtr)
		}
		for i := colorPtr[c]; i < colorPtr[c+1]; i++ {
			classOf[i] = int32(c)
		}
	}
	for r := 0; r < n; r++ {
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			c := m.ColIdx[p]
			if int(c) == r {
				continue
			}
			if classOf[perm[r]] == classOf[perm[c]] {
				t.Fatalf("adjacent vertices %d and %d share color %d", r, c, classOf[perm[r]])
			}
		}
	}
}

func TestMulticolorValidColoring(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	systems := map[string]*sparse.CSR{
		"laplacian":  laplacian3D(8, 7, 6),
		"elasticity": elasticity3(6, 6, 5),
		"random":     randSPDSparse(rng, 900, 5),
		"diagonal":   diagonalCSR(40),
		"dense-row":  arrowCSR(64),
	}
	for name, m := range systems {
		perm, colorPtr := Multicolor(m.NRows, csrRows(m))
		checkMulticolor(t, m, perm, colorPtr)
		if name == "diagonal" && len(colorPtr) != 2 {
			t.Errorf("diagonal matrix needs 1 color, got %d", len(colorPtr)-1)
		}
	}
	// Degenerate sizes.
	if perm, cp := Multicolor(0, func(int) []int32 { return nil }); len(perm) != 0 || len(cp) != 1 {
		t.Errorf("n=0: perm %v colorPtr %v", perm, cp)
	}
	if perm, cp := Multicolor(1, func(int) []int32 { return nil }); len(perm) != 1 || len(cp) != 2 {
		t.Errorf("n=1: perm %v colorPtr %v", perm, cp)
	}
}

// TestMulticolorCollapsesLevels is the tentpole's shape contract: on a
// lattice-like system whose natural-order IC0 DAG is deep and narrow, the
// multicolor-ordered factor's schedule must collapse to one level per color
// — orders of magnitude fewer, each wide. Since PR 9 the factor layout
// depends on the dimension: 3-DoF systems commit to the blocked (3×3-tiled)
// factor and the node coloring (one *block* level per node color), while
// other dimensions keep the scalar factor and the scalar row coloring.
func TestMulticolorCollapsesLevels(t *testing.T) {
	// Blocked path: n divisible by 3 → node coloring + tiled factor.
	a := latticeLike(12, 12, 9) // narrow natural DAG by construction
	natural, err := newIC0Ordered(a, OrderingNatural)
	if err != nil {
		t.Fatal(err)
	}
	colored, err := newIC0Ordered(a, OrderingMulticolor)
	if err != nil {
		t.Fatal(err)
	}
	if !natural.Blocked() || !colored.Blocked() {
		t.Fatalf("3-DoF lattice factors not blocked (natural %v, multicolor %v)", natural.Blocked(), colored.Blocked())
	}
	_, nodePtr := MulticolorNodes(a)
	nodeColors := len(nodePtr) - 1
	_, scalarPtr := Multicolor(a.NRows, csrRows(a))
	if nodeColors > len(scalarPtr)-1 {
		t.Errorf("node coloring uses %d colors, more than the %d scalar colors", nodeColors, len(scalarPtr)-1)
	}
	nLevels, nWidth := natural.Levels()
	cLevels, cWidth := colored.Levels()
	if cLevels != nodeColors {
		t.Errorf("multicolor blocked factor has %d levels, want one per node color (%d)", cLevels, nodeColors)
	}
	if cLevels >= nLevels/4 {
		t.Errorf("multicolor did not collapse the schedule: %d levels vs natural %d", cLevels, nLevels)
	}
	if cWidth <= nWidth {
		t.Errorf("multicolor max level width %d not wider than natural %d", cWidth, nWidth)
	}

	// Scalar path: dimension not divisible by 3 keeps the scalar factor and
	// the scalar coloring, with the original one-level-per-color contract
	// and the NaturalLevelWidth probe matching the factored schedule.
	s := latticeLike(11, 11, 10) // 1210 DoFs, not a multiple of 3
	snat, err := newIC0Ordered(s, OrderingNatural)
	if err != nil {
		t.Fatal(err)
	}
	scol, err := newIC0Ordered(s, OrderingMulticolor)
	if err != nil {
		t.Fatal(err)
	}
	if snat.Blocked() || scol.Blocked() {
		t.Fatalf("non-3-DoF factors unexpectedly blocked (natural %v, multicolor %v)", snat.Blocked(), scol.Blocked())
	}
	_, sPtr := Multicolor(s.NRows, csrRows(s))
	if sLevels, _ := scol.Levels(); sLevels != len(sPtr)-1 {
		t.Errorf("scalar multicolor factor has %d levels, want one per color (%d)", sLevels, len(sPtr)-1)
	}
	_, sWidth := snat.Levels()
	if w := NaturalLevelWidth(s); w != sWidth {
		t.Errorf("NaturalLevelWidth probe says %d, factored schedule says %d", w, sWidth)
	}
}

// TestMulticolorNodesContiguous pins the block-aware coloring's structural
// contracts: a valid scalar permutation that keeps every node's 3 rows
// contiguous (triads survive for blocked storage), node-class bounds that
// cover the node range, and no two *coupled* nodes in one class.
func TestMulticolorNodesContiguous(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	systems := map[string]*sparse.CSR{
		"lattice":    latticeLike(7, 7, 6),
		"elasticity": elasticity3(6, 5, 4),
		"random":     randSPDSparse(rng, 900, 5),
		"diagonal":   diagonalCSR(42),
	}
	for name, m := range systems {
		perm, colorPtr := MulticolorNodes(m)
		n := m.NRows
		nb := n / 3
		seen := make([]bool, n)
		for _, p := range perm {
			if p < 0 || int(p) >= n || seen[p] {
				t.Fatalf("%s: perm is not a permutation at %d", name, p)
			}
			seen[p] = true
		}
		for v := 0; v < nb; v++ {
			base := perm[3*v]
			if base%3 != 0 || perm[3*v+1] != base+1 || perm[3*v+2] != base+2 {
				t.Fatalf("%s: node %d triad not contiguous: %v", name, v, perm[3*v:3*v+3])
			}
		}
		if colorPtr[0] != 0 || colorPtr[len(colorPtr)-1] != int32(nb) {
			t.Fatalf("%s: node colorPtr %v does not cover [0, %d]", name, colorPtr, nb)
		}
		classOf := make([]int32, nb)
		for c := 0; c+1 < len(colorPtr); c++ {
			if colorPtr[c+1] <= colorPtr[c] {
				t.Fatalf("%s: empty node color class %d", name, c)
			}
			for i := colorPtr[c]; i < colorPtr[c+1]; i++ {
				classOf[i] = int32(c)
			}
		}
		for r := 0; r < n; r++ {
			for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
				vr, vc := r/3, int(m.ColIdx[p])/3
				if vr == vc {
					continue
				}
				if classOf[perm[3*vr]/3] == classOf[perm[3*vc]/3] {
					t.Fatalf("%s: coupled nodes %d and %d share a color", name, vr, vc)
				}
			}
		}
	}
}

// TestOrderingResolve pins the auto rule: concrete kinds resolve to
// themselves; auto picks multicolor only for narrow natural schedules and
// only when parallelism is available.
func TestOrderingResolve(t *testing.T) {
	narrow := latticeLike(24, 24, 9) // 5184 DoFs ≥ AutoMulticolorMinDoFs
	small := latticeLike(10, 10, 9)  // 900 DoFs: too small for fan-out
	wide := blockIndependent(600, 12)
	for _, k := range []OrderingKind{OrderingNatural, OrderingRCM, OrderingMulticolor} {
		if got := ResolveOrdering(k, narrow); got != k {
			t.Errorf("concrete kind %v resolved to %v", k, got)
		}
	}
	if w := NaturalLevelWidth(narrow); w >= AutoMulticolorWidth() {
		t.Fatalf("narrow test matrix has natural width %d, want < %d", w, AutoMulticolorWidth())
	}
	if w := NaturalLevelWidth(wide); w < AutoMulticolorWidth() {
		t.Fatalf("wide test matrix has natural width %d, want >= %d", w, AutoMulticolorWidth())
	}
	if runtime.GOMAXPROCS(0) > 1 {
		if got := ResolveOrdering(OrderingAuto, narrow); got != OrderingMulticolor {
			t.Errorf("auto on a narrow schedule resolved to %v, want multicolor", got)
		}
	} else if got := ResolveOrdering(OrderingAuto, narrow); got != OrderingNatural {
		t.Errorf("auto on one core resolved to %v, want natural", got)
	}
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	if got := ResolveOrdering(OrderingAuto, wide); got != OrderingNatural {
		t.Errorf("auto on a wide schedule resolved to %v, want natural", got)
	}
	if got := ResolveOrdering(OrderingAuto, narrow); got != OrderingMulticolor {
		t.Errorf("auto at GOMAXPROCS=4 on a narrow schedule resolved to %v, want multicolor", got)
	}
	if got := ResolveOrdering(OrderingAuto, small); got != OrderingNatural {
		t.Errorf("auto below AutoMulticolorMinDoFs resolved to %v, want natural", got)
	}
	// Worker-aware resolution: a 1-worker solve keeps natural even on a
	// parallel machine (a batch chain handed one worker must not pay the
	// multicolor iteration penalty), and an explicit workers > 1 enables
	// multicolor regardless of GOMAXPROCS.
	if got := ResolveOrderingFor(OrderingAuto, narrow, 1); got != OrderingNatural {
		t.Errorf("auto with 1 worker resolved to %v, want natural", got)
	}
	if got := ResolveOrderingFor(OrderingAuto, narrow, 4); got != OrderingMulticolor {
		t.Errorf("auto with 4 workers resolved to %v, want multicolor", got)
	}
	if got := OrderingFromWidth(OrderingAuto, narrow.NRows, 24, 4); got != OrderingMulticolor {
		t.Errorf("OrderingFromWidth(narrow) = %v, want multicolor", got)
	}
	if got := OrderingFromWidth(OrderingAuto, narrow.NRows, 600, 4); got != OrderingNatural {
		t.Errorf("OrderingFromWidth(wide) = %v, want natural", got)
	}
}

func TestParseOrderingRoundTrip(t *testing.T) {
	for _, k := range []OrderingKind{OrderingAuto, OrderingNatural, OrderingRCM, OrderingMulticolor} {
		got, err := ParseOrdering(k.String())
		if err != nil || got != k {
			t.Errorf("ParseOrdering(%q) = %v, %v", k.String(), got, err)
		}
	}
	if k, err := ParseOrdering(""); err != nil || k != OrderingAuto {
		t.Errorf("empty spelling: %v, %v", k, err)
	}
	if _, err := ParseOrdering("rainbow"); err == nil {
		t.Error("unknown spelling did not error")
	}
}

// TestPCGOrderingsAgree is the property test of the issue: PCG under the
// natural, RCM, and multicolor orderings must converge to the same solution
// (the preconditioner changes the path, never the fixed point), and each
// ordering must be bitwise identical across worker counts (the parallel
// triangular solves and the permute scatter/gather are deterministic).
func TestPCGOrderingsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	systems := map[string]*sparse.CSR{
		"lattice":    latticeLike(8, 8, 6),
		"elasticity": elasticity3(7, 6, 5),
		"random":     randSPDSparse(rng, 1200, 6),
	}
	for name, a := range systems {
		b := make([]float64, a.NRows)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		var ref []float64
		for _, ord := range []OrderingKind{OrderingNatural, OrderingRCM, OrderingMulticolor} {
			x1, st, err := PCG(a, b, nil, Options{Tol: 1e-10, Precond: PrecondIC0, Ordering: ord, Workers: 1})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, ord, err)
			}
			if st.Ordering != ord {
				t.Errorf("%s/%v: stats recorded ordering %v", name, ord, st.Ordering)
			}
			// Worker counts must not change a single bit for a fixed ordering.
			for _, w := range []int{2, 4, 8} {
				m, err := NewPreconditionerOrdered(PrecondIC0, ord, a)
				if err != nil {
					t.Fatal(err)
				}
				ws := NewWorkspace(w)
				xw, _, err := PCG(a, b, nil, Options{Tol: 1e-10, Precond: PrecondIC0, M: m, Work: ws, Workers: w})
				if err != nil {
					t.Fatalf("%s/%v workers=%d: %v", name, ord, w, err)
				}
				for i := range x1 {
					if x1[i] != xw[i] {
						t.Fatalf("%s/%v workers=%d: x[%d] = %x, serial %x (not bitwise equal)", name, ord, w, i, xw[i], x1[i])
					}
				}
				ws.Close()
			}
			// Orderings agree on the fixed point to solver tolerance.
			if ref == nil {
				ref = x1
				continue
			}
			var maxDiff, scale float64
			for i := range ref {
				if d := math.Abs(x1[i] - ref[i]); d > maxDiff {
					maxDiff = d
				}
				if s := math.Abs(ref[i]); s > scale {
					scale = s
				}
			}
			if scale == 0 {
				scale = 1
			}
			if maxDiff/scale > 1e-8 {
				t.Errorf("%s/%v: solution differs from natural by %g (rel), want ≤ 1e-8", name, ord, maxDiff/scale)
			}
		}
	}
}

// TestIC0PermutedBitwiseAcrossDispatch extends the PR 4 bitwise contract to
// permuted factors: spawn and pool dispatch at every worker count must match
// the serial application exactly, for RCM and multicolor orderings.
func TestIC0PermutedBitwiseAcrossDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	systems := map[string]*sparse.CSR{
		"lattice":   latticeLike(9, 9, 6),
		"random":    randSPDSparse(rng, 1100, 5),
		"diagonal":  diagonalCSR(500),
		"dense-row": arrowCSR(400),
	}
	for name, a := range systems {
		for _, ord := range []OrderingKind{OrderingRCM, OrderingMulticolor} {
			p, err := newIC0Ordered(a, ord)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, ord, err)
			}
			if p.Ordering() != ord {
				t.Fatalf("%s/%v: factor reports ordering %v", name, ord, p.Ordering())
			}
			n := a.NRows
			r := make([]float64, n)
			for i := range r {
				r[i] = rng.NormFloat64()
			}
			want := make([]float64, n)
			p.applyPar(want, r, 1, nil)
			for _, w := range []int{2, 4, 8} {
				got := make([]float64, n)
				p.applyPar(got, r, w, nil)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s/%v spawn workers=%d: dst[%d] = %x, want %x", name, ord, w, i, got[i], want[i])
					}
				}
				ws := NewWorkspace(w)
				p.applyPar(got, r, w, ws)
				ws.Close()
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s/%v pool workers=%d: dst[%d] = %x, want %x", name, ord, w, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestPCGZeroAllocsMulticolor extends the zero-allocation contract to the
// permuted preconditioner path: the permute scratch comes from the
// workspace, so a steady-state solve with a multicolor IC0 allocates
// nothing.
func TestPCGZeroAllocsMulticolor(t *testing.T) {
	a := elasticity3(10, 10, 8)
	rng := rand.New(rand.NewSource(41))
	b := make([]float64, a.NRows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	for _, workers := range []int{1, 4} {
		m, err := NewPreconditionerOrdered(PrecondIC0, OrderingMulticolor, a)
		if err != nil {
			t.Fatal(err)
		}
		if orderingOf(m) != OrderingMulticolor {
			t.Fatalf("preconditioner reports %v", orderingOf(m))
		}
		ws := NewWorkspace(workers)
		opt := Options{Tol: 1e-8, Precond: PrecondIC0, M: m, Work: ws, Workers: workers}
		if _, _, err := PCG(a, b, nil, opt); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(5, func() {
			if _, _, err := PCG(a, b, nil, opt); err != nil {
				t.Fatal(err)
			}
		})
		ws.Close()
		if allocs != 0 {
			t.Errorf("workers=%d: %.1f allocs per steady-state multicolor PCG solve, want 0", workers, allocs)
		}
	}
}
