package solver

import (
	"testing"

	"repro/internal/sparse"
)

// fuzzPattern decodes a fuzz payload into a small symmetric SPD matrix:
// the first byte picks n ∈ [1, 64], every following byte pair (a, b) adds
// the symmetric off-diagonal pair (a%n, b%n), and the diagonal dominates
// whatever accumulated. Degenerate shapes fall out of short payloads:
// all-diagonal matrices (no pairs), single-edge graphs, self-loop-only
// payloads, duplicate edges.
func fuzzPattern(data []byte) *sparse.CSR {
	if len(data) == 0 {
		return nil
	}
	n := int(data[0])%64 + 1
	t := sparse.NewTriplet(n, n, 2*len(data)+n)
	rowSum := make([]float64, n)
	for i := 1; i+1 < len(data); i += 2 {
		r, c := int(data[i])%n, int(data[i+1])%n
		if r == c {
			continue
		}
		v := 1 + float64(int(data[i])-int(data[i+1]))/256
		t.Add(r, c, v)
		t.Add(c, r, v)
		rowSum[r] += abs(v)
		rowSum[c] += abs(v)
	}
	for r := 0; r < n; r++ {
		t.Add(r, r, rowSum[r]+1)
	}
	return t.ToCSR()
}

// FuzzMulticolorOrdering asserts, for arbitrary symmetric patterns, that
// the greedy multicolor ordering is a valid permutation whose color classes
// contain no adjacent pair — and that the multicolor IC0 built on the same
// matrix stays bitwise deterministic across worker counts (which drags the
// fuzz corpus through LevelSchedule/PartitionByWork on every degenerate
// shape the coloring produces: single-row colors, all-diagonal factors,
// one-color matrices).
func FuzzMulticolorOrdering(f *testing.F) {
	f.Add([]byte{0})                                // n=1, no edges
	f.Add([]byte{3})                                // all-diagonal
	f.Add([]byte{7, 0, 1, 1, 2, 2, 3})              // chain
	f.Add([]byte{15, 0, 1, 0, 2, 0, 3, 0, 4})       // star (single-row colors)
	f.Add([]byte{63, 5, 5, 9, 9})                   // self loops only
	f.Add([]byte{11, 0, 1, 0, 1, 1, 0, 2, 3, 3, 2}) // duplicate edges
	f.Fuzz(func(t *testing.T, data []byte) {
		m := fuzzPattern(data)
		if m == nil {
			return
		}
		n := m.NRows
		perm, colorPtr := Multicolor(n, csrRows(m))
		// Contract 1: a valid permutation.
		seen := make([]bool, n)
		for _, p := range perm {
			if p < 0 || int(p) >= n || seen[p] {
				t.Fatalf("perm is not a permutation at %d (n=%d)", p, n)
			}
			seen[p] = true
		}
		// Contract 2: class bounds cover [0, n] with no empty class.
		if len(colorPtr) < 1 || colorPtr[0] != 0 || colorPtr[len(colorPtr)-1] != int32(n) {
			t.Fatalf("colorPtr %v does not cover [0, %d]", colorPtr, n)
		}
		classOf := make([]int32, n)
		for c := 0; c+1 < len(colorPtr); c++ {
			if colorPtr[c+1] <= colorPtr[c] {
				t.Fatalf("empty color class %d: %v", c, colorPtr)
			}
			for i := colorPtr[c]; i < colorPtr[c+1]; i++ {
				classOf[i] = int32(c)
			}
		}
		// Contract 3: no intra-color adjacency.
		for r := 0; r < n; r++ {
			for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
				c := m.ColIdx[p]
				if int(c) != r && classOf[perm[r]] == classOf[perm[c]] {
					t.Fatalf("adjacent %d,%d share color %d", r, c, classOf[perm[r]])
				}
			}
		}
		// Contract 4: the multicolor factor applies bitwise identically at
		// every worker count and dispatch mode. The level-count contract is
		// layout-aware: 3-DoF dimensions use the node coloring — one block
		// level per node color when the factor commits to tiles, and between
		// nc and 3·nc scalar levels otherwise (each node chains ≤ 3 rows,
		// and greedy color c always has a strictly descending color path
		// beneath it, so depth is at least the color count) — while other
		// dimensions keep the scalar one-level-per-color shape.
		p, err := newIC0Ordered(m, OrderingMulticolor)
		if err != nil {
			t.Fatalf("ic0: %v", err)
		}
		lv, _ := p.Levels()
		if n%3 == 0 {
			_, nodePtr := MulticolorNodes(m)
			nc := len(nodePtr) - 1
			if p.Blocked() {
				if lv != nc {
					t.Fatalf("blocked factor has %d levels, want one per node color (%d)", lv, nc)
				}
			} else if lv < nc || lv > 3*nc {
				t.Fatalf("scalar factor under node coloring has %d levels, want within [%d, %d]", lv, nc, 3*nc)
			}
		} else if lv != len(colorPtr)-1 {
			t.Fatalf("factor has %d levels, want one per color (%d)", lv, len(colorPtr)-1)
		}
		r := make([]float64, n)
		for i := range r {
			r[i] = float64(i%7) - 3
		}
		want := make([]float64, n)
		p.applyPar(want, r, 1, nil)
		got := make([]float64, n)
		for _, w := range []int{2, 4} {
			p.applyPar(got, r, w, nil)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d: dst[%d] = %x, want %x", w, i, got[i], want[i])
				}
			}
			ws := NewWorkspace(w)
			p.applyPar(got, r, w, ws)
			ws.Close()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("pool workers=%d: dst[%d] = %x, want %x", w, i, got[i], want[i])
				}
			}
		}
	})
}
