package solver

import (
	"errors"
	"fmt"
)

// Precision selects the storage precision of a factorizing preconditioner's
// values (today: the IC0 factor). The PCG/GMRES iterations always run in
// float64 — precision only rounds the *stored factor entries*, trading a
// slightly weaker preconditioner for half the factor bytes. Triangular
// solves are bandwidth-bound, so on the blocked path this is a direct
// apply-time win; the solve kernels widen each tile entry to float64 on
// load, so the arithmetic (and the worker-count bitwise contract) is
// unchanged for a fixed stored factor.
type Precision int

const (
	// PrecisionAuto — the zero value, and therefore the default wherever an
	// Options travels unset — stores the factor in float32 when the blocked
	// (3×3-tiled) layout engages, float64 otherwise. The float32 choice is
	// guarded at solve time: PCG re-checks the true residual on convergence
	// and iteratively refines (restarts the recurrence from the true
	// residual) when the rounded factor made them diverge, and the array
	// layer falls back to a float64 factor if refinement is exhausted —
	// results still match the float64 path at the solve tolerance.
	PrecisionAuto Precision = iota
	// PrecisionFloat64 stores the factor in double precision.
	PrecisionFloat64
	// PrecisionFloat32 requests single-precision factor storage. Only the
	// blocked factor layout supports it; a matrix that stays on the scalar
	// path keeps float64 storage and reports so in Stats.Precision.
	PrecisionFloat32

	// NumPrecisions bounds the kinds, for stats arrays indexed by precision.
	NumPrecisions = 3
)

// ErrPrecision tags solve failures caused by single-precision factor
// storage: the recurrence residual converged but the true residual did not,
// and iterative refinement ran out of attempts. Callers that can rebuild the
// preconditioner retry with PrecisionFloat64 (the array layer does); the
// error also matches ErrStalled, so warm-start fallbacks fire too.
var ErrPrecision = errors.New("mixed-precision factor stalled")

// String returns the flag/JSON spelling of the kind (see ParsePrecision).
func (p Precision) String() string {
	switch p {
	case PrecisionAuto:
		return "auto"
	case PrecisionFloat64:
		return "float64"
	case PrecisionFloat32:
		return "float32"
	}
	return fmt.Sprintf("precision(%d)", int(p))
}

// ParsePrecision maps the String spellings (plus "" and the f64/f32
// shorthands) back to a kind; the serve flags and request fields go through
// here.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "auto":
		return PrecisionAuto, nil
	case "float64", "f64", "double":
		return PrecisionFloat64, nil
	case "float32", "f32", "single":
		return PrecisionFloat32, nil
	}
	return PrecisionAuto, fmt.Errorf("solver: unknown precision %q (want auto, float64, or float32)", s)
}

// FactorPrecisioned is implemented by preconditioners whose stored factor
// precision matters to the solve loop: PCG enables its true-residual
// verification/refinement guard only for float32 factors, and the stats
// plumbing reports the concrete precision per solve.
type FactorPrecisioned interface {
	FactorPrecision() Precision
}

// precisionOf reports the storage precision of a preconditioner's values.
// Preconditioners without the method store float64 (the Jacobi family, the
// identity).
func precisionOf(m Preconditioner) Precision {
	if fp, ok := m.(FactorPrecisioned); ok {
		return fp.FactorPrecision()
	}
	return PrecisionFloat64
}
