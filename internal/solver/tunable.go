package solver

import (
	"runtime"
	"sync/atomic"
)

// The auto-selection knobs — the PrecondAuto IC0 crossover, the
// OrderingAuto multicolor width, and the package-wide worker default — are
// startup-tunable: internal/solver/tuning derives them from the measured
// host profiles in BENCH_global.json (the embedded snapshot, or a -tuning
// file on serve/router) and applies them before the first solve. The
// Default* constants remain the hand-measured fallback used whenever no
// profile matches the running host. The values are atomics so a tuning
// application racing an in-flight solve is merely a stale read, never a
// data race; they are meant to be set once at process startup.
var (
	autoIC0Threshold    atomic.Int64
	autoMulticolorWidth atomic.Int64
	defaultWorkers      atomic.Int64
)

func init() {
	autoIC0Threshold.Store(DefaultAutoIC0Threshold)
	autoMulticolorWidth.Store(DefaultAutoMulticolorWidth)
}

// AutoIC0Threshold is the system size (DoFs) at and above which PrecondAuto
// resolves to IC0 on the amortized (assembly-cached) path. It starts at
// DefaultAutoIC0Threshold and may be replaced at startup by a measured
// host-profile value (SetAutoIC0Threshold).
func AutoIC0Threshold() int { return int(autoIC0Threshold.Load()) }

// SetAutoIC0Threshold installs a measured IC0 crossover and returns the
// previous value; n <= 0 restores DefaultAutoIC0Threshold. Intended for
// process startup (internal/solver/tuning) and tests.
func SetAutoIC0Threshold(n int) int {
	if n <= 0 {
		n = DefaultAutoIC0Threshold
	}
	return int(autoIC0Threshold.Swap(int64(n)))
}

// AutoMulticolorWidth is the natural-order schedule width (rows in the
// widest dependency level) below which OrderingAuto switches IC0 to the
// multicolor ordering. It starts at DefaultAutoMulticolorWidth and may be
// replaced at startup by a measured host-profile value
// (SetAutoMulticolorWidth); 0 disables the multicolor switch entirely (no
// natural schedule is narrower than zero rows), which is what tuning
// installs on hosts where the measured fan-out never pays.
func AutoMulticolorWidth() int { return int(autoMulticolorWidth.Load()) }

// SetAutoMulticolorWidth installs a measured multicolor width threshold and
// returns the previous value; n < 0 restores DefaultAutoMulticolorWidth
// (0 is a meaningful value: never switch). Intended for process startup
// (internal/solver/tuning) and tests.
func SetAutoMulticolorWidth(n int) int {
	if n < 0 {
		n = DefaultAutoMulticolorWidth
	}
	return int(autoMulticolorWidth.Swap(int64(n)))
}

// DefaultWorkers is the package-wide worker-count default applied wherever
// an Options.Workers (or EngineOptions.Workers) travels zero: GOMAXPROCS
// unless a measured host profile installed a different ceiling
// (SetDefaultWorkers — e.g. a host whose benches show the level-scheduled
// fan-out losing to the serial kernels caps the gangs at one worker).
func DefaultWorkers() int {
	if w := defaultWorkers.Load(); w > 0 {
		return int(w)
	}
	return runtime.GOMAXPROCS(0)
}

// SetDefaultWorkers installs a measured worker default and returns the
// previous value (0 if the GOMAXPROCS fallback was active); n <= 0 restores
// the GOMAXPROCS fallback. Intended for process startup
// (internal/solver/tuning) and tests.
func SetDefaultWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(defaultWorkers.Swap(int64(n)))
}
