package solver

import (
	"runtime"
	"testing"
)

// The startup-tunable knobs must round-trip through their setters, restore
// their documented fallbacks on sentinel values, and actually steer the
// auto-resolution rules they back.
func TestTunableSettersRoundTrip(t *testing.T) {
	defer SetAutoIC0Threshold(0)
	defer SetAutoMulticolorWidth(-1)
	defer SetDefaultWorkers(0)

	if got := AutoIC0Threshold(); got != DefaultAutoIC0Threshold {
		t.Fatalf("AutoIC0Threshold() = %d at startup, want default %d", got, DefaultAutoIC0Threshold)
	}
	if prev := SetAutoIC0Threshold(9000); prev != DefaultAutoIC0Threshold {
		t.Errorf("SetAutoIC0Threshold returned prev %d, want %d", prev, DefaultAutoIC0Threshold)
	}
	// The amortized crossover must follow the installed threshold.
	if got := PrecondAuto.ResolveAmortized(8997); got != PrecondBlockJacobi3 {
		t.Errorf("ResolveAmortized(8997) under threshold 9000 = %v, want block-jacobi3", got)
	}
	if got := PrecondAuto.ResolveAmortized(9000); got != PrecondIC0 {
		t.Errorf("ResolveAmortized(9000) under threshold 9000 = %v, want ic0", got)
	}
	SetAutoIC0Threshold(0) // sentinel restores the default
	if got := AutoIC0Threshold(); got != DefaultAutoIC0Threshold {
		t.Errorf("SetAutoIC0Threshold(0) left %d, want default %d", got, DefaultAutoIC0Threshold)
	}

	// Width 0 is meaningful: no natural schedule is narrower than zero rows,
	// so OrderingAuto never switches to multicolor.
	SetAutoMulticolorWidth(0)
	if got := OrderingFromWidth(OrderingAuto, 1<<20, 1, 8); got != OrderingNatural {
		t.Errorf("OrderingFromWidth with width threshold 0 = %v, want natural", got)
	}
	SetAutoMulticolorWidth(128)
	if got := OrderingFromWidth(OrderingAuto, 1<<20, 100, 8); got != OrderingMulticolor {
		t.Errorf("OrderingFromWidth(width=100) under threshold 128 = %v, want multicolor", got)
	}
	SetAutoMulticolorWidth(-1)
	if got := AutoMulticolorWidth(); got != DefaultAutoMulticolorWidth {
		t.Errorf("SetAutoMulticolorWidth(-1) left %d, want default %d", got, DefaultAutoMulticolorWidth)
	}

	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers() = %d at startup, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetDefaultWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Errorf("DefaultWorkers() = %d after SetDefaultWorkers(3)", got)
	}
	if got := normWorkers(0); got != 3 {
		t.Errorf("normWorkers(0) = %d under a worker default of 3", got)
	}
	SetDefaultWorkers(0)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("SetDefaultWorkers(0) left %d, want GOMAXPROCS fallback", got)
	}
}
