package solver

import (
	"fmt"
	"math"

	"repro/internal/sparse"
)

// CholFactor is a sparse Cholesky factorization P·A·Pᵀ = L·Lᵀ of a symmetric
// positive-definite matrix, using an RCM fill-reducing permutation and an
// up-looking numeric factorization guided by the elimination tree.
//
// The factorization is computed once and can serve many right-hand sides
// concurrently (Solve is read-only), which is exactly the access pattern of
// the one-shot local stage: one stiffness matrix, n+1 load vectors.
type CholFactor struct {
	n    int
	perm []int32     // perm[old] = new
	L    *sparse.CSC // lower-triangular factor, diagonal first in each column
}

// NewCholesky factorizes the symmetric positive-definite matrix a (full
// pattern, CSR). It returns an error if a pivot is non-positive, which for a
// correctly assembled FEM stiffness matrix indicates missing boundary
// conditions (a floating structure).
func NewCholesky(a *sparse.CSR) (*CholFactor, error) {
	if a.NRows != a.NCols {
		return nil, fmt.Errorf("solver: Cholesky requires a square matrix, got %d×%d", a.NRows, a.NCols)
	}
	n := a.NRows
	perm := RCM(a)
	ap := a.ToCSC().Permute(perm)

	// Row-of-lower-triangle access: row k of the lower triangle equals
	// column k of the upper triangle; with full CSC we filter rows <= k.
	parent := etree(ap)

	// Symbolic pass: column counts of L via ereach.
	colCount := make([]int32, n)
	mark := make([]int32, n)
	for i := range mark {
		mark[i] = -1
	}
	stack := make([]int32, n)
	path := make([]int32, n)
	for k := 0; k < n; k++ {
		colCount[k]++ // diagonal
		top := ereach(ap, int32(k), parent, mark, stack, path)
		for t := top; t < n; t++ {
			colCount[stack[t]]++
		}
	}

	colPtr := make([]int32, n+1)
	for j := 0; j < n; j++ {
		colPtr[j+1] = colPtr[j] + colCount[j]
	}
	nnz := int(colPtr[n])
	rowIdx := make([]int32, nnz)
	vals := make([]float64, nnz)
	fill := make([]int32, n) // next free slot per column
	copy(fill, colPtr[:n])

	// Numeric pass: up-looking, one row of L per step.
	x := make([]float64, n)
	for i := range mark {
		mark[i] = -1
	}
	for k := 0; k < n; k++ {
		top := ereach(ap, int32(k), parent, mark, stack, path)
		// Scatter column k of the upper triangle (rows <= k) into x.
		var d float64
		for p := ap.ColPtr[k]; p < ap.ColPtr[k+1]; p++ {
			i := ap.RowIdx[p]
			if i > int32(k) {
				continue
			}
			if i == int32(k) {
				d = ap.Vals[p]
			} else {
				x[i] = ap.Vals[p]
			}
		}
		// Sparse triangular solve over the pattern, topological order.
		for t := top; t < n; t++ {
			j := stack[t]
			pj := colPtr[j]
			yj := x[j] / vals[pj] // divide by L[j,j]
			x[j] = 0
			for p := pj + 1; p < fill[j]; p++ {
				x[rowIdx[p]] -= vals[p] * yj
			}
			d -= yj * yj
			// Append L[k,j].
			rowIdx[fill[j]] = int32(k)
			vals[fill[j]] = yj
			fill[j]++
		}
		if d <= 0 {
			return nil, fmt.Errorf("solver: matrix not positive definite at pivot %d (d=%g); check boundary conditions", k, d)
		}
		// Diagonal is the first entry of column k.
		rowIdx[fill[k]] = int32(k)
		vals[fill[k]] = math.Sqrt(d)
		fill[k]++
	}

	l := &sparse.CSC{NRows: n, NCols: n, ColPtr: colPtr, RowIdx: rowIdx, Vals: vals}
	return &CholFactor{n: n, perm: perm, L: l}, nil
}

// N returns the matrix dimension.
func (f *CholFactor) N() int { return f.n }

// NNZ returns the number of stored entries in the factor L.
func (f *CholFactor) NNZ() int { return f.L.NNZ() }

// MemoryBytes estimates the storage footprint of the factor.
func (f *CholFactor) MemoryBytes() int64 {
	return int64(len(f.L.ColPtr))*4 + int64(len(f.L.RowIdx))*4 + int64(len(f.L.Vals))*8 + int64(len(f.perm))*4
}

// Solve returns the solution of A·x = b in a fresh slice. It is safe to call
// concurrently from multiple goroutines.
func (f *CholFactor) Solve(b []float64) []float64 {
	x := make([]float64, f.n)
	f.SolveInto(x, b)
	return x
}

// SolveInto solves A·x = b into dst. dst and b may alias. Safe for
// concurrent use.
func (f *CholFactor) SolveInto(dst, b []float64) {
	if len(b) != f.n || len(dst) != f.n {
		panic("solver: CholFactor.SolveInto dimension mismatch")
	}
	l := f.L
	x := make([]float64, f.n)
	for i, p := range f.perm {
		x[p] = b[i]
	}
	// Forward: L·y = Pb, column-oriented; diagonal is the first entry of
	// each column.
	for j := 0; j < f.n; j++ {
		pj := l.ColPtr[j]
		xj := x[j] / l.Vals[pj]
		x[j] = xj
		for p := pj + 1; p < l.ColPtr[j+1]; p++ {
			x[l.RowIdx[p]] -= l.Vals[p] * xj
		}
	}
	// Backward: Lᵀ·z = y, row-oriented over columns of L.
	for j := f.n - 1; j >= 0; j-- {
		pj := l.ColPtr[j]
		s := x[j]
		for p := pj + 1; p < l.ColPtr[j+1]; p++ {
			s -= l.Vals[p] * x[l.RowIdx[p]]
		}
		x[j] = s / l.Vals[pj]
	}
	for i, p := range f.perm {
		dst[i] = x[p]
	}
}

// etree computes the elimination tree of the symmetric matrix given in full
// CSC form, using path compression (Liu's algorithm).
func etree(a *sparse.CSC) []int32 {
	n := a.NCols
	parent := make([]int32, n)
	ancestor := make([]int32, n)
	for k := 0; k < n; k++ {
		parent[k] = -1
		ancestor[k] = -1
		for p := a.ColPtr[k]; p < a.ColPtr[k+1]; p++ {
			i := a.RowIdx[p]
			if i >= int32(k) {
				continue
			}
			for i != -1 && i != int32(k) {
				next := ancestor[i]
				ancestor[i] = int32(k)
				if next == -1 {
					parent[i] = int32(k)
					break
				}
				i = next
			}
		}
	}
	return parent
}

// ereach computes the nonzero pattern of row k of L: stack[top..n-1] holds
// the column indices in topological etree order. mark is a stamp array
// (stamped with k), path is scratch.
func ereach(a *sparse.CSC, k int32, parent []int32, mark, stack, path []int32) int {
	n := int32(a.NCols)
	top := n
	mark[k] = k
	for p := a.ColPtr[k]; p < a.ColPtr[k+1]; p++ {
		i := a.RowIdx[p]
		if i >= k {
			continue
		}
		// Climb the etree from i until a stamped node, recording the path.
		var plen int32
		for mark[i] != k {
			path[plen] = i
			plen++
			mark[i] = k
			i = parent[i]
		}
		// Push the path so that stack[top..] stays topological.
		for plen > 0 {
			plen--
			top--
			stack[top] = path[plen]
		}
	}
	return int(top)
}
