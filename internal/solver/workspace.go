package solver

import (
	"repro/internal/linalg"
	"repro/internal/sparse"
)

// Workspace pools the state an iterative solve reuses across calls: the work
// vectors, the GMRES Hessenberg, the pooled matrix-vector op with its
// nnz-balanced row partition, the triangular-solve scratch, and (optionally)
// a resident sparse.Pool worker gang. With a Workspace in Options.Work and a
// prebuilt preconditioner in Options.M, the PCG hot loop performs zero
// allocations in steady state — no vector makes, no closure per mat-vec, no
// goroutine fan-out when the gang is resident (see BenchmarkPCGNoAlloc).
//
// A Workspace serves one solve at a time; it is not safe for concurrent use.
// The solution slice returned by a workspace-backed solve is owned by the
// workspace and is only valid until its next solve — copy it to retain it.
type Workspace struct {
	pool *sparse.Pool

	vecs [][]float64
	used int

	mv       sparse.MatVec
	mvBounds []int32
	mvReady  bool
	// Blocked mat-vec binding: when prepMatVec receives the 3×3-tiled form
	// of the matrix, matvec runs the blocked kernel instead — pooled over
	// tile-balanced block-row chunks when the gang is resident, serial
	// otherwise. bmFor records which CSR the binding stands in for.
	bmv       sparse.BlockMatVec
	bmvBounds []int32
	bmvReady  bool
	bm        *sparse.BCSR
	bmFor     *sparse.CSR
	tri       sparse.TriScratch
	btri      sparse.BlockTriScratch
	// permBuf is the scratch of permuted preconditioner applications
	// (ic0 under a non-natural ordering). A dedicated field rather than a
	// vec(): applyPar runs once per iteration, and the vec free-list is
	// consumed positionally per solve.
	permBuf []float64

	h *linalg.Dense // GMRES Hessenberg, reused when the restart length matches
}

// NewWorkspace creates a workspace. workers > 1 starts a resident gang of
// workers−1 goroutines (plus the solving goroutine) so parallel kernels
// dispatch without spawning; Close must be called to release them. workers
// ≤ 1 creates a serial workspace that still pools vectors.
func NewWorkspace(workers int) *Workspace {
	w := &Workspace{}
	if workers > 1 {
		w.pool = sparse.NewPool(workers)
	}
	return w
}

// Close releases the resident worker gang, if any. The workspace remains
// usable afterwards (serially).
func (w *Workspace) Close() {
	if w.pool != nil {
		w.pool.Close()
		w.pool = nil
	}
}

// reset starts a new solve: every pooled vector returns to the free list and
// the mat-vec bindings are cleared.
func (w *Workspace) reset() {
	w.used = 0
	w.mvReady = false
	w.mv = sparse.MatVec{}
	w.bmvReady = false
	w.bmv = sparse.BlockMatVec{}
	w.bm, w.bmFor = nil, nil
}

// vec returns a length-n scratch vector with unspecified contents (callers
// initialize). Vectors are handed out in call order, so a solver's fixed
// take sequence reuses the same backing arrays every solve.
func (w *Workspace) vec(n int) []float64 {
	if w.used < len(w.vecs) && cap(w.vecs[w.used]) >= n {
		v := w.vecs[w.used][:n]
		w.used++
		return v
	}
	v := make([]float64, n)
	if w.used < len(w.vecs) {
		w.vecs[w.used] = v
	} else {
		w.vecs = append(w.vecs, v)
	}
	w.used++
	return v
}

// permScratch returns the length-n permute buffer, growing it at most once
// per size increase (steady-state solves reuse one backing array, so the
// zero-allocation contract extends to permuted preconditioners).
func (w *Workspace) permScratch(n int) []float64 {
	if cap(w.permBuf) < n {
		w.permBuf = make([]float64, n)
	}
	return w.permBuf[:n]
}

// prepMatVec binds the matrix-vector product to a for the duration of a
// solve: the work-balanced row partition is computed once here and reused by
// every matvec call of the solve. When bm supplies the 3×3-tiled form of the
// same matrix, the blocked kernel takes over — the partition is then over
// block rows, weighted by tile count (the blocked work profile), and the
// serial path runs the tiled kernel too.
func (w *Workspace) prepMatVec(a *sparse.CSR, bm *sparse.BCSR, workers int) {
	w.mvReady = false
	w.bmvReady = false
	w.bm, w.bmFor = nil, nil
	if bm != nil && bm.NRows == a.NRows && bm.NCols == a.NCols {
		w.bm, w.bmFor = bm, a
		if w.pool == nil || workers <= 1 || a.NRows < sparse.MinParRows {
			return
		}
		if pw := w.pool.Workers(); workers > pw {
			workers = pw
		}
		w.bmvBounds = sparse.PartitionByWorkInto(w.bmvBounds, bm.BRowPtr, 0, bm.NBRows(), workers)
		w.bmv.M = bm
		w.bmvReady = true
		return
	}
	if w.pool == nil || workers <= 1 || a.NRows < sparse.MinParRows {
		return
	}
	if pw := w.pool.Workers(); workers > pw {
		workers = pw
	}
	w.mvBounds = sparse.PartitionByWorkInto(w.mvBounds, a.RowPtr, 0, a.NRows, workers)
	w.mv.M = a
	w.mvReady = true
}

// matvec computes dst = a·x, preferring the blocked binding when prepMatVec
// installed one for this matrix, then the pooled scalar binding
// (allocation-free), falling back to MulVecPar otherwise.
//
//stressvet:noalloc
func (w *Workspace) matvec(a *sparse.CSR, dst, x []float64, workers int) {
	if w.bmFor == a {
		if w.bmvReady {
			w.bmv.Dst, w.bmv.X = dst, x
			w.pool.Run(w.bmvBounds, &w.bmv)
			return
		}
		w.bm.MulVecPar(dst, x, workers)
		return
	}
	if w.mvReady && w.mv.M == a {
		w.mv.Dst, w.mv.X = dst, x
		w.pool.Run(w.mvBounds, &w.mv)
		return
	}
	a.MulVecPar(dst, x, workers)
}

// hessenberg returns a pooled (rows × cols) dense matrix for GMRES.
func (w *Workspace) hessenberg(rows, cols int) *linalg.Dense {
	if w.h == nil || w.h.Rows != rows || w.h.Cols != cols {
		w.h = linalg.NewDense(rows, cols)
		return w.h
	}
	linalg.Zero(w.h.Data)
	return w.h
}
