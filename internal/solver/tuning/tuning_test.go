package tuning

import (
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/solver"
)

// sampleSet builds a two-profile set: a single-thread host with crossover
// data (mirroring the dev container) and a 4-core host where the measured
// fan-out pays.
func sampleSet() Set {
	return Set{
		"linux/amd64/n1": &HostProfile{
			GOOS: "linux", GOARCH: "amd64", NProc: 1,
			Tuning: &TuningData{
				PrecondCrossover: []CrossoverRow{
					{DoFs: 2709, IC0WarmMS: 14, BJ3WarmMS: 20},
					{DoFs: 9945, IC0WarmMS: 85, BJ3WarmMS: 140},
					{DoFs: 21717, IC0WarmMS: 239, BJ3WarmMS: 1257},
				},
				MulticolorApplySpeedup: 1.05,
				MatvecParSpeedup:       0.91,
			},
		},
		"linux/amd64/n4": &HostProfile{
			GOOS: "linux", GOARCH: "amd64", NProc: 4,
			Tuning: &TuningData{
				PrecondCrossover:       []CrossoverRow{{DoFs: 9945, IC0WarmMS: 60, BJ3WarmMS: 90}},
				MulticolorApplySpeedup: 1.8,
				MatvecParSpeedup:       2.2,
			},
		},
	}
}

func TestMatchExactAndNearest(t *testing.T) {
	set := sampleSet()
	p, exact := set.Match("linux", "amd64", 1)
	if p == nil || !exact || p.NProc != 1 {
		t.Fatalf("Match(n1) = %+v exact=%v, want exact n1", p, exact)
	}
	p, exact = set.Match("linux", "amd64", 8)
	if p == nil || exact || p.NProc != 4 {
		t.Fatalf("Match(n8) = %+v exact=%v, want inexact n4", p, exact)
	}
	// nproc=2 sits between the profiles: n1 (distance 1) beats n4
	// (distance 2).
	p, exact = set.Match("linux", "amd64", 2)
	if p == nil || exact || p.NProc != 1 {
		t.Fatalf("Match(n2) = %+v exact=%v, want inexact n1", p, exact)
	}
	if p, _ := set.Match("darwin", "arm64", 8); p != nil {
		t.Fatalf("Match(darwin/arm64) = %+v, want nil", p)
	}
}

func TestDeriveSingleThreadHost(t *testing.T) {
	set := sampleSet()
	p, exact := set.Match("linux", "amd64", 1)
	tun := Derive(p, exact)
	// Crossover at 2709 DoFs rounds down to 2500 — the hand-set value falls
	// out of the measured data.
	if tun.IC0Threshold != 2500 {
		t.Errorf("IC0Threshold = %d, want 2500 (derived from the 2709-DoF crossover)", tun.IC0Threshold)
	}
	// One hardware thread: multicolor off, workers capped at 1.
	if tun.MulticolorWidth != 0 {
		t.Errorf("MulticolorWidth = %d, want 0 on a single-thread host", tun.MulticolorWidth)
	}
	if tun.Workers != 1 {
		t.Errorf("Workers = %d, want 1 on a single-thread host", tun.Workers)
	}
}

func TestDeriveMultiCoreHost(t *testing.T) {
	set := sampleSet()
	p, exact := set.Match("linux", "amd64", 4)
	tun := Derive(p, exact)
	if tun.IC0Threshold != 9500 {
		t.Errorf("IC0Threshold = %d, want 9500 (9945-DoF crossover rounded down)", tun.IC0Threshold)
	}
	if tun.MulticolorWidth != solver.DefaultAutoMulticolorWidth {
		t.Errorf("MulticolorWidth = %d, want default %d (measured fan-out pays)", tun.MulticolorWidth, solver.DefaultAutoMulticolorWidth)
	}
	if tun.Workers != 0 {
		t.Errorf("Workers = %d, want 0 (GOMAXPROCS fallback: measured par speedup > 1)", tun.Workers)
	}
}

func TestDeriveInexactMatchKeepsNprocSensitiveDefaults(t *testing.T) {
	set := sampleSet()
	p, exact := set.Match("linux", "amd64", 16) // nearest is n4, inexact
	tun := Derive(p, exact)
	if tun.IC0Threshold != 9500 {
		t.Errorf("IC0Threshold = %d, want 9500 (crossover transfers across nproc)", tun.IC0Threshold)
	}
	if tun.MulticolorWidth != solver.DefaultAutoMulticolorWidth || tun.Workers != 0 {
		t.Errorf("inexact match derived width=%d workers=%d, want defaults %d/0",
			tun.MulticolorWidth, tun.Workers, solver.DefaultAutoMulticolorWidth)
	}
}

func TestDeriveNilProfileIsDefaults(t *testing.T) {
	tun := Derive(nil, false)
	d := Defaults()
	if tun.IC0Threshold != d.IC0Threshold || tun.MulticolorWidth != d.MulticolorWidth || tun.Workers != d.Workers {
		t.Errorf("Derive(nil) = %+v, want defaults %+v", tun, d)
	}
}

func TestParseFullFileAndBareSnapshot(t *testing.T) {
	full := []byte(`{
		"schema": "bench-global/v2", "pr": 10,
		"benchmarks": {"BenchmarkX": {"unit": "ns/op", "value": 1}},
		"host_profiles": {
			"linux/amd64/n1": {"goos": "linux", "goarch": "amd64", "nproc": 1}
		}
	}`)
	set, err := Parse(full)
	if err != nil || len(set) != 1 {
		t.Fatalf("Parse(full file) = %v, %v", set, err)
	}
	bare := []byte(`{"linux/amd64/n2": {"goos": "linux", "goarch": "amd64", "nproc": 2}}`)
	set, err = Parse(bare)
	if err != nil || set["linux/amd64/n2"] == nil {
		t.Fatalf("Parse(bare snapshot) = %v, %v", set, err)
	}
	if _, err := Parse([]byte(`{"schema": "bench-global/v2", "pr": 10, "benchmarks": {}}`)); err != nil {
		t.Fatalf("v2 file without host_profiles should parse as empty set, got %v", err)
	}
	if _, err := Parse([]byte(`{"schema": "bench-global/v1", "pr": 9, "benchmarks": {}}`)); err == nil {
		t.Fatal("v1 file should be rejected")
	}
	if _, err := Parse([]byte(`{"linux/amd64/n4": {"goos": "linux", "goarch": "amd64", "nproc": 2}}`)); err == nil {
		t.Fatal("key/fields disagreement should be rejected")
	}
	if _, err := Parse([]byte(`{"linux/amd64/n1": {"goos": "linux", "goarch": "amd64", "nproc": 1,
		"benchmarks": {"B": {"unit": "ns/op"}}}}`)); err == nil {
		t.Fatal("benchmark entry without value/values should be rejected")
	}
}

// TestApplyRoundTrip proves the acceptance wiring: a host-profile section
// resolves through Match/Derive/Apply into the live solver knobs, and
// clearing it restores the hand-set constants. Runs under -race in CI.
func TestApplyRoundTrip(t *testing.T) {
	defer Reset()
	set := sampleSet()
	p, exact := set.Match("linux", "amd64", 1)
	Apply(Derive(p, exact))
	if got := solver.AutoIC0Threshold(); got != 2500 {
		t.Errorf("solver.AutoIC0Threshold() = %d after Apply, want 2500", got)
	}
	if got := solver.AutoMulticolorWidth(); got != 0 {
		t.Errorf("solver.AutoMulticolorWidth() = %d after Apply, want 0", got)
	}
	if got := solver.DefaultWorkers(); got != 1 {
		t.Errorf("solver.DefaultWorkers() = %d after Apply, want 1", got)
	}
	Reset()
	if got := solver.AutoIC0Threshold(); got != solver.DefaultAutoIC0Threshold {
		t.Errorf("Reset left AutoIC0Threshold at %d", got)
	}
	if got := solver.AutoMulticolorWidth(); got != solver.DefaultAutoMulticolorWidth {
		t.Errorf("Reset left AutoMulticolorWidth at %d", got)
	}
	if got := solver.DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Reset left DefaultWorkers at %d", got)
	}
}

func TestStartupEmbeddedSnapshot(t *testing.T) {
	defer Reset()
	// Whatever the embedded snapshot holds, Startup must parse it and apply
	// something coherent for this host without error.
	tun, err := Startup("")
	if err != nil {
		t.Fatalf("Startup(embedded) error: %v", err)
	}
	if tun.IC0Threshold <= 0 {
		t.Errorf("Startup applied non-positive IC0Threshold %d", tun.IC0Threshold)
	}
	if tun.Source == "" {
		t.Error("Startup returned empty Source")
	}
	if got := solver.AutoIC0Threshold(); got != tun.IC0Threshold {
		t.Errorf("solver knob %d disagrees with applied tunables %d", got, tun.IC0Threshold)
	}
}

func TestStartupFile(t *testing.T) {
	defer Reset()
	dir := t.TempDir()
	path := filepath.Join(dir, "tuning.json")
	hostKey := Key(runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
	blob := `{"` + hostKey + `": {"goos": "` + runtime.GOOS + `", "goarch": "` + runtime.GOARCH + `",
		"nproc": ` + strconv.Itoa(runtime.NumCPU()) + `,
		"tuning": {"precond_crossover": [{"dofs": 7300, "ic0_warm_ms": 5, "bj3_warm_ms": 9}]}}}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	tun, err := Startup(path)
	if err != nil {
		t.Fatalf("Startup(%s) error: %v", path, err)
	}
	if tun.IC0Threshold != 7000 {
		t.Errorf("IC0Threshold = %d, want 7000 (7300 rounded down)", tun.IC0Threshold)
	}
	if got := solver.AutoIC0Threshold(); got != 7000 {
		t.Errorf("solver.AutoIC0Threshold() = %d, want 7000", got)
	}
	// Unreadable and invalid files keep the defaults and report the error.
	Reset()
	if _, err := Startup(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("Startup(missing file) should error")
	}
	if got := solver.AutoIC0Threshold(); got != solver.DefaultAutoIC0Threshold {
		t.Errorf("failed Startup changed AutoIC0Threshold to %d", got)
	}
}
