package solver

import (
	"fmt"
	"math"
	"time"

	"repro/internal/linalg"
	"repro/internal/sparse"
)

// Preconditioner applies z = M⁻¹·r for an iterative solver.
type Preconditioner interface {
	// Apply computes dst = M⁻¹·r. dst and r must not alias.
	Apply(dst, r []float64)
}

// PrecondKind selects the preconditioner of the iterative solvers.
type PrecondKind int

const (
	// PrecondAuto — the zero value, and therefore the default wherever an
	// Options travels unset — picks a preconditioner from the system size
	// and whether the construction amortizes: block-Jacobi-3 for small
	// systems (the natural choice for displacement problems with 3 DoFs
	// per node), IC0 where its ~6× iteration-count savings dominate — at
	// and above AutoIC0Threshold DoFs on the assembly-cached path that
	// builds the factor once per lattice (ResolveAmortized), at and above
	// AutoIC0OneShotThreshold for bare solves that pay the build every
	// call (Resolve) — and scalar Jacobi when the dimension is not a
	// multiple of 3.
	PrecondAuto PrecondKind = iota
	// PrecondJacobi is the inverse-diagonal preconditioner.
	PrecondJacobi
	// PrecondBlockJacobi3 inverts the 3×3 diagonal blocks — the natural
	// choice for displacement problems with 3 DoFs per node, which couples
	// the x/y/z components of each node.
	PrecondBlockJacobi3
	// PrecondIC0 is zero-fill incomplete Cholesky — far fewer iterations,
	// with the triangular solves level-scheduled so each application runs
	// across cores (sparse.LowerTri).
	PrecondIC0
	// PrecondNone applies the identity.
	PrecondNone
)

// DefaultAutoIC0Threshold is the hand-measured fallback for the system size
// (DoFs) at and above which PrecondAuto resolves to IC0 *when the
// construction amortizes* — the assembly-cached path
// (array.Assembly.Preconditioner), where the factor is built at most once
// per lattice. Measured with the cached build and the level-scheduled
// apply: once the build amortizes, IC0's ~6× iteration-count reduction wins
// wall time at every measured lattice (28 vs 45 ms at 2 709 DoFs, 482 vs
// 1 364 ms at 21 717 — docs/SOLVER_TUNING.md has the table), so the
// threshold sits just below the smallest measured crossover. The live value
// is AutoIC0Threshold (tunable.go): host-profile tuning may re-derive it
// from that host's own measurements at startup.
const DefaultAutoIC0Threshold = 2500

// AutoIC0OneShotThreshold is the crossover for solves that pay the IC0
// construction every time (bare PCG/GMRES calls with no prebuilt Options.M,
// which build their preconditioner per call): the ~60–600 ms factorization
// only reaches wall-time parity with the Jacobi family around 20k DoFs.
const AutoIC0OneShotThreshold = 20000

// Resolve maps PrecondAuto to the concrete kind chosen for an n-DoF system
// using the one-shot rule (the preconditioner is built for this solve
// alone); concrete kinds resolve to themselves. Callers that amortize the
// construction across solves use ResolveAmortized instead.
func (k PrecondKind) Resolve(n int) PrecondKind {
	return k.resolve(n, AutoIC0OneShotThreshold)
}

// ResolveAmortized maps PrecondAuto to the concrete kind chosen when the
// preconditioner's construction is shared across many solves (the
// assembly-cache path), where IC0 pays off at much smaller systems.
func (k PrecondKind) ResolveAmortized(n int) PrecondKind {
	return k.resolve(n, AutoIC0Threshold())
}

func (k PrecondKind) resolve(n, ic0At int) PrecondKind {
	if k != PrecondAuto {
		return k
	}
	switch {
	case n >= ic0At:
		return PrecondIC0
	case n%3 == 0:
		return PrecondBlockJacobi3
	default:
		return PrecondJacobi
	}
}

// String returns the flag/JSON spelling of the kind (see ParsePrecond).
func (k PrecondKind) String() string {
	switch k {
	case PrecondAuto:
		return "auto"
	case PrecondJacobi:
		return "jacobi"
	case PrecondBlockJacobi3:
		return "block-jacobi3"
	case PrecondIC0:
		return "ic0"
	case PrecondNone:
		return "none"
	}
	return fmt.Sprintf("precond(%d)", int(k))
}

// ParsePrecond maps the String spellings (plus "" and the "bj3" shorthand)
// back to a kind; the serve flags and request fields go through here.
func ParsePrecond(s string) (PrecondKind, error) {
	switch s {
	case "", "auto":
		return PrecondAuto, nil
	case "jacobi":
		return PrecondJacobi, nil
	case "block-jacobi3", "bj3":
		return PrecondBlockJacobi3, nil
	case "ic0":
		return PrecondIC0, nil
	case "none":
		return PrecondNone, nil
	}
	return PrecondAuto, fmt.Errorf("solver: unknown preconditioner %q (want auto, jacobi, block-jacobi3, ic0, or none)", s)
}

// JacobiFamily picks the parallel Jacobi-family preconditioner for an n-DoF
// system: block-Jacobi-3 when the dimension is node-blocked, scalar Jacobi
// otherwise. The full-resolution FEM baselines (reffem, chiplet) use this
// instead of the size-based auto rule — their systems are far larger and
// sparser than the reduced global matrices the IC0 threshold was tuned on,
// and serial IC0 does not pay off there.
func JacobiFamily(n int) PrecondKind {
	if n%3 == 0 {
		return PrecondBlockJacobi3
	}
	return PrecondJacobi
}

// NewPreconditioner builds the requested preconditioner for the SPD matrix a,
// resolving PrecondAuto against the matrix size first, with the default
// (auto) ordering. Every construction in the package funnels through
// NewPreconditionerOrdered so no solver path hardwires its own
// preconditioner.
func NewPreconditioner(kind PrecondKind, a *sparse.CSR) (Preconditioner, error) {
	return NewPreconditionerOrdered(kind, OrderingAuto, a)
}

// NewPreconditionerOrdered is NewPreconditioner with an explicit symmetric
// ordering for the factorizing kinds: IC0 factors the permuted matrix
// P·A·Pᵀ and applies Pᵀ·(L·Lᵀ)⁻¹·P, so the ordering shapes the factor's
// dependency DAG without changing the preconditioned operator's symmetry.
// The Jacobi family and the identity are ordering-invariant and ignore ord.
// Factor storage precision defaults to PrecisionAuto.
func NewPreconditionerOrdered(kind PrecondKind, ord OrderingKind, a *sparse.CSR) (Preconditioner, error) {
	return NewPreconditionerPrec(kind, ord, PrecisionAuto, a)
}

// NewPreconditionerPrec is NewPreconditionerOrdered with an explicit factor
// storage precision for the factorizing kinds (see Precision); the
// ordering-invariant kinds ignore both ord and prec.
func NewPreconditionerPrec(kind PrecondKind, ord OrderingKind, prec Precision, a *sparse.CSR) (Preconditioner, error) {
	switch kind.Resolve(a.NRows) {
	case PrecondJacobi:
		return jacobiPrecond{inv: jacobi(a)}, nil
	case PrecondBlockJacobi3:
		return newBlockJacobi3(a)
	case PrecondIC0:
		return newIC0Prec(a, ord, prec)
	case PrecondNone:
		return identityPrecond{}, nil
	}
	return nil, fmt.Errorf("solver: unknown preconditioner kind %d", kind)
}

// parApplier is implemented by preconditioners whose application
// parallelizes: the solvers drive it with their worker count and workspace
// (resident pool + scratch) instead of plain Apply.
type parApplier interface {
	applyPar(dst, r []float64, workers int, ws *Workspace)
}

// Sized is implemented by preconditioners whose memory footprint matters to
// byte-budgeted caches (the assembly cache counts them).
type Sized interface {
	MemoryBytes() int64
}

type identityPrecond struct{}

//stressvet:noalloc
func (identityPrecond) Apply(dst, r []float64) { copy(dst, r) }

func (identityPrecond) MemoryBytes() int64 { return 0 }

type jacobiPrecond struct{ inv []float64 }

//stressvet:noalloc
func (p jacobiPrecond) Apply(dst, r []float64) {
	for i, v := range r {
		dst[i] = p.inv[i] * v
	}
}

func (p jacobiPrecond) MemoryBytes() int64 { return int64(8 * len(p.inv)) }

// blockJacobi3 stores the inverse of each 3×3 diagonal block.
type blockJacobi3 struct {
	inv []float64 // 9 entries per block, row-major
}

func newBlockJacobi3(a *sparse.CSR) (*blockJacobi3, error) {
	n := a.NRows
	if n%3 != 0 {
		return nil, fmt.Errorf("solver: block-Jacobi(3) requires dimension divisible by 3, got %d", n)
	}
	nb := n / 3
	inv := make([]float64, 9*nb)
	var blk [9]float64
	for b := 0; b < nb; b++ {
		for i := 0; i < 3; i++ {
			row := 3*b + i
			for j := 0; j < 3; j++ {
				blk[3*i+j] = a.At(row, 3*b+j)
			}
		}
		if err := invert3(blk[:], inv[9*b:9*b+9]); err != nil {
			// Identity rows (inactive nodes) or missing diagonal: fall back
			// to scalar Jacobi on this block.
			for k := range blk {
				inv[9*b+k] = 0
			}
			for i := 0; i < 3; i++ {
				d := blk[4*i]
				if d == 0 {
					d = 1
				}
				inv[9*b+4*i] = 1 / d
			}
		}
	}
	return &blockJacobi3{inv: inv}, nil
}

// invert3 inverts a 3×3 matrix via the adjugate; returns an error for a
// (near-)singular block.
func invert3(m, out []float64) error {
	a, b, c := m[0], m[1], m[2]
	d, e, f := m[3], m[4], m[5]
	g, h, i := m[6], m[7], m[8]
	co00 := e*i - f*h
	co01 := f*g - d*i
	co02 := d*h - e*g
	det := a*co00 + b*co01 + c*co02
	scale := math.Abs(a) + math.Abs(e) + math.Abs(i)
	if math.Abs(det) <= 1e-14*scale*scale*scale {
		return fmt.Errorf("solver: singular 3×3 block (det=%g)", det)
	}
	id := 1 / det
	out[0] = co00 * id
	out[1] = (c*h - b*i) * id
	out[2] = (b*f - c*e) * id
	out[3] = co01 * id
	out[4] = (a*i - c*g) * id
	out[5] = (c*d - a*f) * id
	out[6] = co02 * id
	out[7] = (b*g - a*h) * id
	out[8] = (a*e - b*d) * id
	return nil
}

//stressvet:noalloc
func (p *blockJacobi3) Apply(dst, r []float64) {
	nb := len(p.inv) / 9
	for b := 0; b < nb; b++ {
		m := p.inv[9*b : 9*b+9]
		r0, r1, r2 := r[3*b], r[3*b+1], r[3*b+2]
		dst[3*b] = m[0]*r0 + m[1]*r1 + m[2]*r2
		dst[3*b+1] = m[3]*r0 + m[4]*r1 + m[5]*r2
		dst[3*b+2] = m[6]*r0 + m[7]*r1 + m[8]*r2
	}
}

func (p *blockJacobi3) MemoryBytes() int64 { return int64(8 * len(p.inv)) }

// BlockFillMin is the minimum blocked-storage fill ratio (scalar entries per
// stored tile entry, sparse.BlockLowerTri.Fill) at which IC0 commits to the
// 3×3-tiled factor layout. Node-blocked FEM factors sit near 0.9 (only the
// diagonal tiles' zero upper halves are padding); patterns that scatter
// isolated scalars across tiles fall below and keep the scalar layout, where
// zero-fill would inflate factor bytes instead of saving bandwidth. 0.45
// marks the break-even: below it the padded value bytes exceed the ~⅓ index
// bytes the tiles save.
const BlockFillMin = 0.45

// ic0 is a zero-fill incomplete Cholesky factorization: L has the sparsity
// of the lower triangle of (possibly symmetrically permuted) A and
// P·A·Pᵀ ≈ L·Lᵀ. The factor is held either as a scalar sparse.LowerTri or,
// when the matrix is 3-DoF node-blocked and dense enough in tiles
// (BlockFillMin), as a sparse.BlockLowerTri — 3×3 tile micro-kernels,
// optionally float32 values. Either way the dependency-level schedules let
// each application's forward/backward solves run rows in parallel — and,
// because each row (or block row) is computed by one shared kernel, the
// parallel application is bitwise identical to the serial one for every
// worker count. Under a non-natural ordering the application is
// Pᵀ·(L·Lᵀ)⁻¹·P: scatter into permuted order, two triangular solves in
// place, gather back — the permutes are deterministic, so the worker-count
// bitwise contract holds for every ordering. An ic0 is immutable after
// construction and safe to share across concurrent solves.
type ic0 struct {
	// Exactly one of t (scalar factor) and bt (blocked factor) is non-nil.
	t  *sparse.LowerTri
	bt *sparse.BlockLowerTri
	// perm maps original→permuted index (nil for the natural ordering).
	perm []int32
	ord  OrderingKind
	// prec is the concrete storage precision of the factor values
	// (PrecisionFloat32 only on the blocked path).
	prec Precision
}

// newIC0 factors in natural order (the serial-reference construction the
// tests pin down); production paths go through newIC0Prec.
func newIC0(a *sparse.CSR) (*ic0, error) { return newIC0Ordered(a, OrderingNatural) }

func newIC0Ordered(a *sparse.CSR, ord OrderingKind) (*ic0, error) {
	return newIC0Prec(a, ord, PrecisionAuto)
}

func newIC0Prec(a *sparse.CSR, ord OrderingKind, prec Precision) (*ic0, error) {
	return newIC0Layout(a, ord, prec, true)
}

// newIC0Layout is newIC0Prec with the blocked-layout commit gated: block ==
// false keeps the scalar factor even when the tiles would engage, so the
// equivalence tests can compare the tiled kernels against a scalar factor of
// the same system. Production paths always pass block == true.
func newIC0Layout(a *sparse.CSR, ord OrderingKind, prec Precision, block bool) (*ic0, error) {
	if a.NRows != a.NCols {
		return nil, fmt.Errorf("solver: IC0 requires a square matrix")
	}
	ord = ResolveOrdering(ord, a)
	perm := orderingPerm(ord, a)
	if perm == nil {
		ord = OrderingNatural
	}
	csc := a.ToCSC()
	if perm != nil {
		csc = csc.Permute(perm)
	}
	l := csc.LowerTriangle()
	n := l.NCols
	// Column-oriented left-looking IC(0): for each column j, subtract the
	// contributions of earlier columns restricted to the existing pattern.
	colStart := make([]int32, n) // position of the diagonal in each column
	for j := 0; j < n; j++ {
		if l.ColPtr[j] == l.ColPtr[j+1] || l.RowIdx[l.ColPtr[j]] != int32(j) {
			return nil, fmt.Errorf("solver: IC0 missing diagonal at column %d", j)
		}
		colStart[j] = l.ColPtr[j]
	}
	// x is a dense accumulator for the current column.
	x := make([]float64, n)
	// For the left-looking update we need, for each row i, the list of
	// columns j < i with L[i,j] ≠ 0 — build row links incrementally:
	// next[j] walks column j downward as the factorization proceeds.
	next := make([]int32, n)
	for j := 0; j < n; j++ {
		next[j] = l.ColPtr[j] + 1 // first sub-diagonal entry
	}
	// head[i] chains the columns whose next entry has row i.
	head := make([]int32, n)
	link := make([]int32, n)
	for i := range head {
		head[i] = -1
	}
	pushCol := func(j int32) {
		if next[j] < l.ColPtr[j+1] {
			i := l.RowIdx[next[j]]
			link[j] = head[i]
			head[i] = j
		}
	}
	for j := 0; j < n; j++ {
		// Scatter column j of the current (partially updated) matrix.
		for p := l.ColPtr[j]; p < l.ColPtr[j+1]; p++ {
			x[l.RowIdx[p]] = l.Vals[p]
		}
		// Apply updates from all columns k < j with L[j,k] != 0.
		for k := head[j]; k != -1; {
			nextK := link[k]
			pjk := next[k] // entry L[j,k]
			ljk := l.Vals[pjk]
			// Subtract ljk * column k (rows >= j) on the pattern of col j.
			for p := pjk; p < l.ColPtr[k+1]; p++ {
				x[l.RowIdx[p]] -= ljk * l.Vals[p]
			}
			// Advance column k to its next row and re-chain.
			next[k] = pjk + 1
			pushCol(k)
			k = nextK
		}
		// Pivot.
		d := x[j]
		if d <= 0 {
			// Standard IC0 breakdown remedy: shift to a safe positive value.
			d = math.Abs(d) + 1e-12
		}
		d = math.Sqrt(d)
		l.Vals[colStart[j]] = d
		x[j] = 0
		for p := l.ColPtr[j] + 1; p < l.ColPtr[j+1]; p++ {
			i := l.RowIdx[p]
			l.Vals[p] = x[i] / d
			x[i] = 0
		}
		pushCol(int32(j))
	}
	t, err := sparse.NewLowerTriFromCSC(l)
	if err != nil {
		return nil, fmt.Errorf("solver: IC0: %w", err)
	}
	p := &ic0{t: t, perm: perm, ord: ord, prec: PrecisionFloat64}
	// Commit to the 3×3-tiled layout when the dimension is node-blocked and
	// the tiles are dense enough to pay (reduced global matrices always are;
	// unstructured patterns fall back to the scalar factor). PrecisionAuto
	// resolves to float32 exactly when blocking engages — the scalar layout
	// keeps float64 storage, so an explicit PrecisionFloat32 request on an
	// unblockable matrix degrades gracefully and Stats report the truth.
	if block && n%sparse.BlockSize == 0 {
		single := prec != PrecisionFloat64
		if bt, berr := sparse.NewBlockLowerTri(t, single); berr == nil && bt.Fill() >= BlockFillMin {
			p.bt, p.t = bt, nil
			if single {
				p.prec = PrecisionFloat32
			}
		}
	}
	return p, nil
}

// Apply computes dst = Pᵀ·(L·Lᵀ)⁻¹·P·r via the level-scheduled
// forward/backward solves at GOMAXPROCS parallelism (spawning goroutines per
// level; the workspace-backed applyPar path dispatches through a resident
// gang instead). Falls back to the serial loops when the schedule has no
// level wide enough to pay for fan-out.
//
//stressvet:noalloc
func (p *ic0) Apply(dst, r []float64) { p.applyPar(dst, r, normWorkers(0), nil) }

//stressvet:noalloc
func (p *ic0) applyPar(dst, r []float64, workers int, ws *Workspace) {
	var pool *sparse.Pool
	var sc *sparse.TriScratch
	var bsc *sparse.BlockTriScratch
	if ws != nil {
		pool, sc, bsc = ws.pool, &ws.tri, &ws.btri
	}
	if p.perm == nil {
		if p.bt != nil {
			p.bt.SolveLowerPar(dst, r, workers, pool, bsc)
			p.bt.SolveUpperPar(dst, dst, workers, pool, bsc)
			return
		}
		p.t.SolveLowerPar(dst, r, workers, pool, sc)
		p.t.SolveUpperPar(dst, dst, workers, pool, sc)
		return
	}
	// Permuted application: scatter r into factor order, solve both
	// triangles in place, gather back. The scratch comes from the workspace
	// so the steady-state hot loop stays allocation-free (ic0 itself is
	// shared across concurrent solves and must hold no mutable state).
	var buf []float64
	if ws != nil {
		buf = ws.permScratch(len(r)) //stressvet:allow noalloc -- inlined permScratch grows the cached scratch on first use; steady state reuses it
	} else {
		buf = make([]float64, len(r)) //stressvet:allow noalloc -- fallback when no workspace is supplied; steady-state callers pass ws
	}
	for i, v := range r {
		buf[p.perm[i]] = v
	}
	if p.bt != nil {
		p.bt.SolveLowerPar(buf, buf, workers, pool, bsc)
		p.bt.SolveUpperPar(buf, buf, workers, pool, bsc)
	} else {
		p.t.SolveLowerPar(buf, buf, workers, pool, sc)
		p.t.SolveUpperPar(buf, buf, workers, pool, sc)
	}
	for i := range dst {
		dst[i] = buf[p.perm[i]]
	}
}

// Ordering reports the symmetric ordering the factor was built under
// (implements Ordered).
func (p *ic0) Ordering() OrderingKind { return p.ord }

// Levels reports the factor's forward-schedule shape: dependency-level count
// and widest level in rows (implements FactorLevels; the measurement harness
// and the BENCH snapshot read it). For a blocked factor the count is in
// block levels (block rows advance together) and the width is converted to
// scalar rows so the number stays comparable across layouts.
func (p *ic0) Levels() (count, maxWidth int) {
	if p.bt != nil {
		return p.bt.Fwd.NumLevels(), sparse.BlockSize * p.bt.Fwd.MaxWidth()
	}
	return p.t.Fwd.NumLevels(), p.t.Fwd.MaxWidth()
}

// FactorPrecision reports the concrete storage precision of the factor
// values (implements FactorPrecisioned; PCG keys its true-residual
// verification guard off this).
func (p *ic0) FactorPrecision() Precision { return p.prec }

// Blocked reports whether the factor committed to the 3×3-tiled layout.
func (p *ic0) Blocked() bool { return p.bt != nil }

// MemoryBytes reports the factor's footprint (both triangles + schedules +
// the ordering permutation, when present).
func (p *ic0) MemoryBytes() int64 {
	b := int64(4 * len(p.perm))
	if p.bt != nil {
		return b + p.bt.MemoryBytes()
	}
	return b + p.t.MemoryBytes()
}

// PCG is the preconditioned conjugate gradient for symmetric positive-
// definite systems. The preconditioner comes from Options.M when prebuilt
// (e.g. assembly-cached) or is constructed from Options.Precond (default
// PrecondAuto, resolved against the system size); x0 optionally seeds the
// iteration (warm start) and may be nil. The returned Stats record the
// resolved preconditioner kind, whether the solve was warm-started, and the
// preconditioner build/apply timings.
//
// The iteration loop is allocation-free: the work vectors come from
// Options.Work (or a per-call workspace when unset), the mat-vec runs
// through a once-per-solve nnz-balanced partition, and a level-scheduled
// preconditioner dispatches through the workspace's resident gang. With
// Options.Work and Options.M both set, the entire steady-state solve
// performs zero allocations (BenchmarkPCGNoAlloc); the returned solution
// then aliases workspace memory — see Workspace.
func PCG(a *sparse.CSR, b, x0 []float64, opt Options) ([]float64, Stats, error) {
	n := a.NRows
	if a.NCols != n || len(b) != n {
		return nil, Stats{}, fmt.Errorf("solver: PCG dimension mismatch: matrix %d×%d, b %d", a.NRows, a.NCols, len(b))
	}
	opt = opt.withDefaults(n)
	kind := opt.Precond.Resolve(n)
	st := Stats{Precond: kind, Warm: x0 != nil}
	m := opt.M
	if m == nil {
		tBuild := time.Now() //stressvet:allow determinism -- wall clock feeds Stats timing only, never numerics
		var err error
		// The ordering resolves against this solve's worker count: a
		// 1-worker solve keeps the natural factor even on a parallel
		// machine (no fan-out to pay for the coloring's extra iterations).
		m, err = NewPreconditionerPrec(kind, ResolveOrderingFor(opt.Ordering, a, opt.Workers), opt.Precision, a)
		if err != nil {
			return nil, st, err
		}
		st.PrecondBuild = time.Since(tBuild)
	}
	st.Ordering = orderingOf(m)
	st.Precision = precisionOf(m)
	ws := opt.Work
	if ws == nil {
		ws = &Workspace{}
	}
	ws.reset()
	ws.prepMatVec(a, opt.MatBlocked, opt.Workers)
	wa, _ := m.(parApplier)

	x := ws.vec(n)
	if x0 != nil {
		copy(x, x0)
	} else {
		linalg.Zero(x)
	}
	r := ws.vec(n)
	z := ws.vec(n)
	p := ws.vec(n)
	ap := ws.vec(n)

	ws.matvec(a, r, x, opt.Workers)
	linalg.Sub(r, b, r)
	bnorm := linalg.Norm2(b)
	if bnorm == 0 {
		st.Converged = true
		return x, st, nil
	}
	tApply := time.Now() //stressvet:allow determinism -- wall clock feeds Stats timing only, never numerics
	if wa != nil {
		wa.applyPar(z, r, opt.Workers, ws)
	} else {
		m.Apply(z, r)
	}
	st.PrecondApply += time.Since(tApply)
	copy(p, z)
	rz := linalg.Dot(r, z)

	outcome, it, res, pap := pcgSteady(a, b, m, wa, ws, &st, opt, x, r, z, p, ap, bnorm, rz)
	switch outcome {
	case pcgConverged:
		st.Iterations, st.Residual, st.Converged = it, res, true
		return x, st, nil
	case pcgNonFinite:
		st.Iterations = it
		return x, st, fmt.Errorf("solver: PCG residual is non-finite at iteration %d: %w", it, ErrStalled)
	case pcgBreakdown:
		st.Iterations, st.Residual = it, res
		return x, st, fmt.Errorf("solver: PCG breakdown, pᵀAp=%g (matrix not SPD?)", pap)
	case pcgPrecisionStall:
		st.Iterations, st.Residual = it, res
		return x, st, fmt.Errorf("solver: PCG float32 factor could not reach tol %g (true residual %g after %d refinements): %w (%w)",
			opt.Tol, res, st.Refinements, ErrPrecision, ErrStalled)
	}
	st.Iterations, st.Residual = it, res
	return x, st, fmt.Errorf("solver: PCG did not converge in %d iterations (residual %g): %w", it, res, ErrStalled)
}

// pcgOutcome is how the steady-state PCG loop ended; PCG translates it into
// the user-facing result so the loop itself never formats errors.
type pcgOutcome uint8

const (
	pcgMaxIter pcgOutcome = iota
	pcgConverged
	pcgNonFinite
	pcgBreakdown
	pcgPrecisionStall
)

// pcgMaxRefinements caps the iterative-refinement restarts a float32-factor
// solve may take before giving up (pcgPrecisionStall → the array layer
// rebuilds with a float64 factor). Each refinement restarts the recurrence
// from the true residual, which recovers the usual rounding drift in one
// shot; needing more than a couple means the rounded factor genuinely cannot
// steer this system to the requested tolerance.
const pcgMaxRefinements = 3

// pcgVerifyEvery is the iteration stride of the float32 drift check: every
// so many iterations the true residual ‖b−Ax‖ is recomputed and compared
// against the recurrence residual, catching divergence long before a false
// convergence — at ~1–2% amortized cost (one extra mat-vec per stride).
const pcgVerifyEvery = 64

// pcgDriftFactor flags drift when the true residual exceeds the recurrence
// residual by this factor at a periodic check. Exact-arithmetic PCG keeps
// them equal; float64 rounding alone stays within a small constant, so an
// order of magnitude of divergence is a reliable float32-rounding signature.
const pcgDriftFactor = 10

// pcgTrueResidual recomputes res = ‖b−A·x‖/bnorm from scratch, clobbering
// scratch (the ap vector between mat-vecs).
//
//stressvet:noalloc
func pcgTrueResidual(a *sparse.CSR, ws *Workspace, opt Options, x, b, scratch []float64, bnorm float64) float64 {
	ws.matvec(a, scratch, x, opt.Workers)
	var ss float64
	for i := range b {
		d := b[i] - scratch[i]
		ss += d * d
	}
	return math.Sqrt(ss) / bnorm
}

// pcgSteady is the steady-state PCG iteration: with the workspace and
// preconditioner prebuilt, it performs zero allocations per call
// (BenchmarkPCGNoAlloc pins the runtime contract; stressvet's noalloc rules
// and -escape gate pin it statically).
//
// For float32-factor preconditioners (Stats.Precision), the recurrence
// residual is verified against the true residual ‖b−A·x‖ on convergence and
// at a periodic drift check. When they diverge, the loop iteratively
// refines: recompute r = b−A·x exactly, reapply the preconditioner, and
// restart the recurrence from the true state — recovering the float64
// trajectory at the cost of one extra mat-vec + apply. Refinement is bounded
// by pcgMaxRefinements; exhaustion is pcgPrecisionStall and the caller falls
// back to a float64 factor.
//
//stressvet:noalloc
func pcgSteady(a *sparse.CSR, b []float64, m Preconditioner, wa parApplier, ws *Workspace, st *Stats, opt Options, x, r, z, p, ap []float64, bnorm, rz float64) (outcome pcgOutcome, it int, res, pap float64) {
	verify := st.Precision == PrecisionFloat32
	for it = 0; it < opt.MaxIter; it++ {
		res = linalg.Norm2(r) / bnorm
		refine := false
		if res <= opt.Tol {
			if !verify {
				return pcgConverged, it, res, 0
			}
			// The recurrence claims convergence on a rounded factor: trust
			// only the true residual.
			trueRes := pcgTrueResidual(a, ws, opt, x, b, ap, bnorm)
			if trueRes <= opt.Tol {
				return pcgConverged, it, trueRes, 0
			}
			if st.Refinements >= pcgMaxRefinements {
				return pcgPrecisionStall, it, trueRes, 0
			}
			refine = true
			res = trueRes
		} else if verify && it > 0 && it%pcgVerifyEvery == 0 {
			// Long solves: catch recurrence drift before a false convergence.
			trueRes := pcgTrueResidual(a, ws, opt, x, b, ap, bnorm)
			if trueRes > pcgDriftFactor*res && st.Refinements < pcgMaxRefinements {
				refine = true
				res = trueRes
			}
		}
		// A non-finite residual (NaN/Inf seed or mid-iteration blow-up) can
		// never converge; fail now instead of burning MaxIter iterations —
		// warm-start callers fall back to a cold solve on this error.
		if math.IsNaN(res) || math.IsInf(res, 0) {
			return pcgNonFinite, it, res, 0
		}
		if refine {
			// Restart the recurrence from the exact residual (ap still holds
			// A·x from pcgTrueResidual): r = b − A·x, z = M⁻¹r, p = z.
			st.Refinements++
			linalg.Sub(r, b, ap)
			tApply := time.Now() //stressvet:allow determinism -- wall clock feeds Stats timing only, never numerics
			if wa != nil {
				wa.applyPar(z, r, opt.Workers, ws)
			} else {
				m.Apply(z, r)
			}
			st.PrecondApply += time.Since(tApply)
			copy(p, z)
			rz = linalg.Dot(r, z)
			continue
		}
		ws.matvec(a, ap, p, opt.Workers)
		pap = linalg.Dot(p, ap)
		if pap <= 0 {
			return pcgBreakdown, it, res, pap
		}
		alpha := rz / pap
		linalg.Axpy(alpha, p, x)
		linalg.Axpy(-alpha, ap, r)
		tApply := time.Now() //stressvet:allow determinism -- wall clock feeds Stats timing only, never numerics
		if wa != nil {
			wa.applyPar(z, r, opt.Workers, ws)
		} else {
			m.Apply(z, r)
		}
		st.PrecondApply += time.Since(tApply)
		rzNew := linalg.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return pcgMaxIter, it, linalg.Norm2(r) / bnorm, 0
}
