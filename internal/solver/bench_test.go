package solver

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/sparse"
)

func benchMatrix(nx, ny, nz int) (*sparse.CSR, []float64) {
	a := laplacian3D(nx, ny, nz)
	rng := rand.New(rand.NewSource(42))
	b := make([]float64, a.NRows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return a, b
}

func BenchmarkCholeskyFactor(b *testing.B) {
	a, _ := benchMatrix(20, 20, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholeskySolve(b *testing.B) {
	a, rhs := benchMatrix(20, 20, 10)
	chol, err := NewCholesky(a)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]float64, a.NRows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chol.SolveInto(dst, rhs)
	}
}

func BenchmarkCG(b *testing.B) {
	a, rhs := benchMatrix(20, 20, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := CG(a, rhs, nil, Options{Tol: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGMRES(b *testing.B) {
	a, rhs := benchMatrix(20, 20, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GMRES(a, rhs, nil, Options{Tol: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFactorReuse quantifies the design choice of §4.2: the
// local stage factorizes A_ff once and reuses it for all n+1 right-hand
// sides. The alternative — an iterative solve per right-hand side — is what
// the reuse avoids.
func BenchmarkAblationFactorReuse(b *testing.B) {
	a, _ := benchMatrix(16, 16, 8)
	rng := rand.New(rand.NewSource(7))
	const nrhs = 32
	rhss := make([][]float64, nrhs)
	for i := range rhss {
		rhss[i] = make([]float64, a.NRows)
		for j := range rhss[i] {
			rhss[i][j] = rng.NormFloat64()
		}
	}
	b.Run("factor-once", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			chol, err := NewCholesky(a)
			if err != nil {
				b.Fatal(err)
			}
			dst := make([]float64, a.NRows)
			for _, rhs := range rhss {
				chol.SolveInto(dst, rhs)
			}
		}
	})
	b.Run("iterative-per-rhs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, rhs := range rhss {
				if _, _, err := CG(a, rhs, nil, Options{Tol: 1e-8}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// latticeLike builds an SPD matrix with the row density of the reduced
// global matrices (dense per-node blocks over a 2D 9-point grid). Like the
// real reduced matrices in natural lattice order, its IC0 factor has a deep,
// narrow dependency DAG (intra-block chains × stencil wavefronts), so this
// is the serial-fallback exemplar: the level schedule must add no overhead.
func latticeLike(nx, ny, bs int) *sparse.CSR {
	rng := rand.New(rand.NewSource(8))
	nodes := nx * ny
	n := nodes * bs
	t := sparse.NewTriplet(n, n, nodes*9*bs*bs)
	rowSum := make([]float64, n)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			node := y*nx + x
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					xx, yy := x+dx, y+dy
					if xx < 0 || xx >= nx || yy < 0 || yy >= ny {
						continue
					}
					other := yy*nx + xx
					if other < node {
						continue // add each block pair once, symmetrically
					}
					for i := 0; i < bs; i++ {
						for j := 0; j < bs; j++ {
							if other == node && j < i {
								continue
							}
							v := rng.NormFloat64()
							r, c := node*bs+i, other*bs+j
							if r == c {
								continue
							}
							t.Add(r, c, v)
							t.Add(c, r, v)
							rowSum[r] += abs(v)
							rowSum[c] += abs(v)
						}
					}
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		t.Add(i, i, rowSum[i]+1)
	}
	return t.ToCSR()
}

// blockIndependent builds an SPD matrix of many independent dense blocks —
// a wide dependency DAG (levels as wide as the block count), the shape on
// which level scheduling actually fans out.
func blockIndependent(blocks, bs int) *sparse.CSR {
	rng := rand.New(rand.NewSource(12))
	n := blocks * bs
	t := sparse.NewTriplet(n, n, blocks*bs*bs)
	for blk := 0; blk < blocks; blk++ {
		base := blk * bs
		for i := 0; i < bs; i++ {
			rowSum := 0.0
			for j := 0; j < i; j++ {
				v := rng.NormFloat64()
				t.Add(base+i, base+j, v)
				t.Add(base+j, base+i, v)
				rowSum += abs(v)
			}
			t.Add(base+i, base+i, float64(bs)+rowSum)
		}
	}
	return t.ToCSR()
}

// BenchmarkIC0Apply compares the serial reference application of the IC0
// preconditioner against the level-scheduled parallel one (spawn and
// resident-pool dispatch) in both dependency regimes. The narrowDAG system
// mimics the reduced global matrices (dense block rows in natural lattice
// order): its levels are deep and narrow, the serial fallback engages, and
// levelsched must track serial with no overhead. The wideDAG system
// (independent dense blocks) has levels as wide as the block count and is
// where the schedule fans out — run with -cpu 1,4 to see it.
func BenchmarkIC0Apply(b *testing.B) {
	narrow := latticeLike(28, 28, 15) // 11760 DoFs, ~250 nnz/row
	systems := []struct {
		name string
		a    *sparse.CSR
		ord  OrderingKind
	}{
		{"narrowDAG", narrow, OrderingNatural},
		// The same narrow system under the multicolor ordering: the factor
		// collapses to one wide level per color, so this is the regime the
		// reduced global matrices run in after PR 5's OrderingAuto.
		{"narrowDAG-multicolor", narrow, OrderingMulticolor},
		{"wideDAG", blockIndependent(600, 24), OrderingNatural}, // 14400 DoFs, 24 levels × 600 rows
	}
	rng := rand.New(rand.NewSource(3))
	workers := runtime.GOMAXPROCS(0)
	for _, sys := range systems {
		p, err := newIC0Ordered(sys.a, sys.ord)
		if err != nil {
			b.Fatal(err)
		}
		r := make([]float64, sys.a.NRows)
		for i := range r {
			r[i] = rng.NormFloat64()
		}
		dst := make([]float64, sys.a.NRows)
		b.Run(sys.name+"/serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.applyPar(dst, r, 1, nil)
			}
		})
		b.Run(sys.name+"/levelsched-spawn", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.applyPar(dst, r, workers, nil)
			}
		})
		b.Run(sys.name+"/levelsched-pool", func(b *testing.B) {
			ws := NewWorkspace(workers)
			defer ws.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.applyPar(dst, r, workers, ws)
			}
		})
	}
}

// BenchmarkIC0ApplyBlocked measures the 3×3-tiled factor application on the
// same system as BenchmarkIC0Apply's narrowDAG (latticeLike(28,28,15):
// 11760 DoFs of dense node tiles, the reduced-global regime) so the
// scalar64/serial row is directly comparable to the pr-8 narrowDAG/serial
// baseline. f64 and f32 rows are the blocked factor in both storage
// precisions — the apply is bandwidth-bound, so the tile layout (~1/3 index
// traffic) and the halved factor bytes both show up as serial ns/op. Run
// with -cpu 1,4; the pool rows dispatch through a resident Workspace gang.
func BenchmarkIC0ApplyBlocked(b *testing.B) {
	a := latticeLike(28, 28, 15)
	scalar, err := newIC0Layout(a, OrderingNatural, PrecisionFloat64, false)
	if err != nil {
		b.Fatal(err)
	}
	f64, err := newIC0Prec(a, OrderingNatural, PrecisionFloat64)
	if err != nil {
		b.Fatal(err)
	}
	f32, err := newIC0Prec(a, OrderingNatural, PrecisionAuto)
	if err != nil {
		b.Fatal(err)
	}
	if !f64.Blocked() || !f32.Blocked() || f32.FactorPrecision() != PrecisionFloat32 {
		b.Fatalf("factors not blocked as expected (f64 blocked=%v, f32 blocked=%v prec=%v)",
			f64.Blocked(), f32.Blocked(), f32.FactorPrecision())
	}
	rng := rand.New(rand.NewSource(3))
	r := make([]float64, a.NRows)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	dst := make([]float64, a.NRows)
	workers := runtime.GOMAXPROCS(0)
	serial := func(p *ic0) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.applyPar(dst, r, 1, nil)
			}
		}
	}
	pooled := func(p *ic0) func(b *testing.B) {
		return func(b *testing.B) {
			ws := NewWorkspace(workers)
			defer ws.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.applyPar(dst, r, workers, ws)
			}
		}
	}
	b.Run("scalar64/serial", serial(scalar))
	b.Run("f64/serial", serial(f64))
	b.Run("f32/serial", serial(f32))
	b.Run("f64/pool", pooled(f64))
	b.Run("f32/pool", pooled(f32))
}

// BenchmarkPCGNoAlloc measures the allocation-free steady-state PCG loop:
// reusable Workspace (resident gang), prebuilt IC0 preconditioner, pooled
// work vectors. Must report 0 allocs/op after the warmup solve
// (TestPCGZeroAllocs asserts the same contract).
func BenchmarkPCGNoAlloc(b *testing.B) {
	a := elasticity3(12, 12, 8)
	rng := rand.New(rand.NewSource(4))
	rhs := make([]float64, a.NRows)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	m, err := NewPreconditioner(PrecondIC0, a)
	if err != nil {
		b.Fatal(err)
	}
	ws := NewWorkspace(runtime.GOMAXPROCS(0))
	defer ws.Close()
	opt := Options{Tol: 1e-8, Precond: PrecondIC0, M: m, Work: ws}
	if _, _, err := PCG(a, rhs, nil, opt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := PCG(a, rhs, nil, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPCGPrecond compares the preconditioners on a 3-DoF-per-node
// elasticity-like system — the data behind docs/SOLVER_TUNING.md. The
// iterations metric is the converged iteration count.
func BenchmarkPCGPrecond(b *testing.B) {
	a := elasticity3(12, 12, 8)
	rng := rand.New(rand.NewSource(42))
	rhs := make([]float64, a.NRows)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	for _, kind := range []PrecondKind{PrecondNone, PrecondJacobi, PrecondBlockJacobi3, PrecondIC0} {
		b.Run(kind.String(), func(b *testing.B) {
			var its int
			for i := 0; i < b.N; i++ {
				_, stats, err := PCG(a, rhs, nil, Options{Tol: 1e-8, Precond: kind})
				if err != nil {
					b.Fatal(err)
				}
				its = stats.Iterations
			}
			b.ReportMetric(float64(its), "iterations")
		})
	}
}
