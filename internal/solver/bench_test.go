package solver

import (
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

func benchMatrix(nx, ny, nz int) (*sparse.CSR, []float64) {
	a := laplacian3D(nx, ny, nz)
	rng := rand.New(rand.NewSource(42))
	b := make([]float64, a.NRows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return a, b
}

func BenchmarkCholeskyFactor(b *testing.B) {
	a, _ := benchMatrix(20, 20, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholeskySolve(b *testing.B) {
	a, rhs := benchMatrix(20, 20, 10)
	chol, err := NewCholesky(a)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]float64, a.NRows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chol.SolveInto(dst, rhs)
	}
}

func BenchmarkCG(b *testing.B) {
	a, rhs := benchMatrix(20, 20, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := CG(a, rhs, nil, Options{Tol: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGMRES(b *testing.B) {
	a, rhs := benchMatrix(20, 20, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GMRES(a, rhs, nil, Options{Tol: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFactorReuse quantifies the design choice of §4.2: the
// local stage factorizes A_ff once and reuses it for all n+1 right-hand
// sides. The alternative — an iterative solve per right-hand side — is what
// the reuse avoids.
func BenchmarkAblationFactorReuse(b *testing.B) {
	a, _ := benchMatrix(16, 16, 8)
	rng := rand.New(rand.NewSource(7))
	const nrhs = 32
	rhss := make([][]float64, nrhs)
	for i := range rhss {
		rhss[i] = make([]float64, a.NRows)
		for j := range rhss[i] {
			rhss[i][j] = rng.NormFloat64()
		}
	}
	b.Run("factor-once", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			chol, err := NewCholesky(a)
			if err != nil {
				b.Fatal(err)
			}
			dst := make([]float64, a.NRows)
			for _, rhs := range rhss {
				chol.SolveInto(dst, rhs)
			}
		}
	})
	b.Run("iterative-per-rhs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, rhs := range rhss {
				if _, _, err := CG(a, rhs, nil, Options{Tol: 1e-8}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkPCGPrecond compares the preconditioners on a 3-DoF-per-node
// elasticity-like system — the data behind docs/SOLVER_TUNING.md. The
// iterations metric is the converged iteration count.
func BenchmarkPCGPrecond(b *testing.B) {
	a := elasticity3(12, 12, 8)
	rng := rand.New(rand.NewSource(42))
	rhs := make([]float64, a.NRows)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	for _, kind := range []PrecondKind{PrecondNone, PrecondJacobi, PrecondBlockJacobi3, PrecondIC0} {
		b.Run(kind.String(), func(b *testing.B) {
			var its int
			for i := 0; i < b.N; i++ {
				_, stats, err := PCG(a, rhs, nil, Options{Tol: 1e-8, Precond: kind})
				if err != nil {
					b.Fatal(err)
				}
				its = stats.Iterations
			}
			b.ReportMetric(float64(its), "iterations")
		})
	}
}
