// Package solver provides the linear solvers of the MORE-Stress pipeline: a
// reverse Cuthill–McKee fill-reducing ordering, a sparse Cholesky
// factorization for the one-shot local stage (one factorization, many
// right-hand sides), and Jacobi-preconditioned CG and restarted GMRES
// iterative solvers for the reference FEM and the global stage.
package solver

import (
	"sort"

	"repro/internal/sparse"
)

// RCM computes a reverse Cuthill–McKee ordering of the symmetric sparsity
// pattern of m, returning perm with perm[old] = new. The ordering reduces
// matrix bandwidth/profile, which shrinks Cholesky fill dramatically on the
// structured meshes used here. Disconnected components are handled by
// restarting from the minimum-degree unvisited node.
func RCM(m *sparse.CSR) []int32 {
	n := m.NRows
	deg := make([]int32, n)
	for r := 0; r < n; r++ {
		deg[r] = m.RowPtr[r+1] - m.RowPtr[r]
	}
	visited := make([]bool, n)
	order := make([]int32, 0, n)
	queue := make([]int32, 0, n)
	neigh := make([]int32, 0, 64)

	// Seed selection: the nodes sorted once by (degree, index), walked with
	// a rolling cursor that only ever advances. Every component restart
	// resumes the scan where the last one stopped, so seeding costs
	// O(n log n) total instead of the O(n · components) of re-scanning all
	// nodes per component — which matters on fragmented patterns with many
	// components. The stable sort preserves the index tie-break of a linear
	// min-degree scan, so the ordering is unchanged.
	seeds := make([]int32, n)
	for i := range seeds {
		seeds[i] = int32(i)
	}
	sort.SliceStable(seeds, func(i, j int) bool { return deg[seeds[i]] < deg[seeds[j]] })
	cursor := 0

	for len(order) < n {
		for visited[seeds[cursor]] {
			cursor++
		}
		seed := seeds[cursor]
		visited[seed] = true
		queue = append(queue[:0], seed)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			neigh = neigh[:0]
			for p := m.RowPtr[v]; p < m.RowPtr[v+1]; p++ {
				w := m.ColIdx[p]
				if !visited[w] {
					visited[w] = true
					neigh = append(neigh, w)
				}
			}
			sort.Slice(neigh, func(i, j int) bool { return deg[neigh[i]] < deg[neigh[j]] })
			queue = append(queue, neigh...)
		}
	}

	// Reverse the order and invert to perm[old] = new.
	perm := make([]int32, n)
	for i, v := range order {
		perm[v] = int32(n - 1 - i)
	}
	return perm
}

// Bandwidth returns the maximum |r - c| over stored entries, a cheap quality
// metric for orderings.
func Bandwidth(m *sparse.CSR) int {
	var bw int32
	for r := 0; r < m.NRows; r++ {
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			d := int32(r) - m.ColIdx[p]
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return int(bw)
}
