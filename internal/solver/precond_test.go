package solver

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

// elasticity3 builds a 3-DoF-per-node SPD test matrix: the 7-point Laplacian
// pattern expanded to 3×3 node blocks with intra-node coupling — a stand-in
// for an elasticity stiffness matrix.
func elasticity3(nx, ny, nz int) *sparse.CSR {
	lap := laplacian3D(nx, ny, nz)
	n := lap.NRows
	tr := sparse.NewTriplet(3*n, 3*n, lap.NNZ()*9)
	for r := 0; r < n; r++ {
		for p := lap.RowPtr[r]; p < lap.RowPtr[r+1]; p++ {
			c := int(lap.ColIdx[p])
			v := lap.Vals[p]
			for i := 0; i < 3; i++ {
				tr.Add(3*r+i, 3*c+i, v*2)
				if r == c {
					// Intra-node coupling (symmetric, diagonally dominated).
					tr.Add(3*r+i, 3*c+(i+1)%3, 0.4)
					tr.Add(3*r+(i+1)%3, 3*c+i, 0.4)
				}
			}
		}
	}
	return tr.ToCSR()
}

func TestInvert3(t *testing.T) {
	m := []float64{4, 1, 0, 1, 5, 2, 0, 2, 6}
	inv := make([]float64, 9)
	if err := invert3(m, inv); err != nil {
		t.Fatal(err)
	}
	// m · inv = I.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var s float64
			for k := 0; k < 3; k++ {
				s += m[3*i+k] * inv[3*k+j]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(s-want) > 1e-12 {
				t.Fatalf("(m·inv)[%d][%d] = %g", i, j, s)
			}
		}
	}
	if err := invert3(make([]float64, 9), inv); err == nil {
		t.Error("expected error for singular block")
	}
}

func TestPreconditionersSolveSameSystem(t *testing.T) {
	a := elasticity3(6, 5, 4)
	rng := rand.New(rand.NewSource(11))
	want := randVec(rng, a.NRows)
	b := make([]float64, a.NRows)
	a.MulVec(b, want)

	for _, kind := range []PrecondKind{PrecondAuto, PrecondNone, PrecondJacobi, PrecondBlockJacobi3, PrecondIC0} {
		x, stats, err := PCG(a, b, nil, Options{Tol: 1e-10, Precond: kind})
		if err != nil {
			t.Fatalf("kind %v: %v", kind, err)
		}
		if !stats.Converged {
			t.Fatalf("kind %v did not converge", kind)
		}
		if stats.Precond != kind.Resolve(a.NRows) {
			t.Fatalf("kind %v: stats report %v, want %v", kind, stats.Precond, kind.Resolve(a.NRows))
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
				t.Fatalf("kind %d: mismatch at %d", kind, i)
			}
		}
	}
}

func TestIC0ReducesIterations(t *testing.T) {
	a := elasticity3(8, 8, 6)
	rng := rand.New(rand.NewSource(12))
	b := randVec(rng, a.NRows)
	_, sJac, err := PCG(a, b, nil, Options{Tol: 1e-9, Precond: PrecondJacobi})
	if err != nil {
		t.Fatal(err)
	}
	_, sIC, err := PCG(a, b, nil, Options{Tol: 1e-9, Precond: PrecondIC0})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Jacobi %d iterations, IC0 %d iterations", sJac.Iterations, sIC.Iterations)
	if sIC.Iterations >= sJac.Iterations {
		t.Errorf("IC0 (%d) should beat Jacobi (%d)", sIC.Iterations, sJac.Iterations)
	}
}

func TestBlockJacobiBeatsJacobiOnCoupledSystem(t *testing.T) {
	a := elasticity3(8, 8, 4)
	rng := rand.New(rand.NewSource(13))
	b := randVec(rng, a.NRows)
	_, sJac, err := PCG(a, b, nil, Options{Tol: 1e-9, Precond: PrecondJacobi})
	if err != nil {
		t.Fatal(err)
	}
	_, sBlk, err := PCG(a, b, nil, Options{Tol: 1e-9, Precond: PrecondBlockJacobi3})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Jacobi %d, block-Jacobi %d iterations", sJac.Iterations, sBlk.Iterations)
	if sBlk.Iterations > sJac.Iterations {
		t.Errorf("block-Jacobi (%d) should not lose to Jacobi (%d) with intra-node coupling",
			sBlk.Iterations, sJac.Iterations)
	}
}

func TestBlockJacobiRequiresMultipleOf3(t *testing.T) {
	tr := sparse.NewTriplet(4, 4, 4)
	for i := 0; i < 4; i++ {
		tr.Add(i, i, 1)
	}
	if _, err := NewPreconditioner(PrecondBlockJacobi3, tr.ToCSR()); err == nil {
		t.Error("expected error for n not divisible by 3")
	}
}

func TestBlockJacobiHandlesIdentityRows(t *testing.T) {
	// Identity rows (inactive nodes) make a singular off-diagonal pattern;
	// the fallback must still produce a usable preconditioner.
	tr := sparse.NewTriplet(6, 6, 12)
	for i := 0; i < 3; i++ {
		tr.Add(i, i, 1) // identity block
	}
	tr.Add(3, 3, 4)
	tr.Add(4, 4, 5)
	tr.Add(5, 5, 6)
	tr.Add(3, 4, 1)
	tr.Add(4, 3, 1)
	a := tr.ToCSR()
	b := []float64{1, 2, 3, 4, 5, 6}
	x, stats, err := PCG(a, b, nil, Options{Tol: 1e-12, Precond: PrecondBlockJacobi3})
	if err != nil || !stats.Converged {
		t.Fatalf("solve failed: %v %v", stats, err)
	}
	if math.Abs(x[0]-1) > 1e-10 || math.Abs(x[1]-2) > 1e-10 {
		t.Error("identity block solved wrong")
	}
}

func TestIC0ExactOnDiagonal(t *testing.T) {
	// On a diagonal matrix IC0 is exact: one iteration to converge.
	tr := sparse.NewTriplet(5, 5, 5)
	for i := 0; i < 5; i++ {
		tr.Add(i, i, float64(i+1))
	}
	a := tr.ToCSR()
	b := []float64{1, 1, 1, 1, 1}
	_, stats, err := PCG(a, b, nil, Options{Tol: 1e-12, Precond: PrecondIC0})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iterations > 1 {
		t.Errorf("IC0 on diagonal matrix took %d iterations", stats.Iterations)
	}
}

func TestIC0MatchesFullCholeskyOnTridiagonal(t *testing.T) {
	// A tridiagonal SPD matrix has no fill, so IC0 equals the exact
	// factorization and PCG converges in one iteration.
	n := 40
	tr := sparse.NewTriplet(n, n, 3*n)
	for i := 0; i < n; i++ {
		tr.Add(i, i, 2.5)
		if i > 0 {
			tr.Add(i, i-1, -1)
			tr.Add(i-1, i, -1)
		}
	}
	a := tr.ToCSR()
	rng := rand.New(rand.NewSource(14))
	b := randVec(rng, n)
	_, stats, err := PCG(a, b, nil, Options{Tol: 1e-10, Precond: PrecondIC0})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iterations > 2 {
		t.Errorf("IC0 on tridiagonal took %d iterations, want <= 2", stats.Iterations)
	}
}

func TestPrecondAutoResolution(t *testing.T) {
	// One-shot rule (bare solver calls build the preconditioner per solve).
	cases := []struct {
		kind PrecondKind
		n    int
		want PrecondKind
	}{
		{PrecondAuto, 300, PrecondBlockJacobi3},
		{PrecondAuto, AutoIC0Threshold() + 2, PrecondBlockJacobi3}, // amortized crossover is not the one-shot one (2502 % 3 == 0)
		{PrecondAuto, AutoIC0OneShotThreshold, PrecondIC0},
		{PrecondAuto, AutoIC0OneShotThreshold + 3, PrecondIC0},
		{PrecondAuto, 301, PrecondJacobi}, // not divisible by 3
		{PrecondJacobi, 1 << 20, PrecondJacobi},
		{PrecondNone, 3, PrecondNone},
	}
	for _, c := range cases {
		if got := c.kind.Resolve(c.n); got != c.want {
			t.Errorf("Resolve(%v, n=%d) = %v, want %v", c.kind, c.n, got, c.want)
		}
	}
	// Amortized rule (assembly-cached path): IC0 from the lower threshold.
	amortized := []struct {
		n    int
		want PrecondKind
	}{
		{300, PrecondBlockJacobi3},
		{AutoIC0Threshold(), PrecondIC0},
		{AutoIC0OneShotThreshold, PrecondIC0},
	}
	for _, c := range amortized {
		if got := PrecondAuto.ResolveAmortized(c.n); got != c.want {
			t.Errorf("ResolveAmortized(auto, n=%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestParsePrecondRoundTrip(t *testing.T) {
	for _, kind := range []PrecondKind{PrecondAuto, PrecondJacobi, PrecondBlockJacobi3, PrecondIC0, PrecondNone} {
		got, err := ParsePrecond(kind.String())
		if err != nil || got != kind {
			t.Errorf("ParsePrecond(%q) = %v, %v", kind.String(), got, err)
		}
	}
	if k, err := ParsePrecond(""); err != nil || k != PrecondAuto {
		t.Errorf("empty spelling should parse as auto, got %v, %v", k, err)
	}
	if k, err := ParsePrecond("bj3"); err != nil || k != PrecondBlockJacobi3 {
		t.Errorf("bj3 shorthand: got %v, %v", k, err)
	}
	if _, err := ParsePrecond("cholesky"); err == nil {
		t.Error("expected error for unknown preconditioner name")
	}
}

// TestWarmStartStatsAndIterations checks the warm-start contract of the
// iterative solvers: seeding with the exact solution converges without
// iterating, the Stats record Warm, and a nearby seed (the previous point of
// a ΔT-style sweep) takes no more iterations than a cold start.
func TestWarmStartStatsAndIterations(t *testing.T) {
	a := elasticity3(6, 6, 4)
	rng := rand.New(rand.NewSource(21))
	want := randVec(rng, a.NRows)
	b := make([]float64, a.NRows)
	a.MulVec(b, want)

	for _, solve := range []struct {
		name string
		fn   func(x0 []float64) ([]float64, Stats, error)
	}{
		{"PCG", func(x0 []float64) ([]float64, Stats, error) { return PCG(a, b, x0, Options{Tol: 1e-10}) }},
		{"GMRES", func(x0 []float64) ([]float64, Stats, error) { return GMRES(a, b, x0, Options{Tol: 1e-10}) }},
	} {
		t.Run(solve.name, func(t *testing.T) {
			_, cold, err := solve.fn(nil)
			if err != nil {
				t.Fatal(err)
			}
			if cold.Warm {
				t.Error("cold solve reported Warm")
			}
			_, exact, err := solve.fn(want)
			if err != nil {
				t.Fatal(err)
			}
			if !exact.Warm || exact.Iterations != 0 {
				t.Errorf("exact seed: warm=%v iterations=%d, want warm in 0 iterations", exact.Warm, exact.Iterations)
			}
			// A scaled solution — what a ΔT sweep's previous point looks
			// like — must not be slower than a zero start.
			near := make([]float64, len(want))
			for i := range near {
				near[i] = 0.9 * want[i]
			}
			_, warm, err := solve.fn(near)
			if err != nil {
				t.Fatal(err)
			}
			if warm.Iterations > cold.Iterations {
				t.Errorf("near seed took %d iterations vs %d cold", warm.Iterations, cold.Iterations)
			}
		})
	}
}
