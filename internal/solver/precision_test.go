package solver

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/sparse"
)

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func maxAbsVec(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// TestBlockedIC0ApplyMatchesScalar compares the tiled factor application
// against the scalar factor of the same system (newIC0Layout with blocking
// suppressed): same factorization, same values, only the storage layout and
// kernel grouping differ — so float64 tiles must agree to rounding noise,
// and float32 tiles to single-precision rounding of the factor, across
// orderings, worker counts, and dispatch modes.
func TestBlockedIC0ApplyMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	// Dense per-node tiles: the factor fill clears BlockFillMin, as the
	// reduced global matrices do. (elasticity3's ⅓-full off-diagonal tiles
	// stay scalar — TestPrecisionDegradesOnScalarLayout covers that side.)
	systems := map[string]*sparse.CSR{
		"lattice-9x8":   latticeLike(9, 8, 3),
		"lattice-11x11": latticeLike(11, 11, 3),
	}
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0), 8}
	for name, a := range systems {
		for _, ord := range []OrderingKind{OrderingNatural, OrderingMulticolor} {
			scalar, err := newIC0Layout(a, ord, PrecisionFloat64, false)
			if err != nil {
				t.Fatalf("%s/%v scalar: %v", name, ord, err)
			}
			if scalar.Blocked() {
				t.Fatalf("%s/%v: layout-suppressed factor is blocked", name, ord)
			}
			b64, err := newIC0Prec(a, ord, PrecisionFloat64)
			if err != nil {
				t.Fatalf("%s/%v f64: %v", name, ord, err)
			}
			b32, err := newIC0Prec(a, ord, PrecisionAuto)
			if err != nil {
				t.Fatalf("%s/%v f32: %v", name, ord, err)
			}
			if !b64.Blocked() || b64.FactorPrecision() != PrecisionFloat64 {
				t.Fatalf("%s/%v: f64 factor blocked=%v precision=%v", name, ord, b64.Blocked(), b64.FactorPrecision())
			}
			if !b32.Blocked() || b32.FactorPrecision() != PrecisionFloat32 {
				t.Fatalf("%s/%v: auto factor blocked=%v precision=%v, want blocked float32", name, ord, b32.Blocked(), b32.FactorPrecision())
			}
			n := a.NRows
			r := make([]float64, n)
			for i := range r {
				r[i] = rng.NormFloat64()
			}
			want := make([]float64, n)
			scalar.applyPar(want, r, 1, nil)
			scale := 1 + maxAbsVec(want)

			got := make([]float64, n)
			b64.applyPar(got, r, 1, nil)
			if d := maxAbsDiff(got, want); d > 1e-9*scale {
				t.Fatalf("%s/%v: blocked f64 apply differs from scalar by %g", name, ord, d)
			}
			want64 := make([]float64, n)
			copy(want64, got)

			got32 := make([]float64, n)
			b32.applyPar(got32, r, 1, nil)
			if d := maxAbsDiff(got32, want); d > 2e-4*scale {
				t.Fatalf("%s/%v: blocked f32 apply differs from scalar by %g", name, ord, d)
			}
			want32 := make([]float64, n)
			copy(want32, got32)

			// Worker counts and pooled dispatch stay bitwise per layout.
			for _, w := range workerCounts {
				ws := NewWorkspace(w)
				for prec, pair := range map[string][2][]float64{
					"f64": {want64, got}, "f32": {want32, got32},
				} {
					p := b64
					if prec == "f32" {
						p = b32
					}
					p.applyPar(pair[1], r, w, nil)
					for i := range pair[0] {
						if pair[1][i] != pair[0][i] {
							t.Fatalf("%s/%v %s spawn workers=%d: dst[%d] = %x, want %x", name, ord, prec, w, i, pair[1][i], pair[0][i])
						}
					}
					p.applyPar(pair[1], r, w, ws)
					for i := range pair[0] {
						if pair[1][i] != pair[0][i] {
							t.Fatalf("%s/%v %s pool workers=%d: dst[%d] = %x, want %x", name, ord, prec, w, i, pair[1][i], pair[0][i])
						}
					}
				}
				ws.Close()
			}
		}
	}
}

// TestPrecisionDegradesOnScalarLayout: an explicit float32 request on a
// matrix that keeps the scalar factor layout (dimension not a multiple of
// the block size) must degrade honestly to float64 storage and say so.
func TestPrecisionDegradesOnScalarLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	a := randSPDSparse(rng, 700, 4) // 700 % 3 != 0: scalar layout
	p, err := newIC0Prec(a, OrderingNatural, PrecisionFloat32)
	if err != nil {
		t.Fatal(err)
	}
	if p.Blocked() {
		t.Fatal("700-DoF factor committed to tiles")
	}
	if got := p.FactorPrecision(); got != PrecisionFloat64 {
		t.Fatalf("scalar-layout factor precision = %v, want float64", got)
	}
	b := make([]float64, a.NRows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	_, stats, err := PCG(a, b, nil, Options{Tol: 1e-8, Precond: PrecondIC0, Precision: PrecisionFloat32})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Precision != PrecisionFloat64 {
		t.Fatalf("Stats.Precision = %v, want float64 on the scalar layout", stats.Precision)
	}
	// A dimension that divides by the block size but whose tiles are mostly
	// padding must also stay scalar: elasticity3's off-diagonal node tiles
	// hold 3 of 9 entries, below BlockFillMin.
	sparse3 := elasticity3(6, 6, 5)
	p, err = newIC0Prec(sparse3, OrderingNatural, PrecisionAuto)
	if err != nil {
		t.Fatal(err)
	}
	if p.Blocked() {
		t.Error("sparse-tile factor committed to tiles below BlockFillMin")
	}
	if got := p.FactorPrecision(); got != PrecisionFloat64 {
		t.Errorf("sparse-tile factor precision = %v, want float64", got)
	}
}

// TestMixedPrecisionPCGMatchesFloat64 is the solve-level equivalence
// contract: on golden lattice systems the float32-factor PCG must reproduce
// the float64-factor solution to 1e-8. Both runs converge to the same tight
// tolerance; the rounded factor may cost extra iterations but not accuracy.
func TestMixedPrecisionPCGMatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	systems := map[string]*sparse.CSR{
		"lattice-12x12": latticeLike(12, 12, 3),
		"lattice-11x11": latticeLike(11, 11, 3),
	}
	for name, a := range systems {
		b := make([]float64, a.NRows)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x64, s64, err := PCG(a, b, nil, Options{Tol: 1e-11, Precond: PrecondIC0, Precision: PrecisionFloat64})
		if err != nil {
			t.Fatalf("%s f64: %v", name, err)
		}
		if s64.Precision != PrecisionFloat64 {
			t.Fatalf("%s f64: Stats.Precision = %v", name, s64.Precision)
		}
		for _, prec := range []Precision{PrecisionFloat32, PrecisionAuto} {
			x32, s32, err := PCG(a, b, nil, Options{Tol: 1e-11, Precond: PrecondIC0, Precision: prec})
			if err != nil {
				t.Fatalf("%s %v: %v", name, prec, err)
			}
			if s32.Precision != PrecisionFloat32 {
				t.Fatalf("%s %v: Stats.Precision = %v, want float32", name, prec, s32.Precision)
			}
			tol := 1e-8 * (1 + maxAbsVec(x64))
			if d := maxAbsDiff(x32, x64); d > tol {
				t.Fatalf("%s %v: float32 solution differs from float64 by %g (tol %g)", name, prec, d, tol)
			}
		}
	}
}

// TestPCGPrecisionStall forces the float32 refinement guard to exhaustion:
// at a tolerance below the true-residual floor the recurrence keeps
// claiming convergence, each verification fails, and after pcgMaxRefinements
// restarts the solve must surface ErrPrecision (which also matches
// ErrStalled so warm-start fallbacks fire too).
func TestPCGPrecisionStall(t *testing.T) {
	a := latticeLike(8, 8, 3)
	rng := rand.New(rand.NewSource(73))
	b := make([]float64, a.NRows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	_, stats, err := PCG(a, b, nil, Options{
		Tol: 1e-17, MaxIter: 40 * a.NRows,
		Precond: PrecondIC0, Precision: PrecisionFloat32,
	})
	if err == nil {
		t.Fatal("PCG converged below the float64 residual floor")
	}
	if !errors.Is(err, ErrPrecision) {
		t.Fatalf("error %v does not match ErrPrecision", err)
	}
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("error %v does not match ErrStalled", err)
	}
	if stats.Refinements != pcgMaxRefinements {
		t.Errorf("Refinements = %d, want the full budget %d", stats.Refinements, pcgMaxRefinements)
	}
	// The same impossible tolerance with a float64 factor must never report
	// a precision failure — the guard is float32-specific. (Unguarded PCG
	// trusts the recurrence residual, so it may well claim convergence.)
	_, s64, err := PCG(a, b, nil, Options{
		Tol: 1e-17, MaxIter: 2 * a.NRows,
		Precond: PrecondIC0, Precision: PrecisionFloat64,
	})
	if errors.Is(err, ErrPrecision) {
		t.Fatalf("float64 solve reported ErrPrecision: %v", err)
	}
	if s64.Refinements != 0 {
		t.Errorf("float64 solve took %d refinements, want 0", s64.Refinements)
	}
}

// TestPCGZeroAllocsBlockedPrecision extends the allocation-free hot-loop
// contract to the tiled factor in both storage precisions: workspace +
// prebuilt blocked preconditioner + blocked mat-vec, zero allocations in
// steady state (the float32 path includes the true-residual verification
// mat-vec on convergence).
func TestPCGZeroAllocsBlockedPrecision(t *testing.T) {
	a := latticeLike(16, 16, 3) // 768 DoFs of dense tiles: the factor commits to the blocked layout
	bm, err := sparse.NewBCSR(a)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(79))
	b := make([]float64, a.NRows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	for _, prec := range []Precision{PrecisionFloat64, PrecisionFloat32} {
		for _, workers := range []int{1, 4} {
			m, err := NewPreconditionerPrec(PrecondIC0, OrderingAuto, prec, a)
			if err != nil {
				t.Fatal(err)
			}
			if ic, ok := m.(*ic0); !ok || !ic.Blocked() || ic.FactorPrecision() != prec {
				t.Fatalf("%v: preconditioner not a blocked factor of the requested precision", prec)
			}
			ws := NewWorkspace(workers)
			opt := Options{Tol: 1e-8, Precond: PrecondIC0, M: m, Work: ws, Workers: workers, MatBlocked: bm}
			if _, _, err := PCG(a, b, nil, opt); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(5, func() {
				if _, _, err := PCG(a, b, nil, opt); err != nil {
					t.Fatal(err)
				}
			})
			ws.Close()
			if allocs != 0 {
				t.Errorf("%v workers=%d: %.1f allocs per steady-state blocked PCG solve, want 0", prec, workers, allocs)
			}
		}
	}
}

// TestWorkspaceBlockedMatVecMatchesScalar: the workspace binds the tiled
// mat-vec to one matrix identity; for that matrix the dispatch must agree
// with the scalar product to rounding noise, and a different matrix through
// the same workspace must fall back to the scalar path untouched.
func TestWorkspaceBlockedMatVecMatchesScalar(t *testing.T) {
	a := elasticity3(8, 8, 6)
	bm, err := sparse.NewBCSR(a)
	if err != nil {
		t.Fatal(err)
	}
	other := elasticity3(5, 5, 4)
	rng := rand.New(rand.NewSource(83))
	x := make([]float64, a.NRows)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, a.NRows)
	a.MulVec(want, x)

	ws := NewWorkspace(4)
	defer ws.Close()
	ws.reset()
	ws.prepMatVec(a, bm, 4)
	got := make([]float64, a.NRows)
	ws.matvec(a, got, x, 4)
	if d := maxAbsDiff(got, want); d > 1e-10*(1+maxAbsVec(want)) {
		t.Fatalf("blocked workspace mat-vec differs from scalar by %g", d)
	}

	// A matrix the workspace was not prepped for must not use the tiles.
	xo := x[:other.NRows]
	wantO := make([]float64, other.NRows)
	other.MulVec(wantO, xo)
	gotO := make([]float64, other.NRows)
	ws.matvec(other, gotO, xo, 4)
	for i := range wantO {
		if gotO[i] != wantO[i] {
			t.Fatalf("unbound matrix: dst[%d] = %x, want scalar %x", i, gotO[i], wantO[i])
		}
	}
}
