package solver

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/linalg"
	"repro/internal/sparse"
)

// ErrStalled tags iterative failures that may be specific to the starting
// point — non-convergence within MaxIter, or a non-finite residual from a
// poisoned seed. Warm-start callers retry these from zero (errors.Is);
// structural failures (dimension mismatches, SPD breakdowns, preconditioner
// construction errors) are not tagged, as a different start cannot fix them.
var ErrStalled = errors.New("iteration stalled")

// Stats reports the outcome of an iterative solve.
type Stats struct {
	Iterations int
	Residual   float64 // final relative residual ‖b−Ax‖/‖b‖
	Converged  bool
	// Precond is the concrete preconditioner the solve ran with (Auto
	// resolved against the system size).
	Precond PrecondKind
	// Ordering is the symmetric ordering the preconditioner factored under
	// (OrderingNatural for the ordering-invariant kinds; prebuilt Options.M
	// preconditioners report their own).
	Ordering OrderingKind
	// Precision is the concrete storage precision of the preconditioner's
	// factor values (PrecisionFloat64 for the non-factorizing kinds; prebuilt
	// Options.M preconditioners report their own).
	Precision Precision
	// Refinements counts the iterative-refinement restarts a float32-factor
	// PCG solve took when the recurrence residual diverged from the true
	// residual (always zero for float64 factors and for GMRES, whose
	// restarts recompute the true residual anyway).
	Refinements int
	// Warm reports whether the solve was seeded with an initial guess.
	Warm bool
	// PrecondBuild is the preconditioner construction cost paid by this
	// solve: zero when Options.M supplied a prebuilt (e.g. assembly-cached)
	// preconditioner. The array layer overwrites it with the cache's build
	// time on the solve that populated the cache.
	PrecondBuild time.Duration
	// PrecondApply accumulates the preconditioner application time across
	// the solve's iterations.
	PrecondApply time.Duration
}

// Options configures the iterative solvers.
type Options struct {
	// Tol is the relative residual tolerance (default 1e-8).
	Tol float64
	// MaxIter bounds the iteration count (default 10·n).
	MaxIter int
	// Restart is the GMRES restart length m (default 60).
	Restart int
	// Workers is the number of goroutines for matrix-vector products
	// (default GOMAXPROCS, matching the Workers convention of the array
	// and root packages).
	Workers int
	// Precond selects the preconditioner (default PrecondAuto: block-
	// Jacobi-3 below AutoIC0Threshold DoFs, IC0 at and above it).
	Precond PrecondKind
	// Ordering selects the symmetric ordering the factorizing
	// preconditioners (IC0) are built under (default OrderingAuto:
	// multicolor when the natural-order dependency levels are too narrow to
	// fan out, natural otherwise). Ignored when Options.M supplies a
	// prebuilt preconditioner, which carries its own ordering.
	Ordering OrderingKind
	// Precision selects the storage precision of the factorizing
	// preconditioners' values (default PrecisionAuto: float32 when the
	// blocked factor layout engages, float64 otherwise — see Precision).
	// Ignored when Options.M supplies a prebuilt preconditioner, which
	// carries its own precision.
	Precision Precision
	// M optionally supplies a prebuilt preconditioner — e.g. one cached on
	// an array.Assembly — and skips construction (Stats.PrecondBuild stays
	// zero). Precond should name the concrete kind M was built as; it is
	// resolved and recorded in Stats either way. Runtime-only: never
	// serialized.
	M Preconditioner
	// MatBlocked optionally supplies the 3×3-tiled form of the system
	// matrix (e.g. assembly-cached); the workspace mat-vec then runs the
	// blocked kernel instead of the scalar CSR one. Must represent the same
	// matrix as a — dimension mismatches are ignored (scalar path). Runtime-
	// only: never serialized.
	MatBlocked *sparse.BCSR
	// Work optionally supplies a reusable Workspace (pooled work vectors,
	// resident parallel gang). The returned solution vector is then owned
	// by the workspace and valid only until its next solve — copy it to
	// retain it. nil allocates per call. Runtime-only: never serialized.
	Work *Workspace
}

// normWorkers applies the package-wide worker-count default (DefaultWorkers:
// GOMAXPROCS unless host-profile tuning installed a measured ceiling) so
// that every matrix-vector product — including the out-of-band true-residual
// checks — agrees with Options.withDefaults.
func normWorkers(w int) int {
	if w <= 0 {
		return DefaultWorkers()
	}
	return w
}

func (o Options) withDefaults(n int) Options {
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10 * n
	}
	if o.Restart <= 0 {
		o.Restart = 60
	}
	o.Workers = normWorkers(o.Workers)
	return o
}

// jacobi builds the inverse-diagonal preconditioner of a, falling back to 1
// for zero diagonal entries (which cannot occur on an SPD matrix but keeps
// the solver total).
func jacobi(a *sparse.CSR) []float64 {
	d := a.Diag()
	for i, v := range d {
		if v != 0 {
			d[i] = 1 / v
		} else {
			d[i] = 1
		}
	}
	return d
}

// CG solves the symmetric positive-definite system a·x = b with a
// preconditioned conjugate-gradient iteration; it is PCG under its
// historical name (the preconditioner comes from Options.Precond, default
// PrecondAuto). x0 may be nil.
func CG(a *sparse.CSR, b, x0 []float64, opt Options) ([]float64, Stats, error) {
	return PCG(a, b, x0, opt)
}

// GMRES solves a·x = b with left-preconditioned restarted GMRES(m) using
// modified Gram–Schmidt orthogonalization and Givens rotations. This is the
// global-stage solver recommended by the paper (§4.3). The preconditioner
// comes from Options.M when prebuilt or is constructed from Options.Precond
// (default PrecondAuto); x0 optionally seeds the iteration and may be nil.
// Like PCG, GMRES draws its work vectors, Krylov basis, and Hessenberg from
// Options.Work when supplied (the returned solution then aliases workspace
// memory) and drives level-scheduled preconditioners through the
// workspace's resident gang.
func GMRES(a *sparse.CSR, b, x0 []float64, opt Options) ([]float64, Stats, error) {
	n := a.NRows
	if a.NCols != n || len(b) != n {
		return nil, Stats{}, fmt.Errorf("solver: GMRES dimension mismatch: matrix %d×%d, b %d", a.NRows, a.NCols, len(b))
	}
	opt = opt.withDefaults(n)
	m := opt.Restart
	if m > n {
		m = n
	}
	kind := opt.Precond.Resolve(n)
	st := Stats{Precond: kind, Warm: x0 != nil}
	pre := opt.M
	if pre == nil {
		tBuild := time.Now() //stressvet:allow determinism -- wall clock feeds Stats timing only, never numerics
		var err error
		// Worker-aware ordering resolution, matching PCG: see
		// ResolveOrderingFor.
		pre, err = NewPreconditionerPrec(kind, ResolveOrderingFor(opt.Ordering, a, opt.Workers), opt.Precision, a)
		if err != nil {
			return nil, st, err
		}
		st.PrecondBuild = time.Since(tBuild)
	}
	st.Ordering = orderingOf(pre)
	// GMRES needs no refinement guard for float32 factors: every restart
	// already recomputes the true residual b−A·x and the convergence test
	// runs on it, so a rounded factor can slow convergence but never fake it.
	st.Precision = precisionOf(pre)
	ws := opt.Work
	if ws == nil {
		ws = &Workspace{}
	}
	ws.reset()
	ws.prepMatVec(a, opt.MatBlocked, opt.Workers)
	wa, _ := pre.(parApplier)
	apply := func(dst, src []float64) {
		t0 := time.Now() //stressvet:allow determinism -- wall clock feeds Stats timing only, never numerics
		if wa != nil {
			wa.applyPar(dst, src, opt.Workers, ws)
		} else {
			pre.Apply(dst, src)
		}
		st.PrecondApply += time.Since(t0)
	}

	x := ws.vec(n)
	if x0 != nil {
		copy(x, x0)
	} else {
		linalg.Zero(x)
	}
	bnorm := linalg.Norm2(b)
	if bnorm == 0 {
		st.Converged = true
		return x, st, nil
	}

	// Krylov basis (m+1 vectors) and Hessenberg in Givens-reduced form.
	v := make([][]float64, m+1)
	for i := range v {
		v[i] = ws.vec(n)
	}
	h := ws.hessenberg(m+1, m)
	cs := ws.vec(m)
	sn := ws.vec(m)
	g := ws.vec(m + 1)
	w := ws.vec(n)
	pw := ws.vec(n)
	r := ws.vec(n)
	pr := ws.vec(n)
	yBuf := ws.vec(m)

	totalIt := 0
	for totalIt < opt.MaxIter {
		// r = M⁻¹(b − A·x); the true (unpreconditioned) residual for the
		// convergence check falls out of the same mat-vec.
		ws.matvec(a, w, x, opt.Workers)
		var ss float64
		for i := range b {
			d := b[i] - w[i]
			ss += d * d
		}
		trueRes := math.Sqrt(ss) / bnorm
		linalg.Sub(r, b, w)
		apply(pr, r)
		copy(r, pr)
		beta := linalg.Norm2(r)
		if trueRes <= opt.Tol {
			st.Iterations, st.Residual, st.Converged = totalIt, trueRes, true
			return x, st, nil
		}
		// A non-finite residual (NaN/Inf seed or restart blow-up) can never
		// converge; fail now instead of burning MaxIter iterations —
		// warm-start callers fall back to a cold solve on this error.
		if math.IsNaN(trueRes) || math.IsInf(trueRes, 0) {
			st.Iterations = totalIt
			return x, st, fmt.Errorf("solver: GMRES residual is non-finite at iteration %d: %w", totalIt, ErrStalled)
		}
		if beta == 0 {
			st.Iterations, st.Residual, st.Converged = totalIt, trueRes, trueRes <= opt.Tol
			return x, st, nil
		}
		for i := range v[0] {
			v[0][i] = r[i] / beta
		}
		linalg.Zero(g)
		g[0] = beta

		var k int
		for k = 0; k < m && totalIt < opt.MaxIter; k++ {
			totalIt++
			// w = M⁻¹·A·v[k]
			ws.matvec(a, pw, v[k], opt.Workers)
			apply(w, pw)
			// Modified Gram–Schmidt.
			for j := 0; j <= k; j++ {
				hjk := linalg.Dot(w, v[j])
				h.Set(j, k, hjk)
				linalg.Axpy(-hjk, v[j], w)
			}
			hn := linalg.Norm2(w)
			h.Set(k+1, k, hn)
			if hn > 0 {
				for i := range v[k+1] {
					v[k+1][i] = w[i] / hn
				}
			}
			// Apply accumulated Givens rotations to the new column.
			for j := 0; j < k; j++ {
				t1 := cs[j]*h.At(j, k) + sn[j]*h.At(j+1, k)
				t2 := -sn[j]*h.At(j, k) + cs[j]*h.At(j+1, k)
				h.Set(j, k, t1)
				h.Set(j+1, k, t2)
			}
			// New rotation annihilating h[k+1,k].
			c, s := givens(h.At(k, k), h.At(k+1, k))
			cs[k], sn[k] = c, s
			h.Set(k, k, c*h.At(k, k)+s*h.At(k+1, k))
			h.Set(k+1, k, 0)
			g[k+1] = -s * g[k]
			g[k] = c * g[k]
			if math.Abs(g[k+1])/bnorm <= opt.Tol/10 || hn == 0 {
				k++
				break
			}
		}
		// Solve the k×k triangular system and update x.
		y := yBuf[:k]
		for i := k - 1; i >= 0; i-- {
			s := g[i]
			for j := i + 1; j < k; j++ {
				s -= h.At(i, j) * y[j]
			}
			y[i] = s / h.At(i, i)
		}
		for j := 0; j < k; j++ {
			linalg.Axpy(y[j], v[j], x)
		}
	}
	ws.matvec(a, w, x, opt.Workers)
	linalg.Sub(r, b, w)
	res := linalg.Norm2(r) / bnorm
	st.Iterations, st.Residual = totalIt, res
	if res <= opt.Tol {
		st.Converged = true
		return x, st, nil
	}
	return x, st, fmt.Errorf("solver: GMRES did not converge in %d iterations (residual %g): %w", totalIt, res, ErrStalled)
}

// givens returns the rotation (c, s) with c·a + s·b = r, −s·a + c·b = 0.
//
//stressvet:noalloc
func givens(a, b float64) (c, s float64) {
	if b == 0 {
		return 1, 0
	}
	if math.Abs(b) > math.Abs(a) {
		t := a / b
		s = 1 / math.Sqrt(1+t*t)
		return s * t, s
	}
	t := b / a
	c = 1 / math.Sqrt(1+t*t)
	return c, c * t
}
