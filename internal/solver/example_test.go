package solver_test

import (
	"fmt"

	"repro/internal/solver"
	"repro/internal/sparse"
)

// spd3 builds a tiny SPD system with 3 DoFs per node — the shape of a
// reduced global stiffness matrix — whose solution is all ones.
func spd3(nodes int) (a *sparse.CSR, b []float64) {
	n := 3 * nodes
	tr := sparse.NewTriplet(n, n, 9*nodes+2*(n-3))
	for i := 0; i < n; i++ {
		tr.Add(i, i, 4)
		if i+3 < n {
			tr.Add(i, i+3, -1)
			tr.Add(i+3, i, -1)
		}
	}
	b = make([]float64, n)
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	tr.ToCSR().MulVec(b, x)
	return tr.ToCSR(), b
}

// ExamplePCG solves an SPD system with the preconditioned conjugate
// gradient. Options.Precond defaults to PrecondAuto, which picks
// block-Jacobi-3 for a small 3-DoF-per-node system; the returned Stats
// record the resolved choice.
func ExamplePCG() {
	a, b := spd3(40)
	x, stats, err := solver.PCG(a, b, nil, solver.Options{Tol: 1e-10})
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", stats.Converged)
	fmt.Println("preconditioner:", stats.Precond)
	fmt.Printf("x[0] = %.6f\n", x[0])
	// Output:
	// converged: true
	// preconditioner: block-jacobi3
	// x[0] = 1.000000
}

// ExamplePCG_warmStart seeds a solve with the solution of a neighboring
// scenario (here: the same system, so the seed is exact). Warm starts are
// how ΔT sweeps cut their iteration counts: each solve begins from the
// previous solution instead of zero.
func ExamplePCG_warmStart() {
	a, b := spd3(40)
	cold, stats, err := solver.PCG(a, b, nil, solver.Options{Tol: 1e-10})
	if err != nil {
		panic(err)
	}
	fmt.Println("cold start iterated:", stats.Iterations > 0)

	_, warm, err := solver.PCG(a, b, cold, solver.Options{Tol: 1e-10})
	if err != nil {
		panic(err)
	}
	fmt.Println("warm-started:", warm.Warm)
	fmt.Println("warm iterations:", warm.Iterations)
	// Output:
	// cold start iterated: true
	// warm-started: true
	// warm iterations: 0
}
