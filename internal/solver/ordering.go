package solver

import (
	"fmt"

	"repro/internal/sparse"
)

// OrderingKind selects the symmetric row/column ordering the IC0
// preconditioner factors under. The ordering changes the *shape* of the
// factor's dependency DAG (and therefore how well the level-scheduled
// triangular solves parallelize) and, mildly, the factor's quality (iteration
// count); it never changes what the preconditioned solve converges to. The
// Jacobi-family preconditioners are ordering-invariant and ignore it.
type OrderingKind int

const (
	// OrderingAuto — the zero value, and therefore the default wherever an
	// Options travels unset — keeps the natural ordering when its dependency
	// levels are already wide enough to fan out, and switches to the greedy
	// multicolor ordering when they are narrow (max level width of the
	// lower-triangular pattern below AutoMulticolorWidth rows), the system
	// is at least AutoMulticolorMinDoFs, and the resolving solve has more
	// than one worker (ResolveOrderingFor; with one worker — a single core,
	// or one chain of a saturated batch — wide levels buy nothing and the
	// multicolor factor costs extra iterations).
	OrderingAuto OrderingKind = iota
	// OrderingNatural factors in the matrix's own row order. On the reduced
	// global lattices this yields deep, narrow dependency DAGs (PR 4
	// measured 18×18 at 1 445 levels ≤ 24 rows wide), so the level-scheduled
	// solves fall back to their serial loops.
	OrderingNatural
	// OrderingRCM factors under the reverse Cuthill–McKee ordering (RCM).
	// Bandwidth reduction makes the DAG even deeper; exposed for the
	// measurement harness and ablations, not expected to win.
	OrderingRCM
	// OrderingMulticolor factors under the greedy multicolor ordering
	// (Multicolor): rows of one color are mutually independent, so the
	// factor's forward and backward schedules collapse to one level per
	// color and every level is wide. Trades a few extra PCG iterations for
	// parallel preconditioner application.
	OrderingMulticolor

	// NumOrderings bounds the kinds, for stats arrays indexed by ordering.
	NumOrderings = 4
)

// DefaultAutoMulticolorWidth is the hand-measured fallback for the
// natural-order schedule width (rows in the widest dependency level of the
// lower-triangular pattern) below which OrderingAuto switches IC0 to the
// multicolor ordering. Measured on the reduced global lattices and the
// bench systems (docs/SOLVER_TUNING.md): the natural-order reduced factors
// top out at 9–24 rows per level — far below any useful fan-out — while
// systems whose natural DAGs already parallelize (wideDAG: 600-row levels)
// sit well above. A level only splits into multiple chunks near ~64 rows at
// the reduced matrices' row density, so the threshold sits at that knee.
// The live value is AutoMulticolorWidth (tunable.go): host-profile tuning
// may re-derive it — or zero it, disabling the switch — at startup.
const DefaultAutoMulticolorWidth = 64

// AutoMulticolorMinDoFs is the system size below which OrderingAuto keeps
// the natural ordering even when the schedule is narrow. It equals
// sparse.MinParRows: below it the mat-vec runs serially anyway, and the
// measured small-lattice trade (6×6 reduced global, 2 709 DoFs: +5 PCG
// iterations for levels that barely split into two chunks) never recovers
// the coloring's weaker factor — docs/SOLVER_TUNING.md has the table.
const AutoMulticolorMinDoFs = sparse.MinParRows

// String returns the flag/JSON spelling of the kind (see ParseOrdering).
func (k OrderingKind) String() string {
	switch k {
	case OrderingAuto:
		return "auto"
	case OrderingNatural:
		return "natural"
	case OrderingRCM:
		return "rcm"
	case OrderingMulticolor:
		return "multicolor"
	}
	return fmt.Sprintf("ordering(%d)", int(k))
}

// ParseOrdering maps the String spellings (plus "") back to a kind; the
// serve flags and request fields go through here.
func ParseOrdering(s string) (OrderingKind, error) {
	switch s {
	case "", "auto":
		return OrderingAuto, nil
	case "natural":
		return OrderingNatural, nil
	case "rcm":
		return OrderingRCM, nil
	case "multicolor":
		return OrderingMulticolor, nil
	}
	return OrderingAuto, fmt.Errorf("solver: unknown ordering %q (want auto, natural, rcm, or multicolor)", s)
}

// Multicolor computes a greedy multicolor (graph-coloring) ordering of the
// symmetric sparsity pattern with n vertices, where rowsOf(r) lists the
// columns adjacent to row r (the CSR row slice; the diagonal and
// out-of-range entries are ignored). Vertices are colored in natural order,
// each taking the smallest color absent from its already-colored neighbors,
// then ordered color-major: colors ascending, natural vertex order within a
// color. The returned perm maps perm[old] = new; colorPtr bounds each color
// class in the new index space (len = colors+1), so class c is the new
// indices [colorPtr[c], colorPtr[c+1]).
//
// No two adjacent vertices share a color, so under the returned permutation
// every off-diagonal entry couples *different* colors — the lower-triangular
// factor of the permuted matrix has one dependency level per color, each as
// wide as its class. That is the property the level-scheduled triangular
// solves need: ~#colors wide levels instead of the deep, narrow natural-order
// DAGs (see LevelSchedule). The ordering is deterministic for a fixed
// pattern.
func Multicolor(n int, rowsOf func(r int) []int32) (perm []int32, colorPtr []int32) {
	color := make([]int32, n)
	for i := range color {
		color[i] = -1
	}
	// mark[c] holds the most recent vertex whose neighborhood saw color c, so
	// clearing between vertices is O(1).
	var mark []int32
	var ncolors int32
	for v := 0; v < n; v++ {
		for _, w := range rowsOf(v) {
			if w < 0 || int(w) >= n || int(w) == v {
				continue
			}
			if c := color[w]; c >= 0 {
				mark[c] = int32(v)
			}
		}
		c := int32(0)
		for c < ncolors && mark[c] == int32(v) {
			c++
		}
		if c == ncolors {
			ncolors++
			mark = append(mark, -1)
		}
		color[v] = c
	}
	// Counting sort by color: natural order within a class keeps the ordering
	// (and everything downstream of it) deterministic.
	colorPtr = make([]int32, ncolors+1)
	for _, c := range color {
		colorPtr[c+1]++
	}
	for c := int32(0); c < ncolors; c++ {
		colorPtr[c+1] += colorPtr[c]
	}
	perm = make([]int32, n)
	next := make([]int32, ncolors)
	copy(next, colorPtr[:ncolors])
	for v := 0; v < n; v++ {
		c := color[v]
		perm[v] = next[c]
		next[c]++
	}
	return perm, colorPtr
}

// csrRows adapts a CSR pattern to Multicolor's rowsOf.
func csrRows(m *sparse.CSR) func(r int) []int32 {
	return func(r int) []int32 { return m.ColIdx[m.RowPtr[r]:m.RowPtr[r+1]] }
}

// MulticolorNodes is the block-aware multicolor ordering for 3-DoF node
// systems: it colors the *node quotient graph* (nodes adjacent when any of
// their scalar DoFs couple) with the same greedy rule as Multicolor, then
// expands the node permutation so each node's 3 rows stay contiguous —
// perm[3v+c] = 3·newNode(v)+c. Blocked (3×3-tiled) storage survives the
// reordering intact, and the coloring is coarser than the scalar one (node
// cliques collapse to single vertices), which is why it costs fewer extra
// PCG iterations than coloring scalar rows: the intra-node couplings that
// scalar coloring is forced to separate stay together.
//
// Under the returned permutation no two adjacent nodes share a color, so
// the blocked factor's dependency schedules collapse to one block level per
// color (the scalar factor still chains up to 3 rows inside each node).
// The returned perm maps perm[old] = new over scalar indices; colorPtr
// bounds each color class in *node* units (class c covers scalar rows
// [3·colorPtr[c], 3·colorPtr[c+1])). n must be divisible by 3. Deterministic
// for a fixed pattern.
func MulticolorNodes(a *sparse.CSR) (perm []int32, colorPtr []int32) {
	n := a.NRows
	nb := n / sparse.BlockSize
	color := make([]int32, nb)
	for i := range color {
		color[i] = -1
	}
	// mark[c] holds the most recent node whose neighborhood saw color c;
	// duplicate scalar couplings to the same neighbor just re-mark it, so no
	// dedup pass is needed.
	var mark []int32
	var ncolors int32
	for v := 0; v < nb; v++ {
		for i := 0; i < sparse.BlockSize; i++ {
			r := sparse.BlockSize*v + i
			for p := a.RowPtr[r]; p < a.RowPtr[r+1]; p++ {
				w := int(a.ColIdx[p]) / sparse.BlockSize
				if w == v || w < 0 || w >= nb {
					continue
				}
				if c := color[w]; c >= 0 {
					mark[c] = int32(v)
				}
			}
		}
		c := int32(0)
		for c < ncolors && mark[c] == int32(v) {
			c++
		}
		if c == ncolors {
			ncolors++
			mark = append(mark, -1)
		}
		color[v] = c
	}
	colorPtr = make([]int32, ncolors+1)
	for _, c := range color {
		colorPtr[c+1]++
	}
	for c := int32(0); c < ncolors; c++ {
		colorPtr[c+1] += colorPtr[c]
	}
	perm = make([]int32, n)
	next := make([]int32, ncolors)
	copy(next, colorPtr[:ncolors])
	for v := 0; v < nb; v++ {
		c := color[v]
		q := next[c]
		next[c]++
		for i := 0; i < sparse.BlockSize; i++ {
			perm[sparse.BlockSize*v+i] = sparse.BlockSize*q + int32(i)
		}
	}
	return perm, colorPtr
}

// NaturalLevelWidth returns the maximum dependency-level width (rows) of the
// lower-triangular pattern of a in its natural order — the zero-fill IC0
// factor pattern, computed without factoring (one O(nnz) sweep). This is the
// number OrderingAuto compares against AutoMulticolorWidth, and the
// measurement harness reports it next to the post-ordering schedule shape.
func NaturalLevelWidth(a *sparse.CSR) int {
	n := a.NRows
	level := make([]int32, n)
	width := make([]int32, 0, 64)
	var max int32
	for r := 0; r < n; r++ {
		var lv int32
		for p := a.RowPtr[r]; p < a.RowPtr[r+1]; p++ {
			c := a.ColIdx[p]
			if int(c) >= r {
				continue
			}
			if d := level[c] + 1; d > lv {
				lv = d
			}
		}
		level[r] = lv
		for int(lv) >= len(width) {
			width = append(width, 0)
		}
		width[lv]++
		if width[lv] > max {
			max = width[lv]
		}
	}
	return int(max)
}

// ResolveOrdering maps OrderingAuto to the concrete ordering chosen for the
// matrix at GOMAXPROCS parallelism; see ResolveOrderingFor.
func ResolveOrdering(k OrderingKind, a *sparse.CSR) OrderingKind {
	return ResolveOrderingFor(k, a, 0)
}

// ResolveOrderingFor maps OrderingAuto to the concrete ordering chosen for
// the matrix and the solve's worker count: multicolor when the system is
// large enough for fan-out to matter (AutoMulticolorMinDoFs), the
// natural-order schedule is too narrow to fan out (NaturalLevelWidth below
// AutoMulticolorWidth), and the solve actually runs parallel kernels
// (workers > 1; 0 defaults to GOMAXPROCS); natural otherwise. The worker
// count matters: a batch engine that splits the machine across concurrent
// chains hands each solve only a share of GOMAXPROCS, and a 1-worker solve
// would pay the coloring's extra iterations with zero fan-out benefit.
// Concrete kinds resolve to themselves. The probe costs one O(nnz) sweep —
// callers that resolve per solve (the assembly cache) memoize it.
func ResolveOrderingFor(k OrderingKind, a *sparse.CSR, workers int) OrderingKind {
	if k != OrderingAuto {
		return k
	}
	if normWorkers(workers) <= 1 || a.NRows < AutoMulticolorMinDoFs {
		return OrderingNatural // skip the probe when the cheap guards decide
	}
	return OrderingFromWidth(k, a.NRows, NaturalLevelWidth(a), workers)
}

// OrderingFromWidth applies the OrderingAuto rule to a precomputed
// natural-order level width (NaturalLevelWidth), for callers that memoize
// the O(nnz) probe — the assembly cache resolves per solve but probes each
// lattice once. Semantics match ResolveOrderingFor.
func OrderingFromWidth(k OrderingKind, n, width, workers int) OrderingKind {
	if k != OrderingAuto {
		return k
	}
	if normWorkers(workers) <= 1 || n < AutoMulticolorMinDoFs {
		return OrderingNatural
	}
	if width < AutoMulticolorWidth() {
		return OrderingMulticolor
	}
	return OrderingNatural
}

// orderingPerm materializes the permutation of a concrete ordering kind for
// the pattern of a: nil for the natural ordering (identity). Multicolor is
// node-blocked on 3-DoF systems (MulticolorNodes) so blocked factor storage
// survives the reordering; scalar coloring remains for dimensions not
// divisible by 3.
func orderingPerm(k OrderingKind, a *sparse.CSR) []int32 {
	switch k {
	case OrderingRCM:
		return RCM(a)
	case OrderingMulticolor:
		if a.NRows == a.NCols && a.NRows%sparse.BlockSize == 0 {
			perm, _ := MulticolorNodes(a)
			return perm
		}
		perm, _ := Multicolor(a.NRows, csrRows(a))
		return perm
	}
	return nil
}

// Ordered is implemented by preconditioners that factor under a symmetric
// ordering; the solvers record it in Stats and the array layer surfaces it
// per solution. Preconditioners without the method are ordering-invariant
// (reported as OrderingNatural).
type Ordered interface {
	Ordering() OrderingKind
}

// orderingOf reports the ordering a preconditioner was built under.
func orderingOf(m Preconditioner) OrderingKind {
	if o, ok := m.(Ordered); ok {
		return o.Ordering()
	}
	return OrderingNatural
}

// FactorLevels is implemented by preconditioners backed by a level-scheduled
// triangular factor; it exposes the schedule's shape (dependency-level count
// and widest level in rows) for the measurement harness and perf snapshots.
type FactorLevels interface {
	Levels() (count, maxWidth int)
}
