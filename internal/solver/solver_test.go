package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

// laplacian3D builds the standard 7-point Laplacian on an nx×ny×nz grid —
// a well-conditioned SPD test matrix with FEM-like structure.
func laplacian3D(nx, ny, nz int) *sparse.CSR {
	n := nx * ny * nz
	idx := func(i, j, k int) int { return i + nx*(j+ny*k) }
	tr := sparse.NewTriplet(n, n, 7*n)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				r := idx(i, j, k)
				tr.Add(r, r, 6)
				for _, d := range [][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
					ii, jj, kk := i+d[0], j+d[1], k+d[2]
					if ii < 0 || ii >= nx || jj < 0 || jj >= ny || kk < 0 || kk >= nz {
						continue
					}
					tr.Add(r, idx(ii, jj, kk), -1)
				}
			}
		}
	}
	return tr.ToCSR()
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func residual(a *sparse.CSR, x, b []float64) float64 {
	ax := make([]float64, len(b))
	a.MulVec(ax, x)
	var num, den float64
	for i := range b {
		d := b[i] - ax[i]
		num += d * d
		den += b[i] * b[i]
	}
	return math.Sqrt(num / den)
}

func TestRCMReducesBandwidth(t *testing.T) {
	// A random permutation of a structured matrix should be recompressed by
	// RCM to something near the natural bandwidth.
	a := laplacian3D(8, 8, 4)
	rng := rand.New(rand.NewSource(1))
	n := a.NRows
	shuffle := make([]int32, n)
	for i := range shuffle {
		shuffle[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { shuffle[i], shuffle[j] = shuffle[j], shuffle[i] })
	scrambled := a.ToCSC().Permute(shuffle).ToCSR()
	bwBefore := Bandwidth(scrambled)

	perm := RCM(scrambled)
	reordered := scrambled.ToCSC().Permute(perm).ToCSR()
	bwAfter := Bandwidth(reordered)
	if bwAfter >= bwBefore {
		t.Errorf("RCM did not reduce bandwidth: %d -> %d", bwBefore, bwAfter)
	}
	if bwAfter > 3*8*8 {
		t.Errorf("RCM bandwidth %d unexpectedly large", bwAfter)
	}
}

func TestRCMIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := laplacian3D(2+r.Intn(5), 2+r.Intn(5), 1+r.Intn(4))
		perm := RCM(a)
		seen := make([]bool, len(perm))
		for _, p := range perm {
			if p < 0 || int(p) >= len(perm) || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCholeskySolvesLaplacian(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][3]int{{3, 3, 3}, {6, 5, 4}, {10, 10, 3}} {
		a := laplacian3D(dims[0], dims[1], dims[2])
		chol, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("dims %v: %v", dims, err)
		}
		want := randVec(rng, a.NRows)
		b := make([]float64, a.NRows)
		a.MulVec(b, want)
		got := chol.Solve(b)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
				t.Fatalf("dims %v: mismatch at %d: %g vs %g", dims, i, got[i], want[i])
			}
		}
	}
}

func TestCholeskyMultipleRHSConcurrent(t *testing.T) {
	a := laplacian3D(6, 6, 6)
	chol, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const nrhs = 16
	wants := make([][]float64, nrhs)
	bs := make([][]float64, nrhs)
	for i := range wants {
		wants[i] = randVec(rng, a.NRows)
		bs[i] = make([]float64, a.NRows)
		a.MulVec(bs[i], wants[i])
	}
	done := make(chan error, nrhs)
	for i := 0; i < nrhs; i++ {
		go func(i int) {
			got := chol.Solve(bs[i])
			for j := range got {
				if math.Abs(got[j]-wants[i][j]) > 1e-8*(1+math.Abs(wants[i][j])) {
					done <- errMismatch
					return
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < nrhs; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = errorString("solution mismatch")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestCholeskyRejectsIndefinite(t *testing.T) {
	tr := sparse.NewTriplet(2, 2, 2)
	tr.Add(0, 0, 1)
	tr.Add(1, 1, -2)
	if _, err := NewCholesky(tr.ToCSR()); err == nil {
		t.Error("expected error for indefinite matrix")
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	tr := sparse.NewTriplet(2, 3, 1)
	tr.Add(0, 0, 1)
	if _, err := NewCholesky(tr.ToCSR()); err == nil {
		t.Error("expected error for non-square matrix")
	}
}

func TestCholeskyRandomSPD(t *testing.T) {
	// Property: random diagonally dominant symmetric matrices factor and
	// solve correctly.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		tr := sparse.NewTriplet(n, n, 5*n)
		diag := make([]float64, n)
		for e := 0; e < 2*n; e++ {
			i, j := r.Intn(n), r.Intn(n)
			if i == j {
				continue
			}
			v := r.NormFloat64()
			tr.Add(i, j, v)
			tr.Add(j, i, v)
			diag[i] += math.Abs(v)
			diag[j] += math.Abs(v)
		}
		for i := 0; i < n; i++ {
			tr.Add(i, i, diag[i]+1)
		}
		a := tr.ToCSR()
		chol, err := NewCholesky(a)
		if err != nil {
			return false
		}
		want := randVec(r, n)
		b := make([]float64, n)
		a.MulVec(b, want)
		got := chol.Solve(b)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCGConverges(t *testing.T) {
	a := laplacian3D(8, 8, 8)
	rng := rand.New(rand.NewSource(4))
	b := randVec(rng, a.NRows)
	x, stats, err := CG(a, b, nil, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Error("CG did not report convergence")
	}
	if r := residual(a, x, b); r > 1e-9 {
		t.Errorf("CG residual %g", r)
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := laplacian3D(3, 3, 3)
	x, stats, err := CG(a, make([]float64, a.NRows), nil, Options{})
	if err != nil || !stats.Converged {
		t.Fatalf("zero rhs: %v %v", stats, err)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("nonzero solution for zero rhs")
		}
	}
}

func TestCGRejectsIndefinite(t *testing.T) {
	tr := sparse.NewTriplet(2, 2, 2)
	tr.Add(0, 0, 1)
	tr.Add(1, 1, -1)
	if _, _, err := CG(tr.ToCSR(), []float64{0, 1}, nil, Options{}); err == nil {
		t.Error("expected CG breakdown on indefinite matrix")
	}
}

func TestGMRESConverges(t *testing.T) {
	a := laplacian3D(8, 8, 8)
	rng := rand.New(rand.NewSource(5))
	b := randVec(rng, a.NRows)
	x, stats, err := GMRES(a, b, nil, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Error("GMRES did not report convergence")
	}
	if r := residual(a, x, b); r > 1e-9 {
		t.Errorf("GMRES residual %g", r)
	}
}

func TestGMRESNonsymmetric(t *testing.T) {
	// GMRES must handle a nonsymmetric (lifted) system; build one by
	// overwriting a Laplacian row with an identity row.
	a := laplacian3D(5, 5, 5).Clone()
	for p := a.RowPtr[0]; p < a.RowPtr[1]; p++ {
		if a.ColIdx[p] == 0 {
			a.Vals[p] = 1
		} else {
			a.Vals[p] = 0
		}
	}
	rng := rand.New(rand.NewSource(6))
	b := randVec(rng, a.NRows)
	x, _, err := GMRES(a, b, nil, Options{Tol: 1e-9, Restart: 40})
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(a, x, b); r > 1e-8 {
		t.Errorf("GMRES residual %g", r)
	}
}

func TestGMRESRestartSmall(t *testing.T) {
	a := laplacian3D(6, 6, 4)
	rng := rand.New(rand.NewSource(7))
	b := randVec(rng, a.NRows)
	x, _, err := GMRES(a, b, nil, Options{Tol: 1e-8, Restart: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(a, x, b); r > 1e-7 {
		t.Errorf("restarted GMRES residual %g", r)
	}
}

func TestGMRESWithInitialGuess(t *testing.T) {
	a := laplacian3D(5, 5, 5)
	rng := rand.New(rand.NewSource(8))
	want := randVec(rng, a.NRows)
	b := make([]float64, a.NRows)
	a.MulVec(b, want)
	// Start from the exact solution: should converge immediately.
	_, stats, err := GMRES(a, b, want, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iterations != 0 {
		t.Errorf("expected 0 iterations from exact guess, got %d", stats.Iterations)
	}
}

func TestCGAndGMRESAgree(t *testing.T) {
	a := laplacian3D(6, 6, 6)
	rng := rand.New(rand.NewSource(9))
	b := randVec(rng, a.NRows)
	xc, _, err := CG(a, b, nil, Options{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	xg, _, err := GMRES(a, b, nil, Options{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range xc {
		if math.Abs(xc[i]-xg[i]) > 1e-7*(1+math.Abs(xc[i])) {
			t.Fatalf("CG/GMRES disagree at %d: %g vs %g", i, xc[i], xg[i])
		}
	}
}

func TestSolversMatchCholesky(t *testing.T) {
	a := laplacian3D(5, 4, 3)
	rng := rand.New(rand.NewSource(10))
	b := randVec(rng, a.NRows)
	chol, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	direct := chol.Solve(b)
	iter, _, err := CG(a, b, nil, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if math.Abs(direct[i]-iter[i]) > 1e-8*(1+math.Abs(direct[i])) {
			t.Fatalf("direct/iterative disagree at %d", i)
		}
	}
}
