package solver

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/sparse"
)

// randSPDSparse builds a random sparse SPD matrix: symmetric off-diagonal
// pattern with a diagonal strong enough to dominate each row.
func randSPDSparse(rng *rand.Rand, n, extraPerRow int) *sparse.CSR {
	t := sparse.NewTriplet(n, n, n*(2*extraPerRow+1))
	rowSum := make([]float64, n)
	for r := 0; r < n; r++ {
		for k := 0; k < extraPerRow; k++ {
			c := rng.Intn(n)
			if c == r {
				continue
			}
			v := rng.NormFloat64()
			t.Add(r, c, v)
			t.Add(c, r, v)
			rowSum[r] += abs(v)
			rowSum[c] += abs(v)
		}
	}
	for r := 0; r < n; r++ {
		t.Add(r, r, rowSum[r]+1+rng.Float64())
	}
	return t.ToCSR()
}

// diagonalCSR builds a diagonal SPD matrix (degenerate one-level schedule).
func diagonalCSR(n int) *sparse.CSR {
	t := sparse.NewTriplet(n, n, n)
	for r := 0; r < n; r++ {
		t.Add(r, r, float64(r%5)+1)
	}
	return t.ToCSR()
}

// arrowCSR builds an SPD arrow matrix: diagonal plus one dense final
// row/column — the single-dense-row degenerate shape.
func arrowCSR(n int) *sparse.CSR {
	t := sparse.NewTriplet(n, n, 3*n)
	for r := 0; r < n-1; r++ {
		t.Add(r, r, 4)
		t.Add(r, n-1, 0.5)
		t.Add(n-1, r, 0.5)
	}
	t.Add(n-1, n-1, float64(n)) // dominate the dense row
	return t.ToCSR()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestIC0ParallelBitwiseMatchesSerial is the issue's correctness contract
// for the level-scheduled preconditioner: across random SPD systems, worker
// counts (1, 2, GOMAXPROCS, 8), dispatch modes (spawn and resident pool),
// and degenerate shapes (diagonal, single dense row), the parallel apply
// must be bitwise identical to the serial reference.
func TestIC0ParallelBitwiseMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	systems := map[string]*sparse.CSR{
		"laplacian":  laplacian3D(9, 8, 7),
		"elasticity": elasticity3(7, 6, 5),
		"random-1":   randSPDSparse(rng, 700, 4),
		"random-2":   randSPDSparse(rng, 1500, 8),
		"diagonal":   diagonalCSR(600),
		"dense-row":  arrowCSR(500),
	}
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0), 8}
	for name, a := range systems {
		p, err := newIC0(a)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		n := a.NRows
		r := make([]float64, n)
		for i := range r {
			r[i] = rng.NormFloat64()
		}
		want := make([]float64, n)
		p.applyPar(want, r, 1, nil) // serial reference
		for _, w := range workerCounts {
			got := make([]float64, n)
			p.applyPar(got, r, w, nil)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s spawn workers=%d: dst[%d] = %x, want %x", name, w, i, got[i], want[i])
				}
			}
			ws := NewWorkspace(w)
			p.applyPar(got, r, w, ws)
			ws.Close()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s pool workers=%d: dst[%d] = %x, want %x", name, w, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPCGWorkspaceMatchesPlain checks that the workspace/pool/prebuilt-M
// fast path computes exactly what the plain path computes: same iterations,
// bitwise-equal solution.
func TestPCGWorkspaceMatchesPlain(t *testing.T) {
	a := elasticity3(8, 7, 6)
	rng := rand.New(rand.NewSource(7))
	b := make([]float64, a.NRows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	for _, kind := range []PrecondKind{PrecondJacobi, PrecondBlockJacobi3, PrecondIC0} {
		want, wantStats, err := PCG(a, b, nil, Options{Tol: 1e-9, Precond: kind, Workers: 1})
		if err != nil {
			t.Fatalf("%v plain: %v", kind, err)
		}
		m, err := NewPreconditioner(kind, a)
		if err != nil {
			t.Fatal(err)
		}
		ws := NewWorkspace(4)
		defer ws.Close()
		for trial := 0; trial < 3; trial++ { // repeat: workspace reuse must not leak state
			got, stats, err := PCG(a, b, nil, Options{Tol: 1e-9, Precond: kind, M: m, Work: ws, Workers: 4})
			if err != nil {
				t.Fatalf("%v workspace: %v", kind, err)
			}
			if stats.Iterations != wantStats.Iterations {
				t.Errorf("%v trial %d: %d iterations, plain took %d", kind, trial, stats.Iterations, wantStats.Iterations)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v trial %d: x[%d] = %x, plain %x (not bitwise equal)", kind, trial, i, got[i], want[i])
				}
			}
			if stats.PrecondBuild != 0 {
				t.Errorf("%v: PrecondBuild = %v with prebuilt M, want 0", kind, stats.PrecondBuild)
			}
			if stats.PrecondApply <= 0 {
				t.Errorf("%v: PrecondApply not recorded", kind)
			}
		}
	}
}

// TestPCGZeroAllocs is the allocation-free hot-loop contract: with a
// reusable Workspace (resident gang) and a prebuilt preconditioner, a
// steady-state PCG solve performs zero allocations. testing.AllocsPerRun
// measures process-wide mallocs, so the gang's work counts too.
func TestPCGZeroAllocs(t *testing.T) {
	a := elasticity3(10, 10, 8) // 2400 DoFs: serial mat-vec, pooled tri solves
	rng := rand.New(rand.NewSource(9))
	b := make([]float64, a.NRows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	for _, workers := range []int{1, 4} {
		m, err := NewPreconditioner(PrecondIC0, a)
		if err != nil {
			t.Fatal(err)
		}
		ws := NewWorkspace(workers)
		opt := Options{Tol: 1e-8, Precond: PrecondIC0, M: m, Work: ws, Workers: workers}
		// Warm up: first solve sizes the workspace buffers.
		if _, _, err := PCG(a, b, nil, opt); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(5, func() {
			if _, _, err := PCG(a, b, nil, opt); err != nil {
				t.Fatal(err)
			}
		})
		ws.Close()
		if allocs != 0 {
			t.Errorf("workers=%d: %.1f allocs per steady-state PCG solve, want 0", workers, allocs)
		}
	}
}

// TestPCGZeroAllocsParallelMatVec covers the pooled mat-vec path too: a
// system past sparse.MinParRows so the matrix product fans out through the
// resident gang, still allocation-free.
func TestPCGZeroAllocsParallelMatVec(t *testing.T) {
	if testing.Short() {
		t.Skip("large no-alloc system is slow")
	}
	a := elasticity3(16, 16, 6) // 4608 DoFs ≥ MinParRows
	rng := rand.New(rand.NewSource(11))
	b := make([]float64, a.NRows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	m, err := NewPreconditioner(PrecondIC0, a)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace(4)
	defer ws.Close()
	opt := Options{Tol: 1e-8, Precond: PrecondIC0, M: m, Work: ws, Workers: 4}
	if _, _, err := PCG(a, b, nil, opt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, _, err := PCG(a, b, nil, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("%.1f allocs per steady-state solve with parallel mat-vec, want 0", allocs)
	}
}

// TestGMRESWorkspaceMatchesPlain checks the GMRES workspace path against the
// plain path (same iterations, bitwise solution) and that repeated use of
// one workspace across PCG and GMRES solves stays consistent.
func TestGMRESWorkspaceMatchesPlain(t *testing.T) {
	a := elasticity3(6, 6, 5)
	rng := rand.New(rand.NewSource(13))
	b := make([]float64, a.NRows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want, wantStats, err := GMRES(a, b, nil, Options{Tol: 1e-9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace(2)
	defer ws.Close()
	// Interleave a PCG solve to shuffle the workspace buffers between uses.
	if _, _, err := PCG(a, b, nil, Options{Tol: 1e-6, Work: ws}); err != nil {
		t.Fatal(err)
	}
	got, stats, err := GMRES(a, b, nil, Options{Tol: 1e-9, Work: ws, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iterations != wantStats.Iterations {
		t.Errorf("workspace GMRES took %d iterations, plain %d", stats.Iterations, wantStats.Iterations)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("x[%d] = %x, plain %x (not bitwise equal)", i, got[i], want[i])
		}
	}
}

// TestRCMFragmented exercises the rolling-cursor seed selection on a
// fragmented pattern (many disconnected chains): the result must stay a
// valid permutation that orders every component, matching the brute-force
// min-degree seed rule the cursor replaced.
func TestRCMFragmented(t *testing.T) {
	// 120 chains of varying length, plus isolated nodes.
	const chains = 120
	rng := rand.New(rand.NewSource(19))
	tpl := sparse.NewTriplet(0, 0, 0)
	_ = tpl
	n := 0
	type edge struct{ a, b int }
	var edges []edge
	for c := 0; c < chains; c++ {
		ln := 1 + rng.Intn(6)
		for i := 0; i < ln-1; i++ {
			edges = append(edges, edge{n + i, n + i + 1})
		}
		n += ln
	}
	tr := sparse.NewTriplet(n, n, 3*n)
	for i := 0; i < n; i++ {
		tr.Add(i, i, 4)
	}
	for _, e := range edges {
		tr.Add(e.a, e.b, -1)
		tr.Add(e.b, e.a, -1)
	}
	m := tr.ToCSR()
	perm := RCM(m)
	if len(perm) != n {
		t.Fatalf("perm length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			t.Fatalf("perm is not a permutation at %d", p)
		}
		seen[p] = true
	}
	// The ordering must not inflate bandwidth: chains have bandwidth 1
	// under any component-contiguous ordering.
	pm := m.ToCSC().Permute(perm).ToCSR()
	if bw := Bandwidth(pm); bw > 2 {
		t.Errorf("fragmented RCM bandwidth %d, want ≤ 2", bw)
	}
}
