// Package field provides 2-D scalar sample grids (e.g. von Mises stress on
// the mid-height cut plane) and the error metrics used by the paper's
// evaluation: mean absolute error normalized by the maximum stress (§5.2).
package field

import (
	"fmt"
	"math"
)

// Grid2D is a row-major 2-D scalar field; index (ix, iy) maps to V[iy*NX+ix].
type Grid2D struct {
	NX, NY int
	V      []float64
}

// New allocates a zero field.
func New(nx, ny int) *Grid2D {
	return &Grid2D{NX: nx, NY: ny, V: make([]float64, nx*ny)}
}

// At returns the sample at (ix, iy).
func (f *Grid2D) At(ix, iy int) float64 { return f.V[iy*f.NX+ix] }

// Set assigns the sample at (ix, iy).
func (f *Grid2D) Set(ix, iy int, v float64) { f.V[iy*f.NX+ix] = v }

// Max returns the maximum value (−Inf for an empty field).
func (f *Grid2D) Max() float64 {
	m := math.Inf(-1)
	for _, v := range f.V {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum value (+Inf for an empty field).
func (f *Grid2D) Min() float64 {
	m := math.Inf(1)
	for _, v := range f.V {
		if v < m {
			m = v
		}
	}
	return m
}

// Mean returns the average value (0 for an empty field).
func (f *Grid2D) Mean() float64 {
	if len(f.V) == 0 {
		return 0
	}
	var s float64
	for _, v := range f.V {
		s += v
	}
	return s / float64(len(f.V))
}

// Crop returns the sub-field [x0, x1)×[y0, y1).
func (f *Grid2D) Crop(x0, y0, x1, y1 int) *Grid2D {
	if x0 < 0 || y0 < 0 || x1 > f.NX || y1 > f.NY || x0 >= x1 || y0 >= y1 {
		panic(fmt.Sprintf("field: Crop bounds (%d,%d)-(%d,%d) invalid for %d×%d", x0, y0, x1, y1, f.NX, f.NY))
	}
	out := New(x1-x0, y1-y0)
	for iy := y0; iy < y1; iy++ {
		copy(out.V[(iy-y0)*out.NX:(iy-y0+1)*out.NX], f.V[iy*f.NX+x0:iy*f.NX+x1])
	}
	return out
}

// MAE returns the mean absolute difference between two equal-shape fields.
func MAE(a, b *Grid2D) float64 {
	if a.NX != b.NX || a.NY != b.NY {
		panic(fmt.Sprintf("field: MAE shape mismatch %d×%d vs %d×%d", a.NX, a.NY, b.NX, b.NY))
	}
	if len(a.V) == 0 {
		return 0
	}
	var s float64
	for i, v := range a.V {
		s += math.Abs(v - b.V[i])
	}
	return s / float64(len(a.V))
}

// NormalizedMAE returns MAE(a, ref)/max(ref): the paper's error metric,
// normalized by the maximum von Mises stress of the ground truth.
func NormalizedMAE(a, ref *Grid2D) float64 {
	m := ref.Max()
	if m == 0 {
		return 0
	}
	return MAE(a, ref) / m
}

// MaxAbsDiff returns the maximum pointwise absolute difference.
func MaxAbsDiff(a, b *Grid2D) float64 {
	if a.NX != b.NX || a.NY != b.NY {
		panic("field: MaxAbsDiff shape mismatch")
	}
	var m float64
	for i, v := range a.V {
		if d := math.Abs(v - b.V[i]); d > m {
			m = d
		}
	}
	return m
}
