package field

import (
	"bytes"
	"strings"
	"testing"
)

func sampleField() *Grid2D {
	f := New(3, 2)
	copy(f.V, []float64{0, 1, 2, 3, 4, 5})
	return f
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleField().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "0,1,2\n3,4,5\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestWriteVTK(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleField().WriteVTK(&buf, "vonMises", 0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, frag := range []string{
		"# vtk DataFile Version 3.0",
		"DIMENSIONS 3 2 1",
		"SPACING 0.5 0.5 1",
		"POINT_DATA 6",
		"SCALARS vonMises double 1",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("VTK output missing %q", frag)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(s), "5") {
		t.Error("VTK data rows truncated")
	}
}

func TestWritePGM(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleField().WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "P2\n3 2\n255\n") {
		t.Errorf("PGM header wrong: %q", s[:12])
	}
	if !strings.Contains(s, "255") {
		t.Error("max value should map to 255")
	}
	// Uniform field must not divide by zero.
	var buf2 bytes.Buffer
	u := New(2, 2)
	if err := u.WritePGM(&buf2); err != nil {
		t.Fatal(err)
	}
}

func TestRenderASCII(t *testing.T) {
	f := New(20, 20)
	for iy := 0; iy < 20; iy++ {
		for ix := 0; ix < 20; ix++ {
			f.Set(ix, iy, float64(ix))
		}
	}
	s := f.RenderASCII(10)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("empty render")
	}
	// Left edge must be lighter than the right edge in every line.
	for _, ln := range lines {
		if len(ln) < 2 {
			t.Fatalf("short line %q", ln)
		}
		if strings.IndexByte(asciiRamp, ln[0]) > strings.IndexByte(asciiRamp, ln[len(ln)-1]) {
			t.Errorf("gradient inverted in %q", ln)
		}
	}
	// Degenerate maxCols.
	if out := f.RenderASCII(0); out == "" {
		t.Error("maxCols 0 should still render")
	}
}
