package field

import (
	"bufio"
	"fmt"
	"io"
	"math"
)

// WriteCSV writes the field as comma-separated rows (one per NY line).
func (f *Grid2D) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for iy := 0; iy < f.NY; iy++ {
		for ix := 0; ix < f.NX; ix++ {
			if ix > 0 {
				if _, err := bw.WriteString(","); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%g", f.At(ix, iy)); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteVTK writes the field as a legacy-VTK structured-points dataset
// (loadable in ParaView) with the given physical spacing per sample and
// scalar name.
func (f *Grid2D) WriteVTK(w io.Writer, name string, dx, dy float64) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# vtk DataFile Version 3.0")
	fmt.Fprintf(bw, "%s\n", name)
	fmt.Fprintln(bw, "ASCII")
	fmt.Fprintln(bw, "DATASET STRUCTURED_POINTS")
	fmt.Fprintf(bw, "DIMENSIONS %d %d 1\n", f.NX, f.NY)
	fmt.Fprintf(bw, "ORIGIN %g %g 0\n", dx/2, dy/2)
	fmt.Fprintf(bw, "SPACING %g %g 1\n", dx, dy)
	fmt.Fprintf(bw, "POINT_DATA %d\n", f.NX*f.NY)
	fmt.Fprintf(bw, "SCALARS %s double 1\n", name)
	fmt.Fprintln(bw, "LOOKUP_TABLE default")
	for _, v := range f.V {
		fmt.Fprintf(bw, "%g\n", v)
	}
	return bw.Flush()
}

// WritePGM writes the field as a grayscale PGM image (min → black,
// max → white), a dependency-free way to inspect stress maps.
func (f *Grid2D) WritePGM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P2\n%d %d\n255\n", f.NX, f.NY)
	lo, hi := f.Min(), f.Max()
	scale := 0.0
	if hi > lo {
		scale = 255 / (hi - lo)
	}
	for iy := 0; iy < f.NY; iy++ {
		for ix := 0; ix < f.NX; ix++ {
			v := int(math.Round((f.At(ix, iy) - lo) * scale))
			if ix > 0 {
				bw.WriteString(" ")
			}
			fmt.Fprintf(bw, "%d", v)
		}
		bw.WriteString("\n")
	}
	return bw.Flush()
}

// asciiRamp orders characters by visual density for terminal heatmaps.
const asciiRamp = " .:-=+*#%@"

// RenderASCII down-samples the field to at most maxCols columns and renders
// it as an ASCII heatmap (row 0 at the bottom, matching the y axis).
func (f *Grid2D) RenderASCII(maxCols int) string {
	if maxCols < 1 {
		maxCols = 1
	}
	step := (f.NX + maxCols - 1) / maxCols
	if step < 1 {
		step = 1
	}
	// Terminal cells are ~2× taller than wide; sample y twice as coarsely.
	ystep := 2 * step
	lo, hi := f.Min(), f.Max()
	scale := 0.0
	if hi > lo {
		scale = float64(len(asciiRamp)-1) / (hi - lo)
	}
	out := make([]byte, 0, (f.NX/step+1)*(f.NY/ystep+1))
	for iy := f.NY - 1; iy >= 0; iy -= ystep {
		for ix := 0; ix < f.NX; ix += step {
			// Average the cell block for stability.
			var s float64
			var cnt int
			for dy := 0; dy < ystep && iy-dy >= 0; dy++ {
				for dx := 0; dx < step && ix+dx < f.NX; dx++ {
					s += f.At(ix+dx, iy-dy)
					cnt++
				}
			}
			v := s / float64(cnt)
			idx := int((v - lo) * scale)
			if idx < 0 {
				idx = 0
			}
			if idx >= len(asciiRamp) {
				idx = len(asciiRamp) - 1
			}
			out = append(out, asciiRamp[idx])
		}
		out = append(out, '\n')
	}
	return string(out)
}
