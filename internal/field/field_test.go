package field

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAtSet(t *testing.T) {
	f := New(3, 2)
	f.Set(2, 1, 7)
	if f.At(2, 1) != 7 || f.V[1*3+2] != 7 {
		t.Error("At/Set layout wrong")
	}
}

func TestMaxMinMean(t *testing.T) {
	f := New(2, 2)
	copy(f.V, []float64{1, -3, 5, 2})
	if f.Max() != 5 || f.Min() != -3 {
		t.Errorf("max %g min %g", f.Max(), f.Min())
	}
	if f.Mean() != 1.25 {
		t.Errorf("mean %g", f.Mean())
	}
}

func TestCrop(t *testing.T) {
	f := New(4, 4)
	for i := range f.V {
		f.V[i] = float64(i)
	}
	c := f.Crop(1, 1, 3, 3)
	if c.NX != 2 || c.NY != 2 {
		t.Fatalf("crop shape %d×%d", c.NX, c.NY)
	}
	if c.At(0, 0) != f.At(1, 1) || c.At(1, 1) != f.At(2, 2) {
		t.Error("crop values wrong")
	}
}

func TestCropPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(2, 2).Crop(0, 0, 3, 1)
}

func TestMAEAndNormalized(t *testing.T) {
	a := New(2, 1)
	b := New(2, 1)
	copy(a.V, []float64{1, 3})
	copy(b.V, []float64{2, 5})
	if got := MAE(a, b); got != 1.5 {
		t.Errorf("MAE %g", got)
	}
	if got := NormalizedMAE(a, b); got != 1.5/5 {
		t.Errorf("NormalizedMAE %g", got)
	}
	if got := MaxAbsDiff(a, b); got != 2 {
		t.Errorf("MaxAbsDiff %g", got)
	}
}

func TestMAEProperties(t *testing.T) {
	// MAE is symmetric, nonnegative, and zero iff identical.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nx, ny := 1+r.Intn(8), 1+r.Intn(8)
		a, b := New(nx, ny), New(nx, ny)
		for i := range a.V {
			a.V[i] = r.NormFloat64()
			b.V[i] = r.NormFloat64()
		}
		if MAE(a, a) != 0 {
			return false
		}
		m1, m2 := MAE(a, b), MAE(b, a)
		return m1 >= 0 && math.Abs(m1-m2) < 1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNormalizedMAEZeroReference(t *testing.T) {
	a := New(2, 2)
	if NormalizedMAE(a, New(2, 2)) != 0 {
		t.Error("zero reference should give 0")
	}
}
