// Package mobility converts TSV-induced mechanical stress into carrier
// mobility variation and keep-out zones (KOZ) — the downstream analysis that
// motivates fast thermal-stress simulation in the paper's references
// ([Jung DAC'12], [Jung CACM'14]): transistors too close to a TSV suffer
// stress-induced mobility shifts, and placement must respect a keep-out
// radius around each via.
//
// The model is the standard linear piezoresistance approximation for bulk
// silicon channels on a (001) wafer with <110> channels: the relative
// mobility change of a device whose channel is along the local x axis is
//
//	Δµ/µ = −(π_L·σxx + π_T·σyy + π_V·σzz)
//
// with longitudinal/transverse/vertical coefficients per carrier type
// (units 1/Pa; stresses here are MPa, converted internally).
package mobility

import (
	"math"

	"repro/internal/field"
)

// Carrier selects the device type.
type Carrier int

const (
	// NMOS electrons on (001)/<110>.
	NMOS Carrier = iota
	// PMOS holes on (001)/<110>.
	PMOS
)

// String implements fmt.Stringer.
func (c Carrier) String() string {
	if c == NMOS {
		return "NMOS"
	}
	return "PMOS"
}

// Coefficients holds piezoresistance coefficients in 1/MPa.
type Coefficients struct {
	PiL, PiT, PiV float64
}

// StandardCoefficients returns the widely used bulk-silicon (001)/<110>
// piezoresistance values (Smith / Thompson et al.): electrons
// π_L = −31.6, π_T = −17.6, π_V = +53.4 (×1e−11/Pa); holes π_L = +71.8,
// π_T = −66.3, π_V = −1.1 (×1e−11/Pa). Converted to 1/MPa.
func StandardCoefficients(c Carrier) Coefficients {
	const unit = 1e-11 * 1e6 // (1/Pa)·(Pa/MPa) = 1/MPa
	if c == NMOS {
		return Coefficients{PiL: -31.6 * unit, PiT: -17.6 * unit, PiV: 53.4 * unit}
	}
	return Coefficients{PiL: 71.8 * unit, PiT: -66.3 * unit, PiV: -1.1 * unit}
}

// Shift returns Δµ/µ for a Voigt stress tensor (MPa) and a channel along
// the x axis.
func (c Coefficients) Shift(s [6]float64) float64 {
	return -(c.PiL*s[0] + c.PiT*s[1] + c.PiV*s[2])
}

// ShiftY returns Δµ/µ for a channel along the y axis (longitudinal and
// transverse swap).
func (c Coefficients) ShiftY(s [6]float64) float64 {
	return -(c.PiL*s[1] + c.PiT*s[0] + c.PiV*s[2])
}

// WorstShift returns the worst-magnitude shift over the two channel
// orientations.
func (c Coefficients) WorstShift(s [6]float64) float64 {
	a, b := c.Shift(s), c.ShiftY(s)
	if math.Abs(a) >= math.Abs(b) {
		return a
	}
	return b
}

// ShiftField maps a tensor-sampling function over a (NX×NY) grid and
// returns the worst-orientation mobility-shift field. sample(ix, iy) must
// return the stress at grid point (ix, iy).
func ShiftField(nx, ny int, coeff Coefficients, sample func(ix, iy int) [6]float64) *field.Grid2D {
	out := field.New(nx, ny)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			out.Set(ix, iy, coeff.WorstShift(sample(ix, iy)))
		}
	}
	return out
}

// KOZResult reports a keep-out-zone analysis over one unit block.
type KOZResult struct {
	// Radius is the smallest radius around the via center beyond which
	// |Δµ/µ| stays below the threshold (µm); 0 if the whole block is below
	// threshold, and Extent if even the block corner violates it.
	Radius float64
	// Extent is the half-diagonal of the block (the largest measurable
	// radius).
	Extent float64
	// ViolatingFraction is the fraction of sampled sites above threshold.
	ViolatingFraction float64
}

// KOZ computes the keep-out radius on a block-centered shift field: shift
// is a gs×gs field over one p×p block (as produced by sampling a block of
// the solved array), threshold is the allowed |Δµ/µ| (e.g. 0.05 for 5 %).
func KOZ(shift *field.Grid2D, pitch, threshold float64) KOZResult {
	gs := shift.NX
	cx := pitch / 2
	var worstR float64
	viol := 0
	for iy := 0; iy < shift.NY; iy++ {
		y := (float64(iy) + 0.5) * pitch / float64(gs)
		for ix := 0; ix < gs; ix++ {
			x := (float64(ix) + 0.5) * pitch / float64(gs)
			if math.Abs(shift.At(ix, iy)) <= threshold {
				continue
			}
			viol++
			r := math.Hypot(x-cx, y-cx)
			if r > worstR {
				worstR = r
			}
		}
	}
	return KOZResult{
		Radius:            worstR,
		Extent:            math.Sqrt2 * pitch / 2,
		ViolatingFraction: float64(viol) / float64(gs*shift.NY),
	}
}
