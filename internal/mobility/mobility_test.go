package mobility

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/field"
)

func TestStandardCoefficientsSigns(t *testing.T) {
	n := StandardCoefficients(NMOS)
	p := StandardCoefficients(PMOS)
	// Electrons: longitudinal tension (σxx > 0) improves mobility
	// (π_L < 0 ⇒ Δµ/µ = −π_L·σ > 0).
	if n.PiL >= 0 {
		t.Error("NMOS longitudinal coefficient should be negative")
	}
	// Holes: longitudinal tension degrades mobility.
	if p.PiL <= 0 {
		t.Error("PMOS longitudinal coefficient should be positive")
	}
	if NMOS.String() != "NMOS" || PMOS.String() != "PMOS" {
		t.Error("String() wrong")
	}
}

func TestShiftUniaxial(t *testing.T) {
	c := StandardCoefficients(NMOS)
	// 100 MPa longitudinal tension: Δµ/µ = −π_L·100 = +3.16%.
	got := c.Shift([6]float64{100, 0, 0, 0, 0, 0})
	want := 31.6e-11 * 1e6 * 100
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("shift %g, want %g", got, want)
	}
}

func TestShiftYSwapsAxes(t *testing.T) {
	c := StandardCoefficients(PMOS)
	s := [6]float64{50, -80, 30, 1, 2, 3}
	swapped := [6]float64{-80, 50, 30, 1, 2, 3}
	if math.Abs(c.ShiftY(s)-c.Shift(swapped)) > 1e-15 {
		t.Error("ShiftY is not the axis swap of Shift")
	}
}

func TestWorstShiftDominates(t *testing.T) {
	f := func(a, b, c, d, e, g float64) bool {
		bound := func(x float64) float64 { return math.Mod(x, 1e3) }
		s := [6]float64{bound(a), bound(b), bound(c), bound(d), bound(e), bound(g)}
		co := StandardCoefficients(PMOS)
		w := co.WorstShift(s)
		return math.Abs(w) >= math.Abs(co.Shift(s))-1e-12 &&
			math.Abs(w) >= math.Abs(co.ShiftY(s))-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestShiftField(t *testing.T) {
	co := StandardCoefficients(NMOS)
	fieldGrid := ShiftField(3, 2, co, func(ix, iy int) [6]float64 {
		return [6]float64{float64(100 * ix), 0, 0, 0, 0, 0}
	})
	if fieldGrid.NX != 3 || fieldGrid.NY != 2 {
		t.Fatal("field shape wrong")
	}
	if fieldGrid.At(0, 0) != 0 {
		t.Error("zero stress should give zero shift")
	}
	if fieldGrid.At(2, 0) <= fieldGrid.At(1, 0) {
		t.Error("shift should grow with stress")
	}
}

func TestKOZGeometry(t *testing.T) {
	const gs = 50
	const pitch = 15.0
	// Synthetic shift field: |Δµ/µ| = 0.2·exp(−r/2) around the center.
	f := field.New(gs, gs)
	for iy := 0; iy < gs; iy++ {
		y := (float64(iy) + 0.5) * pitch / gs
		for ix := 0; ix < gs; ix++ {
			x := (float64(ix) + 0.5) * pitch / gs
			r := math.Hypot(x-pitch/2, y-pitch/2)
			f.Set(ix, iy, 0.2*math.Exp(-r/2))
		}
	}
	res := KOZ(f, pitch, 0.05)
	// Analytic radius: 0.2·exp(−r/2) = 0.05 ⇒ r = 2·ln 4 ≈ 2.77 µm.
	want := 2 * math.Log(4)
	if math.Abs(res.Radius-want) > 0.5 {
		t.Errorf("KOZ radius %.2f, want ≈ %.2f", res.Radius, want)
	}
	if res.ViolatingFraction <= 0 || res.ViolatingFraction >= 1 {
		t.Errorf("violating fraction %g out of range", res.ViolatingFraction)
	}
	if res.Extent != math.Sqrt2*pitch/2 {
		t.Errorf("extent %g", res.Extent)
	}

	// A stricter threshold must not shrink the radius.
	res2 := KOZ(f, pitch, 0.01)
	if res2.Radius < res.Radius {
		t.Errorf("stricter threshold shrank KOZ: %g < %g", res2.Radius, res.Radius)
	}
	// Threshold above the peak: empty KOZ.
	res3 := KOZ(f, pitch, 1)
	if res3.Radius != 0 || res3.ViolatingFraction != 0 {
		t.Errorf("expected empty KOZ, got %+v", res3)
	}
}
