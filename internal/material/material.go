// Package material defines linear thermoelastic material records and the
// stock material library used in TSV thermal-stress simulation.
//
// All quantities are in a consistent µm/MPa system: lengths in micrometres,
// Young's modulus in MPa, temperatures in °C, thermal expansion in 1/°C.
// Stress results are therefore in MPa directly.
package material

import (
	"errors"
	"fmt"
)

// Material is an isotropic linear thermoelastic material.
type Material struct {
	Name string
	// E is Young's modulus in MPa.
	E float64
	// Nu is Poisson's ratio (dimensionless, in (-1, 0.5)).
	Nu float64
	// CTE is the coefficient of thermal expansion in 1/°C.
	CTE float64
}

// Lame returns the Lamé parameters (λ, µ) of the material per Eq. 2 of the
// paper: λ = Eν/((1+ν)(1−2ν)), µ = E/(2(1+ν)).
func (m Material) Lame() (lambda, mu float64) {
	lambda = m.E * m.Nu / (1 + m.Nu) / (1 - 2*m.Nu)
	mu = m.E / 2 / (1 + m.Nu)
	return lambda, mu
}

// ThermalStressCoeff returns α(3λ+2µ), the isotropic thermal stress
// coefficient multiplying ΔT in the constitutive law (Eq. 1).
func (m Material) ThermalStressCoeff() float64 {
	lambda, mu := m.Lame()
	return m.CTE * (3*lambda + 2*mu)
}

// Validate reports whether the material parameters are physically admissible.
func (m Material) Validate() error {
	if m.E <= 0 {
		return fmt.Errorf("material %q: Young's modulus must be positive, got %g", m.Name, m.E)
	}
	if m.Nu <= -1 || m.Nu >= 0.5 {
		return fmt.Errorf("material %q: Poisson's ratio must lie in (-1, 0.5), got %g", m.Name, m.Nu)
	}
	return nil
}

// String implements fmt.Stringer.
func (m Material) String() string {
	return fmt.Sprintf("%s{E=%g MPa, nu=%g, cte=%g/°C}", m.Name, m.E, m.Nu, m.CTE)
}

// Stock materials. Values follow the TSV reliability literature used by the
// paper (Jung et al. DAC'12, Li & Pan DAC'13): copper via, silicon substrate,
// SiO2 liner, and an organic composite package substrate for the chiplet
// model.
var (
	// Copper: E = 111.5 GPa, ν = 0.343, α = 17.7 ppm/°C.
	Copper = Material{Name: "Cu", E: 111.5e3, Nu: 0.343, CTE: 17.7e-6}
	// Silicon: E = 130 GPa, ν = 0.28, α = 2.3 ppm/°C.
	Silicon = Material{Name: "Si", E: 130.0e3, Nu: 0.28, CTE: 2.3e-6}
	// SiO2 liner: E = 71.7 GPa, ν = 0.16, α = 0.51 ppm/°C.
	SiO2 = Material{Name: "SiO2", E: 71.7e3, Nu: 0.16, CTE: 0.51e-6}
	// Organic composite substrate (FR4-class): E = 22 GPa, ν = 0.28,
	// α = 18 ppm/°C.
	Composite = Material{Name: "composite", E: 22.0e3, Nu: 0.28, CTE: 18.0e-6}
)

// ErrUnknown is returned by Lookup for unrecognized material names.
var ErrUnknown = errors.New("material: unknown material")

// Lookup returns a stock material by name ("Cu", "Si", "SiO2", "composite").
func Lookup(name string) (Material, error) {
	switch name {
	case "Cu":
		return Copper, nil
	case "Si":
		return Silicon, nil
	case "SiO2":
		return SiO2, nil
	case "composite":
		return Composite, nil
	}
	return Material{}, fmt.Errorf("%w: %q", ErrUnknown, name)
}

// TSVSet groups the three materials of a TSV unit cell.
type TSVSet struct {
	Via   Material // copper body
	Liner Material // dielectric liner
	Bulk  Material // silicon substrate
}

// DefaultTSVSet returns the Cu/SiO2/Si set used throughout the paper.
func DefaultTSVSet() TSVSet {
	return TSVSet{Via: Copper, Liner: SiO2, Bulk: Silicon}
}

// Validate validates all three materials.
func (s TSVSet) Validate() error {
	for _, m := range []Material{s.Via, s.Liner, s.Bulk} {
		if err := m.Validate(); err != nil {
			return err
		}
	}
	return nil
}
