package material

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestLameRoundTrip(t *testing.T) {
	// λ and µ must reproduce E and ν through the standard inversions
	// E = µ(3λ+2µ)/(λ+µ), ν = λ/(2(λ+µ)).
	for _, m := range []Material{Copper, Silicon, SiO2, Composite} {
		lambda, mu := m.Lame()
		e := mu * (3*lambda + 2*mu) / (lambda + mu)
		nu := lambda / (2 * (lambda + mu))
		if math.Abs(e-m.E)/m.E > 1e-12 {
			t.Errorf("%s: E round trip %g != %g", m.Name, e, m.E)
		}
		if math.Abs(nu-m.Nu) > 1e-12 {
			t.Errorf("%s: nu round trip %g != %g", m.Name, nu, m.Nu)
		}
	}
}

func TestLamePositivity(t *testing.T) {
	// Property: any admissible (E, ν) yields µ > 0 and bulk modulus > 0.
	f := func(e, nu float64) bool {
		e = 1 + math.Abs(e) // > 0
		nu = math.Mod(math.Abs(nu), 0.49)
		m := Material{E: e, Nu: nu}
		lambda, mu := m.Lame()
		bulk := lambda + 2*mu/3
		return mu > 0 && bulk > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThermalStressCoeff(t *testing.T) {
	// For copper: α(3λ+2µ) must match the closed form αE/(1−2ν).
	for _, m := range []Material{Copper, Silicon, SiO2} {
		want := m.CTE * m.E / (1 - 2*m.Nu)
		got := m.ThermalStressCoeff()
		if math.Abs(got-want)/want > 1e-12 {
			t.Errorf("%s: thermal stress coeff %g, want %g", m.Name, got, want)
		}
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		m  Material
		ok bool
	}{
		{Copper, true},
		{Material{Name: "badE", E: 0, Nu: 0.3}, false},
		{Material{Name: "badNu", E: 1, Nu: 0.5}, false},
		{Material{Name: "badNuLow", E: 1, Nu: -1}, false},
		{Material{Name: "ok", E: 1, Nu: 0}, true},
	}
	for _, c := range cases {
		err := c.m.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.m.Name, err, c.ok)
		}
	}
}

func TestLookup(t *testing.T) {
	for _, name := range []string{"Cu", "Si", "SiO2", "composite"} {
		m, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if m.E <= 0 {
			t.Errorf("Lookup(%q) returned invalid material", name)
		}
	}
	if _, err := Lookup("adamantium"); !errors.Is(err, ErrUnknown) {
		t.Errorf("Lookup unknown: got %v, want ErrUnknown", err)
	}
}

func TestDefaultTSVSet(t *testing.T) {
	s := DefaultTSVSet()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Via.Name != "Cu" || s.Bulk.Name != "Si" || s.Liner.Name != "SiO2" {
		t.Errorf("unexpected default set: %+v", s)
	}
	// The CTE mismatch driving TSV stress: copper expands much more than
	// silicon.
	if s.Via.CTE <= s.Bulk.CTE {
		t.Error("expected CTE(Cu) > CTE(Si)")
	}
}

func TestString(t *testing.T) {
	if s := Copper.String(); s == "" {
		t.Error("empty String()")
	}
}
