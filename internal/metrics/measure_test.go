package metrics

import (
	"testing"
	"time"
)

func TestMeasureElapsed(t *testing.T) {
	m := Measure(func() { time.Sleep(30 * time.Millisecond) })
	if m.Elapsed < 25*time.Millisecond {
		t.Errorf("elapsed %v, want >= 25ms", m.Elapsed)
	}
}

func TestMeasureAllocations(t *testing.T) {
	var sink []byte
	m := Measure(func() {
		sink = make([]byte, 64<<20)
		for i := range sink {
			sink[i] = byte(i)
		}
		time.Sleep(30 * time.Millisecond) // let the sampler observe the peak
	})
	_ = sink
	if m.AllocBytes < 64<<20 {
		t.Errorf("alloc bytes %d, want >= 64MiB", m.AllocBytes)
	}
	if m.PeakHeapBytes < 32<<20 {
		t.Errorf("peak heap %d, want >= 32MiB", m.PeakHeapBytes)
	}
}

func TestMB(t *testing.T) {
	if MB(1<<20) != 1 {
		t.Errorf("MB(1MiB) = %g", MB(1<<20))
	}
}
