// Package metrics provides the runtime and memory instrumentation used by
// the benchmark harness to reproduce the paper's time/memory comparison
// columns.
package metrics

import (
	"runtime"
	"sync"
	"time"
)

// Measurement records the cost of one measured run.
type Measurement struct {
	// Elapsed is the wall-clock duration.
	Elapsed time.Duration
	// PeakHeapBytes is the maximum live-heap growth observed during the run
	// (sampled), mirroring the paper's "maximum memory usage during
	// computation".
	PeakHeapBytes int64
	// AllocBytes is the total allocation volume of the run.
	AllocBytes int64
}

// Measure runs fn while sampling the heap, returning elapsed time and
// observed peak heap growth. A GC is forced before the run so the baseline
// excludes garbage from earlier phases.
//
//stressvet:gang -- one heap-peak sampling goroutine, joined before Measure returns
func Measure(fn func()) Measurement {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := int64(ms.HeapAlloc)
	baseTotal := int64(ms.TotalAlloc)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var peak int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(10 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				var s runtime.MemStats
				runtime.ReadMemStats(&s)
				if g := int64(s.HeapAlloc) - base; g > peak {
					peak = g
				}
			}
		}
	}()

	start := time.Now()
	fn()
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	runtime.ReadMemStats(&ms)
	if g := int64(ms.HeapAlloc) - base; g > peak {
		peak = g
	}
	if peak < 0 {
		peak = 0
	}
	return Measurement{
		Elapsed:       elapsed,
		PeakHeapBytes: peak,
		AllocBytes:    int64(ms.TotalAlloc) - baseTotal,
	}
}

// MB formats bytes as mebibytes.
func MB(b int64) float64 { return float64(b) / (1 << 20) }
