// Package lagrange implements the boundary interpolation of the MORE-Stress
// local stage: equally spaced Lagrange interpolation nodes on the surface of
// the unit block (Fig. 3(c)), the tensor-product 3-D basis (Eqs. 8–9), and
// the canonical enumeration of surface nodes whose displacement components
// are the element DoFs (Eq. 16).
package lagrange

import "fmt"

// Nodes1D returns n equally spaced coordinates spanning [0, l] (n ≥ 2).
func Nodes1D(n int, l float64) []float64 {
	if n < 2 {
		panic(fmt.Sprintf("lagrange: need at least 2 nodes per axis, got %d", n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = l * float64(i) / float64(n-1)
	}
	return out
}

// Basis1D evaluates all 1-D Lagrange basis polynomials (Eq. 9) on the given
// nodes at x, returning one value per node. The basis is a partition of
// unity and satisfies L_i(x_j) = δ_ij.
func Basis1D(nodes []float64, x float64) []float64 {
	n := len(nodes)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		v := 1.0
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			v *= (x - nodes[j]) / (nodes[i] - nodes[j])
		}
		out[i] = v
	}
	return out
}

// SurfaceNodes enumerates the Lagrange interpolation nodes on the surface of
// a unit block with per-axis node counts (Nx, Ny, Nz) and dimensions
// (Lx, Ly, Lz). Interior lattice points are excluded; the remaining nodes
// are ordered lexicographically by (i, j, k) with k fastest, matching the
// DoF order u_(0,0,0),x … u_(nx−1,ny−1,nz−1),z of Eq. 14.
type SurfaceNodes struct {
	Nx, Ny, Nz int
	Lx, Ly, Lz float64
	Xs, Ys, Zs []float64 // per-axis node coordinates
	// IJK lists surface node lattice triples in canonical order.
	IJK [][3]int
	// lookup maps a lattice triple to its position in IJK (-1 = interior).
	lookup map[[3]int]int
}

// NewSurfaceNodes builds the surface node set. Each axis needs ≥ 2 nodes.
func NewSurfaceNodes(nx, ny, nz int, lx, ly, lz float64) *SurfaceNodes {
	s := &SurfaceNodes{
		Nx: nx, Ny: ny, Nz: nz,
		Lx: lx, Ly: ly, Lz: lz,
		Xs: Nodes1D(nx, lx), Ys: Nodes1D(ny, ly), Zs: Nodes1D(nz, lz),
		lookup: make(map[[3]int]int),
	}
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				if i > 0 && i < nx-1 && j > 0 && j < ny-1 && k > 0 && k < nz-1 {
					continue // interior
				}
				s.lookup[[3]int{i, j, k}] = len(s.IJK)
				s.IJK = append(s.IJK, [3]int{i, j, k})
			}
		}
	}
	return s
}

// Count returns the number of surface nodes:
// nx·ny·nz − (nx−2)(ny−2)(nz−2).
func (s *SurfaceNodes) Count() int { return len(s.IJK) }

// NumDoFs returns n of Eq. 16: 3 displacement components per surface node.
func (s *SurfaceNodes) NumDoFs() int { return 3 * s.Count() }

// Position returns the physical coordinates of surface node idx.
func (s *SurfaceNodes) Position(idx int) (x, y, z float64) {
	t := s.IJK[idx]
	return s.Xs[t[0]], s.Ys[t[1]], s.Zs[t[2]]
}

// Index returns the canonical index of lattice triple (i, j, k), or -1 if
// the triple is interior (not a surface node).
func (s *SurfaceNodes) Index(i, j, k int) int {
	if v, ok := s.lookup[[3]int{i, j, k}]; ok {
		return v
	}
	return -1
}

// EvalAll evaluates the 3-D Lagrange basis L3D (Eq. 8) of every surface node
// at point (x, y, z), in canonical order. On the block boundary the
// omitted interior-node bases vanish identically, so this is exactly the
// boundary interpolation operator of Eq. 10.
func (s *SurfaceNodes) EvalAll(x, y, z float64) []float64 {
	bx := Basis1D(s.Xs, x)
	by := Basis1D(s.Ys, y)
	bz := Basis1D(s.Zs, z)
	out := make([]float64, s.Count())
	for idx, t := range s.IJK {
		out[idx] = bx[t[0]] * by[t[1]] * bz[t[2]]
	}
	return out
}

// Eval evaluates the basis of a single surface node at (x, y, z).
func (s *SurfaceNodes) Eval(idx int, x, y, z float64) float64 {
	t := s.IJK[idx]
	return Basis1D(s.Xs, x)[t[0]] * Basis1D(s.Ys, y)[t[1]] * Basis1D(s.Zs, z)[t[2]]
}

// DoFCount replicates Eq. 16 symbolically for validation:
// n = {nx·ny·nz − (nx−2)(ny−2)(nz−2)}·3.
func DoFCount(nx, ny, nz int) int {
	inner := 0
	if nx > 2 && ny > 2 && nz > 2 {
		inner = (nx - 2) * (ny - 2) * (nz - 2)
	}
	return 3 * (nx*ny*nz - inner)
}
