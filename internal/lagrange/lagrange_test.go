package lagrange

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNodes1D(t *testing.T) {
	n := Nodes1D(4, 15)
	want := []float64{0, 5, 10, 15}
	for i := range want {
		if math.Abs(n[i]-want[i]) > 1e-12 {
			t.Errorf("node %d = %g, want %g", i, n[i], want[i])
		}
	}
}

func TestBasis1DKroneckerDelta(t *testing.T) {
	nodes := Nodes1D(5, 10)
	for i, x := range nodes {
		b := Basis1D(nodes, x)
		for j := range b {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(b[j]-want) > 1e-12 {
				t.Fatalf("L_%d(x_%d) = %g", j, i, b[j])
			}
		}
	}
}

func TestBasis1DPartitionOfUnity(t *testing.T) {
	nodes := Nodes1D(6, 50)
	f := func(x float64) bool {
		x = math.Mod(math.Abs(x), 50)
		b := Basis1D(nodes, x)
		var s float64
		for _, v := range b {
			s += v
		}
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBasis1DPolynomialExactness(t *testing.T) {
	// n nodes reproduce polynomials up to degree n−1 exactly.
	nodes := Nodes1D(4, 1)
	poly := func(x float64) float64 { return 2 + 3*x - x*x + 0.5*x*x*x }
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		x := rng.Float64()
		b := Basis1D(nodes, x)
		var got float64
		for i, v := range b {
			got += v * poly(nodes[i])
		}
		if math.Abs(got-poly(x)) > 1e-10 {
			t.Fatalf("interpolation of cubic at %g: %g vs %g", x, got, poly(x))
		}
	}
}

func TestDoFCountMatchesPaper(t *testing.T) {
	// Table 3 of the paper: n for (2,2,2)…(6,6,6).
	want := map[int]int{2: 24, 3: 78, 4: 168, 5: 294, 6: 456}
	for k, n := range want {
		if got := DoFCount(k, k, k); got != n {
			t.Errorf("DoFCount(%d) = %d, want %d", k, got, n)
		}
		s := NewSurfaceNodes(k, k, k, 15, 15, 50)
		if s.NumDoFs() != n {
			t.Errorf("SurfaceNodes(%d).NumDoFs = %d, want %d", k, s.NumDoFs(), n)
		}
	}
}

func TestSurfaceNodesExcludeInterior(t *testing.T) {
	s := NewSurfaceNodes(4, 4, 4, 1, 1, 1)
	for _, ijk := range s.IJK {
		interior := ijk[0] > 0 && ijk[0] < 3 && ijk[1] > 0 && ijk[1] < 3 && ijk[2] > 0 && ijk[2] < 3
		if interior {
			t.Fatalf("interior node %v enumerated", ijk)
		}
	}
	if s.Index(1, 1, 1) != -1 {
		t.Error("interior lookup should be -1")
	}
	if s.Index(0, 1, 1) < 0 {
		t.Error("face node lookup failed")
	}
}

func TestSurfaceIndexRoundTrip(t *testing.T) {
	s := NewSurfaceNodes(5, 4, 3, 2, 2, 2)
	for idx, ijk := range s.IJK {
		if s.Index(ijk[0], ijk[1], ijk[2]) != idx {
			t.Fatalf("round trip failed at %v", ijk)
		}
	}
}

func TestEvalAllPartitionOfUnityOnBoundary(t *testing.T) {
	// On the block surface, the surface-node bases sum to 1 (the interior
	// bases vanish there), making Eq. 10 a consistent interpolation.
	s := NewSurfaceNodes(4, 4, 4, 15, 15, 50)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		// Random point on a random face.
		x, y, z := rng.Float64()*15, rng.Float64()*15, rng.Float64()*50
		switch rng.Intn(6) {
		case 0:
			x = 0
		case 1:
			x = 15
		case 2:
			y = 0
		case 3:
			y = 15
		case 4:
			z = 0
		case 5:
			z = 50
		}
		b := s.EvalAll(x, y, z)
		var sum float64
		for _, v := range b {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("partition of unity on boundary failed at (%g,%g,%g): %g", x, y, z, sum)
		}
	}
}

func TestEvalAllKroneckerAtNodes(t *testing.T) {
	s := NewSurfaceNodes(4, 3, 4, 10, 10, 40)
	for idx := range s.IJK {
		x, y, z := s.Position(idx)
		b := s.EvalAll(x, y, z)
		for j, v := range b {
			want := 0.0
			if j == idx {
				want = 1
			}
			if math.Abs(v-want) > 1e-10 {
				t.Fatalf("basis %d at node %d = %g", j, idx, v)
			}
		}
	}
}

func TestEvalMatchesEvalAll(t *testing.T) {
	s := NewSurfaceNodes(3, 3, 3, 1, 1, 1)
	all := s.EvalAll(0.3, 0, 0.9)
	for idx := range s.IJK {
		if math.Abs(s.Eval(idx, 0.3, 0, 0.9)-all[idx]) > 1e-14 {
			t.Fatalf("Eval mismatch at %d", idx)
		}
	}
}

func TestInteriorBasesVanishOnBoundary(t *testing.T) {
	// The full tensor-product basis of an interior node must vanish on
	// every face — this is why only surface nodes carry DoFs.
	nx, ny, nz := 4, 4, 4
	xs, ys, zs := Nodes1D(nx, 1), Nodes1D(ny, 1), Nodes1D(nz, 1)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		x, y, z := rng.Float64(), rng.Float64(), rng.Float64()
		switch rng.Intn(6) {
		case 0:
			x = 0
		case 1:
			x = 1
		case 2:
			y = 0
		case 3:
			y = 1
		case 4:
			z = 0
		case 5:
			z = 1
		}
		bx, by, bz := Basis1D(xs, x), Basis1D(ys, y), Basis1D(zs, z)
		// Interior node (1,1,1):
		v := bx[1] * by[1] * bz[1]
		if x == 0 || x == 1 || y == 0 || y == 1 || z == 0 || z == 1 {
			if math.Abs(v) > 1e-10 {
				t.Fatalf("interior basis nonzero on boundary: %g", v)
			}
		}
	}
}

func TestNodes1DPanicsOnTooFew(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n < 2")
		}
	}()
	Nodes1D(1, 1)
}
