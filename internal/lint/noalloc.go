package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc rejects allocating constructs in functions annotated
// //stressvet:noalloc — the solver hot paths whose zero-allocation steady
// state the runtime benchmarks pin (BenchmarkPCGNoAlloc) and the escape gate
// verifies against the compiler. Flagged constructs: make/new, slice, map,
// and address-taken composite literals, append (may grow), function literals
// (closures), go statements, fmt calls, string concatenation and
// string<->[]byte/[]rune conversions, variadic argument packing, and
// interface conversions of non-pointer-shaped values. Code under a
// panic(...) call is exempt: panic paths only fire on violated
// preconditions, where the allocation is irrelevant.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "reject allocating constructs in //stressvet:noalloc hot-path functions",
	Run:  runNoAlloc,
}

func runNoAlloc(p *Pass) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "noalloc") {
				continue
			}
			na := &noallocCheck{p: p, sig: funcSignature(p, fd)}
			ast.Inspect(fd.Body, na.visit)
		}
	}
}

// funcSignature returns the declared function's type signature (for checking
// return-statement boxing).
func funcSignature(p *Pass, fd *ast.FuncDecl) *types.Signature {
	if obj, ok := p.Info.Defs[fd.Name]; ok {
		if sig, ok := obj.Type().(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

type noallocCheck struct {
	p   *Pass
	sig *types.Signature
}

func (na *noallocCheck) visit(n ast.Node) bool {
	p := na.p
	switch n := n.(type) {
	case *ast.CallExpr:
		return na.call(n)
	case *ast.CompositeLit:
		switch p.Info.TypeOf(n).Underlying().(type) {
		case *types.Slice:
			p.Reportf(n.Pos(), "slice literal allocates")
		case *types.Map:
			p.Reportf(n.Pos(), "map literal allocates")
		}
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				p.Reportf(n.Pos(), "address-taken composite literal escapes to the heap")
			}
		}
	case *ast.FuncLit:
		p.Reportf(n.Pos(), "function literal allocates (closure); dispatch a preallocated op struct through the Runner interface instead")
		return false // the literal's body belongs to the closure, not this function
	case *ast.GoStmt:
		p.Reportf(n.Pos(), "go statement allocates a goroutine; use the resident sparse.Pool gang")
	case *ast.BinaryExpr:
		if n.Op == token.ADD && isString(p.Info.TypeOf(n.X)) {
			p.Reportf(n.Pos(), "string concatenation allocates")
		}
	case *ast.AssignStmt:
		// Boxing through assignment: iface = concrete.
		for i, lhs := range n.Lhs {
			if i >= len(n.Rhs) {
				break // x, y := f() — boxing through multi-value returns is out of scope
			}
			na.boxCheck(p.Info.TypeOf(lhs), n.Rhs[i])
		}
	case *ast.ReturnStmt:
		if na.sig == nil || na.sig.Results().Len() != len(n.Results) {
			break
		}
		for i, r := range n.Results {
			na.boxCheck(na.sig.Results().At(i).Type(), r)
		}
	}
	return true
}

// call inspects one call expression; the return value tells ast.Inspect
// whether to descend into the call's subtree.
func (na *noallocCheck) call(call *ast.CallExpr) bool {
	p := na.p
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := p.Info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				p.Reportf(call.Pos(), "make allocates; reuse a workspace-pooled buffer")
			case "new":
				p.Reportf(call.Pos(), "new allocates; reuse a workspace-pooled value")
			case "append":
				p.Reportf(call.Pos(), "append may grow (allocate) its backing array; preallocate to capacity outside the hot path")
			case "panic":
				// Cold path: a panic only fires on a violated precondition,
				// where the cost of its argument no longer matters.
				return false
			}
			return true
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := p.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				p.Reportf(call.Pos(), "fmt.%s allocates (formatting, interface boxing)", fun.Sel.Name)
				return false
			}
		}
	}
	tv, ok := p.Info.Types[call.Fun]
	if ok && tv.IsType() {
		// Conversion, not a call.
		dst := tv.Type
		src := p.Info.TypeOf(call.Args[0])
		if isString(dst) != isString(src) && (isByteOrRuneSlice(dst) || isByteOrRuneSlice(src) || isString(dst) || isString(src)) {
			if isByteOrRuneSlice(dst) || isByteOrRuneSlice(src) {
				p.Reportf(call.Pos(), "string <-> byte/rune slice conversion copies (allocates)")
			}
		}
		na.boxCheck(dst, call.Args[0])
		return true
	}
	sig, _ := p.Info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return true
	}
	// Boxing through parameters, and variadic packing.
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if sig.Variadic() && i >= np-1 && call.Ellipsis == token.NoPos {
			if i == np-1 {
				p.Reportf(call.Pos(), "variadic call packs its arguments into a new slice")
			}
		}
		na.boxCheck(pt, arg)
	}
	return true
}

// boxCheck reports expr when assigning it to dst converts a
// non-pointer-shaped concrete value to an interface — a conversion that
// heap-allocates the boxed copy.
func (na *noallocCheck) boxCheck(dst types.Type, expr ast.Expr) {
	p := na.p
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	src := p.Info.TypeOf(expr)
	if src == nil || types.IsInterface(src) {
		return
	}
	if b, ok := src.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: boxing stores the word itself
	}
	p.Reportf(expr.Pos(), "interface conversion boxes a %s value (heap-allocates); pass a pointer", src)
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
