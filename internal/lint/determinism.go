package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// KernelPackages are the import paths whose numerical results must be
// bitwise reproducible across runs and worker counts (the contract pinned by
// TestIC0PermutedBitwiseAcrossDispatch and friends). The determinism
// analyzer only runs inside them.
var KernelPackages = []string{
	"repro/internal/sparse",
	"repro/internal/solver",
	"repro/internal/array",
	"repro/internal/fem",
}

// Determinism flags order-dependent computation in kernel packages:
// map-range loops whose bodies accumulate into outer variables, write slice
// elements, append (unless the collected slice is subsequently sorted in the
// same function — the canonical sort-the-keys idiom), send on channels, or
// emit output; plus any non-test use of time.Now or math/rand, whose results
// differ run to run. Floating-point addition is not associative, so even a
// "harmless" map-order accumulation changes low-order bits between runs.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag map-iteration-order-dependent computation and wall-clock/randomness in kernel packages",
	Run:  runDeterminism,
}

func runDeterminism(p *Pass) {
	kernel := false
	for _, kp := range KernelPackages {
		if p.Path == kp {
			kernel = true
			break
		}
	}
	if !kernel {
		return
	}
	for _, f := range p.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkNondetSource(p, n)
			case *ast.RangeStmt:
				if t := p.Info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						checkMapRange(p, f, n)
					}
				}
			}
			return true
		})
	}
}

// checkNondetSource flags time.Now and any use of math/rand.
func checkNondetSource(p *Pass, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch path := pn.Imported().Path(); {
	case path == "time" && sel.Sel.Name == "Now":
		p.Reportf(sel.Pos(), "time.Now in a kernel package: wall-clock input breaks run-to-run reproducibility")
	case path == "math/rand" || path == "math/rand/v2":
		p.Reportf(sel.Pos(), "%s.%s in a kernel package: randomness breaks run-to-run reproducibility", path, sel.Sel.Name)
	}
}

// checkMapRange examines one map-range statement's body for order-dependent
// effects.
func checkMapRange(p *Pass, file *ast.File, rng *ast.RangeStmt) {
	// The loop variables: writes derived from them are order-dependent.
	loopVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := p.Info.Defs[id]; obj != nil {
				loopVars[obj] = true
			} else if obj := p.Info.Uses[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	outer := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := p.Info.Uses[id]
		if obj == nil || loopVars[obj] {
			return nil
		}
		if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
			return nil // declared inside the loop: scoped per iteration
		}
		return obj
	}
	usesLoopVar := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && loopVars[p.Info.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				lhs := ast.Unparen(lhs)
				if idx, ok := lhs.(*ast.IndexExpr); ok {
					switch p.Info.TypeOf(idx.X).Underlying().(type) {
					case *types.Slice, *types.Array, *types.Pointer:
						p.Reportf(n.Pos(), "slice element written inside a map range: element order depends on map iteration")
					}
					continue
				}
				if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
					// += and friends accumulate in iteration order. Integer
					// accumulation commutes (like the ++ case below); float
					// and string accumulation does not.
					if obj := outer(lhs); obj != nil && !isIntegerType(obj.Type()) {
						p.Reportf(n.Pos(), "accumulation into %s inside a map range is iteration-order-dependent (FP addition is not associative); iterate sorted keys", obj.Name())
					}
					continue
				}
				if n.Tok == token.ASSIGN && i < len(n.Rhs) {
					if obj := outer(lhs); obj != nil && usesLoopVar(n.Rhs[i]) {
						if isAppendOf(p, n.Rhs[i]) {
							if !sortedLater(p, file, rng, obj) {
								p.Reportf(n.Pos(), "append inside a map range without a later sort of %s: result order depends on map iteration", obj.Name())
							}
							continue
						}
						p.Reportf(n.Pos(), "last-writer assignment to %s inside a map range is iteration-order-dependent", obj.Name())
					}
				}
			}
		case *ast.IncDecStmt:
			if obj := outer(n.X); obj != nil {
				// Integer ++/-- is order-independent; only flag floats.
				if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
					p.Reportf(n.Pos(), "float accumulation into %s inside a map range is iteration-order-dependent", obj.Name())
				}
			}

		case *ast.SendStmt:
			p.Reportf(n.Pos(), "channel send inside a map range delivers in map iteration order")
		case *ast.CallExpr:
			if isOutputCall(p, n) {
				p.Reportf(n.Pos(), "output emitted inside a map range appears in map iteration order; iterate sorted keys")
			}
		}
		return true
	})
}

// isIntegerType reports whether t's underlying type is an integer basic
// type, whose accumulation is order-independent.
func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isAppendOf reports whether e is a call to the append builtin.
func isAppendOf(p *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedLater reports whether, after the range statement, the enclosing file
// sorts the collected slice: a call mentioning obj whose callee lives in
// package sort or slices, or whose name contains "Sort". This whitelists the
// canonical collect-keys-then-sort idiom without letting an unsorted collect
// through.
func sortedLater(p *Pass, file *ast.File, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return !found
		}
		mentions := false
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && p.Info.Uses[id] == obj {
					mentions = true
				}
				return !mentions
			})
		}
		if !mentions {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			if id, ok := fun.X.(*ast.Ident); ok {
				if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
					if path := pn.Imported().Path(); path == "sort" || path == "slices" {
						found = true
					}
				}
			}
			if strings.Contains(fun.Sel.Name, "Sort") {
				found = true
			}
		case *ast.Ident:
			if strings.Contains(fun.Name, "Sort") {
				found = true
			}
		}
		return !found
	})
	return found
}

// isOutputCall matches fmt output/formatting calls and the print builtins.
func isOutputCall(p *Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		b, ok := p.Info.Uses[fun].(*types.Builtin)
		return ok && (b.Name() == "print" || b.Name() == "println")
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		pn, ok := p.Info.Uses[id].(*types.PkgName)
		return ok && pn.Imported().Path() == "fmt"
	}
	return false
}
