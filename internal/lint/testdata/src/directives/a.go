// Package directives exercises the driver's allow-comment hygiene: a
// justified allow suppresses, an unjustified one does not and is itself
// reported. Checked by TestUnjustifiedAllow rather than want comments,
// because the surviving finding and the directive report land on one line.
package directives

//stressvet:noalloc
func hotJustified() []int {
	return make([]int, 4) //stressvet:allow noalloc -- fixture: suppression must hold
}

//stressvet:noalloc
func hotUnjustified() []int {
	//stressvet:allow noalloc
	return make([]int, 4)
}
