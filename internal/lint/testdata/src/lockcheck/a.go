// Package lockcheck fixtures.
package lockcheck

import "sync"

type cache struct {
	mu sync.Mutex
	// guarded by mu
	entries map[string]int
	bytes   int64 // guarded by mu
	hits    int64 // unguarded: no annotation
}

func newCache() *cache {
	c := &cache{}
	c.entries = make(map[string]int) // local constructor value: allowed
	return c
}

func (c *cache) goodGet(k string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[k] // lock held: allowed
	return v, ok
}

func (c *cache) badGet(k string) int {
	return c.entries[k] // want "cache.entries is guarded by cache.mu"
}

func (c *cache) badPut(k string, v int) {
	c.entries[k] = v // want "cache.entries is guarded by cache.mu"
	c.bytes++        // want "cache.bytes is guarded by cache.mu"
	c.hits++         // unguarded field: allowed
}

func (c *cache) sizeLocked() int {
	return len(c.entries) // *Locked convention: caller holds the lock
}

func (c *cache) copyByValue() cache { // want "cache returned by value copies its mu mutex"
	c.mu.Lock()
	defer c.mu.Unlock()
	return *c
}

func (c *cache) derefCopy() {
	c.mu.Lock()
	defer c.mu.Unlock()
	snapshot := *c // want "assignment copies cache by value"
	_ = snapshot
}

func useByValue(c cache) { // want "cache passed by value copies its mu mutex"
	_ = c
}

type rwcache struct {
	mu sync.RWMutex
	// guarded by mu
	m map[string]int
}

func (c *rwcache) readOK(k string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m[k] // RLock counts as held
}

func (c *rwcache) readBad(k string) int {
	return c.m[k] // want "rwcache.m is guarded by rwcache.mu"
}

func (c *cache) allowedUnlocked() int {
	return int(c.bytes) //stressvet:allow lockcheck -- racy stats read is advisory only
}
