// Package noalloc fixtures: each violation class and each allowed pattern.
package noalloc

import "fmt"

type runner interface{ RunRange(lo, hi int) }

type op struct{ dst []float64 }

func (o *op) RunRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		o.dst[i] = 0
	}
}

type scratch struct {
	buf   []float64
	items []int
}

//stressvet:noalloc
func hotMake(n int) {
	_ = make([]float64, n) // want "make allocates"
	_ = new(scratch)       // want "new allocates"
}

//stressvet:noalloc
func hotLiterals(n int) {
	_ = []float64{1, 2} // want "slice literal allocates"
	_ = map[int]int{}   // want "map literal allocates"
	_ = &scratch{}      // want "address-taken composite literal"
	v := scratch{}      // plain struct literal into a local: stack, allowed
	v.buf = nil
	_ = v
}

//stressvet:noalloc
func hotAppend(s *scratch, x int) {
	s.items = append(s.items, x) // want "append may grow"
}

//stressvet:noalloc
func hotClosure(dst []float64) {
	f := func(i int) { dst[i] = 0 } // want "function literal allocates"
	f(0)
	go forbiddenSpawn() // want "go statement allocates a goroutine"
}

func forbiddenSpawn() {}

//stressvet:noalloc
func hotFmt(x float64) {
	fmt.Println(x) // want "fmt.Println allocates"
}

//stressvet:noalloc
func hotStrings(a, b string, bs []byte) {
	_ = a + b      // want "string concatenation allocates"
	_ = string(bs) // want "conversion copies"
	_ = []byte(a)  // want "conversion copies"
}

//stressvet:noalloc
func hotBoxing(v scratch, p *scratch) {
	var i interface{}
	i = v // want "interface conversion boxes"
	i = p // pointer: boxing stores the word, allowed
	_ = i
	sink(v) // want "interface conversion boxes"
	sink(p)
	variadicSink(1, 2) // want "variadic call packs" "interface conversion boxes" "interface conversion boxes"
}

func sink(x interface{}) { _ = x }

func variadicSink(xs ...interface{}) { _ = xs }

//stressvet:noalloc
func hotClean(t *op, dst, b []float64, r int) float64 {
	// The real hot-path shapes: gathers, stores, interface dispatch of a
	// preallocated op pointer, panics on violated preconditions.
	if len(dst) != len(b) {
		panic(fmt.Sprintf("length mismatch %d != %d", len(dst), len(b)))
	}
	var s float64
	for p := 0; p < r; p++ {
		s += b[p] * dst[p]
	}
	var ru runner = t // pointer into interface: allowed
	ru.RunRange(0, r)
	return s
}

//stressvet:noalloc
func hotAllowed(n int) {
	_ = make([]float64, n) //stressvet:allow noalloc -- cold fallback path, measured free
	//stressvet:allow noalloc -- next-line form, justified
	_ = make([]float64, n)
}

func coldUnannotated() []float64 {
	return make([]float64, 8) // unannotated functions may allocate freely
}
