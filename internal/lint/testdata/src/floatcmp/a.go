// Package floatcmp fixtures.
package floatcmp

import "math"

const eps = 1e-12

const zeroF = 0.0

func bad(a, b float64) bool {
	if a == b { // want "floating-point == is exact"
		return true
	}
	return a != b // want "floating-point != is exact"
}

func badFloat32(a, b float32) bool {
	return a == b // want "floating-point == is exact"
}

func badComplex(a, b complex128) bool {
	return a == b // want "floating-point == is exact"
}

func zeroOK(a float64) bool {
	if a == 0 {
		return true
	}
	if 0.0 != a {
		return false
	}
	return a == zeroF // named zero constant is still literal zero
}

func toleranceOK(a, b float64) bool {
	return math.Abs(a-b) <= eps
}

func intsOK(a, b int) bool {
	return a == b
}

func allowedExact(a, b float64) bool {
	return a == b //stressvet:allow floatcmp -- exact bit-match is the contract under test
}
