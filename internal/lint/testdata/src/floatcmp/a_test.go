package floatcmp

// Test files are exempt: bitwise-identity assertions legitimately compare
// floats exactly.

func exactAssert(a, b float64) bool {
	return a == b
}
