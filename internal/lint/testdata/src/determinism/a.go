// Package determinism fixtures. The test loads this package under a kernel
// import path (repro/internal/sparse) so the path-scoped analyzer runs.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func mapAccumulate(weights map[string]float64) float64 {
	var sum float64
	for _, w := range weights {
		sum += w // want "accumulation into sum inside a map range"
	}
	return sum
}

func mapSliceWrite(m map[int]float64, out []float64) {
	i := 0
	for _, v := range m {
		out[i] = v // want "slice element written inside a map range"
		i++        // int counter: order-independent, allowed
	}
}

func mapLastWriter(m map[int]float64) float64 {
	var last float64
	for _, v := range m {
		last = v // want "last-writer assignment to last"
	}
	return last
}

func mapEmit(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "output emitted inside a map range"
	}
}

func mapSend(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want "channel send inside a map range"
	}
}

func mapAppendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append inside a map range without a later sort"
	}
	return keys
}

func mapAppendSorted(m map[string]int) []string {
	// The canonical fix idiom: collect, then sort.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapToMapCopy(src, dst map[string]int) {
	for k, v := range src {
		dst[k] = v // map-to-map copy is order-independent, allowed
	}
}

func mapCount(m map[string]int) int {
	n := 0
	for range m {
		n++ // integer increment commutes, allowed
	}
	return n
}

func mapIntSum(sizes map[string]int64) int64 {
	var total int64
	for _, s := range sizes {
		total += s // integer accumulation commutes, allowed
	}
	return total
}

func mapStringConcat(m map[string]string) string {
	var out string
	for _, v := range m {
		out += v // want "accumulation into out inside a map range"
	}
	return out
}

func wallClock() time.Duration {
	t0 := time.Now() // want "time.Now in a kernel package"
	return time.Since(t0)
}

func randomness() float64 {
	return rand.Float64() // want "math/rand.Float64 in a kernel package"
}

func allowedClock() int64 {
	t := time.Now() //stressvet:allow determinism -- wall clock feeds Stats timing only, never numerics
	return t.UnixNano()
}
