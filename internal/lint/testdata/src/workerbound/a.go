// Package workerbound fixtures.
package workerbound

import "sync"

func adHoc(work []func()) {
	var wg sync.WaitGroup
	for _, w := range work {
		wg.Add(1)
		go func() { // want "go statement outside an approved worker-pool primitive"
			defer wg.Done()
			w()
		}()
	}
	wg.Wait()
}

func fireAndForget(f func()) {
	go f() // want "go statement outside an approved worker-pool primitive"
}

//stressvet:gang -- fixed-size pool, one goroutine per configured worker
func approvedPool(workers int, run func(int)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			run(id)
		}(w)
	}
	wg.Wait()
}

//stressvet:gang -- bounded: spawns exactly one drain goroutine per queue
func approvedNested(drain func()) {
	start := func() {
		go drain() // inside a gang-annotated function, even via a closure
	}
	start()
}

func allowedOnce(f func()) {
	go f() //stressvet:allow workerbound -- one-shot background flush, bounded by construction
}
