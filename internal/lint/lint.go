// Package lint implements stressvet, the project's static-analysis suite:
// a set of analyzers that machine-check the invariants the performance core
// is built on — allocation-free hot paths, bitwise-deterministic kernels,
// mutex discipline on the byte-accounted caches, and bounded concurrency —
// on every build instead of only on the code paths the runtime tests happen
// to exercise.
//
// The package is self-contained on the standard library (go/ast, go/types,
// export data via `go list -export`), deliberately mirroring the
// golang.org/x/tools go/analysis idiom — Analyzer, Pass, Reportf, and
// analysistest-style `// want` fixtures under testdata/ — so the suite can
// be ported to a real multichecker wholesale if the x/tools dependency ever
// becomes available to the build environment.
//
// # Annotation grammar
//
// Three comment directives drive the suite (docs/STATIC_ANALYSIS.md has the
// full catalog):
//
//	//stressvet:noalloc
//	    On a function declaration: the function is an allocation-free hot
//	    path. The noalloc analyzer rejects allocating constructs in its
//	    body, and the escape gate (EscapeCheck) verifies the compiler
//	    agrees. Code under a panic(...) call is exempt (cold path).
//
//	//stressvet:gang -- <justification>
//	    On a function declaration: the function is an approved bounded
//	    worker-pool/gang primitive and may contain `go` statements. The
//	    workerbound analyzer flags every spawn outside one.
//
//	//stressvet:allow <analyzer> -- <justification>
//	    Suppresses the named analyzer's findings on the directive's own
//	    line and the line below it. The justification is mandatory: an
//	    allow without ` -- <why>` suppresses nothing and is itself
//	    reported.
//
//	// guarded by <field>
//	    On a struct field: the field may only be accessed while the
//	    struct's <field> mutex is held (lockcheck analyzer).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. Run inspects a single package and
// reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in findings, -disable flags, and
	// stressvet:allow directives.
	Name string
	// Doc is the one-line description shown by `stressvet -list`.
	Doc string
	// Run performs the analysis on one type-checked package.
	Run func(*Pass)
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed sources (comments included).
	Files []*ast.File
	// Pkg and Info carry the go/types results.
	Pkg  *types.Package
	Info *types.Info
	// Path is the import path the package was analyzed as. Fixture
	// packages may be loaded under an assumed path so path-scoped
	// analyzers (determinism) see them as kernel packages.
	Path string

	diags *[]Diagnostic
}

// Diagnostic is one raw finding, pre-suppression.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Finding is a resolved diagnostic with its position materialized.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// isTestFile reports whether pos lies in a *_test.go file.
func (p *Pass) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// directivePrefix opens every stressvet comment directive.
const directivePrefix = "//stressvet:"

// hasDirective reports whether the comment group carries the named stressvet
// directive (e.g. name "noalloc" matches "//stressvet:noalloc").
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		// The directive word ends at the first space or " -- " separator.
		word, _, _ := strings.Cut(text, " ")
		if word == name {
			return true
		}
	}
	return false
}

// allowSet records, per file line, the analyzers suppressed on that line by
// stressvet:allow directives.
type allowSet map[int]map[string]bool

// badDirective is a malformed stressvet comment found while collecting
// suppressions; the driver reports these as findings of the "stressvet"
// pseudo-analyzer so a typoed allow cannot silently disarm a check.
type badDirective struct {
	pos token.Pos
	msg string
}

// collectAllows parses the stressvet:allow directives of a file. An allow
// suppresses the named analyzer on the directive's own line (trailing
// comment) and the following line (own-line comment). The justification
// after " -- " is mandatory.
func collectAllows(fset *token.FileSet, f *ast.File) (allowSet, []badDirective) {
	allows := make(allowSet)
	var bad []badDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			word, rest, _ := strings.Cut(text, " ")
			if word != "allow" {
				continue
			}
			name, just, found := strings.Cut(rest, " -- ")
			name = strings.TrimSpace(name)
			if name == "" {
				bad = append(bad, badDirective{c.Pos(), "stressvet:allow names no analyzer"})
				continue
			}
			if !found || strings.TrimSpace(just) == "" {
				bad = append(bad, badDirective{c.Pos(), fmt.Sprintf("stressvet:allow %s has no ` -- <justification>`; the finding stays live", name)})
				continue
			}
			line := fset.Position(c.Pos()).Line
			for _, l := range []int{line, line + 1} {
				if allows[l] == nil {
					allows[l] = make(map[string]bool)
				}
				allows[l][name] = true
			}
		}
	}
	return allows, bad
}

// RunPackages runs the analyzers over the packages, applies the
// stressvet:allow suppressions, and returns the surviving findings sorted by
// position. Malformed directives surface as findings of the "stressvet"
// pseudo-analyzer.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			a.Run(&Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Path:     pkg.Path,
				diags:    &diags,
			})
		}
		// Suppressions are per file; index the allow sets by filename.
		allowsByFile := make(map[string]allowSet)
		for _, f := range pkg.Files {
			allows, bad := collectAllows(pkg.Fset, f)
			allowsByFile[pkg.Fset.Position(f.Pos()).Filename] = allows
			for _, b := range bad {
				out = append(out, Finding{Pos: pkg.Fset.Position(b.pos), Analyzer: "stressvet", Message: b.msg})
			}
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if allowsByFile[pos.Filename][pos.Line][d.Analyzer] {
				continue
			}
			out = append(out, Finding{Pos: pos, Analyzer: d.Analyzer, Message: d.Message})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// Analyzers returns the full stressvet suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{NoAlloc, Determinism, FloatCmp, LockCheck, WorkerBound}
}
