package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// modDir anchors `go list` for fixture imports: the repository root.
const modDir = "../.."

func TestNoAlloc(t *testing.T) {
	linttest.Run(t, modDir, lint.NoAlloc, "testdata/src/noalloc", "repro/fixtures/noalloc")
}

func TestDeterminism(t *testing.T) {
	// Loaded under a kernel import path so the path-scoped analyzer runs.
	linttest.Run(t, modDir, lint.Determinism, "testdata/src/determinism", "repro/internal/sparse")
}

func TestDeterminismSkipsNonKernelPackages(t *testing.T) {
	pkg, err := lint.LoadDir(modDir, "testdata/src/determinism", "repro/fixtures/determinism")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range lint.RunPackages([]*lint.Package{pkg}, []*lint.Analyzer{lint.Determinism}) {
		t.Errorf("determinism ran outside a kernel package: %s", f)
	}
}

func TestFloatCmp(t *testing.T) {
	linttest.Run(t, modDir, lint.FloatCmp, "testdata/src/floatcmp", "repro/fixtures/floatcmp")
}

func TestLockCheck(t *testing.T) {
	linttest.Run(t, modDir, lint.LockCheck, "testdata/src/lockcheck", "repro/fixtures/lockcheck")
}

func TestWorkerBound(t *testing.T) {
	linttest.Run(t, modDir, lint.WorkerBound, "testdata/src/workerbound", "repro/fixtures/workerbound")
}

// TestUnjustifiedAllow checks the driver's directive hygiene: an allow with
// no ` -- <justification>` suppresses nothing and is itself reported as a
// finding of the "stressvet" pseudo-analyzer.
func TestUnjustifiedAllow(t *testing.T) {
	pkg, err := lint.LoadDir(modDir, "testdata/src/directives", "repro/fixtures/directives")
	if err != nil {
		t.Fatal(err)
	}
	findings := lint.RunPackages([]*lint.Package{pkg}, []*lint.Analyzer{lint.NoAlloc})
	var gotBadDirective, gotSurvivingFinding, gotSuppressed bool
	for _, f := range findings {
		switch {
		case f.Analyzer == "stressvet" && strings.Contains(f.Message, "no ` -- <justification>`"):
			gotBadDirective = true
		case f.Analyzer == "noalloc" && f.Pos.Line == badAllowLine(t, pkg)+1:
			gotSurvivingFinding = true
		case f.Analyzer == "noalloc":
			gotSuppressed = true // a justified allow failed to suppress
		}
	}
	if !gotBadDirective {
		t.Errorf("no stressvet finding for the unjustified allow; findings: %v", findings)
	}
	if !gotSurvivingFinding {
		t.Errorf("the unjustified allow suppressed the noalloc finding; findings: %v", findings)
	}
	if gotSuppressed {
		t.Errorf("a justified allow failed to suppress its finding; findings: %v", findings)
	}
}

// badAllowLine locates the fixture line carrying the unjustified allow, so
// the test does not hard-code line numbers.
func badAllowLine(t *testing.T, pkg *lint.Package) int {
	t.Helper()
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text == "//stressvet:allow noalloc" {
					return pkg.Fset.Position(c.Pos()).Line
				}
			}
		}
	}
	t.Fatal("fixture has no bare //stressvet:allow noalloc comment")
	return 0
}

// TestEscapeCheck runs the compiler escape gate over the noalloc fixture
// package, whose annotated functions all heap-allocate by construction.
func TestEscapeCheck(t *testing.T) {
	findings, err := lint.EscapeCheck(modDir, []string{"./internal/lint/testdata/src/noalloc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("escape gate found no heap allocations in a fixture full of them")
	}
	for _, f := range findings {
		if f.Analyzer != "noalloc/escape" {
			t.Errorf("unexpected analyzer %q in escape finding %s", f.Analyzer, f)
		}
		if !strings.Contains(f.Pos.Filename, "noalloc") {
			t.Errorf("escape finding outside the fixture: %s", f)
		}
	}
}
