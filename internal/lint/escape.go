package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// EscapeCheck is the static complement to the noalloc AST rules: it builds
// the matched packages with -gcflags=-m, parses the compiler's escape
// diagnostics, and reports every heap allocation the compiler proves inside
// a //stressvet:noalloc-annotated function. Where the AST rules reject
// allocating *constructs*, this gate asks the authority — the escape
// analysis that decides what actually hits the heap — so a construct the
// AST rules miss (or a future compiler change) cannot silently regress the
// zero-allocation contract. stressvet:allow noalloc suppressions apply here
// too. The toolchain replays cached -m diagnostics, so warm runs are cheap.
func EscapeCheck(dir string, patterns []string) ([]Finding, error) {
	// The compiler prints package-relative paths; anchor them (and the spans,
	// which go list reports absolute) to one absolute base.
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	spans, allows, err := noallocSpans(dir, patterns)
	if err != nil {
		return nil, err
	}
	if len(spans) == 0 {
		return nil, nil
	}
	args := append([]string{"build", "-gcflags=-m=1"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go build -gcflags=-m: %v\n%s", err, out.String())
	}
	return matchEscapes(dir, out.String(), spans, allows), nil
}

// funcSpan is the file range of one annotated function.
type funcSpan struct {
	file       string // absolute path
	start, end int    // line range, inclusive
	name       string
	// panicLines are lines covered by panic(...) call subtrees — cold
	// paths, exempt exactly as in the AST rule (error formatting on the way
	// to a crash may allocate).
	panicLines map[int]bool
}

// noallocSpans parses the packages' sources (comments only — no type
// checking needed) and returns the line spans of //stressvet:noalloc
// functions plus the per-file stressvet:allow line sets.
func noallocSpans(dir string, patterns []string) ([]funcSpan, map[string]allowSet, error) {
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	var spans []funcSpan
	allows := make(map[string]allowSet)
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.Standard || e.Module == nil {
			continue
		}
		for _, name := range e.GoFiles {
			path := filepath.Join(e.Dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, nil, fmt.Errorf("lint: %v", err)
			}
			fileAllows, _ := collectAllows(fset, f)
			if len(fileAllows) > 0 {
				allows[path] = fileAllows
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasDirective(fd.Doc, "noalloc") {
					continue
				}
				spans = append(spans, funcSpan{
					file:       path,
					start:      fset.Position(fd.Pos()).Line,
					end:        fset.Position(fd.End()).Line,
					name:       fd.Name.Name,
					panicLines: panicLines(fset, fd),
				})
			}
		}
	}
	return spans, allows, nil
}

// panicLines returns the lines of fd's body covered by panic(...) calls.
// This is a parse-only scan, so a shadowed `panic` identifier would slip
// through; the AST analyzer, which resolves the builtin properly, still
// flags such code.
func panicLines(fset *token.FileSet, fd *ast.FuncDecl) map[int]bool {
	var out map[int]bool
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			if out == nil {
				out = make(map[int]bool)
			}
			for l := fset.Position(call.Pos()).Line; l <= fset.Position(call.End()).Line; l++ {
				out[l] = true
			}
			return false
		}
		return true
	})
	return out
}

// escapeLine matches one compiler diagnostic: "file:line:col: message".
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

// matchEscapes intersects the compiler's heap-allocation diagnostics with
// the annotated function spans.
func matchEscapes(dir, output string, spans []funcSpan, allows map[string]allowSet) []Finding {
	var out []Finding
	for _, line := range strings.Split(output, "\n") {
		m := escapeLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		for _, s := range spans {
			if s.file != file || lineNo < s.start || lineNo > s.end {
				continue
			}
			if allows[file][lineNo]["noalloc"] || s.panicLines[lineNo] {
				break
			}
			out = append(out, Finding{
				Pos:      token.Position{Filename: file, Line: lineNo, Column: col},
				Analyzer: "noalloc/escape",
				Message:  fmt.Sprintf("compiler proves a heap allocation in //stressvet:noalloc %s: %s", s.name, msg),
			})
			break
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}
