package lint

import (
	"go/ast"
)

// WorkerBound confines goroutine creation to the approved bounded
// worker-pool/gang primitives: a `go` statement in non-test code is only
// legal inside a function annotated //stressvet:gang -- <justification>
// (sparse.Pool, the engine's batch worker pool, the job queue's workers, the
// per-stage assembly gangs). Everything else is ad-hoc concurrency that can
// oversubscribe the serving layer, so it fails the build until the fan-out
// is either routed through a pool or explicitly annotated and justified.
var WorkerBound = &Analyzer{
	Name: "workerbound",
	Doc:  "confine `go` statements to //stressvet:gang-annotated worker-pool primitives",
	Run:  runWorkerBound,
}

func runWorkerBound(p *Pass) {
	for _, f := range p.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasDirective(fd.Doc, "gang") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					p.Reportf(g.Pos(), "go statement outside an approved worker-pool primitive; route through sparse.Pool or annotate the spawning function `//stressvet:gang -- <why the fan-out is bounded>`")
				}
				return true
			})
		}
	}
}
