// Package linttest runs lint analyzers over testdata fixture packages and
// checks their findings against `// want "regexp"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest: every want comment must be
// matched by a finding on its line, and every finding must be expected by a
// want comment. Multiple want strings on one line each need a match.
package linttest

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"repro/internal/lint"
)

// wantComment matches one expectation: `// want "re"` with optional further
// `"re"` strings.
var wantComment = regexp.MustCompile(`//\s*want\s+(.*)$`)

// wantRe pulls the individual quoted regexps out of a want comment.
var wantRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// Run loads dir as a single fixture package under the import path asPath
// (so path-scoped analyzers treat it as in scope) and diffs the analyzer's
// findings against the fixture's want comments. modDir anchors `go list`
// for the fixture's imports; pass the repository root.
func Run(t *testing.T, modDir string, a *lint.Analyzer, dir, asPath string) {
	t.Helper()
	pkg, err := lint.LoadDir(modDir, dir, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings := lint.RunPackages([]*lint.Package{pkg}, []*lint.Analyzer{a})

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	// Re-scan the fixture files for want comments (positions from the
	// loaded package's fileset).
	fset := token.NewFileSet()
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range matches {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantComment.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{filepath.Base(pos.Filename), pos.Line}
				for _, q := range wantRe.FindAllString(m[1], -1) {
					unq, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(unq)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, unq, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	matched := make(map[key][]bool)
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, f := range findings {
		k := key{filepath.Base(f.Pos.Filename), f.Pos.Line}
		ok := false
		for i, re := range wants[k] {
			if !matched[k][i] && re.MatchString(f.Message) {
				matched[k][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding at %s:%d: [%s] %s", k.file, k.line, f.Analyzer, f.Message)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s:%d: no finding matched want %q", k.file, k.line, re)
			}
		}
	}
	if t.Failed() {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
	}
}
