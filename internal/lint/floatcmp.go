package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmp bans == and != between floating-point (or complex) operands
// everywhere outside test files. Exact float equality is almost always a
// bug waiting for a rounding change — the one idiomatic exception, comparing
// against literal zero (sentinel/"unset" checks, division guards), is
// allowed. Use a tolerance (math.Abs(a-b) <= tol) or restructure instead;
// deliberate exact compares take a //stressvet:allow floatcmp directive
// with a justification.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "ban ==/!= between floating-point operands except against literal zero",
	Run:  runFloatCmp,
}

func runFloatCmp(p *Pass) {
	for _, f := range p.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloatOperand(p, be.X) && !isFloatOperand(p, be.Y) {
				return true
			}
			if isZeroConst(p, be.X) || isZeroConst(p, be.Y) {
				return true
			}
			p.Reportf(be.Pos(), "floating-point %s is exact; compare with a tolerance or against literal zero", be.Op)
			return true
		})
	}
}

func isFloatOperand(p *Pass, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isZeroConst reports whether e is a compile-time constant equal to zero
// (covers 0, 0.0, and named zero constants).
func isZeroConst(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	case constant.Complex:
		return constant.Sign(constant.Real(tv.Value)) == 0 && constant.Sign(constant.Imag(tv.Value)) == 0
	}
	return false
}
