package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, parsed, and type-checked package ready for
// analysis.
type Package struct {
	Path  string // import path the package is analyzed as
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList invokes `go list -e -export -deps -json` in dir and returns the
// decoded entries. Export data for every dependency is compiled as a side
// effect, which is exactly what the type-checker's importer needs — the
// loader works offline, with no module downloads.
func goList(dir string, patterns []string) ([]listEntry, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportImporter resolves imports from the export-data files reported by
// `go list -export`. It satisfies types.Importer; the gc importer underneath
// caches packages, so one instance serves every package of a load.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// typecheck parses and type-checks one package directory's files under the
// given import path.
func typecheck(fset *token.FileSet, imp types.Importer, path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

// LoadPatterns loads, parses, and type-checks the non-test sources of every
// in-module package matched by the go-list patterns (e.g. "./..."), rooted
// at dir. Standard-library and external dependencies are resolved from
// compiled export data, never re-analyzed.
func LoadPatterns(dir string, patterns []string) ([]*Package, error) {
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []listEntry
	for _, e := range entries {
		if e.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s", e.Error.Err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.Standard && e.Module != nil {
			targets = append(targets, e)
		}
	}
	// -deps lists dependencies first; analyze in stable path order instead.
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := typecheck(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads a single directory of Go files (fixtures) as one package
// under an assumed import path. Unlike LoadPatterns it includes *_test.go
// files, so fixtures can cover the analyzers' test-file exemptions; every
// file must belong to one package. modDir anchors the `go list` run that
// compiles export data for the fixture's (standard-library) imports.
func LoadDir(modDir, dir, asPath string) (*Package, error) {
	dirents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %v", err)
	}
	var filenames []string
	for _, de := range dirents {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".go") {
			filenames = append(filenames, de.Name())
		}
	}
	if len(filenames) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(filenames)
	// Collect the fixture's imports with a comments-free parse, then have
	// `go list` compile export data for them.
	fset := token.NewFileSet()
	importSet := make(map[string]bool)
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err == nil && p != "unsafe" {
				importSet[p] = true
			}
		}
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		imports := make([]string, 0, len(importSet))
		for p := range importSet {
			imports = append(imports, p)
		}
		sort.Strings(imports)
		entries, err := goList(modDir, imports)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.Export != "" {
				exports[e.ImportPath] = e.Export
			}
		}
	}
	return typecheck(fset, exportImporter(fset, exports), asPath, dir, filenames)
}
