package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockCheck enforces the `// guarded by <mu>` annotation on struct fields:
// within a function, every read or write of a guarded field must be
// preceded by a Lock or RLock call on the struct's named mutex, and guarded
// structs must not be copied by value (which would copy the mutex). The
// check is intra-procedural and lexical — a Lock anywhere earlier in the
// same function counts as held — so it catches the real failure mode
// (touching cache state with no lock in sight) without a false-positive
// storm from flow analysis. Escape hatches: functions whose name ends in
// "Locked" assert that their caller holds the lock, and accesses through
// locals constructed in the same function (constructors) are exempt because
// the value has not escaped yet.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "require the named mutex held when touching `// guarded by <mu>` struct fields; forbid mutex copies",
	Run:  runLockCheck,
}

var guardedBy = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guardInfo describes one annotated struct: the mutex field and the set of
// fields it guards, all normalized to their generic origin so instantiated
// generics (memo[T]) resolve to the same objects.
type guardInfo struct {
	structName string
	mu         *types.Var
	guarded    map[*types.Var]bool
}

func runLockCheck(p *Pass) {
	guards := collectGuards(p)
	if len(guards) == 0 {
		return
	}
	// guardedField maps every guarded field to its struct's info;
	// structOf maps the named struct types for copy checking.
	guardedField := make(map[*types.Var]*guardInfo)
	structTypes := make(map[*types.Named]*guardInfo)
	for named, gi := range guards {
		structTypes[named] = gi
		for f := range gi.guarded {
			guardedField[f] = gi
		}
	}
	for _, f := range p.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCopies(p, fd, structTypes)
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue // caller-holds-the-lock convention
			}
			checkFuncAccesses(p, fd, guardedField)
		}
	}
}

// collectGuards scans the package's struct declarations for `// guarded by`
// field annotations.
func collectGuards(p *Pass) map[*types.Named]*guardInfo {
	out := make(map[*types.Named]*guardInfo)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj := p.Info.Defs[ts.Name]
			if obj == nil {
				return true
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				return true
			}
			tStruct, ok := named.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			fieldVar := func(name string) *types.Var {
				for i := 0; i < tStruct.NumFields(); i++ {
					if v := tStruct.Field(i); v.Name() == name {
						return v.Origin()
					}
				}
				return nil
			}
			gi := &guardInfo{structName: ts.Name.Name, guarded: make(map[*types.Var]bool)}
			var muName string
			for _, field := range st.Fields.List {
				m := guardMatch(field)
				if m == "" {
					continue
				}
				if muName == "" {
					muName = m
				} else if muName != m {
					p.Reportf(field.Pos(), "struct %s names two different guard mutexes (%s, %s); lockcheck supports one", ts.Name.Name, muName, m)
					continue
				}
				for _, name := range field.Names {
					if v := fieldVar(name.Name); v != nil {
						gi.guarded[v] = true
					}
				}
			}
			if muName == "" {
				return true
			}
			mu := fieldVar(muName)
			if mu == nil || !isMutex(mu.Type()) {
				p.Reportf(ts.Pos(), "struct %s fields are `guarded by %s` but it has no sync.Mutex/RWMutex field of that name", ts.Name.Name, muName)
				return true
			}
			gi.mu = mu
			out[named] = gi
			return true
		})
	}
	return out
}

// guardMatch extracts the mutex name of a field's `guarded by` comment.
func guardMatch(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedBy.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func isMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkFuncAccesses verifies guarded-field accesses in one function against
// the Lock/RLock calls that lexically precede them.
func checkFuncAccesses(p *Pass, fd *ast.FuncDecl, guardedField map[*types.Var]*guardInfo) {
	// Pass 1: positions at which each guard mutex is locked.
	lockPos := make(map[*types.Var][]ast.Node)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := p.Info.Selections[muSel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		if v, ok := s.Obj().(*types.Var); ok {
			lockPos[v.Origin()] = append(lockPos[v.Origin()], call)
		}
		return true
	})
	held := func(mu *types.Var, at ast.Node) bool {
		for _, l := range lockPos[mu] {
			if l.Pos() < at.Pos() {
				return true
			}
		}
		return false
	}
	// Pass 2: the guarded accesses themselves.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := p.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		v, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		gi, ok := guardedField[v.Origin()]
		if !ok {
			return true
		}
		if localReceiver(p, fd, sel.X) {
			return true // constructing a value that has not escaped yet
		}
		if !held(gi.mu, sel) {
			p.Reportf(sel.Pos(), "%s.%s is guarded by %s.%s, which is not locked in %s (lock it, or name the function *Locked if the caller holds it)",
				gi.structName, v.Name(), gi.structName, gi.mu.Name(), fd.Name.Name)
		}
		return true
	})
}

// localReceiver reports whether the access base resolves to a variable
// declared inside the function body — a freshly constructed value that no
// other goroutine can reach yet.
func localReceiver(p *Pass, fd *ast.FuncDecl, base ast.Expr) bool {
	for {
		switch b := ast.Unparen(base).(type) {
		case *ast.SelectorExpr:
			base = b.X
			continue
		case *ast.Ident:
			obj := p.Info.Uses[b]
			return obj != nil && obj.Pos() >= fd.Body.Pos() && obj.Pos() < fd.Body.End()
		default:
			return false
		}
	}
}

// checkCopies flags by-value uses of guarded structs: parameters, results,
// and assignments copying an existing value (fresh composite literals are
// construction, not copies).
func checkCopies(p *Pass, fd *ast.FuncDecl, structTypes map[*types.Named]*guardInfo) {
	guardedNamed := func(t types.Type) *guardInfo {
		if t == nil {
			return nil
		}
		named, ok := t.(*types.Named)
		if !ok {
			return nil
		}
		if gi, ok := structTypes[named]; ok {
			return gi
		}
		if gi, ok := structTypes[named.Origin()]; ok {
			return gi
		}
		return nil
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if gi := guardedNamed(p.Info.TypeOf(field.Type)); gi != nil {
				p.Reportf(field.Pos(), "%s passed by value copies its %s mutex; pass *%s", gi.structName, gi.mu.Name(), gi.structName)
			}
		}
	}
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			if gi := guardedNamed(p.Info.TypeOf(field.Type)); gi != nil {
				p.Reportf(field.Pos(), "%s returned by value copies its %s mutex; return *%s", gi.structName, gi.mu.Name(), gi.structName)
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
				continue // discarded, nothing is retained
			}
			rhs := ast.Unparen(rhs)
			if _, isLit := rhs.(*ast.CompositeLit); isLit {
				continue
			}
			if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op.String() == "&" {
				continue
			}
			if gi := guardedNamed(p.Info.TypeOf(rhs)); gi != nil {
				p.Reportf(rhs.Pos(), "assignment copies %s by value (and its %s mutex); use a pointer", gi.structName, gi.mu.Name())
			}
		}
		return true
	})
}
