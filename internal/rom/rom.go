// Package rom implements the one-shot local stage of MORE-Stress (§4.2):
// reduced-order modeling of a TSV unit block. For a given geometry/material
// configuration it solves one Dirichlet local problem per surface-node
// displacement component (the boundary displacement being the corresponding
// 3-D Lagrange interpolation function) plus one thermal problem, yielding
// the local basis functions f_0…f_{n−1}, f_T, and projects the fine-mesh
// operator onto them to form the dense element stiffness A_elem (Eq. 18) and
// element load b_elem (Eq. 19) consumed by the global stage.
package rom

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/fem"
	"repro/internal/lagrange"
	"repro/internal/linalg"
	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/solver"
)

// Spec configures a unit-block reduced-order model.
type Spec struct {
	// Geom is the TSV geometry (pitch defines the block footprint).
	Geom mesh.TSVGeometry
	// Mats supplies via/liner/bulk materials.
	Mats material.TSVSet
	// Res controls the fine mesh of the block.
	Res mesh.BlockResolution
	// Nodes is (nx, ny, nz), the Lagrange interpolation node counts per
	// axis (paper default (4,4,4)).
	Nodes [3]int
	// WithVia distinguishes a TSV block (true) from a "dummy" pure-silicon
	// block (§4.4). It is consulted only when Kind is KindTSV (the zero
	// value).
	WithVia bool
	// Kind selects a non-default fine structure (pillar, annular, …),
	// exercising the paper's §6 claim that the method is structure-agnostic.
	Kind mesh.BlockKind
	// Quadratic switches the local fine discretization to 20-node
	// serendipity hexahedra (the commercial element class); the global
	// stage is unchanged — only the local basis functions become more
	// accurate.
	Quadratic bool
}

// kind resolves the effective structure kind of the spec.
func (s Spec) kind() mesh.BlockKind {
	if s.Kind != mesh.KindTSV {
		return s.Kind
	}
	if !s.WithVia {
		return mesh.KindDummy
	}
	return mesh.KindTSV
}

// PaperSpec returns the paper's configuration for the given pitch:
// h=50, d=5, t=0.5 µm, Cu/SiO2/Si, (4,4,4) interpolation nodes.
func PaperSpec(pitch float64, res mesh.BlockResolution) Spec {
	return Spec{
		Geom:    mesh.PaperGeometry(pitch),
		Mats:    material.DefaultTSVSet(),
		Res:     res,
		Nodes:   [3]int{4, 4, 4},
		WithVia: true,
	}
}

// Validate checks the specification.
func (s Spec) Validate() error {
	if err := s.Geom.Validate(); err != nil {
		return err
	}
	if err := s.Mats.Validate(); err != nil {
		return err
	}
	for _, n := range s.Nodes {
		if n < 2 {
			return fmt.Errorf("rom: each axis needs at least 2 interpolation nodes, got %v", s.Nodes)
		}
	}
	return nil
}

// ROM is a built reduced-order model of a unit block.
type ROM struct {
	Spec Spec
	// Surf enumerates the Lagrange surface nodes; element DoF i corresponds
	// to surface node i/3, component i%3.
	Surf *lagrange.SurfaceNodes
	// Grid and Model describe the fine mesh used for reconstruction.
	Grid  *mesh.Grid
	Model *fem.Model
	// Quad is set instead of trilinear recovery when Spec.Quadratic.
	Quad *fem.QuadModel
	// N is the number of element DoFs (Eq. 16).
	N int
	// Aelem is the n×n dense element stiffness (Eq. 18).
	Aelem *linalg.Dense
	// Belem is the n-vector element load for ΔT = 1 (Eq. 19).
	Belem []float64
	// Basis holds the local basis functions f_i as full fine-mesh
	// displacement vectors; BasisT is the thermal basis f_T.
	Basis  [][]float64
	BasisT []float64
	// Stats from the build.
	Stats BuildStats
}

// BuildStats records the cost of the one-shot local stage.
type BuildStats struct {
	BuildTime   time.Duration
	FineDoFs    int
	FreeDoFs    int
	FactorNNZ   int
	LocalSolves int
	MemoryBytes int64
}

// Build runs the one-shot local stage with the given worker count
// (0 = GOMAXPROCS).
//
//stressvet:gang -- basis solves bounded by a `workers`-slot semaphore
func Build(spec Spec, workers int) (*ROM, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()

	grid, err := mesh.NewBlock(spec.Geom, spec.Res, spec.kind())
	if err != nil {
		return nil, err
	}
	model := &fem.Model{Grid: grid, Mats: fem.TSVMats(spec.Mats)}
	var quad *fem.QuadModel
	var asm *fem.Assembled
	var nn int
	nodeCoord := grid.NodeCoord
	onBoundary := grid.OnBoundary
	if spec.Quadratic {
		quad = fem.NewQuadModel(grid, model.Mats)
		asm, err = quad.Assemble(workers)
		nn = quad.NumNodes()
		nodeCoord = quad.NodeCoord
		onBoundary = quad.OnBoundary
	} else {
		asm, err = model.Assemble(workers)
		nn = grid.NumNodes()
	}
	if err != nil {
		return nil, err
	}

	// Boundary DoFs: every fine node on any face of the block.
	isBC := make([]bool, 3*nn)
	for n := 0; n < nn; n++ {
		if onBoundary(n) {
			isBC[3*n] = true
			isBC[3*n+1] = true
			isBC[3*n+2] = true
		}
	}
	red, err := fem.Reduce(asm.K, asm.F, isBC)
	if err != nil {
		return nil, err
	}
	chol, err := solver.NewCholesky(red.Aff)
	if err != nil {
		return nil, fmt.Errorf("rom: local factorization failed: %w", err)
	}

	surf := lagrange.NewSurfaceNodes(spec.Nodes[0], spec.Nodes[1], spec.Nodes[2],
		spec.Geom.Pitch, spec.Geom.Pitch, spec.Geom.Height)
	n := surf.NumDoFs()

	// Interpolation matrix restricted to fine boundary nodes: for each
	// boundary fine node (one per 3 consecutive BC DoFs), the value of
	// every surface-node basis function (Eq. 10).
	nbc := len(red.BCIdx)
	if nbc%3 != 0 {
		return nil, fmt.Errorf("rom: boundary DoF count %d not divisible by 3", nbc)
	}
	bcNodes := nbc / 3
	lmat := make([][]float64, bcNodes)
	for bn := 0; bn < bcNodes; bn++ {
		full := int(red.BCIdx[3*bn])
		node := full / 3
		c := nodeCoord(node)
		lmat[bn] = surf.EvalAll(c.X, c.Y, c.Z)
	}

	// Solve the n local problems (ΔT = 0, unit Lagrange boundary) and the
	// thermal problem (ΔT = 1, zero boundary), task-parallel as in §4.2.
	basis := make([][]float64, n)
	var basisT []float64
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	solveOne := func(i int) {
		defer wg.Done()
		sem <- struct{}{}
		defer func() { <-sem }()
		surfNode, comp := i/3, i%3
		ubc := make([]float64, nbc)
		for bn := 0; bn < bcNodes; bn++ {
			v := lmat[bn][surfNode]
			if v != 0 {
				ubc[3*bn+comp] = v
			}
		}
		rhs := red.RHS(0, ubc)
		xf := chol.Solve(rhs)
		basis[i] = red.Expand(xf, ubc)
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go solveOne(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		sem <- struct{}{}
		defer func() { <-sem }()
		rhs := red.RHS(1, nil)
		xf := chol.Solve(rhs)
		basisT = red.Expand(xf, nil)
	}()
	wg.Wait()

	// Project: A_elem[i][j] = f_iᵀ·K·f_j (Eq. 18), b_elem[i] = f_iᵀ·F
	// (Eq. 19). Compute W_i = K·f_i once per basis vector, in parallel.
	ndof := 3 * nn
	w := make([][]float64, n)
	parallelFor(n, workers, func(i int) {
		w[i] = make([]float64, ndof)
		asm.K.MulVec(w[i], basis[i])
	})
	aelem := linalg.NewDense(n, n)
	belem := make([]float64, n)
	parallelFor(n, workers, func(i int) {
		for j := i; j < n; j++ {
			v := linalg.Dot(basis[i], w[j])
			aelem.Set(i, j, v)
			aelem.Set(j, i, v)
		}
		belem[i] = linalg.Dot(basis[i], asm.F)
	})
	aelem.Symmetrize()

	r := &ROM{
		Spec: spec, Surf: surf, Grid: grid, Model: model, Quad: quad,
		N: n, Aelem: aelem, Belem: belem,
		Basis: basis, BasisT: basisT,
		Stats: BuildStats{
			BuildTime:   time.Since(start),
			FineDoFs:    ndof,
			FreeDoFs:    red.NFree(),
			FactorNNZ:   chol.NNZ(),
			LocalSolves: n + 1,
		},
	}
	r.Stats.MemoryBytes = r.memoryBytes()
	return r, nil
}

func (r *ROM) memoryBytes() int64 {
	var b int64
	for _, f := range r.Basis {
		b += int64(len(f)) * 8
	}
	b += int64(len(r.BasisT)) * 8
	b += int64(len(r.Aelem.Data))*8 + int64(len(r.Belem))*8
	return b
}

// Reconstruct assembles the fine-mesh displacement field of a block from
// its element DoF values q (length N) and the thermal load (Eq. 15):
// u = ΔT·f_T + Σ q_i·f_i.
func (r *ROM) Reconstruct(q []float64, deltaT float64) []float64 {
	if len(q) != r.N {
		panic(fmt.Sprintf("rom: Reconstruct got %d DoFs, want %d", len(q), r.N))
	}
	u := make([]float64, len(r.BasisT))
	for d, v := range r.BasisT {
		u[d] = deltaT * v
	}
	for i, qi := range q {
		if qi == 0 {
			continue
		}
		linalg.Axpy(qi, r.Basis[i], u)
	}
	return u
}

// StressAtPoint recovers the stress tensor from a reconstructed fine field
// at a block-local point, using the block's discretization.
func (r *ROM) StressAtPoint(u []float64, deltaT float64, p mesh.Vec3) [6]float64 {
	if r.Quad != nil {
		return r.Quad.StressAtPoint(u, deltaT, p)
	}
	return r.Model.StressAtPoint(u, deltaT, p)
}

// DisplacementAtPoint interpolates a reconstructed fine field at a
// block-local point.
func (r *ROM) DisplacementAtPoint(u []float64, p mesh.Vec3) [3]float64 {
	if r.Quad != nil {
		return r.Quad.DisplacementAtPoint(u, p)
	}
	return r.Model.DisplacementAtPoint(u, p)
}

// SampleVM evaluates the von Mises stress on a gs×gs grid over the plane
// z = zCut of the block (local coordinates), row-major with x fastest. The
// grid points are cell centers of the gs×gs partition, matching the gridded
// comparison convention of §5.2.
func (r *ROM) SampleVM(u []float64, deltaT float64, zCut float64, gs int) []float64 {
	out := make([]float64, gs*gs)
	p := r.Spec.Geom.Pitch
	for gy := 0; gy < gs; gy++ {
		y := (float64(gy) + 0.5) * p / float64(gs)
		for gx := 0; gx < gs; gx++ {
			x := (float64(gx) + 0.5) * p / float64(gs)
			s := r.StressAtPoint(u, deltaT, mesh.Vec3{X: x, Y: y, Z: zCut})
			out[gy*gs+gx] = fem.VonMises(s)
		}
	}
	return out
}

// parallelFor runs fn(i) for i in [0, n) on up to workers goroutines.
//
//stressvet:gang -- `workers` goroutines draining the index channel
func parallelFor(n, workers int, fn func(i int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
