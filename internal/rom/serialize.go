package rom

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/fem"
	"repro/internal/lagrange"
	"repro/internal/linalg"
	"repro/internal/mesh"
)

// romWire is the gob wire format of a ROM: everything needed to reconstruct
// the model without re-running the local stage.
type romWire struct {
	Spec   Spec
	Xs, Ys []float64
	Zs     []float64
	MatID  []uint8
	N      int
	Aelem  []float64
	Belem  []float64
	Basis  [][]float64
	BasisT []float64
	Stats  BuildStats
}

// Save writes the ROM in gob format. A saved ROM lets the global stage run
// on new array sizes, thermal loads, and locations without repeating the
// one-shot local stage (§4.1).
func (r *ROM) Save(w io.Writer) error {
	wire := romWire{
		Spec: r.Spec,
		Xs:   r.Grid.Xs, Ys: r.Grid.Ys, Zs: r.Grid.Zs,
		MatID: r.Grid.MatID,
		N:     r.N,
		Aelem: r.Aelem.Data, Belem: r.Belem,
		Basis: r.Basis, BasisT: r.BasisT,
		Stats: r.Stats,
	}
	return gob.NewEncoder(w).Encode(&wire)
}

// Load reads a ROM previously written by Save.
func Load(rd io.Reader) (*ROM, error) {
	var wire romWire
	if err := gob.NewDecoder(rd).Decode(&wire); err != nil {
		return nil, fmt.Errorf("rom: decode: %w", err)
	}
	grid, err := mesh.NewGrid(wire.Xs, wire.Ys, wire.Zs)
	if err != nil {
		return nil, fmt.Errorf("rom: corrupt grid: %w", err)
	}
	if len(wire.MatID) != grid.NumElems() {
		return nil, fmt.Errorf("rom: material table has %d entries for %d elements", len(wire.MatID), grid.NumElems())
	}
	grid.MatID = wire.MatID
	surf := lagrange.NewSurfaceNodes(wire.Spec.Nodes[0], wire.Spec.Nodes[1], wire.Spec.Nodes[2],
		wire.Spec.Geom.Pitch, wire.Spec.Geom.Pitch, wire.Spec.Geom.Height)
	if surf.NumDoFs() != wire.N || len(wire.Aelem) != wire.N*wire.N || len(wire.Belem) != wire.N || len(wire.Basis) != wire.N {
		return nil, fmt.Errorf("rom: inconsistent DoF counts in saved model")
	}
	aelem := &linalg.Dense{Rows: wire.N, Cols: wire.N, Data: wire.Aelem}
	model := &fem.Model{Grid: grid, Mats: fem.TSVMats(wire.Spec.Mats)}
	var quad *fem.QuadModel
	if wire.Spec.Quadratic {
		quad = fem.NewQuadModel(grid, model.Mats)
	}
	return &ROM{
		Spec: wire.Spec, Surf: surf, Grid: grid,
		Model: model, Quad: quad,
		N: wire.N, Aelem: aelem, Belem: wire.Belem,
		Basis: wire.Basis, BasisT: wire.BasisT,
		Stats: wire.Stats,
	}, nil
}
