package rom

import (
	"math"
	"testing"

	"repro/internal/fem"
	"repro/internal/lagrange"
	"repro/internal/linalg"
	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/solver"
)

// TestElementMatricesMatchSchurComplement verifies Eqs. 18–19 against the
// algebraic identity they encode: with L the Lagrange interpolation operator
// from element DoFs to fine boundary DoFs and S = A_bb − A_bf·A_ff⁻¹·A_fb
// the exact static condensation of the block,
//
//	A_elem = Lᵀ·S·L,
//	b_elem = Lᵀ·(b_b − A_bf·A_ff⁻¹·b_f).
//
// The ROM computes the same quantities via basis-function projection
// (fᵢᵀ·K·fⱼ and fᵢᵀ·F); both routes must agree to solver precision. This
// also certifies the equivalence of the paper's Eq. 19 with the condensed
// Galerkin load (the +fᵢ,fᵀ·b_f = −u_bcᵀ·A_bf·f_T,f identity).
func TestElementMatricesMatchSchurComplement(t *testing.T) {
	spec := Spec{
		Geom:    mesh.PaperGeometry(15),
		Mats:    material.DefaultTSVSet(),
		Res:     mesh.BlockResolution{RadialCells: 2, OuterCells: 2, ZCells: 3},
		Nodes:   [3]int{3, 3, 3},
		WithVia: true,
	}
	r, err := Build(spec, 8)
	if err != nil {
		t.Fatal(err)
	}

	// Reassemble the block system and build the condensed matrices
	// directly.
	model := &fem.Model{Grid: r.Grid, Mats: fem.TSVMats(spec.Mats)}
	asm, err := model.Assemble(4)
	if err != nil {
		t.Fatal(err)
	}
	nn := r.Grid.NumNodes()
	isBC := make([]bool, 3*nn)
	for n := 0; n < nn; n++ {
		if r.Grid.OnBoundary(n) {
			isBC[3*n], isBC[3*n+1], isBC[3*n+2] = true, true, true
		}
	}
	red, err := fem.Reduce(asm.K, asm.F, isBC)
	if err != nil {
		t.Fatal(err)
	}
	chol, err := solver.NewCholesky(red.Aff)
	if err != nil {
		t.Fatal(err)
	}
	// A_bb, A_bf blocks.
	nb := len(red.BCIdx)
	toBC := make([]int32, 3*nn)
	toFree := make([]int32, 3*nn)
	for i := range toBC {
		toBC[i] = -1
		toFree[i] = -1
	}
	for bi, full := range red.BCIdx {
		toBC[full] = int32(bi)
	}
	for fi, full := range red.FreeIdx {
		toFree[full] = int32(fi)
	}
	abb := asm.K.Extract(toBC, toBC, nb, nb)
	abf := asm.K.Extract(toBC, toFree, nb, red.NFree())
	bb := make([]float64, nb)
	for bi, full := range red.BCIdx {
		bb[bi] = asm.F[full]
	}

	// Interpolation operator L: element DoF -> fine boundary DoFs.
	surf := lagrange.NewSurfaceNodes(3, 3, 3, spec.Geom.Pitch, spec.Geom.Pitch, spec.Geom.Height)
	n := surf.NumDoFs()
	lmat := linalg.NewDense(nb, n)
	for bi := 0; bi < nb; bi++ {
		full := int(red.BCIdx[bi])
		node, comp := full/3, full%3
		c := r.Grid.NodeCoord(node)
		vals := surf.EvalAll(c.X, c.Y, c.Z)
		for s, v := range vals {
			lmat.Set(bi, 3*s+comp, v)
		}
	}

	// Condensed matrices column by column: S·L·e_j = A_bb·Le_j − A_bf·A_ff⁻¹·A_fb·Le_j.
	afb := red.Afb
	for j := 0; j < n; j++ {
		lej := make([]float64, nb)
		for bi := 0; bi < nb; bi++ {
			lej[bi] = lmat.At(bi, j)
		}
		tmp1 := make([]float64, red.NFree())
		afb.MulVec(tmp1, lej) // A_fb·Le_j
		tmp2 := chol.Solve(tmp1)
		tmp3 := make([]float64, nb)
		abf.MulVec(tmp3, tmp2) // A_bf·A_ff⁻¹·A_fb·Le_j
		sl := make([]float64, nb)
		abb.MulVec(sl, lej)
		for bi := range sl {
			sl[bi] -= tmp3[bi]
		}
		// Column j of Lᵀ·S·L.
		for i := 0; i < n; i++ {
			var want float64
			for bi := 0; bi < nb; bi++ {
				want += lmat.At(bi, i) * sl[bi]
			}
			got := r.Aelem.At(i, j)
			scale := r.Aelem.MaxAbs()
			if math.Abs(got-want) > 1e-7*scale {
				t.Fatalf("A_elem[%d][%d] = %g, Schur route %g (scale %g)", i, j, got, want, scale)
			}
		}
	}

	// Condensed load: Lᵀ·(b_b − A_bf·A_ff⁻¹·b_f).
	tmp := chol.Solve(red.Bf)
	abfT := make([]float64, nb)
	abf.MulVec(abfT, tmp)
	g := make([]float64, nb)
	for bi := range g {
		g[bi] = bb[bi] - abfT[bi]
	}
	scale := linalg.NormInf(r.Belem)
	for i := 0; i < n; i++ {
		var want float64
		for bi := 0; bi < nb; bi++ {
			want += lmat.At(bi, i) * g[bi]
		}
		if math.Abs(r.Belem[i]-want) > 1e-7*scale {
			t.Fatalf("b_elem[%d] = %g, condensed route %g", i, r.Belem[i], want)
		}
	}
}

// TestReconstructLinearInDeltaT is the superposition property underpinning
// the global stage: u(q, ΔT) = ΔT·f_T + Σ qᵢfᵢ is affine, so
// u(q, a) + u(q', b) − u(0, 0) … simplest check: u(q, a+b) = u(q, a) +
// u(0, b).
func TestReconstructLinearInDeltaT(t *testing.T) {
	r, err := Build(testSpec(3, true), 8)
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, r.N)
	for i := range q {
		q[i] = 1e-3 * float64(i%7)
	}
	ua := r.Reconstruct(q, -100)
	ub := r.Reconstruct(make([]float64, r.N), -150)
	uab := r.Reconstruct(q, -250)
	for i := range uab {
		if math.Abs(uab[i]-(ua[i]+ub[i])) > 1e-12+1e-9*math.Abs(uab[i]) {
			t.Fatalf("reconstruction not affine at %d", i)
		}
	}
}
