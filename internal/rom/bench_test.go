package rom

import (
	"testing"

	"repro/internal/mesh"
)

func BenchmarkLocalStageCoarse(b *testing.B) {
	spec := PaperSpec(15, mesh.CoarseResolution())
	for i := 0; i < b.N; i++ {
		if _, err := Build(spec, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalStageDefault(b *testing.B) {
	spec := PaperSpec(15, mesh.DefaultResolution())
	for i := 0; i < b.N; i++ {
		if _, err := Build(spec, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWorkers quantifies the task-level parallelism of the
// local stage (§4.2: "can be easily parallelized on the task level").
func BenchmarkAblationWorkers(b *testing.B) {
	spec := PaperSpec(15, mesh.CoarseResolution())
	for _, w := range []int{1, 4, 16} {
		b.Run(workerName(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Build(spec, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func workerName(w int) string {
	switch w {
	case 1:
		return "serial"
	case 4:
		return "workers-4"
	default:
		return "workers-16"
	}
}

func BenchmarkReconstruct(b *testing.B) {
	r, err := Build(PaperSpec(15, mesh.CoarseResolution()), 0)
	if err != nil {
		b.Fatal(err)
	}
	q := make([]float64, r.N)
	for i := range q {
		q[i] = float64(i%5) * 1e-3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Reconstruct(q, -250)
	}
}

func BenchmarkSampleVM(b *testing.B) {
	r, err := Build(PaperSpec(15, mesh.CoarseResolution()), 0)
	if err != nil {
		b.Fatal(err)
	}
	u := r.Reconstruct(make([]float64, r.N), -250)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.SampleVM(u, -250, 25, 100)
	}
}
