package rom

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/lagrange"
	"repro/internal/linalg"
	"repro/internal/mesh"
)

// testSpec returns a cheap ROM spec for unit tests.
func testSpec(nodes int, withVia bool) Spec {
	s := PaperSpec(15, mesh.CoarseResolution())
	s.Nodes = [3]int{nodes, nodes, nodes}
	s.WithVia = withVia
	return s
}

func TestBuildBasicInvariants(t *testing.T) {
	r, err := Build(testSpec(3, true), 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 78 { // (3³−1)·3 = 78 per Eq. 16
		t.Fatalf("N = %d, want 78", r.N)
	}
	if len(r.Basis) != r.N || len(r.Belem) != r.N {
		t.Fatal("basis/load sizes wrong")
	}
	// Element stiffness must be symmetric positive semidefinite (check
	// symmetry and nonnegative diagonal; PSD validated via Cholesky of
	// A + εI in the global stage tests).
	for i := 0; i < r.N; i++ {
		if r.Aelem.At(i, i) < 0 {
			t.Errorf("negative diagonal at %d: %g", i, r.Aelem.At(i, i))
		}
		for j := 0; j < r.N; j++ {
			d := math.Abs(r.Aelem.At(i, j) - r.Aelem.At(j, i))
			if d > 1e-9*(1+math.Abs(r.Aelem.At(i, j))) {
				t.Fatalf("Aelem not symmetric at (%d,%d)", i, j)
			}
		}
	}
	if r.Stats.LocalSolves != r.N+1 {
		t.Errorf("local solves %d, want %d", r.Stats.LocalSolves, r.N+1)
	}
}

func TestBasisBoundaryValuesMatchLagrange(t *testing.T) {
	// On the fine boundary, basis f_i must equal the Lagrange interpolation
	// function of its surface node (Eq. 10), and f_T must vanish.
	r, err := Build(testSpec(3, true), 4)
	if err != nil {
		t.Fatal(err)
	}
	g := r.Grid
	for i := 0; i < r.N; i += 7 { // sample a few basis functions
		surfNode, comp := i/3, i%3
		for n := 0; n < g.NumNodes(); n++ {
			if !g.OnBoundary(n) {
				continue
			}
			c := g.NodeCoord(n)
			want := r.Surf.Eval(surfNode, c.X, c.Y, c.Z)
			for cc := 0; cc < 3; cc++ {
				exp := 0.0
				if cc == comp {
					exp = want
				}
				if math.Abs(r.Basis[i][3*n+cc]-exp) > 1e-9 {
					t.Fatalf("basis %d at boundary node %d comp %d: %g, want %g",
						i, n, cc, r.Basis[i][3*n+cc], exp)
				}
			}
		}
	}
	for n := 0; n < g.NumNodes(); n++ {
		if !g.OnBoundary(n) {
			continue
		}
		for cc := 0; cc < 3; cc++ {
			if r.BasisT[3*n+cc] != 0 {
				t.Fatalf("thermal basis nonzero on boundary node %d", n)
			}
		}
	}
}

func TestRigidTranslationNullSpace(t *testing.T) {
	// Setting all surface nodes to a rigid x-translation must reproduce the
	// translation everywhere (Lagrange interpolation of a constant is
	// exact) and produce zero element energy: qᵀ·A_elem·q ≈ 0.
	r, err := Build(testSpec(3, true), 4)
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, r.N)
	for s := 0; s < r.Surf.Count(); s++ {
		q[3*s] = 1 // unit x-translation
	}
	u := r.Reconstruct(q, 0)
	for n := 0; n < r.Grid.NumNodes(); n++ {
		if math.Abs(u[3*n]-1) > 1e-8 || math.Abs(u[3*n+1]) > 1e-8 || math.Abs(u[3*n+2]) > 1e-8 {
			t.Fatalf("rigid translation not reproduced at node %d: (%g,%g,%g)",
				n, u[3*n], u[3*n+1], u[3*n+2])
		}
	}
	av := make([]float64, r.N)
	r.Aelem.MulVec(av, q)
	energy := linalg.Dot(q, av)
	scale := r.Aelem.MaxAbs()
	if math.Abs(energy) > 1e-8*scale {
		t.Errorf("translation energy %g (scale %g)", energy, scale)
	}
}

func TestElementLoadTranslationConsistency(t *testing.T) {
	// bᵀ·q for a rigid translation equals the net thermal force on the
	// block in that direction, which must vanish (self-equilibrated load).
	r, err := Build(testSpec(3, true), 4)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		q := make([]float64, r.N)
		for s := 0; s < r.Surf.Count(); s++ {
			q[3*s+c] = 1
		}
		var dot float64
		for i := range q {
			dot += q[i] * r.Belem[i]
		}
		scale := linalg.NormInf(r.Belem)
		if math.Abs(dot) > 1e-7*scale*float64(r.N) {
			t.Errorf("net thermal force in direction %d: %g (scale %g)", c, dot, scale)
		}
	}
}

func TestDummyBlockBuild(t *testing.T) {
	r, err := Build(testSpec(2, false), 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 24 {
		t.Fatalf("N = %d, want 24", r.N)
	}
	// Homogeneous silicon: thermal basis with zero boundary and uniform
	// material gives nonzero interior response; just check finiteness and
	// that reconstruction works.
	u := r.Reconstruct(make([]float64, r.N), -250)
	for _, v := range u {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite reconstruction")
		}
	}
}

func TestSpecValidation(t *testing.T) {
	s := testSpec(3, true)
	s.Nodes = [3]int{1, 3, 3}
	if _, err := Build(s, 1); err == nil {
		t.Error("expected error for 1 interpolation node")
	}
	s = testSpec(3, true)
	s.Geom.Diameter = 20 // exceeds pitch
	if _, err := Build(s, 1); err == nil {
		t.Error("expected error for bad geometry")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r, err := Build(testSpec(2, true), 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r2.N != r.N {
		t.Fatalf("N mismatch: %d vs %d", r2.N, r.N)
	}
	for i := range r.Aelem.Data {
		if r.Aelem.Data[i] != r2.Aelem.Data[i] {
			t.Fatal("Aelem mismatch after round trip")
		}
	}
	for i := range r.Belem {
		if r.Belem[i] != r2.Belem[i] {
			t.Fatal("Belem mismatch after round trip")
		}
	}
	// Reconstruction must agree.
	q := make([]float64, r.N)
	q[0] = 0.01
	u1 := r.Reconstruct(q, -100)
	u2 := r2.Reconstruct(q, -100)
	for i := range u1 {
		if u1[i] != u2[i] {
			t.Fatal("reconstruction mismatch after round trip")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a rom"))); err == nil {
		t.Error("expected decode error")
	}
}

func TestSampleVMShape(t *testing.T) {
	r, err := Build(testSpec(2, true), 4)
	if err != nil {
		t.Fatal(err)
	}
	u := r.Reconstruct(make([]float64, r.N), -250)
	vm := r.SampleVM(u, -250, r.Spec.Geom.Height/2, 8)
	if len(vm) != 64 {
		t.Fatalf("sample count %d", len(vm))
	}
	for _, v := range vm {
		if v < 0 || math.IsNaN(v) {
			t.Fatal("invalid von Mises sample")
		}
	}
	// The stress near the via must exceed the far-field stress: CTE
	// mismatch concentrates stress at the TSV.
	center := vm[4*8+4]
	corner := vm[0]
	if center <= corner {
		t.Errorf("expected stress concentration at via: center %g, corner %g", center, corner)
	}
}

// TestBuildArbitraryNodeCounts is a property-style sweep: for every node
// configuration in a small grid, the ROM must build, satisfy Eq. 16, and
// produce a symmetric element stiffness with nonnegative diagonal.
func TestBuildArbitraryNodeCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("node-count sweep is slow")
	}
	for _, nodes := range [][3]int{{2, 2, 2}, {2, 3, 4}, {4, 2, 3}, {3, 3, 2}} {
		s := PaperSpec(15, mesh.CoarseResolution())
		s.Nodes = nodes
		r, err := Build(s, 8)
		if err != nil {
			t.Fatalf("%v: %v", nodes, err)
		}
		want := lagrange.DoFCount(nodes[0], nodes[1], nodes[2])
		if r.N != want {
			t.Errorf("%v: N = %d, want %d", nodes, r.N, want)
		}
		for i := 0; i < r.N; i++ {
			if r.Aelem.At(i, i) < 0 {
				t.Fatalf("%v: negative diagonal", nodes)
			}
			for j := i + 1; j < r.N; j++ {
				if d := math.Abs(r.Aelem.At(i, j) - r.Aelem.At(j, i)); d > 1e-8*(1+math.Abs(r.Aelem.At(i, j))) {
					t.Fatalf("%v: asymmetry at (%d,%d)", nodes, i, j)
				}
			}
		}
	}
}
