package rom

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/mesh"
)

func TestQuadraticROMBuild(t *testing.T) {
	spec := testSpec(3, true)
	spec.Quadratic = true
	r, err := Build(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Quad == nil {
		t.Fatal("quadratic ROM lacks quadratic model")
	}
	if r.N != 78 {
		t.Fatalf("element DoFs %d, want 78 (Eq. 16 is discretization-independent)", r.N)
	}
	if len(r.BasisT) != 3*r.Quad.NumNodes() {
		t.Fatalf("basis length %d, want %d", len(r.BasisT), 3*r.Quad.NumNodes())
	}
	// Rigid x-translation must be reproduced on the quadratic node set too.
	q := make([]float64, r.N)
	for s := 0; s < r.Surf.Count(); s++ {
		q[3*s] = 1
	}
	u := r.Reconstruct(q, 0)
	for id := 0; id < r.Quad.NumNodes(); id++ {
		if math.Abs(u[3*id]-1) > 1e-8 || math.Abs(u[3*id+1]) > 1e-8 {
			t.Fatalf("rigid translation not reproduced at quad node %d", id)
		}
	}
}

func TestQuadraticROMSaveLoad(t *testing.T) {
	spec := testSpec(2, true)
	spec.Quadratic = true
	r, err := Build(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Quad == nil {
		t.Fatal("quadratic flag lost in round trip")
	}
	q := make([]float64, r.N)
	q[1] = 0.01
	u1 := r.Reconstruct(q, -50)
	u2 := r2.Reconstruct(q, -50)
	for i := range u1 {
		if u1[i] != u2[i] {
			t.Fatal("quadratic reconstruction differs after round trip")
		}
	}
	// Stress recovery routes through the quadratic model.
	s1 := r.StressAtPoint(u1, -50, mesh.Vec3{X: 7.5, Y: 7.5, Z: 25})
	s2 := r2.StressAtPoint(u2, -50, mesh.Vec3{X: 7.5, Y: 7.5, Z: 25})
	if s1 != s2 {
		t.Fatal("stress recovery differs after round trip")
	}
}
