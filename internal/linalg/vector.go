// Package linalg provides the dense linear-algebra kernels used by the
// MORE-Stress solvers: vector operations, dense matrices in row-major
// storage, and dense Cholesky/LU factorizations for small systems such as
// element matrices and GMRES Hessenberg problems.
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. The slices must be equal length.
//
//stressvet:noalloc
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v, guarding against overflow for
// well-scaled engineering magnitudes.
//
//stressvet:noalloc
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// NormInf returns the maximum absolute entry of v (0 for an empty slice).
//
//stressvet:noalloc
func NormInf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Axpy computes y += alpha*x in place.
//
//stressvet:noalloc
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies v by alpha in place.
//
//stressvet:noalloc
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Copy returns a newly allocated copy of v.
func Copy(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Zero sets every entry of v to zero.
//
//stressvet:noalloc
func Zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// Sub computes dst = a - b. dst may alias a or b.
//
//stressvet:noalloc
func Sub(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic(fmt.Sprintf("linalg: Sub length mismatch %d vs %d vs %d", len(dst), len(a), len(b)))
	}
	for i := range a {
		dst[i] = a[i] - b[i]
	}
}

// Add computes dst = a + b. dst may alias a or b.
//
//stressvet:noalloc
func Add(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("linalg: Add length mismatch")
	}
	for i := range a {
		dst[i] = a[i] + b[i]
	}
}
