package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDotAndNorm(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, -5, 6}
	if got := Dot(a, b); got != 4-10+18 {
		t.Errorf("Dot = %g", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %g", got)
	}
	if got := NormInf([]float64{-7, 2}); got != 7 {
		t.Errorf("NormInf = %g", got)
	}
	if got := NormInf(nil); got != 0 {
		t.Errorf("NormInf(nil) = %g", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpyScaleSubAdd(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("Axpy: %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Errorf("Scale: %v", y)
	}
	dst := make([]float64, 2)
	Sub(dst, []float64{5, 5}, []float64{2, 3})
	if dst[0] != 3 || dst[1] != 2 {
		t.Errorf("Sub: %v", dst)
	}
	Add(dst, dst, dst)
	if dst[0] != 6 || dst[1] != 4 {
		t.Errorf("Add: %v", dst)
	}
}

func TestDenseMulVec(t *testing.T) {
	m := NewDense(2, 3)
	// [1 2 3; 4 5 6]
	for c := 0; c < 3; c++ {
		m.Set(0, c, float64(c+1))
		m.Set(1, c, float64(c+4))
	}
	x := []float64{1, 1, 1}
	dst := make([]float64, 2)
	m.MulVec(dst, x)
	if dst[0] != 6 || dst[1] != 15 {
		t.Errorf("MulVec: %v", dst)
	}
	dt := make([]float64, 3)
	m.MulTransVec(dt, []float64{1, 1})
	if dt[0] != 5 || dt[1] != 7 || dt[2] != 9 {
		t.Errorf("MulTransVec: %v", dt)
	}
}

func randSPD(rng *rand.Rand, n int) *Dense {
	// A = Bᵀ·B + n·I is SPD.
	b := NewDense(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b.At(k, i) * b.At(k, j)
			}
			a.Set(i, j, s)
		}
		a.Add(i, i, float64(n))
	}
	return a
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 20} {
		a := randSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, want)
		got := CholeskySolve(l, b)
		for i := range got {
			if !almostEqual(got[i], want[i], 1e-9) {
				t.Fatalf("n=%d: solution mismatch at %d: %g vs %g", n, i, got[i], want[i])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1)
	if _, err := Cholesky(a); err == nil {
		t.Error("expected error for indefinite matrix")
	}
}

func TestCholeskyFactorProperty(t *testing.T) {
	// Property: L·Lᵀ reproduces A for random SPD matrices.
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		a := randSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k <= min(i, j); k++ {
					s += l.At(i, k) * l.At(j, k)
				}
				if !almostEqual(s, a.At(i, j), 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 3, 10, 30} {
		a := NewDense(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		orig := a.Clone()
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		orig.MulVec(b, want)
		piv, err := LU(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := LUSolve(a, piv, b)
		for i := range got {
			if !almostEqual(got[i], want[i], 1e-8) {
				t.Fatalf("n=%d: mismatch at %d: %g vs %g", n, i, got[i], want[i])
			}
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDense(2, 2) // zero matrix
	if _, err := LU(a); err == nil {
		t.Error("expected error for singular matrix")
	}
}

func TestSymmetrize(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 2)
	m.Set(1, 0, 4)
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Errorf("Symmetrize: %v", m.Data)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
