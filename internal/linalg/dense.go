package linalg

import (
	"fmt"
	"math"
)

// Dense is a dense matrix in row-major storage.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, Data[r*Cols+c]
}

// NewDense allocates an r×c zero matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: NewDense negative dimension %d×%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns element (r, c).
func (m *Dense) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Dense) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Add accumulates v into element (r, c).
func (m *Dense) Add(r, c int, v float64) { m.Data[r*m.Cols+c] += v }

// Row returns a view of row r.
func (m *Dense) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes dst = m · x. dst must have length m.Rows and must not
// alias x.
func (m *Dense) MulVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("linalg: MulVec dimension mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		var s float64
		for c, v := range row {
			s += v * x[c]
		}
		dst[r] = s
	}
}

// MulTransVec computes dst = mᵀ · x. dst must have length m.Cols.
func (m *Dense) MulTransVec(dst, x []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic("linalg: MulTransVec dimension mismatch")
	}
	Zero(dst)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		xr := x[r]
		for c, v := range row {
			dst[c] += v * xr
		}
	}
}

// Symmetrize replaces m by (m + mᵀ)/2. m must be square.
func (m *Dense) Symmetrize() {
	if m.Rows != m.Cols {
		panic("linalg: Symmetrize requires a square matrix")
	}
	for r := 0; r < m.Rows; r++ {
		for c := r + 1; c < m.Cols; c++ {
			v := (m.At(r, c) + m.At(c, r)) / 2
			m.Set(r, c, v)
			m.Set(c, r, v)
		}
	}
}

// MaxAbs returns the largest absolute entry.
func (m *Dense) MaxAbs() float64 { return NormInf(m.Data) }

// Cholesky computes the lower-triangular Cholesky factor L of a symmetric
// positive-definite matrix (A = L·Lᵀ), returning an error if A is not
// positive definite. Only the lower triangle of a is referenced.
func Cholesky(a *Dense) (*Dense, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky requires square matrix, got %d×%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 {
			return nil, fmt.Errorf("linalg: matrix not positive definite at pivot %d (d=%g)", j, d)
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	return l, nil
}

// CholeskySolve solves A·x = b given the Cholesky factor L of A, writing the
// solution into a fresh slice.
func CholeskySolve(l *Dense, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("linalg: CholeskySolve dimension mismatch")
	}
	// Forward substitution L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// LU computes an LU factorization with partial pivoting in place, returning
// the pivot permutation. After return, a holds both factors (unit lower
// triangle implicit).
func LU(a *Dense) ([]int, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: LU requires square matrix, got %d×%d", a.Rows, a.Cols)
	}
	n := a.Rows
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot.
		p, maxv := k, math.Abs(a.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a.At(i, k)); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv == 0 {
			return nil, fmt.Errorf("linalg: LU singular at column %d", k)
		}
		if p != k {
			rk, rp := a.Row(k), a.Row(p)
			for c := range rk {
				rk[c], rp[c] = rp[c], rk[c]
			}
			piv[k], piv[p] = piv[p], piv[k]
		}
		pivot := a.At(k, k)
		for i := k + 1; i < n; i++ {
			m := a.At(i, k) / pivot
			a.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rkk := a.Row(i), a.Row(k)
			for c := k + 1; c < n; c++ {
				ri[c] -= m * rkk[c]
			}
		}
	}
	return piv, nil
}

// LUSolve solves A·x = b given the in-place LU factorization and pivots from
// LU, returning a fresh solution slice.
func LUSolve(lu *Dense, piv []int, b []float64) []float64 {
	n := lu.Rows
	if len(b) != n || len(piv) != n {
		panic("linalg: LUSolve dimension mismatch")
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[piv[i]]
	}
	// Forward: L·y = P·b (unit diagonal).
	for i := 1; i < n; i++ {
		s := x[i]
		ri := lu.Row(i)
		for k := 0; k < i; k++ {
			s -= ri[k] * x[k]
		}
		x[i] = s
	}
	// Backward: U·x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		ri := lu.Row(i)
		for k := i + 1; k < n; k++ {
			s -= ri[k] * x[k]
		}
		x[i] = s / ri[i]
	}
	return x
}
