package sparse

import "sort"

// CompactRows sorts the column indices within each row and sums duplicate
// entries, returning the compacted matrix. Rows are processed in parallel
// over nnz-balanced chunks; this is the finishing step of scatter-style
// assemblies that append unordered duplicated entries row by row.
func (m *CSR) CompactRows(workers int) *CSR {
	n := m.NRows
	newLen := make([]int32, n)
	type pair struct {
		c int32
		v float64
	}
	bounds := PartitionByWork(m.RowPtr, 0, n, workers)
	parallelChunks(bounds, workers, funcRunner(func(lo, hi int) {
		var buf []pair
		for r := lo; r < hi; r++ {
			start, end := m.RowPtr[r], m.RowPtr[r+1]
			buf = buf[:0]
			for p := start; p < end; p++ {
				buf = append(buf, pair{m.ColIdx[p], m.Vals[p]})
			}
			sort.Slice(buf, func(i, j int) bool { return buf[i].c < buf[j].c })
			// Merge duplicates in place back into the row segment.
			w := start
			for i := 0; i < len(buf); {
				c := buf[i].c
				v := buf[i].v
				for i++; i < len(buf) && buf[i].c == c; i++ {
					v += buf[i].v
				}
				m.ColIdx[w] = c
				m.Vals[w] = v
				w++
			}
			newLen[r] = w - start
		}
	}))
	// Compact the row segments into fresh arrays.
	outPtr := make([]int32, n+1)
	for r := 0; r < n; r++ {
		outPtr[r+1] = outPtr[r] + newLen[r]
	}
	nnz := int(outPtr[n])
	outCol := make([]int32, nnz)
	outVal := make([]float64, nnz)
	parallelChunks(bounds, workers, funcRunner(func(lo, hi int) {
		for r := lo; r < hi; r++ {
			src := m.RowPtr[r]
			dst := outPtr[r]
			ln := newLen[r]
			copy(outCol[dst:dst+ln], m.ColIdx[src:src+ln])
			copy(outVal[dst:dst+ln], m.Vals[src:src+ln])
		}
	}))
	return &CSR{NRows: m.NRows, NCols: m.NCols, RowPtr: outPtr, ColIdx: outCol, Vals: outVal}
}
