package sparse

import "sync"

// Runner is a parallel kernel over contiguous index chunks. It is an
// interface rather than a func so a caller can dispatch a preallocated op
// struct through a Pool without allocating a closure per call — the
// requirement of the allocation-free solver hot loops.
type Runner interface {
	// RunRange processes indices [lo, hi).
	RunRange(lo, hi int)
}

// poolTask is one chunk of a Run. It travels by value through the task
// channel, so dispatch never allocates.
type poolTask struct {
	lo, hi int32
	r      Runner
}

// Pool is a resident gang of worker goroutines for repeated parallel
// kernels. Spawning goroutines per operation allocates (closures, stacks)
// and that cost recurs every iteration of an iterative solver; a Pool pays
// it once. A Pool serves one Run at a time — it is meant to be owned by a
// single solve (via solver.Workspace), not shared. Close releases the
// goroutines; a pool is not usable after Close.
type Pool struct {
	workers int
	tasks   chan poolTask
	// wg counts in-flight chunks of the current Run. A WaitGroup rather
	// than a completion channel: the gang must never block on reporting
	// completion, or a Run with more chunks than channel capacity would
	// deadlock against the caller still submitting.
	wg sync.WaitGroup
}

// NewPool creates a pool with the given total parallelism: workers−1
// resident goroutines plus the calling goroutine, which participates in
// every Run. workers ≤ 1 creates a degenerate pool whose Run executes
// serially (no goroutines are started).
//
//stressvet:gang -- workers-1 resident pool goroutines, reused by every Run and joined on Close
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.tasks = make(chan poolTask, workers)
		for i := 0; i < workers-1; i++ {
			// The channel travels as an argument so the goroutine never
			// reads the struct field, which Close overwrites.
			go p.worker(p.tasks)
		}
	}
	return p
}

// Workers returns the pool's total parallelism (gang + caller).
func (p *Pool) Workers() int { return p.workers }

//stressvet:noalloc
func (p *Pool) worker(tasks <-chan poolTask) {
	for t := range tasks {
		t.r.RunRange(int(t.lo), int(t.hi))
		p.wg.Done()
	}
}

// Run executes r over each [bounds[i], bounds[i+1]) chunk, distributing
// chunks across the gang and returning when every chunk has completed. The
// calling goroutine is a full participant: when the task channel is full it
// runs the chunk itself instead of blocking, so a Run with many more chunks
// than workers still gets the gang's full parallelism plus the caller. It
// performs no allocation.
//
//stressvet:noalloc
func (p *Pool) Run(bounds []int32, r Runner) {
	n := len(bounds) - 1
	if n < 1 {
		return
	}
	if p.tasks == nil || n == 1 {
		for i := 0; i < n; i++ {
			r.RunRange(int(bounds[i]), int(bounds[i+1]))
		}
		return
	}
	for i := 0; i < n-1; i++ {
		p.wg.Add(1)
		t := poolTask{lo: bounds[i], hi: bounds[i+1], r: r}
		select {
		case p.tasks <- t:
		default:
			r.RunRange(int(t.lo), int(t.hi))
			p.wg.Done()
		}
	}
	r.RunRange(int(bounds[n-1]), int(bounds[n]))
	p.wg.Wait()
}

// Close stops the resident goroutines; a closed pool remains usable, with
// Run executing serially on the calling goroutine. Close must not race a
// Run and must not be called twice.
func (p *Pool) Close() {
	if p.tasks != nil {
		close(p.tasks)
		p.tasks = nil
	}
}

// MatVec is a pooled sparse matrix-vector product: dst = M·x over the row
// chunks fed to Pool.Run. The struct is meant to live in a reusable
// workspace — set the fields, pass &op to Run, no per-call allocation.
type MatVec struct {
	M      *CSR
	Dst, X []float64
}

// RunRange implements Runner over matrix rows.
//
//stressvet:noalloc
func (o *MatVec) RunRange(lo, hi int) {
	m := o.M
	for r := lo; r < hi; r++ {
		var s float64
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			s += m.Vals[p] * o.X[m.ColIdx[p]]
		}
		o.Dst[r] = s
	}
}
