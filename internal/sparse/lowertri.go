package sparse

import "fmt"

// LowerTri is a sparse lower-triangular matrix stored for fast repeated
// solves of L·y = b and Lᵀ·z = y — the application of an incomplete-Cholesky
// preconditioner. Both triangles are kept row-major (the upper arrays are
// exactly the CSC storage of L, i.e. Lᵀ in CSR), so each solve is a gather
// over finished entries: row r of the forward solve reads only rows < r,
// row r of the backward solve only rows > r. Rows that do not depend on one
// another are grouped into dependency levels (Fwd, Bwd) computed once from
// the sparsity pattern; rows within a level can be solved concurrently, and
// because every row is computed by the same gather in the same order
// regardless of scheduling, the parallel solves are bitwise identical to
// the serial ones. A LowerTri is immutable after construction and safe to
// share across concurrent solves (each caller brings its own TriScratch).
type LowerTri struct {
	N int
	// Row-major lower triangle: columns ascending, diagonal last in each row.
	RowPtr, ColIdx []int32
	Vals           []float64
	// Row-major upper triangle Lᵀ (= CSC of L): diagonal first in each row.
	UpPtr, UpIdx []int32
	UpVals       []float64
	// Fwd and Bwd are the dependency schedules of the forward (rows
	// ascending) and backward (rows descending) solves.
	Fwd, Bwd *LevelSchedule
}

// NewLowerTriFromCSC builds a LowerTri from the CSC lower triangle produced
// by an incomplete factorization. Each column must be sorted by row with the
// diagonal entry first.
func NewLowerTriFromCSC(l *CSC) (*LowerTri, error) {
	if l.NRows != l.NCols {
		return nil, fmt.Errorf("sparse: LowerTri requires a square matrix, got %d×%d", l.NRows, l.NCols)
	}
	n := l.NCols
	for j := 0; j < n; j++ {
		if l.ColPtr[j] == l.ColPtr[j+1] || l.RowIdx[l.ColPtr[j]] != int32(j) {
			return nil, fmt.Errorf("sparse: LowerTri missing diagonal at column %d", j)
		}
	}
	t := &LowerTri{
		N: n,
		// The CSC arrays are row-major storage of Lᵀ: column j of L is row j
		// of the upper triangle, diagonal first. Shared, not copied.
		UpPtr: l.ColPtr, UpIdx: l.RowIdx, UpVals: l.Vals,
	}
	// Transpose into row-major lower storage. Iterating columns ascending
	// keeps columns sorted within each row, so the diagonal lands last.
	nnz := l.NNZ()
	t.RowPtr = make([]int32, n+1)
	for _, r := range l.RowIdx {
		t.RowPtr[r+1]++
	}
	for i := 0; i < n; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	t.ColIdx = make([]int32, nnz)
	t.Vals = make([]float64, nnz)
	next := make([]int32, n)
	copy(next, t.RowPtr[:n])
	for j := 0; j < n; j++ {
		for p := l.ColPtr[j]; p < l.ColPtr[j+1]; p++ {
			r := l.RowIdx[p]
			q := next[r]
			t.ColIdx[q] = int32(j)
			t.Vals[q] = l.Vals[p]
			next[r] = q + 1
		}
	}
	t.buildSchedules()
	return t, nil
}

// MemoryBytes estimates the storage footprint (both triangles + schedules).
func (t *LowerTri) MemoryBytes() int64 {
	b := int64(len(t.RowPtr)+len(t.ColIdx)+len(t.UpPtr)+len(t.UpIdx))*4 +
		int64(len(t.Vals)+len(t.UpVals))*8
	for _, s := range []*LevelSchedule{t.Fwd, t.Bwd} {
		if s != nil {
			b += int64(len(s.Order)+len(s.LevelPtr)+len(s.Chunks)+len(s.LevelChunk)) * 4
		}
	}
	return b
}

// lowerRow computes one row of the forward solve: dst[r] = (b[r] − Σ_{c<r}
// L[r,c]·dst[c]) / L[r,r]. dst and b may be the same slice. This single
// kernel serves the serial and the parallel path, which is what makes them
// bitwise identical.
//
//stressvet:noalloc
func (t *LowerTri) lowerRow(dst, b []float64, r int32) {
	end := t.RowPtr[r+1] - 1 // diagonal is last
	s := b[r]
	for p := t.RowPtr[r]; p < end; p++ {
		s -= t.Vals[p] * dst[t.ColIdx[p]]
	}
	dst[r] = s / t.Vals[end]
}

// upperRow computes one row of the backward solve: dst[r] = (b[r] − Σ_{c>r}
// Lᵀ[r,c]·dst[c]) / L[r,r]. dst and b may be the same slice.
//
//stressvet:noalloc
func (t *LowerTri) upperRow(dst, b []float64, r int32) {
	pj := t.UpPtr[r] // diagonal is first
	s := b[r]
	for p := pj + 1; p < t.UpPtr[r+1]; p++ {
		s -= t.UpVals[p] * dst[t.UpIdx[p]]
	}
	dst[r] = s / t.UpVals[pj]
}

// SolveLower solves L·dst = b serially in row order (the reference the
// level-scheduled path must match bitwise). dst and b may alias.
//
//stressvet:noalloc
func (t *LowerTri) SolveLower(dst, b []float64) {
	for r := 0; r < t.N; r++ {
		t.lowerRow(dst, b, int32(r))
	}
}

// SolveUpper solves Lᵀ·dst = b serially in reverse row order. dst and b may
// alias.
//
//stressvet:noalloc
func (t *LowerTri) SolveUpper(dst, b []float64) {
	for r := t.N - 1; r >= 0; r-- {
		t.upperRow(dst, b, int32(r))
	}
}

// TriScratch carries the per-caller state of the parallel triangular solves
// (the dispatched op struct), so a cached, shared LowerTri needs no internal
// mutable state and pooled solves allocate nothing. A TriScratch must not be
// used by two solves concurrently; the zero value is ready to use.
type TriScratch struct {
	op triRun
}

// triRun is the Runner of one level: it solves the scheduled rows
// order[lo:hi] with the lower or upper row kernel.
type triRun struct {
	t     *LowerTri
	order []int32
	dst   []float64
	b     []float64
	upper bool
}

// RunRange implements Runner over positions in the level order.
//
//stressvet:noalloc
func (o *triRun) RunRange(lo, hi int) {
	if o.upper {
		for i := lo; i < hi; i++ {
			o.t.upperRow(o.dst, o.b, o.order[i])
		}
		return
	}
	for i := lo; i < hi; i++ {
		o.t.lowerRow(o.dst, o.b, o.order[i])
	}
}

// SolveLowerPar solves L·dst = b with the forward level schedule: levels run
// in order, rows within a level in parallel across at most workers
// goroutines (through pool when non-nil — allocation-free — or spawned
// otherwise). Levels too narrow to pay for fan-out run inline serially, and
// a schedule with no parallelizable level at all falls back to the plain
// serial loop. Results are bitwise identical to SolveLower for every worker
// count. sc may be nil when pool is nil. dst and b may alias.
//
//stressvet:noalloc
func (t *LowerTri) SolveLowerPar(dst, b []float64, workers int, pool *Pool, sc *TriScratch) {
	t.solvePar(t.Fwd, dst, b, false, workers, pool, sc)
}

// SolveUpperPar solves Lᵀ·dst = b with the backward level schedule; see
// SolveLowerPar.
//
//stressvet:noalloc
func (t *LowerTri) SolveUpperPar(dst, b []float64, workers int, pool *Pool, sc *TriScratch) {
	t.solvePar(t.Bwd, dst, b, true, workers, pool, sc)
}

//stressvet:noalloc
func (t *LowerTri) solvePar(s *LevelSchedule, dst, b []float64, upper bool, workers int, pool *Pool, sc *TriScratch) {
	if workers <= 1 || !s.parallel {
		if upper {
			t.SolveUpper(dst, b)
		} else {
			t.SolveLower(dst, b)
		}
		return
	}
	scratch := sc
	if scratch == nil {
		scratch = new(TriScratch) //stressvet:allow noalloc -- fallback when the caller passes no scratch; pooled hot paths always do
	}
	// A plain pointer dispatched through the Runner interface: no closures,
	// so the allocation-free pooled path stays allocation-free (a captured
	// variable cell would be heap-allocated on every call, serial included).
	op := &scratch.op
	*op = triRun{t: t, order: s.Order, dst: dst, b: b, upper: upper}
	for l := 0; l < s.NumLevels(); l++ {
		bounds := s.levelBounds(l)
		if len(bounds) == 2 {
			// Single chunk: too little work in this level to fan out.
			op.RunRange(int(bounds[0]), int(bounds[1]))
			continue
		}
		if pool != nil {
			pool.Run(bounds, op)
		} else {
			parallelChunks(bounds, workers, op)
		}
	}
	*op = triRun{}
}

// LevelSchedule groups the rows of a triangular solve into dependency
// levels: every row in level k depends only on rows in levels < k, so the
// rows of one level can be solved concurrently. Levels are separated by
// barriers; within each level the rows are pre-split into nnz-balanced
// chunks (PartitionByWork granularity), computed once at construction.
type LevelSchedule struct {
	// Order lists the rows grouped by level, ascending within each level.
	Order []int32
	// LevelPtr bounds each level in Order (len = levels+1).
	LevelPtr []int32
	// Chunks holds, per level, nnz-balanced chunk boundaries as positions in
	// Order; level l's bounds are Chunks[LevelChunk[l] : LevelChunk[l+1]+1].
	// Level boundaries are always chunk boundaries, so the slices share
	// endpoints.
	Chunks     []int32
	LevelChunk []int32
	// parallel records whether any level was split into more than one chunk;
	// when false the schedule is pure overhead and solves stay serial.
	parallel bool
}

// NumLevels returns the number of dependency levels.
func (s *LevelSchedule) NumLevels() int { return len(s.LevelPtr) - 1 }

// MaxWidth returns the row count of the widest level — the schedule's
// available parallelism. Narrow schedules (every level under the chunking
// cutoff) run serially no matter how many workers are offered; the solver's
// auto ordering rule keys off this number. Zero for an empty schedule.
func (s *LevelSchedule) MaxWidth() int {
	var w int32
	for l := 0; l < s.NumLevels(); l++ {
		if d := s.LevelPtr[l+1] - s.LevelPtr[l]; d > w {
			w = d
		}
	}
	return int(w)
}

// levelBounds returns the chunk boundaries of level l.
func (s *LevelSchedule) levelBounds(l int) []int32 {
	return s.Chunks[s.LevelChunk[l] : s.LevelChunk[l+1]+1]
}

// levelChunkWork is the minimum nnz a chunk should carry, ~4× the work that
// pays for one pool dispatch: chunks below it cost more in scheduling than
// they recover in parallelism, so narrow levels collapse to a single chunk
// and run inline. Deep, narrow dependency DAGs (bandwidth-ordered factors,
// the reduced global matrices in natural lattice order) therefore fall back
// to the serial loop wholesale — see docs/SOLVER_TUNING.md.
const levelChunkWork = 2048

// maxLevelChunks caps the fan-out of one level.
const maxLevelChunks = 64

// buildSchedules computes the forward and backward level schedules from the
// factor's sparsity.
func (t *LowerTri) buildSchedules() {
	n := t.N
	level := make([]int32, n)
	// Forward: row r depends on its off-diagonal columns (all < r).
	for r := 0; r < n; r++ {
		var lv int32
		for p := t.RowPtr[r]; p < t.RowPtr[r+1]-1; p++ {
			if d := level[t.ColIdx[p]] + 1; d > lv {
				lv = d
			}
		}
		level[r] = lv
	}
	t.Fwd = newLevelSchedule(level, t.RowPtr)
	// Backward: row r of Lᵀ depends on its off-diagonal columns (all > r).
	for r := n - 1; r >= 0; r-- {
		var lv int32
		for p := t.UpPtr[r] + 1; p < t.UpPtr[r+1]; p++ {
			if d := level[t.UpIdx[p]] + 1; d > lv {
				lv = d
			}
		}
		level[r] = lv
	}
	t.Bwd = newLevelSchedule(level, t.UpPtr)
}

// newLevelSchedule counting-sorts the rows by level (preserving natural row
// order within a level, which keeps the parallel gather deterministic) and
// pre-splits each level into nnz-balanced chunks using rowPtr as the work
// profile. Level ids need not be contiguous: empty levels are compacted away
// here, so every emitted level — and therefore every chunk — holds at least
// one row (the dependency propagation of buildSchedules never leaves gaps,
// but schedules built from externally supplied level arrays, e.g. coloring
// classes, may).
func newLevelSchedule(level []int32, rowPtr []int32) *LevelSchedule {
	return newLevelScheduleScaled(level, rowPtr, 1)
}

// newLevelScheduleScaled is newLevelSchedule with a per-entry work scale:
// blocked schedules pass tile pointers with unitWork 9 (scalar entries per
// tile), so the levelChunkWork calibration — tuned in scalar-entry units —
// carries over to tiled sweeps unchanged and chunks stay balanced by actual
// flops rather than raw pointer deltas.
func newLevelScheduleScaled(level []int32, rowPtr []int32, unitWork int32) *LevelSchedule {
	n := len(level)
	var maxLv int32 = -1
	for _, lv := range level {
		if lv > maxLv {
			maxLv = lv
		}
	}
	// Count rows per raw level, then remap the non-empty levels densely.
	count := make([]int32, maxLv+1)
	for _, lv := range level {
		count[lv]++
	}
	remap := make([]int32, maxLv+1)
	var nlevels int32
	for lv, c := range count {
		if c == 0 {
			remap[lv] = -1
			continue
		}
		remap[lv] = nlevels
		nlevels++
	}
	s := &LevelSchedule{
		Order:    make([]int32, n),
		LevelPtr: make([]int32, nlevels+1),
	}
	for lv, c := range count {
		if c > 0 {
			s.LevelPtr[remap[lv]+1] = c
		}
	}
	for l := int32(0); l < nlevels; l++ {
		s.LevelPtr[l+1] += s.LevelPtr[l]
	}
	next := make([]int32, nlevels)
	copy(next, s.LevelPtr[:nlevels])
	for r := 0; r < n; r++ {
		lv := remap[level[r]]
		s.Order[next[lv]] = int32(r)
		next[lv]++
	}
	// Work prefix over the scheduled order: pw[i+1]−pw[i] = work of Order[i].
	pw := make([]int32, n+1)
	for i, r := range s.Order {
		pw[i+1] = pw[i] + unitWork*(rowPtr[r+1]-rowPtr[r])
	}
	s.LevelChunk = make([]int32, nlevels+1)
	for l := int32(0); l < nlevels; l++ {
		lo, hi := int(s.LevelPtr[l]), int(s.LevelPtr[l+1])
		work := int(pw[hi] - pw[lo])
		parts := work / levelChunkWork
		if parts > maxLevelChunks {
			parts = maxLevelChunks
		}
		if parts < 1 {
			parts = 1
		}
		bounds := partitionByWork(nil, pw, lo, hi, parts)
		if len(bounds) > 2 {
			s.parallel = true
		}
		s.LevelChunk[l] = int32(len(s.Chunks))
		s.Chunks = append(s.Chunks, bounds[:len(bounds)-1]...)
	}
	s.LevelChunk[nlevels] = int32(len(s.Chunks))
	s.Chunks = append(s.Chunks, int32(n))
	return s
}
