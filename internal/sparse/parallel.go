package sparse

import (
	"sync"
	"sync/atomic"
)

// MinParRows is the matrix size below which the parallel kernels fall back
// to their serial loops: under it the goroutine fan-out costs more than the
// arithmetic it distributes. Exported so solver workspaces apply the same
// cutoff to their pooled kernels.
const MinParRows = 4096

// PartitionByWork splits the index range [lo, hi) into at most parts
// contiguous chunks balanced by cumulative work, where pref is a prefix-sum
// profile (pref[i+1]−pref[i] is the work of index i — CSR.RowPtr is exactly
// such a profile with work = nnz per row). The returned boundaries are
// strictly increasing, starting at lo and ending at hi; empty chunks are
// never emitted, so the result may hold fewer than parts chunks, and a
// degenerate range (hi ≤ lo) yields no boundaries at all — zero chunks,
// which every dispatcher in this package treats as a no-op. Structured
// FEM matrices have heavy boundary rows, so equal-count row chunks can be
// 2× imbalanced where equal-nnz chunks are not; every parallel row sweep in
// this package (MulVecPar, the level-scheduled triangular solves) partitions
// through here.
func PartitionByWork(pref []int32, lo, hi, parts int) []int32 {
	return partitionByWork(nil, pref, lo, hi, parts)
}

// PartitionByWorkInto is PartitionByWork appending into dst's backing array,
// for callers (the allocation-free solver hot loops) that re-partition every
// solve without allocating.
func PartitionByWorkInto(dst []int32, pref []int32, lo, hi, parts int) []int32 {
	return partitionByWork(dst, pref, lo, hi, parts)
}

// partitionByWork is PartitionByWork appending into dst (reused across calls
// by the allocation-free solver hot loops).
func partitionByWork(dst []int32, pref []int32, lo, hi, parts int) []int32 {
	dst = dst[:0]
	if hi <= lo {
		return dst
	}
	if parts > hi-lo {
		parts = hi - lo
	}
	if parts < 1 {
		parts = 1
	}
	dst = append(dst, int32(lo))
	total := int64(pref[hi] - pref[lo])
	prev := lo
	for k := 1; k < parts; k++ {
		target := pref[lo] + int32(total*int64(k)/int64(parts))
		// Smallest boundary i in (prev, hi) with pref[i] >= target.
		i := prev + 1
		j := hi
		for i < j {
			mid := int(uint(i+j) >> 1)
			if pref[mid] < target {
				i = mid + 1
			} else {
				j = mid
			}
		}
		if i >= hi {
			break
		}
		if i > prev {
			dst = append(dst, int32(i))
			prev = i
		}
	}
	return append(dst, int32(hi))
}

// funcRunner adapts a plain chunk function to the Runner interface.
type funcRunner func(lo, hi int)

// RunRange implements Runner.
func (f funcRunner) RunRange(lo, hi int) { f(lo, hi) }

// parallelChunks runs r over each [bounds[i], bounds[i+1]) chunk using at
// most workers goroutines (including the caller), waiting for completion.
// Chunks are claimed through an atomic cursor so a worker finishing early
// steals the remainder. This is the spawn-per-call dispatch; hot loops use
// a resident Pool instead.
//
//stressvet:gang -- workers-1 goroutines; the caller participates as the last worker
func parallelChunks(bounds []int32, workers int, r Runner) {
	n := len(bounds) - 1
	if n < 1 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			r.RunRange(int(bounds[i]), int(bounds[i+1]))
		}
		return
	}
	var next atomic.Int32
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			r.RunRange(int(bounds[i]), int(bounds[i+1]))
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 0; w < workers-1; w++ {
		go func() {
			defer wg.Done()
			run()
		}()
	}
	run()
	wg.Wait()
}
