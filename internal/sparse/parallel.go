package sparse

import "sync"

// parallelRows splits [0, n) into nworkers contiguous chunks and runs fn on
// each concurrently, waiting for completion.
func parallelRows(n, nworkers int, fn func(lo, hi int)) {
	if nworkers > n {
		nworkers = n
	}
	if nworkers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + nworkers - 1) / nworkers
	for w := 0; w < nworkers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
