package sparse

import "sort"

// CSC is a compressed sparse column matrix, the natural layout for sparse
// Cholesky factorization.
type CSC struct {
	NRows, NCols int
	ColPtr       []int32 // len NCols+1
	RowIdx       []int32 // len nnz, sorted ascending within each column
	Vals         []float64
}

// NNZ returns the number of stored entries.
func (m *CSC) NNZ() int { return len(m.Vals) }

// ToCSC converts a CSR matrix to CSC. Because CSR row-major with sorted
// columns transposed yields column-major with sorted rows, this is the
// transpose kernel with dimensions swapped back.
func (m *CSR) ToCSC() *CSC {
	t := m.Transpose() // t is CSR of mᵀ: rows of t are columns of m.
	return &CSC{
		NRows: m.NRows, NCols: m.NCols,
		ColPtr: t.RowPtr, RowIdx: t.ColIdx, Vals: t.Vals,
	}
}

// ToCSR converts back to CSR form.
func (m *CSC) ToCSR() *CSR {
	// A CSC matrix reinterpreted as CSR describes the transpose; transpose
	// again to recover row-major storage of the original.
	asCSR := &CSR{NRows: m.NCols, NCols: m.NRows, RowPtr: m.ColPtr, ColIdx: m.RowIdx, Vals: m.Vals}
	return asCSR.Transpose()
}

// LowerTriangle returns the lower triangle (including diagonal) of a
// symmetric matrix in CSC form, which is the input format for Cholesky.
func (m *CSC) LowerTriangle() *CSC {
	ptr := make([]int32, m.NCols+1)
	for c := 0; c < m.NCols; c++ {
		for p := m.ColPtr[c]; p < m.ColPtr[c+1]; p++ {
			if m.RowIdx[p] >= int32(c) {
				ptr[c+1]++
			}
		}
	}
	for i := 0; i < m.NCols; i++ {
		ptr[i+1] += ptr[i]
	}
	nnz := int(ptr[m.NCols])
	rows := make([]int32, nnz)
	vals := make([]float64, nnz)
	k := 0
	for c := 0; c < m.NCols; c++ {
		for p := m.ColPtr[c]; p < m.ColPtr[c+1]; p++ {
			if m.RowIdx[p] >= int32(c) {
				rows[k] = m.RowIdx[p]
				vals[k] = m.Vals[p]
				k++
			}
		}
	}
	return &CSC{NRows: m.NRows, NCols: m.NCols, ColPtr: ptr, RowIdx: rows, Vals: vals}
}

// Permute returns P·m·Pᵀ for the symmetric permutation perm, where
// perm[old] = new. Row indices within each column are re-sorted.
func (m *CSC) Permute(perm []int32) *CSC {
	if m.NRows != m.NCols || len(perm) != m.NCols {
		panic("sparse: Permute requires square matrix and full permutation")
	}
	n := m.NCols
	inv := make([]int32, n)
	for old, nw := range perm {
		inv[nw] = int32(old)
	}
	ptr := make([]int32, n+1)
	for newC := 0; newC < n; newC++ {
		oldC := inv[newC]
		ptr[newC+1] = ptr[newC] + (m.ColPtr[oldC+1] - m.ColPtr[oldC])
	}
	nnz := int(ptr[n])
	rows := make([]int32, nnz)
	vals := make([]float64, nnz)
	for newC := 0; newC < n; newC++ {
		oldC := inv[newC]
		k := ptr[newC]
		for p := m.ColPtr[oldC]; p < m.ColPtr[oldC+1]; p++ {
			rows[k] = perm[m.RowIdx[p]]
			vals[k] = m.Vals[p]
			k++
		}
		// Re-sort this column by row index.
		seg := int(ptr[newC])
		end := int(ptr[newC+1])
		idx := rows[seg:end]
		vv := vals[seg:end]
		sortPairs(idx, vv)
	}
	return &CSC{NRows: n, NCols: n, ColPtr: ptr, RowIdx: rows, Vals: vals}
}

// sortPairs sorts idx ascending, permuting vv in lockstep.
func sortPairs(idx []int32, vv []float64) {
	sort.Sort(pairSorter{idx, vv})
}

type pairSorter struct {
	idx []int32
	vv  []float64
}

func (s pairSorter) Len() int           { return len(s.idx) }
func (s pairSorter) Less(i, j int) bool { return s.idx[i] < s.idx[j] }
func (s pairSorter) Swap(i, j int) {
	s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
	s.vv[i], s.vv[j] = s.vv[j], s.vv[i]
}
