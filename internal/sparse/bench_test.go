package sparse

import (
	"math/rand"
	"runtime"
	"testing"
)

func benchCSR(n, nnzPerRow int) *CSR {
	rng := rand.New(rand.NewSource(1))
	t := NewTriplet(n, n, n*nnzPerRow)
	for r := 0; r < n; r++ {
		for k := 0; k < nnzPerRow; k++ {
			t.Add(r, rng.Intn(n), rng.NormFloat64())
		}
	}
	return t.ToCSR()
}

func BenchmarkSpMVSerial(b *testing.B) {
	m := benchCSR(100000, 27)
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = float64(i % 7)
	}
	dst := make([]float64, m.NRows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, x)
	}
}

func BenchmarkSpMVParallel(b *testing.B) {
	m := benchCSR(100000, 27)
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = float64(i % 7)
	}
	dst := make([]float64, m.NRows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecPar(dst, x, 8)
	}
}

// nodeBlockCSR builds a 3-DoF node-blocked matrix over a 2D 9-point node
// stencil with dense 3×3 tiles — the reduced-global sparsity BCSR targets.
func nodeBlockCSR(nx, ny int) *CSR {
	rng := rand.New(rand.NewSource(5))
	nodes := nx * ny
	t := NewTriplet(nodes*BlockSize, nodes*BlockSize, nodes*9*BlockSize*BlockSize)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			node := y*nx + x
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					xx, yy := x+dx, y+dy
					if xx < 0 || xx >= nx || yy < 0 || yy >= ny {
						continue
					}
					other := yy*nx + xx
					for i := 0; i < BlockSize; i++ {
						for j := 0; j < BlockSize; j++ {
							v := rng.NormFloat64()
							if node == other && i == j {
								v = 50 // dominant diagonal, same pattern either way
							}
							t.Add(node*BlockSize+i, other*BlockSize+j, v)
						}
					}
				}
			}
		}
	}
	return t.ToCSR()
}

// BenchmarkBlockedMulVec compares the scalar CSR mat-vec against the
// 3×3-tiled BCSR one on a node-blocked matrix (120×120 nodes, 43200 rows,
// ~1.16M nnz): one index per tile instead of per scalar is ~1/3 the index
// traffic, and the unrolled tile kernel keeps three running sums. Run with
// -cpu 1,4: the serial rows isolate the kernel, the par rows add the
// nnz-balanced fan-out (which partitions by block-nnz on the tiled path).
func BenchmarkBlockedMulVec(b *testing.B) {
	m := nodeBlockCSR(120, 120)
	bm, err := NewBCSR(m)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	dst := make([]float64, m.NRows)
	workers := runtime.GOMAXPROCS(0)
	b.Run("scalar/serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.MulVec(dst, x)
		}
	})
	b.Run("blocked/serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bm.MulVec(dst, x)
		}
	})
	b.Run("scalar/par", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.MulVecPar(dst, x, workers)
		}
	})
	b.Run("blocked/par", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bm.MulVecPar(dst, x, workers)
		}
	})
}

func BenchmarkTripletToCSR(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const n, e = 50000, 500000
	rows := make([]int, e)
	cols := make([]int, e)
	vals := make([]float64, e)
	for i := 0; i < e; i++ {
		rows[i], cols[i], vals[i] = rng.Intn(n), rng.Intn(n), rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := NewTriplet(n, n, e)
		for j := 0; j < e; j++ {
			t.Add(rows[j], cols[j], vals[j])
		}
		_ = t.ToCSR()
	}
}

func BenchmarkTranspose(b *testing.B) {
	m := benchCSR(50000, 27)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Transpose()
	}
}
