package sparse

import (
	"math/rand"
	"testing"
)

func benchCSR(n, nnzPerRow int) *CSR {
	rng := rand.New(rand.NewSource(1))
	t := NewTriplet(n, n, n*nnzPerRow)
	for r := 0; r < n; r++ {
		for k := 0; k < nnzPerRow; k++ {
			t.Add(r, rng.Intn(n), rng.NormFloat64())
		}
	}
	return t.ToCSR()
}

func BenchmarkSpMVSerial(b *testing.B) {
	m := benchCSR(100000, 27)
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = float64(i % 7)
	}
	dst := make([]float64, m.NRows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, x)
	}
}

func BenchmarkSpMVParallel(b *testing.B) {
	m := benchCSR(100000, 27)
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = float64(i % 7)
	}
	dst := make([]float64, m.NRows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecPar(dst, x, 8)
	}
}

func BenchmarkTripletToCSR(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const n, e = 50000, 500000
	rows := make([]int, e)
	cols := make([]int, e)
	vals := make([]float64, e)
	for i := 0; i < e; i++ {
		rows[i], cols[i], vals[i] = rng.Intn(n), rng.Intn(n), rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := NewTriplet(n, n, e)
		for j := 0; j < e; j++ {
			t.Add(rows[j], cols[j], vals[j])
		}
		_ = t.ToCSR()
	}
}

func BenchmarkTranspose(b *testing.B) {
	m := benchCSR(50000, 27)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Transpose()
	}
}
