package sparse

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// blockCSR builds a random n×n CSR with n divisible by BlockSize, via the
// same triplet path assembly uses.
func blockCSR(n, nnzPerRow int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	t := NewTriplet(n, n, n*nnzPerRow)
	for r := 0; r < n; r++ {
		t.Add(r, r, float64(nnzPerRow)+1) // keep every row non-empty
		for k := 0; k < nnzPerRow-1; k++ {
			t.Add(r, rng.Intn(n), rng.NormFloat64())
		}
	}
	return t.ToCSR()
}

// partialBlockCSR stresses zero-fill: one scalar entry per row, scattered so
// most 3×3 tiles hold a single value and eight explicit zeros.
func partialBlockCSR(n int) *CSR {
	t := NewTriplet(n, n, n)
	for r := 0; r < n; r++ {
		t.Add(r, (r*7+3)%n, float64(r%5)+1)
	}
	return t.ToCSR()
}

// blockDiagCSR builds a block-diagonal matrix of dense 3×3 tiles — exactly
// one, fully dense, tile per block row.
func blockDiagCSR(nb int) *CSR {
	t := NewTriplet(nb*BlockSize, nb*BlockSize, nb*BlockSize*BlockSize)
	for b := 0; b < nb; b++ {
		for i := 0; i < BlockSize; i++ {
			for j := 0; j < BlockSize; j++ {
				v := float64(i*BlockSize+j) + 1
				if i == j {
					v += 10
				}
				t.Add(b*BlockSize+i, b*BlockSize+j, v)
			}
		}
	}
	return t.ToCSR()
}

func infNorm(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

func TestNewBCSRRejectsBadDims(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {6, 4}, {4, 6}, {1, 1}} {
		tr := NewTriplet(dims[0], dims[1], 1)
		tr.Add(0, 0, 1)
		if _, err := NewBCSR(tr.ToCSR()); err == nil {
			t.Errorf("%dx%d accepted, want divisibility error", dims[0], dims[1])
		}
	}
}

// TestBCSRMatchesScalarMulVec is the tolerance-equivalence contract of the
// blocked matvec: tiles accumulate three products at a time, so the result
// is not bitwise equal to scalar CSR, but must agree to rounding noise on
// every shape — random fill, partial tiles, single-tile rows.
func TestBCSRMatchesScalarMulVec(t *testing.T) {
	cases := map[string]*CSR{
		"random-999":       blockCSR(999, 9, 11),
		"random-dense-300": blockCSR(300, 40, 12),
		"partial-tiles":    partialBlockCSR(600),
		"single-tile-rows": blockDiagCSR(150),
		"one-block":        blockDiagCSR(1),
	}
	rng := rand.New(rand.NewSource(21))
	for name, m := range cases {
		b, err := NewBCSR(m)
		if err != nil {
			t.Fatalf("%s: NewBCSR: %v", name, err)
		}
		if b.ScalarNNZ != int(m.RowPtr[m.NRows]) {
			t.Errorf("%s: ScalarNNZ = %d, want %d", name, b.ScalarNNZ, m.RowPtr[m.NRows])
		}
		x := make([]float64, m.NCols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, m.NRows)
		m.MulVec(want, x)
		got := make([]float64, m.NRows)
		b.MulVec(got, x)
		tol := 1e-10 * (1 + infNorm(want))
		for i := range want {
			if d := got[i] - want[i]; d > tol || d < -tol {
				t.Fatalf("%s: dst[%d] = %g, want %g (|Δ| > %g)", name, i, got[i], want[i], tol)
			}
		}
	}
}

// TestBCSRZeroFill pins the tile padding semantics: entries absent from the
// scalar matrix must be explicit zeros in their tile, so padded positions
// contribute exactly nothing (not stale garbage) to the matvec.
func TestBCSRZeroFill(t *testing.T) {
	m := partialBlockCSR(60)
	b, err := NewBCSR(m)
	if err != nil {
		t.Fatal(err)
	}
	present := make(map[[2]int32]bool, b.ScalarNNZ)
	for r := int32(0); r < int32(m.NRows); r++ {
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			present[[2]int32{r, m.ColIdx[p]}] = true
		}
	}
	nonzero := 0
	for br := 0; br < b.NBRows(); br++ {
		for q := b.BRowPtr[br]; q < b.BRowPtr[br+1]; q++ {
			bc := b.BColIdx[q]
			for i := 0; i < BlockSize; i++ {
				for j := 0; j < BlockSize; j++ {
					v := b.Vals[9*int(q)+i*BlockSize+j]
					r, c := int32(br*BlockSize+i), bc*int32(BlockSize)+int32(j)
					if v != 0 {
						nonzero++
						if !present[[2]int32{r, c}] {
							t.Fatalf("tile (%d,%d) has value %g at (%d,%d), absent from scalar matrix", br, bc, v, r, c)
						}
					} else if present[[2]int32{r, c}] && v == 0 {
						// A stored zero is fine; just keep counting.
						nonzero++
					}
				}
			}
		}
	}
	if nonzero != b.ScalarNNZ {
		t.Errorf("tiles hold %d stored scalar entries, want %d", nonzero, b.ScalarNNZ)
	}
	if f := b.Fill(); f <= 0 || f > 3.0/9.0+1e-15 {
		t.Errorf("partial-tile fill = %g, want in (0, 1/3]", f)
	}
}

func TestBCSRFillAndMemory(t *testing.T) {
	dense := blockDiagCSR(40)
	b, err := NewBCSR(dense)
	if err != nil {
		t.Fatal(err)
	}
	if f := b.Fill(); f != 1 {
		t.Errorf("dense-tile fill = %g, want 1", f)
	}
	if b.NNZBlocks() != 40 {
		t.Errorf("NNZBlocks = %d, want 40", b.NNZBlocks())
	}
	if b.MemoryBytes() <= 0 {
		t.Errorf("MemoryBytes = %d, want > 0", b.MemoryBytes())
	}
}

// TestBCSRMulVecParBitwiseMatchesSerial: partitioning never splits a block
// row, so every worker count and dispatch mode must reproduce the serial
// blocked matvec bit for bit. The matrix clears MinParRows so the parallel
// path actually engages.
func TestBCSRMulVecParBitwiseMatchesSerial(t *testing.T) {
	m := blockCSR(3*((MinParRows+3000)/3), 9, 31)
	b, err := NewBCSR(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, m.NRows)
	b.MulVec(want, x)
	check := func(mode string, workers int, got []float64) {
		t.Helper()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s workers=%d: dst[%d] = %x, want %x (not bitwise equal)", mode, workers, i, got[i], want[i])
			}
		}
	}
	for _, w := range []int{1, 2, runtime.GOMAXPROCS(0), 8} {
		got := make([]float64, m.NRows)
		b.MulVecPar(got, x, w)
		check("spawn", w, got)

		// The pooled path the solver Workspace drives: explicit chunk
		// bounds through a resident pool.
		pool := NewPool(w)
		for _, parts := range []int{1, 3, 16} {
			for i := range got {
				got[i] = -1
			}
			op := &BlockMatVec{M: b, Dst: got, X: x}
			pool.Run(PartitionByWork(b.BRowPtr, 0, b.NBRows(), parts), op)
			check("pool", w, got)
		}
		pool.Close()
	}
}

// TestBCSRPartitionWeighsBlockRows: PartitionByWork over BRowPtr balances by
// tiles per block row, so a single dense block row among light rows must be
// isolated in its own chunk — the blocked analogue of the scalar heavy-row
// regression, covering the degenerate single-tile-row shape around it.
func TestBCSRPartitionWeighsBlockRows(t *testing.T) {
	const nb = 100
	n := nb * BlockSize
	tr := NewTriplet(n, n, n+3*n)
	for i := 0; i < n; i++ {
		tr.Add(i, i, 2) // light: one diagonal tile per block row
	}
	for i := n - BlockSize; i < n; i++ { // heavy: last block row dense
		for j := 0; j < n; j++ {
			tr.Add(i, j, 0.25)
		}
	}
	m := tr.ToCSR()
	b, err := NewBCSR(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := int(b.BRowPtr[nb] - b.BRowPtr[nb-1]); got != nb {
		t.Fatalf("heavy block row holds %d tiles, want %d", got, nb)
	}
	bounds := PartitionByWork(b.BRowPtr, 0, b.NBRows(), 4)
	if int(bounds[len(bounds)-2]) != nb-1 {
		t.Fatalf("heavy block row not isolated: bounds %v", bounds)
	}
	// And the partitioned matvec still matches the serial one bitwise.
	rng := rand.New(rand.NewSource(33))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	b.MulVec(want, x)
	got := make([]float64, n)
	pool := NewPool(4)
	defer pool.Close()
	pool.Run(bounds, &BlockMatVec{M: b, Dst: got, X: x})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dst[%d] = %x, want %x (not bitwise equal)", i, got[i], want[i])
		}
	}
}

// blockTris builds the blocked-factor test set: the lowertri_test.go shapes
// at dimensions divisible by BlockSize.
func blockTris(t *testing.T) map[string]*LowerTri {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	cases := map[string]*CSC{
		"random-300":    randLowerCSC(rng, 300, 6),
		"random-3000":   randLowerCSC(rng, 3000, 12),
		"diagonal":      diagCSC(501),
		"dense-row":     denseLastRowCSC(402),
		"serial-chain":  chainCSC(300),
		"single-block":  diagCSC(3),
		"random-sparse": randLowerCSC(rng, 801, 2),
	}
	out := make(map[string]*LowerTri, len(cases))
	for name, csc := range cases {
		tri, err := NewLowerTriFromCSC(csc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = tri
	}
	return out
}

func TestNewBlockLowerTriRejectsBadDims(t *testing.T) {
	tri, err := NewLowerTriFromCSC(chainCSC(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBlockLowerTri(tri, false); err == nil {
		t.Error("N=4 accepted, want divisibility error")
	}
	if _, err := NewBlockLowerTri(tri, true); err == nil {
		t.Error("N=4 accepted in single precision, want divisibility error")
	}
}

// TestBlockLowerTriMatchesScalar: the float64 blocked solves regroup the
// same products as the scalar reference (three columns per tile instead of
// one), so they agree to rounding noise on every factor shape.
func TestBlockLowerTriMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for name, tri := range blockTris(t) {
		bt, err := NewBlockLowerTri(tri, false)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if bt.Single() {
			t.Fatalf("%s: double-precision factor reports Single()", name)
		}
		n := tri.N
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		for dir, solves := range map[string][2]func([]float64, []float64){
			"lower": {tri.SolveLower, bt.SolveLower},
			"upper": {tri.SolveUpper, bt.SolveUpper},
		} {
			want := make([]float64, n)
			solves[0](want, b)
			got := make([]float64, n)
			solves[1](got, b)
			tol := 1e-9 * (1 + infNorm(want))
			for i := range want {
				if d := got[i] - want[i]; d > tol || d < -tol {
					t.Fatalf("%s %s: dst[%d] = %g, want %g (|Δ| > %g)", name, dir, i, got[i], want[i], tol)
				}
			}
		}
	}
}

// TestBlockLowerTriSingleMatchesRoundedScalar: the float32 factor stores
// tile values rounded to single precision but accumulates in float64, so it
// must track a scalar float64 solve of the *rounded* factor to grouping
// noise — this isolates the storage rounding from the kernel itself, and
// holds even on ill-conditioned factors where comparing against the
// unrounded solve would need a condition-number-sized tolerance.
func TestBlockLowerTriSingleMatchesRoundedScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	cases := map[string]*CSC{
		"random-300":   randLowerCSC(rng, 300, 6),
		"diagonal":     diagCSC(501),
		"dense-row":    denseLastRowCSC(402),
		"serial-chain": chainCSC(300),
	}
	for name, csc := range cases {
		tri, err := NewLowerTriFromCSC(csc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		bt, err := NewBlockLowerTri(tri, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bt.Single() {
			t.Fatalf("%s: single-precision factor does not report Single()", name)
		}
		// Scalar reference over the same rounded values.
		rounded := &CSC{NRows: csc.NRows, NCols: csc.NCols, ColPtr: csc.ColPtr,
			RowIdx: csc.RowIdx, Vals: make([]float64, len(csc.Vals))}
		for i, v := range csc.Vals {
			rounded.Vals[i] = float64(float32(v))
		}
		rtri, err := NewLowerTriFromCSC(rounded)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		n := tri.N
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		for dir, solves := range map[string][2]func([]float64, []float64){
			"lower": {rtri.SolveLower, bt.SolveLower},
			"upper": {rtri.SolveUpper, bt.SolveUpper},
		} {
			want := make([]float64, n)
			solves[0](want, b)
			got := make([]float64, n)
			solves[1](got, b)
			tol := 1e-9 * (1 + infNorm(want))
			for i := range want {
				if d := got[i] - want[i]; d > tol || d < -tol {
					t.Fatalf("%s %s: dst[%d] = %g, want %g (|Δ| > %g)", name, dir, i, got[i], want[i], tol)
				}
			}
		}
	}
}

// TestBlockLowerTriParBitwiseMatchesSerial is the blocked analogue of the
// scalar level-scheduling contract: the parallel sweeps share the serial row
// kernels, so every worker count, dispatch mode, and precision must be
// bitwise identical to the serial blocked solve.
func TestBlockLowerTriParBitwiseMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0), 8}
	for name, tri := range blockTris(t) {
		for _, single := range []bool{false, true} {
			bt, err := NewBlockLowerTri(tri, single)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			prec := "f64"
			if single {
				prec = "f32"
			}
			n := tri.N
			b := make([]float64, n)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			wantL := make([]float64, n)
			bt.SolveLower(wantL, b)
			wantU := make([]float64, n)
			bt.SolveUpper(wantU, b)
			check := func(mode string, workers int, got, want []float64) {
				t.Helper()
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s/%s %s workers=%d: dst[%d] = %x, want %x (not bitwise equal)",
							name, prec, mode, workers, i, got[i], want[i])
					}
				}
			}
			for _, w := range workerCounts {
				got := make([]float64, n)
				bt.SolveLowerPar(got, b, w, nil, nil)
				check("lower/spawn", w, got, wantL)
				bt.SolveUpperPar(got, b, w, nil, nil)
				check("upper/spawn", w, got, wantU)

				pool := NewPool(w)
				var sc BlockTriScratch
				bt.SolveLowerPar(got, b, w, pool, &sc)
				check("lower/pool", w, got, wantL)
				bt.SolveUpperPar(got, b, w, pool, &sc)
				check("upper/pool", w, got, wantU)
				pool.Close()
			}
			inPlace := make([]float64, n)
			copy(inPlace, b)
			bt.SolveLowerPar(inPlace, inPlace, 4, nil, nil)
			check("lower/in-place", 4, inPlace, wantL)
		}
	}
}

// TestBlockScheduleWeighsTiles pins the unitWork=9 calibration: a block
// diagonal with 500 tiles carries 4500 scalar-entry units of work per level
// and must pre-split for parallel sweeps, while the scalar schedule of the
// same 1500-row factor (1500 units) stays serial. Without the scale the
// blocked schedule would count 500 raw pointer units and collapse too.
func TestBlockScheduleWeighsTiles(t *testing.T) {
	tri, err := NewLowerTriFromCSC(diagCSC(1500))
	if err != nil {
		t.Fatal(err)
	}
	bt, err := NewBlockLowerTri(tri, false)
	if err != nil {
		t.Fatal(err)
	}
	if tri.Fwd.parallel {
		t.Error("scalar diagonal-1500 schedule claims to be parallelizable")
	}
	if !bt.Fwd.parallel || !bt.Bwd.parallel {
		t.Error("blocked diagonal-1500 schedule is not parallelizable; tile work not scaled by 9")
	}
	if bt.Fwd.NumLevels() != 1 || bt.Bwd.NumLevels() != 1 {
		t.Errorf("blocked diagonal: %d/%d levels, want 1/1", bt.Fwd.NumLevels(), bt.Bwd.NumLevels())
	}
}

// TestBlockLowerTriMemoryHalvedBySingle: the float32 factor stores the same
// tiles in half the value bytes; index and schedule overhead is unchanged.
func TestBlockLowerTriMemoryHalvedBySingle(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	tri, err := NewLowerTriFromCSC(randLowerCSC(rng, 900, 8))
	if err != nil {
		t.Fatal(err)
	}
	double, err := NewBlockLowerTri(tri, false)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewBlockLowerTri(tri, true)
	if err != nil {
		t.Fatal(err)
	}
	saved := double.MemoryBytes() - single.MemoryBytes()
	want := 4 * int64(len(double.Vals)+len(double.UpVals))
	if saved != want {
		t.Errorf("single precision saves %d bytes, want %d (half the value arrays)", saved, want)
	}
	if single.MemoryBytes() >= double.MemoryBytes() {
		t.Errorf("single (%d bytes) not smaller than double (%d bytes)", single.MemoryBytes(), double.MemoryBytes())
	}
}
