package sparse

import (
	"math/rand"
	"runtime"
	"testing"
)

// randLowerCSC builds a random n×n lower-triangular CSC matrix with unit-ish
// positive diagonal (diagonal first in each column, rows ascending), the
// storage contract of the incomplete-Cholesky factor.
func randLowerCSC(rng *rand.Rand, n, extraPerCol int) *CSC {
	l := &CSC{NRows: n, NCols: n, ColPtr: make([]int32, n+1)}
	for j := 0; j < n; j++ {
		rows := map[int]bool{}
		for k := 0; k < extraPerCol; k++ {
			if r := j + 1 + rng.Intn(n-j); r < n {
				rows[r] = true
			}
		}
		l.RowIdx = append(l.RowIdx, int32(j))
		l.Vals = append(l.Vals, 1+rng.Float64())
		for r := j + 1; r < n; r++ {
			if rows[r] {
				l.RowIdx = append(l.RowIdx, int32(r))
				l.Vals = append(l.Vals, rng.NormFloat64())
			}
		}
		l.ColPtr[j+1] = int32(len(l.Vals))
	}
	return l
}

// diagCSC builds a pure diagonal matrix (single dependency level).
func diagCSC(n int) *CSC {
	l := &CSC{NRows: n, NCols: n, ColPtr: make([]int32, n+1)}
	for j := 0; j < n; j++ {
		l.RowIdx = append(l.RowIdx, int32(j))
		l.Vals = append(l.Vals, float64(j%7)+1)
		l.ColPtr[j+1] = int32(j + 1)
	}
	return l
}

// denseLastRowCSC builds an arrow shape: diagonal plus one dense final row.
func denseLastRowCSC(n int) *CSC {
	l := &CSC{NRows: n, NCols: n, ColPtr: make([]int32, n+1)}
	for j := 0; j < n; j++ {
		l.RowIdx = append(l.RowIdx, int32(j))
		l.Vals = append(l.Vals, 2)
		if j < n-1 {
			l.RowIdx = append(l.RowIdx, int32(n-1))
			l.Vals = append(l.Vals, 0.5)
		}
		l.ColPtr[j+1] = int32(len(l.Vals))
	}
	return l
}

// chainCSC builds a bidiagonal chain: every row depends on the previous one,
// so there is no parallelism at all (n levels of width 1).
func chainCSC(n int) *CSC {
	l := &CSC{NRows: n, NCols: n, ColPtr: make([]int32, n+1)}
	for j := 0; j < n; j++ {
		l.RowIdx = append(l.RowIdx, int32(j))
		l.Vals = append(l.Vals, 3)
		if j+1 < n {
			l.RowIdx = append(l.RowIdx, int32(j+1))
			l.Vals = append(l.Vals, -1)
		}
		l.ColPtr[j+1] = int32(len(l.Vals))
	}
	return l
}

func TestPartitionByWork(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		pref := make([]int32, n+1)
		for i := 0; i < n; i++ {
			w := int32(rng.Intn(50))
			if rng.Intn(10) == 0 {
				w = 3000 // heavy row
			}
			pref[i+1] = pref[i] + w
		}
		lo := rng.Intn(n)
		hi := lo + 1 + rng.Intn(n-lo)
		parts := 1 + rng.Intn(12)
		b := PartitionByWork(pref, lo, hi, parts)
		if int(b[0]) != lo || int(b[len(b)-1]) != hi {
			t.Fatalf("bounds %v do not span [%d,%d)", b, lo, hi)
		}
		if len(b)-1 > parts {
			t.Fatalf("got %d chunks, want ≤ %d", len(b)-1, parts)
		}
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				t.Fatalf("bounds %v not strictly increasing", b)
			}
		}
	}
}

func TestPartitionByWorkBalancesHeavyRows(t *testing.T) {
	// 63 light rows + 1 heavy row carrying half the work: a row-count split
	// would put the heavy row with 15 light ones; a work split must isolate
	// the tail so no chunk greatly exceeds the ideal share.
	n := 64
	pref := make([]int32, n+1)
	for i := 0; i < n; i++ {
		w := int32(10)
		if i == n-1 {
			w = 630
		}
		pref[i+1] = pref[i] + w
	}
	b := PartitionByWork(pref, 0, n, 4)
	// The heavy final row must sit alone in the last chunk.
	if int(b[len(b)-2]) != n-1 {
		t.Fatalf("heavy row not isolated: bounds %v", b)
	}
}

func TestParallelChunksCoversAll(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		n := 1000
		hit := make([]int32, n)
		bounds := []int32{0, 100, 101, 500, 1000}
		parallelChunks(bounds, workers, funcRunner(func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hit[i]++
			}
		}))
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestPoolRun(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		p := NewPool(workers)
		m := benchCSR(500, 9)
		x := make([]float64, m.NCols)
		for i := range x {
			x[i] = float64(i%11) - 5
		}
		want := make([]float64, m.NRows)
		m.MulVec(want, x)
		op := &MatVec{M: m, Dst: make([]float64, m.NRows), X: x}
		// Repeated Runs through the same pool, varying chunk counts.
		for _, parts := range []int{1, 2, 7, 16} {
			for i := range op.Dst {
				op.Dst[i] = -1
			}
			p.Run(PartitionByWork(m.RowPtr, 0, m.NRows, parts), op)
			for i := range want {
				if op.Dst[i] != want[i] {
					t.Fatalf("workers=%d parts=%d: dst[%d]=%g want %g", workers, parts, i, op.Dst[i], want[i])
				}
			}
		}
		p.Close()
	}
}

func lowerTris(t *testing.T) map[string]*LowerTri {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	cases := map[string]*CSC{
		"random-200":    randLowerCSC(rng, 200, 6),
		"random-3000":   randLowerCSC(rng, 3000, 12),
		"diagonal":      diagCSC(500),
		"dense-row":     denseLastRowCSC(400),
		"serial-chain":  chainCSC(300),
		"single":        diagCSC(1),
		"random-sparse": randLowerCSC(rng, 800, 2),
	}
	out := make(map[string]*LowerTri, len(cases))
	for name, csc := range cases {
		tri, err := NewLowerTriFromCSC(csc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = tri
	}
	return out
}

// TestLowerTriSolvesInverse checks the serial reference solves against the
// definition: L·(SolveLower(b)) must reproduce b, and likewise for Lᵀ.
func TestLowerTriSolvesInverse(t *testing.T) {
	for name, tri := range lowerTris(t) {
		// A fresh per-case rng: map iteration order is random, so drawing b
		// from one shared stream made each case's data — and its rounding —
		// depend on the order, which intermittently pushed the largest system
		// just past tolerance.
		rng := rand.New(rand.NewSource(5))
		n := tri.N
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		y := make([]float64, n)
		tri.SolveLower(y, b)
		// Multiply back: (L·y)[r] = Σ_c L[r,c]·y[c].
		for r := 0; r < n; r++ {
			var s float64
			for p := tri.RowPtr[r]; p < tri.RowPtr[r+1]; p++ {
				s += tri.Vals[p] * y[tri.ColIdx[p]]
			}
			if d := s - b[r]; d > 1e-9 || d < -1e-9 {
				t.Errorf("%s: (L·y)[%d] = %g, want %g", name, r, s, b[r])
				break
			}
		}
		z := make([]float64, n)
		tri.SolveUpper(z, b)
		for r := 0; r < n; r++ {
			var s float64
			for p := tri.UpPtr[r]; p < tri.UpPtr[r+1]; p++ {
				s += tri.UpVals[p] * z[tri.UpIdx[p]]
			}
			if d := s - b[r]; d > 1e-9 || d < -1e-9 {
				t.Errorf("%s: (Lᵀ·z)[%d] = %g, want %g", name, r, s, b[r])
				break
			}
		}
	}
}

// TestLowerTriParBitwiseMatchesSerial is the level-scheduling correctness
// contract: for every matrix shape, worker count, and dispatch mode (spawn
// and pool), the parallel solves must be bitwise identical to the serial
// reference — the row kernel is shared, only the schedule differs.
func TestLowerTriParBitwiseMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0), 8}
	for name, tri := range lowerTris(t) {
		n := tri.N
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		wantL := make([]float64, n)
		tri.SolveLower(wantL, b)
		wantU := make([]float64, n)
		tri.SolveUpper(wantU, b)
		check := func(mode string, workers int, got []float64, want []float64) {
			t.Helper()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s %s workers=%d: dst[%d] = %x, want %x (not bitwise equal)",
						name, mode, workers, i, got[i], want[i])
				}
			}
		}
		for _, w := range workerCounts {
			got := make([]float64, n)
			tri.SolveLowerPar(got, b, w, nil, nil)
			check("lower/spawn", w, got, wantL)
			tri.SolveUpperPar(got, b, w, nil, nil)
			check("upper/spawn", w, got, wantU)

			pool := NewPool(w)
			var sc TriScratch
			tri.SolveLowerPar(got, b, w, pool, &sc)
			check("lower/pool", w, got, wantL)
			tri.SolveUpperPar(got, b, w, pool, &sc)
			check("upper/pool", w, got, wantU)
			pool.Close()
		}
		// In-place: dst aliasing b must give the same bits.
		inPlace := make([]float64, n)
		copy(inPlace, b)
		tri.SolveLowerPar(inPlace, inPlace, 4, nil, nil)
		check("lower/in-place", 4, inPlace, wantL)
	}
}

// TestLevelScheduleRespectsDependencies checks the schedule invariant: every
// off-diagonal entry of a row must reference a row placed in a strictly
// earlier level.
func TestLevelScheduleRespectsDependencies(t *testing.T) {
	for name, tri := range lowerTris(t) {
		for dir, s := range map[string]*LevelSchedule{"fwd": tri.Fwd, "bwd": tri.Bwd} {
			if len(s.Order) != tri.N {
				t.Fatalf("%s %s: order holds %d rows, want %d", name, dir, len(s.Order), tri.N)
			}
			levelOf := make([]int, tri.N)
			seen := make([]bool, tri.N)
			for l := 0; l < s.NumLevels(); l++ {
				for i := s.LevelPtr[l]; i < s.LevelPtr[l+1]; i++ {
					r := s.Order[i]
					if seen[r] {
						t.Fatalf("%s %s: row %d scheduled twice", name, dir, r)
					}
					seen[r] = true
					levelOf[r] = l
				}
			}
			for r := 0; r < tri.N; r++ {
				if dir == "fwd" {
					for p := tri.RowPtr[r]; p < tri.RowPtr[r+1]-1; p++ {
						if dep := tri.ColIdx[p]; levelOf[dep] >= levelOf[r] {
							t.Fatalf("%s fwd: row %d (level %d) depends on row %d (level %d)",
								name, r, levelOf[r], dep, levelOf[dep])
						}
					}
				} else {
					for p := tri.UpPtr[r] + 1; p < tri.UpPtr[r+1]; p++ {
						if dep := tri.UpIdx[p]; levelOf[dep] >= levelOf[r] {
							t.Fatalf("%s bwd: row %d (level %d) depends on row %d (level %d)",
								name, r, levelOf[r], dep, levelOf[dep])
						}
					}
				}
			}
		}
	}
}

// TestLevelScheduleShapes pins the schedule structure of the degenerate
// shapes: a diagonal matrix is one wide level, a serial chain is n levels of
// width 1 (and must report itself non-parallelizable so solves stay serial).
func TestLevelScheduleShapes(t *testing.T) {
	tris := lowerTris(t)
	if d := tris["diagonal"]; d.Fwd.NumLevels() != 1 || d.Bwd.NumLevels() != 1 {
		t.Errorf("diagonal: %d/%d levels, want 1/1", d.Fwd.NumLevels(), d.Bwd.NumLevels())
	}
	if c := tris["serial-chain"]; c.Fwd.NumLevels() != c.N {
		t.Errorf("chain: %d levels, want %d", c.Fwd.NumLevels(), c.N)
	} else if c.Fwd.parallel {
		t.Error("chain schedule claims to be parallelizable")
	}
	// Arrow: every row but the last is independent (level 0), the dense last
	// row depends on all of them (level 1).
	if a := tris["dense-row"]; a.Fwd.NumLevels() != 2 {
		t.Errorf("dense-row: %d forward levels, want 2", a.Fwd.NumLevels())
	}
}

func TestNewLowerTriRejectsBadInput(t *testing.T) {
	// Missing diagonal.
	l := &CSC{NRows: 2, NCols: 2, ColPtr: []int32{0, 1, 2}, RowIdx: []int32{1, 1}, Vals: []float64{1, 1}}
	if _, err := NewLowerTriFromCSC(l); err == nil {
		t.Error("missing diagonal accepted")
	}
	// Non-square.
	l = &CSC{NRows: 3, NCols: 2, ColPtr: []int32{0, 1, 2}, RowIdx: []int32{0, 1}, Vals: []float64{1, 1}}
	if _, err := NewLowerTriFromCSC(l); err == nil {
		t.Error("non-square accepted")
	}
}
