// Package sparse implements the sparse-matrix storage used by the
// MORE-Stress solvers: a triplet (COO) builder for finite-element assembly
// and compressed sparse row/column forms for matrix-vector products and
// factorization.
package sparse

import (
	"fmt"
	"sort"
)

// Triplet accumulates (row, col, value) entries; duplicates are summed when
// converting to compressed form, which is exactly the semantics of
// finite-element assembly.
type Triplet struct {
	NRows, NCols int
	rows, cols   []int32
	vals         []float64
}

// NewTriplet creates an empty triplet builder for an r×c matrix with
// capacity for nnz entries.
func NewTriplet(r, c, nnz int) *Triplet {
	return &Triplet{
		NRows: r, NCols: c,
		rows: make([]int32, 0, nnz),
		cols: make([]int32, 0, nnz),
		vals: make([]float64, 0, nnz),
	}
}

// Add appends entry (r, c) += v. Zero values are skipped.
func (t *Triplet) Add(r, c int, v float64) {
	if r < 0 || r >= t.NRows || c < 0 || c >= t.NCols {
		panic(fmt.Sprintf("sparse: Triplet.Add index (%d,%d) out of range %d×%d", r, c, t.NRows, t.NCols))
	}
	if v == 0 {
		return
	}
	t.rows = append(t.rows, int32(r))
	t.cols = append(t.cols, int32(c))
	t.vals = append(t.vals, v)
}

// Len returns the number of raw (pre-compression) entries.
func (t *Triplet) Len() int { return len(t.vals) }

// ToCSR compresses the triplets into CSR form, summing duplicates.
func (t *Triplet) ToCSR() *CSR {
	// Count entries per row.
	rowCount := make([]int32, t.NRows+1)
	for _, r := range t.rows {
		rowCount[r+1]++
	}
	for i := 0; i < t.NRows; i++ {
		rowCount[i+1] += rowCount[i]
	}
	// Scatter into row-bucketed arrays.
	n := len(t.vals)
	colIdx := make([]int32, n)
	vals := make([]float64, n)
	next := make([]int32, t.NRows)
	copy(next, rowCount[:t.NRows])
	for i := 0; i < n; i++ {
		r := t.rows[i]
		p := next[r]
		colIdx[p] = t.cols[i]
		vals[p] = t.vals[i]
		next[r] = p + 1
	}
	m := &CSR{NRows: t.NRows, NCols: t.NCols, RowPtr: rowCount, ColIdx: colIdx, Vals: vals}
	m.sortRowsAndSum()
	return m
}

// CSR is a compressed sparse row matrix.
type CSR struct {
	NRows, NCols int
	RowPtr       []int32 // len NRows+1
	ColIdx       []int32 // len nnz
	Vals         []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Vals) }

// sortRowsAndSum sorts column indices within each row and merges duplicates.
func (m *CSR) sortRowsAndSum() {
	outCol := m.ColIdx[:0]
	outVal := m.Vals[:0]
	newPtr := make([]int32, m.NRows+1)
	type pair struct {
		c int32
		v float64
	}
	var buf []pair
	for r := 0; r < m.NRows; r++ {
		start, end := m.RowPtr[r], m.RowPtr[r+1]
		buf = buf[:0]
		for p := start; p < end; p++ {
			buf = append(buf, pair{m.ColIdx[p], m.Vals[p]})
		}
		sort.Slice(buf, func(i, j int) bool { return buf[i].c < buf[j].c })
		for i := 0; i < len(buf); {
			c := buf[i].c
			v := buf[i].v
			j := i + 1
			for j < len(buf) && buf[j].c == c {
				v += buf[j].v
				j++
			}
			outCol = append(outCol, c)
			outVal = append(outVal, v)
			i = j
		}
		newPtr[r+1] = int32(len(outVal))
	}
	m.RowPtr = newPtr
	m.ColIdx = outCol
	m.Vals = outVal
}

// MulVec computes dst = m·x. dst must have length NRows and must not alias x.
//
//stressvet:noalloc
func (m *CSR) MulVec(dst, x []float64) {
	if len(x) != m.NCols || len(dst) != m.NRows {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch: matrix %d×%d, x %d, dst %d",
			m.NRows, m.NCols, len(x), len(dst)))
	}
	for r := 0; r < m.NRows; r++ {
		var s float64
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			s += m.Vals[p] * x[m.ColIdx[p]]
		}
		dst[r] = s
	}
}

// MulVecPar computes dst = m·x using at most nworkers goroutines over
// contiguous row chunks balanced by nnz (structured FEM matrices have heavy
// boundary rows, so equal-count chunks leave workers idle). It falls back to
// the serial kernel for small matrices.
func (m *CSR) MulVecPar(dst, x []float64, nworkers int) {
	if nworkers <= 1 || m.NRows < MinParRows {
		m.MulVec(dst, x)
		return
	}
	bounds := PartitionByWork(m.RowPtr, 0, m.NRows, nworkers)
	parallelChunks(bounds, nworkers, funcRunner(func(lo, hi int) {
		for r := lo; r < hi; r++ {
			var s float64
			for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
				s += m.Vals[p] * x[m.ColIdx[p]]
			}
			dst[r] = s
		}
	}))
}

// At returns element (r, c), 0 if not stored. O(log nnz(row)).
func (m *CSR) At(r, c int) float64 {
	lo, hi := int(m.RowPtr[r]), int(m.RowPtr[r+1])
	i := sort.Search(hi-lo, func(k int) bool { return m.ColIdx[lo+k] >= int32(c) }) + lo
	if i < hi && m.ColIdx[i] == int32(c) {
		return m.Vals[i]
	}
	return 0
}

// Diag extracts the main diagonal into a fresh slice (square matrices).
func (m *CSR) Diag() []float64 {
	if m.NRows != m.NCols {
		panic("sparse: Diag requires a square matrix")
	}
	d := make([]float64, m.NRows)
	for r := 0; r < m.NRows; r++ {
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			if int(m.ColIdx[p]) == r {
				d[r] = m.Vals[p]
				break
			}
		}
	}
	return d
}

// Transpose returns mᵀ as a new CSR matrix.
func (m *CSR) Transpose() *CSR {
	nnz := m.NNZ()
	ptr := make([]int32, m.NCols+1)
	for _, c := range m.ColIdx {
		ptr[c+1]++
	}
	for i := 0; i < m.NCols; i++ {
		ptr[i+1] += ptr[i]
	}
	col := make([]int32, nnz)
	val := make([]float64, nnz)
	next := make([]int32, m.NCols)
	copy(next, ptr[:m.NCols])
	for r := 0; r < m.NRows; r++ {
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			c := m.ColIdx[p]
			q := next[c]
			col[q] = int32(r)
			val[q] = m.Vals[p]
			next[c] = q + 1
		}
	}
	return &CSR{NRows: m.NCols, NCols: m.NRows, RowPtr: ptr, ColIdx: col, Vals: val}
}

// IsSymmetric reports whether m equals its transpose to within tol on every
// stored entry (absolute difference, relative to the max |entry|).
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.NRows != m.NCols {
		return false
	}
	t := m.Transpose()
	if t.NNZ() != m.NNZ() {
		return false
	}
	var maxAbs float64
	for _, v := range m.Vals {
		if a := abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	thr := tol * maxAbs
	for r := 0; r < m.NRows; r++ {
		if m.RowPtr[r] != t.RowPtr[r] {
			return false
		}
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			if m.ColIdx[p] != t.ColIdx[p] {
				return false
			}
			if abs(m.Vals[p]-t.Vals[p]) > thr {
				return false
			}
		}
	}
	return true
}

// Extract returns the submatrix m[rows, cols] as a new CSR, where keepRow and
// keepCol map old indices to new ones (-1 = dropped). nr and nc are the new
// dimensions.
func (m *CSR) Extract(keepRow, keepCol []int32, nr, nc int) *CSR {
	if len(keepRow) != m.NRows || len(keepCol) != m.NCols {
		panic("sparse: Extract mapping length mismatch")
	}
	t := NewTriplet(nr, nc, m.NNZ())
	for r := 0; r < m.NRows; r++ {
		rr := keepRow[r]
		if rr < 0 {
			continue
		}
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			cc := keepCol[m.ColIdx[p]]
			if cc < 0 {
				continue
			}
			t.Add(int(rr), int(cc), m.Vals[p])
		}
	}
	return t.ToCSR()
}

// Clone returns a deep copy of m.
func (m *CSR) Clone() *CSR {
	out := &CSR{
		NRows: m.NRows, NCols: m.NCols,
		RowPtr: make([]int32, len(m.RowPtr)),
		ColIdx: make([]int32, len(m.ColIdx)),
		Vals:   make([]float64, len(m.Vals)),
	}
	copy(out.RowPtr, m.RowPtr)
	copy(out.ColIdx, m.ColIdx)
	copy(out.Vals, m.Vals)
	return out
}

// MemoryBytes estimates the storage footprint of the matrix in bytes.
func (m *CSR) MemoryBytes() int64 {
	return int64(len(m.RowPtr))*4 + int64(len(m.ColIdx))*4 + int64(len(m.Vals))*8
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
