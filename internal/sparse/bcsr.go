package sparse

import "fmt"

// BlockSize is the tile edge of the blocked storage formats. The global
// stage's DoFs are 3-component node displacements, so every reduced global
// matrix (and its IC0 factor) has natural 3×3 node-block sparsity; the
// blocked kernels exploit it with one index per tile instead of one per
// scalar (~1/3 the index traffic) and fully unrolled dense 3×3 micro-kernels
// the compiler can keep in registers.
const BlockSize = 3

// BCSR is a block-compressed sparse row matrix with dense 3×3 tiles: the
// scalar CSR layout lifted to block granularity. Scalar entries absent from
// the CSR pattern but inside a stored tile are explicit zeros — they change
// nothing numerically (0·x terms) and buy the dense inner loop. A BCSR is
// immutable after construction and safe to share across concurrent products.
type BCSR struct {
	NRows, NCols int // scalar dimensions (multiples of BlockSize)
	// BRowPtr bounds each block row's tiles (len NRows/3+1).
	BRowPtr []int32
	// BColIdx is the block-column index of each tile, ascending per row.
	BColIdx []int32
	// Vals holds 9 scalars per tile, row-major.
	Vals []float64
	// ScalarNNZ is the stored-entry count of the source CSR matrix; the fill
	// ratio ScalarNNZ/(9·tiles) measures how much zero padding blocking cost.
	ScalarNNZ int
}

// NBRows returns the number of block rows.
func (m *BCSR) NBRows() int { return m.NRows / BlockSize }

// NNZBlocks returns the number of stored tiles.
func (m *BCSR) NNZBlocks() int { return len(m.BColIdx) }

// Fill returns the fraction of stored tile entries that came from the scalar
// pattern (1.0 = every tile fully dense, 1/9 = one scalar per tile). Callers
// use it to decide whether blocking pays: below ~0.5 the padded bytes eat
// the index-traffic win.
func (m *BCSR) Fill() float64 {
	if len(m.BColIdx) == 0 {
		return 1
	}
	return float64(m.ScalarNNZ) / float64(9*len(m.BColIdx))
}

// MemoryBytes estimates the storage footprint in bytes.
func (m *BCSR) MemoryBytes() int64 {
	return int64(len(m.BRowPtr)+len(m.BColIdx))*4 + int64(len(m.Vals))*8
}

// NewBCSR blocks a scalar CSR matrix into 3×3 tiles. Both dimensions must be
// multiples of BlockSize; entries are grouped by their block coordinates and
// missing tile entries are zero-filled.
func NewBCSR(m *CSR) (*BCSR, error) {
	if m.NRows%BlockSize != 0 || m.NCols%BlockSize != 0 {
		return nil, fmt.Errorf("sparse: BCSR requires dimensions divisible by %d, got %d×%d", BlockSize, m.NRows, m.NCols)
	}
	nbr := m.NRows / BlockSize
	nbc := m.NCols / BlockSize
	b := &BCSR{NRows: m.NRows, NCols: m.NCols, ScalarNNZ: m.NNZ()}
	b.BRowPtr = make([]int32, nbr+1)
	// Pass 1: count distinct block columns per block row. Scalar rows keep
	// their columns ascending, so a 3-way merge over the block row's scalar
	// rows with a last-seen stamp per row counts without a visited array.
	seen := make([]int32, nbc)
	for i := range seen {
		seen[i] = -1
	}
	for br := 0; br < nbr; br++ {
		var cnt int32
		for i := 0; i < BlockSize; i++ {
			r := BlockSize*br + i
			for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
				bc := m.ColIdx[p] / BlockSize
				if seen[bc] != int32(br) {
					seen[bc] = int32(br)
					cnt++
				}
			}
		}
		b.BRowPtr[br+1] = b.BRowPtr[br] + cnt
	}
	nt := int(b.BRowPtr[nbr])
	b.BColIdx = make([]int32, nt)
	b.Vals = make([]float64, 9*nt)
	// Pass 2: emit each block row's tile set in ascending block-column order
	// (merge of three ascending sequences), then scatter the scalar values
	// into their tiles.
	pos := make([]int32, nbc) // block col -> tile slot, valid for current row
	for br := 0; br < nbr; br++ {
		lo := b.BRowPtr[br]
		// Collect the distinct block columns (stamp with ^br to distinguish
		// from pass 1's stamps).
		cnt := lo
		for i := 0; i < BlockSize; i++ {
			r := BlockSize*br + i
			for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
				bc := m.ColIdx[p] / BlockSize
				if seen[bc] != ^int32(br) {
					seen[bc] = ^int32(br)
					b.BColIdx[cnt] = bc
					cnt++
				}
			}
		}
		sortInt32(b.BColIdx[lo:cnt])
		for q := lo; q < cnt; q++ {
			pos[b.BColIdx[q]] = q
		}
		for i := 0; i < BlockSize; i++ {
			r := BlockSize*br + i
			for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
				c := m.ColIdx[p]
				q := pos[c/BlockSize]
				b.Vals[9*q+int32(BlockSize*i)+c%BlockSize] = m.Vals[p]
			}
		}
	}
	return b, nil
}

// sortInt32 is an insertion sort for the short per-row block-column runs
// (structured FEM rows hold ≤ 9 block neighbors), avoiding sort.Slice's
// closure allocation in the construction path.
func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// MulVec computes dst = m·x with the blocked kernel: one tile GEMV per
// stored block, three independent accumulators per block row. dst must not
// alias x.
//
//stressvet:noalloc
func (m *BCSR) MulVec(dst, x []float64) {
	if len(x) != m.NCols || len(dst) != m.NRows {
		panic(fmt.Sprintf("sparse: BCSR MulVec dimension mismatch: matrix %d×%d, x %d, dst %d",
			m.NRows, m.NCols, len(x), len(dst)))
	}
	m.mulVecRange(dst, x, 0, m.NBRows())
}

// mulVecRange is the blocked mat-vec kernel over block rows [lo, hi); the
// serial, spawned, and pooled paths all run it, so their results are bitwise
// identical.
//
//stressvet:noalloc
func (m *BCSR) mulVecRange(dst, x []float64, lo, hi int) {
	for br := lo; br < hi; br++ {
		var s0, s1, s2 float64
		for p := m.BRowPtr[br]; p < m.BRowPtr[br+1]; p++ {
			c := m.BColIdx[p] * BlockSize
			t := m.Vals[9*p : 9*p+9 : 9*p+9]
			x0, x1, x2 := x[c], x[c+1], x[c+2]
			s0 += t[0]*x0 + t[1]*x1 + t[2]*x2
			s1 += t[3]*x0 + t[4]*x1 + t[5]*x2
			s2 += t[6]*x0 + t[7]*x1 + t[8]*x2
		}
		r := BlockSize * br
		dst[r] = s0
		dst[r+1] = s1
		dst[r+2] = s2
	}
}

// MulVecPar computes dst = m·x using at most nworkers goroutines over
// contiguous block-row chunks balanced by tile count (uniform 9-flop tiles,
// so tile count is the exact work profile — the blocked analogue of
// PartitionByWork's scalar-nnz weighting). Falls back to the serial kernel
// for small matrices.
func (m *BCSR) MulVecPar(dst, x []float64, nworkers int) {
	if nworkers <= 1 || m.NRows < MinParRows {
		m.MulVec(dst, x)
		return
	}
	bounds := PartitionByWork(m.BRowPtr, 0, m.NBRows(), nworkers)
	op := BlockMatVec{M: m, Dst: dst, X: x}
	parallelChunks(bounds, nworkers, &op)
}

// BlockMatVec is a pooled blocked matrix-vector product: dst = M·x over the
// block-row chunks fed to Pool.Run. Like MatVec, it lives in a reusable
// workspace so dispatch never allocates.
type BlockMatVec struct {
	M      *BCSR
	Dst, X []float64
}

// RunRange implements Runner over block rows.
//
//stressvet:noalloc
func (o *BlockMatVec) RunRange(lo, hi int) {
	o.M.mulVecRange(o.Dst, o.X, lo, hi)
}
