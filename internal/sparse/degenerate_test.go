package sparse

import "testing"

// TestPartitionByWorkDegenerate pins the degenerate-input contract: no
// partition ever emits an empty chunk — a zero-length range yields zero
// chunks, excess parts collapse, zero-work profiles still split into
// strictly increasing boundaries.
func TestPartitionByWorkDegenerate(t *testing.T) {
	pref := []int32{0, 2, 2, 2, 5, 9, 9, 14}
	check := func(name string, bounds []int32, lo, hi int) {
		t.Helper()
		if hi <= lo {
			if len(bounds) != 0 {
				t.Errorf("%s: empty range produced bounds %v", name, bounds)
			}
			return
		}
		if len(bounds) < 2 || bounds[0] != int32(lo) || bounds[len(bounds)-1] != int32(hi) {
			t.Fatalf("%s: bounds %v do not cover [%d, %d]", name, bounds, lo, hi)
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("%s: empty or inverted chunk at %d: %v", name, i, bounds)
			}
		}
	}
	check("empty-range", PartitionByWork(pref, 3, 3, 4), 3, 3)
	check("inverted-range", PartitionByWork(pref, 5, 2, 4), 5, 2)
	check("single-row", PartitionByWork(pref, 2, 3, 8), 2, 3)
	check("excess-parts", PartitionByWork(pref, 0, 7, 100), 0, 7)
	check("zero-parts", PartitionByWork(pref, 0, 7, 0), 0, 7)
	check("negative-parts", PartitionByWork(pref, 0, 7, -3), 0, 7)
	// Zero-work rows (pref flat across [1, 3)).
	check("zero-work", PartitionByWork(pref, 1, 3, 2), 1, 3)
	allZero := []int32{0, 0, 0, 0, 0}
	check("all-zero-work", PartitionByWork(allZero, 0, 4, 3), 0, 4)
	check("into-reuse", PartitionByWorkInto(make([]int32, 0, 8), pref, 0, 7, 3), 0, 7)
}

// TestLevelScheduleGappedLevels: schedules built from level arrays with
// holes (as a coloring with unused classes would produce) must compact the
// empty levels away instead of emitting empty chunk lists — the regression
// the multicolor fuzz corpus uncovered.
func TestLevelScheduleGappedLevels(t *testing.T) {
	// Rows at levels {0, 2, 5}: levels 1, 3, 4 are empty.
	level := []int32{0, 2, 5, 0, 2, 5, 0}
	rowPtr := []int32{0, 1, 3, 6, 7, 9, 12, 13}
	s := newLevelSchedule(level, rowPtr)
	if got := s.NumLevels(); got != 3 {
		t.Fatalf("NumLevels = %d, want 3 (empty levels compacted)", got)
	}
	if got := s.MaxWidth(); got != 3 {
		t.Errorf("MaxWidth = %d, want 3", got)
	}
	// Every level's chunk list must be non-empty and strictly increasing,
	// and all rows must appear exactly once in level order.
	seen := make([]bool, len(level))
	for l := 0; l < s.NumLevels(); l++ {
		b := s.levelBounds(l)
		if len(b) < 2 {
			t.Fatalf("level %d has no chunks: %v", l, b)
		}
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				t.Fatalf("level %d: empty or inverted chunk %v", l, b)
			}
		}
		for i := b[0]; i < b[len(b)-1]; i++ {
			r := s.Order[i]
			if seen[r] {
				t.Fatalf("row %d scheduled twice", r)
			}
			seen[r] = true
		}
	}
	for r, ok := range seen {
		if !ok {
			t.Fatalf("row %d never scheduled", r)
		}
	}
	// Rows must be grouped by ascending original level.
	wantOrder := []int32{0, 3, 6, 1, 4, 2, 5}
	for i, r := range s.Order {
		if r != wantOrder[i] {
			t.Fatalf("Order = %v, want %v", s.Order, wantOrder)
		}
	}
}

// TestLevelScheduleDegenerateShapes covers the shapes the fuzz corpus
// produces: empty schedules, all-diagonal factors (one level), and
// single-row levels.
func TestLevelScheduleDegenerateShapes(t *testing.T) {
	empty := newLevelSchedule(nil, []int32{0})
	if empty.NumLevels() != 0 || empty.MaxWidth() != 0 || empty.parallel {
		t.Errorf("empty schedule: levels=%d width=%d parallel=%v", empty.NumLevels(), empty.MaxWidth(), empty.parallel)
	}
	// All rows level 0 (diagonal factor).
	n := 10
	level := make([]int32, n)
	rowPtr := make([]int32, n+1)
	for i := range rowPtr {
		rowPtr[i] = int32(i)
	}
	diag := newLevelSchedule(level, rowPtr)
	if diag.NumLevels() != 1 || diag.MaxWidth() != n {
		t.Errorf("diagonal schedule: levels=%d width=%d, want 1, %d", diag.NumLevels(), diag.MaxWidth(), n)
	}
	// Strictly sequential chain: one row per level.
	for i := range level {
		level[i] = int32(i)
	}
	chain := newLevelSchedule(level, rowPtr)
	if chain.NumLevels() != n || chain.MaxWidth() != 1 || chain.parallel {
		t.Errorf("chain schedule: levels=%d width=%d parallel=%v", chain.NumLevels(), chain.MaxWidth(), chain.parallel)
	}
	for l := 0; l < chain.NumLevels(); l++ {
		if b := chain.levelBounds(l); len(b) != 2 || b[1]-b[0] != 1 {
			t.Fatalf("chain level %d bounds %v, want single 1-row chunk", l, b)
		}
	}
}
