package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// denseOf expands a CSR matrix to a dense row-major slice for comparison.
func denseOf(m *CSR) []float64 {
	d := make([]float64, m.NRows*m.NCols)
	for r := 0; r < m.NRows; r++ {
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			d[r*m.NCols+int(m.ColIdx[p])] += m.Vals[p]
		}
	}
	return d
}

func randTriplet(rng *rand.Rand, nr, nc, entries int) (*Triplet, []float64) {
	t := NewTriplet(nr, nc, entries)
	dense := make([]float64, nr*nc)
	for i := 0; i < entries; i++ {
		r, c := rng.Intn(nr), rng.Intn(nc)
		v := rng.NormFloat64()
		t.Add(r, c, v)
		dense[r*nc+c] += v
	}
	return t, dense
}

func TestTripletToCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr, dense := randTriplet(rng, 7, 5, 60)
	m := tr.ToCSR()
	got := denseOf(m)
	for i := range dense {
		if math.Abs(got[i]-dense[i]) > 1e-12 {
			t.Fatalf("entry %d: %g vs %g", i, got[i], dense[i])
		}
	}
	// Columns sorted and unique within each row.
	for r := 0; r < m.NRows; r++ {
		for p := m.RowPtr[r] + 1; p < m.RowPtr[r+1]; p++ {
			if m.ColIdx[p] <= m.ColIdx[p-1] {
				t.Fatalf("row %d not sorted/unique", r)
			}
		}
	}
}

func TestTripletDuplicateSummation(t *testing.T) {
	tr := NewTriplet(2, 2, 4)
	tr.Add(0, 0, 1)
	tr.Add(0, 0, 2)
	tr.Add(1, 1, -1)
	tr.Add(0, 0, 0) // zero skipped
	m := tr.ToCSR()
	if m.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2", m.NNZ())
	}
	if m.At(0, 0) != 3 || m.At(1, 1) != -1 || m.At(0, 1) != 0 {
		t.Errorf("wrong values: %v", m.Vals)
	}
}

func TestTripletOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewTriplet(2, 2, 1).Add(2, 0, 1)
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nr, nc := 1+r.Intn(20), 1+r.Intn(20)
		tr, dense := randTriplet(rng, nr, nc, r.Intn(3*nr*nc+1))
		m := tr.ToCSR()
		x := make([]float64, nc)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		got := make([]float64, nr)
		m.MulVec(got, x)
		for i := 0; i < nr; i++ {
			var want float64
			for j := 0; j < nc; j++ {
				want += dense[i*nc+j] * x[j]
			}
			if math.Abs(got[i]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMulVecParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr, _ := randTriplet(rng, 5000, 5000, 40000)
	m := tr.ToCSR()
	x := make([]float64, 5000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	serial := make([]float64, 5000)
	par := make([]float64, 5000)
	m.MulVec(serial, x)
	m.MulVecPar(par, x, 8)
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("parallel mismatch at %d", i)
		}
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr, dense := randTriplet(rng, 6, 9, 30)
	m := tr.ToCSR()
	mt := m.Transpose()
	if mt.NRows != 9 || mt.NCols != 6 {
		t.Fatalf("transpose dims %d×%d", mt.NRows, mt.NCols)
	}
	got := denseOf(mt)
	for r := 0; r < 6; r++ {
		for c := 0; c < 9; c++ {
			if math.Abs(got[c*6+r]-dense[r*9+c]) > 1e-12 {
				t.Fatalf("transpose mismatch at (%d,%d)", r, c)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr, _ := randTriplet(r, 1+r.Intn(15), 1+r.Intn(15), r.Intn(80))
		m := tr.ToCSR()
		tt := m.Transpose().Transpose()
		if tt.NRows != m.NRows || tt.NCols != m.NCols || tt.NNZ() != m.NNZ() {
			return false
		}
		for i := range m.Vals {
			if m.Vals[i] != tt.Vals[i] || m.ColIdx[i] != tt.ColIdx[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDiag(t *testing.T) {
	tr := NewTriplet(3, 3, 4)
	tr.Add(0, 0, 2)
	tr.Add(1, 2, 5)
	tr.Add(2, 2, 7)
	m := tr.ToCSR()
	d := m.Diag()
	if d[0] != 2 || d[1] != 0 || d[2] != 7 {
		t.Errorf("Diag: %v", d)
	}
}

func TestIsSymmetric(t *testing.T) {
	tr := NewTriplet(3, 3, 6)
	tr.Add(0, 1, 2)
	tr.Add(1, 0, 2)
	tr.Add(2, 2, 1)
	if !tr.ToCSR().IsSymmetric(1e-12) {
		t.Error("expected symmetric")
	}
	tr2 := NewTriplet(2, 2, 2)
	tr2.Add(0, 1, 1)
	if tr2.ToCSR().IsSymmetric(1e-12) {
		t.Error("expected asymmetric")
	}
}

func TestExtract(t *testing.T) {
	tr := NewTriplet(3, 3, 9)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			tr.Add(r, c, float64(10*r+c))
		}
	}
	m := tr.ToCSR()
	// Keep rows {0,2} and cols {1,2}.
	rowMap := []int32{0, -1, 1}
	colMap := []int32{-1, 0, 1}
	s := m.Extract(rowMap, colMap, 2, 2)
	if s.At(0, 0) != 1 || s.At(0, 1) != 2 || s.At(1, 0) != 21 || s.At(1, 1) != 22 {
		t.Errorf("Extract wrong: %v", denseOf(s))
	}
}

func TestCSCRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr, _ := randTriplet(r, 1+r.Intn(12), 1+r.Intn(12), r.Intn(60))
		m := tr.ToCSR()
		back := m.ToCSC().ToCSR()
		if back.NNZ() != m.NNZ() {
			return false
		}
		for i := range m.Vals {
			if m.Vals[i] != back.Vals[i] || m.ColIdx[i] != back.ColIdx[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLowerTriangle(t *testing.T) {
	tr := NewTriplet(3, 3, 9)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			tr.Add(r, c, 1)
		}
	}
	lt := tr.ToCSR().ToCSC().LowerTriangle()
	if lt.NNZ() != 6 {
		t.Fatalf("lower triangle nnz %d, want 6", lt.NNZ())
	}
	for c := 0; c < 3; c++ {
		for p := lt.ColPtr[c]; p < lt.ColPtr[c+1]; p++ {
			if lt.RowIdx[p] < int32(c) {
				t.Fatal("entry above diagonal")
			}
		}
	}
}

func TestPermute(t *testing.T) {
	// A 3×3 symmetric matrix permuted by reversal must equal the manual
	// reindexing.
	tr := NewTriplet(3, 3, 9)
	vals := [3][3]float64{{4, 1, 0}, {1, 5, 2}, {0, 2, 6}}
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if vals[r][c] != 0 {
				tr.Add(r, c, vals[r][c])
			}
		}
	}
	perm := []int32{2, 1, 0}
	pm := tr.ToCSR().ToCSC().Permute(perm).ToCSR()
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if pm.At(int(perm[r]), int(perm[c])) != vals[r][c] {
				t.Fatalf("permute mismatch at (%d,%d)", r, c)
			}
		}
	}
}

func TestMemoryBytes(t *testing.T) {
	tr := NewTriplet(2, 2, 1)
	tr.Add(0, 0, 1)
	m := tr.ToCSR()
	if m.MemoryBytes() <= 0 {
		t.Error("non-positive memory estimate")
	}
}

func TestClone(t *testing.T) {
	tr := NewTriplet(2, 2, 2)
	tr.Add(0, 0, 1)
	tr.Add(1, 1, 2)
	m := tr.ToCSR()
	c := m.Clone()
	c.Vals[0] = 99
	if m.Vals[0] == 99 {
		t.Error("Clone is shallow")
	}
}

func TestCompactRows(t *testing.T) {
	// Raw matrix with unordered duplicated entries per row.
	raw := &CSR{
		NRows: 2, NCols: 3,
		RowPtr: []int32{0, 4, 6},
		ColIdx: []int32{2, 0, 2, 1, 1, 1},
		Vals:   []float64{5, 1, -2, 4, 7, 3},
	}
	c := raw.CompactRows(2)
	if c.NNZ() != 4 {
		t.Fatalf("nnz %d, want 4", c.NNZ())
	}
	if c.At(0, 0) != 1 || c.At(0, 1) != 4 || c.At(0, 2) != 3 || c.At(1, 1) != 10 {
		t.Errorf("compacted values wrong: %v %v", c.ColIdx, c.Vals)
	}
	for r := 0; r < c.NRows; r++ {
		for p := c.RowPtr[r] + 1; p < c.RowPtr[r+1]; p++ {
			if c.ColIdx[p] <= c.ColIdx[p-1] {
				t.Fatal("row not sorted after compaction")
			}
		}
	}
}

func TestCompactRowsMatchesTriplet(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nr, nc := 1+r.Intn(10), 1+r.Intn(10)
		tr, dense := randTriplet(r, nr, nc, r.Intn(120))
		m := tr.ToCSR()
		// Build the same matrix as a raw duplicated CSR: one row segment per
		// row with the triplet entries in reverse order.
		_ = dense
		raw := &CSR{NRows: nr, NCols: nc, RowPtr: make([]int32, nr+1)}
		type ent struct {
			c int32
			v float64
		}
		rows := make([][]ent, nr)
		for i := 0; i < m.NRows; i++ {
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				// Split each entry into two halves to force duplicates.
				rows[i] = append(rows[i], ent{m.ColIdx[p], m.Vals[p] / 2})
				rows[i] = append(rows[i], ent{m.ColIdx[p], m.Vals[p] / 2})
			}
		}
		for i := 0; i < nr; i++ {
			raw.RowPtr[i+1] = raw.RowPtr[i] + int32(len(rows[i]))
			for j := len(rows[i]) - 1; j >= 0; j-- {
				raw.ColIdx = append(raw.ColIdx, rows[i][j].c)
				raw.Vals = append(raw.Vals, rows[i][j].v)
			}
		}
		c := raw.CompactRows(3)
		if c.NNZ() != m.NNZ() {
			return false
		}
		for i := range m.Vals {
			if c.ColIdx[i] != m.ColIdx[i] || math.Abs(c.Vals[i]-m.Vals[i]) > 1e-12*(1+math.Abs(m.Vals[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
