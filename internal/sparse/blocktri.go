package sparse

import "fmt"

// BlockLowerTri is the 3×3-tiled form of a LowerTri factor: both triangles
// regrouped into dense tiles (zero-filled where the scalar pattern is
// absent), with dependency levels scheduled over block rows instead of
// scalar rows. The forward/backward sweeps become small GEMV micro-kernels —
// one column index per tile instead of per scalar, unrolled 3×3 inner loops —
// which is where the blocked apply win comes from: triangular solves are
// bandwidth-bound and the tiled layout moves ~1/3 the index bytes.
//
// Values are stored in exactly one precision: float64 (Vals/UpVals) or
// float32 (Vals32/UpVals32). The solve kernels always accumulate in float64,
// so single-precision storage halves factor bytes without changing the
// iteration arithmetic — only the stored factor entries are rounded.
//
// A BlockLowerTri is immutable after construction and safe to share across
// concurrent solves (each caller brings its own BlockTriScratch).
type BlockLowerTri struct {
	N int // scalar dimension (multiple of BlockSize)
	// Lower block rows: block columns ascending, diagonal tile last. The
	// diagonal tile is itself lower-triangular (upper entries zero).
	BRowPtr, BColIdx []int32
	// Upper block rows (tiles of Lᵀ): diagonal tile first, then ascending.
	BUpPtr, BUpIdx []int32
	// Tile values, 9 per tile row-major: double-precision pair...
	Vals, UpVals []float64
	// ...or single-precision pair (exactly one pair is non-nil).
	Vals32, UpVals32 []float32
	// Fwd and Bwd are dependency schedules over block rows.
	Fwd, Bwd *LevelSchedule
	// ScalarNNZ is the stored-entry count of one scalar triangle.
	ScalarNNZ int
}

// NBRows returns the number of block rows.
func (t *BlockLowerTri) NBRows() int { return t.N / BlockSize }

// Single reports whether the factor values are stored in float32.
func (t *BlockLowerTri) Single() bool { return t.Vals32 != nil }

// Fill returns the fraction of stored tile entries backed by the scalar
// pattern (diagonal tiles count their zero upper halves as padding, so even
// a fully dense node-block factor reads below 1.0).
func (t *BlockLowerTri) Fill() float64 {
	if len(t.BColIdx) == 0 {
		return 1
	}
	return float64(t.ScalarNNZ) / float64(9*len(t.BColIdx))
}

// MemoryBytes estimates the storage footprint (both triangles + schedules).
func (t *BlockLowerTri) MemoryBytes() int64 {
	b := int64(len(t.BRowPtr)+len(t.BColIdx)+len(t.BUpPtr)+len(t.BUpIdx))*4 +
		int64(len(t.Vals)+len(t.UpVals))*8 +
		int64(len(t.Vals32)+len(t.UpVals32))*4
	for _, s := range []*LevelSchedule{t.Fwd, t.Bwd} {
		if s != nil {
			b += int64(len(s.Order)+len(s.LevelPtr)+len(s.Chunks)+len(s.LevelChunk)) * 4
		}
	}
	return b
}

// NewBlockLowerTri tiles a scalar LowerTri into 3×3 blocks. The dimension
// must be a multiple of BlockSize (Dirichlet reduction constrains whole
// nodes, so reduced global factors always qualify; arbitrary matrices may
// not — callers fall back to the scalar factor on error). When single is
// true the tile values are stored in float32.
//
// Callers should check Fill() before committing to the blocked form: a
// scalar pattern that scatters one entry per tile inflates memory 9× and
// loses the bandwidth win (the solver keeps the scalar factor below
// BlockFillMin).
func NewBlockLowerTri(src *LowerTri, single bool) (*BlockLowerTri, error) {
	if src.N%BlockSize != 0 {
		return nil, fmt.Errorf("sparse: BlockLowerTri requires dimension divisible by %d, got %d", BlockSize, src.N)
	}
	t := &BlockLowerTri{N: src.N, ScalarNNZ: len(src.Vals)}
	nbr := t.NBRows()
	// Both triangles share the tiling routine: ascending block columns per
	// block row naturally put the diagonal tile last in the lower triangle
	// (all block cols ≤ br) and first in the upper (all block cols ≥ br).
	t.BRowPtr, t.BColIdx, t.Vals = tileRows(nbr, src.RowPtr, src.ColIdx, src.Vals)
	t.BUpPtr, t.BUpIdx, t.UpVals = tileRows(nbr, src.UpPtr, src.UpIdx, src.UpVals)
	if single {
		t.Vals32 = roundTiles(t.Vals)
		t.UpVals32 = roundTiles(t.UpVals)
		t.Vals, t.UpVals = nil, nil
	}
	t.buildSchedules()
	return t, nil
}

// tileRows groups the scalar rows of one triangle into 3×3 tiles, returning
// block-row pointers, ascending block-column indices, and zero-filled tile
// values.
func tileRows(nbr int, rowPtr, colIdx []int32, vals []float64) (bPtr, bIdx []int32, bVals []float64) {
	bPtr = make([]int32, nbr+1)
	seen := make([]int32, nbr)
	for i := range seen {
		seen[i] = -1
	}
	for br := 0; br < nbr; br++ {
		var cnt int32
		for i := 0; i < BlockSize; i++ {
			r := BlockSize*br + i
			for p := rowPtr[r]; p < rowPtr[r+1]; p++ {
				bc := colIdx[p] / BlockSize
				if seen[bc] != int32(br) {
					seen[bc] = int32(br)
					cnt++
				}
			}
		}
		bPtr[br+1] = bPtr[br] + cnt
	}
	nt := int(bPtr[nbr])
	bIdx = make([]int32, nt)
	bVals = make([]float64, 9*nt)
	pos := make([]int32, nbr)
	for br := 0; br < nbr; br++ {
		lo := bPtr[br]
		cnt := lo
		for i := 0; i < BlockSize; i++ {
			r := BlockSize*br + i
			for p := rowPtr[r]; p < rowPtr[r+1]; p++ {
				bc := colIdx[p] / BlockSize
				if seen[bc] != ^int32(br) {
					seen[bc] = ^int32(br)
					bIdx[cnt] = bc
					cnt++
				}
			}
		}
		sortInt32(bIdx[lo:cnt])
		for q := lo; q < cnt; q++ {
			pos[bIdx[q]] = q
		}
		for i := 0; i < BlockSize; i++ {
			r := BlockSize*br + i
			for p := rowPtr[r]; p < rowPtr[r+1]; p++ {
				c := colIdx[p]
				q := pos[c/BlockSize]
				bVals[9*q+int32(BlockSize*i)+c%BlockSize] = vals[p]
			}
		}
	}
	return bPtr, bIdx, bVals
}

// roundTiles converts tile values to single precision.
func roundTiles(v []float64) []float32 {
	s := make([]float32, len(v))
	for i, x := range v {
		s[i] = float32(x)
	}
	return s
}

// buildSchedules computes forward/backward dependency levels over block
// rows. Tiles carry uniform 9-entry work, so the chunk partitioner weighs
// block rows by tile count scaled to scalar-entry units — keeping the
// levelChunkWork calibration shared with the scalar schedules.
func (t *BlockLowerTri) buildSchedules() {
	nbr := t.NBRows()
	level := make([]int32, nbr)
	for br := 0; br < nbr; br++ {
		var lv int32
		for p := t.BRowPtr[br]; p < t.BRowPtr[br+1]-1; p++ {
			if d := level[t.BColIdx[p]] + 1; d > lv {
				lv = d
			}
		}
		level[br] = lv
	}
	t.Fwd = newLevelScheduleScaled(level, t.BRowPtr, 9)
	for br := nbr - 1; br >= 0; br-- {
		var lv int32
		for p := t.BUpPtr[br] + 1; p < t.BUpPtr[br+1]; p++ {
			if d := level[t.BUpIdx[p]] + 1; d > lv {
				lv = d
			}
		}
		level[br] = lv
	}
	t.Bwd = newLevelScheduleScaled(level, t.BUpPtr, 9)
}

// blockFwdRow computes one block row of the forward solve: a 3×3 GEMV
// subtract per off-diagonal tile, then the dense lower-triangular solve of
// the diagonal tile. Accumulation is always float64 regardless of the stored
// precision T. This single kernel serves the serial and parallel paths, so
// they are bitwise identical for every worker count.
//
//stressvet:noalloc
func blockFwdRow[T float32 | float64](ptr, idx []int32, vals []T, dst, b []float64, br int32) {
	r := BlockSize * br
	s0, s1, s2 := b[r], b[r+1], b[r+2]
	end := ptr[br+1] - 1 // diagonal tile is last
	for p := ptr[br]; p < end; p++ {
		c := idx[p] * BlockSize
		t := vals[9*p : 9*p+9 : 9*p+9]
		x0, x1, x2 := dst[c], dst[c+1], dst[c+2]
		s0 -= float64(t[0])*x0 + float64(t[1])*x1 + float64(t[2])*x2
		s1 -= float64(t[3])*x0 + float64(t[4])*x1 + float64(t[5])*x2
		s2 -= float64(t[6])*x0 + float64(t[7])*x1 + float64(t[8])*x2
	}
	d := vals[9*end : 9*end+9 : 9*end+9]
	y0 := s0 / float64(d[0])
	y1 := (s1 - float64(d[3])*y0) / float64(d[4])
	y2 := (s2 - float64(d[6])*y0 - float64(d[7])*y1) / float64(d[8])
	dst[r] = y0
	dst[r+1] = y1
	dst[r+2] = y2
}

// blockBwdRow computes one block row of the backward solve against the
// upper-triangle tiles (Lᵀ, diagonal tile first and upper-triangular).
//
//stressvet:noalloc
func blockBwdRow[T float32 | float64](ptr, idx []int32, vals []T, dst, b []float64, br int32) {
	r := BlockSize * br
	s0, s1, s2 := b[r], b[r+1], b[r+2]
	pj := ptr[br] // diagonal tile is first
	for p := pj + 1; p < ptr[br+1]; p++ {
		c := idx[p] * BlockSize
		t := vals[9*p : 9*p+9 : 9*p+9]
		x0, x1, x2 := dst[c], dst[c+1], dst[c+2]
		s0 -= float64(t[0])*x0 + float64(t[1])*x1 + float64(t[2])*x2
		s1 -= float64(t[3])*x0 + float64(t[4])*x1 + float64(t[5])*x2
		s2 -= float64(t[6])*x0 + float64(t[7])*x1 + float64(t[8])*x2
	}
	d := vals[9*pj : 9*pj+9 : 9*pj+9]
	z2 := s2 / float64(d[8])
	z1 := (s1 - float64(d[5])*z2) / float64(d[4])
	z0 := (s0 - float64(d[1])*z1 - float64(d[2])*z2) / float64(d[0])
	dst[r] = z0
	dst[r+1] = z1
	dst[r+2] = z2
}

// SolveLower solves L·dst = b serially over ascending block rows (the
// reference the level-scheduled path matches bitwise). dst and b may alias.
//
//stressvet:noalloc
func (t *BlockLowerTri) SolveLower(dst, b []float64) {
	nbr := t.NBRows()
	if t.Vals32 != nil {
		for br := 0; br < nbr; br++ {
			blockFwdRow(t.BRowPtr, t.BColIdx, t.Vals32, dst, b, int32(br))
		}
		return
	}
	for br := 0; br < nbr; br++ {
		blockFwdRow(t.BRowPtr, t.BColIdx, t.Vals, dst, b, int32(br))
	}
}

// SolveUpper solves Lᵀ·dst = b serially over descending block rows. dst and
// b may alias.
//
//stressvet:noalloc
func (t *BlockLowerTri) SolveUpper(dst, b []float64) {
	if t.UpVals32 != nil {
		for br := t.NBRows() - 1; br >= 0; br-- {
			blockBwdRow(t.BUpPtr, t.BUpIdx, t.UpVals32, dst, b, int32(br))
		}
		return
	}
	for br := t.NBRows() - 1; br >= 0; br-- {
		blockBwdRow(t.BUpPtr, t.BUpIdx, t.UpVals, dst, b, int32(br))
	}
}

// BlockTriScratch carries the per-caller state of the parallel blocked
// solves, mirroring TriScratch: a shared factor keeps no mutable state and
// pooled solves allocate nothing. Not safe for two concurrent solves; the
// zero value is ready to use.
type BlockTriScratch struct {
	op blockTriRun
}

// blockTriRun is the Runner of one blocked level: it solves the scheduled
// block rows order[lo:hi] with the forward or backward tile kernel.
type blockTriRun struct {
	t     *BlockLowerTri
	order []int32
	dst   []float64
	b     []float64
	upper bool
}

// RunRange implements Runner over positions in the level order.
//
//stressvet:noalloc
func (o *blockTriRun) RunRange(lo, hi int) {
	t := o.t
	if o.upper {
		if t.UpVals32 != nil {
			for i := lo; i < hi; i++ {
				blockBwdRow(t.BUpPtr, t.BUpIdx, t.UpVals32, o.dst, o.b, o.order[i])
			}
			return
		}
		for i := lo; i < hi; i++ {
			blockBwdRow(t.BUpPtr, t.BUpIdx, t.UpVals, o.dst, o.b, o.order[i])
		}
		return
	}
	if t.Vals32 != nil {
		for i := lo; i < hi; i++ {
			blockFwdRow(t.BRowPtr, t.BColIdx, t.Vals32, o.dst, o.b, o.order[i])
		}
		return
	}
	for i := lo; i < hi; i++ {
		blockFwdRow(t.BRowPtr, t.BColIdx, t.Vals, o.dst, o.b, o.order[i])
	}
}

// SolveLowerPar solves L·dst = b with the forward block-level schedule;
// semantics match LowerTri.SolveLowerPar (pool-dispatched when pool is
// non-nil, serial fallback for narrow schedules, bitwise identical to
// SolveLower for every worker count). sc may be nil when pool is nil.
//
//stressvet:noalloc
func (t *BlockLowerTri) SolveLowerPar(dst, b []float64, workers int, pool *Pool, sc *BlockTriScratch) {
	t.solvePar(t.Fwd, dst, b, false, workers, pool, sc)
}

// SolveUpperPar solves Lᵀ·dst = b with the backward block-level schedule;
// see SolveLowerPar.
//
//stressvet:noalloc
func (t *BlockLowerTri) SolveUpperPar(dst, b []float64, workers int, pool *Pool, sc *BlockTriScratch) {
	t.solvePar(t.Bwd, dst, b, true, workers, pool, sc)
}

//stressvet:noalloc
func (t *BlockLowerTri) solvePar(s *LevelSchedule, dst, b []float64, upper bool, workers int, pool *Pool, sc *BlockTriScratch) {
	if workers <= 1 || !s.parallel {
		if upper {
			t.SolveUpper(dst, b)
		} else {
			t.SolveLower(dst, b)
		}
		return
	}
	scratch := sc
	if scratch == nil {
		scratch = new(BlockTriScratch) //stressvet:allow noalloc -- fallback when the caller passes no scratch; pooled hot paths always do
	}
	op := &scratch.op
	*op = blockTriRun{t: t, order: s.Order, dst: dst, b: b, upper: upper}
	for l := 0; l < s.NumLevels(); l++ {
		bounds := s.levelBounds(l)
		if len(bounds) == 2 {
			op.RunRange(int(bounds[0]), int(bounds[1]))
			continue
		}
		if pool != nil {
			pool.Run(bounds, op)
		} else {
			parallelChunks(bounds, workers, op)
		}
	}
	*op = blockTriRun{}
}
