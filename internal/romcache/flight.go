package romcache

import (
	"fmt"
	"sync"
)

// call is an in-flight or completed Group.Do invocation.
type call[V any] struct {
	wg  sync.WaitGroup
	val V
	err error
}

// Group deduplicates concurrent function calls by key: while one goroutine
// runs fn for a key, every other Do with the same key blocks and receives the
// same result instead of running fn again (the classic singleflight pattern,
// here generic and dependency-free).
type Group[V any] struct {
	mu sync.Mutex
	m  map[string]*call[V]
}

// Do runs fn once per key at a time. The boolean reports whether the result
// was shared from another goroutine's in-flight call (true) or produced by
// this call's own fn invocation (false).
func (g *Group[V]) Do(key string, fn func() (V, error)) (V, error, bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call[V])
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := new(call[V])
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	// Release waiters and clear the slot even if fn panics: the panic
	// propagates to this caller, while waiters get an error instead of
	// blocking forever on a call that will never complete (under an HTTP
	// server, net/http recovers handler panics, so a wedged slot would
	// otherwise deadlock every later request for the key).
	normal := false
	defer func() {
		if !normal {
			c.err = fmt.Errorf("romcache: in-flight call for key %q panicked", key)
		}
		c.wg.Done()
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
	}()
	c.val, c.err = fn()
	normal = true
	return c.val, c.err, false
}
