package romcache

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/rom"
)

// fuzzModel lazily builds one cheap ROM shared by every fuzz iteration (the
// local stage is far too slow to run per input) and its valid spill bytes.
var fuzzModel struct {
	once sync.Once
	spec rom.Spec
	rom  *rom.ROM
	blob []byte
	err  error
}

func fuzzSetup() (rom.Spec, *rom.ROM, []byte, error) {
	m := &fuzzModel
	m.once.Do(func() {
		m.spec = testSpec(15)
		m.spec.Nodes = [3]int{3, 3, 3}
		m.rom, m.err = rom.Build(m.spec, 0)
		if m.err != nil {
			return
		}
		var buf bytes.Buffer
		if m.err = m.rom.Save(&buf); m.err != nil {
			return
		}
		m.blob = buf.Bytes()
	})
	return m.spec, m.rom, m.blob, m.err
}

// FuzzSpillDecode feeds arbitrary bytes through the disk-spill path: the
// cache must treat any malformed spill file as a plain miss — no panic, no
// error to the caller, the bad file replaced by a fresh build — and any
// well-formed file must decode to the model whose key it sits under.
// Hand-picked corrupt inputs (truncation) were covered by unit tests; this
// hardens the gob boundary against everything else.
func FuzzSpillDecode(f *testing.F) {
	spec, prebuilt, blob, err := fuzzSetup()
	if err != nil {
		f.Fatal(err)
	}
	key, err := Key(spec)
	if err != nil {
		f.Fatal(err)
	}
	// Seeded corpus: the valid spill, truncations from both ends, a bit
	// flip in the header, the empty file, and plain garbage.
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add(blob[:1])
	f.Add(blob[len(blob)/3:])
	flipped := append([]byte(nil), blob...)
	flipped[0] ^= 0xff
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, key+".rom"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		c := New(Options{
			Dir: dir,
			Build: func(rom.Spec, int) (*rom.ROM, error) {
				return prebuilt, nil
			},
		})
		r, _, err := c.Get(spec)
		if err != nil {
			t.Fatalf("Get over fuzzed spill errored: %v", err)
		}
		if r == nil {
			t.Fatal("Get returned nil model")
		}
		// Whatever the spill held, the caller gets the model for the key:
		// either the decoded file (content-verified) or the fresh build.
		if got, err := Key(r.Spec); err != nil || got != key {
			t.Fatalf("returned model keys to %s (err %v), want %s", got, err, key)
		}
		if r.N != prebuilt.N || len(r.Basis) != r.N {
			t.Fatalf("returned model inconsistent: N=%d basis=%d want N=%d", r.N, len(r.Basis), prebuilt.N)
		}
	})
}
