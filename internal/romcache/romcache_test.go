package romcache

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/linalg"
	"repro/internal/mesh"
	"repro/internal/rom"
)

// testSpec returns a cheap ROM spec for unit tests.
func testSpec(pitch float64) rom.Spec {
	s := rom.PaperSpec(pitch, mesh.CoarseResolution())
	s.Nodes = [3]int{3, 3, 3}
	return s
}

func TestKeyStableAndDiscriminating(t *testing.T) {
	a := testSpec(15)
	k1, err := Key(a)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key(testSpec(15))
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("equal specs hash differently: %s vs %s", k1, k2)
	}
	variants := []rom.Spec{testSpec(10), a, a, a}
	variants[1].Nodes = [3]int{4, 4, 4}
	variants[2].Quadratic = true
	variants[3].Kind = mesh.KindPillar
	seen := map[string]int{k1: -1}
	for i, v := range variants {
		k, err := Key(v)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %d collides with variant %d", i, prev)
		}
		seen[k] = i
	}
}

func TestGetBuildsOnceThenHits(t *testing.T) {
	var builds atomic.Int64
	c := New(Options{Build: func(spec rom.Spec, workers int) (*rom.ROM, error) {
		builds.Add(1)
		return rom.Build(spec, workers)
	}})
	spec := testSpec(15)
	r1, hit, err := c.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first Get reported a cache hit")
	}
	r2, hit, err := c.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second Get missed")
	}
	if r1 != r2 {
		t.Error("second Get returned a different model")
	}
	if n := builds.Load(); n != 1 {
		t.Errorf("local stage ran %d times, want 1", n)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry", s)
	}
}

// TestSingleflightDedup launches many concurrent Gets for the same spec and
// checks the local stage runs exactly once (run under -race).
func TestSingleflightDedup(t *testing.T) {
	var builds atomic.Int64
	c := New(Options{Build: func(spec rom.Spec, workers int) (*rom.ROM, error) {
		builds.Add(1)
		return rom.Build(spec, workers)
	}})
	spec := testSpec(15)
	const callers = 16
	roms := make([]*rom.ROM, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, _, err := c.Get(spec)
			if err != nil {
				t.Error(err)
				return
			}
			roms[i] = r
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("local stage ran %d times under %d concurrent Gets, want 1", n, callers)
	}
	for i := 1; i < callers; i++ {
		if roms[i] != roms[0] {
			t.Errorf("caller %d got a distinct model", i)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != callers-1 {
		t.Errorf("stats = %+v, want %d hits / 1 miss", s, callers-1)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Options{MaxEntries: 2})
	pitches := []float64{10, 12, 15}
	for _, p := range pitches {
		if _, _, err := c.Get(testSpec(p)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Contains(testSpec(10)) {
		t.Error("oldest entry survived past MaxEntries")
	}
	if !c.Contains(testSpec(12)) || !c.Contains(testSpec(15)) {
		t.Error("recent entries evicted")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Errorf("stats = %+v, want 1 eviction / 2 entries", s)
	}
}

// TestDiskSpillRoundTrip checks the gob round-trip through the spill dir: a
// fresh cache (cold memory) must restore the model from disk without
// re-running the local stage, and the restored ROM must solve identically.
func TestDiskSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(15)

	var builds atomic.Int64
	counting := func(spec rom.Spec, workers int) (*rom.ROM, error) {
		builds.Add(1)
		return rom.Build(spec, workers)
	}

	warm := New(Options{Dir: dir, Build: counting})
	orig, _, err := warm.Get(spec)
	if err != nil {
		t.Fatal(err)
	}

	cold := New(Options{Dir: dir, Build: counting})
	restored, hit, err := cold.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("disk-spilled model was rebuilt")
	}
	if n := builds.Load(); n != 1 {
		t.Errorf("local stage ran %d times across both caches, want 1", n)
	}
	if s := cold.Stats(); s.DiskHits != 1 {
		t.Errorf("cold cache stats = %+v, want 1 disk hit", s)
	}
	if restored.N != orig.N {
		t.Fatalf("restored N = %d, want %d", restored.N, orig.N)
	}
	for i := 0; i < orig.N; i++ {
		if restored.Belem[i] != orig.Belem[i] {
			t.Fatalf("Belem[%d] differs after round-trip", i)
		}
	}
}

// TestDiskSpillCorrupt checks that a truncated spill file is treated as a
// miss (the model is rebuilt) and the bad file is removed.
func TestDiskSpillCorrupt(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(15)
	key, err := Key(spec)
	if err != nil {
		t.Fatal(err)
	}

	warm := New(Options{Dir: dir})
	if _, _, err := warm.Get(spec); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+".rom")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	var builds atomic.Int64
	cold := New(Options{Dir: dir, Build: func(spec rom.Spec, workers int) (*rom.ROM, error) {
		builds.Add(1)
		return rom.Build(spec, workers)
	}})
	if _, hit, err := cold.Get(spec); err != nil {
		t.Fatal(err)
	} else if hit {
		t.Error("corrupt spill reported as hit")
	}
	if n := builds.Load(); n != 1 {
		t.Errorf("local stage ran %d times, want 1 (rebuild after corrupt spill)", n)
	}
	// The rebuild re-spills a good file over the corrupt one.
	if fi, err := os.Stat(path); err != nil || fi.Size() != int64(len(blob)) {
		t.Errorf("spill not rewritten after corruption (err=%v)", err)
	}
}

// TestGroupSurvivesPanic checks the liveness guarantee: a panicking fn must
// re-panic in its own caller, hand waiters an error instead of blocking them
// forever, and leave the key usable for the next call.
func TestGroupSurvivesPanic(t *testing.T) {
	var g Group[int]
	entered := make(chan struct{})
	release := make(chan struct{})
	waiterErr := make(chan error, 1)
	go func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the panicking caller")
			}
		}()
		g.Do("k", func() (int, error) {
			close(entered)
			<-release
			panic("local stage exploded")
		})
	}()
	<-entered
	go func() {
		_, err, shared := g.Do("k", func() (int, error) { return 1, nil })
		if !shared {
			// The waiter raced past the cleanup and ran its own fn; the
			// sharing path wasn't exercised, but nothing deadlocked.
			waiterErr <- err
			return
		}
		if err == nil {
			err = fmt.Errorf("waiter sharing a panicked call got nil error")
		} else {
			err = nil
		}
		waiterErr <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter join the in-flight call
	close(release)
	// A hang here is the regression: pre-fix, waiters on a panicked call
	// block forever.
	if err := <-waiterErr; err != nil {
		t.Error(err)
	}
	// The slot must be free again.
	v, err, _ := g.Do("k", func() (int, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Errorf("post-panic Do = (%d, %v), want (42, nil)", v, err)
	}
}

func TestGroupPropagatesErrors(t *testing.T) {
	var g Group[int]
	wantErr := fmt.Errorf("boom")
	_, err, _ := g.Do("k", func() (int, error) { return 0, wantErr })
	if err != wantErr {
		t.Errorf("err = %v, want %v", err, wantErr)
	}
	// The failed call must not be cached: a retry runs fn again.
	v, err, _ := g.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Errorf("retry = (%d, %v), want (7, nil)", v, err)
	}
}

// fakeROM fabricates a model whose only meaningful property is its recorded
// size — byte-budget admission never runs a solve.
func fakeROM(bytes int64) *rom.ROM {
	return &rom.ROM{Stats: rom.BuildStats{MemoryBytes: bytes}}
}

// TestByteBudgetEviction checks admission by bytes: models are evicted from
// the cold end when the summed MemoryBytes exceeds MaxBytes, regardless of
// entry count.
func TestByteBudgetEviction(t *testing.T) {
	sizes := map[float64]int64{10: 400, 12: 400, 15: 400}
	c := New(Options{
		MaxBytes: 1000,
		Build: func(spec rom.Spec, workers int) (*rom.ROM, error) {
			return fakeROM(sizes[spec.Geom.Pitch]), nil
		},
	})
	for _, p := range []float64{10, 12, 15} {
		if _, _, err := c.Get(testSpec(p)); err != nil {
			t.Fatal(err)
		}
	}
	// 3×400 = 1200 > 1000: the oldest model must be gone, 2 remain.
	if c.Contains(testSpec(10)) {
		t.Error("oldest entry survived past the byte budget")
	}
	if !c.Contains(testSpec(12)) || !c.Contains(testSpec(15)) {
		t.Error("recent entries evicted")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 || s.Bytes != 800 || s.MaxBytes != 1000 {
		t.Errorf("stats = %+v, want 1 eviction / 2 entries / 800 of 1000 bytes", s)
	}
}

// TestByteBudgetLargeEvictsWorkingSet is the scenario the byte budget
// exists for: one large lattice must not leave small hot models resident
// beyond budget — and, conversely, must itself be admitted even when it
// exceeds the entire budget, alone.
func TestByteBudgetLargeEvictsWorkingSet(t *testing.T) {
	sizes := map[float64]int64{10: 100, 12: 100, 15: 5000}
	c := New(Options{
		MaxBytes: 1000,
		Build: func(spec rom.Spec, workers int) (*rom.ROM, error) {
			return fakeROM(sizes[spec.Geom.Pitch]), nil
		},
	})
	for _, p := range []float64{10, 12} {
		if _, _, err := c.Get(testSpec(p)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.Get(testSpec(15)); err != nil {
		t.Fatal(err)
	}
	// The oversized model is admitted alone.
	if !c.Contains(testSpec(15)) {
		t.Error("oversized model rejected; admission must keep the newest entry")
	}
	if c.Contains(testSpec(10)) || c.Contains(testSpec(12)) {
		t.Error("small models resident alongside an over-budget one")
	}
	if s := c.Stats(); s.Entries != 1 || s.Bytes != 5000 {
		t.Errorf("stats = %+v, want the single 5000-byte entry", s)
	}
	// A later small model displaces the oversized one (LRU order).
	if _, _, err := c.Get(testSpec(10)); err != nil {
		t.Fatal(err)
	}
	if c.Contains(testSpec(15)) {
		t.Error("over-budget model survived a later admission")
	}
	if !c.Contains(testSpec(10)) {
		t.Error("fresh small model missing")
	}
}

// TestByteBudgetWithEntryCap checks the two bounds compose: whichever is
// tighter governs.
func TestByteBudgetWithEntryCap(t *testing.T) {
	c := New(Options{
		MaxBytes:   1 << 40,
		MaxEntries: 2,
		Build: func(spec rom.Spec, workers int) (*rom.ROM, error) {
			return fakeROM(8), nil
		},
	})
	for _, p := range []float64{10, 12, 15} {
		if _, _, err := c.Get(testSpec(p)); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Entries != 2 || s.Bytes != 16 {
		t.Errorf("stats = %+v, want entry cap to govern (2 entries, 16 bytes)", s)
	}
}

// TestDefaultSizeFallback checks the default byte accounting: a model with
// a recorded MemoryBytes uses it, and one without (older spill files) gets
// a structural recount of its basis and element arrays.
func TestDefaultSizeFallback(t *testing.T) {
	if got := romBytes(fakeROM(12345)); got != 12345 {
		t.Errorf("recorded size: romBytes = %d, want 12345", got)
	}
	bare := &rom.ROM{
		Basis:  [][]float64{make([]float64, 3), make([]float64, 5)},
		BasisT: make([]float64, 7),
		Aelem:  &linalg.Dense{Rows: 2, Cols: 2, Data: make([]float64, 4)},
		Belem:  make([]float64, 2),
	}
	want := int64(3+5+7+4+2) * 8
	if got := romBytes(bare); got != want {
		t.Errorf("structural recount: romBytes = %d, want %d", got, want)
	}
	if got := romBytes(&rom.ROM{}); got != 0 {
		t.Errorf("empty model: romBytes = %d, want 0", got)
	}
}

// TestDiskSpillWrongContent plants a well-formed spill of a different spec
// under a key and checks content verification rejects it: the model is
// rebuilt and the lying file removed.
func TestDiskSpillWrongContent(t *testing.T) {
	dir := t.TempDir()
	right := testSpec(15)
	wrong := testSpec(10)
	rightKey, err := Key(right)
	if err != nil {
		t.Fatal(err)
	}

	warm := New(Options{Dir: dir})
	if _, _, err := warm.Get(wrong); err != nil {
		t.Fatal(err)
	}
	wrongKey, err := Key(wrong)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, wrongKey+".rom"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, rightKey+".rom"), blob, 0o644); err != nil {
		t.Fatal(err)
	}

	var builds atomic.Int64
	cold := New(Options{Dir: dir, Build: func(spec rom.Spec, workers int) (*rom.ROM, error) {
		builds.Add(1)
		return rom.Build(spec, workers)
	}})
	r, hit, err := cold.Get(right)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("mismatched spill content reported as hit")
	}
	if n := builds.Load(); n != 1 {
		t.Errorf("local stage ran %d times, want 1", n)
	}
	if got, _ := Key(r.Spec); got != rightKey {
		t.Errorf("Get returned the impostor model")
	}
}

// TestSpillFailureIsTolerated points the spill dir at a plain file so every
// write fails: the cache must keep serving from memory as if spill were
// disabled.
func TestSpillFailureIsTolerated(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(Options{Dir: filepath.Join(blocker, "sub")})
	if _, _, err := c.Get(testSpec(15)); err != nil {
		t.Fatalf("Get with unwritable spill dir: %v", err)
	}
	if _, hit, err := c.Get(testSpec(15)); err != nil || !hit {
		t.Errorf("second Get = hit %v, err %v; want memory hit", hit, err)
	}
}

// TestInsertReplaceAccounting re-inserts a key and checks the byte ledger
// tracks the replacement, not the sum.
func TestInsertReplaceAccounting(t *testing.T) {
	c := New(Options{MaxBytes: 1000})
	key := "k"
	c.insert(key, fakeROM(400))
	if s := c.Stats(); s.Bytes != 400 || s.Entries != 1 {
		t.Fatalf("after insert: %+v", s)
	}
	c.insert(key, fakeROM(250))
	if s := c.Stats(); s.Bytes != 250 || s.Entries != 1 {
		t.Errorf("after replace: %+v, want 250 bytes / 1 entry", s)
	}
}
