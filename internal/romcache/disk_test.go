package romcache

import (
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rom"
)

// spillOnce builds and spills one model into dir, returning its key and the
// spill path.
func spillOnce(t *testing.T, dir string) (key, path string) {
	t.Helper()
	spec := testSpec(15)
	key, err := Key(spec)
	if err != nil {
		t.Fatal(err)
	}
	warm := New(Options{Dir: dir})
	if _, _, err := warm.Get(spec); err != nil {
		t.Fatal(err)
	}
	path = filepath.Join(dir, key+".rom")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("model not spilled: %v", err)
	}
	return key, path
}

// TestSpillTrailerDetectsBitFlip checks the checksum trailer: a single
// flipped payload byte — which the gob decoder may happily swallow — must be
// detected, the file removed, and the model rebuilt.
func TestSpillTrailerDetectsBitFlip(t *testing.T) {
	dir := t.TempDir()
	_, path := spillOnce(t, dir)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x01
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	var builds atomic.Int64
	cold := New(Options{Dir: dir, Build: func(spec rom.Spec, workers int) (*rom.ROM, error) {
		builds.Add(1)
		return rom.Build(spec, workers)
	}})
	if _, hit, err := cold.Get(testSpec(15)); err != nil {
		t.Fatal(err)
	} else if hit {
		t.Error("bit-flipped spill served as a hit")
	}
	if n := builds.Load(); n != 1 {
		t.Errorf("local stage ran %d times, want 1 rebuild", n)
	}
	if s := cold.Stats(); s.DiskCorrupt != 1 {
		t.Errorf("stats = %+v, want 1 DiskCorrupt", s)
	}
}

// TestLegacySpillWithoutTrailerAccepted checks that spill files written
// before the trailer existed (raw rom.Save output) still load.
func TestLegacySpillWithoutTrailerAccepted(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(15)
	key, err := Key(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := rom.Build(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, key+".rom"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cold := New(Options{Dir: dir, Build: func(rom.Spec, int) (*rom.ROM, error) {
		t.Error("legacy spill triggered a rebuild")
		return nil, os.ErrInvalid
	}})
	if _, hit, err := cold.Get(spec); err != nil {
		t.Fatal(err)
	} else if !hit {
		t.Error("legacy spill not served as a hit")
	}
	if s := cold.Stats(); s.DiskHits != 1 || s.DiskCorrupt != 0 {
		t.Errorf("stats = %+v, want 1 disk hit, 0 corrupt", s)
	}
}

// TestOrphanSweepOnOpen checks that cache open removes aged .tmp and .lock
// leftovers but leaves fresh ones (another replica's in-flight spill) alone.
func TestOrphanSweepOnOpen(t *testing.T) {
	dir := t.TempDir()
	old := time.Now().Add(-time.Hour)
	aged := func(name string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte("leftover"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
		return p
	}
	orphanTmp := aged("deadbeef.tmp42")
	orphanLock := aged("deadbeef.lock")
	fresh := filepath.Join(dir, "cafef00d.tmp7")
	if err := os.WriteFile(fresh, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}
	keep := aged("unrelated.dat")

	c := New(Options{Dir: dir, SweepAge: 15 * time.Minute})
	for _, p := range []string{orphanTmp, orphanLock} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("orphan %s survived the sweep", filepath.Base(p))
		}
	}
	for _, p := range []string{fresh, keep} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("sweep removed %s: %v", filepath.Base(p), err)
		}
	}
	if s := c.Stats(); s.Swept != 2 {
		t.Errorf("Swept = %d, want 2", s.Swept)
	}
}

// TestSpillLockSingleWriter checks the O_EXCL discipline: a fresh lock held
// by another writer makes saveDisk stand down; a stale lock is broken and
// the spill proceeds.
func TestSpillLockSingleWriter(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(15)
	key, err := Key(spec)
	if err != nil {
		t.Fatal(err)
	}
	lock := filepath.Join(dir, key+".lock")
	if err := os.WriteFile(lock, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	c := New(Options{Dir: dir})
	if _, _, err := c.Get(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, key+".rom")); !os.IsNotExist(err) {
		t.Error("spill written despite a held lock")
	}
	if s := c.Stats(); s.SpillSkips != 1 {
		t.Errorf("SpillSkips = %d, want 1", s.SpillSkips)
	}

	// Age the lock past SweepAge: the next writer breaks it and spills.
	// The cache is created before the lock is aged so lockKey (not the
	// open-time sweep) does the breaking.
	c2 := New(Options{Dir: dir})
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c2.Get(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, key+".rom")); err != nil {
		t.Errorf("stale lock not broken: %v", err)
	}
	if _, err := os.Stat(lock); !os.IsNotExist(err) {
		t.Error("broken lock left behind after spill")
	}
}
