// Package romcache provides a content-addressed cache of unit-block
// reduced-order models. The one-shot local stage is the expensive part of
// MORE-Stress; its output, the ROM, is reusable across arbitrary array
// sizes, thermal loads, and placements (§4.1 of the paper). The cache keys
// ROMs by a canonical hash of rom.Spec, keeps recently used models in an
// in-memory LRU admitted against a byte budget (each model's MemoryBytes,
// so a handful of large lattices cannot silently evict a whole working set
// of small ones), optionally spills every built model to disk in the gob
// format of rom.Save/rom.Load, and deduplicates concurrent builds with
// singleflight so N simultaneous requests for the same unit cell run the
// local stage exactly once.
package romcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rom"
)

// Key returns the canonical content address of a spec: the hex SHA-256 of
// its gob encoding. Specs with equal field values always hash equally; any
// differing field changes the key.
func Key(spec rom.Spec) (string, error) {
	h := sha256.New()
	if err := gob.NewEncoder(h).Encode(&spec); err != nil {
		return "", fmt.Errorf("romcache: hash spec: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// DefaultMaxBytes is the in-memory budget used when Options sets neither
// MaxBytes nor MaxEntries: 2 GiB, a few paper-resolution ROMs.
const DefaultMaxBytes = 2 << 30

// Options configures a Cache.
type Options struct {
	// MaxBytes bounds the in-memory LRU by model size — the sum of the
	// cached ROMs' MemoryBytes (basis vectors dominate; hundreds of MB per
	// model at paper resolution). Admission is by bytes so one large
	// lattice cannot evict an entire working set of small ones the way an
	// entry-count bound would let it. A single model larger than the whole
	// budget is still admitted (alone); otherwise the cache could never
	// serve it. When both MaxBytes and MaxEntries are zero, MaxBytes
	// defaults to DefaultMaxBytes.
	MaxBytes int64
	// MaxEntries optionally bounds the LRU by entry count as well
	// (0 = no entry bound). Kept for callers that want a hard model count
	// on top of the byte budget.
	MaxEntries int
	// Dir enables disk spill: every built model is written to
	// Dir/<key>.rom (write-through), and an in-memory miss tries the disk
	// before re-running the local stage. Empty disables spill.
	Dir string
	// Workers is the local-stage parallelism for cache-miss builds
	// (0 = GOMAXPROCS).
	Workers int
	// Build overrides the local stage (used by tests); defaults to
	// rom.Build.
	Build func(spec rom.Spec, workers int) (*rom.ROM, error)
	// Size overrides the per-model byte accounting (used by tests);
	// defaults to the model's recorded Stats.MemoryBytes with a structural
	// recount as fallback.
	Size func(r *rom.ROM) int64
}

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	// Hits counts Get calls served without running the local stage
	// (in-memory, disk, or by joining another caller's in-flight build).
	Hits int64
	// Misses counts Get calls that ran the local stage.
	Misses int64
	// DiskHits counts the subset of Hits served by loading a spilled model.
	DiskHits int64
	// Evictions counts models dropped from the in-memory LRU.
	Evictions int64
	// BuildTime is the cumulative local-stage time paid by misses.
	BuildTime time.Duration
	// Entries is the current in-memory model count.
	Entries int
	// Bytes is the current in-memory model footprint; MaxBytes is the
	// budget it is admitted against (0 = entry-count bound only).
	Bytes, MaxBytes int64
}

// Cache is a content-addressed ROM cache, safe for concurrent use.
type Cache struct {
	opt    Options
	flight Group[*rom.ROM]

	mu sync.Mutex
	// guarded by mu
	entries map[string]*list.Element
	lru     *list.List // guarded by mu; front = most recently used
	bytes   int64      // guarded by mu; sum of resident entry sizes

	hits, misses, diskHits, evictions atomic.Int64
	buildNanos                        atomic.Int64
}

type cacheEntry struct {
	key   string
	rom   *rom.ROM
	bytes int64
}

// New creates a cache. A zero Options is valid: a DefaultMaxBytes budget,
// no entry cap, no disk spill, GOMAXPROCS build workers.
func New(opt Options) *Cache {
	if opt.MaxBytes <= 0 && opt.MaxEntries <= 0 {
		opt.MaxBytes = DefaultMaxBytes
	}
	if opt.Build == nil {
		opt.Build = rom.Build
	}
	if opt.Size == nil {
		opt.Size = romBytes
	}
	return &Cache{
		opt:     opt,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// romBytes is the default Size: the model's recorded build-time footprint,
// recounted structurally when the record is missing (older spill files).
func romBytes(r *rom.ROM) int64 {
	if b := r.Stats.MemoryBytes; b > 0 {
		return b
	}
	var b int64
	for _, f := range r.Basis {
		b += int64(len(f)) * 8
	}
	b += int64(len(r.BasisT)) * 8
	if r.Aelem != nil {
		b += int64(len(r.Aelem.Data)) * 8
	}
	b += int64(len(r.Belem)) * 8
	return b
}

// Get returns the ROM for spec, running the local stage only when the model
// is in neither memory nor disk and no equivalent build is already in
// flight. The boolean reports whether the call avoided the local stage.
func (c *Cache) Get(spec rom.Spec) (*rom.ROM, bool, error) {
	key, err := Key(spec)
	if err != nil {
		return nil, false, err
	}
	if r := c.lookup(key); r != nil {
		c.hits.Add(1)
		return r, true, nil
	}
	built := false
	r, err, shared := c.flight.Do(key, func() (*rom.ROM, error) {
		// Another flight may have inserted the model between our lookup
		// and acquiring the flight slot.
		if r := c.lookup(key); r != nil {
			return r, nil
		}
		if r := c.loadDisk(key); r != nil {
			c.diskHits.Add(1)
			c.insert(key, r)
			return r, nil
		}
		built = true
		start := time.Now()
		r, err := c.opt.Build(spec, c.opt.Workers)
		if err != nil {
			return nil, err
		}
		c.buildNanos.Add(int64(time.Since(start)))
		c.insert(key, r)
		c.saveDisk(key, r)
		return r, nil
	})
	if err != nil {
		return nil, false, err
	}
	hit := shared || !built
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return r, hit, nil
}

// Contains reports whether the model for spec is currently in memory,
// without touching LRU order or counters.
func (c *Cache) Contains(spec rom.Spec) bool {
	key, err := Key(spec)
	if err != nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	n, b := len(c.entries), c.bytes
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		DiskHits:  c.diskHits.Load(),
		Evictions: c.evictions.Load(),
		BuildTime: time.Duration(c.buildNanos.Load()),
		Entries:   n,
		Bytes:     b,
		MaxBytes:  c.opt.MaxBytes,
	}
}

func (c *Cache) lookup(key string) *rom.ROM {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).rom
}

func (c *Cache) insert(key string, r *rom.ROM) {
	size := c.opt.Size(r)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.bytes += size - e.bytes
		e.rom, e.bytes = r, size
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, rom: r, bytes: size})
	c.bytes += size
	// Evict from the cold end until both budgets hold, but never the entry
	// just admitted: a single model over the whole byte budget still serves
	// (it simply shares the cache with nothing).
	for c.lru.Len() > 1 && c.overBudgetLocked() {
		back := c.lru.Back()
		e := back.Value.(*cacheEntry)
		delete(c.entries, e.key)
		c.lru.Remove(back)
		c.bytes -= e.bytes
		c.evictions.Add(1)
	}
}

// overBudgetLocked reports whether either configured bound is exceeded.
// Callers hold c.mu.
func (c *Cache) overBudgetLocked() bool {
	if c.opt.MaxBytes > 0 && c.bytes > c.opt.MaxBytes {
		return true
	}
	return c.opt.MaxEntries > 0 && c.lru.Len() > c.opt.MaxEntries
}

func (c *Cache) diskPath(key string) string {
	return filepath.Join(c.opt.Dir, key+".rom")
}

// loadDisk restores a spilled model, returning nil on any failure: a
// missing, truncated, or corrupt spill file is a plain cache miss (the spill
// is a performance hint, not a source of truth), and a decode failure
// removes the bad file so the fresh build can replace it. A well-formed file
// whose content hashes to a different key is likewise rejected.
func (c *Cache) loadDisk(key string) *rom.ROM {
	if c.opt.Dir == "" {
		return nil
	}
	f, err := os.Open(c.diskPath(key))
	if err != nil {
		return nil
	}
	defer f.Close()
	r, err := rom.Load(f)
	if err != nil {
		os.Remove(c.diskPath(key))
		return nil
	}
	if got, err := Key(r.Spec); err != nil || got != key {
		os.Remove(c.diskPath(key))
		return nil
	}
	return r
}

// saveDisk spills a built model (write-through), atomically via a temp file
// so concurrent readers never observe a partial write. Spill failures are
// ignored: the in-memory model is intact and the next miss simply rebuilds.
func (c *Cache) saveDisk(key string, r *rom.ROM) {
	if c.opt.Dir == "" {
		return
	}
	if err := os.MkdirAll(c.opt.Dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.opt.Dir, key+".tmp*")
	if err != nil {
		return
	}
	if err := r.Save(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.diskPath(key)); err != nil {
		os.Remove(tmp.Name())
	}
}
