// Package romcache provides a content-addressed cache of unit-block
// reduced-order models. The one-shot local stage is the expensive part of
// MORE-Stress; its output, the ROM, is reusable across arbitrary array
// sizes, thermal loads, and placements (§4.1 of the paper). The cache keys
// ROMs by a canonical hash of rom.Spec, keeps recently used models in an
// in-memory LRU, optionally spills every built model to disk in the gob
// format of rom.Save/rom.Load, and deduplicates concurrent builds with
// singleflight so N simultaneous requests for the same unit cell run the
// local stage exactly once.
package romcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rom"
)

// Key returns the canonical content address of a spec: the hex SHA-256 of
// its gob encoding. Specs with equal field values always hash equally; any
// differing field changes the key.
func Key(spec rom.Spec) (string, error) {
	h := sha256.New()
	if err := gob.NewEncoder(h).Encode(&spec); err != nil {
		return "", fmt.Errorf("romcache: hash spec: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Options configures a Cache.
type Options struct {
	// MaxEntries bounds the in-memory LRU (default 8; ROMs hold full
	// fine-mesh basis vectors and are hundreds of MB at paper resolution).
	MaxEntries int
	// Dir enables disk spill: every built model is written to
	// Dir/<key>.rom (write-through), and an in-memory miss tries the disk
	// before re-running the local stage. Empty disables spill.
	Dir string
	// Workers is the local-stage parallelism for cache-miss builds
	// (0 = GOMAXPROCS).
	Workers int
	// Build overrides the local stage (used by tests); defaults to
	// rom.Build.
	Build func(spec rom.Spec, workers int) (*rom.ROM, error)
}

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	// Hits counts Get calls served without running the local stage
	// (in-memory, disk, or by joining another caller's in-flight build).
	Hits int64
	// Misses counts Get calls that ran the local stage.
	Misses int64
	// DiskHits counts the subset of Hits served by loading a spilled model.
	DiskHits int64
	// Evictions counts models dropped from the in-memory LRU.
	Evictions int64
	// BuildTime is the cumulative local-stage time paid by misses.
	BuildTime time.Duration
	// Entries is the current in-memory model count.
	Entries int
}

// Cache is a content-addressed ROM cache, safe for concurrent use.
type Cache struct {
	opt    Options
	flight Group[*rom.ROM]

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used

	hits, misses, diskHits, evictions atomic.Int64
	buildNanos                        atomic.Int64
}

type cacheEntry struct {
	key string
	rom *rom.ROM
}

// New creates a cache. A zero Options is valid: 8 in-memory entries, no
// disk spill, GOMAXPROCS build workers.
func New(opt Options) *Cache {
	if opt.MaxEntries <= 0 {
		opt.MaxEntries = 8
	}
	if opt.Build == nil {
		opt.Build = rom.Build
	}
	return &Cache{
		opt:     opt,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// Get returns the ROM for spec, running the local stage only when the model
// is in neither memory nor disk and no equivalent build is already in
// flight. The boolean reports whether the call avoided the local stage.
func (c *Cache) Get(spec rom.Spec) (*rom.ROM, bool, error) {
	key, err := Key(spec)
	if err != nil {
		return nil, false, err
	}
	if r := c.lookup(key); r != nil {
		c.hits.Add(1)
		return r, true, nil
	}
	built := false
	r, err, shared := c.flight.Do(key, func() (*rom.ROM, error) {
		// Another flight may have inserted the model between our lookup
		// and acquiring the flight slot.
		if r := c.lookup(key); r != nil {
			return r, nil
		}
		if r := c.loadDisk(key); r != nil {
			c.diskHits.Add(1)
			c.insert(key, r)
			return r, nil
		}
		built = true
		start := time.Now()
		r, err := c.opt.Build(spec, c.opt.Workers)
		if err != nil {
			return nil, err
		}
		c.buildNanos.Add(int64(time.Since(start)))
		c.insert(key, r)
		c.saveDisk(key, r)
		return r, nil
	})
	if err != nil {
		return nil, false, err
	}
	hit := shared || !built
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return r, hit, nil
}

// Contains reports whether the model for spec is currently in memory,
// without touching LRU order or counters.
func (c *Cache) Contains(spec rom.Spec) bool {
	key, err := Key(spec)
	if err != nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		DiskHits:  c.diskHits.Load(),
		Evictions: c.evictions.Load(),
		BuildTime: time.Duration(c.buildNanos.Load()),
		Entries:   n,
	}
}

func (c *Cache) lookup(key string) *rom.ROM {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).rom
}

func (c *Cache) insert(key string, r *rom.ROM) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*cacheEntry).rom = r
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, rom: r})
	for c.lru.Len() > c.opt.MaxEntries {
		back := c.lru.Back()
		delete(c.entries, back.Value.(*cacheEntry).key)
		c.lru.Remove(back)
		c.evictions.Add(1)
	}
}

func (c *Cache) diskPath(key string) string {
	return filepath.Join(c.opt.Dir, key+".rom")
}

// loadDisk restores a spilled model, returning nil on any failure: a
// missing, truncated, or corrupt spill file is a plain cache miss (the spill
// is a performance hint, not a source of truth), and a decode failure
// removes the bad file so the fresh build can replace it. A well-formed file
// whose content hashes to a different key is likewise rejected.
func (c *Cache) loadDisk(key string) *rom.ROM {
	if c.opt.Dir == "" {
		return nil
	}
	f, err := os.Open(c.diskPath(key))
	if err != nil {
		return nil
	}
	defer f.Close()
	r, err := rom.Load(f)
	if err != nil {
		os.Remove(c.diskPath(key))
		return nil
	}
	if got, err := Key(r.Spec); err != nil || got != key {
		os.Remove(c.diskPath(key))
		return nil
	}
	return r
}

// saveDisk spills a built model (write-through), atomically via a temp file
// so concurrent readers never observe a partial write. Spill failures are
// ignored: the in-memory model is intact and the next miss simply rebuilds.
func (c *Cache) saveDisk(key string, r *rom.ROM) {
	if c.opt.Dir == "" {
		return
	}
	if err := os.MkdirAll(c.opt.Dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.opt.Dir, key+".tmp*")
	if err != nil {
		return
	}
	if err := r.Save(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.diskPath(key)); err != nil {
		os.Remove(tmp.Name())
	}
}
