// Package romcache provides a content-addressed cache of unit-block
// reduced-order models. The one-shot local stage is the expensive part of
// MORE-Stress; its output, the ROM, is reusable across arbitrary array
// sizes, thermal loads, and placements (§4.1 of the paper). The cache keys
// ROMs by a canonical hash of rom.Spec, keeps recently used models in an
// in-memory LRU admitted against a byte budget (each model's MemoryBytes,
// so a handful of large lattices cannot silently evict a whole working set
// of small ones), optionally spills every built model to disk in the gob
// format of rom.Save/rom.Load, and deduplicates concurrent builds with
// singleflight so N simultaneous requests for the same unit cell run the
// local stage exactly once.
package romcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rom"
)

// Key returns the canonical content address of a spec: the hex SHA-256 of
// its gob encoding. Specs with equal field values always hash equally; any
// differing field changes the key.
func Key(spec rom.Spec) (string, error) {
	h := sha256.New()
	if err := gob.NewEncoder(h).Encode(&spec); err != nil {
		return "", fmt.Errorf("romcache: hash spec: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// DefaultMaxBytes is the in-memory budget used when Options sets neither
// MaxBytes nor MaxEntries: 2 GiB, a few paper-resolution ROMs.
const DefaultMaxBytes = 2 << 30

// Options configures a Cache.
type Options struct {
	// MaxBytes bounds the in-memory LRU by model size — the sum of the
	// cached ROMs' MemoryBytes (basis vectors dominate; hundreds of MB per
	// model at paper resolution). Admission is by bytes so one large
	// lattice cannot evict an entire working set of small ones the way an
	// entry-count bound would let it. A single model larger than the whole
	// budget is still admitted (alone); otherwise the cache could never
	// serve it. When both MaxBytes and MaxEntries are zero, MaxBytes
	// defaults to DefaultMaxBytes.
	MaxBytes int64
	// MaxEntries optionally bounds the LRU by entry count as well
	// (0 = no entry bound). Kept for callers that want a hard model count
	// on top of the byte budget.
	MaxEntries int
	// Dir enables disk spill: every built model is written to
	// Dir/<key>.rom (write-through), and an in-memory miss tries the disk
	// before re-running the local stage. Empty disables spill.
	Dir string
	// Workers is the local-stage parallelism for cache-miss builds
	// (0 = GOMAXPROCS).
	Workers int
	// Build overrides the local stage (used by tests); defaults to
	// rom.Build.
	Build func(spec rom.Spec, workers int) (*rom.ROM, error)
	// Size overrides the per-model byte accounting (used by tests);
	// defaults to the model's recorded Stats.MemoryBytes with a structural
	// recount as fallback.
	Size func(r *rom.ROM) int64
	// SweepAge is the age past which crash leftovers in Dir — orphaned
	// .tmp spill files and .lock files whose writer died — are removed,
	// both by the sweep at New and when breaking a stale lock (default
	// 15 minutes; a live spill holds either for far less). Only meaningful
	// with Dir set.
	SweepAge time.Duration
}

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	// Hits counts Get calls served without running the local stage
	// (in-memory, disk, or by joining another caller's in-flight build).
	Hits int64
	// Misses counts Get calls that ran the local stage.
	Misses int64
	// DiskHits counts the subset of Hits served by loading a spilled model.
	DiskHits int64
	// Evictions counts models dropped from the in-memory LRU.
	Evictions int64
	// BuildTime is the cumulative local-stage time paid by misses.
	BuildTime time.Duration
	// Entries is the current in-memory model count.
	Entries int
	// Bytes is the current in-memory model footprint; MaxBytes is the
	// budget it is admitted against (0 = entry-count bound only).
	Bytes, MaxBytes int64
	// SpillSkips counts saveDisk calls that stood down because another
	// writer held the key's lock or had already spilled the model.
	SpillSkips int64
	// DiskCorrupt counts spill files rejected by the checksum trailer or
	// decoder and removed (the build then runs as a plain miss).
	DiskCorrupt int64
	// Swept counts crash leftovers (orphan .tmp, stale .lock) removed
	// from the spill directory.
	Swept int64
}

// Cache is a content-addressed ROM cache, safe for concurrent use.
type Cache struct {
	opt    Options
	flight Group[*rom.ROM]

	mu sync.Mutex
	// guarded by mu
	entries map[string]*list.Element
	lru     *list.List // guarded by mu; front = most recently used
	bytes   int64      // guarded by mu; sum of resident entry sizes

	hits, misses, diskHits, evictions atomic.Int64
	buildNanos                        atomic.Int64
	spillSkips, diskCorrupt, swept    atomic.Int64
}

type cacheEntry struct {
	key   string
	rom   *rom.ROM
	bytes int64
}

// New creates a cache. A zero Options is valid: a DefaultMaxBytes budget,
// no entry cap, no disk spill, GOMAXPROCS build workers.
func New(opt Options) *Cache {
	if opt.MaxBytes <= 0 && opt.MaxEntries <= 0 {
		opt.MaxBytes = DefaultMaxBytes
	}
	if opt.Build == nil {
		opt.Build = rom.Build
	}
	if opt.Size == nil {
		opt.Size = romBytes
	}
	if opt.SweepAge <= 0 {
		opt.SweepAge = 15 * time.Minute
	}
	c := &Cache{
		opt:     opt,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
	if opt.Dir != "" {
		c.sweepOrphans()
	}
	return c
}

// sweepOrphans removes crash leftovers from the spill directory: .tmp files
// a dead writer never renamed and .lock files it never released, both aged
// past SweepAge so in-flight spills by live replicas are left alone.
func (c *Cache) sweepOrphans() {
	ents, err := os.ReadDir(c.opt.Dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if !strings.Contains(name, ".tmp") && !strings.HasSuffix(name, ".lock") {
			continue
		}
		info, err := e.Info()
		if err != nil || time.Since(info.ModTime()) <= c.opt.SweepAge {
			continue
		}
		if os.Remove(filepath.Join(c.opt.Dir, name)) == nil {
			c.swept.Add(1)
		}
	}
}

// romBytes is the default Size: the model's recorded build-time footprint,
// recounted structurally when the record is missing (older spill files).
func romBytes(r *rom.ROM) int64 {
	if b := r.Stats.MemoryBytes; b > 0 {
		return b
	}
	var b int64
	for _, f := range r.Basis {
		b += int64(len(f)) * 8
	}
	b += int64(len(r.BasisT)) * 8
	if r.Aelem != nil {
		b += int64(len(r.Aelem.Data)) * 8
	}
	b += int64(len(r.Belem)) * 8
	return b
}

// Get returns the ROM for spec, running the local stage only when the model
// is in neither memory nor disk and no equivalent build is already in
// flight. The boolean reports whether the call avoided the local stage.
func (c *Cache) Get(spec rom.Spec) (*rom.ROM, bool, error) {
	key, err := Key(spec)
	if err != nil {
		return nil, false, err
	}
	if r := c.lookup(key); r != nil {
		c.hits.Add(1)
		return r, true, nil
	}
	built := false
	r, err, shared := c.flight.Do(key, func() (*rom.ROM, error) {
		// Another flight may have inserted the model between our lookup
		// and acquiring the flight slot.
		if r := c.lookup(key); r != nil {
			return r, nil
		}
		if r := c.loadDisk(key); r != nil {
			c.diskHits.Add(1)
			c.insert(key, r)
			return r, nil
		}
		built = true
		start := time.Now()
		r, err := c.opt.Build(spec, c.opt.Workers)
		if err != nil {
			return nil, err
		}
		c.buildNanos.Add(int64(time.Since(start)))
		c.insert(key, r)
		c.saveDisk(key, r)
		return r, nil
	})
	if err != nil {
		return nil, false, err
	}
	hit := shared || !built
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return r, hit, nil
}

// Contains reports whether the model for spec is currently in memory,
// without touching LRU order or counters.
func (c *Cache) Contains(spec rom.Spec) bool {
	key, err := Key(spec)
	if err != nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	n, b := len(c.entries), c.bytes
	c.mu.Unlock()
	return Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		DiskHits:    c.diskHits.Load(),
		Evictions:   c.evictions.Load(),
		BuildTime:   time.Duration(c.buildNanos.Load()),
		Entries:     n,
		Bytes:       b,
		MaxBytes:    c.opt.MaxBytes,
		SpillSkips:  c.spillSkips.Load(),
		DiskCorrupt: c.diskCorrupt.Load(),
		Swept:       c.swept.Load(),
	}
}

func (c *Cache) lookup(key string) *rom.ROM {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).rom
}

func (c *Cache) insert(key string, r *rom.ROM) {
	size := c.opt.Size(r)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.bytes += size - e.bytes
		e.rom, e.bytes = r, size
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, rom: r, bytes: size})
	c.bytes += size
	// Evict from the cold end until both budgets hold, but never the entry
	// just admitted: a single model over the whole byte budget still serves
	// (it simply shares the cache with nothing).
	for c.lru.Len() > 1 && c.overBudgetLocked() {
		back := c.lru.Back()
		e := back.Value.(*cacheEntry)
		delete(c.entries, e.key)
		c.lru.Remove(back)
		c.bytes -= e.bytes
		c.evictions.Add(1)
	}
}

// overBudgetLocked reports whether either configured bound is exceeded.
// Callers hold c.mu.
func (c *Cache) overBudgetLocked() bool {
	if c.opt.MaxBytes > 0 && c.bytes > c.opt.MaxBytes {
		return true
	}
	return c.opt.MaxEntries > 0 && c.lru.Len() > c.opt.MaxEntries
}

func (c *Cache) diskPath(key string) string {
	return filepath.Join(c.opt.Dir, key+".rom")
}

// Spill files end in a fixed-size trailer so loadDisk can verify payload
// integrity without trusting the gob decoder to notice corruption:
//
//	[ CRC-32C of payload | 4 B LE ][ payload length | 8 B LE ][ magic | 8 B ]
//
// Files without the trailer (spilled by older builds) are still accepted and
// verified by spec-hash alone.
const (
	trailerLen   = 20
	trailerMagic = "MSROMCK1"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// loadDisk restores a spilled model, returning nil on any failure: a
// missing, truncated, or corrupt spill file is a plain cache miss (the spill
// is a performance hint, not a source of truth), and a checksum or decode
// failure removes the bad file so the fresh build can replace it. A
// well-formed file whose content hashes to a different key is likewise
// rejected.
func (c *Cache) loadDisk(key string) *rom.ROM {
	if c.opt.Dir == "" {
		return nil
	}
	f, err := os.Open(c.diskPath(key))
	if err != nil {
		return nil
	}
	defer f.Close()
	payload, verified, err := verifyTrailer(f)
	if err != nil {
		c.dropCorrupt(key)
		return nil
	}
	var src io.Reader = f
	if verified {
		src = io.LimitReader(f, payload)
	}
	r, err := rom.Load(src)
	if err != nil {
		c.dropCorrupt(key)
		return nil
	}
	if got, err := Key(r.Spec); err != nil || got != key {
		c.dropCorrupt(key)
		return nil
	}
	return r
}

func (c *Cache) dropCorrupt(key string) {
	os.Remove(c.diskPath(key))
	c.diskCorrupt.Add(1)
}

// verifyTrailer checks f's checksum trailer and leaves f positioned at the
// start of the payload. verified is false for legacy trailer-less files
// (payload is then unknown and f reads to EOF); err reports a trailer whose
// checksum or length does not match the payload — corruption, not legacy.
func verifyTrailer(f *os.File) (payload int64, verified bool, err error) {
	st, err := f.Stat()
	if err != nil {
		return 0, false, err
	}
	size := st.Size()
	var tr [trailerLen]byte
	if size < trailerLen {
		return size, false, nil
	}
	if _, err := f.ReadAt(tr[:], size-trailerLen); err != nil {
		return 0, false, err
	}
	if string(tr[12:20]) != trailerMagic {
		return size, false, nil // legacy spill: no trailer
	}
	payload = int64(binary.LittleEndian.Uint64(tr[4:12]))
	if payload != size-trailerLen {
		return 0, false, fmt.Errorf("romcache: trailer claims %d payload bytes of a %d-byte file", payload, size)
	}
	crc := crc32.New(castagnoli)
	if _, err := io.Copy(crc, io.LimitReader(f, payload)); err != nil {
		return 0, false, err
	}
	if crc.Sum32() != binary.LittleEndian.Uint32(tr[0:4]) {
		return 0, false, fmt.Errorf("romcache: spill payload checksum mismatch")
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, false, err
	}
	return payload, true, nil
}

// saveDisk spills a built model (write-through) crash-safely: the payload and
// its checksum trailer go to a temp file that is fsynced before an atomic
// rename, and the directory is fsynced after, so a spill either exists whole
// and verified or not at all. An O_EXCL lock file serializes writers per key —
// N replicas mounting one cache dir spill each model exactly once. Spill
// failures are ignored: the in-memory model is intact and the next miss
// simply rebuilds.
func (c *Cache) saveDisk(key string, r *rom.ROM) {
	if c.opt.Dir == "" {
		return
	}
	if err := os.MkdirAll(c.opt.Dir, 0o755); err != nil {
		return
	}
	unlock, ok := c.lockKey(key)
	if !ok {
		c.spillSkips.Add(1)
		return
	}
	defer unlock()
	if _, err := os.Stat(c.diskPath(key)); err == nil {
		// Already spilled (content-addressed: same key, same bytes) — by
		// this process earlier or by another replica sharing the dir.
		c.spillSkips.Add(1)
		return
	}
	tmp, err := os.CreateTemp(c.opt.Dir, key+".tmp*")
	if err != nil {
		return
	}
	discard := func() {
		tmp.Close()
		os.Remove(tmp.Name())
	}
	crc := crc32.New(castagnoli)
	if err := r.Save(io.MultiWriter(tmp, crc)); err != nil {
		discard()
		return
	}
	payload, err := tmp.Seek(0, io.SeekCurrent)
	if err != nil {
		discard()
		return
	}
	var tr [trailerLen]byte
	binary.LittleEndian.PutUint32(tr[0:4], crc.Sum32())
	binary.LittleEndian.PutUint64(tr[4:12], uint64(payload))
	copy(tr[12:20], trailerMagic)
	if _, err := tmp.Write(tr[:]); err != nil {
		discard()
		return
	}
	if err := tmp.Sync(); err != nil {
		discard()
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.diskPath(key)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	syncDir(c.opt.Dir)
}

// lockKey takes the per-key single-writer lock with an O_EXCL create. A held
// lock means another writer (possibly in another process) is spilling this
// model; the caller stands down rather than double-writing. A lock older
// than SweepAge is a crash leftover and is broken once.
func (c *Cache) lockKey(key string) (unlock func(), ok bool) {
	path := filepath.Join(c.opt.Dir, key+".lock")
	for attempt := 0; attempt < 2; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			f.Close()
			return func() { os.Remove(path) }, true
		}
		st, serr := os.Stat(path)
		if serr != nil || time.Since(st.ModTime()) <= c.opt.SweepAge {
			return nil, false
		}
		if os.Remove(path) == nil {
			c.swept.Add(1)
		}
	}
	return nil, false
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Best effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
