package fem

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/sparse"
)

// Model couples a grid with its material table.
type Model struct {
	Grid *mesh.Grid
	// Mats maps MatID to material. Elements with mesh.VoidMaterial are
	// skipped entirely.
	Mats []material.Material
}

// TSVMats returns the material table matching the mesh material ids
// (MatSilicon, MatCopper, MatLiner).
func TSVMats(set material.TSVSet) []material.Material {
	return []material.Material{mesh.MatSilicon: set.Bulk, mesh.MatCopper: set.Via, mesh.MatLiner: set.Liner}
}

// Assembled is the outcome of global FEM assembly.
type Assembled struct {
	// K is the (3N)×(3N) stiffness matrix without boundary conditions.
	K *sparse.CSR
	// F is the thermal load vector for ΔT = 1.
	F []float64
	// ActiveNode marks nodes attached to at least one non-void element;
	// inactive nodes carry identity rows in K.
	ActiveNode []bool
}

// NumDoFs returns the total number of displacement DoFs (3 per node).
func (m *Model) NumDoFs() int { return 3 * m.Grid.NumNodes() }

// vtkOffset maps a node's (ox, oy, oz) ∈ {0,1}³ offset within an element
// cell to the VTK local node index.
var vtkOffset = [2][2][2]int{
	{{0, 4}, {3, 7}}, // ox=0: (oy=0,oz=0)=0, (0,1)=4, (1,0)=3, (1,1)=7
	{{1, 5}, {2, 6}}, // ox=1
}

// elemKey caches element matrices by size and material; coordinates are
// rounded so replicated blocks share cache entries.
type elemKey struct {
	hx, hy, hz int64
	mat        uint8
}

func quantize(v float64) int64 { return int64(math.Round(v * 1e9)) }

// Assemble builds the global stiffness matrix and thermal load vector. The
// assembly is parallel over node slabs (each goroutine owns whole matrix
// rows, so no synchronization on values is needed) and element matrices are
// cached by (size, material), which makes structured-array assembly cheap.
//
//stressvet:gang -- `workers` goroutines over disjoint node chunks
func (m *Model) Assemble(workers int) (*Assembled, error) {
	g := m.Grid
	for e, id := range g.MatID {
		if id == mesh.VoidMaterial {
			continue
		}
		if int(id) >= len(m.Mats) {
			return nil, fmt.Errorf("fem: element %d has material id %d outside table of %d", e, id, len(m.Mats))
		}
	}
	if workers < 1 {
		workers = 1
	}

	// Precompute the per-element matrix cache.
	cache := map[elemKey]*ElemMats{}
	elemMat := make([]*ElemMats, g.NumElems())
	for e := 0; e < g.NumElems(); e++ {
		id := g.MatID[e]
		if id == mesh.VoidMaterial {
			continue
		}
		hx, hy, hz := g.ElemSize(e)
		key := elemKey{quantize(hx), quantize(hy), quantize(hz), id}
		em, ok := cache[key]
		if !ok {
			em = ComputeElemMats(hx, hy, hz, m.Mats[id])
			cache[key] = em
		}
		elemMat[e] = em
	}

	nn := g.NumNodes()
	active := g.ActiveNodes()
	nx, ny, nz := len(g.Xs), len(g.Ys), len(g.Zs)

	// Pass 1: per-DoF row sizes. A node row holds 3 columns per lattice
	// neighbour (including itself); inactive nodes get identity rows.
	rowPtr := make([]int32, 3*nn+1)
	neighborCount := func(i, j, k int) int {
		c := 0
		for dk := -1; dk <= 1; dk++ {
			kk := k + dk
			if kk < 0 || kk >= nz {
				continue
			}
			for dj := -1; dj <= 1; dj++ {
				jj := j + dj
				if jj < 0 || jj >= ny {
					continue
				}
				for di := -1; di <= 1; di++ {
					ii := i + di
					if ii < 0 || ii >= nx {
						continue
					}
					c++
				}
			}
		}
		return c
	}
	for n := 0; n < nn; n++ {
		var sz int32
		if active[n] {
			i, j, k := g.NodeIJK(n)
			sz = int32(3 * neighborCount(i, j, k))
		} else {
			sz = 1
		}
		rowPtr[3*n+1] = sz
		rowPtr[3*n+2] = sz
		rowPtr[3*n+3] = sz
	}
	for r := 0; r < 3*nn; r++ {
		rowPtr[r+1] += rowPtr[r]
	}
	nnz := int(rowPtr[3*nn])
	colIdx := make([]int32, nnz)
	vals := make([]float64, nnz)
	f := make([]float64, 3*nn)

	// Pass 2: fill rows in parallel over node ranges.
	nex, ney := g.NEX(), g.NEY()
	fill := func(lo, hi int) {
		// block[c][slot] accumulates the 3 rows of the node against up to
		// 27 neighbour nodes × 3 components.
		var block [3][81]float64
		var neigh [27]int32 // neighbour node indices, ascending
		var slotOf [27]int8 // (di+1)+3(dj+1)+9(dk+1) -> slot or -1
		for n := lo; n < hi; n++ {
			base := 3 * n
			if !active[n] {
				for c := 0; c < 3; c++ {
					p := rowPtr[base+c]
					colIdx[p] = int32(base + c)
					vals[p] = 1
				}
				continue
			}
			i, j, k := g.NodeIJK(n)
			nNeigh := 0
			for s := range slotOf {
				slotOf[s] = -1
			}
			for dk := -1; dk <= 1; dk++ {
				kk := k + dk
				if kk < 0 || kk >= nz {
					continue
				}
				for dj := -1; dj <= 1; dj++ {
					jj := j + dj
					if jj < 0 || jj >= ny {
						continue
					}
					for di := -1; di <= 1; di++ {
						ii := i + di
						if ii < 0 || ii >= nx {
							continue
						}
						neigh[nNeigh] = int32(g.NodeIndex(ii, jj, kk))
						slotOf[(di+1)+3*(dj+1)+9*(dk+1)] = int8(nNeigh)
						nNeigh++
					}
				}
			}
			for c := 0; c < 3; c++ {
				for s := 0; s < 3*nNeigh; s++ {
					block[c][s] = 0
				}
			}
			var fn [3]float64
			// Incident elements: cells (i-1..i, j-1..j, k-1..k).
			for ek := k - 1; ek <= k; ek++ {
				if ek < 0 || ek >= g.NEZ() {
					continue
				}
				for ej := j - 1; ej <= j; ej++ {
					if ej < 0 || ej >= ney {
						continue
					}
					for ei := i - 1; ei <= i; ei++ {
						if ei < 0 || ei >= nex {
							continue
						}
						e := g.ElemIndex(ei, ej, ek)
						em := elemMat[e]
						if em == nil {
							continue
						}
						a := vtkOffset[i-ei][j-ej][k-ek]
						// Scatter row block a of Ke over the 8 element
						// nodes.
						for b := 0; b < 8; b++ {
							s := vtkSigns[b]
							// Node b offsets within the cell: (1+s)/2.
							obi := ei + int(s[0]+1)/2
							obj := ej + int(s[1]+1)/2
							obk := ek + int(s[2]+1)/2
							slot := slotOf[(obi-i+1)+3*(obj-j+1)+9*(obk-k+1)]
							for c := 0; c < 3; c++ {
								row := &block[c]
								kr := &em.K[3*a+c]
								row[3*int(slot)] += kr[3*b]
								row[3*int(slot)+1] += kr[3*b+1]
								row[3*int(slot)+2] += kr[3*b+2]
							}
						}
						for c := 0; c < 3; c++ {
							fn[c] += em.F[3*a+c]
						}
					}
				}
			}
			for c := 0; c < 3; c++ {
				p := rowPtr[base+c]
				for s := 0; s < nNeigh; s++ {
					nb := 3 * neigh[s]
					colIdx[p] = nb
					colIdx[p+1] = nb + 1
					colIdx[p+2] = nb + 2
					vals[p] = block[c][3*s]
					vals[p+1] = block[c][3*s+1]
					vals[p+2] = block[c][3*s+2]
					p += 3
				}
				f[base+c] = fn[c]
			}
		}
	}

	var wg sync.WaitGroup
	chunk := (nn + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > nn {
			hi = nn
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fill(lo, hi)
		}(lo, hi)
	}
	wg.Wait()

	k3 := &sparse.CSR{NRows: 3 * nn, NCols: 3 * nn, RowPtr: rowPtr, ColIdx: colIdx, Vals: vals}
	return &Assembled{K: k3, F: f, ActiveNode: active}, nil
}
