package fem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/solver"
)

func TestShapeFunctionsPartitionOfUnity(t *testing.T) {
	f := func(xi, eta, zeta float64) bool {
		xi = math.Mod(xi, 1)
		eta = math.Mod(eta, 1)
		zeta = math.Mod(zeta, 1)
		n := ShapeFunctions(xi, eta, zeta)
		var s float64
		for _, v := range n {
			s += v
		}
		return math.Abs(s-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShapeFunctionsKroneckerDelta(t *testing.T) {
	for a := 0; a < 8; a++ {
		s := vtkSigns[a]
		n := ShapeFunctions(s[0], s[1], s[2])
		for b := 0; b < 8; b++ {
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(n[b]-want) > 1e-14 {
				t.Fatalf("N_%d at node %d = %g", b, a, n[b])
			}
		}
	}
}

func TestShapeGradientsSumToZero(t *testing.T) {
	// Gradients of a partition of unity sum to zero.
	g := ShapeGradients(0.3, -0.2, 0.7, 2, 3, 4)
	for c := 0; c < 3; c++ {
		var s float64
		for a := 0; a < 8; a++ {
			s += g[a][c]
		}
		if math.Abs(s) > 1e-12 {
			t.Errorf("gradient component %d sums to %g", c, s)
		}
	}
}

func TestShapeGradientsLinearExactness(t *testing.T) {
	// The element must reproduce the gradient of a linear field exactly.
	hx, hy, hz := 1.5, 2.5, 0.5
	coeff := [3]float64{2, -3, 4}
	g := ShapeGradients(0.1, 0.2, -0.3, hx, hy, hz)
	// Node values of f(x,y,z) = 2x − 3y + 4z on the element [0,hx]×…
	var grad [3]float64
	for a := 0; a < 8; a++ {
		s := vtkSigns[a]
		x := (s[0] + 1) / 2 * hx
		y := (s[1] + 1) / 2 * hy
		z := (s[2] + 1) / 2 * hz
		f := coeff[0]*x + coeff[1]*y + coeff[2]*z
		for c := 0; c < 3; c++ {
			grad[c] += g[a][c] * f
		}
	}
	for c := 0; c < 3; c++ {
		if math.Abs(grad[c]-coeff[c]) > 1e-12 {
			t.Errorf("gradient %d = %g, want %g", c, grad[c], coeff[c])
		}
	}
}

func TestElemStiffnessProperties(t *testing.T) {
	em := ComputeElemMats(1.2, 0.8, 2.0, material.Silicon)
	// Symmetry.
	for i := 0; i < 24; i++ {
		for j := 0; j < 24; j++ {
			if math.Abs(em.K[i][j]-em.K[j][i]) > 1e-6*math.Abs(em.K[i][j]) {
				t.Fatalf("K not symmetric at (%d,%d)", i, j)
			}
		}
	}
	// Rigid translation in each direction is in the null space.
	for c := 0; c < 3; c++ {
		for i := 0; i < 24; i++ {
			var s float64
			for a := 0; a < 8; a++ {
				s += em.K[i][3*a+c]
			}
			if math.Abs(s) > 1e-6 {
				t.Fatalf("translation %d not in null space: row %d -> %g", c, i, s)
			}
		}
	}
	// Thermal load is equilibrated (sums to zero per component).
	for c := 0; c < 3; c++ {
		var s float64
		for a := 0; a < 8; a++ {
			s += em.F[3*a+c]
		}
		if math.Abs(s) > 1e-6 {
			t.Errorf("thermal load component %d sums to %g", c, s)
		}
	}
}

func TestElemStiffnessRotationNullSpace(t *testing.T) {
	// Infinitesimal rigid rotation about z: u = (−y, x, 0) must produce
	// zero strain energy.
	hx, hy, hz := 1.0, 1.0, 1.0
	em := ComputeElemMats(hx, hy, hz, material.Copper)
	var u [24]float64
	for a := 0; a < 8; a++ {
		s := vtkSigns[a]
		x := (s[0] + 1) / 2 * hx
		y := (s[1] + 1) / 2 * hy
		u[3*a] = -y
		u[3*a+1] = x
	}
	var energy float64
	for i := 0; i < 24; i++ {
		for j := 0; j < 24; j++ {
			energy += u[i] * em.K[i][j] * u[j]
		}
	}
	if math.Abs(energy) > 1e-6 {
		t.Errorf("rotation strain energy %g", energy)
	}
}

// homogeneousModel builds a small single-material block model.
func homogeneousModel(t *testing.T, nx, ny, nz int, mat material.Material) *Model {
	t.Helper()
	g, err := mesh.NewGrid(mesh.UniformAxis(0, 2, nx), mesh.UniformAxis(0, 3, ny), mesh.UniformAxis(0, 1, nz))
	if err != nil {
		t.Fatal(err)
	}
	return &Model{Grid: g, Mats: []material.Material{mat}}
}

func TestAssembleSymmetricSPD(t *testing.T) {
	m := homogeneousModel(t, 3, 3, 3, material.Silicon)
	asm, err := m.Assemble(4)
	if err != nil {
		t.Fatal(err)
	}
	if !asm.K.IsSymmetric(1e-10) {
		t.Error("stiffness not symmetric")
	}
	// With all-boundary Dirichlet the reduced matrix must factor (SPD).
	nn := m.Grid.NumNodes()
	isBC := make([]bool, 3*nn)
	for n := 0; n < nn; n++ {
		if m.Grid.OnBoundary(n) {
			isBC[3*n], isBC[3*n+1], isBC[3*n+2] = true, true, true
		}
	}
	red, err := Reduce(asm.K, asm.F, isBC)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solver.NewCholesky(red.Aff); err != nil {
		t.Errorf("reduced stiffness not SPD: %v", err)
	}
}

func TestAssembleSerialParallelIdentical(t *testing.T) {
	m := homogeneousModel(t, 4, 3, 2, material.Copper)
	a1, err := m.Assemble(1)
	if err != nil {
		t.Fatal(err)
	}
	a8, err := m.Assemble(8)
	if err != nil {
		t.Fatal(err)
	}
	if a1.K.NNZ() != a8.K.NNZ() {
		t.Fatal("nnz differs")
	}
	for i := range a1.K.Vals {
		if a1.K.Vals[i] != a8.K.Vals[i] {
			t.Fatal("values differ between serial and parallel assembly")
		}
	}
	for i := range a1.F {
		if a1.F[i] != a8.F[i] {
			t.Fatal("load differs between serial and parallel assembly")
		}
	}
}

// solveDirichlet solves the model with boundary displacement given by fn and
// thermal load deltaT, returning the full displacement vector.
func solveDirichlet(t *testing.T, m *Model, deltaT float64, fn func(p mesh.Vec3) [3]float64) []float64 {
	t.Helper()
	asm, err := m.Assemble(2)
	if err != nil {
		t.Fatal(err)
	}
	nn := m.Grid.NumNodes()
	isBC := make([]bool, 3*nn)
	var bcNodes []int
	for n := 0; n < nn; n++ {
		if m.Grid.OnBoundary(n) {
			isBC[3*n], isBC[3*n+1], isBC[3*n+2] = true, true, true
			bcNodes = append(bcNodes, n)
		}
	}
	red, err := Reduce(asm.K, asm.F, isBC)
	if err != nil {
		t.Fatal(err)
	}
	ubc := make([]float64, len(red.BCIdx))
	for bi, n := range bcNodes {
		d := fn(m.Grid.NodeCoord(n))
		ubc[3*bi], ubc[3*bi+1], ubc[3*bi+2] = d[0], d[1], d[2]
	}
	chol, err := solver.NewCholesky(red.Aff)
	if err != nil {
		t.Fatal(err)
	}
	xf := chol.Solve(red.RHS(deltaT, ubc))
	return red.Expand(xf, ubc)
}

func TestPatchTestLinearField(t *testing.T) {
	// Patch test: a linear boundary displacement with ΔT = 0 must be
	// reproduced exactly in the interior, with constant strain.
	m := homogeneousModel(t, 3, 4, 3, material.Silicon)
	lin := func(p mesh.Vec3) [3]float64 {
		return [3]float64{
			1e-3*p.X + 2e-3*p.Y - 1e-3*p.Z,
			-2e-3*p.X + 1e-3*p.Y,
			3e-3*p.Z + 1e-3*p.X,
		}
	}
	u := solveDirichlet(t, m, 0, lin)
	for n := 0; n < m.Grid.NumNodes(); n++ {
		c := m.Grid.NodeCoord(n)
		want := lin(c)
		for comp := 0; comp < 3; comp++ {
			if math.Abs(u[3*n+comp]-want[comp]) > 1e-9 {
				t.Fatalf("patch test failed at node %d comp %d: %g vs %g", n, comp, u[3*n+comp], want[comp])
			}
		}
	}
	// Strain must be constant and match the symmetric gradient.
	eps := m.StrainAt(u, m.Grid.NumElems()/2, 0.2, -0.4, 0.6)
	want := [6]float64{1e-3, 1e-3, 3e-3, 0, -1e-3 + 1e-3, 2e-3 - 2e-3}
	for c := 0; c < 6; c++ {
		if math.Abs(eps[c]-want[c]) > 1e-12 {
			t.Errorf("strain[%d] = %g, want %g", c, eps[c], want[c])
		}
	}
}

func TestUniformThermalExpansionStressFree(t *testing.T) {
	// Prescribing the exact free-expansion field u = αΔT(r−r₀) on the
	// boundary of a homogeneous block must give (numerically) zero stress.
	mat := material.Silicon
	m := homogeneousModel(t, 3, 3, 4, mat)
	deltaT := -250.0
	a := mat.CTE * deltaT
	fn := func(p mesh.Vec3) [3]float64 {
		return [3]float64{a * p.X, a * p.Y, a * p.Z}
	}
	u := solveDirichlet(t, m, deltaT, fn)
	scale := mat.ThermalStressCoeff() * math.Abs(deltaT)
	for e := 0; e < m.Grid.NumElems(); e++ {
		s := m.StressAt(u, deltaT, e, 0, 0, 0)
		for c := 0; c < 6; c++ {
			if math.Abs(s[c]) > 1e-8*scale {
				t.Fatalf("element %d stress[%d] = %g, want ~0 (scale %g)", e, c, s[c], scale)
			}
		}
	}
}

func TestZeroBoundaryHydrostaticStress(t *testing.T) {
	// u = 0 on the boundary of a homogeneous block under ΔT: the exact
	// solution is u ≡ 0 with hydrostatic stress −α(3λ+2µ)ΔT on the
	// diagonal.
	mat := material.Copper
	m := homogeneousModel(t, 3, 3, 3, mat)
	deltaT := 100.0
	u := solveDirichlet(t, m, deltaT, func(mesh.Vec3) [3]float64 { return [3]float64{} })
	for _, v := range u {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("interior displacement %g, want 0", v)
		}
	}
	want := -mat.ThermalStressCoeff() * deltaT
	s := m.StressAt(u, deltaT, 0, 0.5, -0.5, 0)
	for c := 0; c < 3; c++ {
		if math.Abs(s[c]-want)/math.Abs(want) > 1e-12 {
			t.Errorf("normal stress %g, want %g", s[c], want)
		}
	}
	for c := 3; c < 6; c++ {
		if math.Abs(s[c]) > 1e-10*math.Abs(want) {
			t.Errorf("shear stress %g, want ~0", s[c])
		}
	}
}

func TestVonMises(t *testing.T) {
	// Hydrostatic stress has zero von Mises.
	if vm := VonMises([6]float64{5, 5, 5, 0, 0, 0}); math.Abs(vm) > 1e-12 {
		t.Errorf("hydrostatic vM = %g", vm)
	}
	// Uniaxial stress: vM = |σ|.
	if vm := VonMises([6]float64{7, 0, 0, 0, 0, 0}); math.Abs(vm-7) > 1e-12 {
		t.Errorf("uniaxial vM = %g", vm)
	}
	// Pure shear: vM = √3·|τ|.
	if vm := VonMises([6]float64{0, 0, 0, 2, 0, 0}); math.Abs(vm-2*math.Sqrt(3)) > 1e-12 {
		t.Errorf("shear vM = %g", vm)
	}
}

func TestVonMisesInvariantUnderHydrostaticShift(t *testing.T) {
	bound := func(x float64) float64 { return math.Mod(x, 1e6) }
	f := func(a, b, c, d, e, g, shift float64) bool {
		a, b, c, d, e, g, shift = bound(a), bound(b), bound(c), bound(d), bound(e), bound(g), bound(shift)
		s1 := [6]float64{a, b, c, d, e, g}
		s2 := [6]float64{a + shift, b + shift, c + shift, d, e, g}
		v1, v2 := VonMises(s1), VonMises(s2)
		return math.Abs(v1-v2) <= 1e-7*(1+v1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDisplacementAtPointInterpolates(t *testing.T) {
	m := homogeneousModel(t, 2, 2, 2, material.Silicon)
	// A linear displacement field is interpolated exactly anywhere.
	lin := func(p mesh.Vec3) [3]float64 {
		return [3]float64{0.5 * p.X, -0.25 * p.Y, p.Z}
	}
	u := make([]float64, m.NumDoFs())
	for n := 0; n < m.Grid.NumNodes(); n++ {
		d := lin(m.Grid.NodeCoord(n))
		u[3*n], u[3*n+1], u[3*n+2] = d[0], d[1], d[2]
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		p := mesh.Vec3{X: rng.Float64() * 2, Y: rng.Float64() * 3, Z: rng.Float64()}
		got := m.DisplacementAtPoint(u, p)
		want := lin(p)
		for c := 0; c < 3; c++ {
			if math.Abs(got[c]-want[c]) > 1e-12 {
				t.Fatalf("interpolation at %v: %v vs %v", p, got, want)
			}
		}
	}
}

func TestReduceRoundTrip(t *testing.T) {
	m := homogeneousModel(t, 2, 2, 2, material.Silicon)
	asm, err := m.Assemble(1)
	if err != nil {
		t.Fatal(err)
	}
	n := m.NumDoFs()
	isBC := make([]bool, n)
	for i := 0; i < n; i += 2 {
		isBC[i] = true
	}
	red, err := Reduce(asm.K, asm.F, isBC)
	if err != nil {
		t.Fatal(err)
	}
	if red.NFree()+len(red.BCIdx) != n {
		t.Fatal("partition sizes do not sum")
	}
	xf := make([]float64, red.NFree())
	for i := range xf {
		xf[i] = float64(i + 1)
	}
	ubc := make([]float64, len(red.BCIdx))
	for i := range ubc {
		ubc[i] = -float64(i + 1)
	}
	full := red.Expand(xf, ubc)
	for fi, idx := range red.FreeIdx {
		if full[idx] != xf[fi] {
			t.Fatal("free expansion mismatch")
		}
	}
	for bi, idx := range red.BCIdx {
		if full[idx] != ubc[bi] {
			t.Fatal("bc expansion mismatch")
		}
	}
}

func TestReduceErrors(t *testing.T) {
	m := homogeneousModel(t, 2, 2, 2, material.Silicon)
	asm, _ := m.Assemble(1)
	all := make([]bool, m.NumDoFs())
	for i := range all {
		all[i] = true
	}
	if _, err := Reduce(asm.K, asm.F, all); err == nil {
		t.Error("expected error when all DoFs constrained")
	}
	if _, err := Reduce(asm.K, asm.F, make([]bool, 3)); err == nil {
		t.Error("expected error on mask size mismatch")
	}
}

func TestVoidElementsExcluded(t *testing.T) {
	g, err := mesh.NewGrid(mesh.UniformAxis(0, 2, 2), mesh.UniformAxis(0, 1, 1), mesh.UniformAxis(0, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	g.MatID[1] = mesh.VoidMaterial
	m := &Model{Grid: g, Mats: []material.Material{material.Silicon}}
	asm, err := m.Assemble(1)
	if err != nil {
		t.Fatal(err)
	}
	// Inactive node rows are identity.
	for n, act := range asm.ActiveNode {
		if act {
			continue
		}
		for c := 0; c < 3; c++ {
			r := 3*n + c
			if asm.K.RowPtr[r+1]-asm.K.RowPtr[r] != 1 || asm.K.At(r, r) != 1 {
				t.Fatalf("inactive row %d is not identity", r)
			}
			if asm.F[r] != 0 {
				t.Fatalf("inactive row %d has load", r)
			}
		}
	}
}

func TestMaterialIDOutOfRange(t *testing.T) {
	g, _ := mesh.NewGrid(mesh.UniformAxis(0, 1, 1), mesh.UniformAxis(0, 1, 1), mesh.UniformAxis(0, 1, 1))
	g.MatID[0] = 7
	m := &Model{Grid: g, Mats: []material.Material{material.Silicon}}
	if _, err := m.Assemble(1); err == nil {
		t.Error("expected error for out-of-range material id")
	}
}
