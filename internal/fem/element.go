// Package fem implements the finite-element kernel for linear
// thermoelasticity (Eq. 1 of the paper) on structured hexahedral meshes:
// trilinear 8-node elements with 2×2×2 Gauss quadrature, parallel global
// assembly, Dirichlet reduction by the lifting procedure (Eqs. 12–13), and
// strain/stress recovery.
package fem

import (
	"math"

	"repro/internal/material"
)

// Voigt ordering used throughout: [σxx, σyy, σzz, σyz, σxz, σxy] with
// engineering shear strains [εxx, εyy, εzz, γyz, γxz, γxy].

// vtkSigns holds the reference coordinates (ξ,η,ζ ∈ ±1) of the 8 nodes in
// VTK hexahedron order.
var vtkSigns = [8][3]float64{
	{-1, -1, -1}, {1, -1, -1}, {1, 1, -1}, {-1, 1, -1},
	{-1, -1, 1}, {1, -1, 1}, {1, 1, 1}, {-1, 1, 1},
}

// gauss2 holds the 2-point Gauss rule locations (both weights are 1).
var gauss2 [2]float64

func init() {
	g := 1 / math.Sqrt(3)
	gauss2 = [2]float64{-g, g}
}

// ShapeFunctions evaluates the 8 trilinear shape functions at reference
// point (ξ, η, ζ).
func ShapeFunctions(xi, eta, zeta float64) [8]float64 {
	var n [8]float64
	for a := 0; a < 8; a++ {
		s := vtkSigns[a]
		n[a] = (1 + s[0]*xi) * (1 + s[1]*eta) * (1 + s[2]*zeta) / 8
	}
	return n
}

// ShapeGradients evaluates the physical-space gradients of the 8 shape
// functions for an axis-aligned box element of size (hx, hy, hz).
func ShapeGradients(xi, eta, zeta, hx, hy, hz float64) [8][3]float64 {
	var d [8][3]float64
	for a := 0; a < 8; a++ {
		s := vtkSigns[a]
		d[a][0] = s[0] * (1 + s[1]*eta) * (1 + s[2]*zeta) / 8 * (2 / hx)
		d[a][1] = s[1] * (1 + s[0]*xi) * (1 + s[2]*zeta) / 8 * (2 / hy)
		d[a][2] = s[2] * (1 + s[0]*xi) * (1 + s[1]*eta) / 8 * (2 / hz)
	}
	return d
}

// DMatrix returns the 6×6 isotropic elasticity matrix in Voigt form for the
// given Lamé parameters.
func DMatrix(lambda, mu float64) [6][6]float64 {
	var d [6][6]float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			d[i][j] = lambda
		}
		d[i][i] = lambda + 2*mu
		d[i+3][i+3] = mu
	}
	return d
}

// ElemMats holds the 24×24 element stiffness and the 24-vector thermal load
// (for ΔT = 1) of a box element with a given material.
type ElemMats struct {
	K [24][24]float64
	F [24]float64
}

// ComputeElemMats integrates the element stiffness Ke = ∫ Bᵀ·D·B dV and the
// thermal load fe = ∫ Bᵀ·D·ε_th dV (ε_th = α·[1,1,1,0,0,0]) over a box
// element of size (hx, hy, hz) with 2×2×2 Gauss quadrature. For trilinear
// boxes this rule integrates the stiffness exactly.
func ComputeElemMats(hx, hy, hz float64, mat material.Material) *ElemMats {
	lambda, mu := mat.Lame()
	d := DMatrix(lambda, mu)
	// D·ε_th = α(3λ+2µ)·[1,1,1,0,0,0].
	ts := mat.ThermalStressCoeff()

	out := &ElemMats{}
	detJw := hx * hy * hz / 8 // per Gauss point (weights 1)
	for _, xi := range gauss2 {
		for _, eta := range gauss2 {
			for _, zeta := range gauss2 {
				g := ShapeGradients(xi, eta, zeta, hx, hy, hz)
				var b [6][24]float64
				for a := 0; a < 8; a++ {
					c := 3 * a
					dx, dy, dz := g[a][0], g[a][1], g[a][2]
					b[0][c] = dx
					b[1][c+1] = dy
					b[2][c+2] = dz
					b[3][c+1] = dz
					b[3][c+2] = dy
					b[4][c] = dz
					b[4][c+2] = dx
					b[5][c] = dy
					b[5][c+1] = dx
				}
				// db = D·B (6×24).
				var db [6][24]float64
				for i := 0; i < 6; i++ {
					for k := 0; k < 6; k++ {
						dik := d[i][k]
						if dik == 0 {
							continue
						}
						for j := 0; j < 24; j++ {
							db[i][j] += dik * b[k][j]
						}
					}
				}
				// Ke += Bᵀ·db · detJw.
				for i := 0; i < 24; i++ {
					for k := 0; k < 6; k++ {
						bki := b[k][i]
						if bki == 0 {
							continue
						}
						w := bki * detJw
						for j := 0; j < 24; j++ {
							out.K[i][j] += w * db[k][j]
						}
					}
				}
				// fe += Bᵀ·(ts·[1,1,1,0,0,0]) · detJw.
				for i := 0; i < 24; i++ {
					out.F[i] += (b[0][i] + b[1][i] + b[2][i]) * ts * detJw
				}
			}
		}
	}
	return out
}
