package fem

import (
	"math"
	"testing"

	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/solver"
)

// Method of manufactured solutions: for a homogeneous isotropic body the
// Navier operator gives ∇·σ(u) = (λ+µ)∇(∇·u) + µ∇²u, so prescribing u_exact
// determines the body force f = −∇·σ(u_exact). Solving with exact Dirichlet
// data must reproduce u_exact (exactly when u_exact lies in the trilinear
// space, at O(h²) otherwise).

// solveMMS solves the Dirichlet problem with body force and returns the full
// displacement vector.
func solveMMS(t *testing.T, m *Model, body func(mesh.Vec3) [3]float64, exact func(mesh.Vec3) [3]float64) []float64 {
	t.Helper()
	asm, err := m.Assemble(4)
	if err != nil {
		t.Fatal(err)
	}
	load := m.BodyForceLoad(4, body)
	nn := m.Grid.NumNodes()
	isBC := make([]bool, 3*nn)
	var bcNodes []int
	for n := 0; n < nn; n++ {
		if m.Grid.OnBoundary(n) {
			isBC[3*n], isBC[3*n+1], isBC[3*n+2] = true, true, true
			bcNodes = append(bcNodes, n)
		}
	}
	red, err := Reduce(asm.K, load, isBC)
	if err != nil {
		t.Fatal(err)
	}
	ubc := make([]float64, len(red.BCIdx))
	for bi, n := range bcNodes {
		d := exact(m.Grid.NodeCoord(n))
		ubc[3*bi], ubc[3*bi+1], ubc[3*bi+2] = d[0], d[1], d[2]
	}
	// RHS: body-force load (deltaT=1 scales the stored load) minus lifting.
	chol, err := solver.NewCholesky(red.Aff)
	if err != nil {
		t.Fatal(err)
	}
	xf := chol.Solve(red.RHS(1, ubc))
	return red.Expand(xf, ubc)
}

// nodalL2Error returns the RMS nodal displacement error.
func nodalL2Error(m *Model, u []float64, exact func(mesh.Vec3) [3]float64) float64 {
	var s float64
	nn := m.Grid.NumNodes()
	for n := 0; n < nn; n++ {
		d := exact(m.Grid.NodeCoord(n))
		for c := 0; c < 3; c++ {
			e := u[3*n+c] - d[c]
			s += e * e
		}
	}
	return math.Sqrt(s / float64(3*nn))
}

func TestMMSTrilinearExactness(t *testing.T) {
	// u = (xyz, 0, 0) lies in the global trilinear space; with the exact
	// body force f = −(λ+µ)(0, z, y) the Galerkin solution is exact to
	// solver precision.
	mat := material.Silicon
	lambda, mu := mat.Lame()
	g, err := mesh.NewGrid(mesh.UniformAxis(0, 1, 3), mesh.UniformAxis(0, 1, 4), mesh.UniformAxis(0, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{Grid: g, Mats: []material.Material{mat}}
	exact := func(p mesh.Vec3) [3]float64 { return [3]float64{p.X * p.Y * p.Z, 0, 0} }
	body := func(p mesh.Vec3) [3]float64 {
		return [3]float64{0, -(lambda + mu) * p.Z, -(lambda + mu) * p.Y}
	}
	u := solveMMS(t, m, body, exact)
	scale := lambda + mu
	for n := 0; n < g.NumNodes(); n++ {
		d := exact(g.NodeCoord(n))
		for c := 0; c < 3; c++ {
			if math.Abs(u[3*n+c]-d[c]) > 1e-10*(1+scale/mat.E) {
				t.Fatalf("node %d comp %d: %g vs %g", n, c, u[3*n+c], d[c])
			}
		}
	}
}

func TestMMSTrigConvergence(t *testing.T) {
	// u = (sin πx · sin πy · sin πz, 0, 0) exercises all coupling terms of
	// the Navier operator and is far outside the trilinear space; the nodal
	// error must shrink ~O(h²) under uniform refinement.
	mat := material.Silicon
	lambda, mu := mat.Lame()
	pi := math.Pi
	u1 := func(p mesh.Vec3) float64 {
		return math.Sin(pi*p.X) * math.Sin(pi*p.Y) * math.Sin(pi*p.Z)
	}
	exact := func(p mesh.Vec3) [3]float64 { return [3]float64{u1(p), 0, 0} }
	// ∇·u = ∂x u1; ∇(∇·u) = (∂xx, ∂xy, ∂xz)u1; ∇²u1 = −3π²u1.
	body := func(p mesh.Vec3) [3]float64 {
		sx, cx := math.Sin(pi*p.X), math.Cos(pi*p.X)
		sy, cy := math.Sin(pi*p.Y), math.Cos(pi*p.Y)
		sz, cz := math.Sin(pi*p.Z), math.Cos(pi*p.Z)
		dxx := -pi * pi * sx * sy * sz
		dxy := pi * pi * cx * cy * sz
		dxz := pi * pi * cx * sy * cz
		lap := -3 * pi * pi * sx * sy * sz
		return [3]float64{
			-((lambda+mu)*dxx + mu*lap),
			-(lambda + mu) * dxy,
			-(lambda + mu) * dxz,
		}
	}
	errs := make([]float64, 0, 2)
	for _, n := range []int{4, 8} {
		g, err := mesh.NewGrid(mesh.UniformAxis(0, 1, n), mesh.UniformAxis(0, 1, n), mesh.UniformAxis(0, 1, n))
		if err != nil {
			t.Fatal(err)
		}
		m := &Model{Grid: g, Mats: []material.Material{mat}}
		u := solveMMS(t, m, body, exact)
		errs = append(errs, nodalL2Error(m, u, exact))
	}
	t.Logf("nodal L2 errors: h -> %.3e, h/2 -> %.3e (ratio %.2f)", errs[0], errs[1], errs[0]/errs[1])
	if errs[1] <= 0 {
		t.Fatal("refined error vanished — test degenerate")
	}
	if ratio := errs[0] / errs[1]; ratio < 3 {
		t.Errorf("convergence ratio %.2f, want >= 3 (O(h²))", ratio)
	}
}

func TestBodyForceLoadConstantForce(t *testing.T) {
	// A constant body force integrates to total force = volume × f,
	// distributed consistently: the load vector components must sum to it.
	g, _ := mesh.NewGrid(mesh.UniformAxis(0, 2, 3), mesh.UniformAxis(0, 3, 2), mesh.UniformAxis(0, 1, 2))
	m := &Model{Grid: g, Mats: []material.Material{material.Silicon}}
	f := m.BodyForceLoad(3, func(mesh.Vec3) [3]float64 { return [3]float64{1, -2, 0.5} })
	var sum [3]float64
	for n := 0; n < g.NumNodes(); n++ {
		for c := 0; c < 3; c++ {
			sum[c] += f[3*n+c]
		}
	}
	vol := 2.0 * 3 * 1
	want := [3]float64{vol, -2 * vol, 0.5 * vol}
	for c := 0; c < 3; c++ {
		if math.Abs(sum[c]-want[c]) > 1e-10*(1+math.Abs(want[c])) {
			t.Errorf("total force comp %d: %g, want %g", c, sum[c], want[c])
		}
	}
}

func TestThermalLoadMatchesAssemble(t *testing.T) {
	// ThermalLoad with nil scale must equal Assemble's F.
	g, err := mesh.NewTSVBlock(mesh.PaperGeometry(15), mesh.CoarseResolution(), true)
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{Grid: g, Mats: TSVMats(material.DefaultTSVSet())}
	asm, err := m.Assemble(4)
	if err != nil {
		t.Fatal(err)
	}
	f := m.ThermalLoad(4, nil)
	for i := range f {
		if math.Abs(f[i]-asm.F[i]) > 1e-9*(1+math.Abs(asm.F[i])) {
			t.Fatalf("ThermalLoad differs from Assemble at %d: %g vs %g", i, f[i], asm.F[i])
		}
	}
	// Scaled load is linear in the scale.
	f2 := m.ThermalLoad(2, func(int) float64 { return -250 })
	for i := range f2 {
		if math.Abs(f2[i]+250*f[i]) > 1e-9*(1+math.Abs(f[i])*250) {
			t.Fatalf("scaled load not linear at %d", i)
		}
	}
}
