package fem

import (
	"sync"

	"repro/internal/mesh"
)

// ThermalLoad assembles the thermal load vector with a per-element scale
// factor (typically the local ΔT), enabling nonuniform thermal fields that
// are piecewise constant per element. Assemble's F equals
// ThermalLoad(workers, nil) (unit scale).
//
//stressvet:gang -- `workers` goroutines over disjoint element chunks
func (m *Model) ThermalLoad(workers int, scale func(e int) float64) []float64 {
	g := m.Grid
	f := make([]float64, 3*g.NumNodes())
	if workers < 1 {
		workers = 1
	}

	cache := map[elemKey]*ElemMats{}
	var mu sync.Mutex
	elemFor := func(e int) *ElemMats {
		id := g.MatID[e]
		if id == mesh.VoidMaterial {
			return nil
		}
		hx, hy, hz := g.ElemSize(e)
		key := elemKey{quantize(hx), quantize(hy), quantize(hz), id}
		mu.Lock()
		em, ok := cache[key]
		if !ok {
			em = ComputeElemMats(hx, hy, hz, m.Mats[id])
			cache[key] = em
		}
		mu.Unlock()
		return em
	}

	// Parallel over z-slabs of elements: two goroutines only touch the same
	// node row if their elements share nodes, so slabs are processed with a
	// one-slab halo via per-worker buffers merged at the end.
	ne := g.NumElems()
	bufs := make([][]float64, workers)
	var wg sync.WaitGroup
	chunk := (ne + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > ne {
			hi = ne
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			buf := make([]float64, len(f))
			for e := lo; e < hi; e++ {
				em := elemFor(e)
				if em == nil {
					continue
				}
				s := 1.0
				if scale != nil {
					s = scale(e)
				}
				if s == 0 {
					continue
				}
				nodes := g.ElemNodes(e)
				for a := 0; a < 8; a++ {
					n := int(nodes[a])
					buf[3*n] += s * em.F[3*a]
					buf[3*n+1] += s * em.F[3*a+1]
					buf[3*n+2] += s * em.F[3*a+2]
				}
			}
			bufs[w] = buf
		}(w, lo, hi)
	}
	wg.Wait()
	for _, buf := range bufs {
		if buf == nil {
			continue
		}
		for i, v := range buf {
			f[i] += v
		}
	}
	return f
}
