package fem

import (
	"math"

	"repro/internal/mesh"
)

// StrainAt evaluates the strain (Voigt, engineering shears) at reference
// point (ξ, η, ζ) of element e from the full displacement vector u.
func (m *Model) StrainAt(u []float64, e int, xi, eta, zeta float64) [6]float64 {
	hx, hy, hz := m.Grid.ElemSize(e)
	g := ShapeGradients(xi, eta, zeta, hx, hy, hz)
	nodes := m.Grid.ElemNodes(e)
	var eps [6]float64
	for a := 0; a < 8; a++ {
		n := int(nodes[a])
		ux, uy, uz := u[3*n], u[3*n+1], u[3*n+2]
		dx, dy, dz := g[a][0], g[a][1], g[a][2]
		eps[0] += dx * ux
		eps[1] += dy * uy
		eps[2] += dz * uz
		eps[3] += dz*uy + dy*uz
		eps[4] += dz*ux + dx*uz
		eps[5] += dy*ux + dx*uy
	}
	return eps
}

// StressAt evaluates the stress tensor (Voigt) at reference point (ξ, η, ζ)
// of element e, applying the constitutive law of Eq. 1:
// σ = λ·tr(ε)·1 + 2µ·ε − α(3λ+2µ)·ΔT·1.
func (m *Model) StressAt(u []float64, deltaT float64, e int, xi, eta, zeta float64) [6]float64 {
	eps := m.StrainAt(u, e, xi, eta, zeta)
	mat := m.Mats[m.Grid.MatID[e]]
	lambda, mu := mat.Lame()
	tr := eps[0] + eps[1] + eps[2]
	th := mat.ThermalStressCoeff() * deltaT
	var s [6]float64
	s[0] = lambda*tr + 2*mu*eps[0] - th
	s[1] = lambda*tr + 2*mu*eps[1] - th
	s[2] = lambda*tr + 2*mu*eps[2] - th
	s[3] = mu * eps[3]
	s[4] = mu * eps[4]
	s[5] = mu * eps[5]
	return s
}

// StressAtPoint locates the element containing the physical point p and
// evaluates the stress there.
func (m *Model) StressAtPoint(u []float64, deltaT float64, p mesh.Vec3) [6]float64 {
	e, xi, eta, zeta := m.Grid.Locate(p)
	return m.StressAt(u, deltaT, e, xi, eta, zeta)
}

// DisplacementAtPoint interpolates the displacement at physical point p.
func (m *Model) DisplacementAtPoint(u []float64, p mesh.Vec3) [3]float64 {
	e, xi, eta, zeta := m.Grid.Locate(p)
	n := ShapeFunctions(xi, eta, zeta)
	nodes := m.Grid.ElemNodes(e)
	var out [3]float64
	for a := 0; a < 8; a++ {
		idx := int(nodes[a])
		out[0] += n[a] * u[3*idx]
		out[1] += n[a] * u[3*idx+1]
		out[2] += n[a] * u[3*idx+2]
	}
	return out
}

// VonMises returns the von Mises equivalent stress of a Voigt stress tensor.
func VonMises(s [6]float64) float64 {
	dxy := s[0] - s[1]
	dyz := s[1] - s[2]
	dzx := s[2] - s[0]
	return math.Sqrt(0.5*(dxy*dxy+dyz*dyz+dzx*dzx) + 3*(s[3]*s[3]+s[4]*s[4]+s[5]*s[5]))
}
