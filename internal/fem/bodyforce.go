package fem

import (
	"sync"

	"repro/internal/mesh"
)

// BodyForceLoad assembles the consistent load vector for a body force
// density field f(r) (force per unit volume): L(v) = ∫ f·v dr, integrated
// with the 2×2×2 Gauss rule per element. The paper's IC scenarios set
// f ≡ 0 (gravity neglected, §3.2); this loading path exists to verify the
// kernel against manufactured solutions and to support non-IC use cases.
//
//stressvet:gang -- `workers` goroutines over disjoint element chunks
func (m *Model) BodyForceLoad(workers int, body func(p mesh.Vec3) [3]float64) []float64 {
	g := m.Grid
	f := make([]float64, 3*g.NumNodes())
	if workers < 1 {
		workers = 1
	}
	ne := g.NumElems()
	bufs := make([][]float64, workers)
	var wg sync.WaitGroup
	chunk := (ne + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > ne {
			hi = ne
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			buf := make([]float64, len(f))
			for e := lo; e < hi; e++ {
				if g.MatID[e] == mesh.VoidMaterial {
					continue
				}
				hx, hy, hz := g.ElemSize(e)
				o := g.ElemOrigin(e)
				nodes := g.ElemNodes(e)
				detJw := hx * hy * hz / 8
				for _, xi := range gauss2 {
					for _, eta := range gauss2 {
						for _, zeta := range gauss2 {
							n := ShapeFunctions(xi, eta, zeta)
							p := mesh.Vec3{
								X: o.X + (xi+1)/2*hx,
								Y: o.Y + (eta+1)/2*hy,
								Z: o.Z + (zeta+1)/2*hz,
							}
							bf := body(p)
							for a := 0; a < 8; a++ {
								idx := 3 * int(nodes[a])
								w := n[a] * detJw
								buf[idx] += w * bf[0]
								buf[idx+1] += w * bf[1]
								buf[idx+2] += w * bf[2]
							}
						}
					}
				}
			}
			bufs[w] = buf
		}(w, lo, hi)
	}
	wg.Wait()
	for _, buf := range bufs {
		if buf == nil {
			continue
		}
		for i, v := range buf {
			f[i] += v
		}
	}
	return f
}
