package fem

import (
	"fmt"
	"math"

	"repro/internal/material"
	"repro/internal/mesh"
)

// Quadratic (20-node serendipity) hexahedral discretization over the same
// structured grids as the trilinear kernel — the element class used by the
// commercial baseline (ANSYS SOLID186). Nodes live on the half-step lattice
// of the grid: cell corners plus mid-edge points (half-lattice sites with at
// most one odd coordinate).

// quadSigns lists the 20 serendipity nodes in reference coordinates: first
// the 8 corners (VTK order), then the 12 mid-edge nodes (bottom ring, top
// ring, verticals).
var quadSigns = [20][3]float64{
	{-1, -1, -1}, {1, -1, -1}, {1, 1, -1}, {-1, 1, -1},
	{-1, -1, 1}, {1, -1, 1}, {1, 1, 1}, {-1, 1, 1},
	{0, -1, -1}, {1, 0, -1}, {0, 1, -1}, {-1, 0, -1},
	{0, -1, 1}, {1, 0, 1}, {0, 1, 1}, {-1, 0, 1},
	{-1, -1, 0}, {1, -1, 0}, {1, 1, 0}, {-1, 1, 0},
}

// QuadShapeFunctions evaluates the 20 serendipity shape functions at
// (ξ, η, ζ).
func QuadShapeFunctions(xi, eta, zeta float64) [20]float64 {
	var n [20]float64
	for a := 0; a < 20; a++ {
		s := quadSigns[a]
		switch {
		case s[0] == 0:
			n[a] = (1 - xi*xi) * (1 + s[1]*eta) * (1 + s[2]*zeta) / 4
		case s[1] == 0:
			n[a] = (1 + s[0]*xi) * (1 - eta*eta) * (1 + s[2]*zeta) / 4
		case s[2] == 0:
			n[a] = (1 + s[0]*xi) * (1 + s[1]*eta) * (1 - zeta*zeta) / 4
		default:
			n[a] = (1 + s[0]*xi) * (1 + s[1]*eta) * (1 + s[2]*zeta) *
				(s[0]*xi + s[1]*eta + s[2]*zeta - 2) / 8
		}
	}
	return n
}

// QuadShapeGradients evaluates the physical-space gradients for a box
// element of size (hx, hy, hz).
func QuadShapeGradients(xi, eta, zeta, hx, hy, hz float64) [20][3]float64 {
	var d [20][3]float64
	for a := 0; a < 20; a++ {
		s := quadSigns[a]
		var dxi, deta, dzeta float64
		switch {
		case s[0] == 0:
			dxi = -2 * xi * (1 + s[1]*eta) * (1 + s[2]*zeta) / 4
			deta = (1 - xi*xi) * s[1] * (1 + s[2]*zeta) / 4
			dzeta = (1 - xi*xi) * (1 + s[1]*eta) * s[2] / 4
		case s[1] == 0:
			dxi = s[0] * (1 - eta*eta) * (1 + s[2]*zeta) / 4
			deta = (1 + s[0]*xi) * (-2 * eta) * (1 + s[2]*zeta) / 4
			dzeta = (1 + s[0]*xi) * (1 - eta*eta) * s[2] / 4
		case s[2] == 0:
			dxi = s[0] * (1 + s[1]*eta) * (1 - zeta*zeta) / 4
			deta = (1 + s[0]*xi) * s[1] * (1 - zeta*zeta) / 4
			dzeta = (1 + s[0]*xi) * (1 + s[1]*eta) * (-2 * zeta) / 4
		default:
			sum := s[0]*xi + s[1]*eta + s[2]*zeta - 2
			dxi = s[0] * (1 + s[1]*eta) * (1 + s[2]*zeta) * (sum + (1 + s[0]*xi)) / 8
			deta = s[1] * (1 + s[0]*xi) * (1 + s[2]*zeta) * (sum + (1 + s[1]*eta)) / 8
			dzeta = s[2] * (1 + s[0]*xi) * (1 + s[1]*eta) * (sum + (1 + s[2]*zeta)) / 8
		}
		d[a][0] = dxi * 2 / hx
		d[a][1] = deta * 2 / hy
		d[a][2] = dzeta * 2 / hz
	}
	return d
}

// gauss3 holds the 3-point Gauss rule (exact to degree 5 per axis).
var gauss3 = [3]struct{ x, w float64 }{
	{-math.Sqrt(0.6), 5.0 / 9},
	{0, 8.0 / 9},
	{math.Sqrt(0.6), 5.0 / 9},
}

// QuadElemMats holds the 60×60 element stiffness and 60-vector thermal load
// of a quadratic box element.
type QuadElemMats struct {
	K [60][60]float64
	F [60]float64
}

// ComputeQuadElemMats integrates the quadratic element matrices with the
// 3×3×3 Gauss rule.
func ComputeQuadElemMats(hx, hy, hz float64, mat material.Material) *QuadElemMats {
	lambda, mu := mat.Lame()
	d := DMatrix(lambda, mu)
	ts := mat.ThermalStressCoeff()
	out := &QuadElemMats{}
	det := hx * hy * hz / 8
	for _, gx := range gauss3 {
		for _, gy := range gauss3 {
			for _, gz := range gauss3 {
				w := gx.w * gy.w * gz.w * det
				g := QuadShapeGradients(gx.x, gy.x, gz.x, hx, hy, hz)
				var b [6][60]float64
				for a := 0; a < 20; a++ {
					c := 3 * a
					dx, dy, dz := g[a][0], g[a][1], g[a][2]
					b[0][c] = dx
					b[1][c+1] = dy
					b[2][c+2] = dz
					b[3][c+1] = dz
					b[3][c+2] = dy
					b[4][c] = dz
					b[4][c+2] = dx
					b[5][c] = dy
					b[5][c+1] = dx
				}
				var db [6][60]float64
				for i := 0; i < 6; i++ {
					for k := 0; k < 6; k++ {
						dik := d[i][k]
						if dik == 0 {
							continue
						}
						for j := 0; j < 60; j++ {
							db[i][j] += dik * b[k][j]
						}
					}
				}
				for i := 0; i < 60; i++ {
					for k := 0; k < 6; k++ {
						bki := b[k][i]
						if bki == 0 {
							continue
						}
						wb := bki * w
						for j := 0; j < 60; j++ {
							out.K[i][j] += wb * db[k][j]
						}
					}
				}
				for i := 0; i < 60; i++ {
					out.F[i] += (b[0][i] + b[1][i] + b[2][i]) * ts * w
				}
			}
		}
	}
	return out
}

// QuadModel is a quadratic serendipity discretization of a grid. Its node
// set is the half-step lattice with at most one odd coordinate.
type QuadModel struct {
	Grid *mesh.Grid
	Mats []material.Material

	// HX, HY, HZ are the half-lattice extents (2·cells+1 per axis).
	HX, HY, HZ int
	// nodeID maps half-lattice sites to node ids (−1 = not a serendipity
	// node: face centers, cell centers).
	nodeID []int32
	// Nodes lists the half-lattice triples of real nodes in id order.
	Nodes [][3]int
}

// NewQuadModel enumerates the serendipity nodes of the grid.
func NewQuadModel(g *mesh.Grid, mats []material.Material) *QuadModel {
	m := &QuadModel{
		Grid: g, Mats: mats,
		HX: 2*g.NEX() + 1, HY: 2*g.NEY() + 1, HZ: 2*g.NEZ() + 1,
	}
	m.nodeID = make([]int32, m.HX*m.HY*m.HZ)
	for k := 0; k < m.HZ; k++ {
		for j := 0; j < m.HY; j++ {
			for i := 0; i < m.HX; i++ {
				at := m.flat(i, j, k)
				odd := i%2 + j%2 + k%2
				if odd > 1 {
					m.nodeID[at] = -1
					continue
				}
				m.nodeID[at] = int32(len(m.Nodes))
				m.Nodes = append(m.Nodes, [3]int{i, j, k})
			}
		}
	}
	return m
}

func (m *QuadModel) flat(i, j, k int) int { return i + m.HX*(j+m.HY*k) }

// NumNodes returns the serendipity node count.
func (m *QuadModel) NumNodes() int { return len(m.Nodes) }

// NumDoFs returns 3 × NumNodes.
func (m *QuadModel) NumDoFs() int { return 3 * len(m.Nodes) }

// NodeCoord returns the physical coordinates of node id: corners at grid
// coordinates, mid-edge nodes halfway between the adjacent grid lines.
func (m *QuadModel) NodeCoord(id int) mesh.Vec3 {
	t := m.Nodes[id]
	return mesh.Vec3{X: m.halfCoord(m.Grid.Xs, t[0]), Y: m.halfCoord(m.Grid.Ys, t[1]), Z: m.halfCoord(m.Grid.Zs, t[2])}
}

func (m *QuadModel) halfCoord(ax []float64, h int) float64 {
	if h%2 == 0 {
		return ax[h/2]
	}
	return (ax[(h-1)/2] + ax[(h+1)/2]) / 2
}

// OnBoundary reports whether node id lies on the outer surface.
func (m *QuadModel) OnBoundary(id int) bool {
	t := m.Nodes[id]
	return t[0] == 0 || t[0] == m.HX-1 || t[1] == 0 || t[1] == m.HY-1 || t[2] == 0 || t[2] == m.HZ-1
}

// ElemNodes returns the 20 node ids of element e in quadSigns order.
func (m *QuadModel) ElemNodes(e int) [20]int32 {
	i, j, k := m.Grid.ElemIJK(e)
	var out [20]int32
	for a := 0; a < 20; a++ {
		s := quadSigns[a]
		hi := 2*i + 1 + int(s[0])
		hj := 2*j + 1 + int(s[1])
		hk := 2*k + 1 + int(s[2])
		id := m.nodeID[m.flat(hi, hj, hk)]
		if id < 0 {
			panic(fmt.Sprintf("fem: element %d references non-serendipity site (%d,%d,%d)", e, hi, hj, hk))
		}
		out[a] = id
	}
	return out
}

// DisplacementAtPoint interpolates the displacement at physical point p.
func (m *QuadModel) DisplacementAtPoint(u []float64, p mesh.Vec3) [3]float64 {
	e, xi, eta, zeta := m.Grid.Locate(p)
	n := QuadShapeFunctions(xi, eta, zeta)
	nodes := m.ElemNodes(e)
	var out [3]float64
	for a := 0; a < 20; a++ {
		idx := int(nodes[a])
		out[0] += n[a] * u[3*idx]
		out[1] += n[a] * u[3*idx+1]
		out[2] += n[a] * u[3*idx+2]
	}
	return out
}

// StressAtPoint recovers the stress tensor (Voigt) at physical point p.
func (m *QuadModel) StressAtPoint(u []float64, deltaT float64, p mesh.Vec3) [6]float64 {
	e, xi, eta, zeta := m.Grid.Locate(p)
	hx, hy, hz := m.Grid.ElemSize(e)
	g := QuadShapeGradients(xi, eta, zeta, hx, hy, hz)
	nodes := m.ElemNodes(e)
	var eps [6]float64
	for a := 0; a < 20; a++ {
		idx := int(nodes[a])
		ux, uy, uz := u[3*idx], u[3*idx+1], u[3*idx+2]
		dx, dy, dz := g[a][0], g[a][1], g[a][2]
		eps[0] += dx * ux
		eps[1] += dy * uy
		eps[2] += dz * uz
		eps[3] += dz*uy + dy*uz
		eps[4] += dz*ux + dx*uz
		eps[5] += dy*ux + dx*uy
	}
	mat := m.Mats[m.Grid.MatID[e]]
	lambda, mu := mat.Lame()
	tr := eps[0] + eps[1] + eps[2]
	th := mat.ThermalStressCoeff() * deltaT
	var s [6]float64
	s[0] = lambda*tr + 2*mu*eps[0] - th
	s[1] = lambda*tr + 2*mu*eps[1] - th
	s[2] = lambda*tr + 2*mu*eps[2] - th
	s[3] = mu * eps[3]
	s[4] = mu * eps[4]
	s[5] = mu * eps[5]
	return s
}
