package fem

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/sparse"
)

// Reduced is the lifted Dirichlet system of Eqs. 12–13: the free-free block
// A_ff, the free-boundary coupling A_fb, and the free part of the thermal
// load, so that A_ff·α_f = ΔT·b_f − A_fb·u_bc.
type Reduced struct {
	Aff *sparse.CSR
	Afb *sparse.CSR
	// Bf is the thermal load restricted to free DoFs (for ΔT = 1).
	Bf []float64
	// FreeIdx maps free-DoF index to full-DoF index.
	FreeIdx []int32
	// BCIdx maps boundary-DoF index to full-DoF index.
	BCIdx []int32
	// NFull is the full system size.
	NFull int
}

// Reduce partitions the assembled system by the boundary mask isBC
// (length = full DoF count).
func Reduce(k *sparse.CSR, f []float64, isBC []bool) (*Reduced, error) {
	n := k.NRows
	if len(isBC) != n || len(f) != n {
		return nil, fmt.Errorf("fem: Reduce size mismatch: K %d, f %d, mask %d", n, len(f), len(isBC))
	}
	toFree := make([]int32, n)
	toBC := make([]int32, n)
	var freeIdx, bcIdx []int32
	for i := 0; i < n; i++ {
		if isBC[i] {
			toFree[i] = -1
			toBC[i] = int32(len(bcIdx))
			bcIdx = append(bcIdx, int32(i))
		} else {
			toBC[i] = -1
			toFree[i] = int32(len(freeIdx))
			freeIdx = append(freeIdx, int32(i))
		}
	}
	if len(freeIdx) == 0 {
		return nil, fmt.Errorf("fem: Reduce produced no free DoFs")
	}
	aff := k.Extract(toFree, toFree, len(freeIdx), len(freeIdx))
	afb := k.Extract(toFree, toBC, len(freeIdx), len(bcIdx))
	bf := make([]float64, len(freeIdx))
	for fi, full := range freeIdx {
		bf[fi] = f[full]
	}
	return &Reduced{Aff: aff, Afb: afb, Bf: bf, FreeIdx: freeIdx, BCIdx: bcIdx, NFull: n}, nil
}

// NFree returns the number of free DoFs.
func (r *Reduced) NFree() int { return len(r.FreeIdx) }

// RHS forms the lifted right-hand side ΔT·b_f − A_fb·u_bc. ubc is indexed in
// BCIdx order and may be nil (homogeneous boundary).
func (r *Reduced) RHS(deltaT float64, ubc []float64) []float64 {
	rhs := make([]float64, len(r.FreeIdx))
	for i, v := range r.Bf {
		rhs[i] = deltaT * v
	}
	if ubc != nil {
		if len(ubc) != len(r.BCIdx) {
			panic(fmt.Sprintf("fem: RHS ubc length %d, want %d", len(ubc), len(r.BCIdx)))
		}
		tmp := make([]float64, len(r.FreeIdx))
		r.Afb.MulVec(tmp, ubc)
		linalg.Axpy(-1, tmp, rhs)
	}
	return rhs
}

// RHSFrom forms the lifted right-hand side f_f − A_fb·u_bc for a caller-
// supplied full-size load vector f, bypassing the stored unit load Bf. The
// assemble-once global stage uses this for per-block (nonuniform) thermal
// fields, where the load is not a scalar multiple of the unit load.
func (r *Reduced) RHSFrom(f []float64, ubc []float64) []float64 {
	if len(f) != r.NFull {
		panic(fmt.Sprintf("fem: RHSFrom load length %d, want %d", len(f), r.NFull))
	}
	rhs := make([]float64, len(r.FreeIdx))
	for fi, full := range r.FreeIdx {
		rhs[fi] = f[full]
	}
	if ubc != nil {
		if len(ubc) != len(r.BCIdx) {
			panic(fmt.Sprintf("fem: RHSFrom ubc length %d, want %d", len(ubc), len(r.BCIdx)))
		}
		tmp := make([]float64, len(r.FreeIdx))
		r.Afb.MulVec(tmp, ubc)
		linalg.Axpy(-1, tmp, rhs)
	}
	return rhs
}

// Expand reassembles the full displacement vector from the free solution xf
// and the boundary values ubc (BCIdx order; nil means zero).
func (r *Reduced) Expand(xf, ubc []float64) []float64 {
	u := make([]float64, r.NFull)
	for fi, full := range r.FreeIdx {
		u[full] = xf[fi]
	}
	if ubc != nil {
		for bi, full := range r.BCIdx {
			u[full] = ubc[bi]
		}
	}
	return u
}
