package fem

import (
	"math"
	"testing"

	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/solver"
)

func TestQuadShapeFunctionsKronecker(t *testing.T) {
	for a := 0; a < 20; a++ {
		s := quadSigns[a]
		n := QuadShapeFunctions(s[0], s[1], s[2])
		for b := 0; b < 20; b++ {
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(n[b]-want) > 1e-13 {
				t.Fatalf("N_%d at node %d = %g", b, a, n[b])
			}
		}
	}
}

func TestQuadShapeFunctionsPartitionOfUnity(t *testing.T) {
	for _, pt := range [][3]float64{{0, 0, 0}, {0.3, -0.7, 0.5}, {-0.9, 0.2, -0.1}} {
		n := QuadShapeFunctions(pt[0], pt[1], pt[2])
		var s float64
		for _, v := range n {
			s += v
		}
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("sum at %v = %g", pt, s)
		}
	}
}

func TestQuadShapeGradientsQuadraticExactness(t *testing.T) {
	// The serendipity space contains complete quadratics: the gradient of
	// f = x² + 2xy − z² + 3y must be reproduced exactly.
	hx, hy, hz := 1.4, 0.9, 2.1
	f := func(x, y, z float64) float64 { return x*x + 2*x*y - z*z + 3*y }
	grad := func(x, y, z float64) [3]float64 { return [3]float64{2*x + 2*y, 2*x + 3, -2 * z} }
	xi, eta, zeta := 0.35, -0.4, 0.6
	g := QuadShapeGradients(xi, eta, zeta, hx, hy, hz)
	var got [3]float64
	for a := 0; a < 20; a++ {
		s := quadSigns[a]
		x := (s[0] + 1) / 2 * hx
		y := (s[1] + 1) / 2 * hy
		z := (s[2] + 1) / 2 * hz
		v := f(x, y, z)
		for c := 0; c < 3; c++ {
			got[c] += g[a][c] * v
		}
	}
	x := (xi + 1) / 2 * hx
	y := (eta + 1) / 2 * hy
	z := (zeta + 1) / 2 * hz
	want := grad(x, y, z)
	for c := 0; c < 3; c++ {
		if math.Abs(got[c]-want[c]) > 1e-10 {
			t.Errorf("grad[%d] = %g, want %g", c, got[c], want[c])
		}
	}
}

func TestQuadElemMatsProperties(t *testing.T) {
	em := ComputeQuadElemMats(1.1, 0.7, 1.9, material.Copper)
	for i := 0; i < 60; i++ {
		for j := 0; j < 60; j++ {
			if math.Abs(em.K[i][j]-em.K[j][i]) > 1e-6*(1+math.Abs(em.K[i][j])) {
				t.Fatalf("K not symmetric at (%d,%d)", i, j)
			}
		}
	}
	// Rigid translations in the null space; thermal load equilibrated.
	for c := 0; c < 3; c++ {
		for i := 0; i < 60; i++ {
			var s float64
			for a := 0; a < 20; a++ {
				s += em.K[i][3*a+c]
			}
			if math.Abs(s) > 1e-5 {
				t.Fatalf("translation %d not in null space (row %d: %g)", c, i, s)
			}
		}
		var fs float64
		for a := 0; a < 20; a++ {
			fs += em.F[3*a+c]
		}
		if math.Abs(fs) > 1e-5 {
			t.Errorf("thermal load component %d sums to %g", c, fs)
		}
	}
}

func TestQuadModelNodeEnumeration(t *testing.T) {
	g, _ := mesh.NewGrid(mesh.UniformAxis(0, 2, 2), mesh.UniformAxis(0, 1, 1), mesh.UniformAxis(0, 1, 1))
	m := NewQuadModel(g, []material.Material{material.Silicon})
	// 2×1×1 cells: serendipity nodes = corners (3·2·2=12) + x-edges (2·2·2=8)
	// + y-edges (3·1·2=6) + z-edges (3·2·1=6) = 32.
	if m.NumNodes() != 32 {
		t.Fatalf("nodes = %d, want 32", m.NumNodes())
	}
	// All element node ids valid and distinct per element.
	for e := 0; e < g.NumElems(); e++ {
		seen := map[int32]bool{}
		for _, id := range m.ElemNodes(e) {
			if id < 0 || int(id) >= m.NumNodes() || seen[id] {
				t.Fatalf("bad element connectivity at elem %d", e)
			}
			seen[id] = true
		}
	}
	// Mid-edge coordinates are midpoints.
	for id := 0; id < m.NumNodes(); id++ {
		c := m.NodeCoord(id)
		if c.X < 0 || c.X > 2 || c.Y < 0 || c.Y > 1 || c.Z < 0 || c.Z > 1 {
			t.Fatalf("node %d out of domain: %v", id, c)
		}
	}
}

// solveQuadDirichlet mirrors solveDirichlet for the quadratic model.
func solveQuadDirichlet(t *testing.T, m *QuadModel, deltaT float64, fn func(p mesh.Vec3) [3]float64) []float64 {
	t.Helper()
	asm, err := m.Assemble(4)
	if err != nil {
		t.Fatal(err)
	}
	isBC := make([]bool, m.NumDoFs())
	var bcNodes []int
	for id := 0; id < m.NumNodes(); id++ {
		if m.OnBoundary(id) {
			isBC[3*id], isBC[3*id+1], isBC[3*id+2] = true, true, true
			bcNodes = append(bcNodes, id)
		}
	}
	red, err := Reduce(asm.K, asm.F, isBC)
	if err != nil {
		t.Fatal(err)
	}
	ubc := make([]float64, len(red.BCIdx))
	for bi, id := range bcNodes {
		d := fn(m.NodeCoord(id))
		ubc[3*bi], ubc[3*bi+1], ubc[3*bi+2] = d[0], d[1], d[2]
	}
	chol, err := solver.NewCholesky(red.Aff)
	if err != nil {
		t.Fatal(err)
	}
	xf := chol.Solve(red.RHS(deltaT, ubc))
	return red.Expand(xf, ubc)
}

func TestQuadPatchTestQuadraticField(t *testing.T) {
	// A complete quadratic displacement with the matching body force...
	// here simpler: pure Dirichlet with a *linear* field must be exact
	// (patch test), and with ΔT = 0.
	g, _ := mesh.NewGrid(mesh.UniformAxis(0, 2, 2), mesh.UniformAxis(0, 3, 2), mesh.UniformAxis(0, 1, 2))
	m := NewQuadModel(g, []material.Material{material.Silicon})
	lin := func(p mesh.Vec3) [3]float64 {
		return [3]float64{1e-3*p.X - 2e-3*p.Y, 3e-3 * p.Z, -1e-3*p.X + 1e-3*p.Y}
	}
	u := solveQuadDirichlet(t, m, 0, lin)
	for id := 0; id < m.NumNodes(); id++ {
		want := lin(m.NodeCoord(id))
		for c := 0; c < 3; c++ {
			if math.Abs(u[3*id+c]-want[c]) > 1e-9 {
				t.Fatalf("patch test failed at node %d comp %d", id, c)
			}
		}
	}
}

func TestQuadUniformThermalExpansion(t *testing.T) {
	mat := material.Silicon
	g, _ := mesh.NewGrid(mesh.UniformAxis(0, 2, 2), mesh.UniformAxis(0, 2, 2), mesh.UniformAxis(0, 2, 2))
	m := NewQuadModel(g, []material.Material{mat})
	deltaT := -250.0
	a := mat.CTE * deltaT
	u := solveQuadDirichlet(t, m, deltaT, func(p mesh.Vec3) [3]float64 {
		return [3]float64{a * p.X, a * p.Y, a * p.Z}
	})
	scale := mat.ThermalStressCoeff() * math.Abs(deltaT)
	s := m.StressAtPoint(u, deltaT, mesh.Vec3{X: 1, Y: 0.9, Z: 1.1})
	for c := 0; c < 6; c++ {
		if math.Abs(s[c]) > 1e-7*scale {
			t.Fatalf("free expansion stress[%d] = %g", c, s[c])
		}
	}
}

// TestQuadBeatsTrilinearOnTrigMMS verifies the fidelity gain: on the same
// mesh the quadratic element must be far more accurate than the trilinear
// one for a smooth manufactured solution (here via boundary interpolation
// of the exact solution with ΔT = 0 — the interior is then driven by the
// discrete operator alone).
func TestQuadBeatsTrilinearOnTrigMMS(t *testing.T) {
	if testing.Short() {
		t.Skip("fine reference solve is slow")
	}
	mat := material.Silicon
	pi := math.Pi
	exact := func(p mesh.Vec3) [3]float64 {
		return [3]float64{
			0.01 * math.Sin(pi*p.X/2) * math.Sin(pi*p.Y/2) * math.Sin(pi*p.Z/2), 0, 0,
		}
	}
	// Harmonic-ish displacement is not an equilibrium state, so instead
	// compare both discretizations against a fine trilinear solve of the
	// same Dirichlet problem. All three solve u|∂Ω = exact, ΔT = 0.
	const n = 4
	gc, _ := mesh.NewGrid(mesh.UniformAxis(0, 1, n), mesh.UniformAxis(0, 1, n), mesh.UniformAxis(0, 1, n))
	gf, _ := mesh.NewGrid(mesh.UniformAxis(0, 1, 4*n), mesh.UniformAxis(0, 1, 4*n), mesh.UniformAxis(0, 1, 4*n))

	tri := &Model{Grid: gc, Mats: []material.Material{mat}}
	uTri := solveDirichlet(t, tri, 0, exact)
	quad := NewQuadModel(gc, []material.Material{mat})
	uQuad := solveQuadDirichlet(t, quad, 0, exact)
	fine := &Model{Grid: gf, Mats: []material.Material{mat}}
	uFine := solveDirichlet(t, fine, 0, exact)

	// Compare displacement at interior probe points against the fine
	// reference.
	probes := []mesh.Vec3{{X: 0.4, Y: 0.55, Z: 0.45}, {X: 0.3, Y: 0.3, Z: 0.6}, {X: 0.55, Y: 0.45, Z: 0.35}}
	var errTri, errQuad float64
	for _, p := range probes {
		ref := fine.DisplacementAtPoint(uFine, p)
		dt := tri.DisplacementAtPoint(uTri, p)
		dq := quad.DisplacementAtPoint(uQuad, p)
		for c := 0; c < 3; c++ {
			errTri += (dt[c] - ref[c]) * (dt[c] - ref[c])
			errQuad += (dq[c] - ref[c]) * (dq[c] - ref[c])
		}
	}
	errTri = math.Sqrt(errTri)
	errQuad = math.Sqrt(errQuad)
	t.Logf("probe errors vs fine reference: trilinear %.3e, quadratic %.3e", errTri, errQuad)
	if errQuad >= errTri {
		t.Errorf("quadratic (%g) should beat trilinear (%g) on the same mesh", errQuad, errTri)
	}
}

func TestQuadAssembleVoidElements(t *testing.T) {
	g, _ := mesh.NewGrid(mesh.UniformAxis(0, 2, 2), mesh.UniformAxis(0, 1, 1), mesh.UniformAxis(0, 1, 1))
	g.MatID[1] = mesh.VoidMaterial
	m := NewQuadModel(g, []material.Material{material.Silicon})
	asm, err := m.Assemble(2)
	if err != nil {
		t.Fatal(err)
	}
	if !asm.K.IsSymmetric(1e-9) {
		t.Error("quadratic stiffness not symmetric")
	}
	for id, act := range asm.ActiveNode {
		if act {
			continue
		}
		r := 3 * id
		if asm.K.At(r, r) != 1 {
			t.Fatalf("inactive node %d lacks identity row", id)
		}
	}
}

func TestQuadSerialParallelIdentical(t *testing.T) {
	g, _ := mesh.NewGrid(mesh.UniformAxis(0, 1, 2), mesh.UniformAxis(0, 1, 2), mesh.UniformAxis(0, 1, 2))
	m := NewQuadModel(g, []material.Material{material.Copper})
	a1, err := m.Assemble(1)
	if err != nil {
		t.Fatal(err)
	}
	a8, err := m.Assemble(8)
	if err != nil {
		t.Fatal(err)
	}
	if a1.K.NNZ() != a8.K.NNZ() {
		t.Fatal("nnz differs")
	}
	// The atomic scatter interleaves duplicates in nondeterministic order,
	// so summation differs at roundoff relative to the matrix scale.
	var scale float64
	for _, v := range a1.K.Vals {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	for i := range a1.K.Vals {
		if a1.K.ColIdx[i] != a8.K.ColIdx[i] {
			t.Fatal("pattern differs between serial and parallel quadratic assembly")
		}
		if math.Abs(a1.K.Vals[i]-a8.K.Vals[i]) > 1e-11*scale {
			t.Fatal("values differ between serial and parallel quadratic assembly")
		}
	}
}
