package fem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mesh"
	"repro/internal/sparse"
)

// Assemble builds the quadratic global stiffness and thermal load (ΔT = 1).
// The scatter is parallel over elements with atomic per-row cursors and a
// parallel compaction pass (the same scheme as the global-stage assembly).
// Void elements are skipped; isolated nodes carry identity rows.
//
//stressvet:gang -- `workers` scatter goroutines over disjoint element chunks
func (m *QuadModel) Assemble(workers int) (*Assembled, error) {
	g := m.Grid
	for e, id := range g.MatID {
		if id == mesh.VoidMaterial {
			continue
		}
		if int(id) >= len(m.Mats) {
			return nil, fmt.Errorf("fem: element %d has material id %d outside table of %d", e, id, len(m.Mats))
		}
	}
	if workers < 1 {
		workers = 1
	}
	ne := g.NumElems()
	ndof := m.NumDoFs()

	// Element matrix cache by (size, material).
	cache := map[elemKey]*QuadElemMats{}
	elemMat := make([]*QuadElemMats, ne)
	for e := 0; e < ne; e++ {
		id := g.MatID[e]
		if id == mesh.VoidMaterial {
			continue
		}
		hx, hy, hz := g.ElemSize(e)
		key := elemKey{quantize(hx), quantize(hy), quantize(hz), id}
		em, ok := cache[key]
		if !ok {
			em = ComputeQuadElemMats(hx, hy, hz, m.Mats[id])
			cache[key] = em
		}
		elemMat[e] = em
	}

	// Active-node mask (nodes of non-void elements).
	active := make([]bool, m.NumNodes())
	for e := 0; e < ne; e++ {
		if elemMat[e] == nil {
			continue
		}
		for _, id := range m.ElemNodes(e) {
			active[id] = true
		}
	}

	// Pass 1: raw row counts (60 entries per element row, 1 for identity
	// rows of inactive nodes).
	rowCount := make([]int32, ndof+1)
	for id, act := range active {
		if !act {
			rowCount[3*id+1] = 1
			rowCount[3*id+2] = 1
			rowCount[3*id+3] = 1
		}
	}
	for e := 0; e < ne; e++ {
		if elemMat[e] == nil {
			continue
		}
		for _, id := range m.ElemNodes(e) {
			rowCount[3*id+1] += 60
			rowCount[3*id+2] += 60
			rowCount[3*id+3] += 60
		}
	}
	for i := 0; i < ndof; i++ {
		rowCount[i+1] += rowCount[i]
	}
	nnzRaw := int(rowCount[ndof])
	colIdx := make([]int32, nnzRaw)
	vals := make([]float64, nnzRaw)
	cursor := make([]int32, ndof)
	copy(cursor, rowCount[:ndof])

	// Identity rows first (no contention).
	for id, act := range active {
		if act {
			continue
		}
		for c := 0; c < 3; c++ {
			r := 3*id + c
			p := cursor[r]
			colIdx[p] = int32(r)
			vals[p] = 1
			cursor[r] = p + 1
		}
	}

	// Pass 2: parallel element scatter.
	fBufs := make([][]float64, workers)
	var wg sync.WaitGroup
	chunk := (ne + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > ne {
			hi = ne
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fb := make([]float64, ndof)
			fBufs[w] = fb
			var dofs [60]int32
			for e := lo; e < hi; e++ {
				em := elemMat[e]
				if em == nil {
					continue
				}
				nodes := m.ElemNodes(e)
				for a := 0; a < 20; a++ {
					dofs[3*a] = 3 * nodes[a]
					dofs[3*a+1] = 3*nodes[a] + 1
					dofs[3*a+2] = 3*nodes[a] + 2
				}
				for i := 0; i < 60; i++ {
					gi := dofs[i]
					base := atomic.AddInt32(&cursor[gi], 60) - 60
					seg := int(base)
					row := &em.K[i]
					for j := 0; j < 60; j++ {
						colIdx[seg+j] = dofs[j]
						vals[seg+j] = row[j]
					}
					fb[gi] += em.F[i]
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()

	f := make([]float64, ndof)
	for _, fb := range fBufs {
		if fb == nil {
			continue
		}
		for i, v := range fb {
			f[i] += v
		}
	}
	raw := &sparse.CSR{NRows: ndof, NCols: ndof, RowPtr: rowCount, ColIdx: colIdx, Vals: vals}
	return &Assembled{K: raw.CompactRows(workers), F: f, ActiveNode: active}, nil
}
