package fem

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// eigCheck verifies that p are the eigenvalues of the Voigt tensor s by
// checking the characteristic invariants.
func eigCheck(s [6]float64, p [3]float64, tol float64) bool {
	tr := s[0] + s[1] + s[2]
	i2 := s[0]*s[1] + s[1]*s[2] + s[2]*s[0] - s[5]*s[5] - s[3]*s[3] - s[4]*s[4]
	det := s[0]*(s[1]*s[2]-s[3]*s[3]) - s[5]*(s[5]*s[2]-s[3]*s[4]) + s[4]*(s[5]*s[3]-s[1]*s[4])
	scale := 1 + math.Abs(tr) + math.Abs(i2) + math.Abs(det)
	okTr := math.Abs(p[0]+p[1]+p[2]-tr) <= tol*scale
	okI2 := math.Abs(p[0]*p[1]+p[1]*p[2]+p[2]*p[0]-i2) <= tol*scale*scale
	okDet := math.Abs(p[0]*p[1]*p[2]-det) <= tol*scale*scale*scale
	return okTr && okI2 && okDet
}

func TestPrincipalStressesDiagonal(t *testing.T) {
	p := PrincipalStresses([6]float64{3, -1, 7, 0, 0, 0})
	want := []float64{7, 3, -1}
	for i := range want {
		if math.Abs(p[i]-want[i]) > 1e-10 {
			t.Errorf("p[%d] = %g, want %g", i, p[i], want[i])
		}
	}
}

func TestPrincipalStressesHydrostatic(t *testing.T) {
	p := PrincipalStresses([6]float64{5, 5, 5, 0, 0, 0})
	for _, v := range p {
		if math.Abs(v-5) > 1e-12 {
			t.Errorf("hydrostatic eigenvalue %g", v)
		}
	}
}

func TestPrincipalStressesPureShear(t *testing.T) {
	// σxy = τ: eigenvalues are (τ, 0, −τ).
	p := PrincipalStresses([6]float64{0, 0, 0, 0, 0, 2})
	want := []float64{2, 0, -2}
	for i := range want {
		if math.Abs(p[i]-want[i]) > 1e-10 {
			t.Errorf("p[%d] = %g, want %g", i, p[i], want[i])
		}
	}
}

func TestPrincipalStressesRandomInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var s [6]float64
		for i := range s {
			s[i] = 10 * r.NormFloat64()
		}
		p := PrincipalStresses(s)
		if !sort.IsSorted(sort.Reverse(sort.Float64Slice(p[:]))) {
			return false
		}
		return eigCheck(s, p, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTrescaVsVonMises(t *testing.T) {
	// For any stress state: vM <= Tresca·(something)? Standard bounds:
	// Tresca <= vM·2/√3 and vM <= Tresca·√3/... use the tight bounds
	// vM/Tresca ∈ [√3/2, 1].
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var s [6]float64
		for i := range s {
			s[i] = r.NormFloat64()
		}
		tresca := Tresca(s)
		vm := VonMises(s)
		if tresca < 1e-12 {
			return vm < 1e-6
		}
		ratio := vm / tresca
		return ratio >= math.Sqrt(3)/2-1e-9 && ratio <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPressure(t *testing.T) {
	if p := Pressure([6]float64{-3, -3, -3, 1, 2, 3}); math.Abs(p-3) > 1e-12 {
		t.Errorf("Pressure = %g, want 3", p)
	}
}
