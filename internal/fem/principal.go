package fem

import "math"

// PrincipalStresses returns the eigenvalues of the Voigt stress tensor in
// descending order (σ1 ≥ σ2 ≥ σ3), computed with the trigonometric method
// for symmetric 3×3 matrices.
func PrincipalStresses(s [6]float64) [3]float64 {
	sxx, syy, szz := s[0], s[1], s[2]
	syz, sxz, sxy := s[3], s[4], s[5]

	i1 := sxx + syy + szz
	i2 := sxx*syy + syy*szz + szz*sxx - sxy*sxy - syz*syz - sxz*sxz
	i3 := sxx*(syy*szz-syz*syz) - sxy*(sxy*szz-syz*sxz) + sxz*(sxy*syz-syy*sxz)

	// Deviatoric invariants.
	j2 := i1*i1/3 - i2
	if j2 <= 0 {
		// Hydrostatic state: all eigenvalues equal.
		v := i1 / 3
		return [3]float64{v, v, v}
	}
	j3 := 2*i1*i1*i1/27 - i1*i2/3 + i3
	r := math.Sqrt(j2 / 3)
	arg := j3 / (2 * r * r * r)
	if arg > 1 {
		arg = 1
	}
	if arg < -1 {
		arg = -1
	}
	theta := math.Acos(arg) / 3
	m := i1 / 3
	p1 := m + 2*r*math.Cos(theta)
	p2 := m + 2*r*math.Cos(theta-2*math.Pi/3)
	p3 := m + 2*r*math.Cos(theta+2*math.Pi/3)
	// Sort descending.
	if p1 < p2 {
		p1, p2 = p2, p1
	}
	if p2 < p3 {
		p2, p3 = p3, p2
	}
	if p1 < p2 {
		p1, p2 = p2, p1
	}
	return [3]float64{p1, p2, p3}
}

// Tresca returns the maximum shear-stress criterion value σ1 − σ3.
func Tresca(s [6]float64) float64 {
	p := PrincipalStresses(s)
	return p[0] - p[2]
}

// Pressure returns the (negative) mean stress −tr(σ)/3, positive in
// compression.
func Pressure(s [6]float64) float64 {
	return -(s[0] + s[1] + s[2]) / 3
}
