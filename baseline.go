package morestress

import (
	"time"

	"repro/internal/chiplet"
	"repro/internal/field"
	"repro/internal/mesh"
	"repro/internal/reffem"
	"repro/internal/superpose"
)

// ReferenceResult is a completed full-resolution conventional FEM solve —
// the ground-truth baseline played by ANSYS in the paper.
type ReferenceResult struct {
	// VM is the mid-plane von Mises field on the same sample grid as the
	// reduced-order results.
	VM *Field
	// Raw retains the underlying solve for further post-processing.
	Raw *reffem.Result
	// TotalTime covers assembly + solve + sampling.
	TotalTime time.Duration
	// DoFs is the number of free fine-mesh DoFs.
	DoFs int
}

// ReferenceArray solves a standalone clamped array on the full fine mesh
// (one fine block mesh replicated per block) and samples the mid-plane von
// Mises field with gs samples per block.
func ReferenceArray(cfg Config, rows, cols int, deltaT float64, gs int, opt SolverOptions) (*ReferenceResult, error) {
	return referenceArray(cfg, rows, cols, deltaT, gs, opt, false)
}

// ReferenceArrayQuadratic is ReferenceArray with 20-node serendipity
// elements (the ANSYS SOLID186 class) — a higher-fidelity ground truth on
// the same mesh.
func ReferenceArrayQuadratic(cfg Config, rows, cols int, deltaT float64, gs int, opt SolverOptions) (*ReferenceResult, error) {
	return referenceArray(cfg, rows, cols, deltaT, gs, opt, true)
}

func referenceArray(cfg Config, rows, cols int, deltaT float64, gs int, opt SolverOptions, quadratic bool) (*ReferenceResult, error) {
	start := time.Now()
	r, err := reffem.Solve(&reffem.Problem{
		Geom: cfg.Geometry, Mats: cfg.Materials, Res: cfg.Resolution,
		Bx: cols, By: rows, Kind: cfg.Structure,
		DeltaT: deltaT, BC: reffem.ClampedTopBottom,
		Quadratic: quadratic,
		Opt:       opt, Workers: cfg.workers(),
	})
	if err != nil {
		return nil, err
	}
	res := &ReferenceResult{Raw: r, DoFs: r.DoFs}
	if gs > 0 {
		res.VM = r.SampleVM(gs, cfg.workers())
	}
	res.TotalTime = time.Since(start)
	return res, nil
}

// ReferenceEmbedded solves the scenario-2 sub-model (TSV array + dummy ring)
// on the full fine mesh under the coarse-package boundary displacements —
// the ground truth for sub-modeling, cropped to the TSV array region.
func ReferenceEmbedded(cfg Config, pkg *CoarsePackage, spec EmbeddedSpec, gs int, opt SolverOptions) (*ReferenceResult, error) {
	start := time.Now()
	pitch := cfg.Geometry.Pitch
	origin, err := chiplet.SubmodelOrigin(pkg.Coarse.Stack, spec.Location, spec.Width(pitch))
	if err != nil {
		return nil, err
	}
	var isDummy func(int, int) bool
	if spec.DummyRing > 0 {
		isDummy = spec.IsDummy
	}
	r, err := reffem.Solve(&reffem.Problem{
		Geom: cfg.Geometry, Mats: cfg.Materials, Res: cfg.Resolution,
		Bx: spec.totalCols(), By: spec.totalRows(),
		IsDummy: isDummy,
		DeltaT:  pkg.DeltaT(), BC: reffem.PrescribedBoundary,
		BoundaryDisp: func(p mesh.Vec3) [3]float64 {
			return pkg.DisplacementAt(origin.Add(p))
		},
		Opt: opt, Workers: cfg.workers(),
	})
	if err != nil {
		return nil, err
	}
	res := &ReferenceResult{Raw: r, DoFs: r.DoFs}
	if gs > 0 {
		full := r.VMField(cfg.Geometry, spec.totalCols(), spec.totalRows(), gs, pkg.DeltaT(), cfg.workers())
		d := spec.DummyRing
		res.VM = full.Crop(d*gs, d*gs, (d+spec.Cols)*gs, (d+spec.Rows)*gs)
	}
	res.TotalTime = time.Since(start)
	return res, nil
}

// Superposition wraps the linear superposition baseline of [Jung DAC'12]:
// a one-shot single-TSV kernel that estimates array stress by superposing
// per-TSV stress deviations.
type Superposition struct {
	Kernel *superpose.Kernel
	cfg    Config
}

// BuildSuperposition runs the baseline's one-shot stage: a single-TSV fine
// FEM solve on a (2·radius+1)² neighbourhood, sampled at gs points per
// block edge (the estimate later uses the same gs).
func BuildSuperposition(cfg Config, radius, gs int, opt SolverOptions) (*Superposition, error) {
	k, err := superpose.BuildKernel(cfg.Geometry, cfg.Materials, cfg.Resolution, radius, gs, opt, cfg.workers())
	if err != nil {
		return nil, err
	}
	return &Superposition{Kernel: k, cfg: cfg}, nil
}

// EstimateArray estimates the mid-plane von Mises field of a standalone
// clamped Rows×Cols array.
func (s *Superposition) EstimateArray(rows, cols int, deltaT float64) *Field {
	return s.Kernel.EstimateArray(cols, rows, nil, deltaT, s.Kernel.GS, nil, s.cfg.workers())
}

// EstimateEmbedded estimates the scenario-2 array stress: the coarse package
// stress is the background and per-TSV deviations are superposed on top —
// exactly the baseline the paper shows failing near sharp background
// gradients (loc3/loc5). The returned field covers the TSV array region.
func (s *Superposition) EstimateEmbedded(pkg *CoarsePackage, spec EmbeddedSpec) (*Field, error) {
	pitch := s.cfg.Geometry.Pitch
	origin, err := chiplet.SubmodelOrigin(pkg.Coarse.Stack, spec.Location, spec.Width(pitch))
	if err != nil {
		return nil, err
	}
	zMid := origin.Z + s.cfg.Geometry.Height/2
	isTSV := func(bx, by int) bool { return !spec.IsDummy(bx, by) }
	if spec.DummyRing == 0 {
		isTSV = nil
	}
	bg := func(x, y float64) [6]float64 {
		return pkg.StressAt(Vec3{X: origin.X + x, Y: origin.Y + y, Z: zMid})
	}
	full := s.Kernel.EstimateArray(spec.totalCols(), spec.totalRows(), isTSV,
		pkg.DeltaT(), s.Kernel.GS, bg, s.cfg.workers())
	d := spec.DummyRing
	gs := s.Kernel.GS
	return full.Crop(d*gs, d*gs, (d+spec.Cols)*gs, (d+spec.Rows)*gs), nil
}

// NormalizedMAE returns the paper's error metric: mean absolute error of a
// against the reference ref, normalized by the maximum reference von Mises
// stress (§5.2).
func NormalizedMAE(a, ref *Field) float64 { return field.NormalizedMAE(a, ref) }

// MAE returns the unnormalized mean absolute error.
func MAE(a, ref *Field) float64 { return field.MAE(a, ref) }
