package morestress

import (
	"testing"

	"repro/internal/solver"
)

// TestEnginePrecondCacheSharedAcrossScenarios: a ΔT sweep on one lattice
// builds the preconditioner exactly once; every other scenario hits the
// assembly's cache, and the engine counters expose the split.
func TestEnginePrecondCacheSharedAcrossScenarios(t *testing.T) {
	cfg := testConfig(15)
	// Disable warm starts so every scenario runs a full iterative solve
	// (warm-started solves still consult the preconditioner, but the cold
	// chain makes the assertion obvious).
	e := NewEngine(EngineOptions{Workers: 2, DisableWarmStart: true})
	jobs := make([]Job, 5)
	for i := range jobs {
		jobs[i] = Job{Config: cfg, Rows: 2, Cols: 2, DeltaT: -50 * float64(i+1), Solver: SolveCG}
	}
	br := e.BatchSolve(jobs)
	if br.Stats.Errors != 0 {
		t.Fatalf("batch errors: %+v", br.Stats)
	}
	s := e.Stats()
	if s.PrecondBuilds != 1 {
		t.Errorf("precond builds = %d, want 1 (one lattice, one kind)", s.PrecondBuilds)
	}
	if s.PrecondHits != int64(len(jobs)-1) {
		t.Errorf("precond hits = %d, want %d", s.PrecondHits, len(jobs)-1)
	}
	shared := 0
	for _, r := range br.Results {
		if r.Result.Solution.PrecondShared {
			shared++
		}
	}
	if shared != len(jobs)-1 {
		t.Errorf("%d scenarios report a shared preconditioner, want %d", shared, len(jobs)-1)
	}
}

// TestEnginePrecondCacheDistinctPerKind: scenarios with different
// preconditioner kinds on one lattice each build once, then hit.
func TestEnginePrecondCacheDistinctPerKind(t *testing.T) {
	cfg := testConfig(15)
	e := NewEngine(EngineOptions{Workers: 1, DisableWarmStart: true})
	kinds := []Precond{solver.PrecondJacobi, solver.PrecondBlockJacobi3}
	var jobs []Job
	for round := 0; round < 2; round++ {
		for _, k := range kinds {
			jobs = append(jobs, Job{
				Config: cfg, Rows: 2, Cols: 2, DeltaT: -100,
				Solver: SolveCG, Options: SolverOptions{Precond: k},
			})
		}
	}
	br := e.BatchSolve(jobs)
	if br.Stats.Errors != 0 {
		t.Fatalf("batch errors: %+v", br.Stats)
	}
	s := e.Stats()
	if s.PrecondBuilds != int64(len(kinds)) {
		t.Errorf("precond builds = %d, want %d (one per kind)", s.PrecondBuilds, len(kinds))
	}
	if s.PrecondHits != int64(len(jobs)-len(kinds)) {
		t.Errorf("precond hits = %d, want %d", s.PrecondHits, len(jobs)-len(kinds))
	}
}

// TestEngineOrderingCounts: iterative solves tally under the concrete
// ordering their preconditioner factored under, distinct orderings of the
// factorizing kind cache separately, and the counts sum to the iterative
// solve count.
func TestEngineOrderingCounts(t *testing.T) {
	cfg := testConfig(15)
	e := NewEngine(EngineOptions{Workers: 1, DisableWarmStart: true})
	jobs := []Job{
		{Config: cfg, Rows: 2, Cols: 2, DeltaT: -100, Solver: SolveCG,
			Options: SolverOptions{Precond: solver.PrecondIC0, Ordering: solver.OrderingMulticolor}},
		{Config: cfg, Rows: 2, Cols: 2, DeltaT: -150, Solver: SolveCG,
			Options: SolverOptions{Precond: solver.PrecondIC0, Ordering: solver.OrderingMulticolor}},
		{Config: cfg, Rows: 2, Cols: 2, DeltaT: -200, Solver: SolveCG,
			Options: SolverOptions{Precond: solver.PrecondIC0, Ordering: solver.OrderingNatural}},
	}
	br := e.BatchSolve(jobs)
	if br.Stats.Errors != 0 {
		t.Fatalf("batch errors: %+v", br.Stats)
	}
	s := e.Stats()
	if got := s.OrderingCounts["multicolor"]; got != 2 {
		t.Errorf("multicolor count = %d, want 2 (counts: %v)", got, s.OrderingCounts)
	}
	if got := s.OrderingCounts["natural"]; got != 1 {
		t.Errorf("natural count = %d, want 1 (counts: %v)", got, s.OrderingCounts)
	}
	var total int64
	for _, n := range s.OrderingCounts {
		total += n
	}
	if total != s.IterativeSolves {
		t.Errorf("ordering counts sum %d != iterative solves %d", total, s.IterativeSolves)
	}
	// Two orderings of IC0 on one lattice are two distinct cache entries.
	if s.PrecondBuilds != 2 || s.PrecondHits != 1 {
		t.Errorf("builds/hits = %d/%d, want 2/1 (one factor per ordering)", s.PrecondBuilds, s.PrecondHits)
	}
	for _, r := range br.Results {
		res := r.Result
		if !res.Iterative() {
			t.Fatal("expected iterative results")
		}
		if res.Solution.Ordering != res.Solution.Stats.Ordering {
			t.Errorf("Solution.Ordering %v != Stats.Ordering %v", res.Solution.Ordering, res.Solution.Stats.Ordering)
		}
	}
}

// TestEnginePrecondCacheInvalidatedWithAssembly: the preconditioner lives on
// the Assembly, so evicting the assembly (MaxAssemblies exceeded) drops it
// and the next scenario on that lattice rebuilds both.
func TestEnginePrecondCacheInvalidatedWithAssembly(t *testing.T) {
	cfg := testConfig(15)
	e := NewEngine(EngineOptions{Workers: 1, MaxAssemblies: 1, DisableWarmStart: true})
	lattices := [][2]int{{2, 2}, {2, 3}}
	// Alternate lattices: with room for one assembly, every solve evicts the
	// other lattice's assembly (and its cached preconditioner).
	for round := 0; round < 2; round++ {
		for _, dims := range lattices {
			if _, err := e.Solve(Job{Config: cfg, Rows: dims[0], Cols: dims[1], DeltaT: -100, Solver: SolveCG}); err != nil {
				t.Fatal(err)
			}
		}
	}
	s := e.Stats()
	if s.PrecondHits != 0 {
		t.Errorf("precond hits = %d, want 0 (every assembly was evicted between uses)", s.PrecondHits)
	}
	if s.PrecondBuilds != 4 {
		t.Errorf("precond builds = %d, want 4", s.PrecondBuilds)
	}
	// Same layout with room for both lattices: second round is all hits.
	e = NewEngine(EngineOptions{Workers: 1, MaxAssemblies: 4, DisableWarmStart: true})
	for round := 0; round < 2; round++ {
		for _, dims := range lattices {
			if _, err := e.Solve(Job{Config: cfg, Rows: dims[0], Cols: dims[1], DeltaT: -100, Solver: SolveCG}); err != nil {
				t.Fatal(err)
			}
		}
	}
	s = e.Stats()
	if s.PrecondBuilds != 2 || s.PrecondHits != 2 {
		t.Errorf("builds/hits = %d/%d, want 2/2", s.PrecondBuilds, s.PrecondHits)
	}
}
