package morestress

import (
	"testing"

	"repro/internal/solver"
)

// TestEnginePrecondCacheSharedAcrossScenarios: a ΔT sweep on one lattice
// builds the preconditioner exactly once; every other scenario hits the
// assembly's cache, and the engine counters expose the split.
func TestEnginePrecondCacheSharedAcrossScenarios(t *testing.T) {
	cfg := testConfig(15)
	// Disable warm starts so every scenario runs a full iterative solve
	// (warm-started solves still consult the preconditioner, but the cold
	// chain makes the assertion obvious).
	e := NewEngine(EngineOptions{Workers: 2, DisableWarmStart: true})
	jobs := make([]Job, 5)
	for i := range jobs {
		jobs[i] = Job{Config: cfg, Rows: 2, Cols: 2, DeltaT: -50 * float64(i+1), Solver: SolveCG}
	}
	br := e.BatchSolve(jobs)
	if br.Stats.Errors != 0 {
		t.Fatalf("batch errors: %+v", br.Stats)
	}
	s := e.Stats()
	if s.PrecondBuilds != 1 {
		t.Errorf("precond builds = %d, want 1 (one lattice, one kind)", s.PrecondBuilds)
	}
	if s.PrecondHits != int64(len(jobs)-1) {
		t.Errorf("precond hits = %d, want %d", s.PrecondHits, len(jobs)-1)
	}
	shared := 0
	for _, r := range br.Results {
		if r.Result.Solution.PrecondShared {
			shared++
		}
	}
	if shared != len(jobs)-1 {
		t.Errorf("%d scenarios report a shared preconditioner, want %d", shared, len(jobs)-1)
	}
}

// TestEnginePrecondCacheDistinctPerKind: scenarios with different
// preconditioner kinds on one lattice each build once, then hit.
func TestEnginePrecondCacheDistinctPerKind(t *testing.T) {
	cfg := testConfig(15)
	e := NewEngine(EngineOptions{Workers: 1, DisableWarmStart: true})
	kinds := []Precond{solver.PrecondJacobi, solver.PrecondBlockJacobi3}
	var jobs []Job
	for round := 0; round < 2; round++ {
		for _, k := range kinds {
			jobs = append(jobs, Job{
				Config: cfg, Rows: 2, Cols: 2, DeltaT: -100,
				Solver: SolveCG, Options: SolverOptions{Precond: k},
			})
		}
	}
	br := e.BatchSolve(jobs)
	if br.Stats.Errors != 0 {
		t.Fatalf("batch errors: %+v", br.Stats)
	}
	s := e.Stats()
	if s.PrecondBuilds != int64(len(kinds)) {
		t.Errorf("precond builds = %d, want %d (one per kind)", s.PrecondBuilds, len(kinds))
	}
	if s.PrecondHits != int64(len(jobs)-len(kinds)) {
		t.Errorf("precond hits = %d, want %d", s.PrecondHits, len(jobs)-len(kinds))
	}
}

// TestEnginePrecondCacheInvalidatedWithAssembly: the preconditioner lives on
// the Assembly, so evicting the assembly (MaxAssemblies exceeded) drops it
// and the next scenario on that lattice rebuilds both.
func TestEnginePrecondCacheInvalidatedWithAssembly(t *testing.T) {
	cfg := testConfig(15)
	e := NewEngine(EngineOptions{Workers: 1, MaxAssemblies: 1, DisableWarmStart: true})
	lattices := [][2]int{{2, 2}, {2, 3}}
	// Alternate lattices: with room for one assembly, every solve evicts the
	// other lattice's assembly (and its cached preconditioner).
	for round := 0; round < 2; round++ {
		for _, dims := range lattices {
			if _, err := e.Solve(Job{Config: cfg, Rows: dims[0], Cols: dims[1], DeltaT: -100, Solver: SolveCG}); err != nil {
				t.Fatal(err)
			}
		}
	}
	s := e.Stats()
	if s.PrecondHits != 0 {
		t.Errorf("precond hits = %d, want 0 (every assembly was evicted between uses)", s.PrecondHits)
	}
	if s.PrecondBuilds != 4 {
		t.Errorf("precond builds = %d, want 4", s.PrecondBuilds)
	}
	// Same layout with room for both lattices: second round is all hits.
	e = NewEngine(EngineOptions{Workers: 1, MaxAssemblies: 4, DisableWarmStart: true})
	for round := 0; round < 2; round++ {
		for _, dims := range lattices {
			if _, err := e.Solve(Job{Config: cfg, Rows: dims[0], Cols: dims[1], DeltaT: -100, Solver: SolveCG}); err != nil {
				t.Fatal(err)
			}
		}
	}
	s = e.Stats()
	if s.PrecondBuilds != 2 || s.PrecondHits != 2 {
		t.Errorf("builds/hits = %d/%d, want 2/2", s.PrecondBuilds, s.PrecondHits)
	}
}
