// Batch: serve many array scenarios off shared reduced-order models with
// the concurrent batch engine. The engine caches each distinct unit cell's
// ROM (content-addressed, singleflight-deduplicated), so a batch mixing
// array sizes, thermal loads, and pitches pays the one-shot local stage
// once per unit cell — the reusability claim of §4.1 turned into a service
// primitive. A second, warm batch then runs with zero local stages, and a
// ΔT sweep under the Direct solver shares one Cholesky factorization.
// Finally the same engine is wrapped in the async job queue (the library
// face of cmd/serve's POST /jobs): submit returns an ID immediately and the
// lifecycle streams as events while the solve proceeds in the background.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	morestress "repro"
	"repro/internal/jobqueue"
)

func main() {
	engine := morestress.NewEngine(morestress.EngineOptions{Workers: 4})

	// 12 scenarios over two unit cells (pitch 15 and 10 µm): different
	// array sizes and thermal loads, one shared ROM per pitch.
	var jobs []morestress.Job
	for i, pitch := range []float64{15, 10} {
		cfg := morestress.DefaultConfig(pitch)
		for j := 0; j < 6; j++ {
			jobs = append(jobs, morestress.Job{
				Config: cfg,
				Rows:   4 + 2*j, Cols: 4 + 2*j,
				DeltaT:      -250 + 25*float64(i+j),
				GridSamples: 20,
			})
		}
	}

	fmt.Println("cold batch (local stage runs once per unit cell):")
	report(engine, jobs)

	fmt.Println("\nwarm batch (every ROM cached — no local stage at all):")
	report(engine, jobs)

	// ΔT sweep with the Direct solver: same lattice, so the engine shares
	// a single Cholesky factorization across the whole sweep.
	sweep := make([]morestress.Job, 8)
	for i := range sweep {
		sweep[i] = morestress.Job{
			Config: morestress.DefaultConfig(15),
			Rows:   6, Cols: 6,
			DeltaT: -40 * float64(i+1),
			Solver: morestress.SolveDirect,
		}
	}
	fmt.Println("\ndirect-solver ΔT sweep (one factorization, eight solves):")
	report(engine, sweep)

	// The same sweep through the iterative (PCG) path: the engine assembles
	// the reduced global system once per lattice, orders the sweep by ΔT,
	// and warm-starts each solve from its neighbor's solution. The second
	// engine disables warm starts — identical work, every solve from zero —
	// to show the iteration budget the warm start saves.
	pcgSweep := func() []morestress.Job {
		jobs := make([]morestress.Job, 8)
		for i := range jobs {
			jobs[i] = morestress.Job{
				Config: morestress.DefaultConfig(15),
				Rows:   6, Cols: 6,
				DeltaT: -40 * float64(i+1),
				Solver: morestress.SolveCG,
			}
		}
		return jobs
	}
	fmt.Println("\npcg ΔT sweep (assemble-once + warm starts vs cold baseline):")
	warmBR := engine.BatchSolve(pcgSweep())
	coldEngine := morestress.NewEngine(morestress.EngineOptions{Workers: 4, DisableWarmStart: true})
	coldBR := coldEngine.BatchSolve(pcgSweep())
	fmt.Printf("  warm: %4d total PCG iterations (%d/%d solves warm-started; lattice matrix reused from the direct sweep's assembly)\n",
		warmBR.Stats.Iterations, warmBR.Stats.WarmStarts, warmBR.Stats.Jobs)
	fmt.Printf("  cold: %4d total PCG iterations (every solve from zero)\n", coldBR.Stats.Iterations)
	if warmBR.Stats.Iterations < coldBR.Stats.Iterations {
		fmt.Printf("  => warm-start + assemble-once saved %d iterations (%.0f%%)\n",
			coldBR.Stats.Iterations-warmBR.Stats.Iterations,
			100*float64(coldBR.Stats.Iterations-warmBR.Stats.Iterations)/float64(coldBR.Stats.Iterations))
	}

	s := engine.Stats()
	fmt.Printf("\nengine lifetime: %d jobs, %d ROM builds (%v local-stage time), %d cache hits, %d factorization(s), %d factor hits, %d assemblies (%d reused), warm-start rate %.0f%%\n",
		s.JobsDone, s.Cache.Misses, s.Cache.BuildTime, s.Cache.Hits, s.Factorizations, s.FactorHits,
		s.Assemblies, s.AssemblyHits, 100*warmRate(s))

	asyncDemo(engine)
}

// warmRate is the engine-lifetime warm-start hit rate.
func warmRate(s morestress.EngineStats) float64 {
	if s.IterativeSolves == 0 {
		return 0
	}
	return float64(s.WarmStarts) / float64(s.IterativeSolves)
}

// asyncDemo submits a ΔT sweep to the job queue and watches its lifecycle
// through the event stream instead of blocking on the solve.
func asyncDemo(engine *morestress.Engine) {
	queue, err := jobqueue.New(jobqueue.Options{
		Depth: 16, Workers: 1, TTL: time.Minute,
		Solve: func(ctx context.Context, sc morestress.Job) (*morestress.JobResult, error) {
			res, _ := engine.Solve(sc)
			return res, nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer queue.Close()

	scenarios := make([]morestress.Job, 4)
	for i := range scenarios {
		scenarios[i] = morestress.Job{
			Config: morestress.DefaultConfig(15),
			Rows:   5, Cols: 5,
			DeltaT: -60 * float64(i+1),
		}
	}
	id, err := queue.Submit(scenarios, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nasync job %s submitted (returns immediately; queue depth %d):\n", id, queue.Stats().Depth)
	events, stop, ok := queue.Subscribe(id)
	if !ok {
		log.Fatalf("job %s vanished", id)
	}
	defer stop()
	for ev := range events {
		switch ev.Type {
		case jobqueue.EventState:
			fmt.Printf("  state=%s %d/%d scenarios\n", ev.State, ev.Completed, ev.Total)
		case jobqueue.EventScenario:
			fmt.Printf("  scenario %d finished (%d/%d): %d iterations, precond=%s, warm=%v\n",
				ev.Scenario, ev.Completed, ev.Total, ev.Iterations, ev.Precond, ev.WarmStart)
		}
	}
	snap, _ := queue.Get(id)
	fmt.Printf("  => %s in %v wait + %v run; results retained for the TTL\n", snap.State, snap.Wait.Round(1e6), snap.Run.Round(1e6))
}

func report(e *morestress.Engine, jobs []morestress.Job) {
	br := e.BatchSolve(jobs)
	for _, r := range br.Results {
		if r.Err != nil {
			log.Fatalf("job %d: %v", r.Index, r.Err)
		}
		j := jobs[r.Index]
		src := "built"
		if r.CacheHit {
			src = "cached"
		}
		maxVM := 0.0
		if r.Result.VM != nil {
			maxVM = r.Result.VM.Max()
		}
		fmt.Printf("  %2dx%-2d ΔT=%-6.0f rom=%-6s local=%-12v global=%-12v maxVM=%.1f MPa\n",
			j.Rows, j.Cols, j.DeltaT, src, r.LocalWait.Round(1e5), r.Result.GlobalTime.Round(1e5), maxVM)
	}
	st := br.Stats
	fmt.Printf("  => %d jobs in %v wall (%d cache hits / %d misses; local %v, global %v summed)\n",
		st.Jobs, st.Wall.Round(1e6), st.CacheHits, st.CacheMisses, st.LocalTime.Round(1e6), st.GlobalTime.Round(1e6))
}
