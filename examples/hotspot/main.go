// Hotspot demonstrates the "arbitrary thermal loads" capability of the
// global stage (§4.1 of the paper): a nonuniform, per-block thermal field —
// a Gaussian hotspot, as produced by a power-hungry die region above the
// interposer — is applied to a TSV array, and the resulting mid-plane von
// Mises map is compared with the uniform-load case and rendered as an ASCII
// heatmap.
package main

import (
	"fmt"
	"log"
	"math"

	morestress "repro"
)

func main() {
	const (
		n       = 8
		gs      = 12
		ambient = -250.0 // uniform anneal-to-room load
	)
	cfg := morestress.DefaultConfig(15)
	model, err := morestress.BuildModel(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A hotspot raises the local operating temperature: blocks under it see
	// a smaller |ΔT| from the anneal reference.
	hotspot := func(row, col int) float64 {
		dr := float64(row) - float64(n-1)/2
		dc := float64(col) - float64(n-1)/2
		return ambient + 120*math.Exp(-(dr*dr+dc*dc)/4)
	}

	uni, err := model.SolveArray(morestress.ArraySpec{
		Rows: n, Cols: n, DeltaT: ambient, GridSamples: gs,
	})
	if err != nil {
		log.Fatal(err)
	}
	hot, err := model.SolveArray(morestress.ArraySpec{
		Rows: n, Cols: n, DeltaT: ambient, DeltaTMap: hotspot, GridSamples: gs,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("uniform load:  max vM %.1f MPa, mean %.1f MPa\n", uni.VM.Max(), uni.VM.Mean())
	fmt.Printf("hotspot load:  max vM %.1f MPa, mean %.1f MPa\n", hot.VM.Max(), hot.VM.Mean())
	fmt.Printf("global stage reuses the same one-shot model: %v per solve\n\n",
		hot.GlobalTime.Round(1e6))

	fmt.Println("hotspot mid-plane von Mises (ASCII heatmap, hotter center = lower stress):")
	fmt.Print(hot.VM.RenderASCII(72))
}
