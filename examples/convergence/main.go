// Convergence reproduces Table 3 / Fig. 6 at example scale: the number of
// Lagrange interpolation nodes per axis is swept from (2,2,2) to (6,6,6) on
// a fixed clamped array, and the element-DoF count n, the local/global stage
// runtimes, and the error against the fine reference are reported. The error
// must drop rapidly with n (the convergence guarantee of the Lagrange
// interpolation) while the global runtime grows.
package main

import (
	"fmt"
	"log"

	morestress "repro"
)

func main() {
	const (
		size   = 6
		deltaT = -250.0
		gs     = 16
	)
	cfg := morestress.DefaultConfig(15)

	ref, err := morestress.ReferenceArray(cfg, size, size, deltaT, gs, morestress.SolverOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference %dx%d array: %v (%d fine DoFs)\n\n", size, size, ref.TotalTime, ref.DoFs)

	fmt.Printf("%-12s %6s %12s %12s %10s\n", "(nx,ny,nz)", "n", "local", "global", "error")
	for nodes := 2; nodes <= 6; nodes++ {
		c := cfg
		c.Nodes = [3]int{nodes, nodes, nodes}
		model, err := morestress.BuildModel(c)
		if err != nil {
			log.Fatal(err)
		}
		res, err := model.SolveArray(morestress.ArraySpec{
			Rows: size, Cols: size, DeltaT: deltaT, GridSamples: gs,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("(%d,%d,%d)%4s %6d %12v %12v %9.2f%%\n",
			nodes, nodes, nodes, "", model.ElementDoFs(),
			model.LocalStageTime().Round(1e6), res.GlobalTime.Round(1e6),
			100*morestress.NormalizedMAE(res.VM, ref.VM))
	}
}
