// Arraysweep reproduces scenario 1 (Fig. 5(a)) at example scale: standalone
// clamped TSV arrays of growing size at both paper pitches, comparing
// MORE-Stress and the linear superposition baseline against the full
// fine-mesh reference — the workload behind Table 1.
package main

import (
	"fmt"
	"log"

	morestress "repro"
)

const deltaT = -250.0

func main() {
	const gs = 20
	for _, pitch := range []float64{15, 10} {
		fmt.Printf("=== pitch %g um ===\n", pitch)
		cfg := morestress.DefaultConfig(pitch)

		model, err := morestress.BuildModel(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("one-shot local stage: %v\n", model.LocalStageTime())

		sup, err := morestress.BuildSuperposition(cfg, 2, gs, morestress.SolverOptions{})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-8s %10s %10s %10s %10s %10s\n",
			"size", "ref", "MORE", "MORE err", "superpos", "sup err")
		for _, n := range []int{2, 4, 6} {
			ref, err := morestress.ReferenceArray(cfg, n, n, deltaT, gs, morestress.SolverOptions{})
			if err != nil {
				log.Fatal(err)
			}
			res, err := model.SolveArray(morestress.ArraySpec{
				Rows: n, Cols: n, DeltaT: deltaT, GridSamples: gs,
			})
			if err != nil {
				log.Fatal(err)
			}
			supVM := sup.EstimateArray(n, n, deltaT)
			fmt.Printf("%-8s %10v %10v %9.2f%% %10s %9.2f%%\n",
				fmt.Sprintf("%dx%d", n, n),
				ref.TotalTime.Round(1e6), res.GlobalTime.Round(1e6),
				100*morestress.NormalizedMAE(res.VM, ref.VM),
				"(fast)",
				100*morestress.NormalizedMAE(supVM, ref.VM))
		}
		fmt.Println()
	}
}
