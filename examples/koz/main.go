// Koz runs the flagship downstream analysis motivating fast TSV stress
// simulation (paper §1 and its references [3, 11]): carrier-mobility shift
// maps and keep-out zones (KOZ) around TSVs. A 6×6 array is solved once with
// the reduced model; the per-block stress tensors then yield Δµ/µ maps for
// NMOS and PMOS devices and the keep-out radius at a 5 % mobility budget —
// the kind of full-chip query that would need hours of conventional FEM.
package main

import (
	"fmt"
	"log"

	morestress "repro"
)

func main() {
	cfg := morestress.DefaultConfig(15)
	model, err := morestress.BuildModel(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := model.SolveArray(morestress.ArraySpec{
		Rows: 6, Cols: 6, DeltaT: -250, GridSamples: 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stress solve (local %v + global %v) for 36 TSVs\n\n",
		model.LocalStageTime().Round(1e6), res.GlobalTime.Round(1e6))

	const gs = 40
	const budget = 0.05 // 5 % |Δµ/µ| allowance
	fmt.Printf("%-8s %-10s %12s %16s %14s\n", "device", "block", "KOZ radius", "violating area", "peak |dmu/mu|")
	for _, carrier := range []morestress.Carrier{morestress.NMOS, morestress.PMOS} {
		coeff := morestress.StandardPiezo(carrier)
		for _, blk := range [][2]int{{2, 2}, {0, 0}} { // interior vs corner block
			shift := res.MobilityShiftField(blk[0], blk[1], gs, coeff)
			koz := res.KOZ(blk[0], blk[1], gs, coeff, budget)
			peak := shift.Max()
			if -shift.Min() > peak {
				peak = -shift.Min()
			}
			fmt.Printf("%-8s (%d,%d)%4s %9.2f um %15.1f%% %13.1f%%\n",
				carrier, blk[0], blk[1], "",
				koz.Radius, 100*koz.ViolatingFraction, 100*peak)
		}
	}
	fmt.Println("\nPMOS mobility shift map of the interior block (ASCII, block-local):")
	shift := res.MobilityShiftField(2, 2, gs, morestress.StandardPiezo(morestress.PMOS))
	fmt.Print(shift.RenderASCII(60))
}
