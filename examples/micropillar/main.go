// Micropillar exercises the structure-agnostic claim of the paper (§6:
// "adaptable to other types of fine structures … micro bumps, pillars,
// direct bondings, regardless of their geometries"): the same local/global
// pipeline is run for a linerless copper pillar array and an annular-TSV
// array, and each is validated against its own fine-mesh reference.
package main

import (
	"fmt"
	"log"

	morestress "repro"
)

func main() {
	const (
		deltaT = -250.0
		gs     = 16
		n      = 4
	)

	type scenario struct {
		name string
		cfg  morestress.Config
	}
	pillar := morestress.DefaultConfig(15)
	pillar.Structure = morestress.StructurePillar
	pillar.Geometry.Liner = 0 // no dielectric liner on a pillar

	annular := morestress.DefaultConfig(15)
	annular.Structure = morestress.StructureAnnular
	annular.Geometry.Diameter = 8
	annular.Geometry.Liner = 1.5 // wall thickness of the annulus

	for _, sc := range []scenario{{"copper pillar (linerless)", pillar}, {"annular TSV", annular}} {
		model, err := morestress.BuildModel(sc.cfg)
		if err != nil {
			log.Fatalf("%s: %v", sc.name, err)
		}
		res, err := model.SolveArray(morestress.ArraySpec{
			Rows: n, Cols: n, DeltaT: deltaT, GridSamples: gs,
		})
		if err != nil {
			log.Fatalf("%s: %v", sc.name, err)
		}
		// The reference shares the structure through Config.
		ref, err := referenceFor(sc.cfg, n, deltaT, gs)
		if err != nil {
			log.Fatalf("%s: %v", sc.name, err)
		}
		fmt.Printf("%-28s local %v, global %v, peak vM %.1f MPa, error vs reference %.2f%%\n",
			sc.name, model.LocalStageTime().Round(1e6), res.GlobalTime.Round(1e6),
			res.VM.Max(), 100*morestress.NormalizedMAE(res.VM, ref))
	}
	fmt.Println("\nSame pipeline, different structures: only the local-stage material")
	fmt.Println("classifier changed — the global stage is untouched (paper §4.1/§6).")
}

func referenceFor(cfg morestress.Config, n int, deltaT float64, gs int) (*morestress.Field, error) {
	// ReferenceArray honors cfg.Structure, so the ground truth contains the
	// same pillar/annulus geometry.
	ref, err := morestress.ReferenceArray(cfg, n, n, deltaT, gs, morestress.SolverOptions{})
	if err != nil {
		return nil, err
	}
	return ref.VM, nil
}
